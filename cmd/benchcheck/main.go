// Command benchcheck is the CI guard for the pipelined runtime's
// performance claim. It reads one or more ftmpbench -json documents
// (for example a fresh `ftmpbench -exp e14 -quick -json` run, or the
// committed BENCH_1.json baseline), validates the schema, and fails
// unless the E14 pipelined throughput is at least -min-ratio times the
// single-loop baseline measured in the same run. Comparing within one
// run makes the check robust to how fast the machine itself is: a
// regression that erases the pipeline's advantage fails everywhere,
// while an overall slow CI box does not.
//
// Usage:
//
//	ftmpbench -exp e14 -quick -json > out.json && benchcheck out.json
//	benchcheck -min-ratio 2.0 BENCH_1.json   # hold the committed claim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type jsonTable struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonDoc struct {
	Schema string      `json:"schema"`
	Quick  bool        `json:"quick"`
	Tables []jsonTable `json:"tables"`
}

func main() {
	minRatio := flag.Float64("min-ratio", 0.7,
		"fail if E14 pipelined msg/s is below this multiple of the same run's baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-min-ratio r] file.json...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path, *minRatio); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			failed = true
		} else {
			fmt.Printf("benchcheck: %s: ok\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string, minRatio float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc jsonDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if doc.Schema != "ftmpbench/2" {
		return fmt.Errorf("schema %q, want ftmpbench/2", doc.Schema)
	}
	throughput, err := e14Throughput(doc)
	if err != nil {
		return err
	}
	base, okB := throughput["baseline"]
	pipe, okP := throughput["pipelined"]
	if !okB || !okP {
		return fmt.Errorf("e14 table missing baseline/pipelined rows (got %v)", throughput)
	}
	ratio := pipe / base
	if ratio < minRatio {
		return fmt.Errorf("e14 pipelined %.0f msg/s is %.2fx baseline %.0f msg/s (minimum %.2fx)",
			pipe, ratio, base, minRatio)
	}
	fmt.Printf("benchcheck: %s: e14 pipelined %.0f msg/s = %.2fx baseline %.0f msg/s\n",
		path, pipe, ratio, base)
	return nil
}

// e14Throughput extracts mode -> msg/s from the document's e14 table.
func e14Throughput(doc jsonDoc) (map[string]float64, error) {
	for _, tb := range doc.Tables {
		if tb.Name != "e14" {
			continue
		}
		modeCol, rateCol := -1, -1
		for i, h := range tb.Headers {
			switch h {
			case "mode":
				modeCol = i
			case "msg/s":
				rateCol = i
			}
		}
		if modeCol < 0 || rateCol < 0 {
			return nil, fmt.Errorf("e14 table lacks mode/msg/s columns: %v", tb.Headers)
		}
		out := make(map[string]float64)
		for _, row := range tb.Rows {
			if len(row) <= modeCol || len(row) <= rateCol {
				continue
			}
			if strings.Contains(strings.Join(row, " "), "FAILED") {
				return nil, fmt.Errorf("e14 row marked FAILED: %v", row)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(row[rateCol]), 64)
			if err != nil {
				return nil, fmt.Errorf("e14 msg/s cell %q: %w", row[rateCol], err)
			}
			out[row[modeCol]] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("no e14 table in document")
}
