// Command benchcheck is the CI guard for the runtime's performance
// claims. It reads one or more ftmpbench -json documents (for example a
// fresh `ftmpbench -exp e14 -quick -json` run, or the committed
// BENCH_*.json baselines), validates the schema, and fails unless every
// performance table present in the document holds its claim:
//
//	e14 — pipelined throughput at least -min-ratio times the
//	      single-loop baseline measured in the same run.
//	e16 — the batched transport either delivers at least -e16-rate
//	      times the unbatched achieved msg/s, or amortizes kernel
//	      crossings at least -e16-syscalls times (unbatched
//	      syscalls/msg over batched syscalls/msg), in the same run.
//	e17 — leader-assigned sequencing delivers a 3-replica p99 at most
//	      -e17-p99 times the Lamport p99 measured at the same offered
//	      load in the same run.
//
// Comparing within one run makes the checks robust to how fast the
// machine itself is: a regression that erases the optimization's
// advantage fails everywhere, while an overall slow CI box does not.
// A document must contain at least one of the guarded tables.
//
// Usage:
//
//	ftmpbench -exp e14 -quick -json > out.json && benchcheck out.json
//	benchcheck -min-ratio 2.0 BENCH_1.json   # hold the committed claim
//	benchcheck -e16-syscalls 5.0 BENCH_2.json
//	benchcheck -e17-p99 0.7 BENCH_3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type jsonTable struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonDoc struct {
	Schema string      `json:"schema"`
	Quick  bool        `json:"quick"`
	Tables []jsonTable `json:"tables"`
}

func main() {
	minRatio := flag.Float64("min-ratio", 0.7,
		"fail if E14 pipelined msg/s is below this multiple of the same run's baseline")
	e16Rate := flag.Float64("e16-rate", 2.0,
		"E16 passes if batched achieved msg/s is at least this multiple of unbatched")
	e16Syscalls := flag.Float64("e16-syscalls", 5.0,
		"E16 passes if unbatched syscalls/msg is at least this multiple of batched")
	e17P99 := flag.Float64("e17-p99", 0.7,
		"fail if E17 leader-mode 3-replica p99 exceeds this multiple of the same run's Lamport p99")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-min-ratio r] [-e16-rate r] [-e16-syscalls r] [-e17-p99 r] file.json...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path, *minRatio, *e16Rate, *e16Syscalls, *e17P99); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			failed = true
		} else {
			fmt.Printf("benchcheck: %s: ok\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string, minRatio, e16Rate, e16Syscalls, e17P99 float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc jsonDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	// ftmpbench/3 added open-loop metadata fields and ftmpbench/4 the
	// E17 ordering-mode selector; the table layout this tool reads is
	// unchanged, so all three schemas are acceptable.
	if doc.Schema != "ftmpbench/2" && doc.Schema != "ftmpbench/3" && doc.Schema != "ftmpbench/4" {
		return fmt.Errorf("schema %q, want ftmpbench/2, /3 or /4", doc.Schema)
	}
	checked := 0
	if hasTable(doc, "e14") {
		if err := checkE14(path, doc, minRatio); err != nil {
			return err
		}
		checked++
	}
	if hasTable(doc, "e16") {
		if err := checkE16(path, doc, e16Rate, e16Syscalls); err != nil {
			return err
		}
		checked++
	}
	if hasTable(doc, "e17") {
		if err := checkE17(path, doc, e17P99); err != nil {
			return err
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no e14, e16 or e17 table in document")
	}
	return nil
}

func hasTable(doc jsonDoc, name string) bool {
	for _, tb := range doc.Tables {
		if tb.Name == name {
			return true
		}
	}
	return false
}

func checkE14(path string, doc jsonDoc, minRatio float64) error {
	throughput, err := tableColumn(doc, "e14", "msg/s")
	if err != nil {
		return err
	}
	base, okB := throughput["baseline"]
	pipe, okP := throughput["pipelined"]
	if !okB || !okP {
		return fmt.Errorf("e14 table missing baseline/pipelined rows (got %v)", throughput)
	}
	ratio := pipe / base
	if ratio < minRatio {
		return fmt.Errorf("e14 pipelined %.0f msg/s is %.2fx baseline %.0f msg/s (minimum %.2fx)",
			pipe, ratio, base, minRatio)
	}
	fmt.Printf("benchcheck: %s: e14 pipelined %.0f msg/s = %.2fx baseline %.0f msg/s\n",
		path, pipe, ratio, base)
	return nil
}

func checkE16(path string, doc jsonDoc, minRate, minSyscalls float64) error {
	achieved, err := tableColumn(doc, "e16", "achieved/s")
	if err != nil {
		return err
	}
	perMsg, err := tableColumn(doc, "e16", "syscalls/msg")
	if err != nil {
		return err
	}
	unRate, ok1 := achieved["unbatched"]
	baRate, ok2 := achieved["batched"]
	unSys, ok3 := perMsg["unbatched"]
	baSys, ok4 := perMsg["batched"]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("e16 table missing unbatched/batched rows (rates %v, syscalls %v)", achieved, perMsg)
	}
	rateRatio := 0.0
	if unRate > 0 {
		rateRatio = baRate / unRate
	}
	sysRatio := 0.0
	if baSys > 0 {
		sysRatio = unSys / baSys
	}
	if rateRatio < minRate && sysRatio < minSyscalls {
		return fmt.Errorf("e16 batched is %.2fx unbatched msg/s (want %.2fx) and amortizes syscalls %.2fx (want %.2fx); neither claim holds",
			rateRatio, minRate, sysRatio, minSyscalls)
	}
	fmt.Printf("benchcheck: %s: e16 batched %.0f msg/s = %.2fx unbatched; syscalls/msg %.2f -> %.2f = %.2fx amortization\n",
		path, baRate, rateRatio, unSys, baSys, sysRatio)
	return nil
}

func checkE17(path string, doc jsonDoc, maxRatio float64) error {
	p99, err := tableColumn(doc, "e17", "p99 ms")
	if err != nil {
		return err
	}
	lam, okL := p99["lamport (3)"]
	led, okD := p99["leader (3)"]
	if !okL || !okD {
		return fmt.Errorf("e17 table missing lamport (3)/leader (3) rows (got %v)", p99)
	}
	if lam <= 0 {
		return fmt.Errorf("e17 lamport (3) p99 %.3f ms is not positive", lam)
	}
	ratio := led / lam
	if ratio > maxRatio {
		return fmt.Errorf("e17 leader p99 %.3f ms is %.2fx Lamport p99 %.3f ms (maximum %.2fx)",
			led, ratio, lam, maxRatio)
	}
	fmt.Printf("benchcheck: %s: e17 leader p99 %.3f ms = %.2fx Lamport p99 %.3f ms\n",
		path, led, ratio, lam)
	return nil
}

// tableColumn extracts mode -> numeric value of column col from the
// named table's rows.
func tableColumn(doc jsonDoc, name, col string) (map[string]float64, error) {
	for _, tb := range doc.Tables {
		if tb.Name != name {
			continue
		}
		modeCol, valCol := -1, -1
		for i, h := range tb.Headers {
			switch h {
			case "mode":
				modeCol = i
			case col:
				valCol = i
			}
		}
		if modeCol < 0 || valCol < 0 {
			return nil, fmt.Errorf("%s table lacks mode/%s columns: %v", name, col, tb.Headers)
		}
		out := make(map[string]float64)
		for _, row := range tb.Rows {
			if len(row) <= modeCol || len(row) <= valCol {
				continue
			}
			if strings.Contains(strings.Join(row, " "), "FAILED") {
				return nil, fmt.Errorf("%s row marked FAILED: %v", name, row)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(row[valCol]), 64)
			if err != nil {
				return nil, fmt.Errorf("%s %s cell %q: %w", name, col, row[valCol], err)
			}
			out[row[modeCol]] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("no %s table in document", name)
}
