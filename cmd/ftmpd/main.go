// Command ftmpd runs one FTMP processor on a real network and bridges
// stdin/stdout to a totally-ordered group: each line typed on stdin is
// multicast to the group, and every delivered message (from any member)
// is printed in the single agreed order.
//
// Two transports are available:
//
//	-transport mesh       unicast UDP mesh (works everywhere; give the
//	                      peers' addresses with -peers)
//	-transport multicast  genuine IP multicast (needs a multicast-capable
//	                      network)
//
// Example, three processors on one machine:
//
//	ftmpd -id 1 -listen 127.0.0.1:9001 -peers 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -members 1,2,3
//	ftmpd -id 2 -listen 127.0.0.1:9002 -peers 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -members 1,2,3
//	ftmpd -id 3 -listen 127.0.0.1:9003 -peers 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -members 1,2,3
//
// With -wal-dir the processor is durable: every ordered delivery and
// installed view is written ahead to a segmented, checksummed log
// (fsync policy chosen with -fsync), and a restart replays the log and
// resumes from the last installed membership:
//
//	ftmpd -id 1 ... -wal-dir /var/lib/ftmp/node1 -fsync always
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

func main() {
	var (
		idFlag    = flag.Uint("id", 1, "processor id (unique, nonzero)")
		listen    = flag.String("listen", "127.0.0.1:0", "mesh transport listen address")
		peersFlag = flag.String("peers", "", "comma-separated peer addresses (mesh transport; include own)")
		members   = flag.String("members", "1", "comma-separated processor ids of the group")
		groupFlag = flag.Uint("group", 100, "processor group id")
		trFlag    = flag.String("transport", "mesh", "transport: mesh or multicast")
		hbMs      = flag.Int("heartbeat-ms", 5, "heartbeat interval in milliseconds")
		suspectMs = flag.Int("suspect-ms", 500, "suspect timeout in milliseconds (adaptive: bootstrap threshold)")
		policy    = flag.String("suspect-policy", "fixed",
			"failure detector: fixed (constant -suspect-ms) or adaptive (per-member mean + k·stddev of heartbeat inter-arrivals)")
		quietFlag = flag.Bool("quiet", false, "suppress view-change and fault chatter")
		walDir    = flag.String("wal-dir", "", "directory for the write-ahead log (empty: no durability)")
		fsyncPol  = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		packFlag  = flag.Bool("pack", false, "pack small messages into FTMP 1.1 Packed containers")
		orderFlag = flag.String("order", "lamport",
			"total-order mode: lamport (symmetric timestamp order) or leader (FTMP 1.3 leader-assigned sequencing; all members must agree)")
		quorum = flag.Bool("quorum", false,
			"primary-partition membership: only install views containing a quorum of the previous view; a minority component wedges instead of splitting the brain")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		recvWorkers = flag.Int("recv-workers", 0,
			"pipelined runtime: number of parallel receive/decode workers (0: classic single-threaded loop). Also enables the async ordered-delivery executor, WAL group commit and sharded sends")
		walBatch = flag.Int("wal-batch", 64,
			"pipelined runtime: max deliveries group-committed per WAL fsync (with -recv-workers > 0 and -wal-dir)")
		compactEvery = flag.Duration("compact-every", 0,
			"with -wal-dir: checkpoint and truncate the WAL at the group's stability cut on this interval (0: never). Bounds restart replay to the post-checkpoint suffix")
		batchRecv = flag.Int("batch-recv", 0,
			"mesh transport: drain up to this many datagrams per recvmmsg syscall (0 or 1: one recvfrom per datagram; non-linux builds fall back automatically)")
		batchSend = flag.Int("batch-send", 0,
			"with -recv-workers > 0: coalesce up to this many queued frames per sendmmsg syscall in each send shard (0 or 1: one sendto per frame)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers.
			fmt.Fprintf(os.Stderr, "ftmpd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ftmpd: pprof: %v\n", err)
			}
		}()
	}

	self := ids.ProcessorID(*idFlag)
	cfg := core.DefaultConfig(self)
	cfg.HeartbeatInterval = int64(*hbMs) * 1_000_000
	cfg.PGMP.SuspectTimeout = int64(*suspectMs) * 1_000_000
	if *packFlag {
		cfg.Pack = core.DefaultPackConfig()
	}
	cfg.PGMP.PrimaryPartition = *quorum
	order, err := core.ParseOrderMode(*orderFlag)
	if err != nil {
		fatal("%v", err)
	}
	cfg.Order = order
	switch *policy {
	case "fixed":
		// DefaultConfig's zero value.
	case "adaptive":
		cfg.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
	default:
		fatal("unknown -suspect-policy %q (want fixed or adaptive)", *policy)
	}

	var membership ids.Membership
	for _, tok := range strings.Split(*members, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
		if err != nil {
			fatal("bad member %q: %v", tok, err)
		}
		membership = membership.Add(ids.ProcessorID(v))
	}
	group := ids.GroupID(*groupFlag)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cb := core.Callbacks{
		Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
		Deliver: func(d core.Delivery) {
			fmt.Fprintf(out, "[%v] %s\n", d.Source, d.Payload)
			out.Flush()
		},
		ViewChange: func(v core.ViewChange) {
			if !*quietFlag {
				fmt.Fprintf(out, "-- view %v: members %v (%v)\n", v.ViewTS, v.Members, v.Reason)
				out.Flush()
			}
		},
		FaultReport: func(g ids.GroupID, convicted ids.Membership) {
			if !*quietFlag {
				fmt.Fprintf(out, "-- fault: %v convicted in %v\n", convicted, g)
				out.Flush()
			}
		},
	}

	// Durability: with -wal-dir every ordered delivery and installed
	// view is appended (write-ahead) to a segmented log; after a crash
	// the replayed history is printed and the group membership resumes
	// from the last logged epoch instead of the static bootstrap.
	var log *wal.Log
	var replay runtime.Replay
	if *walDir != "" {
		pol, err := wal.ParsePolicy(*fsyncPol)
		if err != nil {
			fatal("%v", err)
		}
		dfs, err := wal.NewDirFS(*walDir)
		if err != nil {
			fatal("wal: %v", err)
		}
		l, rec, err := wal.Open(wal.Config{
			FS:     dfs,
			Policy: pol,
			Now:    func() int64 { return time.Now().UnixNano() },
		})
		if err != nil {
			fatal("wal: %v", err)
		}
		log = l
		if rec.TornTail != nil {
			fmt.Fprintf(os.Stderr, "ftmpd: wal: torn tail truncated at %s+%d: %v\n",
				rec.TruncatedSegment, rec.TruncatedAt, rec.TornTail)
		}
		replay = runtime.RecoverReplay(rec.Records)
		if n := len(replay.Deliveries); n > 0 {
			fmt.Fprintf(os.Stderr, "ftmpd: wal: recovered %d deliveries from %d segments (%d bytes)\n",
				n, rec.Segments, rec.Bytes)
			for _, d := range replay.Deliveries {
				fmt.Fprintf(out, "[replay] %s\n", d.Payload)
			}
			out.Flush()
		}
		if *recvWorkers == 0 {
			// Classic loop: write-ahead synchronously on the loop
			// goroutine. The pipelined runtime instead hands the log to
			// the delivery executor for group commit (below).
			cb = runtime.WrapDurable(log, cb, func(err error) {
				fmt.Fprintf(os.Stderr, "ftmpd: wal: %v\n", err)
			})
		}
	}

	opts := runtime.Options{}
	if *recvWorkers > 0 {
		opts.RecvWorkers = *recvWorkers
		opts.DeliveryDepth = 1024
		opts.SendShards = 2
		opts.SendBatch = *batchSend
		if log != nil {
			opts.WAL = log
			opts.WALBatch = *walBatch
			opts.OnWALError = func(err error) {
				fmt.Fprintf(os.Stderr, "ftmpd: wal: %v\n", err)
			}
		}
	}

	if *batchSend > 1 && *recvWorkers == 0 {
		fmt.Fprintln(os.Stderr, "ftmpd: -batch-send needs the pipelined runtime (-recv-workers > 0); sends stay unbatched")
	}

	mk := func(h transport.Handler) (transport.Transport, error) {
		switch *trFlag {
		case "multicast":
			mc := transport.NewUDPMulticast(h)
			mc.SetSendBatch(*batchSend)
			return mc, nil
		case "mesh":
			mesh, err := transport.NewUDPMeshConfig(*listen, h,
				transport.MeshConfig{RecvBatch: *batchRecv, SendBatch: *batchSend})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "ftmpd: listening on %s\n", mesh.LocalAddr())
			for _, p := range strings.Split(*peersFlag, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					continue
				}
				if err := mesh.AddPeer(p); err != nil {
					return nil, fmt.Errorf("peer %q: %w", p, err)
				}
			}
			// Loopback so our own sends count as received.
			if err := mesh.AddPeer(mesh.LocalAddr()); err != nil {
				return nil, err
			}
			return mesh, nil
		default:
			return nil, fmt.Errorf("unknown transport %q", *trFlag)
		}
	}

	r, err := runtime.New(cfg, cb, mk, opts)
	if err != nil {
		fatal("%v", err)
	}
	defer r.Close()

	r.Do(func(node *core.Node, now int64) {
		runtime.Bootstrap(node, now, group, membership, replay)
	})
	if ep, ok := replay.Epochs[group]; ok {
		fmt.Fprintf(os.Stderr, "ftmpd: resuming group %v at recovered view %v %v\n",
			group, ep.ViewTS, ep.Members)
	}
	if wr, ok := replay.Wedged[group]; ok {
		fmt.Fprintf(os.Stderr,
			"ftmpd: wal: group %v was WEDGED at crash (epoch %d, view %v %v): log tail predates a rejoin; this replica is not authoritative\n",
			group, wr.Epoch, wr.ViewTS, wr.Members)
	}
	fmt.Fprintf(os.Stderr, "ftmpd: processor %v in group %v %v; type lines to multicast\n",
		self, group, membership)

	// Periodic WAL compaction: checkpoint at the group's stability cut
	// (everything at or below it is acknowledged group-wide) and drop the
	// whole segments behind it. ftmpd's application state is the printed
	// transcript, so the checkpoint carries no snapshot — compaction's
	// effect is that a restart replays only the suffix. The current
	// membership epoch is retained so the compacted log still resumes the
	// group (the removed segments may hold the only RecEpoch).
	if log != nil && *compactEvery > 0 {
		go func() {
			ticker := time.NewTicker(*compactEvery)
			defer ticker.Stop()
			var lastCut ids.Timestamp
			if cut, ok := log.LastCheckpoint(); ok {
				lastCut = cut
			}
			for range ticker.C {
				var cut ids.Timestamp
				var retain []wal.Record
				r.Do(func(node *core.Node, now int64) {
					if st, ok := node.Status(group); ok && !st.Wedged && st.Joined {
						cut = st.Stable
						retain = []wal.Record{{Type: wal.RecEpoch, Epoch: &wal.EpochRecord{
							Group: group, ViewTS: st.ViewTS, Members: st.Members,
						}}}
					}
				})
				if cut == 0 || cut <= lastCut {
					continue
				}
				var compacted bool
				var segs int
				var disk int64
				err := r.WALExec(func() error {
					if log.Segments() <= 2 {
						return nil // too short to be worth a checkpoint write
					}
					if err := log.Compact(cut, nil, retain); err != nil {
						return err
					}
					compacted = true
					segs, disk = log.Segments(), log.DiskBytes()
					return nil
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftmpd: wal: compact: %v\n", err)
					continue
				}
				if !compacted {
					continue
				}
				lastCut = cut
				if !*quietFlag {
					fmt.Fprintf(os.Stderr, "ftmpd: wal: compacted at cut %v (%d segments, %d bytes on disk)\n",
						cut, segs, disk)
				}
			}
		}()
	}

	// SIGINT/SIGTERM leave gracefully: the RemoveProcessor is ordered
	// and this processor lingers until every remaining member has
	// acknowledged the removal (DESIGN.md "Graceful departure"), so no
	// survivor has to convict us and run a recovery round.
	var once sync.Once
	leave := func(why string) {
		once.Do(func() {
			fmt.Fprintf(os.Stderr, "ftmpd: %s, leaving group %v\n", why, group)
			shutdown(r, group, log, *recvWorkers > 0)
		})
	}
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigC
		leave(s.String())
	}()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case line == "/stats":
			r.Do(func(node *core.Node, now int64) {
				st, ok := node.Status(group)
				if !ok {
					return
				}
				s := node.Stats()
				fmt.Fprintf(os.Stderr,
					"ftmpd: members=%v epoch=%d wedged=%v horizon=%v stable=%v buffered=%d+%d queue=%d sent=%d hb=%d nacks=%d retrans=%d rxdrop=%d txdrop=%d\n",
					st.Members, st.Epoch, st.Wedged, st.Horizon, st.Stable, st.RMPHeld, st.ROMPPending, st.SendQueue,
					s.MessagesSent, s.HeartbeatsSent, s.RMP.NacksSent, s.RMP.Retransmissions,
					trace.Counter("runtime.rx_overflow_drops"), trace.Counter("runtime.tx_overflow_drops"))
				fmt.Fprintf(os.Stderr, "ftmpd: order_mode=%s", st.Order)
				if st.Order == core.OrderLeader {
					fmt.Fprintf(os.Stderr,
						" leader=%v seq_next=%d leader_seq_assigned=%d follower_gap_nacks=%d failover_reseq_ms=%d seq_runs_fenced=%d",
						st.Leader, st.SeqNext,
						trace.Counter("core.leader_seq_assigned"),
						trace.Counter("core.follower_gap_nacks"),
						trace.Counter("core.failover_reseq_ms"),
						trace.Counter("core.seq_runs_fenced"))
				}
				fmt.Fprintln(os.Stderr)
			})
			fmt.Fprintf(os.Stderr,
				"ftmpd: transport: tx_syscalls=%d tx_frames=%d sendmmsg=%d rx_syscalls=%d rx_frames=%d recvmmsg=%d mmsg_downgrades=%d tx_batches=%d tx_batched_msgs=%d\n",
				trace.Counter("transport.tx_syscalls"), trace.Counter("transport.tx_frames"),
				trace.Counter("transport.tx_sendmmsg_calls"),
				trace.Counter("transport.rx_syscalls"), trace.Counter("transport.rx_frames"),
				trace.Counter("transport.rx_recvmmsg_calls"),
				trace.Counter("transport.mmsg_downgrades"),
				trace.Counter("runtime.tx_batches"), trace.Counter("runtime.tx_batched_msgs"))
			if log != nil {
				_ = r.WALExec(func() error {
					ckpt := "none"
					if cut, ok := log.LastCheckpoint(); ok {
						ckpt = fmt.Sprintf("%v", cut)
					}
					fmt.Fprintf(os.Stderr, "ftmpd: wal: segments=%d disk=%dB checkpoint=%s compactions=%d\n",
						log.Segments(), log.DiskBytes(), ckpt, trace.Counter("wal.compactions"))
					return nil
				})
			}
		case line == "/leave":
			r.Do(func(node *core.Node, now int64) {
				if err := node.Leave(now, group); err != nil {
					fmt.Fprintf(os.Stderr, "ftmpd: leave: %v\n", err)
				}
			})
		default:
			r.Do(func(node *core.Node, now int64) {
				if err := node.Multicast(now, group, ids.ConnectionID{}, 0, []byte(line)); err != nil {
					fmt.Fprintf(os.Stderr, "ftmpd: multicast: %v\n", err)
				}
			})
		}
	}
	// stdin closed: same graceful departure as a signal.
	leave("stdin closed")
}

// shutdown drives the graceful departure: flush and fsync the WAL so
// everything delivered so far is durable, propose Leave, wait (bounded)
// until the removal is stable and the node has gone silent, log the
// final recovery point, then print the robustness counters accumulated
// over the process lifetime and exit.
func shutdown(r *runtime.Runner, group ids.GroupID, log *wal.Log, pipelined bool) {
	// With the pipelined runtime the delivery executor owns the log
	// (group commit); syncing means draining the executor through its
	// barrier, not touching the log from the loop.
	walSync := func() {
		if log == nil {
			return
		}
		var err error
		if pipelined {
			err = r.WALSync()
		} else {
			r.Do(func(*core.Node, int64) { err = log.Sync() })
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftmpd: wal sync: %v\n", err)
		}
	}
	walSync()
	r.Do(func(node *core.Node, now int64) {
		if err := node.Leave(now, group); err != nil {
			fmt.Fprintf(os.Stderr, "ftmpd: leave: %v\n", err)
		}
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := false
		r.Do(func(node *core.Node, now int64) {
			st, ok := node.Status(group)
			done = !ok || st.Left
		})
		if done {
			fmt.Fprintln(os.Stderr, "ftmpd: departure stable")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The departure itself appended view records; make them durable,
	// stop the pipeline (Close drains the executor, including its final
	// group commit and sync), and report where a restart would resume.
	walSync()
	r.Close()
	if log != nil {
		seg, off, synced := log.RecoveryPoint()
		fmt.Fprintf(os.Stderr, "ftmpd: wal recovery point: segment %d offset %d synced=%v\n",
			seg, off, synced)
		_ = log.Close()
	}
	fmt.Fprintln(os.Stderr, trace.CountersTable("ftmpd shutdown summary").String())
	os.Exit(0)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftmpd: "+format+"\n", args...)
	os.Exit(1)
}
