// Command ftmpinspect decodes FTMP datagrams and prints the layered
// structure of paper Figure 2: FTMP header, FTMP body, and — for
// Regular messages — the encapsulated GIOP message.
//
// Usage:
//
//	ftmpinspect -hex 46544d50...   # inspect a hex-encoded datagram
//	ftmpinspect -file pkt.bin      # inspect a binary capture
//	ftmpinspect -demo              # build and inspect a sample datagram
//	ftmpinspect -wal /var/lib/ftmp/node1   # decode a write-ahead log
//
// The -wal mode walks every segment of a WAL directory (or one .seg
// file), pretty-prints each record, and flags the first corrupt or torn
// record it meets — the point recovery would truncate to.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

func main() {
	var (
		hexFlag  = flag.String("hex", "", "hex-encoded FTMP datagram")
		fileFlag = flag.String("file", "", "file containing one binary FTMP datagram")
		demo     = flag.Bool("demo", false, "inspect a built-in sample Request datagram")
		walFlag  = flag.String("wal", "", "write-ahead log directory (or one segment file) to decode")
	)
	flag.Parse()

	if *walFlag != "" {
		if err := inspectWALPath(os.Stdout, *walFlag); err != nil {
			fatal("%v", err)
		}
		return
	}

	var data []byte
	switch {
	case *demo:
		data = sample()
	case *hexFlag != "":
		b, err := hex.DecodeString(strings.TrimSpace(*hexFlag))
		if err != nil {
			fatal("bad hex: %v", err)
		}
		data = b
	case *fileFlag != "":
		b, err := os.ReadFile(*fileFlag)
		if err != nil {
			fatal("read: %v", err)
		}
		data = b
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := inspect(os.Stdout, data); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftmpinspect: "+format+"\n", args...)
	os.Exit(1)
}

func inspect(w io.Writer, data []byte) error {
	m, err := wire.Decode(data)
	if err != nil {
		return fmt.Errorf("FTMP decode: %w", err)
	}
	h := m.Header
	minor := wire.VersionMinor
	switch h.Type {
	case wire.TypePacked:
		minor = wire.VersionMinorPacked
	case wire.TypeMembership:
		minor = wire.VersionMinorLineage
	}
	fmt.Fprintf(w, "FTMP header (%d bytes)\n", wire.HeaderSize)
	fmt.Fprintf(w, "  magic            FTMP, version %d.%d\n", wire.VersionMajor, minor)
	fmt.Fprintf(w, "  byte order       little-endian=%v\n", h.LittleEndian)
	fmt.Fprintf(w, "  retransmission   %v\n", h.Retransmission)
	fmt.Fprintf(w, "  message type     %v\n", h.Type)
	fmt.Fprintf(w, "  message size     %d\n", h.Size)
	fmt.Fprintf(w, "  source processor %v\n", h.Source)
	fmt.Fprintf(w, "  dest group       %v\n", h.DestGroup)
	fmt.Fprintf(w, "  sequence number  %d\n", h.Seq)
	fmt.Fprintf(w, "  message ts       %v\n", h.MsgTS)
	fmt.Fprintf(w, "  ack ts           %v\n", h.AckTS)

	switch b := m.Body.(type) {
	case *wire.Regular:
		fmt.Fprintf(w, "Regular body\n")
		fmt.Fprintf(w, "  connection id    %v\n", b.Conn)
		fmt.Fprintf(w, "  request number   %d\n", b.RequestNum)
		fmt.Fprintf(w, "  payload          %d bytes\n", len(b.Payload))
		if g, err := giop.Decode(b.Payload); err == nil {
			inspectGIOP(w, g)
		} else {
			fmt.Fprintf(w, "  (payload is not a GIOP message: %v)\n", err)
		}
	case *wire.Packed:
		fmt.Fprintf(w, "Packed body: %d entries (header Seq/MsgTS are the last entry's)\n", len(b.Entries))
		for i, e := range b.Entries {
			fmt.Fprintf(w, "  entry %d\n", i)
			fmt.Fprintf(w, "    sequence number %d\n", e.Seq)
			fmt.Fprintf(w, "    message ts      %v\n", e.TS)
			fmt.Fprintf(w, "    connection id   %v\n", e.Conn)
			fmt.Fprintf(w, "    request number  %d\n", e.RequestNum)
			fmt.Fprintf(w, "    payload         %d bytes\n", len(e.Payload))
			if g, err := giop.Decode(e.Payload); err == nil {
				inspectGIOP(w, g)
			}
		}
	case *wire.RetransmitRequest:
		fmt.Fprintf(w, "RetransmitRequest body: proc=%v seqs=[%d..%d]\n", b.Proc, b.StartSeq, b.StopSeq)
	case *wire.Heartbeat:
		fmt.Fprintf(w, "Heartbeat (no body)\n")
	case *wire.ConnectRequest:
		fmt.Fprintf(w, "ConnectRequest body: conn=%v procs=%v\n", b.Conn, b.Procs)
	case *wire.Connect:
		fmt.Fprintf(w, "Connect body: conn=%v group=%v addr=%v membership=%v@%v\n",
			b.Conn, b.Group, b.Addr, b.CurrentMembership, b.MembershipTS)
	case *wire.AddProcessor:
		fmt.Fprintf(w, "AddProcessor body: new=%v membership=%v@%v seqs=%v\n",
			b.NewMember, b.CurrentMembership, b.MembershipTS, b.CurrentSeqs)
	case *wire.RemoveProcessor:
		fmt.Fprintf(w, "RemoveProcessor body: member=%v\n", b.Member)
	case *wire.Suspect:
		fmt.Fprintf(w, "Suspect body: suspects=%v membershipTS=%v\n", b.Suspects, b.MembershipTS)
	case *wire.MembershipMsg:
		fmt.Fprintf(w, "Membership body: current=%v@%v proposed=%v seqs=%v\n",
			b.CurrentMembership, b.MembershipTS, b.NewMembership, b.CurrentSeqs)
		fmt.Fprintf(w, "  view lineage     epoch=%d predecessor=%v\n", b.Epoch, b.PredecessorTS)
	}
	return nil
}

func inspectGIOP(w io.Writer, g giop.Message) {
	fmt.Fprintf(w, "  GIOP message (encapsulated, paper Figure 2)\n")
	fmt.Fprintf(w, "    type           %v\n", g.Type)
	fmt.Fprintf(w, "    little-endian  %v\n", g.LittleEndian)
	switch {
	case g.Request != nil:
		r := g.Request
		fmt.Fprintf(w, "    request id     %d\n", r.RequestID)
		fmt.Fprintf(w, "    response       %v\n", r.ResponseExpected)
		fmt.Fprintf(w, "    object key     %q\n", r.ObjectKey)
		fmt.Fprintf(w, "    operation      %q\n", r.Operation)
		fmt.Fprintf(w, "    body           %d bytes\n", len(r.Body))
	case g.Reply != nil:
		r := g.Reply
		fmt.Fprintf(w, "    request id     %d\n", r.RequestID)
		fmt.Fprintf(w, "    status         %v\n", r.Status)
		fmt.Fprintf(w, "    body           %d bytes\n", len(r.Body))
	}
}

// sample builds a Regular message encapsulating a GIOP Request.
func sample() []byte {
	g, err := giop.Encode(giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        []byte("account"),
		Operation:        "deposit",
		Body:             []byte{0, 0, 0, 0, 0, 0, 0, 100},
	}}, false)
	if err != nil {
		panic(err)
	}
	f, err := wire.Encode(wire.Header{
		Source:    ids.ProcessorID(3),
		DestGroup: ids.GroupID(9),
		Seq:       12,
		MsgTS:     ids.MakeTimestamp(345, 3),
		AckTS:     ids.MakeTimestamp(340, 3),
	}, &wire.Regular{
		Conn:       ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20},
		RequestNum: 7,
		Payload:    g,
	})
	if err != nil {
		panic(err)
	}
	return f
}

// inspectWALPath decodes a WAL directory (every wal-*.seg inside, in
// sequence order) or a single segment file.
func inspectWALPath(w io.Writer, path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		recs, err := inspectSegment(w, path)
		if err != nil {
			return err
		}
		summarizeWAL(w, recs)
		return nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("no wal-*.seg segments in %s", path)
	}
	// Zero-padded sequence numbers make lexical order sequence order.
	sort.Strings(segs)
	var all []wal.Record
	for i, name := range segs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		recs, err := inspectSegment(w, filepath.Join(path, name))
		if err != nil {
			return err
		}
		all = append(all, recs...)
	}
	summarizeWAL(w, all)
	return nil
}

// summarizeWAL reports what a compacted log covers: the newest complete
// checkpoint chain (recovery's restore point), how many records it
// embodies, and the replay suffix past it. An incomplete trailing chain
// (crash mid-compaction) is called out — recovery ignores it.
func summarizeWAL(w io.Writer, recs []wal.Record) {
	ckptRecords := 0
	for _, r := range recs {
		if r.Type == wal.RecCheckpoint {
			ckptRecords++
		}
	}
	if ckptRecords == 0 {
		return // never compacted: nothing to summarize beyond the records
	}
	fmt.Fprintln(w)
	ck, ok := wal.LatestCheckpoint(recs)
	if !ok {
		fmt.Fprintf(w, "summary: %d checkpoint records but no complete chain — a crash or disk-full interrupted compaction; recovery replays everything\n", ckptRecords)
		return
	}
	suffix := 0
	for _, r := range recs[ck.End:] {
		if r.Type == wal.RecOp {
			suffix++
		}
	}
	fmt.Fprintf(w, "summary: checkpoint id=%d cut=%v state=%dB covers %d records; replay suffix: %d ops\n",
		ck.ID, ck.Cut, len(ck.State), ck.End, suffix)
	if trailing := recs[ck.End:]; len(trailing) > 0 {
		if _, complete := wal.LatestCheckpoint(trailing); !complete {
			for _, r := range trailing {
				if r.Type == wal.RecCheckpoint {
					fmt.Fprintf(w, "summary: a later checkpoint chain is incomplete (torn by crash or disk-full); recovery falls back to id=%d\n", ck.ID)
					break
				}
			}
		}
	}
}

// inspectSegment pretty-prints one segment, flagging the first corrupt
// or torn record (where recovery truncates). It returns the decoded
// records so the caller can summarize checkpoint coverage log-wide.
func inspectSegment(w io.Writer, path string) ([]wal.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "segment %s (%d bytes)\n", filepath.Base(path), len(data))
	if len(data) == 0 {
		fmt.Fprintf(w, "  (empty)\n")
		return nil, nil
	}
	sc, err := wal.NewScanner(data)
	if err != nil {
		fmt.Fprintf(w, "  !! %v\n", err)
		return nil, nil
	}
	var recs []wal.Record
	n := 0
	for {
		off := sc.Offset()
		payload, ok := sc.Next()
		if !ok {
			break
		}
		n++
		rec, err := wal.DecodeRecord(payload)
		if err != nil {
			fmt.Fprintf(w, "  %6d  record %d: undecodable: %v\n", off, n, err)
			continue
		}
		recs = append(recs, rec)
		printRecord(w, off, n, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(w, "  %6d  !! first corrupt record: %v\n", sc.Offset(), err)
		fmt.Fprintf(w, "          recovery truncates here (%d valid records kept)\n", n)
	} else {
		fmt.Fprintf(w, "  clean: %d records\n", n)
	}
	return recs, nil
}

func printRecord(w io.Writer, off int64, n int, rec wal.Record) {
	switch rec.Type {
	case wal.RecOp:
		op := rec.Op
		dir := "reply"
		if op.Request {
			dir = "request"
		}
		fmt.Fprintf(w, "  %6d  record %d: op %s conn=%v req=%d ts=%v payload=%dB",
			off, n, dir, op.Conn, op.ReqNum, op.TS, len(op.Payload))
		if g, err := giop.Decode(op.Payload); err == nil {
			switch {
			case g.Request != nil:
				fmt.Fprintf(w, " giop=%s(%q)", g.Type, g.Request.Operation)
			case g.Reply != nil:
				fmt.Fprintf(w, " giop=%s(%v)", g.Type, g.Reply.Status)
			default:
				fmt.Fprintf(w, " giop=%s", g.Type)
			}
		}
		fmt.Fprintln(w)
	case wal.RecMark:
		m := rec.Mark
		fmt.Fprintf(w, "  %6d  record %d: mark %v conn=%v req=%d\n", off, n, m.Kind, m.Conn, m.ReqNum)
	case wal.RecEpoch:
		e := rec.Epoch
		fmt.Fprintf(w, "  %6d  record %d: epoch group=%v viewTS=%v members=%v\n",
			off, n, e.Group, e.ViewTS, e.Members)
	case wal.RecWedge:
		wr := rec.Wedge
		fmt.Fprintf(w, "  %6d  record %d: wedge group=%v epoch=%d viewTS=%v members=%v\n",
			off, n, wr.Group, wr.Epoch, wr.ViewTS, wr.Members)
	case wal.RecSnapshot:
		s := rec.Snap
		fmt.Fprintf(w, "  %6d  record %d: snapshot conn=%v markerTS=%v upTo=%d state=%dB\n",
			off, n, s.Conn, s.MarkerTS, s.UpTo, len(s.State))
	case wal.RecCheckpoint:
		c := rec.Ckpt
		fmt.Fprintf(w, "  %6d  record %d: checkpoint id=%d cut=%v chunk=%d/%d state=%dB\n",
			off, n, c.ID, c.Cut, c.Chunk+1, c.Total, len(c.State))
	case wal.RecStateChunk:
		c := rec.Chunk
		fmt.Fprintf(w, "  %6d  record %d: state-chunk conn=%v markerTS=%v upTo=%d chunk=%d/%d data=%dB\n",
			off, n, c.Conn, c.MarkerTS, c.UpTo, c.Chunk+1, c.Total, len(c.Data))
	case wal.RecSeq:
		s := rec.Seq
		fmt.Fprintf(w, "  %6d  record %d: seq group=%v epoch=%d seq=%d source=%v srcSeq=%d\n",
			off, n, s.Group, s.Epoch, s.Seq, s.Source, s.SrcSeq)
	default:
		fmt.Fprintf(w, "  %6d  record %d: unknown type %v\n", off, n, rec.Type)
	}
}
