// Command ftmpinspect decodes FTMP datagrams and prints the layered
// structure of paper Figure 2: FTMP header, FTMP body, and — for
// Regular messages — the encapsulated GIOP message.
//
// Usage:
//
//	ftmpinspect -hex 46544d50...   # inspect a hex-encoded datagram
//	ftmpinspect -file pkt.bin      # inspect a binary capture
//	ftmpinspect -demo              # build and inspect a sample datagram
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

func main() {
	var (
		hexFlag  = flag.String("hex", "", "hex-encoded FTMP datagram")
		fileFlag = flag.String("file", "", "file containing one binary FTMP datagram")
		demo     = flag.Bool("demo", false, "inspect a built-in sample Request datagram")
	)
	flag.Parse()

	var data []byte
	switch {
	case *demo:
		data = sample()
	case *hexFlag != "":
		b, err := hex.DecodeString(strings.TrimSpace(*hexFlag))
		if err != nil {
			fatal("bad hex: %v", err)
		}
		data = b
	case *fileFlag != "":
		b, err := os.ReadFile(*fileFlag)
		if err != nil {
			fatal("read: %v", err)
		}
		data = b
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := inspect(os.Stdout, data); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftmpinspect: "+format+"\n", args...)
	os.Exit(1)
}

func inspect(w io.Writer, data []byte) error {
	m, err := wire.Decode(data)
	if err != nil {
		return fmt.Errorf("FTMP decode: %w", err)
	}
	h := m.Header
	fmt.Fprintf(w, "FTMP header (%d bytes)\n", wire.HeaderSize)
	fmt.Fprintf(w, "  magic            FTMP, version %d.%d\n", wire.VersionMajor, wire.VersionMinor)
	fmt.Fprintf(w, "  byte order       little-endian=%v\n", h.LittleEndian)
	fmt.Fprintf(w, "  retransmission   %v\n", h.Retransmission)
	fmt.Fprintf(w, "  message type     %v\n", h.Type)
	fmt.Fprintf(w, "  message size     %d\n", h.Size)
	fmt.Fprintf(w, "  source processor %v\n", h.Source)
	fmt.Fprintf(w, "  dest group       %v\n", h.DestGroup)
	fmt.Fprintf(w, "  sequence number  %d\n", h.Seq)
	fmt.Fprintf(w, "  message ts       %v\n", h.MsgTS)
	fmt.Fprintf(w, "  ack ts           %v\n", h.AckTS)

	switch b := m.Body.(type) {
	case *wire.Regular:
		fmt.Fprintf(w, "Regular body\n")
		fmt.Fprintf(w, "  connection id    %v\n", b.Conn)
		fmt.Fprintf(w, "  request number   %d\n", b.RequestNum)
		fmt.Fprintf(w, "  payload          %d bytes\n", len(b.Payload))
		if g, err := giop.Decode(b.Payload); err == nil {
			inspectGIOP(w, g)
		} else {
			fmt.Fprintf(w, "  (payload is not a GIOP message: %v)\n", err)
		}
	case *wire.RetransmitRequest:
		fmt.Fprintf(w, "RetransmitRequest body: proc=%v seqs=[%d..%d]\n", b.Proc, b.StartSeq, b.StopSeq)
	case *wire.Heartbeat:
		fmt.Fprintf(w, "Heartbeat (no body)\n")
	case *wire.ConnectRequest:
		fmt.Fprintf(w, "ConnectRequest body: conn=%v procs=%v\n", b.Conn, b.Procs)
	case *wire.Connect:
		fmt.Fprintf(w, "Connect body: conn=%v group=%v addr=%v membership=%v@%v\n",
			b.Conn, b.Group, b.Addr, b.CurrentMembership, b.MembershipTS)
	case *wire.AddProcessor:
		fmt.Fprintf(w, "AddProcessor body: new=%v membership=%v@%v seqs=%v\n",
			b.NewMember, b.CurrentMembership, b.MembershipTS, b.CurrentSeqs)
	case *wire.RemoveProcessor:
		fmt.Fprintf(w, "RemoveProcessor body: member=%v\n", b.Member)
	case *wire.Suspect:
		fmt.Fprintf(w, "Suspect body: suspects=%v membershipTS=%v\n", b.Suspects, b.MembershipTS)
	case *wire.MembershipMsg:
		fmt.Fprintf(w, "Membership body: current=%v@%v proposed=%v seqs=%v\n",
			b.CurrentMembership, b.MembershipTS, b.NewMembership, b.CurrentSeqs)
	}
	return nil
}

func inspectGIOP(w io.Writer, g giop.Message) {
	fmt.Fprintf(w, "  GIOP message (encapsulated, paper Figure 2)\n")
	fmt.Fprintf(w, "    type           %v\n", g.Type)
	fmt.Fprintf(w, "    little-endian  %v\n", g.LittleEndian)
	switch {
	case g.Request != nil:
		r := g.Request
		fmt.Fprintf(w, "    request id     %d\n", r.RequestID)
		fmt.Fprintf(w, "    response       %v\n", r.ResponseExpected)
		fmt.Fprintf(w, "    object key     %q\n", r.ObjectKey)
		fmt.Fprintf(w, "    operation      %q\n", r.Operation)
		fmt.Fprintf(w, "    body           %d bytes\n", len(r.Body))
	case g.Reply != nil:
		r := g.Reply
		fmt.Fprintf(w, "    request id     %d\n", r.RequestID)
		fmt.Fprintf(w, "    status         %v\n", r.Status)
		fmt.Fprintf(w, "    body           %d bytes\n", len(r.Body))
	}
}

// sample builds a Regular message encapsulating a GIOP Request.
func sample() []byte {
	g, err := giop.Encode(giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        []byte("account"),
		Operation:        "deposit",
		Body:             []byte{0, 0, 0, 0, 0, 0, 0, 100},
	}}, false)
	if err != nil {
		panic(err)
	}
	f, err := wire.Encode(wire.Header{
		Source:    ids.ProcessorID(3),
		DestGroup: ids.GroupID(9),
		Seq:       12,
		MsgTS:     ids.MakeTimestamp(345, 3),
		AckTS:     ids.MakeTimestamp(340, 3),
	}, &wire.Regular{
		Conn:       ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20},
		RequestNum: 7,
		Payload:    g,
	})
	if err != nil {
		panic(err)
	}
	return f
}
