package main

import (
	"strings"
	"testing"
)

func TestInspectSample(t *testing.T) {
	var sb strings.Builder
	if err := inspect(&sb, sample()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"FTMP header", "message type     Regular", "connection id",
		"GIOP message (encapsulated", "operation      \"deposit\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInspectGarbage(t *testing.T) {
	var sb strings.Builder
	if err := inspect(&sb, []byte("garbage")); err == nil {
		t.Error("garbage inspected without error")
	}
}

func TestInspectNonGIOPRegular(t *testing.T) {
	// A Regular whose payload is not GIOP reports it gracefully.
	var sb strings.Builder
	raw := sample()
	// Corrupt the payload's GIOP magic (it sits after the FTMP header,
	// connection id (16), request number (8) and length field (4)).
	off := 40 + 16 + 8 + 4
	raw2 := append([]byte(nil), raw...)
	raw2[off] = 'X'
	if err := inspect(&sb, raw2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not a GIOP message") {
		t.Errorf("missing non-GIOP note:\n%s", sb.String())
	}
}
