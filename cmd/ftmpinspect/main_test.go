package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/wal"
)

func TestInspectSample(t *testing.T) {
	var sb strings.Builder
	if err := inspect(&sb, sample()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"FTMP header", "message type     Regular", "connection id",
		"GIOP message (encapsulated", "operation      \"deposit\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInspectGarbage(t *testing.T) {
	var sb strings.Builder
	if err := inspect(&sb, []byte("garbage")); err == nil {
		t.Error("garbage inspected without error")
	}
}

func TestInspectNonGIOPRegular(t *testing.T) {
	// A Regular whose payload is not GIOP reports it gracefully.
	var sb strings.Builder
	raw := sample()
	// Corrupt the payload's GIOP magic (it sits after the FTMP header,
	// connection id (16), request number (8) and length field (4)).
	off := 40 + 16 + 8 + 4
	raw2 := append([]byte(nil), raw...)
	raw2[off] = 'X'
	if err := inspect(&sb, raw2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not a GIOP message") {
		t.Errorf("missing non-GIOP note:\n%s", sb.String())
	}
}

func TestInspectWAL(t *testing.T) {
	dir := t.TempDir()
	dfs, err := wal.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := wal.Open(wal.Config{FS: dfs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	recs := []wal.Record{
		{Type: wal.RecEpoch, Epoch: &wal.EpochRecord{Group: 100, ViewTS: ids.MakeTimestamp(1, 1), Members: ids.NewMembership(1, 2, 3)}},
		{Type: wal.RecOp, Op: &wal.OpRecord{Conn: c, ReqNum: 1, Request: true, TS: ids.MakeTimestamp(2, 1), Payload: sampleGIOP()}},
		{Type: wal.RecMark, Mark: &wal.MarkRecord{Kind: wal.MarkProcessed, Conn: c, ReqNum: 1}},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := inspectWALPath(&sb, dir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"segment wal-", "epoch group=", "op request", `giop=Request("deposit")`,
		"mark processed", "clean: 3 records",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Flip one byte in the op record's payload: the inspector must flag
	// the first corrupt record and keep the valid prefix count.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := inspectWALPath(&sb, segs[0]); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "first corrupt record") || !strings.Contains(out, "(2 valid records kept)") {
		t.Errorf("corruption not flagged:\n%s", out)
	}
}

func TestInspectCompactedWAL(t *testing.T) {
	dir := t.TempDir()
	dfs, err := wal.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := wal.Open(wal.Config{FS: dfs, Policy: wal.SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	c := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	for i := 1; i <= 8; i++ {
		if err := w.Append(wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
			Conn: c, ReqNum: ids.RequestNum(i), Request: true,
			TS: ids.MakeTimestamp(uint64(i), 1), Payload: sampleGIOP(),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	retain := []wal.Record{{Type: wal.RecEpoch, Epoch: &wal.EpochRecord{
		Group: 100, ViewTS: ids.MakeTimestamp(9, 1), Members: ids.NewMembership(1, 2),
	}}}
	if err := w.Compact(ids.MakeTimestamp(8, 1), []byte("state-at-cut"), retain); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
		Conn: c, ReqNum: 9, Request: true, TS: ids.MakeTimestamp(10, 1), Payload: sampleGIOP(),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := inspectWALPath(&sb, dir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"checkpoint id=1", "chunk=1/1", "state=12B",
		"summary: checkpoint id=1", "replay suffix: 1 ops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// sampleGIOP is the encapsulated request sample() uses, for WAL records.
func sampleGIOP() []byte {
	g, err := giop.Encode(giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        []byte("account"),
		Operation:        "deposit",
		Body:             []byte{0, 0, 0, 0, 0, 0, 0, 100},
	}}, false)
	if err != nil {
		panic(err)
	}
	return g
}
