package main

// The wire-codec microbenchmarks, runnable outside `go test` so the
// ftmpbench -json document can carry them alongside the experiment
// tables. They mirror internal/wire/codec_bench_test.go: the hot-path
// claims they quantify are the zero-allocation Decoder scratch reuse and
// the append-style encoder.

import (
	"fmt"
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

func benchConn() ids.ConnectionID {
	return ids.ConnectionID{ClientDomain: 1, ClientGroup: 2, ServerDomain: 3, ServerGroup: 4}
}

func benchRegularFrame(size int) []byte {
	raw, err := wire.Encode(wire.Header{
		Source:    ids.ProcessorID(3),
		DestGroup: ids.GroupID(9),
		Seq:       12,
		MsgTS:     ids.MakeTimestamp(345, 3),
		AckTS:     ids.MakeTimestamp(340, 3),
	}, &wire.Regular{Conn: benchConn(), RequestNum: 7, Payload: make([]byte, size)})
	if err != nil {
		panic(err)
	}
	return raw
}

func benchPackedFrame(count, size int) []byte {
	entries := make([]wire.PackedEntry, count)
	for i := range entries {
		entries[i] = wire.PackedEntry{
			Seq:        ids.SeqNum(10 + i),
			TS:         ids.MakeTimestamp(uint64(100+i), 3),
			Conn:       benchConn(),
			RequestNum: ids.RequestNum(i),
			Payload:    make([]byte, size),
		}
	}
	raw, err := wire.Encode(wire.Header{
		Source:    ids.ProcessorID(3),
		DestGroup: ids.GroupID(9),
		Seq:       entries[count-1].Seq,
		MsgTS:     entries[count-1].TS,
	}, &wire.Packed{Entries: entries})
	if err != nil {
		panic(err)
	}
	return raw
}

// microbenchTable runs each codec microbenchmark via testing.Benchmark
// and reports ns/op, allocs/op and throughput.
func microbenchTable() *trace.Table {
	tb := trace.NewTable(
		"BENCH: wire codec microbenchmarks (hot-path decode must be 0 allocs/op)",
		"name", "ns/op", "allocs/op", "B/op", "MB/s")
	decode := func(frame []byte) func(*testing.B) {
		return func(b *testing.B) {
			var d wire.Decoder
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DecoderRegular256", decode(benchRegularFrame(256))},
		{"DecoderPacked16x64", decode(benchPackedFrame(16, 64))},
		{"AppendEncodeRegular256", func(b *testing.B) {
			body := &wire.Regular{Conn: benchConn(), RequestNum: 7, Payload: make([]byte, 256)}
			h := wire.Header{Source: 3, DestGroup: 9, Seq: 12, MsgTS: ids.MakeTimestamp(345, 3)}
			scratch := make([]byte, 0, 4096)
			b.SetBytes(int64(wire.HeaderSize + 16 + 8 + 4 + 256))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.AppendEncode(scratch[:0], h, body); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		mbps := float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		tb.AddRow(bench.name,
			fmt.Sprintf("%.1f", float64(r.T.Nanoseconds())/float64(r.N)),
			r.AllocsPerOp(), r.AllocedBytesPerOp(), fmt.Sprintf("%.1f", mbps))
	}
	return tb
}
