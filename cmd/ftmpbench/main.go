// Command ftmpbench regenerates every table and figure recorded in
// EXPERIMENTS.md: the paper's structural figures (2 and 3), the
// performance characterization experiments E1-E13 (see DESIGN.md for the
// experiment index) and the wire-codec microbenchmarks.
//
// Usage:
//
//	ftmpbench                 # run everything at full size
//	ftmpbench -exp e3,e4      # run a subset
//	ftmpbench -quick          # reduced sizes (CI smoke)
//	ftmpbench -json           # machine-readable output (see EXPERIMENTS.md)
//	ftmpbench -pprof :6060    # serve net/http/pprof while running
//	ftmpbench -open-loop -clients 64 -rate 30000
//	                          # E16 only: open-loop client-scale load
//	ftmpbench -exp e17 -order both
//	                          # leader vs Lamport ordering latency
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"ftmp/internal/harness"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// jsonTable is one experiment table in the -json document: the trace
// table's title, headers and pre-formatted cells, plus the experiment
// name it ran under.
type jsonTable struct {
	Name    string     `json:"name"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// jsonDoc is the -json output document. The schema string names the
// layout so consumers can reject an incompatible future format; fields
// are emitted in declaration order, making the output diffable run to
// run (cell values vary only where the measurement does). Schema
// ftmpbench/3 adds the open-loop generator parameters (the E16 table
// carries offered vs achieved rate and syscalls/msg in its cells);
// consumers that only read tables can accept /2 and /3 alike.
type jsonDoc struct {
	Schema          string      `json:"schema"`
	SeedOffset      int64       `json:"seed_offset"`
	Quick           bool        `json:"quick"`
	OpenLoopClients int         `json:"open_loop_clients,omitempty"`
	OpenLoopRate    float64     `json:"open_loop_rate,omitempty"`
	Tables          []jsonTable `json:"tables"`
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiments: fig2,fig3,e1..e17,a1,a2,a3,bench or all")
		quick     = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		seed      = flag.Int64("seed", 0, "offset added to every experiment seed (0 reproduces EXPERIMENTS.md)")
		jsonFlag  = flag.Bool("json", false, "emit one JSON document instead of text tables")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address while the suite runs")
		openLoop  = flag.Bool("open-loop", false, "run only the open-loop client-scale load experiment (E16)")
		clients   = flag.Int("clients", 64, "open-loop: virtual client connections multiplexed onto the sender")
		rate      = flag.Float64("rate", 30000, "open-loop: aggregate offered load, msg/s")
		orderFlag = flag.String("order", "both", "e17: ordering modes to measure (both, lamport or leader)")
	)
	flag.Parse()
	harness.SeedOffset = *seed
	if *openLoop {
		*expFlag = "e16"
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers.
			fmt.Fprintf(os.Stderr, "ftmpbench: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ftmpbench: pprof: %v\n", err)
			}
		}()
	}

	msgs := 50
	e1Sizes := []int{2, 4, 8, 16}
	e2Sizes := []int{64, 256, 1024, 4096, 8192}
	e2Msgs := 400
	hbs := []simnet.Time{1, 2, 5, 10, 20, 50}
	e4Sizes := []int{4, 8}
	e4Timeouts := []simnet.Time{10, 25, 50, 100}
	e5Hbs := []simnet.Time{2, 5, 20, 100, 10_000}
	e6Rates := []float64{0, 0.01, 0.05, 0.10, 0.20}
	e7Reps := []int{1, 3, 5}
	e7Calls := 60
	e8Calls := 20
	e10Gaps := []simnet.Time{10, 1}
	e10FCDur := 15 * simnet.Second
	e11Sizes := []int{2000, 20000}
	e11Payload := 256
	e12Sizes := []int{64, 128, 256}
	e12Msgs := 4000
	e12IdleMaxes := []simnet.Time{0, 25, 100}
	e13Runs, e13Ops := 3, 10
	e14Msgs := 4000
	e16Msgs := 20000
	e17Msgs := 6000
	e17Rate := 2000.0
	e17FailMsgs := 1500
	e17SuspectMs := 250
	e15Sizes := []int{1000, 10000, 100000}
	e15Every := 1000
	e15Payload := 256
	e15Pad := 512 * 1024
	if *quick {
		msgs = 10
		e1Sizes = []int{2, 4}
		e2Sizes = []int{64, 1024}
		e2Msgs = 80
		hbs = []simnet.Time{2, 20}
		e4Sizes = []int{4}
		e4Timeouts = []simnet.Time{25, 100}
		e5Hbs = []simnet.Time{5, 10_000}
		e6Rates = []float64{0, 0.10}
		e7Reps = []int{1, 3}
		e7Calls = 20
		e8Calls = 5
		e10Gaps = []simnet.Time{10}
		e10FCDur = 5 * simnet.Second
		e11Sizes = []int{200, 2000}
		e12Sizes = []int{64, 256}
		e12Msgs = 1000
		e12IdleMaxes = []simnet.Time{0, 25}
		e13Runs, e13Ops = 1, 5
		e14Msgs = 300
		e16Msgs = 1500
		e17Msgs = 800
		e17FailMsgs = 600
		e15Sizes = []int{500, 5000}
		e15Every = 250
		e15Pad = 128 * 1024
	}
	for i := range e10Gaps {
		e10Gaps[i] *= simnet.Millisecond
	}
	for i := range hbs {
		hbs[i] *= simnet.Millisecond
	}
	for i := range e4Timeouts {
		e4Timeouts[i] *= simnet.Millisecond
	}
	for i := range e5Hbs {
		e5Hbs[i] *= simnet.Millisecond
	}
	for i := range e12IdleMaxes {
		e12IdleMaxes[i] *= simnet.Millisecond
	}

	want := make(map[string]bool)
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	type exp struct {
		name string
		run  func() []*trace.Table
	}
	one := func(f func() *trace.Table) func() []*trace.Table {
		return func() []*trace.Table { return []*trace.Table{f()} }
	}
	experiments := []exp{
		{"fig2", one(harness.Fig2Encapsulation)},
		{"fig3", one(harness.Fig3Matrix)},
		{"e1", one(func() *trace.Table { return harness.E1Latency(e1Sizes, msgs) })},
		{"e2", one(func() *trace.Table { return harness.E2Throughput(e2Sizes, e2Msgs) })},
		{"e3", one(func() *trace.Table { return harness.E3Heartbeat(hbs) })},
		{"e4", one(func() *trace.Table { return harness.E4Failover(e4Sizes, e4Timeouts) })},
		{"e5", one(func() *trace.Table { return harness.E5Buffer(e5Hbs) })},
		{"e6", one(func() *trace.Table { return harness.E6Loss(e6Rates) })},
		{"e7", one(func() *trace.Table { return harness.E7GIOP(e7Reps, e7Calls) })},
		{"e8", one(func() *trace.Table { return harness.E8Duplicates(e8Calls) })},
		{"e9", one(harness.E9PlannedChange)},
		{"e10", func() []*trace.Table {
			// E10 is about the robustness machinery, so it also reports
			// the event counters the pipeline left behind.
			trace.ResetCounters()
			tb := harness.E10Recovery(e10Gaps, e10FCDur)
			return []*trace.Table{tb, trace.CountersTable("e10 robustness counters")}
		}},
		{"e11", one(func() *trace.Table { return harness.E11Durability(e11Sizes, e11Payload) })},
		{"e12", func() []*trace.Table {
			return []*trace.Table{
				harness.E12Packing(e12Sizes, e12Msgs),
				harness.E12Suppression(e12IdleMaxes),
			}
		}},
		{"e13", func() []*trace.Table {
			// Like E10, E13 exercises robustness machinery and reports the
			// event counters the wedge/heal pipeline left behind.
			trace.ResetCounters()
			tb := harness.E13Partition(e13Runs, e13Ops)
			return []*trace.Table{tb, trace.CountersTable("e13 partition counters")}
		}},
		{"e14", func() []*trace.Table {
			// E14 measures the real runtime (UDP loopback + fsync), so it
			// resets the global counters around each mode itself.
			return []*trace.Table{harness.E14Pipeline(e14Msgs)}
		}},
		{"e16", func() []*trace.Table {
			// E16 measures the batched vs unbatched transport under
			// open-loop load; like E14 it resets counters per mode itself.
			return []*trace.Table{harness.E16Batching(*clients, e16Msgs, *rate)}
		}},
		{"e17", func() []*trace.Table {
			// E17 compares the two total-order modes on the real runtime
			// and measures leader failover; it resets counters per run.
			return []*trace.Table{
				harness.E17LeaderLatency(e17Msgs, e17Rate, *orderFlag),
				harness.E17Failover(e17FailMsgs, e17Rate, e17SuspectMs),
			}
		}},
		{"e15", func() []*trace.Table {
			// E15 exercises the compaction + streamed-transfer robustness
			// machinery; report the counters it leaves behind.
			trace.ResetCounters()
			return []*trace.Table{
				harness.E15Recovery(e15Sizes, e15Every, e15Payload),
				harness.E15Rejoin(e15Pad),
				trace.CountersTable("e15 recovery counters"),
			}
		}},
		{"a1", one(func() *trace.Table { return harness.A1RepairPolicy(0.10) })},
		{"a2", one(harness.A2ClockMode)},
		{"a3", one(harness.A3FlowControl)},
		{"bench", one(microbenchTable)},
	}

	doc := jsonDoc{Schema: "ftmpbench/4", SeedOffset: *seed, Quick: *quick,
		OpenLoopClients: *clients, OpenLoopRate: *rate}
	ran := 0
	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		if !*jsonFlag {
			fmt.Printf("=== %s ===\n", strings.ToUpper(e.name))
		}
		for _, tb := range e.run() {
			if *jsonFlag {
				doc.Tables = append(doc.Tables, jsonTable{
					Name:    e.name,
					Title:   tb.Title(),
					Headers: tb.Headers(),
					Rows:    tb.Rows(),
				})
			} else {
				fmt.Println(tb.String())
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known: fig2 fig3 e1..e17 a1 a2 a3 bench all\n", *expFlag)
		os.Exit(2)
	}
	if *jsonFlag {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftmpbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}
