// Command ftmpbench regenerates every table and figure recorded in
// EXPERIMENTS.md: the paper's structural figures (2 and 3) and the
// performance characterization experiments E1-E11 (see DESIGN.md for the
// experiment index).
//
// Usage:
//
//	ftmpbench                 # run everything at full size
//	ftmpbench -exp e3,e4      # run a subset
//	ftmpbench -quick          # reduced sizes (CI smoke)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftmp/internal/harness"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments: fig2,fig3,e1..e11,a1,a2,a3 or all")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		seed    = flag.Int64("seed", 0, "offset added to every experiment seed (0 reproduces EXPERIMENTS.md)")
	)
	flag.Parse()
	harness.SeedOffset = *seed

	msgs := 50
	e1Sizes := []int{2, 4, 8, 16}
	e2Sizes := []int{64, 256, 1024, 4096, 8192}
	e2Msgs := 400
	hbs := []simnet.Time{1, 2, 5, 10, 20, 50}
	e4Sizes := []int{4, 8}
	e4Timeouts := []simnet.Time{10, 25, 50, 100}
	e5Hbs := []simnet.Time{2, 5, 20, 100, 10_000}
	e6Rates := []float64{0, 0.01, 0.05, 0.10, 0.20}
	e7Reps := []int{1, 3, 5}
	e7Calls := 60
	e8Calls := 20
	e10Gaps := []simnet.Time{10, 1}
	e10FCDur := 15 * simnet.Second
	e11Sizes := []int{2000, 20000}
	e11Payload := 256
	if *quick {
		msgs = 10
		e1Sizes = []int{2, 4}
		e2Sizes = []int{64, 1024}
		e2Msgs = 80
		hbs = []simnet.Time{2, 20}
		e4Sizes = []int{4}
		e4Timeouts = []simnet.Time{25, 100}
		e5Hbs = []simnet.Time{5, 10_000}
		e6Rates = []float64{0, 0.10}
		e7Reps = []int{1, 3}
		e7Calls = 20
		e8Calls = 5
		e10Gaps = []simnet.Time{10}
		e10FCDur = 5 * simnet.Second
		e11Sizes = []int{200, 2000}
	}
	for i := range e10Gaps {
		e10Gaps[i] *= simnet.Millisecond
	}
	for i := range hbs {
		hbs[i] *= simnet.Millisecond
	}
	for i := range e4Timeouts {
		e4Timeouts[i] *= simnet.Millisecond
	}
	for i := range e5Hbs {
		e5Hbs[i] *= simnet.Millisecond
	}

	want := make(map[string]bool)
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	type exp struct {
		name string
		run  func() *trace.Table
	}
	experiments := []exp{
		{"fig2", harness.Fig2Encapsulation},
		{"fig3", harness.Fig3Matrix},
		{"e1", func() *trace.Table { return harness.E1Latency(e1Sizes, msgs) }},
		{"e2", func() *trace.Table { return harness.E2Throughput(e2Sizes, e2Msgs) }},
		{"e3", func() *trace.Table { return harness.E3Heartbeat(hbs) }},
		{"e4", func() *trace.Table { return harness.E4Failover(e4Sizes, e4Timeouts) }},
		{"e5", func() *trace.Table { return harness.E5Buffer(e5Hbs) }},
		{"e6", func() *trace.Table { return harness.E6Loss(e6Rates) }},
		{"e7", func() *trace.Table { return harness.E7GIOP(e7Reps, e7Calls) }},
		{"e8", func() *trace.Table { return harness.E8Duplicates(e8Calls) }},
		{"e9", func() *trace.Table { return harness.E9PlannedChange() }},
		{"e10", func() *trace.Table {
			// E10 is about the robustness machinery, so it also reports
			// the event counters the pipeline left behind.
			trace.ResetCounters()
			tb := harness.E10Recovery(e10Gaps, e10FCDur)
			fmt.Println(tb.String())
			return trace.CountersTable("e10 robustness counters")
		}},
		{"e11", func() *trace.Table { return harness.E11Durability(e11Sizes, e11Payload) }},
		{"a1", func() *trace.Table { return harness.A1RepairPolicy(0.10) }},
		{"a2", harness.A2ClockMode},
		{"a3", harness.A3FlowControl},
	}

	ran := 0
	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", strings.ToUpper(e.name))
		fmt.Println(e.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known: fig2 fig3 e1..e11 a1 a2 a3 all\n", *expFlag)
		os.Exit(2)
	}
}
