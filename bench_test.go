// Package repro's benchmarks regenerate, in compact form, every table
// and figure recorded in EXPERIMENTS.md. Each benchmark corresponds to
// one experiment id from DESIGN.md section 6; cmd/ftmpbench runs the
// full-size versions and prints the complete tables.
//
// The benchmarks run on the deterministic simulated network, so b.N
// iterations measure the wall-clock cost of simulating the experiment,
// while the protocol metrics (the paper-relevant numbers) are reported
// as custom benchmark metrics.
package repro_test

import (
	"testing"

	"ftmp/internal/clock"
	"ftmp/internal/harness"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// BenchmarkFig3Conformance exercises the Figure 3 matrix (structure is
// asserted inside Fig3Matrix; behaviour in internal/core tests).
func BenchmarkFig3Conformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig3Matrix().String()
	}
}

// BenchmarkFig2Encapsulation builds the Figure 2 nesting.
func BenchmarkFig2Encapsulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Fig2Encapsulation().String()
	}
}

// benchLatency is the E1 kernel for one protocol and group size.
func benchLatency(b *testing.B, proto harness.Protocol, n int) {
	b.ReportAllocs()
	var last *trace.Histogram
	for i := 0; i < b.N; i++ {
		last = harness.RunLatency(proto, int64(i+1), n, 10, 64, 5*simnet.Millisecond, simnet.NewConfig())
	}
	if last != nil {
		b.ReportMetric(trace.Ms(last.Mean()), "latency-ms")
		b.ReportMetric(trace.Ms(last.Percentile(99)), "p99-ms")
	}
}

// BenchmarkE1Latency* regenerate experiment E1 (latency vs group size,
// three protocols).
func BenchmarkE1LatencyFTMP4(b *testing.B)      { benchLatency(b, harness.ProtoFTMP, 4) }
func BenchmarkE1LatencyFTMP8(b *testing.B)      { benchLatency(b, harness.ProtoFTMP, 8) }
func BenchmarkE1LatencySequencer4(b *testing.B) { benchLatency(b, harness.ProtoSequencer, 4) }
func BenchmarkE1LatencySequencer8(b *testing.B) { benchLatency(b, harness.ProtoSequencer, 8) }
func BenchmarkE1LatencyTokenRing4(b *testing.B) { benchLatency(b, harness.ProtoTokenRing, 4) }
func BenchmarkE1LatencyTokenRing8(b *testing.B) { benchLatency(b, harness.ProtoTokenRing, 8) }

// BenchmarkE2Throughput regenerates experiment E2 (throughput vs payload
// size) for the 1 KiB point; the full sweep is in cmd/ftmpbench.
func BenchmarkE2Throughput(b *testing.B) {
	var last harness.ThroughputResult
	for i := 0; i < b.N; i++ {
		last = harness.RunThroughput(harness.ProtoFTMP, int64(i+1), 4, 200, 1024, simnet.NewConfig())
	}
	b.ReportMetric(last.MsgsPerS, "msgs/s")
	b.ReportMetric(last.MBPerS, "MB/s")
}

// BenchmarkE3Heartbeat regenerates experiment E3 for the 5ms point.
func BenchmarkE3Heartbeat(b *testing.B) {
	var last harness.E3Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE3Heartbeat(5*simnet.Millisecond, int64(i+1))
	}
	b.ReportMetric(last.MeanMs, "latency-ms")
	b.ReportMetric(last.PacketsPerS, "pkts/s")
}

// BenchmarkE4Failover regenerates experiment E4 (n=4, 50ms timeout).
func BenchmarkE4Failover(b *testing.B) {
	var last harness.E4Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE4Failover(4, 50*simnet.Millisecond, int64(i+1))
	}
	b.ReportMetric(last.DetectMs, "detect-ms")
	b.ReportMetric(last.NewViewMs, "newview-ms")
}

// BenchmarkE5Buffer regenerates experiment E5 (5ms heartbeats).
func BenchmarkE5Buffer(b *testing.B) {
	var last harness.E5Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE5Buffer(5*simnet.Millisecond, int64(i+1))
	}
	b.ReportMetric(float64(last.PeakBuffered), "peak-buffered")
	b.ReportMetric(float64(last.FinalBuffered), "final-buffered")
}

// BenchmarkE6Loss regenerates experiment E6 at 10% loss.
func BenchmarkE6Loss(b *testing.B) {
	var last harness.E6Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE6Loss(0.10, int64(i+1))
	}
	b.ReportMetric(float64(last.Retrans), "retransmissions")
	b.ReportMetric(last.GoodputMsgS, "goodput-msg/s")
}

// BenchmarkE7GIOP regenerates experiment E7 with 3 replicas.
func BenchmarkE7GIOP(b *testing.B) {
	var last *trace.Histogram
	for i := 0; i < b.N; i++ {
		last = harness.RunE7GIOP(3, 20, int64(i+1))
	}
	if last != nil {
		b.ReportMetric(trace.Ms(last.Mean()), "rtt-ms")
	}
}

// BenchmarkE8Duplicates regenerates experiment E8 (3x3 replicas).
func BenchmarkE8Duplicates(b *testing.B) {
	var last harness.E8Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE8Duplicates(3, 3, 5, int64(i+1))
	}
	b.ReportMetric(float64(last.DuplicateRequests), "dup-requests")
	b.ReportMetric(float64(last.DuplicateReplies), "dup-replies")
}

// BenchmarkE9PlannedChange regenerates experiment E9.
func BenchmarkE9PlannedChange(b *testing.B) {
	var last harness.E9Result
	for i := 0; i < b.N; i++ {
		last = harness.RunE9PlannedChange(int64(i + 1))
	}
	b.ReportMetric(last.BeforeMeanMs, "before-ms")
	b.ReportMetric(last.DuringMeanMs, "during-ms")
	b.ReportMetric(last.AfterMeanMs, "after-ms")
}

// BenchmarkA1RepairPolicy regenerates ablation A1 (promiscuous side).
func BenchmarkA1RepairPolicy(b *testing.B) {
	var last harness.A1Result
	for i := 0; i < b.N; i++ {
		last = harness.RunA1RepairPolicy(true, 0.10, int64(i+1))
	}
	b.ReportMetric(float64(last.Retrans), "retransmissions")
	b.ReportMetric(float64(last.DupDrops), "dup-drops")
}

// BenchmarkA2ClockMode regenerates ablation A2 (synchronized side).
func BenchmarkA2ClockMode(b *testing.B) {
	var last harness.A2Result
	for i := 0; i < b.N; i++ {
		last = harness.RunA2ClockMode(clock.Synchronized, int64(i+1))
	}
	b.ReportMetric(last.MeanMs, "latency-ms")
}

// BenchmarkA3FlowControl regenerates ablation A3 (window = 16).
func BenchmarkA3FlowControl(b *testing.B) {
	var last harness.A3Result
	for i := 0; i < b.N; i++ {
		last = harness.RunA3FlowControl(16, int64(i+1))
	}
	b.ReportMetric(float64(last.PeakBuffered), "peak-buffered")
	b.ReportMetric(last.CatchupMs, "catchup-ms")
}
