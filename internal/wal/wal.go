package wal

import (
	"errors"
	"fmt"
	"sort"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
)

// Policy selects when appended records are forced to stable storage.
type Policy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per record.
	SyncAlways Policy = iota
	// SyncInterval fsyncs when at least Interval nanoseconds have
	// passed since the last fsync; a crash loses at most one interval's
	// records.
	SyncInterval
	// SyncNever leaves durability to the OS; a crash can lose
	// everything since the last rotation or explicit Sync.
	SyncNever
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// DefaultSegmentSize is the rotation threshold when Config leaves it 0.
const DefaultSegmentSize = 4 << 20

// Config parameterizes Open.
type Config struct {
	// FS is the directory the log lives in. Required.
	FS FS
	// SegmentSize is the byte size past which the active segment is
	// rotated. 0 means DefaultSegmentSize.
	SegmentSize int64
	// Policy selects the fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the SyncInterval period in nanoseconds (default 1e8,
	// 100ms).
	Interval int64
	// Now supplies the current time in nanoseconds for SyncInterval.
	// Required only for that policy.
	Now func() int64
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records is every valid record, oldest first.
	Records []Record
	// Segments is the number of segment files scanned.
	Segments int
	// Bytes is the total valid bytes recovered (segment headers
	// included).
	Bytes int64
	// TornTail is non-nil when a segment ended in a torn or corrupt
	// frame; it describes the corruption. The segment was truncated to
	// the last valid record and any later segments removed.
	TornTail error
	// TruncatedSegment and TruncatedAt locate the repair when TornTail
	// is non-nil.
	TruncatedSegment string
	TruncatedAt      int64
}

// Log is a segmented append-only write-ahead log. Not safe for
// concurrent use; the owner (a core.Node loop or runtime.Runner) is
// single-threaded by design.
type Log struct {
	cfg      Config
	active   File
	activeSz int64
	seq      uint64 // active segment's sequence number
	lastSync int64  // Now() at last fsync (SyncInterval)
	dirty    bool   // bytes written since last fsync
	err      error  // sticky: after a write/sync failure the log is dead

	sizes   map[uint64]int64 // closed live segments: seq -> byte size
	ckptID  uint64           // highest checkpoint chain id ever used
	ckptCut ids.Timestamp    // stability cut of the newest complete checkpoint
	hasCkpt bool
}

// Open scans the segments under cfg.FS, recovers the longest valid
// prefix (truncating a torn tail and dropping segments after the first
// corruption), and opens a fresh segment for appends.
func Open(cfg Config) (*Log, *Recovery, error) {
	if cfg.FS == nil {
		return nil, nil, errors.New("wal: Config.FS is required")
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100e6
	}
	if cfg.Policy == SyncInterval && cfg.Now == nil {
		return nil, nil, errors.New("wal: SyncInterval requires Config.Now")
	}

	names, err := cfg.FS.List()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSegmentName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	rec := &Recovery{}
	lastSeq := uint64(0)
	sizes := make(map[uint64]int64)
	for i, seq := range seqs {
		name := segmentName(seq)
		data, err := cfg.FS.ReadFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read %s: %w", name, err)
		}
		lastSeq = seq
		rec.Segments++
		valid, corrupt, fatal := scanSegment(data, rec)
		if fatal != nil {
			// Full header present but not ours: refuse to repair —
			// truncating would silently destroy a file we don't own.
			return nil, nil, fmt.Errorf("wal: %s: %w", name, fatal)
		}
		sizes[seq] = valid
		if corrupt == nil {
			continue
		}
		// First corruption ends the recoverable prefix: every later
		// segment is removed (they were written after the corruption
		// point, and a consistent prefix cannot skip over a hole) and
		// this segment is truncated to its last valid record.
		rec.TornTail = fmt.Errorf("%s: %w", name, corrupt)
		rec.TruncatedSegment = name
		rec.TruncatedAt = valid
		// Repair order is crash-atomic: later segments go first, newest
		// to oldest, and the corrupt segment is truncated last. A crash
		// anywhere in between leaves the corruption in place, so the
		// next Open re-runs the same repair and converges to the same
		// strict prefix. Truncating first would make this segment scan
		// clean, silently accepting surviving later segments across the
		// hole.
		for j := len(seqs) - 1; j > i; j-- {
			if err := cfg.FS.Remove(segmentName(seqs[j])); err != nil {
				return nil, nil, fmt.Errorf("wal: remove %s: %w", segmentName(seqs[j]), err)
			}
			trace.Inc("wal.tail_truncations")
		}
		// Appends still resume past the highest sequence number ever
		// used, removed or not, keeping segment order monotonic.
		if last := seqs[len(seqs)-1]; last > lastSeq {
			lastSeq = last
		}
		if err := cfg.FS.Truncate(name, valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate %s: %w", name, err)
		}
		trace.Inc("wal.tail_truncations")
		break
	}
	if rec.Segments > 0 {
		trace.Inc("wal.recoveries")
	}

	l := &Log{cfg: cfg, seq: lastSeq, sizes: sizes}
	for _, r := range rec.Records {
		if r.Type == RecCheckpoint && r.Ckpt.ID > l.ckptID {
			l.ckptID = r.Ckpt.ID
		}
	}
	if ck, ok := LatestCheckpoint(rec.Records); ok {
		l.ckptCut, l.hasCkpt = ck.Cut, true
	}
	if cfg.Now != nil {
		l.lastSync = cfg.Now()
	}
	// Appends always go to a fresh segment: the tail of the last
	// recovered segment may be exactly where a previous process died,
	// and never re-opening it keeps recovery strictly prefix-shaped.
	if err := l.rotate(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// scanSegment appends data's valid records to rec and returns the byte
// length of the valid prefix plus the corruption that ended it (nil if
// the segment is fully valid). An empty file is a clean empty segment
// (crash before the header write); a partial header is a torn tail
// repaired by truncating to zero; a full header with the wrong magic or
// version is fatal — the file is not ours to repair.
func scanSegment(data []byte, rec *Recovery) (valid int64, corrupt, fatal error) {
	if len(data) == 0 {
		return 0, nil, nil
	}
	if len(data) < segHeaderLen {
		return 0, fmt.Errorf("%w: %d-byte segment header fragment", ErrTruncatedRecord, len(data)), nil
	}
	if err := CheckSegmentHeader(data); err != nil {
		return 0, nil, err
	}
	s := &Scanner{buf: data, pos: segHeaderLen}
	for {
		payload, ok := s.Next()
		if !ok {
			rec.Bytes += s.Offset()
			return s.Offset(), s.Err(), nil
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			// Framing was intact but the payload is not ours: treat as
			// corruption at this frame's start.
			off := s.Offset() - frameHeader - int64(len(payload))
			rec.Bytes += off
			return off, fmt.Errorf("%w at offset %d", err, off), nil
		}
		rec.Records = append(rec.Records, r)
	}
}

// rotate closes the active segment (fsyncing it so a rotation is also a
// durability point) and opens the next one.
func (l *Log) rotate() error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync on rotation: %w", err)
			return l.err
		}
		trace.Inc("wal.fsyncs")
		if err := l.active.Close(); err != nil {
			l.err = fmt.Errorf("wal: close segment: %w", err)
			return l.err
		}
		l.sizes[l.seq] = l.activeSz
	}
	l.seq++
	f, err := l.cfg.FS.Create(segmentName(l.seq))
	if err != nil {
		l.err = fmt.Errorf("wal: create segment: %w", err)
		return l.err
	}
	hdr := SegmentHeader()
	if n, err := f.Write(hdr); err != nil || n != len(hdr) {
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(hdr))
		}
		l.err = fmt.Errorf("wal: write segment header: %w", err)
		return l.err
	}
	l.active, l.activeSz, l.dirty = f, int64(len(hdr)), true
	return nil
}

// Append encodes, frames and writes r, then applies the fsync policy.
// Errors are sticky: after any failure the log refuses further appends
// so a durability hole cannot be silently written past.
func (l *Log) Append(r Record) error {
	if l.err != nil {
		return l.err
	}
	payload, err := EncodeRecord(r)
	if err != nil {
		return err // encoding error: caller bug, not a log failure
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	n, err := l.active.Write(frame)
	if err == nil && n != len(frame) {
		err = fmt.Errorf("short write (%d of %d bytes)", n, len(frame))
	}
	if err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	l.activeSz += int64(len(frame))
	l.dirty = true
	trace.Inc("wal.appends")
	trace.Count("wal.bytes", uint64(len(frame)))

	switch l.cfg.Policy {
	case SyncAlways:
		if err := l.Sync(); err != nil {
			return err
		}
	case SyncInterval:
		if now := l.cfg.Now(); now-l.lastSync >= l.cfg.Interval {
			if err := l.Sync(); err != nil {
				return err
			}
			l.lastSync = now
		}
	}
	if l.activeSz >= l.cfg.SegmentSize {
		return l.rotate()
	}
	return nil
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return l.err
	}
	l.dirty = false
	trace.Inc("wal.fsyncs")
	return nil
}

// Close fsyncs and closes the active segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	if l.err != nil {
		return l.err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	err := l.active.Close()
	l.err = errors.New("wal: log closed")
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	return l.err
}

// RecoveryPoint describes the durable position: the active segment's
// sequence number and the byte offset within it that is guaranteed on
// stable storage under the current policy (for SyncNever and a dirty
// SyncInterval window this is a lower bound).
func (l *Log) RecoveryPoint() (segment uint64, bytes int64, durable bool) {
	return l.seq, l.activeSz, !l.dirty
}

// Segments returns the number of live segment files (the active one
// included).
func (l *Log) Segments() int {
	return len(l.sizes) + 1
}

// DiskBytes returns the total bytes held by live segments.
func (l *Log) DiskBytes() int64 {
	total := l.activeSz
	for _, sz := range l.sizes {
		total += sz
	}
	return total
}

// LastCheckpoint returns the stability cut of the newest complete
// checkpoint (recovered at Open or written by Compact), and whether one
// exists.
func (l *Log) LastCheckpoint() (ids.Timestamp, bool) {
	return l.ckptCut, l.hasCkpt
}
