package wal

import (
	"fmt"
	"sort"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
)

// CompactChunk is the byte size of one checkpoint chunk record. Large
// application snapshots are split so no single frame approaches
// MaxRecord and a disk-full failure loses at most one chunk's write.
const CompactChunk = 1 << 20

// Checkpoint is a reassembled checkpoint chain: the application state
// at the stability cut Cut.
type Checkpoint struct {
	ID    uint64
	Cut   ids.Timestamp
	State []byte
	// End is the index just past the chain's final chunk in the scanned
	// records slice: everything before it is embodied by the checkpoint
	// (or predates it), everything at or after it is the replay suffix.
	End int
}

// LatestCheckpoint scans records (oldest first, as recovered by Open)
// and reassembles the newest complete checkpoint chain. Incomplete or
// inconsistent chains — a crash or disk-full mid-checkpoint leaves a
// chunk prefix — are ignored, so the result is always a checkpoint that
// was fully durable when written.
func LatestCheckpoint(records []Record) (Checkpoint, bool) {
	type chain struct {
		cut    ids.Timestamp
		total  uint32
		chunks [][]byte
	}
	open := make(map[uint64]*chain)
	var best Checkpoint
	found := false
	for i, r := range records {
		if r.Type != RecCheckpoint || r.Ckpt == nil {
			continue
		}
		c := r.Ckpt
		if c.Chunk == 0 {
			// A chunk 0 restarts the chain for this id (a retried
			// checkpoint after a failure reuses the id; the log order
			// makes the last complete run win).
			if c.Total == 0 {
				delete(open, c.ID)
				continue
			}
			open[c.ID] = &chain{cut: c.Cut, total: c.Total}
		}
		ch := open[c.ID]
		if ch == nil || c.Chunk != uint32(len(ch.chunks)) || c.Total != ch.total || c.Cut != ch.cut {
			delete(open, c.ID)
			continue
		}
		ch.chunks = append(ch.chunks, c.State)
		if uint32(len(ch.chunks)) == ch.total {
			var n int
			for _, b := range ch.chunks {
				n += len(b)
			}
			state := make([]byte, 0, n)
			for _, b := range ch.chunks {
				state = append(state, b...)
			}
			if !found || c.ID >= best.ID {
				best = Checkpoint{ID: c.ID, Cut: ch.cut, State: state, End: i + 1}
				found = true
			}
			delete(open, c.ID)
		}
	}
	return best, found
}

// checkpointRecords splits state into a chunk chain at the cut.
func checkpointRecords(id uint64, cut ids.Timestamp, state []byte) []Record {
	total := uint32((len(state) + CompactChunk - 1) / CompactChunk)
	if total == 0 {
		total = 1 // an empty state is still a one-chunk chain
	}
	rs := make([]Record, 0, total)
	for i := uint32(0); i < total; i++ {
		lo := int(i) * CompactChunk
		hi := lo + CompactChunk
		if hi > len(state) {
			hi = len(state)
		}
		rs = append(rs, Record{Type: RecCheckpoint, Ckpt: &CheckpointRecord{
			ID: id, Cut: cut, Chunk: i, Total: total, State: state[lo:hi],
		}})
	}
	return rs
}

// Compact persists a checkpoint of state at the stability cut, then
// removes every whole segment strictly behind it. retain carries
// records that must survive compaction regardless of age (the current
// membership epochs — the removed segments may hold the only RecEpoch).
//
// The ordering is crash-atomic, mirroring the torn-tail repair
// discipline:
//
//  1. rotate to a fresh segment, so the checkpoint chain starts in a
//     segment holding nothing else;
//  2. append the chunk chain and retain records, then fsync — the
//     checkpoint is durable before anything is destroyed;
//  3. remove the old segments oldest-first with dir-synced removal.
//
// A crash after step 2 leaves a durable checkpoint plus stale segments:
// the next Open recovers both (the checkpoint simply covers a prefix of
// the records) and the next Compact removes the leftovers. A crash
// mid-step-3 is the same, minus whichever segments already went.
//
// A write failure in step 2 (disk-full) degrades, not corrupts: the
// fresh segment is truncated back to its bare header — excising the
// torn chunk frame that would otherwise end the recoverable prefix and
// silently discard every record logged after it — the sticky error is
// cleared, and the log keeps appending so the caller can retry later.
func (l *Log) Compact(cut ids.Timestamp, state []byte, retain []Record) error {
	if l.err != nil {
		return l.err
	}
	if err := l.rotate(); err != nil {
		return err
	}
	firstSeq := l.seq
	id := l.ckptID + 1
	rs := append(checkpointRecords(id, cut, state), retain...)
	for _, r := range rs {
		if err := l.Append(r); err != nil {
			if rerr := l.repairCompactTear(); rerr != nil {
				return fmt.Errorf("wal: compact: %w (repair failed: %v)", err, rerr)
			}
			trace.Inc("wal.compact_aborts")
			return fmt.Errorf("wal: compact aborted, log still appendable: %w", err)
		}
	}
	if err := l.Sync(); err != nil {
		if rerr := l.repairCompactTear(); rerr != nil {
			return fmt.Errorf("wal: compact: %w (repair failed: %v)", err, rerr)
		}
		trace.Inc("wal.compact_aborts")
		return fmt.Errorf("wal: compact aborted, log still appendable: %w", err)
	}
	// The checkpoint is durable: record it before destroying anything,
	// so even a failed removal below leaves the log's view consistent.
	l.ckptID, l.ckptCut, l.hasCkpt = id, cut, true

	old := make([]uint64, 0, len(l.sizes))
	for seq := range l.sizes {
		if seq < firstSeq {
			old = append(old, seq)
		}
	}
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
	for _, seq := range old {
		if err := l.cfg.FS.Remove(segmentName(seq)); err != nil {
			// Removal failure is not a log failure: the checkpoint is
			// durable and appends still work; leftover segments are
			// reclaimed by the next Compact.
			return fmt.Errorf("wal: compact: remove %s: %w", segmentName(seq), err)
		}
		delete(l.sizes, seq)
		trace.Inc("wal.segments_compacted")
	}
	trace.Inc("wal.compactions")
	return nil
}

// repairCompactTear recovers the log after a failed checkpoint append.
// Compact rotated before writing, so every frame at or past the active
// segment's header belongs to the abandoned checkpoint; truncating the
// segment back to its header discards only those, un-sticks the log,
// and leaves the recoverable prefix exactly as it was.
func (l *Log) repairCompactTear() error {
	name := segmentName(l.seq)
	if err := l.cfg.FS.Truncate(name, segHeaderLen); err != nil {
		return err
	}
	l.err = nil
	l.activeSz = segHeaderLen
	l.dirty = false
	return nil
}

// CompactorConfig parameterizes a Compactor.
type CompactorConfig struct {
	// Log is the log to compact. Required.
	Log *Log
	// MinSegments suppresses compaction until more than this many live
	// segments exist (default 2): compacting a short log trades a
	// checkpoint write for nothing.
	MinSegments int
	// Snapshot captures the application state at a stability cut: it
	// returns the cut (0 if no cut is known yet), the serialized state
	// covering everything at or below it, and records that must survive
	// compaction (current membership epochs). Required.
	Snapshot func() (cut ids.Timestamp, state []byte, retain []Record, err error)
}

// Compactor drives periodic checkpoint-and-truncate over a Log, keyed
// to the group's ack-timestamp stability cut: only records at or below
// the cut are covered by the snapshot, so compaction never outruns what
// the group has made stable.
type Compactor struct {
	cfg     CompactorConfig
	lastCut ids.Timestamp
}

// NewCompactor returns a Compactor over cfg.
func NewCompactor(cfg CompactorConfig) *Compactor {
	if cfg.MinSegments <= 0 {
		cfg.MinSegments = 2
	}
	c := &Compactor{cfg: cfg}
	if cut, ok := cfg.Log.LastCheckpoint(); ok {
		c.lastCut = cut
	}
	return c
}

// MaybeCompact checkpoints and truncates if the log has grown past
// MinSegments and the stability cut has advanced since the last
// checkpoint. Returns whether a compaction ran. An error leaves the
// log appendable (see Compact); callers retry on the next tick.
func (c *Compactor) MaybeCompact() (bool, error) {
	if c.cfg.Log.Segments() <= c.cfg.MinSegments {
		return false, nil
	}
	cut, state, retain, err := c.cfg.Snapshot()
	if err != nil {
		return false, err
	}
	if cut == 0 || cut <= c.lastCut {
		return false, nil
	}
	if err := c.cfg.Log.Compact(cut, state, retain); err != nil {
		return false, err
	}
	c.lastCut = cut
	return true, nil
}
