package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ftmp/internal/ids"
)

// On-disk layout.
//
// Segment file:  8-byte header ("FTWL", u16 version, u16 zero) followed
// by frames. Frame: u32 payload length | u32 CRC32C(payload) | payload.
// Payload: u8 record type | type-specific body. All integers big-endian,
// matching the FTMP wire codec's canonical byte order.
//
// A frame whose length field is zero, exceeds MaxRecord, or runs past
// the end of the file, or whose CRC mismatches, ends the valid prefix:
// recovery truncates there (torn tail) and ftmpinspect flags it.

const (
	segMagic     = "FTWL"
	segVersion   = 1
	segHeaderLen = 8
	frameHeader  = 8
	// MaxRecord bounds one record's payload; larger length fields are
	// treated as corruption, not allocation requests.
	MaxRecord = 1 << 24
)

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the codec and recovery.
var (
	ErrBadSegmentHeader = errors.New("wal: bad segment header")
	ErrCorruptRecord    = errors.New("wal: corrupt record")
	ErrTruncatedRecord  = errors.New("wal: truncated record")
	ErrBadRecord        = errors.New("wal: undecodable record payload")
)

// RecordType discriminates the persisted record kinds.
type RecordType uint8

const (
	// RecOp is a delivered GIOP operation with its (connection id,
	// request number) key — the replayable message log.
	RecOp RecordType = 1
	// RecMark is a duplicate-suppression table entry: the (connection,
	// request) pair was processed (dispatched) or replied here.
	RecMark RecordType = 2
	// RecEpoch is an installed membership epoch.
	RecEpoch RecordType = 3
	// RecSnapshot is a state snapshot applied at this replica (state
	// transfer, or the delta fallback): the servant state at the cut,
	// with the processed watermark that history embodies. It is written
	// BEFORE the MarkProcessedUpTo watermark jump it justifies, so
	// recovery never sees "processed up to N" without the state below N.
	RecSnapshot RecordType = 4
	// RecWedge records that this replica wedged as a minority-partition
	// survivor (PGMP primary partition): nothing past this point was
	// committed in the group. Cleared by a later RecEpoch for the same
	// group (the replica rejoined the primary and installed its view),
	// so a replica that crashes while still wedged recovers knowing its
	// log tail precedes a pending state transfer.
	RecWedge RecordType = 5
	// RecCheckpoint is one chunk of an incremental checkpoint: an
	// application snapshot covering every record with a timestamp at or
	// below the stability cut. A checkpoint is a chain of chunk records
	// sharing an ID; only a complete chain (chunks 0..Total-1, in log
	// order) is authoritative, so a crash mid-checkpoint degrades to the
	// previous one. Segments strictly behind a durable checkpoint are
	// removed by Compact.
	RecCheckpoint RecordType = 6
	// RecStateChunk is one applied chunk of a streamed state transfer,
	// persisted by the joining replica as it stages the stream: after a
	// crash mid-transfer the joiner recovers its contiguous staged
	// prefix and resumes from the last acked chunk instead of receiving
	// the whole state again.
	RecStateChunk RecordType = 7
	// RecSeq is a leader-mode ordering assignment (FTMP 1.3): the message
	// (Source, SrcSeq) was delivered here as delivery sequence Seq of
	// epoch Epoch. Written in the same group commit as the delivery's
	// RecOp, before the application callback runs, so no ordered delivery
	// survives a crash unlogged and a restarted replica knows the exact
	// sequence prefix it committed under each leader's reign.
	RecSeq RecordType = 8
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecOp:
		return "Op"
	case RecMark:
		return "Mark"
	case RecEpoch:
		return "Epoch"
	case RecSnapshot:
		return "Snapshot"
	case RecWedge:
		return "Wedge"
	case RecCheckpoint:
		return "Checkpoint"
	case RecStateChunk:
		return "StateChunk"
	case RecSeq:
		return "Seq"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// MarkKind distinguishes the two duplicate-suppression filters.
type MarkKind uint8

const (
	// MarkProcessed records a dispatched request.
	MarkProcessed MarkKind = 0
	// MarkReplied records a reply delivered to a local caller.
	MarkReplied MarkKind = 1
	// MarkProcessedUpTo records a watermark jump: every request number
	// at or below ReqNum is processed (a state snapshot embodies the
	// history, so per-request marks below it never existed here).
	MarkProcessedUpTo MarkKind = 2
)

// String implements fmt.Stringer.
func (k MarkKind) String() string {
	switch k {
	case MarkProcessed:
		return "processed"
	case MarkReplied:
		return "replied"
	case MarkProcessedUpTo:
		return "processed-up-to"
	default:
		return fmt.Sprintf("MarkKind(%d)", uint8(k))
	}
}

// OpRecord is one delivered GIOP operation.
type OpRecord struct {
	Conn    ids.ConnectionID
	ReqNum  ids.RequestNum
	Request bool // request or reply
	TS      ids.Timestamp
	Payload []byte
}

// MarkRecord is one duplicate-suppression table entry.
type MarkRecord struct {
	Kind   MarkKind
	Conn   ids.ConnectionID
	ReqNum ids.RequestNum
}

// EpochRecord is one installed membership epoch.
type EpochRecord struct {
	Group   ids.GroupID
	ViewTS  ids.Timestamp
	Members ids.Membership
}

// WedgeRecord marks the wedge point: the group's view (epoch counter,
// view timestamp, membership) at the moment this replica stopped
// committing as a minority-partition survivor.
type WedgeRecord struct {
	Group   ids.GroupID
	Epoch   uint64
	ViewTS  ids.Timestamp
	Members ids.Membership
}

// SnapshotRecord is one applied state snapshot: the servant state of
// Conn's server object group at the cut MarkerTS, embodying every
// request up to UpTo.
type SnapshotRecord struct {
	Conn     ids.ConnectionID
	MarkerTS ids.Timestamp
	UpTo     ids.RequestNum
	State    []byte
}

// CheckpointRecord is one chunk of an incremental checkpoint chain.
// Chunks sharing an ID and written in order 0..Total-1 assemble into the
// application state at the stability cut Cut; an incomplete chain (crash
// or disk-full mid-checkpoint) is ignored by recovery, which falls back
// to the previous complete chain.
type CheckpointRecord struct {
	ID    uint64        // chain id, monotonic per log
	Cut   ids.Timestamp // stability cut the state covers
	Chunk uint32        // index of this chunk within the chain
	Total uint32        // chunks in the chain
	State []byte
}

// StateChunkRecord is one streamed state-transfer chunk applied to the
// joiner's staging area: chunk Chunk of Total for Conn's transfer at the
// cut MarkerTS (embodying requests up to UpTo). A contiguous prefix of
// these records lets a restarted joiner resume the transfer from its
// last durable chunk instead of from byte zero.
type StateChunkRecord struct {
	Conn     ids.ConnectionID
	MarkerTS ids.Timestamp
	UpTo     ids.RequestNum
	Chunk    uint32
	Total    uint32
	Data     []byte
}

// SeqRecord is one leader-mode ordering assignment committed at this
// replica: message (Source, SrcSeq) delivered as sequence Seq of Epoch.
type SeqRecord struct {
	Group  ids.GroupID
	Epoch  uint64
	Seq    uint64
	Source ids.ProcessorID
	SrcSeq ids.SeqNum
}

// Record is the tagged union persisted per frame.
type Record struct {
	Type  RecordType
	Op    *OpRecord
	Mark  *MarkRecord
	Epoch *EpochRecord
	Snap  *SnapshotRecord
	Wedge *WedgeRecord
	Ckpt  *CheckpointRecord
	Chunk *StateChunkRecord
	Seq   *SeqRecord
}

func appendConn(b []byte, c ids.ConnectionID) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(c.ClientDomain))
	b = binary.BigEndian.AppendUint32(b, uint32(c.ClientGroup))
	b = binary.BigEndian.AppendUint32(b, uint32(c.ServerDomain))
	b = binary.BigEndian.AppendUint32(b, uint32(c.ServerGroup))
	return b
}

// EncodeRecord serializes r's payload (type byte + body, no framing).
func EncodeRecord(r Record) ([]byte, error) {
	b := []byte{byte(r.Type)}
	switch r.Type {
	case RecOp:
		if r.Op == nil {
			return nil, fmt.Errorf("%w: nil Op", ErrBadRecord)
		}
		b = appendConn(b, r.Op.Conn)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Op.ReqNum))
		if r.Op.Request {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, uint64(r.Op.TS))
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Op.Payload)))
		b = append(b, r.Op.Payload...)
	case RecMark:
		if r.Mark == nil {
			return nil, fmt.Errorf("%w: nil Mark", ErrBadRecord)
		}
		b = append(b, byte(r.Mark.Kind))
		b = appendConn(b, r.Mark.Conn)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Mark.ReqNum))
	case RecEpoch:
		if r.Epoch == nil {
			return nil, fmt.Errorf("%w: nil Epoch", ErrBadRecord)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(r.Epoch.Group))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Epoch.ViewTS))
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Epoch.Members)))
		for _, p := range r.Epoch.Members {
			b = binary.BigEndian.AppendUint32(b, uint32(p))
		}
	case RecSnapshot:
		if r.Snap == nil {
			return nil, fmt.Errorf("%w: nil Snap", ErrBadRecord)
		}
		b = appendConn(b, r.Snap.Conn)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Snap.MarkerTS))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Snap.UpTo))
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Snap.State)))
		b = append(b, r.Snap.State...)
	case RecWedge:
		if r.Wedge == nil {
			return nil, fmt.Errorf("%w: nil Wedge", ErrBadRecord)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(r.Wedge.Group))
		b = binary.BigEndian.AppendUint64(b, r.Wedge.Epoch)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Wedge.ViewTS))
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Wedge.Members)))
		for _, p := range r.Wedge.Members {
			b = binary.BigEndian.AppendUint32(b, uint32(p))
		}
	case RecCheckpoint:
		if r.Ckpt == nil {
			return nil, fmt.Errorf("%w: nil Ckpt", ErrBadRecord)
		}
		b = binary.BigEndian.AppendUint64(b, r.Ckpt.ID)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Ckpt.Cut))
		b = binary.BigEndian.AppendUint32(b, r.Ckpt.Chunk)
		b = binary.BigEndian.AppendUint32(b, r.Ckpt.Total)
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Ckpt.State)))
		b = append(b, r.Ckpt.State...)
	case RecStateChunk:
		if r.Chunk == nil {
			return nil, fmt.Errorf("%w: nil Chunk", ErrBadRecord)
		}
		b = appendConn(b, r.Chunk.Conn)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Chunk.MarkerTS))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Chunk.UpTo))
		b = binary.BigEndian.AppendUint32(b, r.Chunk.Chunk)
		b = binary.BigEndian.AppendUint32(b, r.Chunk.Total)
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.Chunk.Data)))
		b = append(b, r.Chunk.Data...)
	case RecSeq:
		if r.Seq == nil {
			return nil, fmt.Errorf("%w: nil Seq", ErrBadRecord)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(r.Seq.Group))
		b = binary.BigEndian.AppendUint64(b, r.Seq.Epoch)
		b = binary.BigEndian.AppendUint64(b, r.Seq.Seq)
		b = binary.BigEndian.AppendUint32(b, uint32(r.Seq.Source))
		b = binary.BigEndian.AppendUint32(b, uint32(r.Seq.SrcSeq))
	default:
		return nil, fmt.Errorf("%w: unknown type %v", ErrBadRecord, r.Type)
	}
	if len(b) > MaxRecord {
		// The scanner treats larger frames as corruption; refusing here
		// fails the append loudly instead of poisoning the segment.
		return nil, fmt.Errorf("%w: %d-byte record exceeds MaxRecord", ErrBadRecord, len(b))
	}
	return b, nil
}

type recReader struct {
	buf []byte
	pos int
	err error
}

func (r *recReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: short body", ErrBadRecord)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *recReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *recReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *recReader) conn() ids.ConnectionID {
	return ids.ConnectionID{
		ClientDomain: ids.DomainID(r.u32()),
		ClientGroup:  ids.ObjectGroupID(r.u32()),
		ServerDomain: ids.DomainID(r.u32()),
		ServerGroup:  ids.ObjectGroupID(r.u32()),
	}
}

// DecodeRecord parses one frame payload produced by EncodeRecord.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	if len(payload) > MaxRecord {
		return Record{}, fmt.Errorf("%w: %d-byte payload exceeds MaxRecord", ErrBadRecord, len(payload))
	}
	r := &recReader{buf: payload, pos: 1}
	rec := Record{Type: RecordType(payload[0])}
	switch rec.Type {
	case RecOp:
		op := &OpRecord{}
		op.Conn = r.conn()
		op.ReqNum = ids.RequestNum(r.u64())
		dir := r.u8()
		if r.err == nil && dir > 1 {
			// Strict: the flag is 0 or 1, so every accepted record
			// re-encodes byte-identically (the encoding is canonical).
			r.err = fmt.Errorf("%w: direction flag %d", ErrBadRecord, dir)
		}
		op.Request = dir == 1
		op.TS = ids.Timestamp(r.u64())
		n := r.u32()
		if r.err == nil && int(n) > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: payload length %d", ErrBadRecord, n)
		}
		if b := r.take(int(n)); r.err == nil {
			op.Payload = append([]byte(nil), b...)
		}
		rec.Op = op
	case RecMark:
		mk := &MarkRecord{}
		mk.Kind = MarkKind(r.u8())
		mk.Conn = r.conn()
		mk.ReqNum = ids.RequestNum(r.u64())
		if r.err == nil && mk.Kind > MarkProcessedUpTo {
			r.err = fmt.Errorf("%w: mark kind %d", ErrBadRecord, mk.Kind)
		}
		rec.Mark = mk
	case RecEpoch:
		ep := &EpochRecord{}
		ep.Group = ids.GroupID(r.u32())
		ep.ViewTS = ids.Timestamp(r.u64())
		n := r.u32()
		if r.err == nil && int(n)*4 > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: member count %d", ErrBadRecord, n)
		}
		for i := uint32(0); i < n && r.err == nil; i++ {
			ep.Members = append(ep.Members, ids.ProcessorID(r.u32()))
		}
		rec.Epoch = ep
	case RecSnapshot:
		sn := &SnapshotRecord{}
		sn.Conn = r.conn()
		sn.MarkerTS = ids.Timestamp(r.u64())
		sn.UpTo = ids.RequestNum(r.u64())
		n := r.u32()
		if r.err == nil && int(n) > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: state length %d", ErrBadRecord, n)
		}
		if b := r.take(int(n)); r.err == nil {
			sn.State = append([]byte(nil), b...)
		}
		rec.Snap = sn
	case RecWedge:
		wd := &WedgeRecord{}
		wd.Group = ids.GroupID(r.u32())
		wd.Epoch = r.u64()
		wd.ViewTS = ids.Timestamp(r.u64())
		n := r.u32()
		if r.err == nil && int(n)*4 > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: member count %d", ErrBadRecord, n)
		}
		for i := uint32(0); i < n && r.err == nil; i++ {
			wd.Members = append(wd.Members, ids.ProcessorID(r.u32()))
		}
		rec.Wedge = wd
	case RecCheckpoint:
		ck := &CheckpointRecord{}
		ck.ID = r.u64()
		ck.Cut = ids.Timestamp(r.u64())
		ck.Chunk = r.u32()
		ck.Total = r.u32()
		n := r.u32()
		if r.err == nil && int(n) > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: state length %d", ErrBadRecord, n)
		}
		if b := r.take(int(n)); r.err == nil {
			ck.State = append([]byte(nil), b...)
		}
		rec.Ckpt = ck
	case RecStateChunk:
		sc := &StateChunkRecord{}
		sc.Conn = r.conn()
		sc.MarkerTS = ids.Timestamp(r.u64())
		sc.UpTo = ids.RequestNum(r.u64())
		sc.Chunk = r.u32()
		sc.Total = r.u32()
		n := r.u32()
		if r.err == nil && int(n) > len(payload)-r.pos {
			r.err = fmt.Errorf("%w: data length %d", ErrBadRecord, n)
		}
		if b := r.take(int(n)); r.err == nil {
			sc.Data = append([]byte(nil), b...)
		}
		rec.Chunk = sc
	case RecSeq:
		sq := &SeqRecord{}
		sq.Group = ids.GroupID(r.u32())
		sq.Epoch = r.u64()
		sq.Seq = r.u64()
		sq.Source = ids.ProcessorID(r.u32())
		sq.SrcSeq = ids.SeqNum(r.u32())
		rec.Seq = sq
	default:
		return Record{}, fmt.Errorf("%w: unknown type %d", ErrBadRecord, payload[0])
	}
	if r.err != nil {
		return Record{}, r.err
	}
	if r.pos != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(payload)-r.pos)
	}
	return rec, nil
}

// appendFrame frames payload (length + CRC32C + payload) onto b.
func appendFrame(b, payload []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// SegmentHeader builds the 8-byte segment file header.
func SegmentHeader() []byte {
	h := make([]byte, 0, segHeaderLen)
	h = append(h, segMagic...)
	h = binary.BigEndian.AppendUint16(h, segVersion)
	h = binary.BigEndian.AppendUint16(h, 0)
	return h
}

// CheckSegmentHeader validates a segment's first bytes.
func CheckSegmentHeader(b []byte) error {
	if len(b) < segHeaderLen || string(b[:4]) != segMagic {
		return ErrBadSegmentHeader
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != segVersion {
		return fmt.Errorf("%w: version %d", ErrBadSegmentHeader, v)
	}
	return nil
}

// Scanner iterates the frames of one segment's content (header
// included). Recovery and ftmpinspect share it.
type Scanner struct {
	buf []byte
	pos int64
	err error
}

// NewScanner returns a scanner over a full segment file image. The
// segment header is validated up front; scanning then starts at the
// first frame.
func NewScanner(segment []byte) (*Scanner, error) {
	if err := CheckSegmentHeader(segment); err != nil {
		return nil, err
	}
	return &Scanner{buf: segment, pos: segHeaderLen}, nil
}

// Offset returns the byte offset of the next frame — after the last
// successful Next, the end of the valid prefix so far.
func (s *Scanner) Offset() int64 { return s.pos }

// Err returns the corruption that stopped scanning (nil after a clean
// end of segment).
func (s *Scanner) Err() error { return s.err }

// Next returns the next frame's payload, or false at the end of the
// valid prefix. After false, Err distinguishes a clean end (nil) from a
// torn or corrupt tail.
func (s *Scanner) Next() ([]byte, bool) {
	if s.err != nil {
		return nil, false
	}
	rest := s.buf[s.pos:]
	if len(rest) == 0 {
		return nil, false
	}
	if len(rest) < frameHeader {
		s.err = fmt.Errorf("%w: %d-byte frame header fragment at offset %d", ErrTruncatedRecord, len(rest), s.pos)
		return nil, false
	}
	length := binary.BigEndian.Uint32(rest[:4])
	if length == 0 || length > MaxRecord {
		s.err = fmt.Errorf("%w: frame length %d at offset %d", ErrCorruptRecord, length, s.pos)
		return nil, false
	}
	if int(length) > len(rest)-frameHeader {
		s.err = fmt.Errorf("%w: frame length %d exceeds %d remaining bytes at offset %d",
			ErrTruncatedRecord, length, len(rest)-frameHeader, s.pos)
		return nil, false
	}
	payload := rest[frameHeader : frameHeader+int(length)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(rest[4:8]); got != want {
		s.err = fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrCorruptRecord, s.pos, want, got)
		return nil, false
	}
	s.pos += frameHeader + int64(length)
	return payload, true
}
