package wal

import (
	"errors"
	"fmt"
	"testing"
)

// buildLog writes n op records at fsync=always into a fresh MemFS and
// returns the fs, the segment name, and the frame boundary offsets
// (byte offset after the header and after each record).
func buildLog(t *testing.T, n int) (*MemFS, string, []int64) {
	t.Helper()
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seg := segmentName(l.seq)
	bounds := []int64{fs.Size(seg)}
	for i := 1; i <= n; i++ {
		if err := l.Append(opRec(uint64(i), fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, fs.Size(seg))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return fs, seg, bounds
}

// recordsBefore counts the full records contained in a prefix of size
// bytes, given the boundary offsets.
func recordsBefore(bounds []int64, size int64) int {
	n := 0
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= size {
			n = i
		}
	}
	return n
}

func TestTornTailEveryBoundary(t *testing.T) {
	const n = 5
	_, _, bounds := buildLog(t, n)
	total := bounds[len(bounds)-1]

	// Truncate at every record boundary and one byte either side —
	// plus, for good measure, every single byte offset of the file.
	offsets := map[int64]bool{}
	for _, b := range bounds {
		for _, d := range []int64{-1, 0, 1} {
			if o := b + d; o >= 0 && o <= total {
				offsets[o] = true
			}
		}
	}
	for o := int64(0); o <= total; o++ {
		offsets[o] = true
	}

	for size := range offsets {
		fs, seg, bounds := buildLog(t, n)
		if err := fs.Truncate(seg, size); err != nil {
			t.Fatal(err)
		}
		_, rec, err := Open(Config{FS: fs})
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		want := recordsBefore(bounds, size)
		if len(rec.Records) != want {
			t.Errorf("size %d: recovered %d records, want %d", size, len(rec.Records), want)
			continue
		}
		atBoundary := size == 0
		for _, b := range bounds {
			if size == b {
				atBoundary = true
			}
		}
		if !atBoundary && rec.TornTail == nil {
			t.Errorf("size %d: mid-record truncation not reported as torn tail", size)
		}
		if atBoundary && size > 0 && rec.TornTail != nil {
			t.Errorf("size %d: clean boundary reported torn: %v", size, rec.TornTail)
		}
		if rec.TornTail != nil {
			wantAt := bounds[want]
			if size < segHeaderLen {
				wantAt = 0 // torn header write: repaired to an empty file
			}
			if rec.TruncatedAt != wantAt {
				t.Errorf("size %d: truncated at %d, want boundary %d", size, rec.TruncatedAt, wantAt)
			}
		}
		// Recovery must be idempotent: a second open after the repair
		// sees a clean log with the same records.
		_, rec2, err := Open(Config{FS: fs})
		if err != nil || rec2.TornTail != nil || len(rec2.Records) != want {
			t.Errorf("size %d: reopen after repair: %d records, torn=%v, err=%v",
				size, len(rec2.Records), rec2.TornTail, err)
		}
	}
}

func TestCorruptBitFlip(t *testing.T) {
	const n = 4
	fs, seg, bounds := buildLog(t, n)
	// Flip one byte inside the third record's payload: CRC must catch it
	// and recovery keeps exactly the first two records.
	data, _ := fs.ReadFile(seg)
	data[bounds[2]+frameHeader+3] ^= 0x40
	fs.files[seg].buf = data

	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records past a bit flip, want 2", len(rec.Records))
	}
	if rec.TornTail == nil || !errors.Is(rec.TornTail, ErrCorruptRecord) {
		t.Fatalf("bit flip not reported as corrupt record: %v", rec.TornTail)
	}
	if rec.TruncatedAt != bounds[2] {
		t.Fatalf("truncated at %d, want %d", rec.TruncatedAt, bounds[2])
	}
}

func TestCorruptionDropsLaterSegments(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	firstSeg := segmentName(l.seq)
	for i := uint64(1); i <= 12; i++ {
		if err := l.Append(opRec(i, "spread-across-segments")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) < 3 {
		t.Fatalf("need >= 3 segments, got %v", names)
	}
	// Corrupt the first segment's last record: everything after it —
	// including whole later segments — is beyond the recovery point.
	data, _ := fs.ReadFile(firstSeg)
	data[len(data)-1] ^= 0xFF
	fs.files[firstSeg].buf = data

	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail == nil {
		t.Fatal("corruption not reported")
	}
	if rec.TruncatedSegment != firstSeg {
		t.Fatalf("truncated %s, want %s", rec.TruncatedSegment, firstSeg)
	}
	var lastRec uint64
	for _, r := range rec.Records {
		if r.Type == RecOp && uint64(r.Op.ReqNum) > lastRec {
			lastRec = uint64(r.Op.ReqNum)
		}
	}
	remaining, _ := fs.List()
	for _, name := range remaining {
		if seq, ok := parseSegmentName(name); ok {
			if first, _ := parseSegmentName(firstSeg); seq > first && fs.Size(name) > 0 {
				// Open creates a fresh segment for appends, which is fine;
				// but recovered old segments past the corruption must be gone.
				if name != segmentName(first+uint64(len(names))) && seq <= first+uint64(len(names))-1 {
					t.Fatalf("segment %s survived past corruption in %s", name, firstSeg)
				}
			}
		}
	}
	// The records from later segments must not have been recovered.
	if lastRec >= 12 {
		t.Fatalf("records from dropped segments leaked into recovery (last req %d)", lastRec)
	}
}

// opLogFS wraps an FS, recording the mutating repair calls and
// optionally failing Truncate — enough to verify the torn-tail repair's
// ordering and its crash-atomicity.
type opLogFS struct {
	FS
	ops      []string
	truncErr error
}

func (o *opLogFS) Truncate(name string, size int64) error {
	if o.truncErr != nil {
		return o.truncErr
	}
	o.ops = append(o.ops, "truncate "+name)
	return o.FS.Truncate(name, size)
}

func (o *opLogFS) Remove(name string) error {
	o.ops = append(o.ops, "remove "+name)
	return o.FS.Remove(name)
}

// corruptedMultiSegment builds a log spread over several segments and
// corrupts the first segment's last record, returning the fs, the first
// segment's name, and the sorted later segment sequence numbers.
func corruptedMultiSegment(t *testing.T) (*MemFS, string, []uint64) {
	t.Helper()
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	firstSeg := segmentName(l.seq)
	for i := uint64(1); i <= 12; i++ {
		if err := l.Append(opRec(i, "spread-across-segments")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(firstSeg)
	data[len(data)-1] ^= 0xFF
	fs.files[firstSeg].buf = data

	var later []uint64
	names, _ := fs.List()
	first, _ := parseSegmentName(firstSeg)
	for _, name := range names {
		if seq, ok := parseSegmentName(name); ok && seq > first {
			later = append(later, seq)
		}
	}
	if len(later) < 2 {
		t.Fatalf("need >= 2 later segments, got %v", names)
	}
	return fs, firstSeg, later
}

func TestRepairRemovesLaterSegmentsBeforeTruncating(t *testing.T) {
	fs, firstSeg, later := corruptedMultiSegment(t)
	o := &opLogFS{FS: fs}
	if _, _, err := Open(Config{FS: o}); err != nil {
		t.Fatal(err)
	}
	// Expected order: later segments removed newest to oldest, then the
	// corrupt segment truncated last — so a crash anywhere mid-repair
	// leaves the corruption detectable and the next Open re-converges.
	var want []string
	for j := len(later) - 1; j >= 0; j-- {
		want = append(want, "remove "+segmentName(later[j]))
	}
	want = append(want, "truncate "+firstSeg)
	if len(o.ops) != len(want) {
		t.Fatalf("repair ops = %v, want %v", o.ops, want)
	}
	for i := range want {
		if o.ops[i] != want[i] {
			t.Fatalf("repair op %d = %q, want %q (full: %v)", i, o.ops[i], want[i], o.ops)
		}
	}
}

func TestInterruptedRepairConverges(t *testing.T) {
	// Reference: an uninterrupted repair of the same corruption.
	ref, _, _ := corruptedMultiSegment(t)
	_, want, err := Open(Config{FS: ref})
	if err != nil {
		t.Fatal(err)
	}

	// Crash mid-repair: every later segment already removed, but the
	// truncation of the corrupt segment never happens.
	fs, _, _ := corruptedMultiSegment(t)
	o := &opLogFS{FS: fs, truncErr: errors.New("injected: crash before truncate")}
	if _, _, err := Open(Config{FS: o}); err == nil {
		t.Fatal("Open succeeded despite failed truncation")
	}

	// The next Open must re-detect the corruption and converge on the
	// same strict prefix — no hole, no resurrected records.
	_, got, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if got.TornTail == nil {
		t.Fatal("interrupted repair left the corruption undetected")
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("recovered %d records after interrupted repair, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i].Op.ReqNum != want.Records[i].Op.ReqNum {
			t.Fatalf("record %d: req %d, want %d", i, got.Records[i].Op.ReqNum, want.Records[i].Op.ReqNum)
		}
	}
}

func TestDuplicateSegmentReplay(t *testing.T) {
	// A crash between "copy segment" and "remove original" in an ad-hoc
	// backup/restore can leave the same records in two segment files.
	// Recovery surfaces both copies; the ftcorba layer dedupes by
	// (conn, reqnum, ts) key — here we verify the WAL reads both cleanly
	// and in segment order.
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seg := segmentName(l.seq)
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(opRec(i, "dup")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(seg)
	dupName := segmentName(2)
	f, _ := fs.Create(dupName)
	f.Write(data)
	f.Sync()
	f.Close()

	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail != nil {
		t.Fatalf("duplicate segment reported torn: %v", rec.TornTail)
	}
	if len(rec.Records) != 6 {
		t.Fatalf("recovered %d records from duplicated segment, want 6", len(rec.Records))
	}
	for i, r := range rec.Records {
		want := uint64(i%3) + 1
		if uint64(r.Op.ReqNum) != want {
			t.Fatalf("record %d: req %d, want %d (segment order violated)", i, r.Op.ReqNum, want)
		}
	}
}

func TestEmptyAndForeignFiles(t *testing.T) {
	fs := NewMemFS()
	// A foreign file and an empty segment-shaped file must not break Open.
	f, _ := fs.Create("notes.txt")
	f.Write([]byte("not a segment"))
	f.Close()
	f, _ = fs.Create(segmentName(1))
	f.Close() // zero bytes: empty segment, no header yet
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records from garbage", len(rec.Records))
	}
}

func TestBadSegmentHeader(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create(segmentName(1))
	f.Write([]byte("XXXXxxxxrest-of-file"))
	f.Sync()
	f.Close()
	if _, _, err := Open(Config{FS: fs}); err == nil {
		t.Fatal("Open accepted a segment with a bad magic header")
	}
}
