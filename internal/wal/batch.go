package wal

import (
	"fmt"
	"sync"

	"ftmp/internal/trace"
)

// AppendBatch encodes, frames and writes rs as consecutive records,
// then applies the fsync policy once over the whole batch: under
// SyncAlways that is one fsync for len(rs) records instead of one each.
// This is the group-commit primitive — on return under SyncAlways every
// record in rs is durable, exactly as if each had been Appended alone,
// but the storage device saw a single flush. A crash mid-batch leaves a
// prefix of rs on disk (records are framed independently), which
// recovery truncates to as usual.
func (l *Log) AppendBatch(rs []Record) error {
	if l.err != nil {
		return l.err
	}
	if len(rs) == 0 {
		return nil
	}
	// Encode everything before writing anything: an encoding error is a
	// caller bug, not a log failure, and must leave the log untouched.
	var buf []byte
	for _, r := range rs {
		payload, err := EncodeRecord(r)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, payload)
	}
	n, err := l.active.Write(buf)
	if err == nil && n != len(buf) {
		err = fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
	}
	if err != nil {
		l.err = fmt.Errorf("wal: append batch: %w", err)
		return l.err
	}
	l.activeSz += int64(len(buf))
	l.dirty = true
	trace.Count("wal.appends", uint64(len(rs)))
	trace.Count("wal.bytes", uint64(len(buf)))

	switch l.cfg.Policy {
	case SyncAlways:
		if err := l.Sync(); err != nil {
			return err
		}
	case SyncInterval:
		if now := l.cfg.Now(); now-l.lastSync >= l.cfg.Interval {
			if err := l.Sync(); err != nil {
				return err
			}
			l.lastSync = now
		}
	}
	if l.activeSz >= l.cfg.SegmentSize {
		return l.rotate()
	}
	return nil
}

// SyncBatch is the concurrent group-commit front end to a Log. The Log
// itself is single-threaded by design; SyncBatch serializes access and
// turns concurrent Commit calls into batched appends: while one
// caller's fsync is in flight, every record handed in by other callers
// accumulates in a pending buffer, and the next leader writes them all
// under a single policy application (one fsync under SyncAlways). Each
// Commit returns only after its own records are covered by a completed
// batch — durability per record is exactly what the Log's policy
// promises, but an N-way burst costs one or two fsyncs instead of N.
//
// After construction the Log must not be used directly except through
// this wrapper (and Close, after all Commits have drained).
type SyncBatch struct {
	mu   sync.Mutex
	cond *sync.Cond
	log  *Log

	pending    []Record
	enqueued   uint64 // records ever handed to Commit
	committed  uint64 // records covered by a completed batch
	committing bool   // a leader's write+fsync is in flight
	err        error  // sticky, mirrors the Log's failure
}

// NewSyncBatch wraps l for concurrent group-committed appends.
func NewSyncBatch(l *Log) *SyncBatch {
	b := &SyncBatch{log: l}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Commit appends rs and blocks until every record in rs is covered by a
// completed batch (durable, under SyncAlways). Safe for concurrent use;
// callers that arrive while another batch's fsync is in flight coalesce
// into the next one. Commit with no records is a barrier: it returns
// once everything enqueued before it is committed.
func (b *SyncBatch) Commit(rs ...Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.pending = append(b.pending, rs...)
	b.enqueued += uint64(len(rs))
	target := b.enqueued
	for b.committed < target && b.err == nil {
		if b.committing {
			// Follower: a batch is already being flushed; our records sit
			// in pending and ride the next leader's single fsync.
			b.cond.Wait()
			continue
		}
		// Leader: take everything accumulated so far and flush it as one
		// batch. The lock is dropped during the write+fsync, so records
		// handed in meanwhile pile up in pending for the next round.
		batch := b.pending
		b.pending = nil
		b.committing = true
		b.mu.Unlock()
		err := b.log.AppendBatch(batch)
		b.mu.Lock()
		b.committing = false
		if err != nil {
			b.err = err
		} else {
			b.committed += uint64(len(batch))
			trace.Inc("wal.group_commits")
			trace.Count("wal.group_commit_records", uint64(len(batch)))
		}
		b.cond.Broadcast()
	}
	return b.err
}

// Sync drains every pending record and forces the log to stable storage
// regardless of policy — the shutdown/snapshot barrier.
func (b *SyncBatch) Sync() error {
	if err := b.Commit(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.committing {
		b.cond.Wait()
	}
	if b.err != nil {
		return b.err
	}
	b.committing = true
	b.mu.Unlock()
	err := b.log.Sync()
	b.mu.Lock()
	b.committing = false
	if err != nil {
		b.err = err
	}
	b.cond.Broadcast()
	return b.err
}

// Err returns the sticky failure, if any.
func (b *SyncBatch) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}
