package wal

import (
	"bytes"
	"testing"

	"ftmp/internal/ids"
)

// FuzzWAL drives the record codec and the segment scanner with
// arbitrary bytes. Properties: neither ever panics; an accepted record
// re-encodes byte-identically (the encoding is canonical); the scanner
// always terminates with monotonically increasing offsets and either a
// clean end or a diagnosed corruption. Run with
// `go test -fuzz=FuzzWAL ./internal/wal`; the seed corpus (one valid
// record of every type, plus a valid two-record segment) runs under
// plain `go test`.
func FuzzWAL(f *testing.F) {
	c := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	recs := []Record{
		{Type: RecOp, Op: &OpRecord{Conn: c, ReqNum: 4, Request: true, TS: ids.MakeTimestamp(9, 2), Payload: []byte("pay")}},
		{Type: RecMark, Mark: &MarkRecord{Kind: MarkReplied, Conn: c, ReqNum: 4}},
		{Type: RecEpoch, Epoch: &EpochRecord{Group: 7, ViewTS: ids.MakeTimestamp(3, 1), Members: ids.NewMembership(1, 2, 3)}},
		{Type: RecSnapshot, Snap: &SnapshotRecord{Conn: c, MarkerTS: ids.MakeTimestamp(11, 2), UpTo: 4, State: []byte("state")}},
		{Type: RecCheckpoint, Ckpt: &CheckpointRecord{ID: 3, Cut: ids.MakeTimestamp(17, 2), Chunk: 1, Total: 4, State: []byte("ckpt")}},
		{Type: RecStateChunk, Chunk: &StateChunkRecord{Conn: c, MarkerTS: ids.MakeTimestamp(19, 2), UpTo: 6, Chunk: 2, Total: 5, Data: []byte("chunk")}},
	}
	seg := SegmentHeader()
	for _, r := range recs {
		p, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
		seg = appendFrame(seg, p)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		// Record codec: accepted payloads must re-encode canonically.
		if rec, err := DecodeRecord(data); err == nil {
			enc, err := EncodeRecord(rec)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("roundtrip not canonical:\n in  %x\n out %x", data, enc)
			}
		}
		// Scanner: arbitrary segment content after a valid header must
		// scan to a clean end or a diagnosed error, never hang or panic,
		// with the offset advancing on every record.
		segment := append(SegmentHeader(), data...)
		sc, err := NewScanner(segment)
		if err != nil {
			t.Fatalf("scanner rejected valid header: %v", err)
		}
		last := sc.Offset()
		for {
			payload, ok := sc.Next()
			if !ok {
				break
			}
			if len(payload) == 0 {
				t.Fatal("scanner yielded an empty record")
			}
			if sc.Offset() <= last {
				t.Fatalf("offset did not advance: %d -> %d", last, sc.Offset())
			}
			last = sc.Offset()
		}
		if sc.Err() == nil && sc.Offset() != int64(len(segment)) {
			t.Fatalf("clean scan stopped at %d of %d", sc.Offset(), len(segment))
		}
	})
}
