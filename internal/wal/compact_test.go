package wal

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ftmp/internal/ids"
)

// fillLog opens a log over fs with a small segment size, appends n op
// records and returns the open log.
func fillLog(t *testing.T, fs *MemFS, n int) *Log {
	t.Helper()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(opRec(uint64(i), strings.Repeat("x", 64))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func countSegments(t *testing.T, fs *MemFS) int {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if _, ok := parseSegmentName(name); ok {
			n++
		}
	}
	return n
}

func TestCompactTruncatesBehindCheckpoint(t *testing.T) {
	fs := NewMemFS()
	l := fillLog(t, fs, 40)
	before := countSegments(t, fs)
	if before < 4 {
		t.Fatalf("want several segments before compaction, got %d", before)
	}
	epoch := epochRec(9, 1, 2, 3)
	state := []byte("app-state-at-cut")
	if err := l.Compact(ids.MakeTimestamp(1000, 1), state, []Record{epoch}); err != nil {
		t.Fatal(err)
	}
	after := countSegments(t, fs)
	if after >= before {
		t.Fatalf("compaction removed nothing: %d -> %d segments", before, after)
	}
	if got := l.Segments(); got != after {
		t.Fatalf("Segments() = %d, on disk %d", got, after)
	}
	if cut, ok := l.LastCheckpoint(); !ok || cut != ids.MakeTimestamp(1000, 1) {
		t.Fatalf("LastCheckpoint = %v, %v", cut, ok)
	}
	// Post-compaction appends and recovery: the checkpoint plus the
	// suffix is all that's left.
	if err := l.Append(opRec(41, "after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ck, ok := LatestCheckpoint(rec.Records)
	if !ok || !bytes.Equal(ck.State, state) || ck.Cut != ids.MakeTimestamp(1000, 1) {
		t.Fatalf("recovered checkpoint = %+v, %v", ck, ok)
	}
	var ops, epochs int
	for _, r := range rec.Records {
		switch r.Type {
		case RecOp:
			ops++
		case RecEpoch:
			epochs++
		}
	}
	if epochs != 1 {
		t.Fatalf("retained epoch records = %d, want 1", epochs)
	}
	if ops == 0 || ops >= 40 {
		t.Fatalf("recovered %d op records, want only the suffix (0 < n < 40)", ops)
	}
	if cut, ok := l2.LastCheckpoint(); !ok || cut != ids.MakeTimestamp(1000, 1) {
		t.Fatalf("reopened LastCheckpoint = %v, %v", cut, ok)
	}
}

// Crash between checkpoint-durable and segment removal: the leftover
// old segments must not confuse recovery, and the next compaction
// reclaims them.
func TestCompactCrashBeforeRemovalConverges(t *testing.T) {
	fs := NewMemFS()
	l := fillLog(t, fs, 40)
	before := countSegments(t, fs)
	boom := errors.New("injected: crash before removal")
	fs.RemoveHook = func(string) error { return boom }
	err := l.Compact(ids.MakeTimestamp(1000, 1), []byte("state-v1"), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want injected removal failure", err)
	}
	if countSegments(t, fs) != before+1 {
		t.Fatalf("segments changed despite removal failure: %d -> %d", before, countSegments(t, fs))
	}
	// The log must still be appendable: removal failure is not a write
	// failure.
	if err := l.Append(opRec(41, "still-alive")); err != nil {
		t.Fatal(err)
	}
	fs.RemoveHook = nil
	fs.Crash() // power loss; everything synced survives

	l2, rec, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ck, ok := LatestCheckpoint(rec.Records)
	if !ok || string(ck.State) != "state-v1" {
		t.Fatalf("checkpoint lost across crash: %+v, %v", ck, ok)
	}
	// All 40 pre-checkpoint ops plus the post-failure append are still
	// on disk (the segments never went) — recovery sees checkpoint +
	// full history, which is consistent, just not yet reclaimed.
	var ops int
	for _, r := range rec.Records {
		if r.Type == RecOp {
			ops++
		}
	}
	if ops != 41 {
		t.Fatalf("recovered %d ops, want all 41 (removal never happened)", ops)
	}
	// The next compaction converges: leftovers are reclaimed.
	beforeRetry := countSegments(t, fs)
	if err := l2.Compact(ids.MakeTimestamp(2000, 1), []byte("state-v2"), nil); err != nil {
		t.Fatal(err)
	}
	if after := countSegments(t, fs); after >= beforeRetry {
		t.Fatalf("retry reclaimed nothing: %d -> %d", beforeRetry, after)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ck, ok := LatestCheckpoint(rec2.Records); !ok || string(ck.State) != "state-v2" {
		t.Fatalf("latest checkpoint after retry = %+v, %v", ck, ok)
	}
}

// Disk-full during the checkpoint write must degrade — the log keeps
// appending, the recoverable prefix is intact — and a later retry with
// space available succeeds.
func TestCompactDiskFullDegrades(t *testing.T) {
	fs := NewMemFS()
	l := fillLog(t, fs, 40)
	full := errors.New("injected: disk full mid-checkpoint")
	// Fail partway through the chunk chain: accept the first write to
	// the fresh segment (its header), fail the second (a chunk frame)
	// after a torn partial write.
	fs.WriteHook = func(name string, off int64, p []byte) (int, error) {
		if off == 0 {
			return len(p), nil // segment headers
		}
		return len(p) / 2, full // torn chunk frame
	}
	err := l.Compact(ids.MakeTimestamp(1000, 1), bytes.Repeat([]byte("s"), 600), nil)
	if err == nil || !errors.Is(err, full) {
		t.Fatalf("Compact error = %v, want injected disk-full", err)
	}
	if _, ok := l.LastCheckpoint(); ok {
		t.Fatal("failed compaction claimed a checkpoint")
	}
	fs.WriteHook = nil
	// Degrade, don't die: logging continues.
	for i := 41; i <= 50; i++ {
		if err := l.Append(opRec(uint64(i), "post-failure")); err != nil {
			t.Fatalf("append after failed compaction: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every record appended AFTER the failed compaction must be
	// recoverable: the torn chunk frame was excised, so it cannot have
	// ended the recoverable prefix early and taken the tail with it.
	l2, rec, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail != nil {
		t.Fatalf("torn tail after repaired compaction failure: %v", rec.TornTail)
	}
	if _, ok := LatestCheckpoint(rec.Records); ok {
		t.Fatal("aborted checkpoint chain reassembled as complete")
	}
	got := map[uint64]bool{}
	for _, r := range rec.Records {
		if r.Type == RecOp {
			got[uint64(r.Op.ReqNum)] = true
		}
	}
	for i := uint64(1); i <= 50; i++ {
		if !got[i] {
			t.Fatalf("record %d lost to the failed compaction", i)
		}
	}
	// Retry later with space: succeeds.
	if err := l2.Compact(ids.MakeTimestamp(2000, 1), []byte("retry-state"), nil); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ck, ok := LatestCheckpoint(rec2.Records); !ok || string(ck.State) != "retry-state" {
		t.Fatalf("checkpoint after retry = %+v, %v", ck, ok)
	}
}

func TestLatestCheckpointIgnoresIncompleteChains(t *testing.T) {
	mk := func(id uint64, cut uint64, chunk, total uint32, s string) Record {
		return ckptRec(id, cut, chunk, total, s)
	}
	cases := []struct {
		name    string
		records []Record
		want    string
		ok      bool
	}{
		{"complete single", []Record{mk(1, 10, 0, 1, "a")}, "a", true},
		{"complete multi", []Record{mk(1, 10, 0, 2, "a"), mk(1, 10, 1, 2, "b")}, "ab", true},
		{"incomplete tail", []Record{mk(1, 10, 0, 1, "a"), mk(2, 20, 0, 2, "x")}, "a", true},
		{"gap in chain", []Record{mk(1, 10, 0, 3, "a"), mk(1, 10, 2, 3, "c")}, "", false},
		{"restarted chain wins", []Record{mk(1, 10, 0, 2, "a"), mk(1, 20, 0, 1, "z")}, "z", true},
		{"inconsistent total", []Record{mk(1, 10, 0, 2, "a"), mk(1, 10, 1, 3, "b")}, "", false},
		{"none", []Record{opRec(1, "x")}, "", false},
		{"later id wins", []Record{mk(1, 10, 0, 1, "old"), mk(2, 20, 0, 1, "new")}, "new", true},
	}
	for _, tc := range cases {
		ck, ok := LatestCheckpoint(tc.records)
		if ok != tc.ok || (ok && string(ck.State) != tc.want) {
			t.Errorf("%s: got %q, %v; want %q, %v", tc.name, ck.State, ok, tc.want, tc.ok)
		}
	}
}

func TestCompactorDrivenByStabilityCut(t *testing.T) {
	fs := NewMemFS()
	l := fillLog(t, fs, 40)
	cut := ids.Timestamp(0)
	snaps := 0
	c := NewCompactor(CompactorConfig{
		Log:         l,
		MinSegments: 2,
		Snapshot: func() (ids.Timestamp, []byte, []Record, error) {
			snaps++
			return cut, []byte(fmt.Sprintf("state@%d", cut)), nil, nil
		},
	})
	// No stability cut yet: nothing to cover, nothing compacts.
	if ran, err := c.MaybeCompact(); err != nil || ran {
		t.Fatalf("compacted with no cut: %v, %v", ran, err)
	}
	cut = ids.MakeTimestamp(100, 1)
	if ran, err := c.MaybeCompact(); err != nil || !ran {
		t.Fatalf("cut advanced but no compaction: %v, %v", ran, err)
	}
	// Same cut again: nothing new is stable, skip.
	if ran, err := c.MaybeCompact(); err != nil || ran {
		t.Fatalf("re-compacted at an unchanged cut: %v, %v", ran, err)
	}
	// Below MinSegments: skip even with a newer cut.
	cut = ids.MakeTimestamp(200, 1)
	if l.Segments() > 2 {
		t.Skipf("log still has %d segments", l.Segments())
	}
	if ran, err := c.MaybeCompact(); err != nil || ran {
		t.Fatalf("compacted a short log: %v, %v", ran, err)
	}
	if snaps == 0 {
		t.Fatal("snapshot never taken")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
