package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hookFS wraps an FS and intercepts per-file Sync: it counts every
// fsync and can run a gate function first (which may block), modelling
// the in-flight-fsync window group commit exists to exploit.
type hookFS struct {
	FS
	syncs atomic.Int64
	gate  atomic.Pointer[func()]
}

type hookFile struct {
	File
	fs *hookFS
}

func (f *hookFS) Create(name string) (File, error) {
	h, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &hookFile{File: h, fs: f}, nil
}

func (h *hookFile) Sync() error {
	if g := h.fs.gate.Load(); g != nil {
		(*g)()
	}
	h.fs.syncs.Add(1)
	return h.File.Sync()
}

func openBatchLog(t *testing.T, fs FS, segSize int64) *Log {
	t.Helper()
	l, _, err := Open(Config{FS: fs, SegmentSize: segSize, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func recoverAll(t *testing.T, fs FS) []Record {
	t.Helper()
	_, rec, err := Open(Config{FS: fs, Policy: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return rec.Records
}

func TestAppendBatchSingleFsync(t *testing.T) {
	fs := &hookFS{FS: NewMemFS()}
	l := openBatchLog(t, fs, 1<<20)
	base := fs.syncs.Load()
	var rs []Record
	for i := 0; i < 10; i++ {
		rs = append(rs, opRec(uint64(i+1), "batched"))
	}
	if err := l.AppendBatch(rs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if got := fs.syncs.Load() - base; got != 1 {
		t.Errorf("fsyncs for one 10-record batch = %d, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs := recoverAll(t, fs)
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Op == nil || uint64(r.Op.ReqNum) != uint64(i+1) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func TestAppendBatchRotates(t *testing.T) {
	mem := NewMemFS()
	l := openBatchLog(t, mem, 200) // tiny segments: the batch overflows one
	var rs []Record
	for i := 0; i < 8; i++ {
		rs = append(rs, opRec(uint64(i+1), "rotate-me-please-long-payload"))
	}
	if err := l.AppendBatch(rs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := l.AppendBatch([]Record{opRec(99, "next-segment")}); err != nil {
		t.Fatalf("AppendBatch after rotation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	names, _ := mem.List()
	if len(names) < 2 {
		t.Fatalf("expected rotation to create a second segment, got %v", names)
	}
	recs := recoverAll(t, mem)
	if len(recs) != 9 {
		t.Fatalf("recovered %d records, want 9", len(recs))
	}
}

func TestAppendBatchEncodeErrorNotSticky(t *testing.T) {
	mem := NewMemFS()
	l := openBatchLog(t, mem, 1<<20)
	err := l.AppendBatch([]Record{opRec(1, "ok"), {Type: RecOp, Op: nil}})
	if err == nil {
		t.Fatal("bad record accepted")
	}
	if l.Err() != nil {
		t.Fatalf("encode error became sticky: %v", l.Err())
	}
	if err := l.Append(opRec(2, "still-works")); err != nil {
		t.Fatalf("append after encode error: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs := recoverAll(t, mem)
	// The failed batch wrote nothing (encode-before-write), so only the
	// later record survives.
	if len(recs) != 1 || recs[0].Op == nil || recs[0].Op.ReqNum != 2 {
		t.Fatalf("recovered %+v, want just record 2", recs)
	}
}

// TestSyncBatchCoalesces pins the group-commit property: commits that
// arrive while a fsync is in flight all ride the next single fsync.
func TestSyncBatchCoalesces(t *testing.T) {
	fs := &hookFS{FS: NewMemFS()}
	l := openBatchLog(t, fs, 1<<20)
	b := NewSyncBatch(l)

	// Arm a gate that blocks the next fsync until released.
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	gate := func() {
		once.Do(func() {
			close(entered)
			<-block
		})
	}
	fs.gate.Store(&gate)

	leaderDone := make(chan error, 1)
	go func() { leaderDone <- b.Commit(opRec(1, "leader")) }()
	<-entered // leader is inside its fsync

	// Followers arrive during the in-flight fsync.
	const followers = 8
	var wg sync.WaitGroup
	followerErrs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			followerErrs[i] = b.Commit(opRec(uint64(10+i), "follower"))
		}(i)
	}
	// Wait until every follower's record is enqueued behind the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := b.enqueued
		b.mu.Unlock()
		if n == followers+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never enqueued: %d of %d", n, followers+1)
		}
		time.Sleep(time.Millisecond)
	}

	base := fs.syncs.Load()
	close(block)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader commit: %v", err)
	}
	wg.Wait()
	for i, err := range followerErrs {
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
	}
	// The leader's fsync (in flight at base) plus exactly one group
	// fsync covering all 8 followers.
	if got := fs.syncs.Load() - base; got != 2 {
		t.Errorf("fsyncs after release = %d, want 2 (leader + one group commit)", got)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs := recoverAll(t, fs)
	if len(recs) != followers+1 {
		t.Fatalf("recovered %d records, want %d", len(recs), followers+1)
	}
	if recs[0].Op == nil || recs[0].Op.ReqNum != 1 {
		t.Fatalf("leader record not first: %+v", recs[0])
	}
}

func TestSyncBatchStickyError(t *testing.T) {
	mem := NewMemFS()
	l := openBatchLog(t, mem, 1<<20)
	b := NewSyncBatch(l)
	if err := b.Commit(opRec(1, "ok")); err != nil {
		t.Fatalf("commit: %v", err)
	}
	boom := errors.New("injected fsync failure")
	mem.SyncErr = boom
	if err := b.Commit(opRec(2, "doomed")); !errors.Is(err, boom) {
		t.Fatalf("commit after injected failure = %v, want %v", err, boom)
	}
	mem.SyncErr = nil
	if err := b.Commit(opRec(3, "still-dead")); !errors.Is(err, boom) {
		t.Fatalf("sticky error not sticky: %v", err)
	}
	if err := b.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
}

// TestSyncBatchHammer drives many concurrent committers through a slow
// disk and checks both safety (every record durable, none duplicated)
// and the point of the exercise: far fewer fsyncs than records.
func TestSyncBatchHammer(t *testing.T) {
	fs := &hookFS{FS: NewMemFS()}
	slow := func() { time.Sleep(200 * time.Microsecond) }
	fs.gate.Store(&slow)
	l := openBatchLog(t, fs, 1<<20)
	b := NewSyncBatch(l)

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.Commit(opRec(uint64(w*1000+i), "hammer")); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := b.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	syncs := fs.syncs.Load()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs := recoverAll(t, fs)
	const total = workers * per
	if len(recs) != total {
		t.Fatalf("recovered %d records, want %d", len(recs), total)
	}
	seen := make(map[uint64]bool, total)
	for _, r := range recs {
		if r.Op == nil {
			t.Fatalf("unexpected record %+v", r)
		}
		if seen[uint64(r.Op.ReqNum)] {
			t.Fatalf("duplicate record %d", r.Op.ReqNum)
		}
		seen[uint64(r.Op.ReqNum)] = true
	}
	if syncs >= total {
		t.Errorf("group commit never coalesced: %d fsyncs for %d records", syncs, total)
	}
	t.Logf("%d records in %d fsyncs", total, syncs)
}
