package wal

import (
	"path/filepath"
	"reflect"
	"testing"

	"ftmp/internal/ids"
)

func testConn() ids.ConnectionID {
	return ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
}

func opRec(req uint64, payload string) Record {
	return Record{Type: RecOp, Op: &OpRecord{
		Conn:    testConn(),
		ReqNum:  ids.RequestNum(req),
		Request: true,
		TS:      ids.MakeTimestamp(100+req, 3),
		Payload: []byte(payload),
	}}
}

func markRec(kind MarkKind, req uint64) Record {
	return Record{Type: RecMark, Mark: &MarkRecord{Kind: kind, Conn: testConn(), ReqNum: ids.RequestNum(req)}}
}

func epochRec(viewCounter uint64, members ...ids.ProcessorID) Record {
	return Record{Type: RecEpoch, Epoch: &EpochRecord{
		Group:   7,
		ViewTS:  ids.MakeTimestamp(viewCounter, 1),
		Members: ids.Membership(members),
	}}
}

func wedgeRec(epoch uint64, members ...ids.ProcessorID) Record {
	return Record{Type: RecWedge, Wedge: &WedgeRecord{
		Group:   7,
		Epoch:   epoch,
		ViewTS:  ids.MakeTimestamp(200+epoch, 1),
		Members: ids.Membership(members),
	}}
}

func ckptRec(id uint64, cut uint64, chunk, total uint32, state string) Record {
	return Record{Type: RecCheckpoint, Ckpt: &CheckpointRecord{
		ID: id, Cut: ids.Timestamp(cut), Chunk: chunk, Total: total, State: []byte(state),
	}}
}

func chunkRec(markerTS uint64, upTo uint64, chunk, total uint32, data string) Record {
	return Record{Type: RecStateChunk, Chunk: &StateChunkRecord{
		Conn:     testConn(),
		MarkerTS: ids.Timestamp(markerTS),
		UpTo:     ids.RequestNum(upTo),
		Chunk:    chunk,
		Total:    total,
		Data:     []byte(data),
	}}
}

func snapRec(upTo uint64, state string) Record {
	return Record{Type: RecSnapshot, Snap: &SnapshotRecord{
		Conn:     testConn(),
		MarkerTS: ids.MakeTimestamp(50+upTo, 2),
		UpTo:     ids.RequestNum(upTo),
		State:    []byte(state),
	}}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		opRec(1, "hello"),
		opRec(2, ""),
		{Type: RecOp, Op: &OpRecord{Conn: testConn(), ReqNum: 9, Request: false, TS: 42, Payload: []byte{0, 1, 2}}},
		markRec(MarkProcessed, 1),
		markRec(MarkReplied, 2),
		epochRec(5, 1, 2, 3),
		epochRec(6), // empty membership
		wedgeRec(4, 4, 5),
		wedgeRec(9), // empty membership
		snapRec(7, "snapshot-bytes"),
		snapRec(8, ""), // empty state
		ckptRec(1, 500, 0, 2, "first-half"),
		ckptRec(1, 500, 1, 2, ""), // empty chunk
		chunkRec(900, 3, 0, 4, "staged-bytes"),
		chunkRec(901, 4, 3, 4, ""), // empty data
	}
	for i, r := range recs {
		b, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(r), normalize(got)) {
			t.Fatalf("record %d: round trip mismatch:\n in: %+v\nout: %+v", i, r, got)
		}
	}
}

// normalize maps empty and nil slices to a canonical form for DeepEqual.
func normalize(r Record) Record {
	if r.Op != nil && len(r.Op.Payload) == 0 {
		op := *r.Op
		op.Payload = nil
		r.Op = &op
	}
	if r.Epoch != nil && len(r.Epoch.Members) == 0 {
		ep := *r.Epoch
		ep.Members = nil
		r.Epoch = &ep
	}
	if r.Wedge != nil && len(r.Wedge.Members) == 0 {
		wr := *r.Wedge
		wr.Members = nil
		r.Wedge = &wr
	}
	if r.Snap != nil && len(r.Snap.State) == 0 {
		sn := *r.Snap
		sn.State = nil
		r.Snap = &sn
	}
	if r.Ckpt != nil && len(r.Ckpt.State) == 0 {
		ck := *r.Ckpt
		ck.State = nil
		r.Ckpt = &ck
	}
	if r.Chunk != nil && len(r.Chunk.Data) == 0 {
		sc := *r.Chunk
		sc.Data = nil
		r.Chunk = &sc
	}
	return r
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	good, _ := EncodeRecord(opRec(1, "x"))
	cases := map[string][]byte{
		"empty":          {},
		"unknown type":   {99, 0, 0},
		"short op body":  {byte(RecOp), 1, 2},
		"trailing bytes": append(append([]byte{}, good...), 0xAA),
		"bad mark kind":  func() []byte { b, _ := EncodeRecord(markRec(MarkKind(7), 1)); return b }(),
		"huge op len": func() []byte {
			b, _ := EncodeRecord(opRec(1, "abc"))
			// Payload length field sits 21 bytes before the payload end.
			b[len(b)-7] = 0xFF
			return b
		}(),
		"huge snapshot len": func() []byte {
			b, _ := EncodeRecord(snapRec(1, "abc"))
			b[len(b)-7] = 0xFF
			return b
		}(),
		"short snapshot body": {byte(RecSnapshot), 1, 2, 3},
		"short wedge body":    {byte(RecWedge), 1, 2},
		"huge wedge members": func() []byte {
			b, _ := EncodeRecord(wedgeRec(4, 4, 5))
			// Member count field sits 12 bytes before the record end
			// (two 4-byte member ids follow the 4-byte count).
			b[len(b)-12] = 0xFF
			return b
		}(),
	}
	for name, payload := range cases {
		if _, err := DecodeRecord(payload); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}

func TestAppendAndRecover(t *testing.T) {
	fs := NewMemFS()
	l, rec, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d segments, %d records", rec.Segments, len(rec.Records))
	}
	want := []Record{opRec(1, "alpha"), markRec(MarkProcessed, 1), opRec(2, "beta"), epochRec(4, 1, 2)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTail != nil {
		t.Fatalf("unexpected torn tail: %v", rec2.TornTail)
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(want[i]), normalize(rec2.Records[i])) {
			t.Fatalf("record %d mismatch:\nwant %+v\n got %+v", i, want[i], rec2.Records[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, SegmentSize: 128, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := uint64(1); i <= n; i++ {
		if err := l.Append(opRec(i, "payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", names)
	}
	_, rec, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	if rec.Segments < 3 {
		t.Fatalf("recovery scanned %d segments, want >= 3", rec.Segments)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	fs := NewMemFS()
	var now int64
	l, _, err := Open(Config{FS: fs, Policy: SyncInterval, Interval: 100, Now: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	seg := segmentName(l.seq)
	if err := l.Append(opRec(1, "a")); err != nil { // within interval: buffered
		t.Fatal(err)
	}
	fs.Crash()
	if got := fs.Size(seg); got != 0 {
		t.Fatalf("record within interval survived crash: %d bytes synced", got)
	}
	if err := l.Append(opRec(2, "b")); err != nil {
		t.Fatal(err)
	}
	now = 150 // past the interval: next append syncs
	if err := l.Append(opRec(3, "c")); err != nil {
		t.Fatal(err)
	}
	before := fs.Size(seg)
	fs.Crash()
	if got := fs.Size(seg); got != before {
		t.Fatalf("records not durable after interval elapsed: %d of %d bytes", got, before)
	}
}

func TestSyncNeverPolicy(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	seg := segmentName(l.seq)
	if err := l.Append(opRec(1, "a")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got := fs.Size(seg); got != 0 {
		t.Fatalf("SyncNever still synced %d bytes", got)
	}
}

func TestExplicitSyncMakesDurable(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(opRec(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("explicit Sync lost the record: recovered %d", len(rec.Records))
	}
}

func TestDirFSEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	fs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := uint64(1); i <= n; i++ {
		if err := l.Append(opRec(i, "on-disk")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n || rec.TornTail != nil {
		t.Fatalf("DirFS recovery: %d records, torn=%v", len(rec.Records), rec.TornTail)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
