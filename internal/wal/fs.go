// Package wal implements the durable write-ahead log behind the fault
// tolerance infrastructure's message log, duplicate-suppression table
// and membership epoch. The paper keys every GIOP request and reply
// with a (connection id, request number) pair precisely so that
// messages can be "replayed from a log" (section 4); this package makes
// that log survive process crashes: segmented append-only files,
// length-prefixed CRC32C-framed records, configurable fsync policy, and
// recovery that truncates a torn tail to the last valid record.
//
// All file access goes through the FS interface so tests can inject
// torn writes, short writes, EIO and disk-full at any byte offset, and
// can model the fsync=interval crash window deterministically (MemFS).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is an append-only segment file being written.
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem a Log lives on, scoped to one directory. The
// production implementation is DirFS; tests inject MemFS to exercise
// failure modes real disks produce only at the worst possible moment.
type FS interface {
	// Create opens name for appending, creating it if absent.
	Create(name string) (File, error)
	// ReadFile returns the entire content of name.
	ReadFile(name string) ([]byte, error)
	// List returns the file names in the directory, in any order.
	List() ([]string, error)
	// Truncate shortens name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// Remove deletes name (segments beyond the recovery point).
	Remove(name string) error
}

// DirFS is the os-backed FS rooted at a directory.
type DirFS struct{ dir string }

// NewDirFS returns a DirFS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (d *DirFS) Dir() string { return d.dir }

// syncDir fsyncs the directory itself, forcing directory-entry changes
// (a created or removed file) to stable storage. Without it a freshly
// rotated segment can vanish entirely on power loss — its bytes synced
// but its name never durable — even under fsync=always.
func (d *DirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// Truncate implements FS. The shortened length is fsynced before
// success is reported, so a torn-tail repair cannot itself be lost to a
// second crash.
func (d *DirFS) Truncate(name string, size int64) error {
	path := filepath.Join(d.dir, name)
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Remove implements FS. The directory is fsynced so a removed
// post-corruption segment cannot resurrect after a second crash.
func (d *DirFS) Remove(name string) error {
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
		return err
	}
	return d.syncDir()
}

// MemFS is an in-memory FS for deterministic tests. It models the
// buffer-cache/durability split: writes land in the buffer, Sync
// commits them, and Crash discards everything not yet synced — exactly
// the data a power loss takes from a real disk. Fault hooks inject torn
// writes, EIO and disk-full at chosen byte offsets.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile

	// WriteHook, when set, intercepts every write: it returns how many
	// bytes to accept before failing with err (err == nil accepts all of
	// p). off is the file offset the write starts at.
	WriteHook func(name string, off int64, p []byte) (n int, err error)
	// SyncErr, when set, fails every Sync with this error.
	SyncErr error
	// RemoveHook, when set, intercepts every Remove: a non-nil error
	// fails the removal and leaves the file in place (crash or EIO
	// between a durable checkpoint and the segment removals behind it).
	RemoveHook func(name string) error
	// Capacity, when positive, bounds the total bytes stored across all
	// files; writes beyond it fail with ErrNoSpace after a partial write
	// (disk-full).
	Capacity int64
}

// ErrNoSpace is the MemFS disk-full error.
var ErrNoSpace = errors.New("wal: no space left on device")

type memFile struct {
	buf    []byte
	synced int // bytes guaranteed durable
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

type memHandle struct {
	fs   *MemFS
	name string
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[h.name]
	if f == nil {
		return 0, fmt.Errorf("wal: write to removed file %q", h.name)
	}
	accept := len(p)
	var failure error
	if m.WriteHook != nil {
		if n, err := m.WriteHook(h.name, int64(len(f.buf)), p); err != nil {
			accept, failure = n, err
		}
	}
	if m.Capacity > 0 {
		var used int64
		for _, other := range m.files {
			used += int64(len(other.buf))
		}
		if room := m.Capacity - used; int64(accept) > room {
			if room < 0 {
				room = 0
			}
			accept, failure = int(room), ErrNoSpace
		}
	}
	f.buf = append(f.buf, p[:accept]...)
	if failure != nil {
		return accept, failure
	}
	return accept, nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.SyncErr != nil {
		return m.SyncErr
	}
	if f := m.files[h.name]; f != nil {
		f.synced = len(f.buf)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: %q: %w", name, os.ErrNotExist)
	}
	out := make([]byte, len(f.buf))
	copy(out, f.buf)
	return out, nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("wal: %q: %w", name, os.ErrNotExist)
	}
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	}
	if f.synced > len(f.buf) {
		f.synced = len(f.buf)
	}
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.RemoveHook != nil {
		if err := m.RemoveHook(name); err != nil {
			return err
		}
	}
	delete(m.files, name)
	return nil
}

// Crash simulates a power loss: every byte not yet forced by Sync is
// gone. The resulting files are exactly what recovery will see.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.buf = f.buf[:f.synced]
	}
}

// Size returns the current length of name (0 if absent), for tests.
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.buf))
	}
	return 0
}

// segmentName formats the name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

// parseSegmentName extracts the sequence number, reporting whether name
// is a segment file.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(digits) != 16 {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}
