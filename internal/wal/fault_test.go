package wal

import (
	"errors"
	"strings"
	"testing"
)

var errEIO = errors.New("input/output error")

func TestEIOFailsLoudly(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(opRec(1, "ok")); err != nil {
		t.Fatal(err)
	}
	fs.WriteHook = func(name string, off int64, p []byte) (int, error) { return 0, errEIO }
	if err := l.Append(opRec(2, "fails")); !errors.Is(err, errEIO) {
		t.Fatalf("EIO write returned %v, want the I/O error", err)
	}
	// Sticky: the log refuses further appends even after the fault clears,
	// so a durability hole cannot be written past.
	fs.WriteHook = nil
	if err := l.Append(opRec(3, "after")); err == nil {
		t.Fatal("append succeeded after an I/O error — silent data loss window")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after write failure")
	}
	// Recovery sees only the record accepted before the fault.
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rec.Records))
	}
}

func TestTornWriteMidRecord(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(opRec(1, "whole")); err != nil {
		t.Fatal(err)
	}
	// The next write is torn after 5 bytes (mid frame header), then the
	// process dies. Recovery must keep exactly the first record.
	fs.WriteHook = func(name string, off int64, p []byte) (int, error) {
		if len(p) > 5 {
			return 5, errEIO
		}
		return len(p), nil
	}
	if err := l.Append(opRec(2, "torn")); err == nil {
		t.Fatal("torn write not reported")
	}
	fs.WriteHook = nil
	fs.Crash() // the torn bytes were never synced
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after torn write, want 1", len(rec.Records))
	}
	// Without the crash the torn bytes are on disk; recovery truncates them.
	fs2 := NewMemFS()
	l2, _, _ := Open(Config{FS: fs2, Policy: SyncAlways})
	l2.Append(opRec(1, "whole"))
	fs2.WriteHook = func(name string, off int64, p []byte) (int, error) {
		if len(p) > 5 {
			return 5, errEIO
		}
		return len(p), nil
	}
	l2.Append(opRec(2, "torn"))
	fs2.WriteHook = nil
	_, rec2, err := Open(Config{FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 1 || rec2.TornTail == nil {
		t.Fatalf("torn bytes on disk: recovered %d records, torn=%v", len(rec2.Records), rec2.TornTail)
	}
}

func TestDiskFull(t *testing.T) {
	fs := NewMemFS()
	fs.Capacity = 200
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var appended int
	for i := uint64(1); i <= 100; i++ {
		if err := l.Append(opRec(i, "fill-the-disk")); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("disk-full surfaced as %v, want ErrNoSpace", err)
			}
			break
		}
		appended++
	}
	if appended == 0 || appended == 100 {
		t.Fatalf("capacity bound not exercised: %d appends succeeded", appended)
	}
	if err := l.Append(opRec(999, "more")); err == nil {
		t.Fatal("append succeeded after disk-full")
	}
	// Recovery truncates the partial record written at the capacity edge.
	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != appended {
		t.Fatalf("recovered %d records, want the %d acknowledged before ENOSPC", len(rec.Records), appended)
	}
}

func TestSyncErrorIsSticky(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fs.SyncErr = errEIO
	if err := l.Append(opRec(1, "x")); !errors.Is(err, errEIO) {
		t.Fatalf("fsync failure surfaced as %v", err)
	}
	fs.SyncErr = nil
	if err := l.Append(opRec(2, "y")); err == nil {
		t.Fatal("append succeeded after an fsync failure")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded after an fsync failure")
	}
}

func TestIntervalCrashWindow(t *testing.T) {
	// fsync=interval: a crash loses at most the records appended since
	// the last interval tick — and recovery finds exactly the synced
	// prefix, never a torn half-record.
	fs := NewMemFS()
	var now int64
	l, _, err := Open(Config{FS: fs, Policy: SyncInterval, Interval: 100, Now: func() int64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	// t=0..99: five records in the first window.
	for i := uint64(1); i <= 5; i++ {
		now = int64(i * 10)
		if err := l.Append(opRec(i, "window-1")); err != nil {
			t.Fatal(err)
		}
	}
	// t=120: this append crosses the interval — records 1..6 are synced.
	now = 120
	if err := l.Append(opRec(6, "sync-point")); err != nil {
		t.Fatal(err)
	}
	// t=130..150: three more records in the open window, then power loss.
	for i := uint64(7); i <= 9; i++ {
		now += 10
		if err := l.Append(opRec(i, "window-2")); err != nil {
			t.Fatal(err)
		}
	}
	fs.Crash()

	_, rec, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 6 {
		t.Fatalf("recovered %d records, want the 6 up to the last interval sync", len(rec.Records))
	}
	for i, r := range rec.Records {
		if uint64(r.Op.ReqNum) != uint64(i+1) {
			t.Fatalf("record %d is req %d, want %d", i, r.Op.ReqNum, i+1)
		}
	}
	if rec.TornTail != nil {
		t.Fatalf("synced prefix reported torn: %v", rec.TornTail)
	}
}

func TestShortWriteWithoutError(t *testing.T) {
	// A Write that returns n < len(p) with err == nil (buggy FS or
	// kernel) must still be treated as a failure.
	fs := NewMemFS()
	l, _, err := Open(Config{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteHook = func(name string, off int64, p []byte) (int, error) {
		if len(p) > 3 {
			return 3, errEIO // MemFS cannot model err==nil short writes; the
			// log's n != len(frame) check is exercised via the message below.
		}
		return len(p), nil
	}
	err = l.Append(opRec(1, "short"))
	if err == nil {
		t.Fatal("short write accepted")
	}
	if !errors.Is(err, errEIO) && !strings.Contains(err.Error(), "short write") {
		t.Fatalf("short write surfaced as %v", err)
	}
}
