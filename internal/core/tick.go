package core

import (
	"ftmp/internal/wire"
)

// Tick runs the node's timer work at time now: heartbeats for idle
// groups, NACK (re)transmission, fault suspicion, recovery-round and
// AddProcessor resends, ConnectRequest retries and Connect
// announcements. Drivers call it periodically (every millisecond in the
// experiments); all deadlines are computed against the supplied time, so
// the cadence only bounds reaction latency.
func (n *Node) Tick(now int64) {
	for _, gs := range n.sortedGroups() {
		if gs.left {
			continue
		}
		if gs.joined {
			// Flush a pack whose oldest entry has waited past MaxDelay.
			if len(gs.packEntries) > 0 && now-gs.packSince >= n.cfg.Pack.maxDelay() {
				n.flushPack(now, gs)
			}
			// Heartbeat when idle (paper section 5). While reliable
			// traffic flows, every outbound message piggybacks the
			// sender's latest sequence and ack timestamp, so standalone
			// heartbeats are suppressed implicitly (lastSent stays fresh).
			// Once the whole group has been quiet for two base intervals,
			// nothing is pending delivery and heartbeats serve only
			// liveness: stretch the cadence to HeartbeatIdleMax. The first
			// received message resets lastActivity and restores the base
			// cadence, so delivery latency under load is unaffected.
			hb := n.cfg.HeartbeatInterval
			if n.cfg.HeartbeatIdleMax > hb && now-gs.lastActivity >= 2*n.cfg.HeartbeatInterval {
				hb = n.cfg.HeartbeatIdleMax
			}
			if now-gs.lastSent >= hb {
				n.sendHeartbeat(now, gs)
			}
			// Fault suspicion (paper section 7.2).
			if due := gs.mem.DueSuspicions(now); len(due) > 0 {
				body := &wire.Suspect{
					MembershipTS: gs.mem.ViewTS(),
					Suspects:     due,
				}
				if _, _, err := n.sendReliable(now, gs, body); err == nil {
					// Apply our own suspicion locally (own multicasts
					// are not looped back through RMP).
					newly := gs.mem.RecordSuspicion(n.cfg.Self, due)
					n.afterConviction(now, gs, newly)
				}
			}
			// Recovery round proposal resend.
			if gs.mem.ResendDue(now) {
				if proposal := gs.mem.ProposalForResend(gs.rmp.SeqVector(gs.mem.Members())); proposal != nil {
					if _, _, err := n.sendReliable(now, gs, proposal); err == nil {
						n.sendRecoveryNacks(gs)
					}
				}
			}
			// AddProcessor resend until the new member is heard.
			for _, raw := range gs.mem.AddResendsDue(now) {
				n.cb.Transmit(gs.addr, raw)
			}
		}
		// Gap repair: negative acknowledgments with backoff.
		for _, req := range gs.rmp.NacksDue(now) {
			n.sendNack(gs, req)
		}
		// Leader mode: targeted NACK when sequenced delivery has stalled
		// on an assigned-but-missing message for a full tick.
		n.seqTick(gs)
		n.pump(gs, now)
	}
	// Client-side ConnectRequest retries.
	for _, req := range n.conns.RequestRetriesDue(now) {
		addr, ok := n.serverDomainAddrFor(req)
		if ok {
			n.sendConnectRequest(now, addr, req)
		}
	}
	// Server-side Connect announcements until traffic flows.
	for _, raw := range n.conns.AnnounceResendsDue(now) {
		n.cb.Transmit(n.cfg.DomainAddr, raw)
		// Also on the connection's group address, covering members that
		// joined late.
		if m, err := wire.Decode(raw); err == nil {
			if c, ok := m.Body.(*wire.Connect); ok {
				n.cb.Transmit(c.Addr, raw)
			}
		}
	}
}

// serverDomainAddrFor recovers the address a ConnectRequest retry should
// go to. Connections within this node's own domain use the local domain
// address; cross-domain destinations were subscribed (and remembered) by
// OpenConnection.
func (n *Node) serverDomainAddrFor(req *wire.ConnectRequest) (wire.MulticastAddr, bool) {
	if req.Conn.ServerDomain == n.cfg.Domain {
		return n.cfg.DomainAddr, true
	}
	if a, ok := n.domainAddrs[req.Conn.ServerDomain]; ok {
		return a, true
	}
	return wire.MulticastAddr{}, false
}
