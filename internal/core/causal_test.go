package core_test

// The paper claims causal *and* total order (section 6). Total order is
// asserted throughout; these tests pin down causality: if a processor
// delivers message X and then sends Y, no processor delivers Y before X.

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

func TestCausalChainAcrossMembers(t *testing.T) {
	// A four-link causal chain hopping across members: P1 sends c0; P2
	// reacts to c0 with c1; P3 reacts to c1 with c2; P4 reacts to c2
	// with c3. Every member must deliver c0 < c1 < c2 < c3.
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.05
	cfg.LatencyJitter = 2 * simnet.Millisecond // aggressive reordering
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := harness.NewCluster(harness.Options{Seed: 401, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)

	react := map[string]ids.ProcessorID{"c0": 2, "c1": 3, "c2": 4}
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(d core.Delivery, now int64) {
			s := string(d.Payload)
			if next, ok := react[s]; ok && next == p {
				reply := fmt.Sprintf("c%c", s[1]+1)
				_ = c.Host(p).Node.Multicast(now, g1, ids.ConnectionID{}, 0, []byte(reply))
			}
		}
	}
	c.RunFor(20 * simnet.Millisecond)
	_ = c.Multicast(1, g1, "c0")
	if !c.RunUntil(20*simnet.Second, c.AllDelivered(g1, m, 4)) {
		t.Fatalf("chain incomplete: %v", c.Host(1).DeliveredPayloads(g1))
	}
	for _, p := range procs {
		got := c.Host(p).DeliveredPayloads(g1)
		want := []string{"c0", "c1", "c2", "c3"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v causal order violated: %v", p, got)
			}
		}
	}
}

func TestCausalityUnderConcurrentTraffic(t *testing.T) {
	// The chain competes with unrelated concurrent senders; causality
	// must hold inside the chain while everything stays totally ordered.
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.05
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{Seed: 409, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	// P2 echoes each of P1's pings with a pong carrying the same index.
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(d core.Delivery, now int64) {
			s := string(d.Payload)
			if p == 2 && len(s) > 4 && s[:4] == "ping" {
				_ = c.Host(2).Node.Multicast(now, g1, ids.ConnectionID{}, 0, []byte("pong"+s[4:]))
			}
		}
	}
	c.RunFor(20 * simnet.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		c.Net.At(c.Net.Now()+simnet.Time(i*3)*simnet.Millisecond, func() {
			_ = c.Multicast(1, g1, fmt.Sprintf("ping%02d", i))
			_ = c.Multicast(3, g1, fmt.Sprintf("noise%02d", i)) // concurrent
		})
	}
	// 10 pings + 10 pongs + 10 noise = 30 deliveries everywhere.
	if !c.RunUntil(30*simnet.Second, c.AllDelivered(g1, m, 30)) {
		t.Fatal("traffic incomplete")
	}
	for _, p := range procs {
		got := c.Host(p).DeliveredPayloads(g1)
		pos := make(map[string]int, len(got))
		for i, s := range got {
			pos[s] = i
		}
		for i := 0; i < 10; i++ {
			ping := fmt.Sprintf("ping%02d", i)
			pong := fmt.Sprintf("pong%02d", i)
			if pos[pong] < pos[ping] {
				t.Fatalf("%v delivered %s before %s", p, pong, ping)
			}
		}
	}
	// Total order across all 30 messages.
	base := c.Host(1).DeliveredPayloads(g1)
	for _, p := range procs[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("total order differs at %d", i)
			}
		}
	}
}
