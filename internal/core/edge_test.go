package core_test

import (
	"fmt"
	"testing"

	"ftmp/internal/clock"
	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

func TestDecodeErrorCounted(t *testing.T) {
	c, _ := lanCluster(t, 201, 2)
	// Inject garbage onto the group's address.
	addr, _ := c.Host(1).Node.GroupAddr(g1)
	c.Net.Send(1, harness.PackAddr(addr), []byte("not an ftmp packet"))
	c.RunFor(50 * simnet.Millisecond)
	if c.Host(2).Node.Stats().DecodeErrors == 0 {
		t.Error("garbage packet not counted as decode error")
	}
	// The group still works.
	_ = c.Multicast(1, g1, "after-garbage")
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, ids.NewMembership(1, 2), 1)) {
		t.Fatal("group broken by garbage packet")
	}
}

func TestSingletonGroup(t *testing.T) {
	// A group of one delivers its own messages immediately (horizon =
	// own clock).
	c := harness.NewCluster(harness.Options{Seed: 203, Net: simnet.NewConfig()}, 1)
	c.CreateGroup(g1, ids.NewMembership(1))
	_ = c.Multicast(1, g1, "solo")
	if !c.RunUntil(simnet.Second, func() bool {
		return len(c.Host(1).DeliveredPayloads(g1)) == 1
	}) {
		t.Fatal("singleton group did not deliver")
	}
}

func TestCascadingCrashes(t *testing.T) {
	// Two members crash at different times; two separate recovery rounds
	// (or one restarted round) must leave the survivors consistent.
	c, _ := lanCluster(t, 207, 5)
	c.RunFor(20 * simnet.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
			_ = c.Multicast(1, g1, fmt.Sprintf("pre%d", i))
		})
	}
	c.Net.At(c.Net.Now()+30*simnet.Millisecond, func() { c.Crash(5) })
	c.Net.At(c.Net.Now()+45*simnet.Millisecond, func() { c.Crash(4) })
	survivors := ids.NewMembership(1, 2, 3)
	ok := c.RunUntil(20*simnet.Second, func() bool {
		for _, p := range survivors {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(survivors) {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, p := range survivors {
			v, _ := c.Host(p).LastView(g1)
			t.Logf("%v view: %v", p, v.Members)
		}
		t.Fatal("cascading crashes never resolved to 3-member view")
	}
	_ = c.Multicast(2, g1, "post")
	if !c.RunUntil(20*simnet.Second, c.AllDelivered(g1, survivors, 11)) {
		t.Fatal("ordering dead after cascading recovery")
	}
	a := c.Host(1).DeliveredPayloads(g1)
	for _, p := range []ids.ProcessorID{2, 3} {
		b := c.Host(p).DeliveredPayloads(g1)
		if len(a) != len(b) {
			t.Fatalf("delivery sets differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("order differs at %d", i)
			}
		}
	}
}

func TestMajoritySideSurvivesPartition(t *testing.T) {
	// The paper's protocol is not partition-aware (that is the authors'
	// follow-on work); this test documents the implemented behaviour:
	// the majority side convicts the minority and continues.
	c, _ := lanCluster(t, 211, 4)
	c.RunFor(20 * simnet.Millisecond)
	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
	majority := ids.NewMembership(1, 2, 3)
	ok := c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range majority {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(majority) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("majority side never excluded the partitioned member")
	}
	_ = c.Multicast(1, g1, "majority-side")
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, majority, 1)) {
		t.Fatal("majority side not live after partition")
	}
}

func TestUntrustedHeartbeatDoesNotAdvanceHorizon(t *testing.T) {
	// A heartbeat whose sequence number exceeds what the receiver holds
	// proves messages are missing; its timestamp must not unblock
	// delivery, or the missing messages could be ordered after later
	// ones. Constructed directly against a cluster by dropping packets.
	cfg := simnet.NewConfig()
	procs := []ids.ProcessorID{1, 2}
	c := harness.NewCluster(harness.Options{Seed: 213, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	c.RunFor(20 * simnet.Millisecond)
	// Cut the network entirely, let node 1 send (lost), heal, then the
	// heartbeats that follow carry seq=1 while node 2 holds nothing.
	c.Net.SetLoss(1.0)
	_ = c.Multicast(1, g1, "lost-message")
	c.RunFor(10 * simnet.Millisecond)
	c.Net.SetLoss(0)
	// Recovery: node 2 sees heartbeats with seq 1, NACKs, gets the
	// retransmission, and only then delivers.
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("lost message never recovered via heartbeat-triggered NACK")
	}
	got := c.Host(2).DeliveredPayloads(g1)
	if got[0] != "lost-message" {
		t.Errorf("delivered %q", got[0])
	}
	if c.Host(2).Node.Stats().RMP.NacksSent == 0 {
		t.Error("no NACK sent despite heartbeat gap evidence")
	}
}

func TestViewReasonStrings(t *testing.T) {
	cases := map[core.ViewReason]string{
		core.ViewBootstrap:  "bootstrap",
		core.ViewConnect:    "connect",
		core.ViewAdd:        "add",
		core.ViewRemove:     "remove",
		core.ViewFault:      "fault",
		core.ViewReason(99): "ViewReason(99)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestListenGroupIdempotent(t *testing.T) {
	c, _ := lanCluster(t, 217, 2)
	n := c.Host(1).Node
	n.ListenGroup(ids.GroupID(555))
	n.ListenGroup(ids.GroupID(555)) // no double subscribe panic/state
	n.ListenGroup(g1)               // already tracked: no-op
}

func TestGroupAddrAccessor(t *testing.T) {
	c, _ := lanCluster(t, 219, 2)
	if _, ok := c.Host(1).Node.GroupAddr(g1); !ok {
		t.Error("GroupAddr for joined group missing")
	}
	if _, ok := c.Host(1).Node.GroupAddr(ids.GroupID(999)); ok {
		t.Error("GroupAddr for unknown group present")
	}
}

func TestStatsBufferedAccessor(t *testing.T) {
	c, _ := lanCluster(t, 223, 2)
	if h, p := c.Host(1).Node.Buffered(ids.GroupID(999)); h != 0 || p != 0 {
		t.Error("Buffered for unknown group nonzero")
	}
}

func TestCreateGroupIdempotent(t *testing.T) {
	c, m := lanCluster(t, 227, 2)
	// Second CreateGroup with same id: no state reset.
	_ = c.Multicast(1, g1, "x")
	c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1))
	c.Host(1).Node.CreateGroup(int64(c.Net.Now()), g1, m)
	_ = c.Multicast(1, g1, "y")
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 2)) {
		t.Fatal("group state damaged by duplicate CreateGroup")
	}
}

func TestNodeStringer(t *testing.T) {
	c, _ := lanCluster(t, 229, 2)
	if c.Host(1).Node.String() == "" {
		t.Error("empty node String()")
	}
}

func TestHugeMessageRejected(t *testing.T) {
	c, _ := lanCluster(t, 231, 2)
	big := make([]byte, wire.MaxMessageSize)
	err := c.Host(1).Node.Multicast(0, g1, ids.ConnectionID{}, 0, big)
	if err == nil {
		t.Error("oversize multicast accepted")
	}
	// Sequence numbers must not leak on failed sends: next send works
	// and is contiguous.
	_ = c.Multicast(1, g1, "small")
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, ids.NewMembership(1, 2), 1)) {
		t.Fatal("send after rejected oversize failed (sequence leak?)")
	}
}

func TestPartitionHealNoMerge(t *testing.T) {
	// After a partition heals, each side keeps its own (divergent)
	// membership: the paper's protocol removes the other side and never
	// merges partitions (that is the authors' follow-on work on
	// partitionable systems). The documented contract here is that both
	// sides keep operating independently and ignore each other's
	// traffic, with no corruption.
	c, _ := lanCluster(t, 233, 4)
	c.RunFor(20 * simnet.Millisecond)
	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
	majority := ids.NewMembership(1, 2, 3)
	singleton := ids.NewMembership(4)
	ok := c.RunUntil(10*simnet.Second, func() bool {
		v1, f1 := c.Host(1).LastView(g1)
		v4, f4 := c.Host(4).LastView(g1)
		return f1 && v1.Members.Equal(majority) && f4 && v4.Members.Equal(singleton)
	})
	if !ok {
		t.Fatal("partitions never stabilized")
	}
	c.Net.Heal()
	// Both sides continue to order their own traffic; neither delivers
	// the other's.
	_ = c.Multicast(1, g1, "majority-msg")
	_ = c.Host(4).Node.Multicast(int64(c.Net.Now()), g1, ids.ConnectionID{}, 0, []byte("minority-msg"))
	c.RunFor(2 * simnet.Second)
	if !c.AllDelivered(g1, majority, 1)() {
		t.Error("majority side dead after heal")
	}
	found := false
	for _, s := range c.Host(4).DeliveredPayloads(g1) {
		if s == "minority-msg" {
			found = true
		}
		if s == "majority-msg" {
			t.Error("minority delivered majority traffic after heal (silent merge)")
		}
	}
	if !found {
		t.Error("minority side dead after heal")
	}
	for _, p := range majority {
		for _, s := range c.Host(p).DeliveredPayloads(g1) {
			if s == "minority-msg" {
				t.Errorf("%v delivered minority traffic after heal", p)
			}
		}
	}
}

func TestSynchronizedClocksAgreeUnderSkew(t *testing.T) {
	// Correctness never depends on clock synchronization quality (paper
	// section 6): with Synchronized mode and substantial per-node skew,
	// the members still agree on one total order.
	netCfg := simnet.NewConfig()
	netCfg.LossRate = 0.05
	c := harness.NewCluster(harness.Options{
		Seed: 239,
		Net:  netCfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ClockMode = clock.Synchronized
			// Up to 2.1ms of skew between members — an order of
			// magnitude beyond NTP on a LAN.
			cfg.ClockSkew = int64(p) * 700_000
		},
	}, 1, 2, 3)
	m := ids.NewMembership(1, 2, 3)
	c.CreateGroup(g1, m)
	for i := 0; i < 10; i++ {
		for _, p := range m {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v.%d", p, i))
			})
		}
	}
	if !c.RunUntil(20*simnet.Second, c.AllDelivered(g1, m, 30)) {
		t.Fatal("delivery incomplete under synchronized skewed clocks")
	}
	base := c.Host(1).DeliveredPayloads(g1)
	for _, p := range m[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("skewed clocks broke agreement at %d", i)
			}
		}
	}
}

func TestVoluntaryLeave(t *testing.T) {
	c, _ := lanCluster(t, 241, 3)
	c.RunFor(20 * simnet.Millisecond)
	_ = c.Multicast(3, g1, "before-leave")
	c.RunFor(20 * simnet.Millisecond)
	if err := c.Host(3).Node.Leave(int64(c.Net.Now()), g1); err != nil {
		t.Fatal(err)
	}
	rest := ids.NewMembership(1, 2)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range rest {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("leave never took effect")
	}
	// The leaver observed its own departure and can no longer send.
	ok = c.RunUntil(5*simnet.Second, func() bool {
		return c.Host(3).Node.Multicast(int64(c.Net.Now()), g1, ids.ConnectionID{}, 0, []byte("x")) != nil
	})
	if !ok {
		t.Error("leaver can still multicast")
	}
	// The remaining members keep working.
	_ = c.Multicast(1, g1, "after-leave")
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, rest, 2)) {
		t.Fatal("group dead after voluntary leave")
	}
}

func TestStatusSnapshot(t *testing.T) {
	c, m := lanCluster(t, 251, 2)
	_ = c.Multicast(1, g1, "x")
	c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1))
	st, ok := c.Host(1).Node.Status(g1)
	if !ok {
		t.Fatal("Status for joined group missing")
	}
	if !st.Members.Equal(m) || !st.Joined || st.Left || st.Recovering {
		t.Errorf("Status = %+v", st)
	}
	if st.Horizon == ids.NilTimestamp {
		t.Error("nil horizon after traffic")
	}
	if _, ok := c.Host(1).Node.Status(ids.GroupID(999)); ok {
		t.Error("Status for unknown group present")
	}
}
