package core_test

// CPU-cost benchmarks for the protocol node itself: two nodes wired
// back-to-back with zero-cost "network" functions, measuring the
// per-message price of encode + RMP + ROMP + delivery with no simulator
// in the loop.

import (
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

// pipe wires two nodes directly: each node's transmissions are handed to
// the other synchronously.
func pipe(b *testing.B, payload int, configure func(*core.Config)) (send func(i int), delivered *int) {
	b.Helper()
	const group = ids.GroupID(9)
	members := ids.NewMembership(1, 2)
	var n1, n2 *core.Node
	var clock int64 // shared virtual time for the synchronous "network"
	count := 0
	mk := func(self ids.ProcessorID, peer **core.Node) *core.Node {
		cfg := core.DefaultConfig(self)
		if configure != nil {
			configure(&cfg)
		}
		return core.NewNode(cfg, core.Callbacks{
			Transmit: func(addr wire.MulticastAddr, data []byte) {
				if *peer != nil {
					(*peer).HandlePacket(data, addr, clock)
				}
			},
			Deliver: func(core.Delivery) { count++ },
		})
	}
	n1 = mk(1, &n2)
	n2 = mk(2, &n1)
	n1.CreateGroup(0, group, members)
	n2.CreateGroup(0, group, members)
	// Prime the horizon: both sides tick once so heartbeats flow.
	clock = 1
	n1.Tick(1)
	n2.Tick(1)
	buf := make([]byte, payload)
	return func(i int) {
		// Step virtual time by a full heartbeat interval per message so
		// each Tick emits the heartbeats that advance the horizon.
		now := int64(i+2) * 10_000_000
		clock = now
		if err := n1.Multicast(now, group, ids.ConnectionID{}, 0, buf); err != nil {
			b.Fatal(err)
		}
		// n2 heartbeats so n1 can deliver, and vice versa; ticking both
		// keeps the horizon moving without a timer wheel.
		n2.Tick(now)
		n1.Tick(now)
	}, &count
}

// BenchmarkNodePipeline256 measures end-to-end protocol CPU per message
// (256-byte payload) across two directly-wired nodes.
func BenchmarkNodePipeline256(b *testing.B) {
	send, delivered := pipe(b, 256, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(i)
	}
	b.StopTimer()
	if *delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkNodePipeline4K is the same with 4 KiB payloads.
func BenchmarkNodePipeline4K(b *testing.B) {
	send, delivered := pipe(b, 4096, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(i)
	}
	b.StopTimer()
	if *delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkNodePipelinePacked256 runs the 256-byte pipeline through the
// packed datapath (each message buffers, the tick flushes the container);
// the synchronous Transmit also exercises the decoder-scratch ownership
// contract under immediate reentrant handling.
func BenchmarkNodePipelinePacked256(b *testing.B) {
	send, delivered := pipe(b, 256, func(cfg *core.Config) {
		cfg.Pack = core.DefaultPackConfig()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(i)
	}
	b.StopTimer()
	if *delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
