package core_test

import (
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

// connCluster builds the canonical connection scenario: a server object
// group O20 supported by processors {1,2} and a client object group O10
// supported by processor {3} (plus 4 when fourNodes), all in domain 1.
func connCluster(t *testing.T, seed int64, lossRate float64, fourNodes bool) (*harness.Cluster, ids.ConnectionID) {
	t.Helper()
	serverProcs := ids.NewMembership(1, 2)
	procs := []ids.ProcessorID{1, 2, 3}
	if fourNodes {
		procs = append(procs, 4)
	}
	cfg := simnet.NewConfig()
	cfg.LossRate = lossRate
	c := harness.NewCluster(harness.Options{
		Seed: seed,
		Net:  cfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{
				ids.ObjectGroupID(20): serverProcs,
			}
		},
	}, procs...)
	conn := ids.ConnectionID{
		ClientDomain: 1, ClientGroup: 10,
		ServerDomain: 1, ServerGroup: 20,
	}
	return c, conn
}

func TestConnectionEstablishment(t *testing.T) {
	c, conn := connCluster(t, 31, 0, false)
	domainAddr := core.DefaultConfig(3).DomainAddr
	clientProcs := ids.NewMembership(3)
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domainAddr, clientProcs)

	// All three processors must converge on an established connection
	// carried by the same processor group.
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			st := c.Host(p).Node.ConnectionState(conn)
			if st == nil || !st.Established {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("connection never established at all endpoints")
	}
	g := c.Host(3).Node.ConnectionState(conn).Group
	for _, p := range []ids.ProcessorID{1, 2} {
		if got := c.Host(p).Node.ConnectionState(conn).Group; got != g {
			t.Fatalf("group mismatch: %v vs %v", got, g)
		}
	}
	// The processor group contains client and server processors: every
	// message on the connection reaches both groups (paper section 4).
	want := ids.NewMembership(1, 2, 3)
	ok = c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range want {
			if !c.Host(p).Node.Members(g).Equal(want) {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, p := range want {
			t.Logf("%v members: %v", p, c.Host(p).Node.Members(g))
		}
		t.Fatal("connection group membership never converged")
	}

	// A request multicast by the client is delivered, in the same total
	// order, at the client and at both server replicas.
	now := int64(c.Net.Now())
	if err := c.Host(3).Node.Multicast(now, g, conn, 1, []byte("request-1")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g, want, 1)) {
		t.Fatal("request not delivered to both groups")
	}
	for _, p := range want {
		d := c.Host(p).Deliveries[len(c.Host(p).Deliveries)-1]
		if d.Conn != conn || d.RequestNum != 1 || string(d.Payload) != "request-1" {
			t.Errorf("%v delivery = %+v", p, d)
		}
	}
}

func TestConnectionEstablishmentUnderLoss(t *testing.T) {
	// ConnectRequest and Connect are unreliable; retries must win.
	c, conn := connCluster(t, 37, 0.25, false)
	domainAddr := core.DefaultConfig(3).DomainAddr
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(20*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			st := c.Host(p).Node.ConnectionState(conn)
			if st == nil || !st.Established {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("connection not established despite retries under 25% loss")
	}
}

func TestDuplicateConnectRequestIgnored(t *testing.T) {
	c, conn := connCluster(t, 41, 0, false)
	domainAddr := core.DefaultConfig(3).DomainAddr
	now := int64(c.Net.Now())
	// Two opens in quick succession (e.g. replicated clients both ask).
	c.Host(3).Node.OpenConnection(now, conn, domainAddr, ids.NewMembership(3))
	c.Host(3).Node.OpenConnection(now, conn, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(5*simnet.Second, func() bool {
		st := c.Host(3).Node.ConnectionState(conn)
		return st != nil && st.Established
	})
	if !ok {
		t.Fatal("no establishment")
	}
	g := c.Host(3).Node.ConnectionState(conn).Group
	// Let late duplicates arrive; the group must stay the same.
	c.RunFor(200 * simnet.Millisecond)
	if got := c.Host(3).Node.ConnectionState(conn).Group; got != g {
		t.Errorf("duplicate request changed the group: %v -> %v", g, got)
	}
}

func TestTwoConnectionsShareGroupState(t *testing.T) {
	// A second connection between different object groups gets its own
	// processor group (different membership), while repeated connections
	// between the same pair reuse the established one.
	serverProcs := ids.NewMembership(1, 2)
	c := harness.NewCluster(harness.Options{
		Seed: 43,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{
				20: serverProcs,
				21: serverProcs,
			}
		},
	}, 1, 2, 3)
	domainAddr := core.DefaultConfig(3).DomainAddr
	connA := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	connB := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 21}
	now := int64(c.Net.Now())
	c.Host(3).Node.OpenConnection(now, connA, domainAddr, ids.NewMembership(3))
	c.Host(3).Node.OpenConnection(now, connB, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(10*simnet.Second, func() bool {
		a := c.Host(3).Node.ConnectionState(connA)
		b := c.Host(3).Node.ConnectionState(connB)
		return a != nil && a.Established && b != nil && b.Established
	})
	if !ok {
		t.Fatal("two connections not established")
	}
	a := c.Host(3).Node.ConnectionState(connA)
	b := c.Host(3).Node.ConnectionState(connB)
	if a.Group == b.Group {
		t.Log("connections share a processor group (allowed by the paper for efficiency)")
	}
	if a.Addr == (core.DefaultConfig(3).DomainAddr) {
		t.Error("connection uses the domain address")
	}
}

func TestConnectionResponderFailover(t *testing.T) {
	// The designated responder (lowest-id server member) is dead before
	// the client ever connects; the second server member must take over
	// after the request ladder gives the designated one its chances.
	c, conn := connCluster(t, 47, 0, false)
	c.Crash(1)
	domainAddr := core.DefaultConfig(3).DomainAddr
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(30*simnet.Second, func() bool {
		st := c.Host(3).Node.ConnectionState(conn)
		return st != nil && st.Established
	})
	if !ok {
		t.Fatal("connection never established with designated responder dead")
	}
	// Traffic flows between the client and the surviving server; the
	// dead designated member is convicted out of the connection group.
	g := c.Host(3).Node.ConnectionState(conn).Group
	want := ids.NewMembership(2, 3)
	ok = c.RunUntil(30*simnet.Second, func() bool {
		return c.Host(3).Node.Members(g).Equal(want) && c.Host(2).Node.Members(g).Equal(want)
	})
	if !ok {
		t.Fatalf("group did not converge on survivors: P3 sees %v", c.Host(3).Node.Members(g))
	}
	now := int64(c.Net.Now())
	if err := c.Host(3).Node.Multicast(now, g, conn, 1, []byte("post-failover")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(30*simnet.Second, c.AllDelivered(g, want, 1)) {
		t.Fatal("message not delivered after responder failover")
	}
}

func TestCrossDomainConnection(t *testing.T) {
	// The client object group lives in fault tolerance domain 2, the
	// server object group in domain 1: the ConnectRequest travels to the
	// server domain's multicast address, which the client subscribed to
	// for the duration of establishment (paper section 7).
	serverProcs := ids.NewMembership(1, 2)
	domain1Addr := wire.MulticastAddr{IP: [4]byte{239, 255, 1, 1}, Port: 7401}
	domain2Addr := wire.MulticastAddr{IP: [4]byte{239, 255, 2, 1}, Port: 7402}
	// Processor group addresses must derive identically at every node
	// regardless of domain (the AddProcessor body carries no address).
	sharedGroupAddr := func(g ids.GroupID) wire.MulticastAddr {
		return wire.MulticastAddr{
			IP:   [4]byte{239, 250, byte(uint32(g) >> 8), byte(uint32(g))},
			Port: 7500,
		}
	}
	c := harness.NewCluster(harness.Options{
		Seed: 53,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.GroupAddr = sharedGroupAddr
			if p == 3 {
				cfg.Domain = 2
				cfg.DomainAddr = domain2Addr
			} else {
				cfg.Domain = 1
				cfg.DomainAddr = domain1Addr
			}
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{20: serverProcs}
		},
	}, 1, 2, 3)
	conn := ids.ConnectionID{ClientDomain: 2, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domain1Addr, ids.NewMembership(3))
	ok := c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			st := c.Host(p).Node.ConnectionState(conn)
			if st == nil || !st.Established {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("cross-domain connection never established")
	}
	g := c.Host(3).Node.ConnectionState(conn).Group
	want := ids.NewMembership(1, 2, 3)
	now := int64(c.Net.Now())
	if err := c.Host(3).Node.Multicast(now, g, conn, 1, []byte("cross-domain")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g, want, 1)) {
		t.Fatal("cross-domain traffic failed")
	}
}
