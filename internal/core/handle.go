package core

import (
	"ftmp/internal/ids"
	"ftmp/internal/rmp"
	"ftmp/internal/romp"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// HandlePacket processes one datagram received at time now on multicast
// address addr. It is the node's network input.
// The node takes ownership of data: payloads of reliable messages alias
// it while they are buffered, so the driver must hand over a buffer it
// will not reuse.
func (n *Node) HandlePacket(data []byte, addr wire.MulticastAddr, now int64) {
	msg, err := n.dec.Decode(data)
	if err != nil {
		n.stats.DecodeErrors++
		return
	}
	n.stats.PacketsIn++
	if gs := n.handleDecoded(msg, data, addr, now, false); gs != nil {
		n.pump(gs, now)
	}
}

// Incoming is one decoded datagram handed to HandleBatch. The decode
// happened off-loop (a runtime receive worker with its own
// wire.Decoder); Msg's body must be stable — cloned out of decoder
// scratch — and the node takes ownership of Raw exactly as
// HandlePacket takes ownership of data.
type Incoming struct {
	Msg  wire.Message
	Raw  []byte
	Addr wire.MulticastAddr
}

// HandleBatch processes a burst of pre-decoded datagrams in arrival
// order, then pumps each touched group once. Semantically it is
// equivalent to calling HandlePacket per datagram — every protocol
// effect is identical and deterministic — but the per-packet pump
// (delivery drain, recovery check, buffer reclamation) is amortized
// across the batch, which is what lets the event loop drain a burst in
// one wakeup.
func (n *Node) HandleBatch(batch []Incoming, now int64) {
	n.stats.PacketsIn += uint64(len(batch))
	// A batch rarely spans many groups; a linear-scan set keeps this
	// allocation-free for the common single-group burst.
	var touched []*groupState
	for i := range batch {
		gs := n.handleDecoded(batch[i].Msg, batch[i].Raw, batch[i].Addr, now, true)
		if gs == nil {
			continue
		}
		seen := false
		for _, t := range touched {
			if t == gs {
				seen = true
				break
			}
		}
		if !seen {
			touched = append(touched, gs)
		}
	}
	for _, gs := range touched {
		// A later datagram in the batch may have torn the group down
		// (wedge heal, expulsion); only pump groups still tracked.
		if n.groups[gs.id] == gs {
			n.pump(gs, now)
		}
	}
}

// NoteDecodeErrors folds decode failures observed off-loop (by runtime
// receive workers) into the node's stats. Loop-affine like every other
// Node method.
func (n *Node) NoteDecodeErrors(k uint64) {
	n.stats.DecodeErrors += k
}

// handleDecoded applies one decoded datagram and returns the group
// whose pump the caller owes (nil when the message was consumed by a
// side path that pumps for itself, or dropped). stable reports whether
// msg's body already survives beyond this call (true for HandleBatch
// input, false for bodies in decoder scratch).
func (n *Node) handleDecoded(msg wire.Message, data []byte, addr wire.MulticastAddr, now int64, stable bool) *groupState {
	h := msg.Header
	// Lamport receive rule (paper section 6): the local clock advances
	// past the timestamp of every message received.
	n.clk.Observe(h.MsgTS)
	if h.Source == n.cfg.Self {
		// Loopback of our own multicast (or a peer retransmitting one of
		// our messages): all local effects were applied at send time.
		return nil
	}

	switch body := msg.Body.(type) {
	case *wire.ConnectRequest:
		n.onConnectRequest(now, body)
		return nil
	case *wire.Connect:
		n.onConnect(now, msg, data, addr)
		return nil
	}

	gs, ok := n.groups[h.DestGroup]
	if !ok {
		// A message for a group this processor does not track. If it
		// names us a new member we will learn of it via AddProcessor
		// (which carries enough context); everything else is noise.
		if ap, isAdd := msg.Body.(*wire.AddProcessor); isAdd && ap.NewMember == n.cfg.Self {
			n.bootstrapFromAdd(now, msg, data)
		}
		return nil
	}

	// Re-addressed connection rule (paper section 7): ignore messages
	// for the group on a superseded address with timestamps above the
	// re-addressing Connect.
	if ra, stale := n.oldAddrs[addr]; stale && ra.group == h.DestGroup && h.MsgTS > ra.ts && addr != gs.addr {
		return nil
	}

	gs.mem.Heard(h.Source, now)

	// Partition heal: a wedged minority hearing one of the processors it
	// convicted means the primary component is reachable again — tear
	// down and rejoin it rather than process anything further here.
	if gs.mem.Wedged() && gs.mem.Convicted().Contains(h.Source) {
		if n.healFromWedge(now, gs) {
			return nil
		}
	}

	switch body := msg.Body.(type) {
	case *wire.Heartbeat:
		n.onHeartbeat(now, gs, h)
	case *wire.RetransmitRequest:
		n.onRetransmitRequest(now, gs, body)
	case *wire.Packed:
		n.onPacked(now, gs, h, body)
	default:
		n.onReliable(now, gs, msg, data, stable)
	}
	return gs
}

// onHeartbeat processes a Heartbeat header: liveness, gap detection via
// the carried sequence number, and — when the heartbeat is trustworthy
// (no gap below it) — horizon and ack advancement (paper section 5).
func (n *Node) onHeartbeat(now int64, gs *groupState, h wire.Header) {
	trusted := gs.rmp.NoteHeartbeatSeq(h.Source, h.Seq, now)
	if trusted {
		gs.order.ObserveTimestamp(h.Source, h.MsgTS, h.AckTS)
	} else {
		// The ack timestamp is monotone regardless of gaps.
		gs.order.ObserveTimestamp(h.Source, ids.NilTimestamp, h.AckTS)
	}
}

// onRetransmitRequest answers a negative acknowledgment if policy allows
// (paper section 5: any processor that has the message may retransmit;
// our policy: the source always, others when the source is suspected,
// convicted or departed — see rmp.Answer).
func (n *Node) onRetransmitRequest(now int64, gs *groupState, req *wire.RetransmitRequest) {
	mayAnswer := func(source ids.ProcessorID) bool {
		if n.cfg.PromiscuousRepair {
			return true
		}
		if gs.mem.SuspectedOrConvicted(source) {
			return true
		}
		return !gs.mem.Members().Contains(source)
	}
	for _, raw := range gs.rmp.Answer(req, mayAnswer) {
		n.cb.Transmit(gs.addr, rmp.MarkRetransmission(raw))
	}
}

// onReliable runs a reliable message through RMP and applies the
// source-ordered deliveries. Messages from processors outside the
// current membership are ignored: a just-admitted member's early
// messages are recovered through the normal NACK path once its
// AddProcessor is ordered, and anything else is stray traffic that must
// not enter the total order.
func (n *Node) onReliable(now int64, gs *groupState, msg wire.Message, raw []byte, stable bool) {
	if !gs.mem.Members().Contains(msg.Header.Source) {
		return
	}
	gs.lastActivity = now
	// RMP retains the message; hot-path bodies are Decoder scratch and
	// must be copied out before the next datagram overwrites them (the
	// raw buffer they alias is retained alongside). Batch input was
	// already cloned off-loop by the decode worker.
	if !stable {
		msg.Body = wire.CloneBody(msg.Body)
	}
	for _, held := range gs.rmp.Receive(msg, raw, now) {
		h := held.Msg.Header
		if h.Type.TotallyOrdered() {
			gs.order.Submit(romp.Entry{Source: h.Source, Seq: held.Seq, TS: held.TS, Msg: held.Msg})
			if sd, isSeq := held.Msg.Body.(*wire.SeqData); isSeq {
				// The leader's data frame carries its pending run.
				n.applyRun(gs, h.Source, sd.Epoch, sd.First, sd.Refs)
			} else if n.seqLeading(gs) {
				// Leader: sequence a follower's message on arrival; the
				// assignment publishes in this pump's run.
				n.leaderAssign(gs, wire.SeqRef{Source: h.Source, Seq: held.Seq})
			}
		} else {
			// Suspect, Membership and SeqAssign: reliable and
			// source-ordered but not totally ordered — applied now.
			gs.order.ObserveTimestamp(h.Source, held.TS, h.AckTS)
			switch b := held.Msg.Body.(type) {
			case *wire.Suspect:
				n.onSuspect(now, gs, h.Source, b)
			case *wire.MembershipMsg:
				n.onMembershipMsg(now, gs, h.Source, b)
			case *wire.SeqAssign:
				n.applyRun(gs, h.Source, b.Epoch, b.First, b.Refs)
			}
		}
		// Piggybacked ack timestamps flow on every reliable message.
		gs.order.ObserveTimestamp(h.Source, ids.NilTimestamp, h.AckTS)
	}
}

// pump drains everything that became ready: totally-ordered deliveries,
// recovery-round completion, gate release and buffer reclamation. It is
// called after every input. Re-entrant calls (an application Deliver
// callback invoking Multicast) return immediately: the outer pump's
// loop picks up whatever they made ready, preserving delivery order.
func (n *Node) pump(gs *groupState, now int64) {
	if gs.pumping {
		return
	}
	gs.pumping = true
	defer func() { gs.pumping = false }()
	n.drainOrdered(gs, now)
	n.flushRun(now, gs)
	n.checkRecovery(gs, now)
	n.maybeReleaseGate(gs, now)
	n.finishLeaving(gs)
	stable := gs.order.StableTS()
	gs.rmp.DiscardStable(stable)
	n.drainFlowControl(gs, now, stable)
}

// drainOrdered applies every totally-ordered delivery that is ready,
// from whichever queue the configured mode fills (the leader-mode
// sequence queue stops batches at membership ops; the loop resumes
// under the post-install regime).
func (n *Node) drainOrdered(gs *groupState, now int64) {
	for {
		var entries []romp.Entry
		if gs.order.SeqMode() {
			entries = gs.order.SeqDeliverable()
		} else {
			entries = gs.order.Deliverable()
		}
		if len(entries) == 0 {
			return
		}
		for _, e := range entries {
			n.applyOrdered(now, gs, e)
		}
	}
}

// drainFlowControl releases queued application sends as this sender's
// earlier messages become stable (Config.MaxUnstable).
func (n *Node) drainFlowControl(gs *groupState, now int64, stable ids.Timestamp) {
	if n.cfg.MaxUnstable == 0 {
		return
	}
	i := 0
	for i < len(gs.unstable) && gs.unstable[i] <= stable {
		i++
	}
	if i > 0 {
		gs.unstable = append(gs.unstable[:0], gs.unstable[i:]...)
	}
	for len(gs.sendQueue) > 0 && len(gs.unstable) < n.cfg.MaxUnstable &&
		gs.joined && !gs.leaving && !gs.mem.Wedged() && gs.gateTS == ids.NilTimestamp {
		q := gs.sendQueue[0]
		gs.sendQueue = gs.sendQueue[1:]
		body := &wire.Regular{Conn: q.conn, RequestNum: q.reqNum, Payload: q.payload}
		if err := n.sendRegular(now, gs, body); err != nil {
			continue
		}
	}
}

// finishLeaving completes a graceful departure once the member's own
// removal is stable: every remaining member has acknowledged everything
// up to the RemoveProcessor, so nobody still needs this processor's
// heartbeats to order it.
func (n *Node) finishLeaving(gs *groupState) {
	if !gs.leaving || gs.left {
		return
	}
	if gs.order.StableTS() < gs.leavingTS {
		return
	}
	gs.leaving = false
	gs.joined = false
	gs.left = true
	n.unsubscribe(gs.addr)
}

// applyOrdered handles one totally-ordered delivery.
func (n *Node) applyOrdered(now int64, gs *groupState, e romp.Entry) {
	n.seqNoteDelivered(now, gs, e)
	switch body := e.Msg.Body.(type) {
	case *wire.Regular:
		n.conns.TrafficSeen(body.Conn)
		n.cb.Deliver(Delivery{
			Group:      gs.id,
			Source:     e.Source,
			TS:         e.TS,
			Conn:       body.Conn,
			RequestNum: body.RequestNum,
			Payload:    body.Payload,
			SourceSeq:  e.Seq,
			OrderEpoch: e.AssignEpoch,
			OrderSeq:   e.AssignSeq,
		})
	case *wire.SeqData:
		n.conns.TrafficSeen(body.Conn)
		n.cb.Deliver(Delivery{
			Group:      gs.id,
			Source:     e.Source,
			TS:         e.TS,
			Conn:       body.Conn,
			RequestNum: body.RequestNum,
			Payload:    body.Payload,
			SourceSeq:  e.Seq,
			OrderEpoch: e.AssignEpoch,
			OrderSeq:   e.AssignSeq,
		})
	case *wire.AddProcessor:
		n.applyAdd(now, gs, e, body)
	case *wire.RemoveProcessor:
		n.applyRemove(now, gs, e, body)
	case *wire.Connect:
		n.applyOrderedConnect(now, gs, e, body)
	}
}

// applyAdd installs the membership produced by an ordered AddProcessor.
func (n *Node) applyAdd(now int64, gs *groupState, e romp.Entry, body *wire.AddProcessor) {
	prev := gs.mem.Members().Clone()
	if prev.Contains(body.NewMember) {
		return // duplicate (e.g. the new member replaying its bootstrap)
	}
	next := prev.Add(body.NewMember)
	gs.mem.Install(next, e.TS, now)
	gs.order.SetMembership(next, e.TS)
	n.emitView(gs, ViewAdd, prev, nil, e.TS)
	n.seqAfterInstall(now, gs)
}

// applyRemove installs the membership produced by an ordered
// RemoveProcessor. If this processor is the one removed, it leaves the
// group (paper section 7.1: the infrastructure removed its replicas
// beforehand).
func (n *Node) applyRemove(now int64, gs *groupState, e romp.Entry, body *wire.RemoveProcessor) {
	prev := gs.mem.Members().Clone()
	if !prev.Contains(body.Member) {
		return
	}
	next := prev.Remove(body.Member)
	gs.mem.Install(next, e.TS, now)
	gs.order.SetMembership(next, e.TS)
	gs.rmp.DropSource(body.Member)
	if body.Member == n.cfg.Self {
		// Graceful departure: linger (heartbeating, answering repairs)
		// until every remaining member has acknowledged the removal, so
		// laggards can still order it; then leave (see finishLeaving).
		gs.leaving = true
		gs.leavingTS = e.TS
	}
	n.emitView(gs, ViewRemove, prev, nil, e.TS)
	n.seqAfterInstall(now, gs)
}

// onSuspect applies a Suspect message: record the sender's suspicions
// and, on conviction, report the fault and start or restart a recovery
// round (paper section 7.2).
func (n *Node) onSuspect(now int64, gs *groupState, from ids.ProcessorID, body *wire.Suspect) {
	newly := gs.mem.RecordSuspicion(from, body.Suspects)
	n.afterConviction(now, gs, newly)
}

// onMembershipMsg applies a Membership proposal from a peer.
func (n *Node) onMembershipMsg(now int64, gs *groupState, from ids.ProcessorID, body *wire.MembershipMsg) {
	newly := gs.mem.OnProposal(from, body)
	n.afterConviction(now, gs, newly)
}

// afterConviction reports newly convicted processors and (re)starts the
// recovery round when needed.
func (n *Node) afterConviction(now int64, gs *groupState, newly ids.Membership) {
	if len(newly) > 0 && n.cb.FaultReport != nil {
		n.cb.FaultReport(gs.id, newly.Clone())
	}
	if gs.mem.NeedRound() && gs.joined {
		proposal := gs.mem.StartRound(gs.rmp.SeqVector(gs.mem.Members()), now)
		if _, _, err := n.sendReliable(now, gs, proposal); err == nil {
			// Recovery repair requests go out immediately.
			n.sendRecoveryNacks(gs)
		}
	}
}

// sendRecoveryNacks multicasts RetransmitRequests for the old-view
// messages the recovery round still needs.
func (n *Node) sendRecoveryNacks(gs *groupState) {
	for _, req := range gs.mem.RecoveryNeeds(gs.rmp.Contiguous) {
		n.sendNack(gs, req)
	}
}

// sendNack wraps a RetransmitRequest body in a header and multicasts it.
// Its sequence number is the sender's preceding message and its
// timestamps are the current ROMP values (paper section 5).
func (n *Node) sendNack(gs *groupState, req wire.RetransmitRequest) {
	h := n.header(gs, gs.nextSeq, n.clk.Current())
	raw, err := wire.Encode(h, &req)
	if err != nil {
		return
	}
	n.cb.Transmit(gs.addr, raw)
}

// checkRecovery completes the recovery round once every proposed member
// has agreed and the local message set covers the round's requirements,
// installing the new membership (paper section 7.2: virtual synchrony).
func (n *Node) checkRecovery(gs *groupState, now int64) {
	if !gs.mem.InRecovery() || !gs.joined {
		return
	}
	if !gs.mem.ReadyToInstall(gs.rmp.Contiguous) {
		return
	}
	newM, _ := gs.mem.RoundResult()
	prev := gs.mem.Members().Clone()
	if n.cfg.PGMP.PrimaryPartition && !gs.mem.HasQuorum(newM) {
		// Minority component: the surviving members do not carry a
		// quorum of the current view, so this round's view must not be
		// installed anywhere — the majority (or the tiebreak winner)
		// installs its own and stays primary. Wedge instead.
		n.wedgeGroup(gs, now)
		return
	}
	// Leader mode: drain the old epoch's deliverable prefix before the
	// install discards its assignments. The round equalized the
	// survivors' message sets, so every survivor drains to the same
	// sequence and the new leader resumes from it.
	n.drainOrdered(gs, now)
	viewTS := n.clk.Next(now)
	gs.mem.Install(newM, viewTS, now)
	for _, p := range prev {
		if !newM.Contains(p) {
			gs.rmp.DropSource(p)
		}
	}
	// Survivors keep their heard state (SetMembership only initializes
	// processors absent from the map), so messages still in flight from
	// the old view deliver in timestamp order merged across views.
	gs.order.SetMembership(newM, ids.NilTimestamp)
	expelled := !newM.Contains(n.cfg.Self)
	if expelled {
		gs.joined = false
		gs.left = true
		n.unsubscribe(gs.addr)
	}
	n.emitView(gs, ViewFault, prev, nil, viewTS)
	n.seqAfterInstall(now, gs)
	// Deliveries unblocked by the removals (or re-sequenced under the
	// new leader) happen on the caller's next pump iteration; trigger
	// one here for promptness.
	n.drainOrdered(gs, now)
	if expelled && !gs.leaving && !gs.leaveWanted {
		n.restartRejoins(now, gs, viewTS)
	}
}

// wedgeGroup puts gs into the wedged state: no new view is installed,
// ROMP delivery freezes at the current cut, fault detection and
// recovery rounds stop (pgmp.Wedge), application sends are refused
// (Multicast returns ErrWedged) and the flow-control backlog is
// truncated to Config.WedgedQueueMax so a long partition cannot grow
// memory without bound. The node keeps heartbeating — harmless, and it
// lets the primary side see the minority as merely expelled — while
// heal detection (healFromWedge) waits to hear a convicted processor
// again.
func (n *Node) wedgeGroup(gs *groupState, now int64) {
	if gs.mem.Wedged() {
		return
	}
	gs.mem.Wedge()
	gs.order.Freeze()
	max := n.cfg.WedgedQueueMax
	if max == 0 {
		max = 64
	} else if max < 0 {
		max = 0
	}
	if drop := len(gs.sendQueue) - max; drop > 0 {
		gs.sendQueue = append(gs.sendQueue[:0], gs.sendQueue[drop:]...)
		trace.Count("core.wedged_queue_drops", uint64(drop))
	}
	trace.Inc("core.wedges")
	n.emitView(gs, ViewWedge, gs.mem.Members().Clone(), nil, gs.mem.ViewTS())
}

// healFromWedge ends a wedge once traffic from the primary side is
// heard again: the minority member discards its group state — and with
// it every uncommitted speculative message past the last shared cut —
// and re-enters through the standard rejoin pipeline (ConnectRequest
// probing, sponsored AddProcessor, replication-layer state transfer),
// which restores it to the primary's exact state. Groups carrying no
// connections have no probe to rejoin on and stay wedged; re-entry
// there is the application's decision. Returns whether the teardown
// happened (the caller must then stop touching gs).
func (n *Node) healFromWedge(now int64, gs *groupState) bool {
	if len(n.ConnectionsOn(gs.id)) == 0 {
		return false
	}
	trace.Inc("core.wedge_heals")
	// Announce the heal BEFORE the teardown so the replication layer can
	// put its served replicas back into joining (discarding speculative
	// state) while the group's connections are still enumerable.
	n.emitView(gs, ViewHeal, gs.mem.Members().Clone(), nil, gs.mem.ViewTS())
	gs.joined = false
	gs.left = true
	n.unsubscribe(gs.addr)
	n.restartRejoins(now, gs, gs.mem.ViewTS())
	return true
}

// restartRejoins re-arms the automated rejoin pipeline after a
// fault-recovery round expelled this processor from gs — the fate of a
// rejoiner admitted on a stale cut: its sponsor composed the
// AddProcessor before a concurrent recovery round concluded, so the
// conclusion, ordered after the bootstrap, lists this processor among
// the removed. Lingering as a silent non-member would deadlock the
// pipeline: the connection looks established locally, so ConnectRequest
// probing never resumes, while the survivors eventually convict the
// silent processor for real. Instead the group state is torn down
// entirely and every connection it carried reverts to backoff-paced
// probing, so once the survivors' view settles the designated member
// sponsors a clean re-admission whose AddProcessor carries a fresh cut
// (and a timestamp above the expulsion, passing the staleness guard in
// bootstrapFromAdd). Groups carrying no connections stay left: under
// the fail-stop model re-entry there is the application's decision.
func (n *Node) restartRejoins(now int64, gs *groupState, viewTS ids.Timestamp) {
	conns := n.ConnectionsOn(gs.id)
	if len(conns) == 0 {
		return
	}
	delete(n.groups, gs.id)
	n.groupsDirty = true
	n.expelled[gs.id] = viewTS
	// The group address was unsubscribed with the expulsion; forget that
	// it was ever a learned listen address so the next Connect
	// announcement subscribes it again.
	delete(n.listening, gs.addr)
	for _, id := range conns {
		req := n.conns.Reopen(id, ids.NewMembership(n.cfg.Self), now)
		if addr, ok := n.serverDomainAddrFor(req); ok {
			n.sendConnectRequest(now, addr, req)
		}
		trace.Inc("core.rejoin_restarts")
	}
}

// bootstrapFromAdd admits this processor to a group it was added to: the
// AddProcessor message, received unreliably as a non-member (paper
// Figure 3), carries the membership, the view timestamp and the sequence
// numbers at the cut (paper section 7.1).
func (n *Node) bootstrapFromAdd(now int64, msg wire.Message, raw []byte) {
	body := msg.Body.(*wire.AddProcessor)
	h := msg.Header
	if _, exists := n.groups[h.DestGroup]; exists {
		return
	}
	if ts, wasExpelled := n.expelled[h.DestGroup]; wasExpelled && h.MsgTS <= ts {
		// A resend of the admission a recovery round already undid (this
		// processor watched its own expulsion at ts); bootstrapping from
		// it would only replay the expulsion cycle. Wait for a fresh
		// AddProcessor sponsored against the settled view.
		return
	}
	addr := n.cfg.GroupAddr(h.DestGroup)
	lc, wasLearned := n.learned[h.DestGroup]
	if wasLearned && lc.addr != (wire.MulticastAddr{}) {
		// A rejoin probe learned the group's (possibly re-addressed)
		// location from the designated member's Connect announcement.
		addr = lc.addr
	}
	gs := n.newGroupState(h.DestGroup, addr)
	members := body.CurrentMembership.Add(n.cfg.Self)
	gs.mem.Install(members, h.MsgTS, now)
	// Joiner view: heard timestamps for the old members start at nil and
	// are earned through contiguous reception, so this processor's ack
	// timestamp never overclaims pre-admission coverage (see
	// romp.InitJoiner).
	gs.order.InitJoiner(members, h.MsgTS)
	// The cited sequence numbers are the cut: messages at or below them
	// precede this member's admission (their effects arrive via state
	// transfer at the replication layer).
	for _, e := range body.CurrentSeqs {
		gs.rmp.SetBaseline(e.Proc, e.Seq)
	}
	if n.cfg.Order == OrderLeader {
		// Leader mode: runs naming pre-cut messages become delivery
		// holes here (state transfer covers their effects).
		gs.seqBaseline = make(map[ids.ProcessorID]ids.SeqNum, len(body.CurrentSeqs))
		for _, e := range body.CurrentSeqs {
			gs.seqBaseline[e.Proc] = e.Seq
		}
		gs.lastLeader = n.leaderOf(gs)
	}
	gs.joined = true
	n.subscribe(addr)
	delete(n.expelled, h.DestGroup)
	if wasLearned {
		// Complete the rejoin: adopt the connection whose probe led here
		// (clearing the ConnectRequest retries) — the Connect itself
		// predates our cut and will never be redelivered to us.
		n.conns.Adopt(lc.conn, h.DestGroup, gs.addr)
		delete(n.learned, h.DestGroup)
		trace.Inc("core.rejoins_completed")
	}
	n.emitView(gs, ViewAdd, nil, nil, h.MsgTS)
	// Process the AddProcessor itself through RMP (it is the first
	// message after the cut from its source) and announce ourselves so
	// the others' horizons include us.
	n.onReliable(now, gs, msg, raw, false)
	n.sendHeartbeat(now, gs)
	n.pump(gs, now)
}

// onConnectRequest handles a client's connection request at the server
// side (paper section 7). Only the designated member — the lowest
// identifier among the server object group's supporting processors —
// responds, to keep the protocol deterministic; the others learn the
// outcome from the Connect message.
func (n *Node) onConnectRequest(now int64, req *wire.ConnectRequest) {
	if req.Conn.ServerDomain != n.cfg.Domain {
		return
	}
	serverProcs, serving := n.cfg.ObjectGroups[req.Conn.ServerGroup]
	if !serving || !serverProcs.Contains(n.cfg.Self) {
		return
	}
	// The lowest-identifier supporting processor is the designated
	// responder; the others take over in identifier order if requests
	// keep arriving unanswered (the designated member may have failed
	// before any group existed to detect it in). The group identifier
	// and membership derivations are deterministic, so concurrent
	// responders produce consistent Connects.
	idx := 0
	for i, p := range serverProcs {
		if p == n.cfg.Self {
			idx = i
		}
	}
	if idx > 0 {
		if n.connReqSeen == nil {
			n.connReqSeen = make(map[ids.ConnectionID]int)
		}
		n.connReqSeen[req.Conn]++
		if n.connReqSeen[req.Conn] <= idx*3 {
			return // give lower-ranked members their chance first
		}
	}
	if st := n.conns.Lookup(req.Conn); st != nil && st.Established {
		// Already established: ignore the request (paper), but make
		// sure the announcement reaches the client by re-arming it.
		if gs, ok := n.groups[st.Group]; ok && gs.joined {
			n.announceConnect(now, gs, st.ID, st.Addr)
			n.maybeReadmit(now, gs, req)
		}
		return
	}
	// Build (or reuse) the processor group carrying the connection:
	// the union of the client's processors and the server's. If an
	// established group already has exactly this membership, the new
	// logical connection shares it (paper section 7: "these mechanisms
	// allow several logical connections to share ... the same processor
	// group and the same IP Multicast address").
	members := serverProcs.Clone()
	for _, p := range req.Procs {
		members = members.Add(p)
	}
	for _, existing := range n.sortedGroups() {
		if existing.joined && !existing.left && existing.mem.Members().Equal(members) {
			n.announceConnect(now, existing, req.Conn, existing.addr)
			return
		}
	}
	gid := deriveGroupID(req.Conn)
	gs, exists := n.groups[gid]
	if !exists {
		addr := n.cfg.GroupAddr(gid)
		gs = n.newGroupState(gid, addr)
		gs.mem.Install(members, ids.NilTimestamp, now)
		gs.order.SetMembership(members, ids.NilTimestamp)
		gs.lastLeader = n.leaderOf(gs)
		gs.joined = true
		n.subscribe(addr)
		n.emitView(gs, ViewConnect, nil, nil, ids.NilTimestamp)
	}
	n.announceConnect(now, gs, req.Conn, gs.addr)
}

// maybeReadmit sponsors processors asking for an established
// connection whose group excludes them: under the fail-stop model a
// crashed replica returns under a fresh ProcessorID (paper section 3),
// and its only way back in is a ConnectRequest probe for the
// connection it used to serve. The lowest-identifier configured
// supporter still in the membership proposes the AddProcessor, exactly
// one sponsor per rejoiner; pgmp's pending-add resends cover loss. The
// round gate defers sponsorship during fault recovery — the probe's
// retries re-trigger it once the new view installs.
func (n *Node) maybeReadmit(now int64, gs *groupState, req *wire.ConnectRequest) {
	if n.cfg.DisableAutoReadmit || gs.mem.InRecovery() {
		return
	}
	members := gs.mem.Members()
	designated := ids.NilProcessor
	for _, p := range n.cfg.ObjectGroups[req.Conn.ServerGroup] {
		if members.Contains(p) {
			designated = p
			break
		}
	}
	if designated != n.cfg.Self {
		return
	}
	for _, p := range req.Procs {
		if members.Contains(p) || gs.mem.HasPendingAdd(p) {
			continue
		}
		if err := n.RequestAddProcessor(now, gs.id, p); err == nil {
			trace.Inc("core.readmits")
		}
	}
}

// announceConnect multicasts the Connect for conn on both the domain
// address (where connecting clients listen) and the group address, and
// arms the periodic resend until traffic flows.
func (n *Node) announceConnect(now int64, gs *groupState, conn ids.ConnectionID, addr wire.MulticastAddr) {
	body := &wire.Connect{
		Conn:              conn,
		Group:             gs.id,
		Addr:              addr,
		MembershipTS:      gs.mem.ViewTS(),
		CurrentMembership: gs.mem.Members().Clone(),
	}
	raw, _, err := n.sendReliable(now, gs, body)
	if err != nil {
		return
	}
	// Also on the domain address, where the client listens.
	n.cb.Transmit(n.cfg.DomainAddr, raw)
	n.conns.NoteAnnounce(conn, rmp.MarkRetransmission(raw), now)
	n.pump(gs, now)
}

// onConnect handles a Connect message arriving over the network, on
// either the domain address (new connection, client side) or a group
// address (member side / re-addressing).
func (n *Node) onConnect(now int64, msg wire.Message, raw []byte, arrival wire.MulticastAddr) {
	body := msg.Body.(*wire.Connect)
	h := msg.Header
	gs, tracked := n.groups[h.DestGroup]
	if !tracked {
		// New group announced via the domain address. Join directly only
		// if we are named in a FRESH membership (view timestamp nil): the
		// group was just created around us and baseline-zero reception is
		// correct. A nonzero view timestamp means the group has history
		// this processor lacks — joining it cold would NACK for messages
		// long discarded. If we asked for this connection (a rejoin
		// probe), learn where the group lives and listen there so the
		// admitting AddProcessor — which carries the proper cut — can
		// reach us; bootstrapFromAdd then joins and adopts.
		if !body.CurrentMembership.Contains(n.cfg.Self) ||
			body.MembershipTS != ids.NilTimestamp {
			if n.conns.Waiting(body.Conn) {
				n.learned[h.DestGroup] = learnedConn{conn: body.Conn, addr: body.Addr}
				if !n.listening[body.Addr] {
					n.listening[body.Addr] = true
					n.subscribe(body.Addr)
				}
				trace.Inc("core.groups_learned")
			}
			return
		}
		gs = n.newGroupState(h.DestGroup, body.Addr)
		gs.mem.Install(body.CurrentMembership, body.MembershipTS, now)
		gs.order.SetMembership(body.CurrentMembership, body.MembershipTS)
		gs.lastLeader = n.leaderOf(gs)
		gs.joined = true
		n.subscribe(body.Addr)
		n.emitView(gs, ViewConnect, nil, nil, body.MembershipTS)
	}
	gs.mem.Heard(h.Source, now)
	// The Connect flows through RMP/ROMP like any ordered message; its
	// connection-table effects apply at ordered delivery.
	n.onReliable(now, gs, msg, raw, false)
	// Announce ourselves promptly so everyone's horizon can pass the
	// Connect's timestamp (paper's post-Connect gate).
	if gs.joined && gs.gateTS == ids.NilTimestamp {
		n.sendHeartbeat(now, gs)
	}
	n.pump(gs, now)
}

// applyOrderedConnect handles a Connect in its total-order position:
// record the connection, arm the transmission gate, and re-address the
// group if the Connect changes its multicast address (paper section 7).
func (n *Node) applyOrderedConnect(now int64, gs *groupState, e romp.Entry, body *wire.Connect) {
	_, changed := n.conns.OnConnect(body, e.TS)
	if !changed {
		return
	}
	// Gate: no ordered transmission until every member has been heard
	// past the Connect's timestamp.
	gs.gateTS = e.TS
	if body.Addr != gs.addr {
		// Re-addressing: messages for this group on the old address
		// with timestamps above the Connect are ignored from now on.
		n.oldAddrs[gs.addr] = readdress{group: gs.id, ts: e.TS}
		if gs.joined {
			n.unsubscribe(gs.addr)
			n.subscribe(body.Addr)
		}
		gs.addr = body.Addr
	}
	n.sendHeartbeat(now, gs)
}

// deriveGroupID maps a connection identifier to a deterministic non-nil
// processor group identifier (FNV-1a over the four components), so every
// server group member computes the same group without coordination.
func deriveGroupID(c ids.ConnectionID) ids.GroupID {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime32
		}
	}
	mix(uint32(c.ClientDomain))
	mix(uint32(c.ClientGroup))
	mix(uint32(c.ServerDomain))
	mix(uint32(c.ServerGroup))
	if h == 0 {
		h = 1
	}
	return ids.GroupID(h)
}

// sendHeartbeat multicasts a Heartbeat to gs: the null message carrying
// this processor's current sequence number, message timestamp and ack
// timestamp (paper section 5).
func (n *Node) sendHeartbeat(now int64, gs *groupState) {
	if !gs.joined {
		return
	}
	// A pending pack is itself heartbeat-equivalent traffic; flushing it
	// updates lastSent and usually makes the heartbeat unnecessary.
	n.flushPack(now, gs)
	if now == gs.lastSent {
		return
	}
	ts := n.clk.Next(now)
	h := n.header(gs, gs.nextSeq, ts)
	raw, err := wire.Encode(h, &wire.Heartbeat{})
	if err != nil {
		return
	}
	gs.order.ObserveTimestamp(n.cfg.Self, ts, h.AckTS)
	n.cb.Transmit(gs.addr, raw)
	gs.lastSent = now
	n.stats.HeartbeatsSent++
}
