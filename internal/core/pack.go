package core

import (
	"ftmp/internal/ids"
	"ftmp/internal/romp"
	"ftmp/internal/wire"
)

// PackConfig configures send-side message packing: batching several
// small Regular messages into one wire.Packed container (FTMP 1.1) so
// the 40-byte header and the per-datagram network cost are amortized
// across a burst. Packing changes framing only: every message still
// gets its own sequence number and timestamp when it enters the pack,
// so source order, total order, duplicate detection and NACK repair are
// exactly those of standalone Regular messages. Lost containers are
// repaired per entry (the source re-encodes each requested message as a
// standalone Regular), and a node with packing enabled interoperates
// with one that has it disabled.
type PackConfig struct {
	// Enabled turns packing on. Off by default: the wire traffic is then
	// byte-identical to an FTMP 1.0 sender.
	Enabled bool
	// MaxBytes flushes the pack when its encoded size would pass this
	// budget (default 1200, a conservative Ethernet-MTU datagram).
	MaxBytes int
	// MaxCount flushes the pack at this many entries (default 32).
	MaxCount int
	// MaxDelay bounds how long the oldest buffered message may wait
	// before the pack is flushed on a tick (default 1ms). Latency added
	// by packing never exceeds MaxDelay plus the driver's tick cadence.
	MaxDelay int64
}

// DefaultPackConfig returns packing enabled with the default policy.
func DefaultPackConfig() PackConfig {
	return PackConfig{Enabled: true, MaxBytes: 1200, MaxCount: 32, MaxDelay: 1_000_000}
}

func (c PackConfig) maxBytes() int {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return 1200
}

func (c PackConfig) maxCount() int {
	if c.MaxCount > 0 {
		return c.MaxCount
	}
	return 32
}

func (c PackConfig) maxDelay() int64 {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 1_000_000
}

// sendRegular routes an application Regular message through the packer
// when packing is enabled, and through the standalone path otherwise.
func (n *Node) sendRegular(now int64, gs *groupState, body *wire.Regular) error {
	if n.seqLeading(gs) {
		// Leader mode: the leader's data frames carry the pending
		// sequencing run (SeqData), bypassing the packer — a packed
		// entry could not piggyback the run.
		return n.sendLeaderData(now, gs, body)
	}
	if !n.cfg.Pack.Enabled {
		_, _, err := n.sendReliable(now, gs, body)
		return err
	}
	return n.packRegular(now, gs, body)
}

// packRegular assigns the message its sequence number and timestamp,
// runs all send-side bookkeeping (RMP retention, ROMP submission, flow
// control) exactly as sendReliable would, and buffers the message as a
// pack entry instead of transmitting it. The pack is flushed when it
// reaches the size or count budget; Tick flushes stragglers after
// MaxDelay.
func (n *Node) packRegular(now int64, gs *groupState, body *wire.Regular) error {
	entrySize := wire.PackedEntryOverhead + len(body.Payload)
	if wire.HeaderSize+4+entrySize > n.cfg.Pack.maxBytes() {
		// Too large to share a datagram: send standalone (sendReliable
		// flushes the pending pack first, keeping wire order).
		_, _, err := n.sendReliable(now, gs, body)
		return err
	}
	if len(gs.packEntries) > 0 &&
		(gs.packBytes+entrySize > n.cfg.Pack.maxBytes() ||
			len(gs.packEntries) >= n.cfg.Pack.maxCount()) {
		n.flushPack(now, gs)
	}

	gs.nextSeq++
	seq := gs.nextSeq
	ts := n.clk.Next(now)
	h := n.header(gs, seq, ts)
	h.Type = wire.TypeRegular
	h.Size = uint32(wire.HeaderSize + 16 + 8 + 4 + len(body.Payload))
	msg := wire.Message{Header: h, Body: body}
	// Raw is nil: the standalone encoding exists only if a repair ever
	// needs it (rmp lazily encodes from msg and memoizes).
	gs.rmp.NoteSent(seq, ts, nil, msg)
	if n.cfg.MaxUnstable > 0 {
		gs.unstable = append(gs.unstable, ts)
	}
	gs.order.Submit(romp.Entry{Source: n.cfg.Self, Seq: seq, TS: ts, Msg: msg})
	gs.lastActivity = now
	n.stats.MessagesSent++
	n.stats.PackedMsgs++

	if len(gs.packEntries) == 0 {
		gs.packSince = now
		gs.packBytes = wire.HeaderSize + 4 // container header + entry count
	}
	gs.packEntries = append(gs.packEntries, wire.PackedEntry{
		Seq: seq, TS: ts, Conn: body.Conn, RequestNum: body.RequestNum, Payload: body.Payload,
	})
	gs.packBytes += entrySize
	if len(gs.packEntries) >= n.cfg.Pack.maxCount() || gs.packBytes >= n.cfg.Pack.maxBytes() {
		n.flushPack(now, gs)
	}
	return nil
}

// flushPack transmits the buffered pack as one Packed container. The
// container takes no sequence number of its own: its header carries the
// last entry's Seq and MsgTS (so, like a Heartbeat, it advertises the
// sender's latest reliable message for gap detection) plus the current
// AckTS, and the container is never retransmitted — lost entries are
// repaired individually through the normal NACK path. Flushing counts
// as group traffic, so it suppresses the standalone heartbeat the way
// any transmission does.
func (n *Node) flushPack(now int64, gs *groupState) {
	if len(gs.packEntries) == 0 {
		return
	}
	last := gs.packEntries[len(gs.packEntries)-1]
	h := wire.Header{
		LittleEndian: n.cfg.LittleEndian,
		Source:       n.cfg.Self,
		DestGroup:    gs.id,
		Seq:          last.Seq,
		MsgTS:        last.TS,
		AckTS:        gs.order.AckTS(),
	}
	body := wire.Packed{Entries: gs.packEntries}
	raw, err := wire.Encode(h, &body)
	if err == nil {
		// Like a heartbeat, the container piggybacks this sender's ack.
		gs.order.ObserveTimestamp(n.cfg.Self, ids.NilTimestamp, h.AckTS)
		n.cb.Transmit(gs.addr, raw)
		gs.lastSent = now
		n.stats.PacksSent++
	}
	gs.packEntries = gs.packEntries[:0]
	gs.packBytes = 0
}

// onPacked unpacks a received container and runs each entry through the
// same reliable path as a standalone Regular message. The synthesized
// per-entry header restores what packing factored out into the
// container header (source, group, byte order, ack), and each entry
// keeps its own sequence number and timestamp, so RMP dedup/gap logic
// and ROMP ordering observe exactly the messages the sender packed.
// Entry payloads alias data, which the node retains (the same ownership
// rule as standalone reliable messages).
func (n *Node) onPacked(now int64, gs *groupState, outer wire.Header, p *wire.Packed) {
	if !gs.mem.Members().Contains(outer.Source) {
		return
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		eh := wire.Header{
			LittleEndian:   outer.LittleEndian,
			Retransmission: outer.Retransmission,
			Type:           wire.TypeRegular,
			Size:           uint32(wire.HeaderSize + 16 + 8 + 4 + len(e.Payload)),
			Source:         outer.Source,
			DestGroup:      outer.DestGroup,
			Seq:            e.Seq,
			MsgTS:          e.TS,
			AckTS:          outer.AckTS,
		}
		body := &wire.Regular{Conn: e.Conn, RequestNum: e.RequestNum, Payload: e.Payload}
		msg := wire.Message{Header: eh, Body: body}
		for _, held := range gs.rmp.Receive(msg, nil, now) {
			gs.order.Submit(romp.Entry{Source: held.Msg.Header.Source, Seq: held.Seq, TS: held.TS, Msg: held.Msg})
		}
	}
	gs.lastActivity = now
	// The container header doubles as a heartbeat: its Seq names the
	// sender's latest reliable message and its AckTS is current.
	trusted := gs.rmp.NoteHeartbeatSeq(outer.Source, outer.Seq, now)
	if trusted {
		gs.order.ObserveTimestamp(outer.Source, outer.MsgTS, outer.AckTS)
	} else {
		gs.order.ObserveTimestamp(outer.Source, ids.NilTimestamp, outer.AckTS)
	}
}
