package core_test

// Equivalence of the two network entry points: HandleBatch must produce
// byte-for-byte the deliveries HandlePacket produces, because the
// runtime pipeline substitutes one for the other under load.

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

type deliveryRec struct {
	source  ids.ProcessorID
	ts      ids.Timestamp
	payload string
}

// TestHandleBatchEquivalence replays one replica's exact input stream
// into a shadow replica with the same identity, delivering it through
// HandleBatch in multi-packet batches (pre-decoded and body-cloned, as
// the runtime's receive workers do), and requires identical deliveries
// and identical packet accounting.
func TestHandleBatchEquivalence(t *testing.T) {
	const group = ids.GroupID(9)
	members := ids.NewMembership(1, 2)
	var sender, primary, shadow *core.Node
	var clock int64

	var primaryGot, shadowGot []deliveryRec
	record := func(out *[]deliveryRec) func(core.Delivery) {
		return func(d core.Delivery) {
			*out = append(*out, deliveryRec{source: d.Source, ts: d.TS, payload: string(d.Payload)})
		}
	}

	// Packets the replica receives, in arrival order; the shadow gets
	// copies of exactly this stream.
	var pendingRaw [][]byte
	var pendingAddr []wire.MulticastAddr

	sender = core.NewNode(core.DefaultConfig(1), core.Callbacks{
		Transmit: func(addr wire.MulticastAddr, data []byte) {
			cp := append([]byte(nil), data...)
			pendingRaw = append(pendingRaw, cp)
			pendingAddr = append(pendingAddr, addr)
			if primary != nil {
				primary.HandlePacket(append([]byte(nil), data...), addr, clock)
			}
		},
		Deliver: func(core.Delivery) {},
	})
	primary = core.NewNode(core.DefaultConfig(2), core.Callbacks{
		Transmit: func(addr wire.MulticastAddr, data []byte) {
			if sender != nil {
				sender.HandlePacket(append([]byte(nil), data...), addr, clock)
			}
		},
		Deliver: record(&primaryGot),
	})
	shadow = core.NewNode(core.DefaultConfig(2), core.Callbacks{
		Transmit: func(wire.MulticastAddr, []byte) {}, // mute: the primary speaks for processor 2
		Deliver:  record(&shadowGot),
	})

	sender.CreateGroup(0, group, members)
	primary.CreateGroup(0, group, members)
	shadow.CreateGroup(0, group, members)
	clock = 1
	sender.Tick(1)
	primary.Tick(1)
	shadow.Tick(1)

	// The shadow consumes its stream through one decoder, exactly like a
	// receive worker: decode, clone the scratch body, hand over the raw.
	var dec wire.Decoder
	flushShadow := func(now int64) {
		var batch []core.Incoming
		for i, raw := range pendingRaw {
			msg, err := dec.Decode(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			msg.Body = wire.CloneBody(msg.Body)
			batch = append(batch, core.Incoming{Msg: msg, Raw: raw, Addr: pendingAddr[i]})
		}
		pendingRaw, pendingAddr = nil, nil
		shadow.HandleBatch(batch, now)
	}

	const msgs = 40
	for i := 0; i < msgs; i++ {
		now := int64(i+2) * 10_000_000
		clock = now
		if err := sender.Multicast(now, group, ids.ConnectionID{}, 0, []byte(fmt.Sprintf("m-%03d", i))); err != nil {
			t.Fatal(err)
		}
		primary.Tick(now)
		sender.Tick(now)
		// Mirror the primary's step on the shadow: the accumulated
		// packets as one batch, then the same tick.
		flushShadow(now)
		shadow.Tick(now)
	}
	flushShadow(clock)

	if len(primaryGot) == 0 {
		t.Fatal("primary delivered nothing; test harness is broken")
	}
	if len(primaryGot) != len(shadowGot) {
		t.Fatalf("primary delivered %d, shadow %d", len(primaryGot), len(shadowGot))
	}
	for i := range primaryGot {
		if primaryGot[i] != shadowGot[i] {
			t.Fatalf("delivery %d differs: primary %+v, shadow %+v", i, primaryGot[i], shadowGot[i])
		}
	}
	ps, ss := primary.Stats(), shadow.Stats()
	if ps.PacketsIn != ss.PacketsIn {
		t.Errorf("PacketsIn differs: primary %d, shadow %d", ps.PacketsIn, ss.PacketsIn)
	}
	if ps.DecodeErrors != ss.DecodeErrors {
		t.Errorf("DecodeErrors differs: primary %d, shadow %d", ps.DecodeErrors, ss.DecodeErrors)
	}
}

// TestHandleBatchPacked runs the same equivalence through the packed
// datapath, where one datagram fans out into several ordered entries —
// the shape the pipeline sees under ftmpd -pack.
func TestHandleBatchPacked(t *testing.T) {
	const group = ids.GroupID(11)
	members := ids.NewMembership(1, 2)
	var sender, primary, shadow *core.Node
	var clock int64

	var primaryGot, shadowGot []string
	var pendingRaw [][]byte
	var pendingAddr []wire.MulticastAddr

	cfgPacked := func(p ids.ProcessorID) core.Config {
		cfg := core.DefaultConfig(p)
		cfg.Pack = core.DefaultPackConfig()
		return cfg
	}
	sender = core.NewNode(cfgPacked(1), core.Callbacks{
		Transmit: func(addr wire.MulticastAddr, data []byte) {
			cp := append([]byte(nil), data...)
			pendingRaw = append(pendingRaw, cp)
			pendingAddr = append(pendingAddr, addr)
			if primary != nil {
				primary.HandlePacket(append([]byte(nil), data...), addr, clock)
			}
		},
		Deliver: func(core.Delivery) {},
	})
	primary = core.NewNode(cfgPacked(2), core.Callbacks{
		Transmit: func(addr wire.MulticastAddr, data []byte) {
			if sender != nil {
				sender.HandlePacket(append([]byte(nil), data...), addr, clock)
			}
		},
		Deliver: func(d core.Delivery) { primaryGot = append(primaryGot, string(d.Payload)) },
	})
	shadow = core.NewNode(cfgPacked(2), core.Callbacks{
		Transmit: func(wire.MulticastAddr, []byte) {},
		Deliver:  func(d core.Delivery) { shadowGot = append(shadowGot, string(d.Payload)) },
	})

	sender.CreateGroup(0, group, members)
	primary.CreateGroup(0, group, members)
	shadow.CreateGroup(0, group, members)
	clock = 1
	sender.Tick(1)
	primary.Tick(1)
	shadow.Tick(1)

	var dec wire.Decoder
	flushShadow := func(now int64) {
		var batch []core.Incoming
		for i, raw := range pendingRaw {
			msg, err := dec.Decode(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			msg.Body = wire.CloneBody(msg.Body)
			batch = append(batch, core.Incoming{Msg: msg, Raw: raw, Addr: pendingAddr[i]})
		}
		pendingRaw, pendingAddr = nil, nil
		shadow.HandleBatch(batch, now)
	}

	const msgs = 60
	for i := 0; i < msgs; i++ {
		now := int64(i+2) * 10_000_000
		clock = now
		if err := sender.Multicast(now, group, ids.ConnectionID{}, 0, []byte(fmt.Sprintf("p-%03d", i))); err != nil {
			t.Fatal(err)
		}
		primary.Tick(now)
		sender.Tick(now)
		flushShadow(now)
		shadow.Tick(now)
	}
	flushShadow(clock)

	if len(primaryGot) == 0 {
		t.Fatal("primary delivered nothing")
	}
	if len(primaryGot) != len(shadowGot) {
		t.Fatalf("primary delivered %d, shadow %d", len(primaryGot), len(shadowGot))
	}
	for i := range primaryGot {
		if primaryGot[i] != shadowGot[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, primaryGot[i], shadowGot[i])
		}
	}
}
