package core_test

// Torture: loss + crash + planned add + planned remove, interleaved
// with traffic, across seeds. Safety bar: survivors that were members
// throughout agree on identical delivery sequences; members that joined
// mid-run deliver a contiguous suffix of that sequence.

import (
	"fmt"
	"math/rand"
	"testing"

	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

func TestTortureChurn(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 1000))
			loss := rng.Float64() * 0.08

			// Members 1..4 bootstrap; 5 joins mid-run; 4 is removed
			// (planned); 3 crashes late in half the runs.
			procs := []ids.ProcessorID{1, 2, 3, 4, 5}
			cfg := simnet.NewConfig()
			cfg.LossRate = loss
			c := harness.NewCluster(harness.Options{Seed: seed * 131, Net: cfg}, procs...)
			initial := ids.NewMembership(1, 2, 3, 4)
			c.CreateGroup(g1, initial)

			crash3 := rng.Intn(2) == 1
			const msgs = 60
			for i := 0; i < msgs; i++ {
				i := i
				src := ids.ProcessorID(i%2 + 1) // senders 1 and 2 live throughout
				c.Net.At(simnet.Time(i*2)*simnet.Millisecond, func() {
					_ = c.Multicast(src, g1, fmt.Sprintf("%v|%02d", src, i))
				})
			}
			c.Net.At(simnet.Time(20+rng.Intn(20))*simnet.Millisecond, func() {
				c.Host(5).Node.ListenGroup(g1)
				_ = c.Host(1).Node.RequestAddProcessor(int64(c.Net.Now()), g1, 5)
			})
			c.Net.At(simnet.Time(50+rng.Intn(20))*simnet.Millisecond, func() {
				_ = c.Host(2).Node.RequestRemoveProcessor(int64(c.Net.Now()), g1, 4)
			})
			if crash3 {
				c.Net.At(simnet.Time(80+rng.Intn(20))*simnet.Millisecond, func() {
					c.Crash(3)
				})
			}
			c.Run(30 * simnet.Second)

			throughout := ids.NewMembership(1, 2)
			// Integrity + agreement among the always-present members.
			base := c.Host(1).DeliveredPayloads(g1)
			seen := make(map[string]bool)
			for _, s := range base {
				if seen[s] {
					t.Fatalf("duplicate delivery %q", s)
				}
				seen[s] = true
			}
			for _, p := range throughout[1:] {
				got := c.Host(p).DeliveredPayloads(g1)
				if len(got) != len(base) {
					t.Fatalf("agreement: %v=%d msgs, P1=%d (loss=%.2f crash3=%v)",
						p, len(got), len(base), loss, crash3)
				}
				for i := range base {
					if base[i] != got[i] {
						t.Fatalf("order differs at %d", i)
					}
				}
			}
			// All 60 messages delivered (senders survived).
			if len(base) != msgs {
				t.Fatalf("delivered %d of %d (loss=%.2f crash3=%v)", len(base), msgs, loss, crash3)
			}
			// The joiner's deliveries are an order-consistent
			// subsequence of the agreed sequence (its admission cut is
			// per-source, so early messages below the cut are skipped,
			// exactly as the paper's AddProcessor sequence vector
			// defines), and it misses nothing from its first delivery
			// of post-join traffic to the end.
			joined := c.Host(5).DeliveredPayloads(g1)
			if len(joined) == 0 {
				t.Fatal("joiner delivered nothing")
			}
			bi := 0
			for _, s := range joined {
				for bi < len(base) && base[bi] != s {
					bi++
				}
				if bi == len(base) {
					t.Fatalf("joiner delivered %q out of the agreed order", s)
				}
				bi++
			}
			if joined[len(joined)-1] != base[len(base)-1] {
				t.Fatalf("joiner missing the stream tail: ends at %q, base ends at %q",
					joined[len(joined)-1], base[len(base)-1])
			}
			// Contiguity from the joiner's midpoint onward: everything
			// in the base's second half appears in the joiner's view.
			half := base[len(base)/2:]
			pos := make(map[string]bool, len(joined))
			for _, s := range joined {
				pos[s] = true
			}
			for _, s := range half {
				if !pos[s] {
					t.Fatalf("joiner missing %q from the stream's second half", s)
				}
			}
			// Final membership at the always-present members.
			want := ids.NewMembership(1, 2, 5)
			if !crash3 {
				want = want.Add(3)
			}
			for _, p := range throughout {
				if got := c.Host(p).Node.Members(g1); !got.Equal(want) {
					t.Fatalf("%v final membership %v, want %v", p, got, want)
				}
			}
		})
	}
}
