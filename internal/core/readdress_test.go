package core_test

import (
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

func establishConn(t *testing.T, c *harness.Cluster, conn ids.ConnectionID) ids.GroupID {
	t.Helper()
	domainAddr := core.DefaultConfig(3).DomainAddr
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			st := c.Host(p).Node.ConnectionState(conn)
			if st == nil || !st.Established {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("connection not established")
	}
	return c.Host(3).Node.ConnectionState(conn).Group
}

func TestReaddressConnection(t *testing.T) {
	c, conn := connCluster(t, 301, 0, false)
	g := establishConn(t, c, conn)
	members := ids.NewMembership(1, 2, 3)

	// Traffic before the change.
	now := int64(c.Net.Now())
	if err := c.Host(3).Node.Multicast(now, g, conn, 1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g, members, 1)) {
		t.Fatal("pre-change delivery failed")
	}
	oldAddr, _ := c.Host(1).Node.GroupAddr(g)

	// The designated server member moves the group to a new address.
	newAddr := wire.MulticastAddr{IP: [4]byte{239, 7, 7, 7}, Port: 7777}
	if err := c.Host(1).Node.ReaddressConnection(int64(c.Net.Now()), conn, newAddr); err != nil {
		t.Fatal(err)
	}
	ok := c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range members {
			a, found := c.Host(p).Node.GroupAddr(g)
			if !found || a != newAddr {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, p := range members {
			a, _ := c.Host(p).Node.GroupAddr(g)
			t.Logf("%v addr: %v", p, a)
		}
		t.Fatal("re-addressing never converged")
	}

	// Ordered traffic continues on the new address (the transmission
	// gate must release once every member is heard past the Connect).
	now = int64(c.Net.Now())
	if err := c.Host(3).Node.Multicast(now, g, conn, 2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g, members, 2)) {
		for _, p := range members {
			t.Logf("%v delivered: %v", p, c.Host(p).DeliveredPayloads(g))
		}
		t.Fatal("post-change delivery failed")
	}
	for _, p := range members {
		got := c.Host(p).DeliveredPayloads(g)
		if got[0] != "before" || got[1] != "after" {
			t.Errorf("%v order: %v", p, got)
		}
	}

	// A straggler for the group on the OLD address with a timestamp
	// above the re-addressing Connect must be ignored (paper section 7).
	h := wire.Header{
		Source:    ids.ProcessorID(2),
		DestGroup: g,
		Seq:       ids.SeqNum(1000),
		MsgTS:     ids.MakeTimestamp(1<<40, 2), // far above the Connect
	}
	raw, err := wire.Encode(h, &wire.Regular{Conn: conn, RequestNum: 99, Payload: []byte("stale-addr")})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Host(3).Node.Stats().RMP.Received
	c.Net.Send(2, harness.PackAddr(oldAddr), raw)
	c.RunFor(100 * simnet.Millisecond)
	if got := c.Host(3).Node.Stats().RMP.Received; got != before {
		t.Errorf("message on superseded address was accepted (received %d -> %d)", before, got)
	}
}

func TestConnectionsShareGroupWhenMembershipMatches(t *testing.T) {
	// Paper section 7: several logical connections may share the same
	// processor group and multicast address.
	serverProcs := ids.NewMembership(1, 2)
	c := harness.NewCluster(harness.Options{
		Seed: 307,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{
				20: serverProcs,
				21: serverProcs,
			}
		},
	}, 1, 2, 3)
	domainAddr := core.DefaultConfig(3).DomainAddr
	connA := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 20}
	connB := ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 1, ServerGroup: 21}
	now := int64(c.Net.Now())
	c.Host(3).Node.OpenConnection(now, connA, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(10*simnet.Second, func() bool {
		st := c.Host(3).Node.ConnectionState(connA)
		return st != nil && st.Established
	})
	if !ok {
		t.Fatal("first connection failed")
	}
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), connB, domainAddr, ids.NewMembership(3))
	ok = c.RunUntil(10*simnet.Second, func() bool {
		st := c.Host(3).Node.ConnectionState(connB)
		return st != nil && st.Established
	})
	if !ok {
		t.Fatal("second connection failed")
	}
	a := c.Host(3).Node.ConnectionState(connA)
	b := c.Host(3).Node.ConnectionState(connB)
	if a.Group != b.Group {
		t.Errorf("same-membership connections got different groups: %v vs %v", a.Group, b.Group)
	}
	if a.Addr != b.Addr {
		t.Errorf("shared group with different addresses: %v vs %v", a.Addr, b.Addr)
	}
	// Both connections carry traffic independently, multiplexed on the
	// shared group, distinguished by their connection identifiers.
	members := ids.NewMembership(1, 2, 3)
	_ = c.Host(3).Node.Multicast(int64(c.Net.Now()), a.Group, connA, 1, []byte("on-A"))
	_ = c.Host(3).Node.Multicast(int64(c.Net.Now()), b.Group, connB, 1, []byte("on-B"))
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(a.Group, members, 2)) {
		t.Fatal("multiplexed traffic failed")
	}
	d := c.Host(1).Deliveries
	var conns []ids.ConnectionID
	for _, x := range d {
		if x.Group == a.Group && len(x.Payload) > 0 {
			conns = append(conns, x.Conn)
		}
	}
	if len(conns) != 2 || conns[0] == conns[1] {
		t.Errorf("connection ids not preserved across shared group: %v", conns)
	}
}

func TestNonMemberMessageRejected(t *testing.T) {
	c, m := lanCluster(t, 311, 2)
	// A stray processor (not a member) injects a Regular message.
	h := wire.Header{
		Source:    ids.ProcessorID(66),
		DestGroup: g1,
		Seq:       1,
		MsgTS:     ids.MakeTimestamp(5, 66),
	}
	raw, err := wire.Encode(h, &wire.Regular{Payload: []byte("intruder")})
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := c.Host(1).Node.GroupAddr(g1)
	c.Net.AddNode(66, simnet.EndpointFunc{}, 0)
	c.Net.Send(66, harness.PackAddr(addr), raw)
	c.RunFor(200 * simnet.Millisecond)
	_ = c.Multicast(1, g1, "legit")
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("group damaged by intruder message")
	}
	for _, p := range m {
		for _, s := range c.Host(p).DeliveredPayloads(g1) {
			if s == "intruder" {
				t.Fatalf("%v delivered a non-member message", p)
			}
		}
	}
}
