// Package core implements the FTMP protocol node: the paper's primary
// contribution. It assembles the three layers of Figure 1 — RMP
// (reliable source-ordered multicast), ROMP (reliable totally-ordered
// multicast) and PGMP (processor group membership) — into a single
// reactive state machine driven by two inputs, HandlePacket and Tick,
// plus the application-facing operations (Multicast, OpenConnection,
// RequestAddProcessor, ...).
//
// The node performs no I/O and never reads a clock: every entry point
// takes the current time, and all outputs flow through the Callbacks
// supplied at construction. A driver serializes calls — package simnet
// for deterministic experiments, package runtime for real networks —
// so the node itself needs no locks.
package core

import (
	"errors"
	"fmt"
	"sort"

	"ftmp/internal/clock"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/rmp"
	"ftmp/internal/romp"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Config configures a processor's FTMP stack. Durations are nanoseconds.
type Config struct {
	// Self is this processor's identifier (required, non-nil).
	Self ids.ProcessorID
	// Domain is the fault tolerance domain this processor belongs to.
	Domain ids.DomainID
	// DomainAddr is the domain's well-known multicast address, on which
	// ConnectRequest and Connect messages travel.
	DomainAddr wire.MulticastAddr
	// LittleEndian selects the byte order flag for outgoing messages.
	LittleEndian bool

	// HeartbeatInterval is the idle time after which a Heartbeat is
	// multicast to a group (paper section 5: a compromise between
	// message latency and network traffic; experiment E3).
	HeartbeatInterval int64

	// HeartbeatIdleMax, when larger than HeartbeatInterval, stretches
	// the heartbeat period toward it on groups with no reliable traffic:
	// after a grace of two base intervals past the last reliable send or
	// receive (long enough for loss-tail gap detection and stability
	// convergence at the base rate), heartbeats slow to this period.
	// Every ack a peer needs promptly rides on data or on the base-rate
	// grace window, so only true quiescence is slowed. It must stay well
	// below the PGMP suspicion timeout or idle members convict each
	// other. Zero disables stretching (the paper's fixed-period policy).
	HeartbeatIdleMax int64

	// Pack configures send-side batching of small Regular messages into
	// wire.Packed containers (see PackConfig). Disabled by default.
	Pack PackConfig

	// RMP, Membership and Connection policies.
	RMP  rmp.Config
	PGMP pgmp.Config
	Conn pgmp.ConnConfig

	// MaxUnstable, when positive, bounds this sender's in-flight
	// messages: Multicast queues (instead of transmitting) once more
	// than MaxUnstable of its own messages await stability, draining as
	// acknowledgment timestamps advance. It keeps a lagging member from
	// inflating every peer's retransmission buffers without bound
	// (flow control in the style of Totem; the paper leaves policy to
	// the implementation). Zero disables the bound.
	MaxUnstable int

	// WedgedQueueMax bounds the flow-control sendQueue retained while a
	// group is wedged (PGMP PrimaryPartition): at the moment of wedging
	// the backlog is truncated to its newest WedgedQueueMax entries
	// (oldest dropped, counted by core.wedged_queue_drops), so an
	// arbitrarily long partition cannot grow a minority node's memory
	// without bound. Zero selects the default of 64; negative drops the
	// whole backlog.
	WedgedQueueMax int

	// PromiscuousRepair makes every holder of a requested message answer
	// RetransmitRequests, instead of the default policy (the source
	// answers; others only when the source is suspected, convicted or
	// departed). The paper allows either ("any processor that has
	// received ... may retransmit", section 5); the ablation experiment
	// A1 quantifies the traffic difference.
	PromiscuousRepair bool

	// ClockMode selects Lamport or synchronized timestamps; ClockSkew is
	// the synthetic skew applied in Synchronized mode.
	ClockMode clock.Mode
	ClockSkew int64

	// ObjectGroups maps each object group this processor's fault
	// tolerance infrastructure knows about to the processors supporting
	// it. The designated member uses it to build processor groups for
	// new connections.
	ObjectGroups map[ids.ObjectGroupID]ids.Membership

	// DisableAutoReadmit turns off the rejoin path in which the
	// designated member of an established connection's group proposes an
	// AddProcessor for an unknown processor retrying ConnectRequests for
	// that connection (a crashed replica returning under a fresh
	// fail-stop identifier). The default (false) admits such rejoiners
	// automatically.
	DisableAutoReadmit bool

	// GroupAddr derives the multicast address for a processor group.
	// Nil selects a deterministic default derivation, so that every
	// member computes the same address independently.
	GroupAddr func(ids.GroupID) wire.MulticastAddr

	// Order selects the total-order algorithm: OrderLamport (default) is
	// the paper's acknowledgment-horizon order; OrderLeader (FTMP 1.3)
	// has the current view's leader assign a dense delivery sequence,
	// trading the all-member ack round for a single leader hop (E17).
	Order OrderMode
}

// OrderMode selects how totally-ordered messages are sequenced.
type OrderMode uint8

const (
	// OrderLamport is the paper's algorithm: a message delivers when the
	// acknowledgment horizon (min over members' heard timestamps) passes
	// its Lamport timestamp.
	OrderLamport OrderMode = iota
	// OrderLeader is the FTMP 1.3 low-latency mode: the current view's
	// leader (lowest member identifier) assigns each totally-ordered
	// message a dense sequence and publishes the assignments as runs;
	// followers deliver in sequence order on receipt. The ack machinery
	// keeps running underneath for stability, buffer reclamation and WAL
	// compaction, and failover rides the membership protocol (the new
	// view's leader re-sequences the undelivered suffix).
	OrderLeader
)

// String implements fmt.Stringer.
func (m OrderMode) String() string {
	switch m {
	case OrderLamport:
		return "lamport"
	case OrderLeader:
		return "leader"
	default:
		return fmt.Sprintf("OrderMode(%d)", uint8(m))
	}
}

// ParseOrderMode maps a flag value to an OrderMode.
func ParseOrderMode(s string) (OrderMode, error) {
	switch s {
	case "", "lamport":
		return OrderLamport, nil
	case "leader":
		return OrderLeader, nil
	default:
		return OrderLamport, fmt.Errorf("core: unknown order mode %q (want lamport or leader)", s)
	}
}

// DefaultConfig returns the policy used throughout the experiments.
func DefaultConfig(self ids.ProcessorID) Config {
	return Config{
		Self:              self,
		Domain:            1,
		DomainAddr:        wire.MulticastAddr{IP: [4]byte{239, 255, 0, 1}, Port: 7400},
		HeartbeatInterval: 5_000_000, // 5ms
		RMP:               rmp.DefaultConfig(),
		PGMP:              pgmp.DefaultConfig(),
		Conn:              pgmp.DefaultConnConfig(),
	}
}

// Delivery is one totally-ordered application message handed up by the
// stack: the payload of a Regular message together with the duplicate-
// detection identifiers of paper section 4.
type Delivery struct {
	Group      ids.GroupID
	Source     ids.ProcessorID
	TS         ids.Timestamp
	Conn       ids.ConnectionID
	RequestNum ids.RequestNum
	Payload    []byte
	// SourceSeq is the message's RMP sequence number at its source.
	SourceSeq ids.SeqNum
	// OrderEpoch and OrderSeq carry the leader-mode ordering assignment
	// under which this message delivered (FTMP 1.3). Both are zero in
	// Lamport mode; OrderSeq is never zero in leader mode, so OrderSeq>0
	// identifies a sequenced delivery (the WAL's RecSeq trigger).
	OrderEpoch uint64
	OrderSeq   uint64
}

// ViewReason explains a membership change.
type ViewReason uint8

const (
	// ViewBootstrap is the initial, statically configured membership.
	ViewBootstrap ViewReason = iota
	// ViewConnect is a membership installed by a Connect message.
	ViewConnect
	// ViewAdd is a planned AddProcessor change.
	ViewAdd
	// ViewRemove is a planned RemoveProcessor change.
	ViewRemove
	// ViewFault is a fault-driven change (Suspect/Membership protocol).
	ViewFault
	// ViewWedge reports that a fault-recovery round completed WITHOUT
	// installing: the surviving component lacked a quorum of the previous
	// view (PGMP PrimaryPartition) and the node wedged. Members and
	// ViewTS are those of the still-current view; nothing was installed.
	ViewWedge
	// ViewHeal reports that a wedged minority member heard the primary
	// component again and is tearing its group state down to rejoin; the
	// replication layer must discard speculative state and re-enter
	// joining so the post-heal state transfer applies. Members and ViewTS
	// are those of the wedged (pre-heal) view; nothing was installed.
	ViewHeal
)

// String implements fmt.Stringer.
func (r ViewReason) String() string {
	switch r {
	case ViewBootstrap:
		return "bootstrap"
	case ViewConnect:
		return "connect"
	case ViewAdd:
		return "add"
	case ViewRemove:
		return "remove"
	case ViewFault:
		return "fault"
	case ViewWedge:
		return "wedge"
	case ViewHeal:
		return "heal"
	default:
		return fmt.Sprintf("ViewReason(%d)", uint8(r))
	}
}

// ViewChange reports an installed membership (or, for ViewWedge, a
// refused one: Members and ViewTS remain those of the current view).
type ViewChange struct {
	Group   ids.GroupID
	ViewTS  ids.Timestamp
	Members ids.Membership
	Joined  ids.Membership
	Left    ids.Membership
	Reason  ViewReason
	// Epoch is the installed-view count after this change: the view
	// lineage (unchanged by a ViewWedge, which installs nothing).
	Epoch uint64
}

// Callbacks are the node's outputs. Transmit and Deliver are required;
// the others may be nil.
type Callbacks struct {
	// Transmit multicasts an encoded FTMP message to addr.
	Transmit func(addr wire.MulticastAddr, data []byte)
	// Deliver hands a totally-ordered application message up.
	Deliver func(d Delivery)
	// ViewChange reports an installed membership.
	ViewChange func(v ViewChange)
	// FaultReport conveys convictions to the fault tolerance
	// infrastructure (paper section 7.2).
	FaultReport func(group ids.GroupID, convicted ids.Membership)
	// Subscribe and Unsubscribe manage multicast group membership at
	// the transport.
	Subscribe   func(addr wire.MulticastAddr)
	Unsubscribe func(addr wire.MulticastAddr)
}

// queuedSend is an application message waiting for a transmission gate.
type queuedSend struct {
	conn    ids.ConnectionID
	reqNum  ids.RequestNum
	payload []byte
}

// groupState is the per-processor-group protocol state.
type groupState struct {
	id    ids.GroupID
	addr  wire.MulticastAddr
	rmp   *rmp.Layer
	order *romp.Order
	mem   *pgmp.Group

	// joined reports whether this processor is currently a member.
	joined bool
	// left is set once this processor has been removed; the state is
	// retained to answer stray packets but originates nothing.
	left bool

	// nextSeq is the last sequence number this processor used in the
	// group (paper: incremented for each reliably-delivered message).
	nextSeq ids.SeqNum

	// lastSent is when this processor last multicast anything to the
	// group; the heartbeat timer compares against it.
	lastSent int64
	// lastActivity is when reliable traffic (sent or received) last
	// flowed in this group; heartbeat stretching (HeartbeatIdleMax)
	// compares against it.
	lastActivity int64

	// packEntries buffers messages awaiting a pack flush (PackConfig);
	// packBytes is the pack's encoded size so far and packSince when its
	// oldest entry was buffered.
	packEntries []wire.PackedEntry
	packBytes   int
	packSince   int64

	// gateTS, when non-nil(>0), blocks ordered transmission until a
	// message with a higher timestamp has been received from every
	// member (paper section 7, Connect rule).
	gateTS    ids.Timestamp
	gateQueue []queuedSend

	// pumping guards against re-entrant delivery: an application
	// callback may call Multicast, which pumps; the nested pump must
	// not deliver ahead of the batch the outer pump is applying.
	pumping bool

	// sendQueue holds application messages deferred by flow control
	// (Config.MaxUnstable); drained oldest-first as stability advances.
	sendQueue []queuedSend
	// unstable tracks this sender's own messages not yet stable, as
	// (seq, timestamp) pairs in send order.
	unstable []ids.Timestamp

	// leaving/leavingTS implement graceful departure: a member that
	// delivered its own RemoveProcessor keeps heartbeating (so laggards
	// can still order the removal) until the removal is stable — every
	// member has acknowledged it — and only then goes silent. Without
	// the linger, a member that missed the leaver's final traffic could
	// stall forever waiting to hear from it.
	leaving   bool
	leavingTS ids.Timestamp

	// leaveWanted is set when this processor itself asked to leave
	// (Node.Leave): if a concurrent fault-recovery round expels it
	// before the graceful RemoveProcessor orders, the departure is still
	// intentional and must not restart the rejoin pipeline.
	leaveWanted bool

	// Leader ordering mode (Config.Order == OrderLeader, FTMP 1.3).
	// pendingRun accumulates assignments made at this node while it is
	// the leader that have not been published yet; they piggyback on the
	// leader's next data frame (SeqData) or flush as a standalone
	// SeqAssign at the end of the pump. pendingFirst is the delivery
	// sequence of pendingRun[0].
	pendingRun   []wire.SeqRef
	pendingFirst uint64
	// seqBaseline is a joiner's admission cut: refs at or below it can
	// never be satisfied here (their payloads arrive via state transfer)
	// and become delivery holes when a run names them.
	seqBaseline map[ids.ProcessorID]ids.SeqNum
	// lastLeader is the leader of the last installed view; a change
	// across an install fences the old leader's runs (seq epoch bump).
	lastLeader ids.ProcessorID
	// gapRef/gapNacked drive the follower's targeted gap NACK: when
	// delivery stalls on an assigned-but-missing message for a full
	// tick, one immediate RetransmitRequest goes out ahead of RMP's
	// backoff-paced repair.
	gapRef    wire.SeqRef
	gapNacked bool
	// failoverStart, when nonzero, times failover: set when an install
	// changes the leader, cleared (and reported) at the first delivery
	// sequenced under the new epoch.
	failoverStart int64
}

// Stats aggregates per-node counters across layers for the harness.
type Stats struct {
	RMP  rmp.Stats
	ROMP romp.Stats
	PGMP pgmp.Stats
	// HeartbeatsSent counts Heartbeat messages originated here.
	HeartbeatsSent uint64
	// MessagesSent counts reliable messages originated here.
	MessagesSent uint64
	// PacketsIn counts decoded incoming packets.
	PacketsIn uint64
	// DecodeErrors counts undecodable packets.
	DecodeErrors uint64
	// PacksSent counts Packed containers transmitted; PackedMsgs counts
	// the Regular messages that traveled inside them (a subset of
	// MessagesSent).
	PacksSent  uint64
	PackedMsgs uint64
}

// Node is one processor's FTMP protocol stack.
type Node struct {
	cfg    Config
	cb     Callbacks
	clk    *clock.Lamport
	groups map[ids.GroupID]*groupState
	conns  *pgmp.Connections
	// oldAddrs records superseded group addresses: messages for the
	// group arriving there with timestamps above the re-addressing
	// Connect are ignored (paper section 7).
	oldAddrs map[wire.MulticastAddr]readdress
	// listening tracks extra subscribed addresses (server domains being
	// connected to).
	listening map[wire.MulticastAddr]bool
	// domainAddrs remembers foreign domains' addresses for
	// ConnectRequest retries.
	domainAddrs map[ids.DomainID]wire.MulticastAddr
	// connReqSeen counts unanswered ConnectRequests per connection at
	// non-designated server members (responder failover ladder).
	connReqSeen map[ids.ConnectionID]int
	// learned maps groups announced to this (non-member) processor while
	// it was waiting on a ConnectRequest — a rejoiner probing for an
	// established connection. The node listens on the group address so
	// the admitting AddProcessor can reach it, and adopts the connection
	// when bootstrapFromAdd fires.
	learned map[ids.GroupID]learnedConn
	// expelled records, per group a fault-recovery round removed this
	// processor from, the expulsion view timestamp: AddProcessor resends
	// stamped at or below it are stale copies of an admission that the
	// recovery already undid and must not re-bootstrap the group (see
	// restartRejoins).
	expelled map[ids.GroupID]ids.Timestamp
	stats    Stats
	// dec decodes incoming datagrams without allocating; its scratch
	// bodies are cloned (wire.CloneBody) before anything retains them.
	dec wire.Decoder
	// groupList caches sortedGroups' result; groupsDirty marks it stale.
	groupList   []*groupState
	groupsDirty bool
}

type learnedConn struct {
	conn ids.ConnectionID
	addr wire.MulticastAddr
}

type readdress struct {
	group ids.GroupID
	ts    ids.Timestamp
}

// Errors returned by Node operations.
var (
	ErrNotMember    = errors.New("core: not a member of the group")
	ErrUnknownGroup = errors.New("core: unknown group")
	ErrLeft         = errors.New("core: processor was removed from the group")
	// ErrWedged is returned by Multicast while the group is wedged as a
	// minority-partition survivor: the send is refused rather than
	// queued, because healing tears the group state down for a rejoin
	// and queued sends would vanish silently. Callers should retry
	// against the primary component (the gateway maps this to a
	// retryable "not primary" exception).
	ErrWedged = errors.New("core: group is wedged (minority partition, not primary)")
)

// NewNode builds a node. Transmit and Deliver callbacks are required.
func NewNode(cfg Config, cb Callbacks) *Node {
	if !cfg.Self.Valid() {
		panic("core: Config.Self is required")
	}
	if cb.Transmit == nil || cb.Deliver == nil {
		panic("core: Transmit and Deliver callbacks are required")
	}
	if cfg.GroupAddr == nil {
		base := cfg.DomainAddr
		cfg.GroupAddr = func(g ids.GroupID) wire.MulticastAddr {
			a := base
			a.IP[2] = byte(uint32(g) >> 8)
			a.IP[3] = byte(uint32(g))
			a.Port = base.Port + 1
			return a
		}
	}
	var clk *clock.Lamport
	if cfg.ClockMode == clock.Synchronized {
		clk = clock.NewSynchronized(cfg.Self, cfg.ClockSkew)
	} else {
		clk = clock.NewLamport(cfg.Self)
	}
	n := &Node{
		cfg:         cfg,
		cb:          cb,
		clk:         clk,
		groups:      make(map[ids.GroupID]*groupState),
		conns:       pgmp.NewConnections(cfg.Conn),
		oldAddrs:    make(map[wire.MulticastAddr]readdress),
		listening:   make(map[wire.MulticastAddr]bool),
		domainAddrs: make(map[ids.DomainID]wire.MulticastAddr),
		learned:     make(map[ids.GroupID]learnedConn),
		expelled:    make(map[ids.GroupID]ids.Timestamp),
	}
	n.subscribe(cfg.DomainAddr)
	return n
}

// Self returns this processor's identifier.
func (n *Node) Self() ids.ProcessorID { return n.cfg.Self }

// Stats returns aggregated counters (summed across groups for the
// per-layer parts).
func (n *Node) Stats() Stats {
	s := n.stats
	for _, g := range n.sortedGroups() {
		rs := g.rmp.Stats()
		s.RMP.Received += rs.Received
		s.RMP.Duplicates += rs.Duplicates
		s.RMP.OutOfOrder += rs.OutOfOrder
		s.RMP.NacksSent += rs.NacksSent
		s.RMP.Retransmissions += rs.Retransmissions
		s.RMP.DiscardedStable += rs.DiscardedStable
		os := g.order.Stats()
		s.ROMP.Submitted += os.Submitted
		s.ROMP.Delivered += os.Delivered
		if os.MaxPending > s.ROMP.MaxPending {
			s.ROMP.MaxPending = os.MaxPending
		}
		ps := g.mem.Stats()
		s.PGMP.SuspectsRaised += ps.SuspectsRaised
		s.PGMP.Convictions += ps.Convictions
		s.PGMP.RoundsStarted += ps.RoundsStarted
		s.PGMP.ViewsInstalled += ps.ViewsInstalled
		s.PGMP.ProposalResends += ps.ProposalResends
	}
	return s
}

// Members returns the current membership of group g (nil if unknown).
func (n *Node) Members(g ids.GroupID) ids.Membership {
	if gs, ok := n.groups[g]; ok {
		return gs.mem.Members().Clone()
	}
	return nil
}

// GroupAddr returns the multicast address group g uses here.
func (n *Node) GroupAddr(g ids.GroupID) (wire.MulticastAddr, bool) {
	if gs, ok := n.groups[g]; ok {
		return gs.addr, true
	}
	return wire.MulticastAddr{}, false
}

// GroupStatus is a point-in-time snapshot of one group's protocol
// state, for operator tooling and tests.
type GroupStatus struct {
	Group      ids.GroupID
	Addr       wire.MulticastAddr
	Members    ids.Membership
	ViewTS     ids.Timestamp
	Joined     bool
	Leaving    bool
	Left       bool
	Recovering bool
	// Epoch is the installed-view count (the view lineage); Wedged
	// reports minority-partition wedging (PGMP PrimaryPartition).
	Epoch  uint64
	Wedged bool
	// Horizon is the delivery horizon; Stable the stability horizon.
	Horizon ids.Timestamp
	Stable  ids.Timestamp
	// RMPHeld and ROMPPending are buffer occupancies; SendQueue is the
	// flow-control backlog.
	RMPHeld     int
	ROMPPending int
	SendQueue   int
	// Order is the configured ordering mode; Leader is the current
	// view's leader under OrderLeader (the lowest member identifier,
	// nil otherwise); SeqNext is the next delivery sequence expected.
	Order   OrderMode
	Leader  ids.ProcessorID
	SeqNext uint64
}

// Status returns a snapshot of group g's state, or false if unknown.
func (n *Node) Status(g ids.GroupID) (GroupStatus, bool) {
	gs, ok := n.groups[g]
	if !ok {
		return GroupStatus{}, false
	}
	return GroupStatus{
		Group:       gs.id,
		Addr:        gs.addr,
		Members:     gs.mem.Members().Clone(),
		ViewTS:      gs.mem.ViewTS(),
		Joined:      gs.joined,
		Leaving:     gs.leaving,
		Left:        gs.left,
		Recovering:  gs.mem.InRecovery(),
		Epoch:       gs.mem.Epoch(),
		Wedged:      gs.mem.Wedged(),
		Horizon:     gs.order.Horizon(),
		Stable:      gs.order.StableTS(),
		RMPHeld:     gs.rmp.Buffered(),
		ROMPPending: gs.order.PendingCount() + gs.order.SeqPendingCount(),
		SendQueue:   len(gs.sendQueue),
		Order:       n.cfg.Order,
		Leader:      n.leaderOf(gs),
		SeqNext:     gs.order.SeqNext(),
	}, true
}

// Buffered returns RMP buffer occupancy plus ROMP pending count for g,
// for the buffer-management experiment (E5).
func (n *Node) Buffered(g ids.GroupID) (rmpHeld, rompPending int) {
	if gs, ok := n.groups[g]; ok {
		return gs.rmp.Buffered(), gs.order.PendingCount()
	}
	return 0, 0
}

// ConnectionState returns the state of a logical connection, or nil.
func (n *Node) ConnectionState(c ids.ConnectionID) *pgmp.ConnState {
	return n.conns.Lookup(c)
}

func (n *Node) subscribe(a wire.MulticastAddr) {
	if n.cb.Subscribe != nil {
		n.cb.Subscribe(a)
	}
}

func (n *Node) unsubscribe(a wire.MulticastAddr) {
	if n.cb.Unsubscribe != nil {
		n.cb.Unsubscribe(a)
	}
}

// sortedGroups returns the groups in ascending id order. The slice is
// cached and rebuilt only when the group set changes (every Tick and
// Stats call iterates it); a rebuild allocates a fresh slice, so a
// caller mid-iteration keeps a consistent snapshot.
func (n *Node) sortedGroups() []*groupState {
	if n.groupsDirty || len(n.groupList) != len(n.groups) {
		list := make([]*groupState, 0, len(n.groups))
		for _, gs := range n.groups {
			list = append(list, gs)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
		n.groupList = list
		n.groupsDirty = false
	}
	return n.groupList
}

// newGroupState creates protocol state for group id at address addr.
func (n *Node) newGroupState(id ids.GroupID, addr wire.MulticastAddr) *groupState {
	gs := &groupState{
		id:    id,
		addr:  addr,
		rmp:   rmp.New(n.cfg.Self, id, n.cfg.RMP),
		order: romp.New(n.cfg.Self),
		mem:   pgmp.NewGroup(n.cfg.Self, id, n.cfg.PGMP),
	}
	if n.cfg.Order == OrderLeader {
		gs.order.EnableSeqMode()
	}
	n.groups[id] = gs
	n.groupsDirty = true
	return gs
}

// CreateGroup bootstraps a processor group with a static membership, the
// way the fault tolerance infrastructure initializes a domain (see
// DESIGN.md: bootstrap is outside the paper's protocol). Every listed
// member must call it with identical arguments. If this processor is in
// members it becomes an active member immediately.
func (n *Node) CreateGroup(now int64, id ids.GroupID, members ids.Membership) {
	n.CreateGroupAt(now, id, members, ids.NilTimestamp)
}

// CreateGroupAt bootstraps a processor group whose membership epoch was
// recovered from a write-ahead log (cold start: every replica was down
// and restarts from durable state). The view is installed at viewTS
// rather than nil, and the Lamport clock observes it, so messages sent
// in the resumed group carry timestamps strictly above everything in
// the logged epoch — logged and new deliveries stay totally ordered.
// Every restarting member must call it with the same membership; small
// viewTS differences (a member that crashed before logging the last
// epoch) are reconciled by the install-takes-max rule.
func (n *Node) CreateGroupAt(now int64, id ids.GroupID, members ids.Membership, viewTS ids.Timestamp) {
	if _, exists := n.groups[id]; exists {
		return
	}
	n.clk.Observe(viewTS)
	addr := n.cfg.GroupAddr(id)
	gs := n.newGroupState(id, addr)
	gs.mem.Install(members, viewTS, now)
	gs.order.SetMembership(members, viewTS)
	gs.lastLeader = n.leaderOf(gs)
	if members.Contains(n.cfg.Self) {
		gs.joined = true
		n.subscribe(addr)
		// Stagger the first heartbeat by membership position so the
		// group's heartbeats spread over the interval instead of
		// phase-locking (they would otherwise all fire on the same tick
		// forever, distorting the latency/traffic tradeoff of E3).
		idx := int64(0)
		for i, p := range members {
			if p == n.cfg.Self {
				idx = int64(i)
			}
		}
		phase := n.cfg.HeartbeatInterval * idx / int64(len(members))
		gs.lastSent = now - n.cfg.HeartbeatInterval + phase
	}
	n.emitView(gs, ViewBootstrap, members, nil, viewTS)
}

// RecoverClock advances the Lamport clock past ts, the highest
// timestamp found in a recovered write-ahead log. A restarted processor
// must call it before sending anything: a clock reborn at zero would
// issue timestamps that order new messages before the logged history.
func (n *Node) RecoverClock(ts ids.Timestamp) { n.clk.Observe(ts) }

// emitView reports a view change, computing joins/leaves against prev.
func (n *Node) emitView(gs *groupState, reason ViewReason, prev ids.Membership, _ any, viewTS ids.Timestamp) {
	if n.cb.ViewChange == nil {
		return
	}
	cur := gs.mem.Members()
	var joined, left ids.Membership
	for _, p := range cur {
		if !prev.Contains(p) {
			joined = joined.Add(p)
		}
	}
	for _, p := range prev {
		if !cur.Contains(p) {
			left = left.Add(p)
		}
	}
	if reason == ViewBootstrap {
		joined = cur.Clone()
		left = nil
	}
	n.cb.ViewChange(ViewChange{
		Group:   gs.id,
		ViewTS:  viewTS,
		Members: cur.Clone(),
		Joined:  joined,
		Left:    left,
		Reason:  reason,
		Epoch:   gs.mem.Epoch(),
	})
}

// header builds a header for the next message to group gs.
func (n *Node) header(gs *groupState, seq ids.SeqNum, ts ids.Timestamp) wire.Header {
	return wire.Header{
		LittleEndian: n.cfg.LittleEndian,
		Source:       n.cfg.Self,
		DestGroup:    gs.id,
		Seq:          seq,
		MsgTS:        ts,
		AckTS:        gs.order.AckTS(),
	}
}

// sendReliable allocates a sequence number and timestamp, encodes body,
// records it in RMP for retransmission, submits ordered types to ROMP
// for self-delivery, and transmits. It returns the encoded message.
// The body is retained by reference until the message becomes stable;
// callers hand over ownership.
func (n *Node) sendReliable(now int64, gs *groupState, body wire.Body) ([]byte, wire.Message, error) {
	// Buffered pack entries hold earlier sequence numbers; flush them so
	// the wire carries this sender's reliable messages in source order.
	n.flushPack(now, gs)
	gs.nextSeq++
	seq := gs.nextSeq
	ts := n.clk.Next(now)
	h := n.header(gs, seq, ts)
	raw, msg, err := wire.EncodeMessage(h, body)
	if err != nil {
		gs.nextSeq--
		return nil, wire.Message{}, err
	}
	gs.rmp.NoteSent(seq, ts, raw, msg)
	gs.lastActivity = now
	if n.cfg.MaxUnstable > 0 &&
		(msg.Header.Type == wire.TypeRegular || msg.Header.Type == wire.TypeSeqData) {
		gs.unstable = append(gs.unstable, ts)
	}
	if msg.Header.Type.TotallyOrdered() {
		gs.order.Submit(romp.Entry{Source: n.cfg.Self, Seq: seq, TS: ts, Msg: msg})
		if msg.Header.Type != wire.TypeSeqData && n.seqLeading(gs) {
			// The leader sequences its own ordered control messages
			// (AddProcessor, RemoveProcessor, Connect) on send; its data
			// frames self-assign inside sendLeaderData.
			n.leaderAssign(gs, wire.SeqRef{Source: n.cfg.Self, Seq: seq})
		}
	} else {
		gs.order.ObserveTimestamp(n.cfg.Self, ts, h.AckTS)
	}
	n.cb.Transmit(gs.addr, raw)
	gs.lastSent = now
	n.stats.MessagesSent++
	return raw, msg, nil
}

// Multicast sends an application payload (typically an encapsulated GIOP
// message) to processor group g as a Regular message, identified by the
// logical connection and request number for duplicate detection. If the
// group's transmission gate is closed (a Connect was recently processed)
// the message is queued and sent when the gate opens.
//
// Ownership of payload transfers to the node: it is referenced (not
// copied) until the message becomes stable, so the caller must not
// modify the slice after the call.
func (n *Node) Multicast(now int64, g ids.GroupID, conn ids.ConnectionID, reqNum ids.RequestNum, payload []byte) error {
	gs, ok := n.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	if gs.left || gs.leaving {
		return ErrLeft
	}
	if !gs.joined {
		return ErrNotMember
	}
	if gs.mem.Wedged() {
		// A wedged minority must not commit (or promise to commit)
		// anything: healing replaces this group state wholesale via the
		// rejoin path, so a queued send would be silently lost.
		trace.Inc("core.wedged_sends_refused")
		return ErrWedged
	}
	if gs.gateTS != ids.NilTimestamp {
		gs.gateQueue = append(gs.gateQueue, queuedSend{conn: conn, reqNum: reqNum, payload: payload})
		return nil
	}
	if n.cfg.MaxUnstable > 0 && (len(gs.unstable) >= n.cfg.MaxUnstable || len(gs.sendQueue) > 0) {
		gs.sendQueue = append(gs.sendQueue, queuedSend{conn: conn, reqNum: reqNum, payload: payload})
		n.pump(gs, now)
		return nil
	}
	body := &wire.Regular{Conn: conn, RequestNum: reqNum, Payload: payload}
	if err := n.sendRegular(now, gs, body); err != nil {
		return err
	}
	n.pump(gs, now)
	return nil
}

// QueuedSends reports how many application messages flow control is
// currently holding back for group g.
func (n *Node) QueuedSends(g ids.GroupID) int {
	if gs, ok := n.groups[g]; ok {
		return len(gs.sendQueue)
	}
	return 0
}

// gateOpen checks whether the transmission gate can open: a message with
// a timestamp above gateTS has been heard from every member.
func (n *Node) gateOpen(gs *groupState) bool {
	if gs.gateTS == ids.NilTimestamp {
		return true
	}
	for _, p := range gs.mem.Members() {
		if gs.order.Heard(p) <= gs.gateTS {
			return false
		}
	}
	return true
}

// maybeReleaseGate flushes queued sends once the gate opens.
func (n *Node) maybeReleaseGate(gs *groupState, now int64) {
	if gs.gateTS == ids.NilTimestamp || !n.gateOpen(gs) {
		return
	}
	gs.gateTS = ids.NilTimestamp
	queued := gs.gateQueue
	gs.gateQueue = nil
	for _, q := range queued {
		body := &wire.Regular{Conn: q.conn, RequestNum: q.reqNum, Payload: q.payload}
		if err := n.sendRegular(now, gs, body); err != nil {
			// Encoding errors are deterministic; drop and continue.
			continue
		}
	}
}

// ListenGroup subscribes this processor to group g's multicast address
// without joining the group. The fault tolerance infrastructure calls it
// on a processor about to be added, so that the (unreliably delivered)
// AddProcessor message can reach it (paper section 7.1: membership
// changes complete before object group changes).
func (n *Node) ListenGroup(g ids.GroupID) {
	if _, tracked := n.groups[g]; tracked {
		return
	}
	addr := n.cfg.GroupAddr(g)
	if !n.listening[addr] {
		n.listening[addr] = true
		n.subscribe(addr)
	}
}

// RequestAddProcessor proposes adding a non-faulty processor to group g
// (paper section 7.1). The change takes effect, at every member, when
// the AddProcessor message is delivered in total order. The proposer
// re-multicasts the message until the new member is heard from, because
// delivery to the new member is unreliable (paper Figure 3).
func (n *Node) RequestAddProcessor(now int64, g ids.GroupID, newMember ids.ProcessorID) error {
	gs, ok := n.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	if !gs.joined {
		return ErrNotMember
	}
	body := &wire.AddProcessor{
		MembershipTS:      gs.mem.ViewTS(),
		CurrentMembership: gs.mem.Members().Clone(),
		CurrentSeqs:       gs.rmp.SeqVector(gs.mem.Members()),
		NewMember:         newMember,
	}
	raw, _, err := n.sendReliable(now, gs, body)
	if err != nil {
		return err
	}
	gs.mem.NoteAddProposed(newMember, rmp.MarkRetransmission(raw), now)
	n.pump(gs, now)
	return nil
}

// RequestRemoveProcessor proposes removing a non-faulty processor from
// group g (paper section 7.1). The removal takes effect when the
// RemoveProcessor message is ordered.
func (n *Node) RequestRemoveProcessor(now int64, g ids.GroupID, member ids.ProcessorID) error {
	gs, ok := n.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	if !gs.joined {
		return ErrNotMember
	}
	if _, _, err := n.sendReliable(now, gs, &wire.RemoveProcessor{Member: member}); err != nil {
		return err
	}
	n.pump(gs, now)
	return nil
}

// ReaddressConnection moves an established connection's processor group
// to a new multicast address (paper section 7: a Connect "can also be
// used to change the IP Multicast address or processor group used by an
// existing connection"). The Connect is ordered on the current address;
// each member switches when it is delivered, ignores later-stamped
// traffic on the old address, and holds ordered transmission until every
// member is heard past the Connect (the transmission gate).
func (n *Node) ReaddressConnection(now int64, conn ids.ConnectionID, newAddr wire.MulticastAddr) error {
	st := n.conns.Lookup(conn)
	if st == nil || !st.Established {
		return ErrUnknownGroup
	}
	gs, ok := n.groups[st.Group]
	if !ok {
		return ErrUnknownGroup
	}
	if !gs.joined {
		return ErrNotMember
	}
	body := &wire.Connect{
		Conn:              st.ID,
		Group:             gs.id,
		Addr:              newAddr,
		MembershipTS:      gs.mem.ViewTS(),
		CurrentMembership: gs.mem.Members().Clone(),
	}
	if _, _, err := n.sendReliable(now, gs, body); err != nil {
		return err
	}
	n.pump(gs, now)
	return nil
}

// AdoptConnection registers an established logical connection this
// processor learned from its fault tolerance infrastructure rather than
// from a Connect message — the case of a replica added to the
// connection's processor group after the Connect was ordered (its
// admission cut excludes the Connect). The group must already be
// tracked here.
func (n *Node) AdoptConnection(conn ids.ConnectionID, group ids.GroupID) error {
	gs, ok := n.groups[group]
	if !ok {
		return ErrUnknownGroup
	}
	n.conns.Adopt(conn, group, gs.addr)
	return nil
}

// Leave gracefully departs from group g: it multicasts a
// RemoveProcessor naming this processor (paper section 7.1) and, once
// the removal is ordered and stable, stops participating (see
// finishLeaving). The fault tolerance infrastructure must have removed
// this processor's object replicas first.
func (n *Node) Leave(now int64, g ids.GroupID) error {
	if gs, ok := n.groups[g]; ok {
		gs.leaveWanted = true
	}
	return n.RequestRemoveProcessor(now, g, n.cfg.Self)
}

// OpenConnection starts establishing a logical connection between a
// client object group and a server object group (paper section 7). The
// client infrastructure multicasts a ConnectRequest on the server
// domain's address and retries until the server responds with a Connect.
// clientProcs are the processors supporting the client object group.
func (n *Node) OpenConnection(now int64, conn ids.ConnectionID, serverDomainAddr wire.MulticastAddr, clientProcs ids.Membership) {
	if st := n.conns.Lookup(conn); st != nil && st.Established {
		return
	}
	if !n.listening[serverDomainAddr] {
		n.listening[serverDomainAddr] = true
		n.subscribe(serverDomainAddr)
	}
	n.domainAddrs[conn.ServerDomain] = serverDomainAddr
	req := n.conns.RequestOpen(conn, clientProcs, now)
	n.sendConnectRequest(now, serverDomainAddr, req)
}

// RequestRejoin begins re-entry into an established connection's
// processor group under this node's identifier — the automated
// recovery path for a replica that crashed and restarted under a fresh
// fail-stop ProcessorID (paper section 3: a convicted processor never
// returns under its old identifier). It probes the server domain with
// ConnectRequests naming only this processor; the designated member of
// the connection's group answers by re-announcing the Connect (from
// which this node learns the group and its address) and proposing an
// AddProcessor for it (auto-readmit), and bootstrapFromAdd completes
// the join and adopts the connection. Retry pacing follows
// Config.Conn's backoff policy.
func (n *Node) RequestRejoin(now int64, conn ids.ConnectionID, serverDomainAddr wire.MulticastAddr) {
	trace.Inc("core.rejoin_requests")
	n.OpenConnection(now, conn, serverDomainAddr, ids.NewMembership(n.cfg.Self))
}

// ConnectAttempts returns how many ConnectRequest transmissions this
// node has made for conn (initial sends plus retries), so recovery
// drivers can assert the rejoin stayed within its retry budget.
func (n *Node) ConnectAttempts(conn ids.ConnectionID) int {
	return n.conns.Attempts(conn)
}

// ConnectionsOn returns the established logical connections carried by
// processor group g, in deterministic order.
func (n *Node) ConnectionsOn(g ids.GroupID) []ids.ConnectionID {
	var out []ids.ConnectionID
	for _, st := range n.conns.All() {
		if st.Established && st.Group == g {
			out = append(out, st.ID)
		}
	}
	return out
}

// ObjectGroupProcs returns the configured supporting processors of
// object group og (nil if unknown here).
func (n *Node) ObjectGroupProcs(og ids.ObjectGroupID) ids.Membership {
	return n.cfg.ObjectGroups[og].Clone()
}

// sendConnectRequest transmits a ConnectRequest: unreliable, addressed
// to the domain (DestGroup, Seq and MsgTS are zero per paper section 7).
func (n *Node) sendConnectRequest(now int64, addr wire.MulticastAddr, req *wire.ConnectRequest) {
	h := wire.Header{
		LittleEndian: n.cfg.LittleEndian,
		Source:       n.cfg.Self,
		DestGroup:    ids.NilGroup,
		Seq:          0,
		MsgTS:        ids.NilTimestamp,
		AckTS:        ids.NilTimestamp,
	}
	raw, err := wire.Encode(h, req)
	if err != nil {
		return
	}
	n.cb.Transmit(addr, raw)
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("node(%v, %d groups)", n.cfg.Self, len(n.groups))
}
