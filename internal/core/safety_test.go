package core_test

// Randomized safety sweep: across many seeded schedules of loss, jitter,
// workload and crashes, every pair of live processors must satisfy the
// group-communication safety contract:
//
//	agreement  — delivered sequences are prefix-compatible (and equal
//	             once the run quiesces),
//	integrity  — nothing is delivered twice, nothing is invented,
//	order      — per-node delivery timestamps strictly increase, and
//	             per-source payloads appear in send order (FIFO).
//
// Liveness (everything eventually delivered) is asserted only for the
// survivors' own messages, since a crashed sender's unacked tail may
// legitimately die with it before reaching anyone.

import (
	"fmt"
	"math/rand"
	"testing"

	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// at indexes a slice defensively for failure messages.
func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<past end>"
}

func TestRandomizedSafetySweep(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(3) // 3..5 members
			loss := rng.Float64() * 0.15
			crash := ids.NilProcessor
			if rng.Intn(2) == 1 {
				crash = ids.ProcessorID(n) // highest id crashes
			}

			procs := make([]ids.ProcessorID, n)
			for i := range procs {
				procs[i] = ids.ProcessorID(i + 1)
			}
			cfg := simnet.NewConfig()
			cfg.LossRate = loss
			c := harness.NewCluster(harness.Options{Seed: seed * 31, Net: cfg}, procs...)
			m := ids.NewMembership(procs...)
			c.CreateGroup(g1, m)

			const per = 12
			sendOrder := make(map[ids.ProcessorID][]string)
			for i := 0; i < per; i++ {
				for _, p := range procs {
					p, i := p, i
					at := simnet.Time(rng.Intn(60)) * simnet.Millisecond
					c.Net.At(at, func() {
						msg := fmt.Sprintf("%v/%02d", p, i)
						if err := c.Multicast(p, g1, msg); err == nil {
							sendOrder[p] = append(sendOrder[p], msg)
						}
					})
				}
			}
			if crash != ids.NilProcessor {
				at := simnet.Time(10+rng.Intn(40)) * simnet.Millisecond
				c.Net.At(at, func() { c.Crash(crash) })
			}

			// Run long enough for repair and recovery to quiesce.
			c.Run(20 * simnet.Second)

			survivors := m
			if crash != ids.NilProcessor {
				survivors = m.Remove(crash)
			}

			// Integrity: no duplicates at any survivor.
			for _, p := range survivors {
				seen := make(map[string]bool)
				for _, s := range c.Host(p).DeliveredPayloads(g1) {
					if seen[s] {
						t.Fatalf("%v delivered %q twice", p, s)
					}
					seen[s] = true
				}
			}

			// Order: per-node delivery timestamps strictly increase, and
			// each source's messages appear as a prefix-respecting
			// subsequence of that source's actual send order (FIFO).
			for _, p := range survivors {
				var lastTS ids.Timestamp
				cursor := make(map[ids.ProcessorID]int)
				for _, d := range c.Host(p).Deliveries {
					if d.Group != g1 {
						continue
					}
					if d.TS <= lastTS {
						t.Fatalf("%v delivery timestamps not increasing", p)
					}
					lastTS = d.TS
					s := string(d.Payload)
					src := d.Source
					sent := sendOrder[src]
					i := cursor[src]
					if i >= len(sent) || sent[i] != s {
						t.Fatalf("%v source-FIFO violated for %v: got %q, expected %q at position %d",
							p, src, s, at(sent, i), i)
					}
					cursor[src] = i + 1
				}
			}

			// Agreement: identical sequences across survivors after
			// quiescence.
			base := c.Host(survivors[0]).DeliveredPayloads(g1)
			for _, p := range survivors[1:] {
				got := c.Host(p).DeliveredPayloads(g1)
				if len(got) != len(base) {
					t.Fatalf("agreement violated: %v delivered %d, %v delivered %d (loss=%.2f crash=%v)",
						survivors[0], len(base), p, len(got), loss, crash)
				}
				for i := range base {
					if base[i] != got[i] {
						t.Fatalf("order differs at %d: %q vs %q", i, base[i], got[i])
					}
				}
			}

			// Liveness for survivors' own messages.
			for _, p := range survivors {
				want := fmt.Sprintf("%v/%02d", p, per-1)
				found := false
				for _, s := range base {
					if s == want {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("survivor %v's last message %q never delivered (loss=%.2f crash=%v)",
						p, want, loss, crash)
				}
			}
		})
	}
}
