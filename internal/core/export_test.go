package core

import (
	"fmt"
	"sort"

	"ftmp/internal/ids"
)

// DebugDump exposes per-member ordering and RMP state to tests.
func (n *Node) DebugDump(g ids.GroupID) string {
	gs, ok := n.groups[g]
	if !ok {
		return "unknown group"
	}
	out := fmt.Sprintf("members=%v viewTS=%v horizon=%v gate=%v\n",
		gs.mem.Members(), gs.mem.ViewTS(), gs.order.Horizon(), gs.gateTS)
	ms := gs.mem.Members().Clone()
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	for _, p := range ms {
		out += fmt.Sprintf("  %v: heard=%v contig=%d gap=%v\n",
			p, gs.order.Heard(p), gs.rmp.Contiguous(p), gs.rmp.HasGap(p))
	}
	return out
}
