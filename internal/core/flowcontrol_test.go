package core_test

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

func TestFlowControlBoundsBuffers(t *testing.T) {
	// A sender with MaxUnstable keeps at most that many of its own
	// messages in flight; when the network is cut (nothing stabilizes),
	// further sends queue locally instead of inflating everyone's
	// retransmission buffers, and drain after the network heals.
	const window = 8
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{
		Seed: 501,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.MaxUnstable = window
			// Keep fault detection out of the way of the outage window.
			cfg.PGMP.SuspectTimeout = 1 << 60
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	c.RunFor(20 * simnet.Millisecond)

	// Cut the network: nothing the sender transmits can stabilize.
	c.Net.SetLoss(1.0)
	const msgs = 50
	for i := 0; i < msgs; i++ {
		i := i
		c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
			_ = c.Multicast(1, g1, fmt.Sprintf("fc%02d", i))
		})
	}
	c.RunFor(simnet.Time(msgs+20) * simnet.Millisecond)
	queued := c.Host(1).Node.QueuedSends(g1)
	if queued < msgs-window-2 {
		t.Fatalf("flow control did not queue: %d queued, want ~%d", queued, msgs-window)
	}
	// The receivers' buffers stayed bounded by the cap (plus protocol
	// chatter), not the full burst.
	held, pending := c.Host(2).Node.Buffered(g1)
	if held+pending > window*3 {
		t.Errorf("receiver buffered %d entries despite flow control window %d", held+pending, window)
	}

	// Heal: everything drains and delivers in order.
	c.Net.SetLoss(0)
	if !c.RunUntil(60*simnet.Second, c.AllDelivered(g1, m, msgs)) {
		for _, p := range procs {
			t.Logf("%v delivered %d, queued %d", p,
				len(c.Host(p).DeliveredPayloads(g1)), c.Host(p).Node.QueuedSends(g1))
		}
		t.Fatal("queued sends never drained after heal")
	}
	got := c.Host(2).DeliveredPayloads(g1)
	for i := 0; i < msgs; i++ {
		if got[i] != fmt.Sprintf("fc%02d", i) {
			t.Fatalf("order broken at %d: %q", i, got[i])
		}
	}
	if c.Host(1).Node.QueuedSends(g1) != 0 {
		t.Error("send queue not fully drained")
	}
}

func TestFlowControlOffByDefault(t *testing.T) {
	c, _ := lanCluster(t, 503, 2)
	if c.Host(1).Node.QueuedSends(g1) != 0 {
		t.Error("queue nonzero with flow control off")
	}
	for i := 0; i < 100; i++ {
		_ = c.Multicast(1, g1, "x")
	}
	if c.Host(1).Node.QueuedSends(g1) != 0 {
		t.Error("flow control engaged despite MaxUnstable=0")
	}
}
