package core_test

import (
	"fmt"
	"testing"

	"ftmp/internal/baseline/sequencer"
	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// leaderCluster builds an n-member cluster running OrderLeader.
func leaderCluster(t *testing.T, seed int64, n int, netCfg simnet.Config) (*harness.Cluster, ids.Membership) {
	t.Helper()
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := harness.NewCluster(harness.Options{
		Seed: seed,
		Net:  netCfg,
		Configure: func(_ ids.ProcessorID, cfg *core.Config) {
			cfg.Order = core.OrderLeader
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	return c, m
}

func TestLeaderModeTotalOrder(t *testing.T) {
	c, m := leaderCluster(t, 21, 3, simnet.NewConfig())
	for i := 0; i < 5; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				if err := c.Multicast(p, g1, fmt.Sprintf("m%d-%v", i, p)); err != nil {
					t.Errorf("Multicast: %v", err)
				}
			})
		}
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 15)) {
		t.Fatal("not all messages delivered within 1s")
	}
	want := c.Host(1).DeliveredPayloads(g1)
	if len(want) != 15 {
		t.Fatalf("delivered %d messages, want 15", len(want))
	}
	for _, p := range c.Procs()[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		if len(got) != len(want) {
			t.Fatalf("%v delivered %d, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order differs at %d: %q vs %q", p, i, got[i], want[i])
			}
		}
	}
	assertDenseOrderSeqs(t, c, m, 15)
}

// assertDenseOrderSeqs checks the leader-mode delivery invariant: every
// member observes OrderSeq exactly 1..n — dense, gapless, duplicate-free
// — even across failovers (the new leader resumes from the drained
// prefix).
func assertDenseOrderSeqs(t *testing.T, c *harness.Cluster, m ids.Membership, n int) {
	t.Helper()
	for _, p := range m {
		var seqs []uint64
		for _, d := range c.Host(p).Deliveries {
			if d.Group == g1 {
				seqs = append(seqs, d.OrderSeq)
			}
		}
		if len(seqs) != n {
			t.Fatalf("%v: %d sequenced deliveries, want %d", p, len(seqs), n)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("%v: OrderSeq[%d] = %d, want %d (gap or duplicate)", p, i, s, i+1)
			}
		}
	}
}

func TestLeaderModeTotalOrderUnderLoss(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.10
	c, m := leaderCluster(t, 22, 4, cfg)
	const burst = 25
	for i := 0; i < burst; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*2*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v#%d", p, i))
			})
		}
	}
	total := burst * 4
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, m, total)) {
		for _, p := range c.Procs() {
			t.Logf("%v delivered %d/%d", p, len(c.Host(p).DeliveredPayloads(g1)), total)
		}
		t.Fatal("leader-mode reliable delivery under 10% loss failed")
	}
	want := c.Host(1).DeliveredPayloads(g1)
	for _, p := range c.Procs()[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order differs at %d under loss", p, i)
			}
		}
	}
	assertDenseOrderSeqs(t, c, m, total)
}

// TestOrderModeEquivalence runs one causally-spaced trace — each message
// multicast only after the previous one has settled everywhere, so every
// correct total order must equal the send order — through all three
// ordering implementations: FTMP Lamport mode, FTMP leader mode and the
// fixed-sequencer baseline. All members of all three systems must
// deliver the byte-identical payload order.
func TestOrderModeEquivalence(t *testing.T) {
	const n, msgs = 3, 24
	trace := make([]string, msgs)
	for i := range trace {
		trace[i] = fmt.Sprintf("msg-%03d-from-%d", i, i%n+1)
	}

	runFTMP := func(mode core.OrderMode) []string {
		procs := []ids.ProcessorID{1, 2, 3}
		c := harness.NewCluster(harness.Options{
			Seed: 33,
			Net:  simnet.NewConfig(),
			Configure: func(_ ids.ProcessorID, cfg *core.Config) {
				cfg.Order = mode
			},
		}, procs...)
		m := ids.NewMembership(procs...)
		c.CreateGroup(g1, m)
		c.RunFor(50 * simnet.Millisecond)
		for i, payload := range trace {
			i, payload := i, payload
			sender := procs[i%n]
			// 10ms spacing: far beyond worst-case settle time on the
			// loss-free simnet LAN, so sends are never concurrent.
			c.Net.At(c.Net.Now()+simnet.Time(i)*10*simnet.Millisecond, func() {
				_ = c.Multicast(sender, g1, payload)
			})
		}
		if !c.RunUntil(30*simnet.Second, c.AllDelivered(g1, m, msgs)) {
			t.Fatalf("order mode %v: trace not fully delivered", mode)
		}
		got := c.Host(1).DeliveredPayloads(g1)
		for _, p := range procs[1:] {
			other := c.Host(p).DeliveredPayloads(g1)
			for i := range got {
				if other[i] != got[i] {
					t.Fatalf("order mode %v: members disagree at %d", mode, i)
				}
			}
		}
		return got
	}

	runSequencer := func() []string {
		net := simnet.New(33, simnet.NewConfig())
		members := ids.NewMembership(1, 2, 3)
		const addr = simnet.Addr(900)
		nodes := make(map[ids.ProcessorID]*sequencer.Node)
		delivered := make(map[ids.ProcessorID][]string)
		for _, p := range members {
			p := p
			node := sequencer.New(p, members, sequencer.DefaultConfig(),
				func(data []byte) { net.Send(simnet.NodeID(p), addr, data) },
				func(_ ids.ProcessorID, b []byte, _ int64) {
					delivered[p] = append(delivered[p], string(b))
				})
			nodes[p] = node
			net.AddNode(simnet.NodeID(p), simnet.EndpointFunc{
				OnPacket: func(data []byte, _ simnet.Addr, now int64) { node.HandlePacket(data, now) },
				OnTick:   func(now int64) { node.Tick(now) },
			}, simnet.Millisecond)
			net.Subscribe(simnet.NodeID(p), addr)
		}
		net.Run(50 * simnet.Millisecond)
		for i, payload := range trace {
			i, payload := i, payload
			sender := nodes[members[i%n]]
			net.At(net.Now()+simnet.Time(i)*10*simnet.Millisecond, func() {
				_ = sender.Multicast(int64(net.Now()), []byte(payload))
			})
		}
		net.RunUntil(30*simnet.Second, func() bool {
			for _, p := range members {
				if len(delivered[p]) < msgs {
					return false
				}
			}
			return true
		})
		got := delivered[1]
		if len(got) < msgs {
			t.Fatal("sequencer baseline: trace not fully delivered")
		}
		for _, p := range members[1:] {
			for i := range got {
				if delivered[p][i] != got[i] {
					t.Fatalf("sequencer baseline: members disagree at %d", i)
				}
			}
		}
		return got
	}

	lamport := runFTMP(core.OrderLamport)
	leader := runFTMP(core.OrderLeader)
	seq := runSequencer()
	for i := 0; i < msgs; i++ {
		if lamport[i] != trace[i] {
			t.Fatalf("lamport[%d] = %q, want %q", i, lamport[i], trace[i])
		}
		if leader[i] != trace[i] {
			t.Fatalf("leader[%d] = %q, want %q", i, leader[i], trace[i])
		}
		if seq[i] != trace[i] {
			t.Fatalf("sequencer[%d] = %q, want %q", i, seq[i], trace[i])
		}
	}
}

// TestLeaderCrashFailover kills the leader mid-stream. The survivors
// must converge on one gapless, duplicate-free sequence: everything
// delivered before the crash keeps its order, the new leader
// re-sequences the undelivered suffix, and traffic sent after the
// failover still delivers. Run under -race in CI.
func TestLeaderCrashFailover(t *testing.T) {
	c, _ := leaderCluster(t, 44, 3, simnet.NewConfig())
	c.RunFor(20 * simnet.Millisecond)

	// Pre-crash stream from all members, including the leader.
	for i := 0; i < 10; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("pre-%v-%d", p, i))
			})
		}
	}
	c.RunFor(12 * simnet.Millisecond)
	c.Crash(1) // the leader (lowest id)

	survivors := ids.NewMembership(2, 3)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range survivors {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(survivors) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("survivors did not install the post-crash view")
	}

	// Post-failover traffic under the new leader (2).
	for i := 0; i < 10; i++ {
		for _, p := range survivors {
			p, i := p, i
			c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("post-%v-%d", p, i))
			})
		}
	}
	ok = c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range survivors {
			got := c.Host(p).DeliveredPayloads(g1)
			post := 0
			for _, s := range got {
				if len(s) >= 4 && s[:4] == "post" {
					post++
				}
			}
			if post < 20 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("post-failover traffic did not deliver")
	}

	// Survivors agree on the whole sequence, exactly once each.
	a := c.Host(2).DeliveredPayloads(g1)
	b := c.Host(3).DeliveredPayloads(g1)
	if len(a) != len(b) {
		t.Fatalf("survivors delivered %d vs %d messages", len(a), len(b))
	}
	seen := make(map[string]bool, len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("survivors disagree at %d: %q vs %q", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate delivery of %q", a[i])
		}
		seen[a[i]] = true
	}
	assertDenseOrderSeqs(t, c, survivors, len(a))

	// Everything the survivors sent delivered (nothing lost across the
	// failover); the dead leader's in-flight tail may legitimately be cut.
	for _, p := range survivors {
		for i := 0; i < 10; i++ {
			if !seen[fmt.Sprintf("pre-%v-%d", p, i)] {
				t.Errorf("survivor message pre-%v-%d lost across failover", p, i)
			}
			if !seen[fmt.Sprintf("post-%v-%d", p, i)] {
				t.Errorf("post-failover message post-%v-%d lost", p, i)
			}
		}
	}
}

// TestLeaderGracefulLeaderChange removes the leader gracefully: the
// ordered RemoveProcessor changes the leader, the new leader
// re-sequences, and the stream continues without loss or duplication.
func TestLeaderGracefulLeaderChange(t *testing.T) {
	c, m := leaderCluster(t, 55, 3, simnet.NewConfig())
	c.RunFor(20 * simnet.Millisecond)
	for i := 0; i < 6; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("pre-%v-%d", p, i))
			})
		}
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 18)) {
		t.Fatal("pre-change traffic did not deliver")
	}
	if err := c.Host(1).Node.Leave(int64(c.Net.Now()), g1); err != nil {
		t.Fatal(err)
	}
	rest := ids.NewMembership(2, 3)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range rest {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("graceful removal did not install")
	}
	for i := 0; i < 6; i++ {
		for _, p := range rest {
			p, i := p, i
			c.Net.At(c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("post-%v-%d", p, i))
			})
		}
	}
	ok = c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range rest {
			if len(c.Host(p).DeliveredPayloads(g1)) < 30 {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, p := range rest {
			t.Logf("%v delivered %d", p, len(c.Host(p).DeliveredPayloads(g1)))
		}
		t.Fatal("post-change traffic did not deliver")
	}
	a := c.Host(2).DeliveredPayloads(g1)
	b := c.Host(3).DeliveredPayloads(g1)
	if len(a) != len(b) {
		t.Fatalf("members delivered %d vs %d", len(a), len(b))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("members disagree at %d: %q vs %q", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate delivery of %q", a[i])
		}
		seen[a[i]] = true
	}
}
