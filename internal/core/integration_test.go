package core_test

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

const g1 = ids.GroupID(100)

func lanCluster(t *testing.T, seed int64, n int) (*harness.Cluster, ids.Membership) {
	t.Helper()
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := harness.NewCluster(harness.Options{Seed: seed, Net: simnet.NewConfig()}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	return c, m
}

func TestThreeNodeTotalOrder(t *testing.T) {
	c, m := lanCluster(t, 1, 3)
	// Everyone sends a burst, interleaved in virtual time.
	for i := 0; i < 5; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				if err := c.Multicast(p, g1, fmt.Sprintf("m%d-%v", i, p)); err != nil {
					t.Errorf("Multicast: %v", err)
				}
			})
		}
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 15)) {
		t.Fatal("not all messages delivered within 1s")
	}
	want := c.Host(1).DeliveredPayloads(g1)
	if len(want) != 15 {
		t.Fatalf("delivered %d messages, want 15", len(want))
	}
	for _, p := range c.Procs()[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		if len(got) != len(want) {
			t.Fatalf("%v delivered %d, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order differs at %d: %q vs %q", p, i, got[i], want[i])
			}
		}
	}
}

func TestSelfDeliveryIncluded(t *testing.T) {
	c, m := lanCluster(t, 2, 2)
	if err := c.Multicast(1, g1, "hello"); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("delivery timeout")
	}
	if got := c.Host(1).DeliveredPayloads(g1); len(got) != 1 || got[0] != "hello" {
		t.Errorf("sender self-delivery = %v", got)
	}
}

func TestTotalOrderUnderLoss(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.10
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := harness.NewCluster(harness.Options{Seed: 7, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	const burst = 25
	for i := 0; i < burst; i++ {
		for _, p := range procs {
			p, i := p, i
			c.Net.At(simnet.Time(i)*2*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v#%d", p, i))
			})
		}
	}
	total := burst * len(procs)
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, m, total)) {
		for _, p := range procs {
			t.Logf("%v delivered %d/%d", p, len(c.Host(p).DeliveredPayloads(g1)), total)
		}
		t.Fatal("reliable delivery under 10% loss failed")
	}
	want := c.Host(1).DeliveredPayloads(g1)
	for _, p := range procs[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order differs at %d under loss", p, i)
			}
		}
	}
	// Loss must have actually forced repairs.
	if c.Host(1).Node.Stats().RMP.NacksSent == 0 && c.Host(2).Node.Stats().RMP.NacksSent == 0 {
		t.Log("warning: no NACKs under 10% loss (suspicious but not fatal)")
	}
}

func TestHeartbeatsBoundLatencyWhenIdle(t *testing.T) {
	c, m := lanCluster(t, 3, 3)
	c.RunFor(50 * simnet.Millisecond) // settle
	var deliveredAt int64
	c.Host(2).OnDeliver = func(d core.Delivery, now int64) { deliveredAt = now }
	sentAt := int64(c.Net.Now())
	// Only node 1 sends; 2 and 3 are idle, so delivery depends entirely
	// on their heartbeats advancing the horizon.
	if err := c.Multicast(1, g1, "solo"); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("idle-group delivery timeout")
	}
	lat := deliveredAt - sentAt
	// Default heartbeat interval is 5ms; latency should be within a few
	// intervals (heartbeat wait + propagation), far below 100ms.
	if lat <= 0 || lat > int64(50*simnet.Millisecond) {
		t.Errorf("idle delivery latency = %dns, want < 50ms", lat)
	}
}

func TestCrashConvictionAndRecovery(t *testing.T) {
	c, _ := lanCluster(t, 4, 4)
	c.RunFor(20 * simnet.Millisecond)
	// Traffic before the crash.
	_ = c.Multicast(1, g1, "before")
	c.RunFor(20 * simnet.Millisecond)
	c.Crash(4)
	crashAt := c.Net.Now()

	survivors := ids.NewMembership(1, 2, 3)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range survivors {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(survivors) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("survivors never installed the 3-member view")
	}
	recoveryTime := c.Net.Now() - crashAt
	t.Logf("crash -> new view in %v ms", int64(recoveryTime)/1_000_000)

	// Fault reports were raised.
	found := false
	for _, f := range c.Host(1).Faults {
		if f.Convicted.Contains(4) {
			found = true
		}
	}
	if !found {
		t.Error("no fault report for crashed processor")
	}
	// The view records the departure.
	v, _ := c.Host(1).LastView(g1)
	if v.Reason != core.ViewFault || !v.Left.Contains(4) {
		t.Errorf("view = %+v", v)
	}

	// Ordering continues in the new membership.
	_ = c.Multicast(2, g1, "after")
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, survivors, 2)) {
		t.Fatal("ordering did not resume after recovery")
	}
	for _, p := range survivors {
		got := c.Host(p).DeliveredPayloads(g1)
		if got[len(got)-1] != "after" {
			t.Errorf("%v missing post-recovery delivery: %v", p, got)
		}
	}
}

func TestOrderingStopsWhileFaultySuspected(t *testing.T) {
	// Paper section 7: "If one or more processors are faulty, the
	// ordering of messages stops until those processors are removed."
	c, _ := lanCluster(t, 5, 3)
	c.RunFor(20 * simnet.Millisecond)
	c.Crash(3)
	c.RunFor(5 * simnet.Millisecond)
	_ = c.Multicast(1, g1, "stalled")
	// Well before the suspect timeout (50ms), nothing can be delivered.
	c.RunFor(20 * simnet.Millisecond)
	if n := len(c.Host(2).DeliveredPayloads(g1)); n != 0 {
		t.Fatalf("delivered %d messages while faulty member undetected", n)
	}
	// After recovery it flows.
	survivors := ids.NewMembership(1, 2)
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, survivors, 1)) {
		t.Fatal("message never delivered after recovery")
	}
}

func TestVirtualSynchronyUnderCrashDuringBurst(t *testing.T) {
	// Crash a sender mid-burst: all survivors must deliver exactly the
	// same set of its messages, in the same order.
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := simnet.NewConfig()
			cfg.LossRate = 0.05
			procs := []ids.ProcessorID{1, 2, 3, 4}
			c := harness.NewCluster(harness.Options{Seed: seed, Net: cfg}, procs...)
			m := ids.NewMembership(procs...)
			c.CreateGroup(g1, m)
			// Node 4 streams; it dies mid-burst.
			for i := 0; i < 30; i++ {
				i := i
				c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
					_ = c.Multicast(4, g1, fmt.Sprintf("v%d", i))
				})
			}
			c.Net.At(15*simnet.Millisecond+simnet.Time(seed)*simnet.Millisecond/2, func() { c.Crash(4) })
			survivors := ids.NewMembership(1, 2, 3)
			ok := c.RunUntil(10*simnet.Second, func() bool {
				for _, p := range survivors {
					v, found := c.Host(p).LastView(g1)
					if !found || !v.Members.Equal(survivors) {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatal("no recovery")
			}
			// Let the pipeline drain fully.
			c.RunFor(simnet.Second)
			a := c.Host(1).DeliveredPayloads(g1)
			for _, p := range []ids.ProcessorID{2, 3} {
				b := c.Host(p).DeliveredPayloads(g1)
				if len(a) != len(b) {
					t.Fatalf("virtual synchrony violated: %v delivered %d, P1 delivered %d", p, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("order differs at %d: %q vs %q", i, a[i], b[i])
					}
				}
			}
		})
	}
}

func TestAddProcessor(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := harness.NewCluster(harness.Options{Seed: 9, Net: simnet.NewConfig()}, procs...)
	initial := ids.NewMembership(1, 2, 3)
	c.CreateGroup(g1, initial)
	c.RunFor(20 * simnet.Millisecond)
	_ = c.Multicast(1, g1, "pre-join")
	c.RunFor(20 * simnet.Millisecond)

	now := int64(c.Net.Now())
	c.Host(4).Node.ListenGroup(g1) // infrastructure pre-subscribes the joiner
	if err := c.Host(2).Node.RequestAddProcessor(now, g1, 4); err != nil {
		t.Fatal(err)
	}
	full := ids.NewMembership(1, 2, 3, 4)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range full {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(full) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("4-member view never installed everywhere")
	}
	// New member participates in ordering from here on.
	_ = c.Multicast(4, g1, "from-new")
	_ = c.Multicast(1, g1, "from-old")
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, full, 2)) {
		// Member 4 never saw "pre-join", so it needs 2 deliveries while
		// the others need 3.
	}
	if !c.RunUntil(5*simnet.Second, func() bool {
		return len(c.Host(4).DeliveredPayloads(g1)) >= 2 &&
			len(c.Host(1).DeliveredPayloads(g1)) >= 3
	}) {
		t.Fatalf("post-join messages not delivered: P4=%v P1=%v",
			c.Host(4).DeliveredPayloads(g1), c.Host(1).DeliveredPayloads(g1))
	}
	// The new member must not have delivered the pre-join message.
	for _, s := range c.Host(4).DeliveredPayloads(g1) {
		if s == "pre-join" {
			t.Error("new member delivered a message from before its cut")
		}
	}
	// Old members' suffixes agree with the new member's sequence.
	oldTail := c.Host(1).DeliveredPayloads(g1)
	newSeq := c.Host(4).DeliveredPayloads(g1)
	if len(oldTail) < len(newSeq) {
		t.Fatal("old member behind new member")
	}
	tail := oldTail[len(oldTail)-len(newSeq):]
	for i := range newSeq {
		if tail[i] != newSeq[i] {
			t.Errorf("suffix order differs at %d: %q vs %q", i, tail[i], newSeq[i])
		}
	}
}

func TestRemoveProcessor(t *testing.T) {
	c, _ := lanCluster(t, 11, 3)
	c.RunFor(20 * simnet.Millisecond)
	now := int64(c.Net.Now())
	if err := c.Host(1).Node.RequestRemoveProcessor(now, g1, 3); err != nil {
		t.Fatal(err)
	}
	rest := ids.NewMembership(1, 2)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		for _, p := range rest {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("2-member view never installed")
	}
	v, _ := c.Host(1).LastView(g1)
	if v.Reason != core.ViewRemove || !v.Left.Contains(3) {
		t.Errorf("view = %+v", v)
	}
	// The removed processor saw its own removal and left.
	ok = c.RunUntil(simnet.Second, func() bool {
		v, found := c.Host(3).LastView(g1)
		return found && !v.Members.Contains(3)
	})
	if !ok {
		t.Error("removed processor never observed its removal")
	}
	// Ordering continues among the remaining members.
	_ = c.Multicast(1, g1, "post-remove")
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, rest, 1)) {
		t.Fatal("ordering did not continue after planned removal")
	}
	// And the removed member can no longer multicast.
	if err := c.Host(3).Node.Multicast(int64(c.Net.Now()), g1, ids.ConnectionID{}, 0, []byte("ghost")); err == nil {
		t.Error("removed member's Multicast succeeded")
	}
}

func TestPlannedChangeDoesNotDisturbOrdering(t *testing.T) {
	// Paper section 7.1: ordering "continues unaffected by the adding
	// and removing of processors, provided that no processor is faulty".
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := harness.NewCluster(harness.Options{Seed: 13, Net: simnet.NewConfig()}, procs...)
	initial := ids.NewMembership(1, 2, 3)
	c.CreateGroup(g1, initial)
	// Stream while the membership changes under it.
	for i := 0; i < 40; i++ {
		i := i
		src := ids.ProcessorID(i%3 + 1)
		c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
			_ = c.Multicast(src, g1, fmt.Sprintf("s%02d", i))
		})
	}
	c.Net.At(10*simnet.Millisecond, func() {
		_ = c.Host(1).Node.RequestAddProcessor(int64(c.Net.Now()), g1, 4)
	})
	c.Net.At(25*simnet.Millisecond, func() {
		_ = c.Host(2).Node.RequestRemoveProcessor(int64(c.Net.Now()), g1, 3)
	})
	if !c.RunUntil(10*simnet.Second, func() bool {
		return len(c.Host(1).DeliveredPayloads(g1)) >= 40 &&
			len(c.Host(2).DeliveredPayloads(g1)) >= 40
	}) {
		t.Fatalf("stream stalled: P1=%d P2=%d", len(c.Host(1).DeliveredPayloads(g1)), len(c.Host(2).DeliveredPayloads(g1)))
	}
	a, b := c.Host(1).DeliveredPayloads(g1), c.Host(2).DeliveredPayloads(g1)
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			t.Fatalf("order differs at %d during planned changes", i)
		}
	}
}

func TestNodeStatsAggregate(t *testing.T) {
	c, m := lanCluster(t, 17, 2)
	_ = c.Multicast(1, g1, "x")
	c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1))
	st := c.Host(1).Node.Stats()
	if st.MessagesSent == 0 || st.ROMP.Delivered == 0 {
		t.Errorf("Stats = %+v", st)
	}
	if st2 := c.Host(2).Node.Stats(); st2.PacketsIn == 0 {
		t.Errorf("receiver PacketsIn = 0")
	}
}

func TestMulticastErrors(t *testing.T) {
	c, _ := lanCluster(t, 19, 2)
	n := c.Host(1).Node
	if err := n.Multicast(0, ids.GroupID(999), ids.ConnectionID{}, 0, nil); err != core.ErrUnknownGroup {
		t.Errorf("unknown group error = %v", err)
	}
	if err := n.RequestAddProcessor(0, ids.GroupID(999), 5); err != core.ErrUnknownGroup {
		t.Errorf("add unknown group error = %v", err)
	}
	if err := n.RequestRemoveProcessor(0, ids.GroupID(999), 5); err != core.ErrUnknownGroup {
		t.Errorf("remove unknown group error = %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []string {
		c, m := lanCluster(t, 23, 3)
		for i := 0; i < 10; i++ {
			i := i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(ids.ProcessorID(i%3+1), g1, fmt.Sprintf("d%d", i))
			})
		}
		c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 10))
		return c.Host(1).DeliveredPayloads(g1)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSixteenNodeGroup(t *testing.T) {
	// The paper targets small processor groups, but nothing in the
	// protocol bounds membership; a 16-member group must still agree.
	const n = 16
	c, m := lanCluster(t, 401, n)
	for i := 0; i < 3; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i*2)*simnet.Millisecond+simnet.Time(p)*100*simnet.Microsecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v:%d", p, i))
			})
		}
	}
	total := 3 * n
	if !c.RunUntil(30*simnet.Second, c.AllDelivered(g1, m, total)) {
		t.Fatalf("16-node delivery incomplete: P1=%d", len(c.Host(1).DeliveredPayloads(g1)))
	}
	base := c.Host(1).DeliveredPayloads(g1)
	for _, p := range c.Procs()[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%v diverged at %d", p, i)
			}
		}
	}
	// And recovery still works at this scale.
	c.Crash(16)
	survivors := m.Remove(16)
	ok := c.RunUntil(30*simnet.Second, func() bool {
		v, found := c.Host(1).LastView(g1)
		return found && v.Members.Equal(survivors)
	})
	if !ok {
		t.Fatal("16-node recovery failed")
	}
}
