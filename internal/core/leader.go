package core

import (
	"ftmp/internal/ids"
	"ftmp/internal/romp"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Leader ordering mode (Config.Order == OrderLeader, FTMP 1.3). The
// current view's leader — the lowest member identifier, a rule every
// member evaluates locally — assigns each totally-ordered message a
// dense delivery sequence as it arrives, and publishes the assignments
// as runs: piggybacked on its own data frames (SeqData) or standalone
// (SeqAssign) when it has no data of its own to send. Runs ride RMP in
// the leader's source order, so the assignment space followers accept
// is gap-free; followers deliver in sequence order the moment both the
// run and the data are present, one leader hop after the send instead
// of a full acknowledgment horizon round.
//
// The Lamport heard/ack machinery keeps running underneath — unchanged
// — for stability cuts, retransmit buffer reclamation and WAL
// compaction, so leader mode changes delivery latency, not safety.
//
// Fencing and failover. Runs carry a sequencing epoch. The epoch bumps
// exactly when an installed view changes the leader: survivors first
// drain every sequence deliverable under the old epoch (virtual
// synchrony equalized their message sets, so they drain to the same
// point), discard undelivered assignments, and the new leader
// re-sequences the surviving unassigned backlog in timestamp order —
// identical at every survivor — and publishes it under the new epoch.
// A deposed leader's stale runs are discarded (older epoch, or sent
// from outside the installed membership); runs from an epoch this
// member has not reached yet are buffered until its own install
// catches up. Installs that keep the leader (a follower joined or
// left) bump nothing: the leader's in-flight runs stay valid and
// delivery never stalls.

// leaderOf returns the current view's leader under OrderLeader: the
// lowest member identifier (memberships are sorted ascending). Nil when
// leader mode is off or the membership is empty.
func (n *Node) leaderOf(gs *groupState) ids.ProcessorID {
	if n.cfg.Order != OrderLeader {
		return ids.NilProcessor
	}
	m := gs.mem.Members()
	if len(m) == 0 {
		return ids.NilProcessor
	}
	return m[0]
}

// seqLeading reports whether this node is currently the active
// sequencer for gs.
func (n *Node) seqLeading(gs *groupState) bool {
	return n.cfg.Order == OrderLeader && gs.joined && !gs.mem.Wedged() &&
		n.leaderOf(gs) == n.cfg.Self
}

// leaderAssign hands ref the next delivery sequence and queues the
// assignment for publication in the next run.
func (n *Node) leaderAssign(gs *groupState, ref wire.SeqRef) {
	s := gs.order.AssignNext(ref)
	if len(gs.pendingRun) == 0 {
		gs.pendingFirst = s
	}
	gs.pendingRun = append(gs.pendingRun, ref)
	trace.Inc("core.leader_seq_assigned")
}

// takeRun removes and returns the pending run for publication.
func (gs *groupState) takeRun() (first uint64, refs []wire.SeqRef) {
	first = gs.pendingFirst
	refs = append([]wire.SeqRef(nil), gs.pendingRun...)
	gs.pendingRun = gs.pendingRun[:0]
	return first, refs
}

// flushRun publishes pending assignments as a standalone SeqAssign.
// Called at the end of every pump, so assignments made while applying a
// batch of follower messages go out in the same wakeup.
func (n *Node) flushRun(now int64, gs *groupState) {
	if len(gs.pendingRun) == 0 || !n.seqLeading(gs) {
		return
	}
	first, refs := gs.takeRun()
	body := &wire.SeqAssign{Epoch: gs.order.SeqEpoch(), First: first, Refs: refs}
	if _, _, err := n.sendReliable(now, gs, body); err != nil {
		// Encoding errors are deterministic (oversize run); requeue
		// nothing — the assignments stand locally and the next
		// re-sequencing boundary would reissue them — but surface it.
		trace.Inc("core.seq_run_send_errors")
	}
}

// sendLeaderData is the leader's data path: its own Regular payload and
// the pending run travel in one SeqData frame, so in steady state the
// sequencing adds zero extra datagrams. The frame's own assignment is
// part of the run it carries.
func (n *Node) sendLeaderData(now int64, gs *groupState, body *wire.Regular) error {
	// Buffered pack entries hold earlier sequence numbers; flush first so
	// the self-ref below names the sequence sendReliable will allocate.
	n.flushPack(now, gs)
	selfRef := wire.SeqRef{Source: n.cfg.Self, Seq: gs.nextSeq + 1}
	first := gs.pendingFirst
	if len(gs.pendingRun) == 0 {
		first = gs.order.PeekAssign()
	}
	refs := append(append([]wire.SeqRef(nil), gs.pendingRun...), selfRef)
	sd := &wire.SeqData{
		Conn: body.Conn, RequestNum: body.RequestNum, Payload: body.Payload,
		Epoch: gs.order.SeqEpoch(), First: first, Refs: refs,
	}
	if _, _, err := n.sendReliable(now, gs, sd); err != nil {
		return err
	}
	gs.order.AssignNext(selfRef)
	gs.pendingRun = gs.pendingRun[:0]
	trace.Inc("core.leader_seq_assigned")
	return nil
}

// applyRun records a received sequencing run. Current-epoch runs must
// come from the current leader (fencing: a deposed-but-still-member
// leader's stragglers are dropped); newer-epoch runs are buffered by
// the ordering layer until this member's own install catches up.
func (n *Node) applyRun(gs *groupState, from ids.ProcessorID, epoch, first uint64, refs []wire.SeqRef) {
	if n.cfg.Order != OrderLeader {
		return
	}
	if epoch == gs.order.SeqEpoch() && from != n.leaderOf(gs) {
		trace.Inc("core.seq_runs_fenced")
		return
	}
	gs.order.ApplyRun(epoch, first, refs, gs.seqSkip())
}

// seqSkip returns the joiner's hole predicate: refs at or below the
// admission cut can never be satisfied here (state transfer covers
// them), so runs naming them create delivery holes instead of stalls.
func (gs *groupState) seqSkip() func(wire.SeqRef) bool {
	if len(gs.seqBaseline) == 0 {
		return nil
	}
	return func(r wire.SeqRef) bool { return r.Seq <= gs.seqBaseline[r.Source] }
}

// seqAfterInstall runs after every view install (graceful add/remove
// and fault recovery). If the install kept the leader, nothing changes:
// in-flight runs stay valid. If it changed the leader, the sequencing
// epoch bumps — the caller drained the old epoch's deliverable prefix
// already — and the new leader re-sequences the surviving unassigned
// backlog in timestamp order, which every survivor computes
// identically, then publishes it under the new epoch.
func (n *Node) seqAfterInstall(now int64, gs *groupState) {
	if n.cfg.Order != OrderLeader {
		return
	}
	newLeader := n.leaderOf(gs)
	if newLeader == gs.lastLeader {
		return
	}
	gs.lastLeader = newLeader
	gs.order.SeqInstall(gs.order.SeqEpoch()+1, gs.seqSkip())
	gs.pendingRun = gs.pendingRun[:0]
	gs.failoverStart = now
	if newLeader == n.cfg.Self && gs.joined && !gs.mem.Wedged() {
		for _, e := range gs.order.SeqPendingUnassigned() {
			n.leaderAssign(gs, wire.SeqRef{Source: e.Source, Seq: e.Seq})
		}
		n.flushRun(now, gs)
	}
}

// seqNoteDelivered clears the failover timer at the first delivery
// sequenced under the current epoch, reporting how long the ordering
// pipeline was stalled by the leader change.
func (n *Node) seqNoteDelivered(now int64, gs *groupState, e romp.Entry) {
	if gs.failoverStart == 0 || e.AssignEpoch != gs.order.SeqEpoch() {
		return
	}
	ms := (now - gs.failoverStart) / 1_000_000
	if ms < 0 {
		ms = 0
	}
	trace.Count("core.failover_reseq_ms", uint64(ms))
	gs.failoverStart = 0
}

// seqTick drives the follower's targeted gap NACK: when delivery has
// stalled on the same assigned-but-missing message for a full tick
// (long enough to rule out normal in-flight reordering), one immediate
// RetransmitRequest goes out; RMP's backoff-paced NACK machinery owns
// the retries.
func (n *Node) seqTick(gs *groupState) {
	if n.cfg.Order != OrderLeader || !gs.joined {
		return
	}
	ref, ok := gs.order.SeqBlockedOn()
	if !ok {
		gs.gapRef = wire.SeqRef{}
		gs.gapNacked = false
		return
	}
	if ref != gs.gapRef {
		gs.gapRef = ref
		gs.gapNacked = false
		return
	}
	if gs.gapNacked {
		return
	}
	start := gs.rmp.Contiguous(ref.Source) + 1
	if start > ref.Seq {
		return
	}
	n.sendNack(gs, wire.RetransmitRequest{Proc: ref.Source, StartSeq: start, StopSeq: ref.Seq})
	gs.gapNacked = true
	trace.Inc("core.follower_gap_nacks")
}
