package core_test

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// packedCluster builds a cluster with message packing enabled on every
// node (it is off by default).
func packedCluster(t *testing.T, seed int64, n int, net simnet.Config) (*harness.Cluster, ids.Membership) {
	t.Helper()
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := harness.NewCluster(harness.Options{
		Seed: seed,
		Net:  net,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.Pack = core.DefaultPackConfig()
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	return c, m
}

func assertSameOrder(t *testing.T, c *harness.Cluster, procs []ids.ProcessorID) {
	t.Helper()
	want := c.Host(procs[0]).DeliveredPayloads(g1)
	for _, p := range procs[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		if len(got) != len(want) {
			t.Fatalf("%v delivered %d, %v delivered %d", p, len(got), procs[0], len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order differs at %d: %q vs %q", p, i, got[i], want[i])
			}
		}
	}
}

func TestPackedTotalOrder(t *testing.T) {
	// Bursts of small messages from every node: packing must preserve
	// total order and actually coalesce messages into containers.
	c, m := packedCluster(t, 31, 3, simnet.NewConfig())
	const burst = 20
	for i := 0; i < burst; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*100*simnet.Microsecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("p%d-%v", i, p))
			})
		}
	}
	total := burst * 3
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, total)) {
		t.Fatalf("packed delivery incomplete: P1=%d/%d", len(c.Host(1).DeliveredPayloads(g1)), total)
	}
	assertSameOrder(t, c, c.Procs())
	st := c.Host(1).Node.Stats()
	if st.PacksSent == 0 || st.PackedMsgs == 0 {
		t.Fatalf("packing never engaged: %+v", st)
	}
	// Coalescing must be real: fewer containers than packed messages.
	if st.PacksSent >= st.PackedMsgs {
		t.Errorf("no coalescing: %d packs for %d messages", st.PacksSent, st.PackedMsgs)
	}
}

func TestPackedLatencyBoundedByMaxDelay(t *testing.T) {
	// A lone small message must not sit in the pack buffer: the tick
	// flushes it after MaxDelay, so end-to-end latency stays bounded.
	c, m := packedCluster(t, 33, 3, simnet.NewConfig())
	c.RunFor(50 * simnet.Millisecond) // settle
	var deliveredAt int64
	c.Host(2).OnDeliver = func(d core.Delivery, now int64) { deliveredAt = now }
	sentAt := int64(c.Net.Now())
	if err := c.Multicast(1, g1, "lone"); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntil(simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("lone packed message never delivered")
	}
	lat := deliveredAt - sentAt
	// MaxDelay (1ms) + tick cadence (1ms) + heartbeat horizon advance
	// (5ms interval) + propagation: well under 50ms.
	if lat <= 0 || lat > int64(50*simnet.Millisecond) {
		t.Errorf("packed lone-message latency = %dns, want < 50ms", lat)
	}
}

func TestPackedUnderLoss(t *testing.T) {
	// Lost containers are repaired per entry through the normal NACK
	// path (the source re-encodes each entry as a standalone Regular).
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.10
	c, m := packedCluster(t, 37, 4, cfg)
	const burst = 25
	for i := 0; i < burst; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*2*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v#%d", p, i))
			})
		}
	}
	total := burst * 4
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, m, total)) {
		for _, p := range c.Procs() {
			t.Logf("%v delivered %d/%d", p, len(c.Host(p).DeliveredPayloads(g1)), total)
		}
		t.Fatal("packed delivery under 10% loss failed")
	}
	assertSameOrder(t, c, c.Procs())
	var repairs uint64
	for _, p := range c.Procs() {
		repairs += c.Host(p).Node.Stats().RMP.Retransmissions
	}
	if repairs == 0 {
		t.Log("warning: no retransmissions under 10% loss (suspicious but not fatal)")
	}
}

func TestPackedUnderDuplication(t *testing.T) {
	// Duplicated containers re-present every entry; RMP duplicate
	// detection must absorb them without double delivery.
	cfg := simnet.NewConfig()
	cfg.DupRate = 0.25
	c, m := packedCluster(t, 41, 3, cfg)
	const burst = 20
	for i := 0; i < burst; i++ {
		for _, p := range c.Procs() {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("dup%d-%v", i, p))
			})
		}
	}
	total := burst * 3
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, m, total)) {
		t.Fatal("delivery under duplication failed")
	}
	c.RunFor(200 * simnet.Millisecond) // absorb straggling duplicates
	for _, p := range c.Procs() {
		if got := len(c.Host(p).DeliveredPayloads(g1)); got != total {
			t.Fatalf("%v delivered %d, want exactly %d (duplicate leaked)", p, got, total)
		}
	}
	assertSameOrder(t, c, c.Procs())
}

func TestPackedVirtualSynchronyUnderCrash(t *testing.T) {
	// A packing sender crashes mid-burst, possibly with entries still
	// buffered and containers in flight: survivors must agree exactly on
	// which of its messages made it into the total order.
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := simnet.NewConfig()
			cfg.LossRate = 0.05
			c, _ := packedCluster(t, 300+seed, 4, cfg)
			for i := 0; i < 30; i++ {
				i := i
				c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
					_ = c.Multicast(4, g1, fmt.Sprintf("v%d", i))
				})
			}
			c.Net.At(15*simnet.Millisecond+simnet.Time(seed)*simnet.Millisecond/2, func() { c.Crash(4) })
			survivors := ids.NewMembership(1, 2, 3)
			ok := c.RunUntil(10*simnet.Second, func() bool {
				for _, p := range survivors {
					v, found := c.Host(p).LastView(g1)
					if !found || !v.Members.Equal(survivors) {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatal("no recovery from packing sender's crash")
			}
			c.RunFor(simnet.Second) // drain
			assertSameOrder(t, c, []ids.ProcessorID{1, 2, 3})
		})
	}
}

func TestPackedInteropWithUnpackedNodes(t *testing.T) {
	// Only node 1 packs; 2 and 3 run the plain 1.0 datapath. Mixed
	// traffic must still reach a single total order, and the unpacked
	// nodes' wire output stays pure 1.0 (PacksSent == 0).
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{
		Seed: 43,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			if p == 1 {
				cfg.Pack = core.DefaultPackConfig()
			}
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	const burst = 15
	for i := 0; i < burst; i++ {
		for _, p := range procs {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("mix%d-%v", i, p))
			})
		}
	}
	total := burst * 3
	if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, m, total)) {
		t.Fatal("mixed packed/unpacked delivery incomplete")
	}
	assertSameOrder(t, c, procs)
	if c.Host(1).Node.Stats().PacksSent == 0 {
		t.Error("packing node sent no containers")
	}
	for _, p := range procs[1:] {
		if st := c.Host(p).Node.Stats(); st.PacksSent != 0 {
			t.Errorf("non-packing node %v sent %d containers", p, st.PacksSent)
		}
	}
}

func TestPackingReducesDatagrams(t *testing.T) {
	// The point of the exercise: the same send pattern must cost
	// measurably fewer datagrams with packing on.
	run := func(pack bool) uint64 {
		procs := []ids.ProcessorID{1, 2, 3}
		c := harness.NewCluster(harness.Options{
			Seed: 47,
			Net:  simnet.NewConfig(),
			Configure: func(p ids.ProcessorID, cfg *core.Config) {
				if pack {
					cfg.Pack = core.DefaultPackConfig()
				}
			},
		}, procs...)
		m := ids.NewMembership(procs...)
		c.CreateGroup(g1, m)
		const burst = 50
		for i := 0; i < burst; i++ {
			for _, p := range procs {
				p, i := p, i
				// 10 sends per tick per node: plenty to coalesce.
				c.Net.At(simnet.Time(i)*100*simnet.Microsecond, func() {
					_ = c.Multicast(p, g1, fmt.Sprintf("b%d-%v", i, p))
				})
			}
		}
		if !c.RunUntil(5*simnet.Second, c.AllDelivered(g1, m, burst*3)) {
			t.Fatal("burst not delivered")
		}
		return c.Net.Stats().PacketsSent
	}
	packed, plain := run(true), run(false)
	if packed >= plain {
		t.Fatalf("packing sent %d datagrams, plain sent %d — no reduction", packed, plain)
	}
	t.Logf("datagrams: packed=%d plain=%d (%.1f%%)", packed, plain, 100*float64(packed)/float64(plain))
}

func TestHeartbeatSuppressionWhenIdle(t *testing.T) {
	// With HeartbeatIdleMax set, a long-idle group stretches its
	// heartbeat cadence; the packet rate drops accordingly.
	run := func(idleMax int64) uint64 {
		procs := []ids.ProcessorID{1, 2, 3}
		c := harness.NewCluster(harness.Options{
			Seed: 53,
			Net:  simnet.NewConfig(),
			Configure: func(p ids.ProcessorID, cfg *core.Config) {
				cfg.HeartbeatIdleMax = idleMax
			},
		}, procs...)
		m := ids.NewMembership(procs...)
		c.CreateGroup(g1, m)
		c.RunFor(2 * simnet.Second)
		var hb uint64
		for _, p := range procs {
			hb += c.Host(p).Node.Stats().HeartbeatsSent
		}
		return hb
	}
	suppressed := run(25_000_000) // 25ms idle cadence vs 5ms base
	baseline := run(0)
	if suppressed*2 >= baseline {
		t.Fatalf("idle suppression ineffective: %d heartbeats vs %d baseline", suppressed, baseline)
	}
	t.Logf("heartbeats over 2s idle: suppressed=%d baseline=%d", suppressed, baseline)
}

func TestHeartbeatSuppressionKeepsFailureDetection(t *testing.T) {
	// The stretched cadence must stay compatible with fault suspicion:
	// a crash in a long-idle suppressed group is still detected.
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{
		Seed: 59,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.HeartbeatIdleMax = 20_000_000 // 20ms, below the 50ms suspicion timeout
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	c.RunFor(simnet.Second) // deep idle: suppression active everywhere
	c.Crash(3)
	survivors := ids.NewMembership(1, 2)
	ok := c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		for _, p := range survivors {
			v, found := c.Host(p).LastView(g1)
			if !found || !v.Members.Equal(survivors) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("crash in suppressed-heartbeat group never detected")
	}
}
