package core_test

import (
	"fmt"

	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// Example demonstrates the core API end to end on the deterministic
// simulated network: three processors form a group and agree on one
// delivery order for interleaved multicasts.
func Example() {
	const group = ids.GroupID(1)
	cluster := harness.NewCluster(harness.Options{
		Seed: 7,
		Net:  simnet.NewConfig(),
	}, 1, 2, 3)
	members := ids.NewMembership(1, 2, 3)
	cluster.CreateGroup(group, members)

	for i, p := range []ids.ProcessorID{2, 3, 1} {
		p, i := p, i
		cluster.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
			_ = cluster.Multicast(p, group, fmt.Sprintf("hello from %v", p))
		})
	}
	cluster.RunUntil(simnet.Second, cluster.AllDelivered(group, members, 3))

	for _, payload := range cluster.Host(1).DeliveredPayloads(group) {
		fmt.Println(payload)
	}
	// Output:
	// hello from P2
	// hello from P3
	// hello from P1
}
