package core_test

// Conformance tests for paper Figure 3: the delivery service provided by
// FTMP for each message type (reliable? source ordered? totally
// ordered?), including the two per-destination exceptions. The wire
// package's static predicates are checked in wire/wire_test.go; the
// tests here verify the observable behaviour.

import (
	"fmt"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

// TestFig3RegularReliableTotallyOrdered: row "Regular: yes / yes".
func TestFig3RegularReliableTotallyOrdered(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.15
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{Seed: 101, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	const each = 20
	for i := 0; i < each; i++ {
		for _, p := range procs {
			p, i := p, i
			c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
				_ = c.Multicast(p, g1, fmt.Sprintf("%v:%d", p, i))
			})
		}
	}
	if !c.RunUntil(20*simnet.Second, c.AllDelivered(g1, m, each*len(procs))) {
		t.Fatal("reliability violated under loss")
	}
	base := c.Host(1).DeliveredPayloads(g1)
	for _, p := range procs[1:] {
		got := c.Host(p).DeliveredPayloads(g1)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("total order violated at %d", i)
			}
		}
	}
}

// TestFig3HeartbeatUnreliableNotRetransmitted: row "Heartbeat: no / no".
func TestFig3HeartbeatUnreliableNotRetransmitted(t *testing.T) {
	c, _ := lanCluster(t, 103, 2)
	c.RunFor(500 * simnet.Millisecond)
	// Idle group: plenty of heartbeats, zero reliable messages, so zero
	// NACKs and zero retransmissions despite no application traffic.
	st := c.Host(1).Node.Stats()
	if st.HeartbeatsSent == 0 {
		t.Fatal("no heartbeats in an idle group")
	}
	if st.RMP.NacksSent != 0 || st.RMP.Retransmissions != 0 {
		t.Errorf("idle group produced repairs: %+v", st.RMP)
	}
}

// TestFig3HeartbeatLossHarmless: heartbeats carry no payload a receiver
// could miss; losing them only delays the horizon.
func TestFig3HeartbeatLossHarmless(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.5
	procs := []ids.ProcessorID{1, 2}
	c := harness.NewCluster(harness.Options{Seed: 107, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	_ = c.Multicast(1, g1, "x")
	if !c.RunUntil(10*simnet.Second, c.AllDelivered(g1, m, 1)) {
		t.Fatal("delivery failed under heartbeat loss")
	}
}

// TestFig3SuspectNotTotallyOrdered: rows "Suspect" and "Membership" are
// reliable and source-ordered but bypass total ordering: a suspicion is
// processed even while ordering is stalled by the faulty member itself.
func TestFig3SuspectBypassesTotalOrder(t *testing.T) {
	c, _ := lanCluster(t, 109, 3)
	c.RunFor(20 * simnet.Millisecond)
	c.Crash(3)
	// Ordering is stalled (member 3 silent), yet Suspect/Membership
	// messages must still be processed — that is the only way recovery
	// can make progress. Recovery completing is the proof.
	survivors := ids.NewMembership(1, 2)
	ok := c.RunUntil(5*simnet.Second, func() bool {
		v, found := c.Host(1).LastView(g1)
		return found && v.Members.Equal(survivors)
	})
	if !ok {
		t.Fatal("suspect/membership messages blocked by the stalled total order")
	}
}

// TestFig3ConnectExceptionClientGroup: row "Connect: yes except to
// client group". The client cannot NACK a Connect for a group it does
// not know; the server covers the gap by periodic re-multicast.
func TestFig3ConnectRetransmitToClient(t *testing.T) {
	// Drop 60% of packets: the first Connect almost certainly dies; the
	// client still converges thanks to the announcement retries.
	c, conn := connCluster(t, 113, 0.6, false)
	domainAddr := core.DefaultConfig(3).DomainAddr
	c.Host(3).Node.OpenConnection(int64(c.Net.Now()), conn, domainAddr, ids.NewMembership(3))
	ok := c.RunUntil(30*simnet.Second, func() bool {
		st := c.Host(3).Node.ConnectionState(conn)
		return st != nil && st.Established
	})
	if !ok {
		t.Fatal("client never learned of the connection under heavy loss")
	}
}

// TestFig3AddProcessorExceptionNewMember: row "AddProcessor: yes except
// to new member". The proposer re-multicasts until the member is heard.
func TestFig3AddProcessorRetransmitToNewMember(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.6
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{Seed: 127, Net: cfg}, procs...)
	initial := ids.NewMembership(1, 2)
	c.CreateGroup(g1, initial)
	c.RunFor(20 * simnet.Millisecond)
	c.Host(3).Node.ListenGroup(g1)
	if err := c.Host(1).Node.RequestAddProcessor(int64(c.Net.Now()), g1, 3); err != nil {
		t.Fatal(err)
	}
	full := ids.NewMembership(1, 2, 3)
	ok := c.RunUntil(30*simnet.Second, func() bool {
		v, found := c.Host(3).LastView(g1)
		return found && v.Members.Equal(full)
	})
	if !ok {
		t.Fatal("new member never admitted under heavy loss")
	}
}

// TestFig3RetransmitRequestBestEffort: row "RetransmitRequest: no / no".
// A lost NACK is re-issued by backoff, not by any reliability machinery.
func TestFig3RetransmitRequestBestEffort(t *testing.T) {
	cfg := simnet.NewConfig()
	cfg.LossRate = 0.3
	procs := []ids.ProcessorID{1, 2, 3}
	c := harness.NewCluster(harness.Options{Seed: 131, Net: cfg}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(g1, m)
	for i := 0; i < 10; i++ {
		i := i
		c.Net.At(simnet.Time(i)*simnet.Millisecond, func() {
			_ = c.Multicast(1, g1, fmt.Sprintf("r%d", i))
		})
	}
	if !c.RunUntil(20*simnet.Second, c.AllDelivered(g1, m, 10)) {
		t.Fatal("repair failed under NACK loss")
	}
}

// TestFig3Matrix prints the conformance matrix as Figure 3 lays it out,
// asserting the wire-level predicates match the paper row by row.
func TestFig3Matrix(t *testing.T) {
	rows := []struct {
		t        wire.MsgType
		reliable string
		total    string
	}{
		{wire.TypeRegular, "Yes", "Yes"},
		{wire.TypeRetransmitRequest, "No", "No"},
		{wire.TypeHeartbeat, "No", "No"},
		{wire.TypeConnectRequest, "No", "No"},
		{wire.TypeConnect, "Yes except to client group", "Yes"},
		{wire.TypeAddProcessor, "Yes except to new member", "Yes"},
		{wire.TypeRemoveProcessor, "Yes", "Yes"},
		{wire.TypeSuspect, "Yes", "No"},
		{wire.TypeMembership, "Yes", "No"},
	}
	for _, r := range rows {
		wantReliable := r.reliable != "No"
		wantTotal := r.total == "Yes"
		if r.t.Reliable() != wantReliable {
			t.Errorf("%v: Reliable() = %v, want %v", r.t, r.t.Reliable(), wantReliable)
		}
		if r.t.TotallyOrdered() != wantTotal {
			t.Errorf("%v: TotallyOrdered() = %v, want %v", r.t, r.t.TotallyOrdered(), wantTotal)
		}
		t.Logf("%-18s reliable=%-28s totally-ordered=%s", r.t, r.reliable, r.total)
	}
}
