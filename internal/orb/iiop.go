package orb

import (
	"fmt"
	"net"
	"sync"

	"ftmp/internal/giop"
)

// Server is an IIOP endpoint: GIOP messages over TCP, dispatched to an
// object adapter. It is the unreplicated point-to-point baseline the
// paper contrasts with FTMP's logical connections (section 4).
type Server struct {
	Adapter *Adapter

	lis    net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server over the given adapter.
func NewServer(adapter *Adapter) *Server {
	return &Server{Adapter: adapter, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting IIOP connections on addr (e.g. "127.0.0.1:0")
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		raw, err := giop.ReadMessage(conn)
		if err != nil {
			return
		}
		msg, err := giop.Decode(raw)
		if err != nil {
			out, _ := giop.Encode(giop.Message{Type: giop.MsgMessageError, MessageError: &giop.MessageError{}}, false)
			conn.Write(out)
			continue
		}
		switch msg.Type {
		case giop.MsgRequest:
			reply := s.Adapter.Dispatch(msg.Request)
			if reply == nil {
				continue // oneway
			}
			out, err := giop.Encode(giop.Message{Type: giop.MsgReply, Reply: reply}, msg.LittleEndian)
			if err != nil {
				return
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		case giop.MsgLocateRequest:
			lr := s.Adapter.Locate(msg.LocateRequest)
			out, err := giop.Encode(giop.Message{Type: giop.MsgLocateReply, LocateReply: lr}, msg.LittleEndian)
			if err != nil {
				return
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		case giop.MsgCloseConnection:
			return
		default:
			// CancelRequest and friends: nothing to do in this ORB.
		}
	}
}

// Close stops the server and its connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.lis != nil {
		s.lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client is an IIOP client stub factory bound to one TCP connection.
// Safe for concurrent use; requests are serialized on the wire and
// matched to replies by request id.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	nextID uint32
	closed bool
}

// Dial connects to an IIOP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close sends CloseConnection and shuts the transport.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	out, _ := giop.Encode(giop.Message{Type: giop.MsgCloseConnection, CloseConnection: &giop.CloseConnection{}}, false)
	c.conn.Write(out)
	c.conn.Close()
}

// Invoke performs a synchronous request: marshal, send, await the reply.
func (c *Client) Invoke(objectKey, op string, args []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	req := giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        []byte(objectKey),
		Operation:        op,
		Body:             args,
	}}
	out, err := giop.Encode(req, false)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(out); err != nil {
		return nil, err
	}
	for {
		raw, err := giop.ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		msg, err := giop.Decode(raw)
		if err != nil {
			return nil, err
		}
		reply := msg.Reply
		if msg.Type != giop.MsgReply || reply == nil {
			continue
		}
		if reply.RequestID != id {
			continue // stale reply from a cancelled request
		}
		switch reply.Status {
		case giop.NoException:
			return reply.Body, nil
		case giop.UserException:
			return nil, DecodeException(reply.Body, false)
		case giop.SystemException:
			return nil, DecodeException(reply.Body, true)
		default:
			return nil, fmt.Errorf("orb: unsupported reply status %v", reply.Status)
		}
	}
}

// Oneway sends a request without expecting a reply.
func (c *Client) Oneway(objectKey, op string, args []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	req := giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        c.nextID,
		ResponseExpected: false,
		ObjectKey:        []byte(objectKey),
		Operation:        op,
		Body:             args,
	}}
	out, err := giop.Encode(req, false)
	if err != nil {
		return err
	}
	_, err = c.conn.Write(out)
	return err
}

// Locate asks whether the server hosts objectKey.
func (c *Client) Locate(objectKey string) (giop.LocateStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	c.nextID++
	id := c.nextID
	req := giop.Message{Type: giop.MsgLocateRequest, LocateRequest: &giop.LocateRequest{
		RequestID: id,
		ObjectKey: []byte(objectKey),
	}}
	out, err := giop.Encode(req, false)
	if err != nil {
		return 0, err
	}
	if _, err := c.conn.Write(out); err != nil {
		return 0, err
	}
	for {
		raw, err := giop.ReadMessage(c.conn)
		if err != nil {
			return 0, err
		}
		msg, err := giop.Decode(raw)
		if err != nil {
			return 0, err
		}
		if msg.Type == giop.MsgLocateReply && msg.LocateReply.RequestID == id {
			return msg.LocateReply.Status, nil
		}
	}
}
