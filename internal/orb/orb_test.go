package orb

import (
	"errors"
	"sync"
	"testing"

	"ftmp/internal/giop"
)

// counterServant is a tiny stateful servant used across the ORB tests.
type counterServant struct {
	mu    sync.Mutex
	value int64
}

func (c *counterServant) Invoke(op string, args []byte) ([]byte, *Exception) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		d := giop.NewDecoder(args, false)
		c.value += d.LongLong()
		if d.Err() != nil {
			return nil, ExcUnknown
		}
		fallthrough
	case "get":
		e := giop.NewEncoder(false)
		e.LongLong(c.value)
		return e.Bytes(), nil
	case "fail":
		return nil, &Exception{RepoID: "IDL:test/Overdrawn:1.0"}
	default:
		return nil, ExcBadOperation
	}
}

func encodeInt(v int64) []byte {
	e := giop.NewEncoder(false)
	e.LongLong(v)
	return e.Bytes()
}

func decodeInt(t *testing.T, b []byte) int64 {
	t.Helper()
	d := giop.NewDecoder(b, false)
	v := d.LongLong()
	if err := d.Done(); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return v
}

func TestAdapterDispatch(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	req := &giop.Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("counter"), Operation: "add", Body: encodeInt(5)}
	reply := a.Dispatch(req)
	if reply.Status != giop.NoException {
		t.Fatalf("status = %v", reply.Status)
	}
	if got := decodeInt(t, reply.Body); got != 5 {
		t.Errorf("result = %d", got)
	}
}

func TestAdapterUnknownObject(t *testing.T) {
	a := NewAdapter()
	reply := a.Dispatch(&giop.Request{RequestID: 2, ResponseExpected: true, ObjectKey: []byte("ghost"), Operation: "x"})
	if reply.Status != giop.SystemException {
		t.Fatalf("status = %v", reply.Status)
	}
	exc := DecodeException(reply.Body, true)
	if exc.RepoID != ExcObjectNotExist.RepoID {
		t.Errorf("exception = %v", exc)
	}
}

func TestAdapterOneway(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	if reply := a.Dispatch(&giop.Request{ObjectKey: []byte("counter"), Operation: "add", Body: encodeInt(1)}); reply != nil {
		t.Error("oneway produced a reply")
	}
}

func TestAdapterUserException(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	reply := a.Dispatch(&giop.Request{ResponseExpected: true, ObjectKey: []byte("counter"), Operation: "fail"})
	if reply.Status != giop.UserException {
		t.Fatalf("status = %v", reply.Status)
	}
	exc := DecodeException(reply.Body, false)
	if exc.System || exc.RepoID != "IDL:test/Overdrawn:1.0" {
		t.Errorf("exception = %+v", exc)
	}
	if exc.Error() == "" {
		t.Error("empty Error()")
	}
}

func TestAdapterRegistry(t *testing.T) {
	a := NewAdapter()
	a.Register("b", ServantFunc(func(string, []byte) ([]byte, *Exception) { return nil, nil }))
	a.Register("a", ServantFunc(func(string, []byte) ([]byte, *Exception) { return nil, nil }))
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	a.Unregister("a")
	if len(a.Keys()) != 1 {
		t.Error("Unregister failed")
	}
}

func TestLocate(t *testing.T) {
	a := NewAdapter()
	a.Register("here", ServantFunc(func(string, []byte) ([]byte, *Exception) { return nil, nil }))
	if lr := a.Locate(&giop.LocateRequest{RequestID: 1, ObjectKey: []byte("here")}); lr.Status != giop.ObjectHere {
		t.Errorf("Locate(here) = %v", lr.Status)
	}
	if lr := a.Locate(&giop.LocateRequest{RequestID: 2, ObjectKey: []byte("gone")}); lr.Status != giop.UnknownObject {
		t.Errorf("Locate(gone) = %v", lr.Status)
	}
}

func TestIIOPEndToEnd(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	srv := NewServer(a)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := int64(1); i <= 3; i++ {
		out, err := cli.Invoke("counter", "add", encodeInt(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := decodeInt(t, out); got != (i*(i+1))/2 {
			t.Errorf("after add(%d): %d", i, got)
		}
	}

	// System exception surfaces as an error.
	if _, err := cli.Invoke("ghost", "get", nil); err == nil {
		t.Error("invoking missing object succeeded")
	} else {
		var exc *Exception
		if !errors.As(err, &exc) || !exc.System {
			t.Errorf("err = %v", err)
		}
	}

	// User exception.
	if _, err := cli.Invoke("counter", "fail", nil); err == nil {
		t.Error("fail op succeeded")
	} else {
		var exc *Exception
		if !errors.As(err, &exc) || exc.System {
			t.Errorf("err = %v", err)
		}
	}

	// Locate.
	if st, err := cli.Locate("counter"); err != nil || st != giop.ObjectHere {
		t.Errorf("Locate = %v, %v", st, err)
	}

	// Oneway followed by a synchronous read observes the effect.
	if err := cli.Oneway("counter", "add", encodeInt(10)); err != nil {
		t.Fatal(err)
	}
	out, err := cli.Invoke("counter", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeInt(t, out); got != 16 {
		t.Errorf("after oneway: %d", got)
	}
}

func TestIIOPConcurrentClients(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	srv := NewServer(a)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < each; j++ {
				if _, err := cli.Invoke("counter", "add", encodeInt(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out, err := cli.Invoke("counter", "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeInt(t, out); got != clients*each {
		t.Errorf("final = %d, want %d", got, clients*each)
	}
}

func TestClientClosed(t *testing.T) {
	a := NewAdapter()
	srv := NewServer(a)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	cli.Close() // idempotent
	if _, err := cli.Invoke("x", "y", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if err := cli.Oneway("x", "y", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("oneway err = %v", err)
	}
	if _, err := cli.Locate("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("locate err = %v", err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	a := NewAdapter()
	a.Register("counter", &counterServant{})
	srv := NewServer(a)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Valid header, body that fails to decode as a Request: the server
	// must answer MessageError (and keep the connection usable).
	bad, _ := giop.Encode(giop.Message{Type: giop.MsgFragment, Fragment: &giop.Fragment{Data: []byte("junk")}}, false)
	cli.mu.Lock()
	cli.conn.Write(bad)
	cli.mu.Unlock()
	out, err := cli.Invoke("counter", "get", nil)
	if err != nil {
		t.Fatalf("connection unusable after junk: %v", err)
	}
	if decodeInt(t, out) != 0 {
		t.Error("unexpected state")
	}
}
