// Package orb is a minimal CORBA object request broker: an object
// adapter that dispatches GIOP Requests to registered servants, plus an
// IIOP (GIOP over TCP) client and server. It stands in for the
// commercial ORBs the paper's infrastructure intercepts (DESIGN.md
// section 5); the replicated, FTMP-carried invocation path lives in
// package ftcorba and reuses the same adapter.
package orb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ftmp/internal/giop"
)

// Exception is a CORBA exception surfaced to the client.
type Exception struct {
	// System distinguishes SYSTEM_EXCEPTION from USER_EXCEPTION replies.
	System bool
	// RepoID is the exception repository id (e.g. "IDL:omg.org/CORBA/
	// OBJECT_NOT_EXIST:1.0").
	RepoID string
}

// Error implements error.
func (e *Exception) Error() string {
	kind := "user"
	if e.System {
		kind = "system"
	}
	return fmt.Sprintf("corba %s exception: %s", kind, e.RepoID)
}

// Well-known system exceptions.
var (
	ExcObjectNotExist = &Exception{System: true, RepoID: "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"}
	ExcBadOperation   = &Exception{System: true, RepoID: "IDL:omg.org/CORBA/BAD_OPERATION:1.0"}
	ExcUnknown        = &Exception{System: true, RepoID: "IDL:omg.org/CORBA/UNKNOWN:1.0"}
)

// Servant implements an object: it receives the operation name and the
// CDR-encoded in-parameters and returns CDR-encoded results.
type Servant interface {
	Invoke(op string, args []byte) ([]byte, *Exception)
}

// ServantFunc adapts a function to Servant.
type ServantFunc func(op string, args []byte) ([]byte, *Exception)

// Invoke implements Servant.
func (f ServantFunc) Invoke(op string, args []byte) ([]byte, *Exception) {
	return f(op, args)
}

// Adapter is an object adapter: a table of servants keyed by object key.
// It is safe for concurrent use (the IIOP server dispatches from
// multiple connection goroutines).
type Adapter struct {
	mu       sync.RWMutex
	servants map[string]Servant
}

// NewAdapter returns an empty object adapter.
func NewAdapter() *Adapter {
	return &Adapter{servants: make(map[string]Servant)}
}

// Register binds a servant to an object key, replacing any previous
// binding.
func (a *Adapter) Register(objectKey string, s Servant) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.servants[objectKey] = s
}

// Unregister removes the binding for objectKey.
func (a *Adapter) Unregister(objectKey string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.servants, objectKey)
}

// Keys returns the registered object keys, sorted.
func (a *Adapter) Keys() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.servants))
	for k := range a.servants {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lookup returns the servant for key.
func (a *Adapter) lookup(key string) (Servant, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.servants[key]
	return s, ok
}

// Dispatch executes a GIOP Request against the adapter and builds the
// Reply. Oneway requests (ResponseExpected false) return nil.
func (a *Adapter) Dispatch(req *giop.Request) *giop.Reply {
	s, ok := a.lookup(string(req.ObjectKey))
	var reply giop.Reply
	reply.RequestID = req.RequestID
	switch {
	case !ok:
		reply.Status = giop.SystemException
		reply.Body = encodeException(ExcObjectNotExist)
	default:
		result, exc := s.Invoke(req.Operation, req.Body)
		if exc == nil {
			reply.Status = giop.NoException
			reply.Body = result
		} else if exc.System {
			reply.Status = giop.SystemException
			reply.Body = encodeException(exc)
		} else {
			reply.Status = giop.UserException
			reply.Body = encodeException(exc)
		}
	}
	if !req.ResponseExpected {
		return nil
	}
	return &reply
}

// Locate answers a LocateRequest against the adapter.
func (a *Adapter) Locate(req *giop.LocateRequest) *giop.LocateReply {
	_, ok := a.lookup(string(req.ObjectKey))
	status := giop.UnknownObject
	if ok {
		status = giop.ObjectHere
	}
	return &giop.LocateReply{RequestID: req.RequestID, Status: status}
}

// EncodeExceptionBody marshals an exception body: the repository id
// string followed by a minor code and completion status, as CORBA
// system exceptions are encoded. DecodeException inverts it.
func EncodeExceptionBody(exc *Exception) []byte { return encodeException(exc) }

// encodeException marshals an exception body: the repository id string
// followed by a minor code and completion status, as CORBA system
// exceptions are encoded.
func encodeException(exc *Exception) []byte {
	e := giop.NewEncoder(false)
	e.String(exc.RepoID)
	e.ULong(0) // minor
	e.ULong(0) // completion status: COMPLETED_YES
	return e.Bytes()
}

// DecodeException parses an exception body produced by encodeException.
func DecodeException(body []byte, system bool) *Exception {
	d := giop.NewDecoder(body, false)
	id := d.String()
	if d.Err() != nil {
		return ExcUnknown
	}
	return &Exception{System: system, RepoID: id}
}

// ErrClosed is returned by clients after Close.
var ErrClosed = errors.New("orb: connection closed")
