package romp

import (
	"sort"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

// Leader (sequencer) ordering mode, FTMP 1.3. Instead of waiting for the
// all-member acknowledgment horizon, the current view's leader assigns a
// dense delivery sequence to every totally-ordered message and publishes
// the assignments as runs (piggybacked on its data frames or standalone
// SeqAssign messages). Followers deliver in assignment order as soon as
// both the run and the data are present — typically one one-way hop after
// the leader's send — while the Lamport heard/ack machinery keeps running
// underneath for stability cuts, buffer reclamation and WAL compaction.
//
// Runs ride RMP in the leader's source order, so the assignment space a
// follower accepts is gap-free; a delivery stall always means the data
// for the next assigned sequence has not arrived yet, which RMP's NACK
// machinery is already repairing. Runs carry the leader's epoch
// (installed-view count); a run for an older epoch is from a deposed
// leader and is discarded (fencing), a run for a newer epoch is buffered
// until this processor installs the matching view.

// seqRun is a buffered sequencing run from an epoch this processor has
// not installed yet.
type seqRun struct {
	epoch uint64
	first uint64
	refs  []wire.SeqRef
}

// seqState is the leader-mode ordering state embedded in Order.
type seqState struct {
	enabled bool
	// epoch is the view epoch runs are currently accepted for.
	epoch uint64
	// next is the delivery sequence expected next; 0 means "not yet
	// adopted" (a joiner adopts the First of its first accepted run).
	next uint64
	// nextAssign is the leader's next sequence to hand out; meaningful
	// only at the leader.
	nextAssign uint64
	// assigned maps a delivery sequence to the message it names.
	assigned map[uint64]wire.SeqRef
	// holes are sequences this processor must skip without delivering: a
	// joiner's pre-baseline refs, whose payloads are covered by state
	// transfer rather than the message stream.
	holes map[uint64]bool
	// byRef holds pending entries keyed by (source, seq).
	byRef map[wire.SeqRef]Entry
	// delivSrc is the per-source delivered watermark, the seq-mode
	// staleness guard (timestamps are not monotonic in delivery order
	// under a sequencer).
	delivSrc map[ids.ProcessorID]ids.SeqNum
	// future buffers runs from epochs not yet installed here.
	future []seqRun
}

// EnableSeqMode switches the layer into leader ordering mode. Must be
// called before any Submit.
func (o *Order) EnableSeqMode() {
	o.seq.enabled = true
	o.seq.assigned = make(map[uint64]wire.SeqRef)
	o.seq.holes = make(map[uint64]bool)
	o.seq.byRef = make(map[wire.SeqRef]Entry)
	o.seq.delivSrc = make(map[ids.ProcessorID]ids.SeqNum)
}

// SeqMode reports whether leader ordering mode is enabled.
func (o *Order) SeqMode() bool { return o.seq.enabled }

// SeqEpoch returns the epoch runs are currently accepted for.
func (o *Order) SeqEpoch() uint64 { return o.seq.epoch }

// SeqNext returns the next delivery sequence expected (0 until adopted).
func (o *Order) SeqNext() uint64 { return o.seq.next }

// submitSeq is Submit's seq-mode path: entries are indexed by ref rather
// than heaped by timestamp, and staleness is judged by the per-source
// delivered watermark.
func (o *Order) submitSeq(e Entry) {
	if e.Seq <= o.seq.delivSrc[e.Source] {
		return // retransmission of something already delivered here
	}
	if cur, ok := o.heard[e.Source]; !ok || e.TS > cur {
		o.heard[e.Source] = e.TS
	}
	ref := wire.SeqRef{Source: e.Source, Seq: e.Seq}
	if _, dup := o.seq.byRef[ref]; dup {
		return
	}
	o.seq.byRef[ref] = e
	o.stats.Submitted++
	if n := len(o.seq.byRef); n > o.stats.MaxPending {
		o.stats.MaxPending = n
	}
}

// AssignNext hands out the next delivery sequence for ref under the
// current epoch, recording the assignment locally. Only the current
// view's leader calls it; the returned sequence goes out in the next run.
func (o *Order) AssignNext(ref wire.SeqRef) uint64 {
	if o.seq.nextAssign == 0 {
		o.seq.nextAssign = 1
		if o.seq.next > 1 {
			o.seq.nextAssign = o.seq.next
		}
	}
	s := o.seq.nextAssign
	o.seq.nextAssign++
	if o.seq.next == 0 {
		o.seq.next = s
	}
	o.seq.assigned[s] = ref
	return s
}

// PeekAssign returns the sequence AssignNext would hand out, without
// assigning it. The leader uses it to name its own next data frame
// inside the run that frame carries.
func (o *Order) PeekAssign() uint64 {
	if o.seq.nextAssign == 0 {
		if o.seq.next > 1 {
			return o.seq.next
		}
		return 1
	}
	return o.seq.nextAssign
}

// ApplyRun records a sequencing run: refs[i] is assigned sequence
// first+i under the given epoch. Runs for older epochs are discarded
// (fenced); runs for newer epochs are buffered until SeqInstall moves
// this processor into that epoch. skip, when non-nil, marks refs this
// processor can never satisfy (a joiner's pre-baseline messages): their
// sequences become holes that delivery steps over. Returns true if the
// run was applied to the current epoch.
func (o *Order) ApplyRun(epoch, first uint64, refs []wire.SeqRef, skip func(wire.SeqRef) bool) bool {
	if !o.seq.enabled {
		return false
	}
	if epoch < o.seq.epoch {
		return false
	}
	if epoch > o.seq.epoch {
		if o.seq.next == 0 && o.seq.epoch == 0 && o.seq.nextAssign == 0 {
			// Virgin joiner: adopt the leader's current sequencing epoch
			// at first contact (its own bootstrap witnessed none of the
			// installs that produced it) and fall through to apply.
			o.seq.epoch = epoch
		} else {
			o.seq.future = append(o.seq.future, seqRun{
				epoch: epoch, first: first, refs: append([]wire.SeqRef(nil), refs...),
			})
			return false
		}
	}
	if o.seq.next == 0 && len(refs) > 0 {
		// Joiner: adopt the leader's numbering at the first run seen.
		o.seq.next = first
	}
	for i, ref := range refs {
		s := first + uint64(i)
		if s < o.seq.next {
			continue // already delivered here
		}
		if skip != nil && skip(ref) {
			o.seq.holes[s] = true
			continue
		}
		o.seq.assigned[s] = ref
	}
	return true
}

// SeqDeliverable removes and returns, in assignment order, every entry
// whose sequence is next and whose data is present. The returned slice
// is reused across drain calls, like Deliverable. A stall means the data
// for the next assigned sequence is still in flight (RMP is repairing
// it); SeqBlockedOn reports which message that is.
func (o *Order) SeqDeliverable() []Entry {
	if o.frozen || !o.seq.enabled {
		return nil
	}
	out := o.deliverScratch[:0]
	for {
		if o.seq.holes[o.seq.next] {
			delete(o.seq.holes, o.seq.next)
			o.seq.next++
			continue
		}
		ref, ok := o.seq.assigned[o.seq.next]
		if !ok {
			break
		}
		e, present := o.seq.byRef[ref]
		if !present {
			break
		}
		delete(o.seq.assigned, o.seq.next)
		delete(o.seq.byRef, ref)
		e.AssignEpoch = o.seq.epoch
		e.AssignSeq = o.seq.next
		o.seq.next++
		if e.Seq > o.seq.delivSrc[e.Source] {
			o.seq.delivSrc[e.Source] = e.Seq
		}
		if e.TS > o.lastDelivered {
			o.lastDelivered = e.TS
		}
		o.stats.Delivered++
		out = append(out, e)
		// A membership op ends the batch: applying it may change the
		// leader, and every member must stop draining at the same
		// boundary so a re-sequencing install discards the same suffix.
		switch e.Msg.Body.(type) {
		case *wire.AddProcessor, *wire.RemoveProcessor:
			o.deliverScratch = out
			return out
		}
	}
	o.deliverScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// SeqBlockedOn returns the message holding up delivery: the ref assigned
// to the next sequence when its data has not arrived. ok is false when
// delivery is not data-blocked (no assignment pending, or frozen).
func (o *Order) SeqBlockedOn() (ref wire.SeqRef, ok bool) {
	if !o.seq.enabled || o.frozen {
		return ref, false
	}
	n := o.seq.next
	for o.seq.holes[n] {
		n++
	}
	r, assigned := o.seq.assigned[n]
	if !assigned {
		return ref, false
	}
	if _, present := o.seq.byRef[r]; present {
		return ref, false
	}
	return r, true
}

// SeqInstall moves the layer into a new view's epoch after the caller
// has drained SeqDeliverable: undelivered assignments and holes from the
// old epoch are discarded (the new leader re-issues them), and runs
// buffered from the new epoch are applied. Entries still pending stay
// put, waiting for new-epoch runs. Virtual synchrony makes this
// deterministic: survivors equalized their reliable message sets before
// installing, so every survivor discards and keeps exactly the same
// state and resumes from the same sequence.
func (o *Order) SeqInstall(epoch uint64, skip func(wire.SeqRef) bool) {
	if !o.seq.enabled || epoch <= o.seq.epoch {
		return
	}
	clear(o.seq.assigned)
	clear(o.seq.holes)
	o.seq.epoch = epoch
	o.seq.nextAssign = 0
	kept := o.seq.future[:0]
	for _, run := range o.seq.future {
		if run.epoch == epoch {
			o.ApplyRun(run.epoch, run.first, run.refs, skip)
		} else if run.epoch > epoch {
			kept = append(kept, run)
		}
	}
	o.seq.future = kept
}

// SeqPendingUnassigned returns the pending entries with no assignment,
// in timestamp order (timestamps are unique, so the order is the same at
// every survivor). The new view's leader re-sequences exactly these
// after SeqInstall.
func (o *Order) SeqPendingUnassigned() []Entry {
	if !o.seq.enabled {
		return nil
	}
	referenced := make(map[wire.SeqRef]bool, len(o.seq.assigned))
	for _, ref := range o.seq.assigned {
		referenced[ref] = true
	}
	var out []Entry
	for ref, e := range o.seq.byRef {
		if !referenced[ref] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// SeqPendingCount returns the number of buffered seq-mode entries.
func (o *Order) SeqPendingCount() int { return len(o.seq.byRef) }
