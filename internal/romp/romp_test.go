package romp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ftmp/internal/ids"
)

const self = ids.ProcessorID(1)

func ts(c uint64, p ids.ProcessorID) ids.Timestamp { return ids.MakeTimestamp(c, p) }

func entry(src ids.ProcessorID, seq ids.SeqNum, c uint64) Entry {
	return Entry{Source: src, Seq: seq, TS: ts(c, src)}
}

func newOrder(members ...ids.ProcessorID) *Order {
	o := New(self)
	o.SetMembership(ids.NewMembership(members...), ids.NilTimestamp)
	return o
}

func TestSingleMemberDeliversImmediately(t *testing.T) {
	o := newOrder(self)
	o.Submit(entry(self, 1, 5))
	got := o.Deliverable()
	if len(got) != 1 || got[0].TS != ts(5, self) {
		t.Fatalf("Deliverable = %v", got)
	}
}

func TestDeliveryWaitsForAllMembers(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.Submit(entry(1, 1, 10))
	if got := o.Deliverable(); got != nil {
		t.Fatalf("delivered before hearing from 2,3: %v", got)
	}
	o.ObserveTimestamp(2, ts(11, 2), 0)
	if got := o.Deliverable(); got != nil {
		t.Fatalf("delivered before hearing from 3: %v", got)
	}
	o.ObserveTimestamp(3, ts(12, 3), 0)
	got := o.Deliverable()
	if len(got) != 1 || got[0].Source != 1 {
		t.Fatalf("Deliverable = %v", got)
	}
}

func TestTotalOrderByTimestamp(t *testing.T) {
	o := newOrder(1, 2, 3)
	// Messages arrive out of timestamp order across sources.
	o.Submit(entry(3, 1, 30))
	o.Submit(entry(1, 1, 10))
	o.Submit(entry(2, 1, 20))
	o.ObserveTimestamp(1, ts(40, 1), 0)
	o.ObserveTimestamp(2, ts(40, 2), 0)
	o.ObserveTimestamp(3, ts(40, 3), 0)
	got := o.Deliverable()
	if len(got) != 3 {
		t.Fatalf("Deliverable = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if !(got[i-1].TS < got[i].TS) {
			t.Errorf("out of order: %v before %v", got[i-1].TS, got[i].TS)
		}
	}
	if got[0].Source != 1 || got[1].Source != 2 || got[2].Source != 3 {
		t.Errorf("order = %v,%v,%v", got[0].Source, got[1].Source, got[2].Source)
	}
}

func TestTieBreakByProcessor(t *testing.T) {
	o := newOrder(1, 2)
	// Same counter, different processors: processor id breaks the tie.
	o.Submit(entry(2, 1, 10))
	o.Submit(entry(1, 1, 10))
	o.ObserveTimestamp(1, ts(20, 1), 0)
	o.ObserveTimestamp(2, ts(20, 2), 0)
	got := o.Deliverable()
	if len(got) != 2 || got[0].Source != 1 || got[1].Source != 2 {
		t.Fatalf("tie-break order wrong: %v", got)
	}
}

func TestHorizonIsMinHeard(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.ObserveTimestamp(1, ts(100, 1), 0)
	o.ObserveTimestamp(2, ts(50, 2), 0)
	o.ObserveTimestamp(3, ts(80, 3), 0)
	if h := o.Horizon(); h != ts(50, 2) {
		t.Errorf("Horizon = %v, want heard(2)", h)
	}
	if o.AckTS() != o.Horizon() {
		t.Error("AckTS != Horizon")
	}
}

func TestEmptyMembershipHorizonNil(t *testing.T) {
	o := New(self)
	if o.Horizon() != ids.NilTimestamp {
		t.Error("empty membership should have nil horizon")
	}
	if o.StableTS() != ids.NilTimestamp {
		t.Error("empty membership should have nil stability")
	}
}

func TestHeartbeatAdvancesHorizon(t *testing.T) {
	o := newOrder(1, 2)
	o.Submit(entry(1, 1, 10))
	if o.Deliverable() != nil {
		t.Fatal("premature delivery")
	}
	// An idle member 2 heartbeats with its current (higher) timestamp.
	o.ObserveTimestamp(2, ts(15, 2), 0)
	got := o.Deliverable()
	if len(got) != 1 {
		t.Fatal("heartbeat did not unblock delivery")
	}
}

func TestStaleObserveIgnored(t *testing.T) {
	o := newOrder(1, 2)
	o.ObserveTimestamp(2, ts(50, 2), ts(40, 2))
	o.ObserveTimestamp(2, ts(30, 2), ts(20, 2)) // reordered heartbeat
	if o.Heard(2) != ts(50, 2) {
		t.Error("heard went backwards")
	}
	if o.StableTS() > ts(40, 2) {
		t.Error("ack went backwards")
	}
}

func TestObserveNonMemberIgnored(t *testing.T) {
	o := newOrder(1, 2)
	o.ObserveTimestamp(9, ts(99, 9), ts(99, 9))
	if _, ok := o.heard[9]; ok {
		t.Error("non-member recorded")
	}
}

func TestStability(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.ObserveTimestamp(1, ts(100, 1), 0)
	o.ObserveTimestamp(2, ts(100, 2), ts(60, 2))
	o.ObserveTimestamp(3, ts(100, 3), ts(40, 3))
	// Local ack = horizon = ts(100,1); min member ack = 40.
	if st := o.StableTS(); st != ts(40, 3) {
		t.Errorf("StableTS = %v, want ts(40.3)", st)
	}
}

func TestDeliveryNeverRegresses(t *testing.T) {
	o := newOrder(1, 2)
	o.Submit(entry(1, 1, 10))
	o.ObserveTimestamp(2, ts(20, 2), 0)
	if got := o.Deliverable(); len(got) != 1 {
		t.Fatal("setup delivery failed")
	}
	// A late duplicate with an old timestamp must not deliver again.
	o.Submit(entry(1, 1, 10))
	if got := o.Deliverable(); got != nil {
		t.Errorf("stale entry delivered: %v", got)
	}
	if o.LastDelivered() != ts(10, 1) {
		t.Errorf("LastDelivered = %v", o.LastDelivered())
	}
}

func TestMembershipChangeUnblocks(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.Submit(entry(1, 1, 10))
	o.ObserveTimestamp(2, ts(20, 2), 0)
	// Member 3 is silent (crashed): nothing deliverable.
	if o.Deliverable() != nil {
		t.Fatal("premature delivery")
	}
	// Remove 3: the horizon recomputes over survivors.
	o.SetMembership(ids.NewMembership(1, 2), o.ViewTS())
	got := o.Deliverable()
	if len(got) != 1 {
		t.Error("removal did not unblock ordering (paper section 7.2)")
	}
}

func TestNewMemberStartsAtViewTS(t *testing.T) {
	o := newOrder(1, 2)
	o.ObserveTimestamp(1, ts(100, 1), 0)
	o.ObserveTimestamp(2, ts(100, 2), 0)
	// Member 3 joins at view timestamp 100.
	o.SetMembership(ids.NewMembership(1, 2, 3), ts(100, 3))
	if o.Heard(3) != ts(100, 3) {
		t.Errorf("new member heard = %v, want viewTS", o.Heard(3))
	}
	// A message above the view timestamp must wait for 3, even once the
	// old members have advanced past it.
	o.Submit(entry(1, 2, 101))
	o.ObserveTimestamp(2, ts(103, 2), 0)
	if o.Deliverable() != nil {
		t.Error("delivered without hearing from new member")
	}
	o.ObserveTimestamp(3, ts(102, 3), 0)
	if got := o.Deliverable(); len(got) != 1 {
		t.Error("new member's heartbeat did not unblock")
	}
}

func TestFlushThrough(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.Submit(entry(1, 1, 10))
	o.Submit(entry(2, 1, 20))
	o.Submit(entry(1, 2, 30))
	got := o.FlushThrough(ts(20, 2))
	if len(got) != 2 {
		t.Fatalf("FlushThrough = %v", got)
	}
	if got[0].TS != ts(10, 1) || got[1].TS != ts(20, 2) {
		t.Errorf("flush order wrong: %v", got)
	}
	if o.PendingCount() != 1 {
		t.Errorf("PendingCount = %d, want 1", o.PendingCount())
	}
	if o.MaxPendingTS() != ts(30, 1) {
		t.Errorf("MaxPendingTS = %v", o.MaxPendingTS())
	}
}

func TestBlockers(t *testing.T) {
	o := newOrder(1, 2, 3)
	o.ObserveTimestamp(1, ts(100, 1), 0)
	o.ObserveTimestamp(2, ts(10, 2), 0)
	o.ObserveTimestamp(3, ts(10, 3), 0)
	b := o.Blockers()
	if !b.Equal(ids.NewMembership(2, 3)) {
		t.Errorf("Blockers = %v, want {2,3}", b)
	}
	if New(self).Blockers() != nil {
		t.Error("empty order has blockers")
	}
}

func TestStatsTracking(t *testing.T) {
	o := newOrder(1, 2)
	o.Submit(entry(1, 1, 10))
	o.Submit(entry(1, 2, 11))
	if o.Stats().MaxPending != 2 {
		t.Errorf("MaxPending = %d", o.Stats().MaxPending)
	}
	o.ObserveTimestamp(2, ts(20, 2), 0)
	o.Deliverable()
	if o.Stats().Delivered != 2 || o.Stats().Submitted != 2 {
		t.Errorf("Stats = %+v", o.Stats())
	}
}

func TestAgreedOrderAcrossReplicasProperty(t *testing.T) {
	// Property (total order): two replicas receiving the same entries in
	// different arrival orders deliver identical sequences.
	f := func(perm []uint8, counters []uint16) bool {
		if len(counters) == 0 {
			return true
		}
		if len(counters) > 24 {
			counters = counters[:24]
		}
		// Build entries from three sources with per-source increasing
		// counters (as Lamport clocks guarantee).
		var entries []Entry
		base := map[ids.ProcessorID]uint64{1: 0, 2: 0, 3: 0}
		for i, c := range counters {
			src := ids.ProcessorID(i%3 + 1)
			base[src] += uint64(c%100) + 1
			entries = append(entries, Entry{Source: src, Seq: ids.SeqNum(i/3 + 1), TS: ts(base[src], src)})
		}
		run := func(order []Entry) []ids.Timestamp {
			o := newOrder(1, 2, 3)
			var out []ids.Timestamp
			for _, e := range order {
				o.Submit(e)
				for _, d := range o.Deliverable() {
					out = append(out, d.TS)
				}
			}
			// Drain: everyone heard up to max.
			for p := ids.ProcessorID(1); p <= 3; p++ {
				o.ObserveTimestamp(p, ts(1<<30, p), 0)
			}
			for _, d := range o.Deliverable() {
				out = append(out, d.TS)
			}
			return out
		}
		// Replica A: submission order as built (per-source in order).
		a := run(entries)
		// Replica B: a different interleaving that still respects
		// per-source order (stable partition by source).
		var b []Entry
		for _, src := range []ids.ProcessorID{3, 1, 2} {
			for _, e := range entries {
				if e.Source == src {
					b = append(b, e)
				}
			}
		}
		bOut := run(b)
		if len(a) != len(bOut) {
			return false
		}
		for i := range a {
			if a[i] != bOut[i] {
				return false
			}
		}
		// And the common order is sorted by timestamp.
		return sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	if newOrder(1, 2).String() == "" {
		t.Error("empty String()")
	}
}
