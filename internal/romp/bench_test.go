package romp

import (
	"testing"

	"ftmp/internal/ids"
)

// BenchmarkSubmitDeliver measures the ordering hot path: submit from one
// source, advance the horizon, deliver.
func BenchmarkSubmitDeliver(b *testing.B) {
	o := newOrder(1, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uint64(i + 1)
		o.Submit(Entry{Source: 1, Seq: ids.SeqNum(i + 1), TS: ts(c, 1)})
		o.ObserveTimestamp(2, ts(c+1, 2), ts(c, 2))
		o.ObserveTimestamp(3, ts(c+1, 3), ts(c, 3))
		o.ObserveTimestamp(4, ts(c+1, 4), ts(c, 4))
		if got := o.Deliverable(); len(got) != 1 {
			b.Fatalf("iteration %d delivered %d", i, len(got))
		}
	}
}

// BenchmarkSubmitBurstDeliver measures the heap under a burst: 64
// pending entries released at once.
func BenchmarkSubmitBurstDeliver(b *testing.B) {
	o := newOrder(1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i)*64 + 1
		for j := uint64(0); j < 64; j++ {
			o.Submit(Entry{Source: 1, Seq: ids.SeqNum(base + j), TS: ts(base+j, 1)})
		}
		o.ObserveTimestamp(2, ts(base+64, 2), 0)
		if got := o.Deliverable(); len(got) != 64 {
			b.Fatalf("delivered %d", len(got))
		}
	}
}

// BenchmarkHorizon measures the min-reduction over a 16-member group.
func BenchmarkHorizon(b *testing.B) {
	members := make([]ids.ProcessorID, 16)
	for i := range members {
		members[i] = ids.ProcessorID(i + 1)
	}
	o := newOrder(members...)
	for i, p := range members {
		o.ObserveTimestamp(p, ts(uint64(100+i), p), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Horizon() == ids.NilTimestamp {
			b.Fatal("nil horizon")
		}
	}
}
