// Package romp implements the Reliable Ordered Multicast Protocol layer
// of FTMP (paper section 6): delivery of reliable messages in a single
// total order, consistent with causality, to all members of a processor
// group, using Lamport message timestamps; plus the acknowledgment-
// timestamp machinery that drives buffer management.
//
// Ordering rule. Within one source, timestamps increase with sequence
// numbers, and RMP feeds this layer in source order. A message m is
// therefore deliverable as soon as, for every member p of the group,
// this processor has contiguously heard from p up to a timestamp
// >= ts(m): any future message from p must carry a larger timestamp, so
// nothing that should precede m can still arrive. The delivery horizon
// is min over members of the latest contiguously-heard timestamp, and
// pending messages are delivered in timestamp order up to the horizon.
// Heartbeats advance the horizon when members are idle, which is why the
// heartbeat interval bounds delivery latency (experiment E3).
//
// The same horizon is the processor's acknowledgment timestamp: it has
// received everything with timestamp <= horizon from every member. A
// message is stable — its buffers reclaimable everywhere — once every
// member's reported ack timestamp has passed it (experiment E5).
package romp

import (
	"container/heap"
	"fmt"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

// Entry is one reliable message submitted for ordering.
type Entry struct {
	Source ids.ProcessorID
	Seq    ids.SeqNum
	TS     ids.Timestamp
	Msg    wire.Message
	// AssignEpoch and AssignSeq are the leader-mode ordering assignment
	// the entry was delivered under (FTMP 1.3); zero in Lamport mode.
	// SeqDeliverable fills them at delivery.
	AssignEpoch uint64
	AssignSeq   uint64
}

// entryHeap orders entries by timestamp (total order).
type entryHeap []Entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].TS < h[j].TS }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Stats counts ordering-layer events for the experiment harness.
type Stats struct {
	Submitted  uint64 // entries accepted for ordering
	Delivered  uint64 // entries delivered in total order
	MaxPending int    // high-water mark of the pending buffer
}

// Order is the ROMP state for one processor group at one processor.
type Order struct {
	self    ids.ProcessorID
	members ids.Membership
	// viewTS is the timestamp at which the current membership took
	// effect; heard values for new members start here.
	viewTS ids.Timestamp
	// heard maps each member to the largest timestamp t such that this
	// processor has received every message from that member with
	// timestamp <= t (contiguity is RMP's and the caller's obligation).
	heard map[ids.ProcessorID]ids.Timestamp
	// acks maps each member to the largest ack timestamp it reported.
	acks map[ids.ProcessorID]ids.Timestamp
	// pending holds ordered-but-not-yet-deliverable entries.
	pending entryHeap
	// lastDelivered is the timestamp of the most recently delivered
	// entry; delivery never goes backwards.
	lastDelivered ids.Timestamp
	// deliverScratch backs the slice Deliverable and FlushThrough return;
	// its contents are valid only until the next drain call.
	deliverScratch []Entry
	// frozen pins the delivery cut: Deliverable and FlushThrough return
	// nothing while set. A wedged minority (PGMP primary partition)
	// freezes its order so no speculative delivery can advance the cut
	// past the last state the primary component shares.
	frozen bool
	// seq is the leader ordering mode state (FTMP 1.3); see seq.go.
	seq   seqState
	stats Stats
}

// New creates the ordering state for one group. The membership is empty
// until SetMembership installs the first view.
func New(self ids.ProcessorID) *Order {
	return &Order{
		self:  self,
		heard: make(map[ids.ProcessorID]ids.Timestamp),
		acks:  make(map[ids.ProcessorID]ids.Timestamp),
	}
}

// Stats returns a snapshot of the layer's counters.
func (o *Order) Stats() Stats { return o.stats }

// Members returns the current membership (shared; do not modify).
func (o *Order) Members() ids.Membership { return o.members }

// ViewTS returns the timestamp of the current view.
func (o *Order) ViewTS() ids.Timestamp { return o.viewTS }

// SetMembership installs a view: the given membership effective at
// viewTS. Survivors keep their heard/ack state; new members start at
// viewTS (they cannot have sent anything earlier into this group);
// departed members are forgotten, unblocking the horizon.
func (o *Order) SetMembership(m ids.Membership, viewTS ids.Timestamp) {
	o.members = m.Clone()
	if viewTS > o.viewTS {
		o.viewTS = viewTS
	}
	for _, p := range m {
		if _, ok := o.heard[p]; !ok {
			o.heard[p] = viewTS
		} else if viewTS > o.heard[p] {
			o.heard[p] = viewTS
		}
		if _, ok := o.acks[p]; !ok {
			o.acks[p] = ids.NilTimestamp
		}
	}
	for p := range o.heard {
		if !m.Contains(p) {
			delete(o.heard, p)
			delete(o.acks, p)
		}
	}
}

// InitJoiner installs the first view at a processor that is joining a
// group with existing history (admitted by AddProcessor). Unlike
// SetMembership, the heard timestamps of the pre-existing members start
// at nil rather than at the view timestamp: the joiner has NOT received
// their earlier traffic yet, and must earn each heard value through
// contiguous reception (including NACK repair of the span between its
// admission cut and the present). Starting them at the view timestamp
// would make the joiner's acknowledgment timestamp overclaim coverage
// it does not have, letting the group stabilize — and discard — the
// very messages the joiner still needs.
func (o *Order) InitJoiner(m ids.Membership, viewTS ids.Timestamp) {
	o.members = m.Clone()
	if viewTS > o.viewTS {
		o.viewTS = viewTS
	}
	for _, p := range m {
		if _, ok := o.heard[p]; !ok {
			o.heard[p] = ids.NilTimestamp
		}
		if _, ok := o.acks[p]; !ok {
			o.acks[p] = ids.NilTimestamp
		}
	}
}

// Submit accepts a reliable message for total ordering. Entries from one
// source must arrive in source order with increasing timestamps; RMP
// guarantees this for network messages and the node guarantees it for
// its own sends. Entries at or below the current view timestamp or
// already-delivered horizon are rejected (stale).
func (o *Order) Submit(e Entry) {
	if o.seq.enabled {
		o.submitSeq(e)
		return
	}
	if e.TS <= o.lastDelivered {
		// A retransmission that raced past stability, or a message from
		// before this processor joined; ordering has moved on.
		return
	}
	if cur, ok := o.heard[e.Source]; !ok || e.TS > cur {
		o.heard[e.Source] = e.TS
	}
	heap.Push(&o.pending, e)
	o.stats.Submitted++
	if len(o.pending) > o.stats.MaxPending {
		o.stats.MaxPending = len(o.pending)
	}
}

// ObserveTimestamp records that source has (contiguously) sent through
// ts and acknowledged through ack. Called for trusted Heartbeat headers
// and piggybacked ack timestamps on every reliable message.
func (o *Order) ObserveTimestamp(source ids.ProcessorID, ts, ack ids.Timestamp) {
	if cur, ok := o.heard[source]; ok && ts > cur {
		o.heard[source] = ts
	} else if !ok {
		// Not (yet) a member: remember nothing; membership changes
		// reinitialize heard at the view timestamp.
		return
	}
	if ack > o.acks[source] {
		o.acks[source] = ack
	}
}

// Horizon returns the delivery horizon: the largest timestamp T such
// that every pending message with timestamp <= T is deliverable. It is
// also this processor's acknowledgment timestamp (paper section 3.2).
// With no members the horizon is nil and nothing is deliverable.
func (o *Order) Horizon() ids.Timestamp {
	if len(o.members) == 0 {
		return ids.NilTimestamp
	}
	min := ids.InfTimestamp
	for _, p := range o.members {
		h := o.heard[p]
		if h < min {
			min = h
		}
	}
	return min
}

// AckTS is the acknowledgment timestamp this processor piggybacks on
// outgoing messages: it has received all messages with timestamps
// <= AckTS from all members of the group.
func (o *Order) AckTS() ids.Timestamp { return o.Horizon() }

// popPending removes and returns the minimum-timestamp pending entry
// without the interface boxing of heap.Pop (an Entry is larger than a
// word, so heap.Pop would heap-allocate every delivery).
func (o *Order) popPending() Entry {
	n := len(o.pending) - 1
	o.pending.Swap(0, n)
	e := o.pending[n]
	o.pending[n] = Entry{} // release the Msg reference
	o.pending = o.pending[:n]
	if n > 0 {
		heap.Fix(&o.pending, 0)
	}
	return e
}

// Freeze pins the delivery cut: no entry is handed up until the order
// is rebuilt (there is deliberately no thaw — a wedged group's state is
// torn down wholesale when the partition heals).
func (o *Order) Freeze() { o.frozen = true }

// Frozen reports whether the delivery cut is pinned.
func (o *Order) Frozen() bool { return o.frozen }

// drainThrough removes and returns, in timestamp order, every pending
// entry with timestamp <= limit, reusing the layer's scratch slice.
func (o *Order) drainThrough(limit ids.Timestamp) []Entry {
	if o.frozen {
		return nil
	}
	out := o.deliverScratch[:0]
	for len(o.pending) > 0 && o.pending[0].TS <= limit {
		e := o.popPending()
		if e.TS <= o.lastDelivered {
			continue // duplicate admitted before lastDelivered advanced
		}
		o.lastDelivered = e.TS
		o.stats.Delivered++
		out = append(out, e)
	}
	o.deliverScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Deliverable removes and returns, in timestamp order, every pending
// entry at or below the horizon. The caller delivers them to PGMP and
// the application. The returned slice is reused: its contents are valid
// only until the next Deliverable or FlushThrough call on this layer.
func (o *Order) Deliverable() []Entry {
	return o.drainThrough(o.Horizon())
}

// FlushThrough removes and returns, in timestamp order, every pending
// entry with timestamp <= limit regardless of the horizon. PGMP uses it
// when installing a new membership after a fault: the survivors have
// equalized their message sets, so everything recovered from the old
// view is delivered before the new view begins. The returned slice is
// valid only until the next Deliverable or FlushThrough call.
func (o *Order) FlushThrough(limit ids.Timestamp) []Entry {
	return o.drainThrough(limit)
}

// MaxPendingTS returns the largest timestamp currently pending, or nil
// if nothing is pending.
func (o *Order) MaxPendingTS() ids.Timestamp {
	max := ids.NilTimestamp
	for _, e := range o.pending {
		if e.TS > max {
			max = e.TS
		}
	}
	return max
}

// StableTS returns the stability horizon: every member has acknowledged
// (directly or via piggyback) all messages with timestamps <= StableTS,
// so buffers holding them can be reclaimed. The local contribution is
// the current horizon.
func (o *Order) StableTS() ids.Timestamp {
	if len(o.members) == 0 {
		return ids.NilTimestamp
	}
	min := o.Horizon()
	for _, p := range o.members {
		if p == o.self {
			continue
		}
		a := o.acks[p]
		if a < min {
			min = a
		}
	}
	return min
}

// PendingCount returns the number of buffered undeliverable entries.
func (o *Order) PendingCount() int { return len(o.pending) }

// LastDelivered returns the timestamp of the most recent delivery.
func (o *Order) LastDelivered() ids.Timestamp { return o.lastDelivered }

// Heard returns the contiguously-heard timestamp for p.
func (o *Order) Heard(p ids.ProcessorID) ids.Timestamp { return o.heard[p] }

// Blockers returns the members whose silence is holding the horizon at
// its current value: those whose heard clock counter equals the minimum
// (the processor tie-break bits are ignored, since two members heard at
// the same logical instant are equally responsible for the stall).
// PGMP consults it to decide who to suspect when delivery stalls.
func (o *Order) Blockers() ids.Membership {
	if len(o.members) == 0 {
		return nil
	}
	h := o.Horizon().Counter()
	var out ids.Membership
	for _, p := range o.members {
		if o.heard[p].Counter() == h {
			out = out.Add(p)
		}
	}
	return out
}

// String summarizes the layer for debugging.
func (o *Order) String() string {
	return fmt.Sprintf("romp(%v, view %v, %d members, %d pending, horizon %v)",
		o.self, o.viewTS, len(o.members), len(o.pending), o.Horizon())
}
