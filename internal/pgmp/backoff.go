package pgmp

import "ftmp/internal/ids"

// backoffDelay computes the retry delay for the given attempt (1-based)
// of a periodic resend: exponential doubling from base capped at max,
// with a deterministic ±jitter fraction derived from seed so retries
// from different connections (or different attempts) decorrelate
// without any global randomness — the pure layers must stay replayable.
// max <= base disables backoff (fixed period, the historical behavior);
// jitter <= 0 disables jitter.
func backoffDelay(base, max int64, jitter float64, attempt int, seed uint64) int64 {
	if base <= 0 {
		return 0
	}
	d := base
	if max > base {
		for i := 1; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
	}
	if jitter > 0 {
		if jitter > 0.9 {
			jitter = 0.9
		}
		h := splitmix64(seed ^ (uint64(attempt) * 0x9e3779b97f4a7c15))
		frac := float64(h>>11) / float64(uint64(1)<<53) // uniform [0,1)
		d = int64(float64(d) * (1 - jitter + 2*jitter*frac))
		if d < 1 {
			d = 1
		}
	}
	return d
}

// splitmix64 is the SplitMix64 mixing function: a cheap, well-dispersed
// hash for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4d049bb133111
	return x ^ (x >> 31)
}

// connSeed folds a ConnectionID into a jitter seed.
func connSeed(c ids.ConnectionID) uint64 {
	return uint64(c.ClientDomain)<<48 ^ uint64(c.ClientGroup)<<32 ^
		uint64(c.ServerDomain)<<16 ^ uint64(c.ServerGroup)
}
