package pgmp

import (
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

var testConn = ids.ConnectionID{ClientDomain: 1, ClientGroup: 10, ServerDomain: 2, ServerGroup: 20}

func newConns() *Connections {
	return NewConnections(ConnConfig{RequestRetry: 100, ConnectResend: 100})
}

func TestRequestOpenAndRetry(t *testing.T) {
	c := newConns()
	req := c.RequestOpen(testConn, ids.NewMembership(1, 2), 0)
	if req.Conn != testConn || !req.Procs.Equal(ids.NewMembership(1, 2)) {
		t.Fatalf("RequestOpen = %+v", req)
	}
	if !c.Waiting(testConn) {
		t.Error("not waiting after RequestOpen")
	}
	if got := c.RequestRetriesDue(50); got != nil {
		t.Error("retry before period")
	}
	got := c.RequestRetriesDue(100)
	if len(got) != 1 || got[0].Conn != testConn {
		t.Fatalf("RequestRetriesDue = %v", got)
	}
	if got := c.RequestRetriesDue(150); got != nil {
		t.Error("retry re-fired early")
	}
}

func TestOnConnectEstablishes(t *testing.T) {
	c := newConns()
	c.RequestOpen(testConn, ids.NewMembership(1), 0)
	m := &wire.Connect{
		Conn:  testConn,
		Group: ids.GroupID(7),
		Addr:  wire.MulticastAddr{IP: [4]byte{239, 0, 0, 1}, Port: 9000},
	}
	st, changed := c.OnConnect(m, ids.MakeTimestamp(10, 2))
	if !changed || !st.Established || st.Group != 7 {
		t.Fatalf("OnConnect = %+v changed=%v", st, changed)
	}
	if c.Waiting(testConn) {
		t.Error("still waiting after Connect")
	}
	if c.RequestRetriesDue(1<<40) != nil {
		t.Error("retries after establishment")
	}
	// Duplicate Connect with an older timestamp: ignored.
	m2 := &wire.Connect{Conn: testConn, Group: ids.GroupID(8)}
	if _, changed := c.OnConnect(m2, ids.MakeTimestamp(5, 2)); changed {
		t.Error("stale Connect applied")
	}
	if c.Lookup(testConn).Group != 7 {
		t.Error("stale Connect overwrote group")
	}
	// A newer Connect re-addresses the connection.
	m3 := &wire.Connect{Conn: testConn, Group: ids.GroupID(9)}
	if _, changed := c.OnConnect(m3, ids.MakeTimestamp(20, 2)); !changed {
		t.Error("re-addressing Connect ignored")
	}
	if c.Lookup(testConn).Group != 9 {
		t.Error("re-addressing did not apply")
	}
}

func TestLookupReverse(t *testing.T) {
	c := newConns()
	c.OnConnect(&wire.Connect{Conn: testConn, Group: 7}, ids.MakeTimestamp(1, 1))
	if c.Lookup(testConn.Reverse()) == nil {
		t.Error("reverse lookup failed")
	}
}

func TestAnnounceResend(t *testing.T) {
	c := newConns()
	c.NoteAnnounce(testConn, []byte("connectmsg"), 0)
	if got := c.AnnounceResendsDue(50); got != nil {
		t.Error("announce resent early")
	}
	got := c.AnnounceResendsDue(100)
	if len(got) != 1 || string(got[0]) != "connectmsg" {
		t.Fatalf("AnnounceResendsDue = %v", got)
	}
	// Traffic on the connection stops the announcements.
	c.TrafficSeen(testConn.Reverse()) // either direction works
	if got := c.AnnounceResendsDue(1 << 40); got != nil {
		t.Error("announce after traffic")
	}
}

func TestAllDeterministic(t *testing.T) {
	c := newConns()
	conn2 := ids.ConnectionID{ClientDomain: 1, ClientGroup: 11, ServerDomain: 2, ServerGroup: 20}
	c.OnConnect(&wire.Connect{Conn: conn2, Group: 2}, ids.MakeTimestamp(1, 1))
	c.OnConnect(&wire.Connect{Conn: testConn, Group: 1}, ids.MakeTimestamp(1, 1))
	all := c.All()
	if len(all) != 2 {
		t.Fatalf("All = %d", len(all))
	}
	if all[0].ID != testConn || all[1].ID != conn2 {
		t.Errorf("All order = %v, %v", all[0].ID, all[1].ID)
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	if c := DefaultConfig(); c.SuspectTimeout <= 0 || c.ProposalResend <= 0 || c.AddResend <= 0 {
		t.Errorf("DefaultConfig = %+v", c)
	}
	if c := DefaultConnConfig(); c.RequestRetry <= 0 || c.ConnectResend <= 0 {
		t.Errorf("DefaultConnConfig = %+v", c)
	}
}
