package pgmp

import (
	"math"
	"testing"

	"ftmp/internal/ids"
)

func adaptiveCfg() Config {
	return Config{
		SuspectTimeout: 100,
		ProposalResend: 50,
		AddResend:      50,
		SuspectPolicy:  SuspectAdaptive,
		AdaptiveK:      4,
		AdaptiveMin:    1,
		AdaptiveMax:    1 << 40,
		AdaptiveWindow: 16,
	}
}

func TestAdaptiveBootstrapUsesFixedTimeout(t *testing.T) {
	g := NewGroup(self, gid, adaptiveCfg())
	g.Install(ids.NewMembership(1, 2), ids.NilTimestamp, 0)
	// No samples yet: the bootstrap threshold is the fixed timeout.
	if got := g.SuspectTimeoutFor(2); got != 100 {
		t.Fatalf("bootstrap timeout = %d, want 100", got)
	}
	// Fewer than adaptiveMinSamples gaps: still bootstrap.
	g.Heard(2, 10)
	g.Heard(2, 20)
	g.Heard(2, 30)
	if got := g.SuspectTimeoutFor(2); got != 100 {
		t.Errorf("timeout with 2 samples = %d, want bootstrap 100", got)
	}
}

func TestAdaptiveTimeoutTracksArrivals(t *testing.T) {
	g := NewGroup(self, gid, adaptiveCfg())
	g.Install(ids.NewMembership(1, 2, 3), ids.NilTimestamp, 0)
	// Member 2: perfectly steady 10-tick heartbeats. Member 3: gaps
	// alternating 5 and 35 (mean 20, stddev 15).
	now := int64(0)
	for i := 1; i <= 8; i++ {
		g.Heard(2, int64(i)*10)
	}
	for i := 0; i < 4; i++ {
		now += 5
		g.Heard(3, now)
		now += 35
		g.Heard(3, now)
	}
	steady := g.SuspectTimeoutFor(2)
	jittery := g.SuspectTimeoutFor(3)
	if steady != 10 { // mean 10, stddev 0
		t.Errorf("steady member timeout = %d, want 10", steady)
	}
	want := int64(20 + 4*15)
	if jittery != want {
		t.Errorf("jittery member timeout = %d, want %d", jittery, want)
	}
	// The detector applies them per member: at silence 50 past the last
	// arrival, the steady member is due but the jittery one is not.
	last2, last3 := int64(80), now
	base := last2
	if last3 > base {
		base = last3
	}
	due := g.DueSuspicions(base + 50)
	// Member 2 last heard at 80; member 3 at `now`. Use a time that is
	// 50 past BOTH, so only the steady member (threshold 10) is due
	// while the jittery one (threshold 80) is not.
	if !due.Contains(2) || due.Contains(3) {
		t.Errorf("DueSuspicions = %v, want {2} only", due)
	}
}

func TestAdaptiveClamps(t *testing.T) {
	cfg := adaptiveCfg()
	cfg.AdaptiveMin = 50
	cfg.AdaptiveMax = 70
	g := NewGroup(self, gid, cfg)
	g.Install(ids.NewMembership(1, 2, 3), ids.NilTimestamp, 0)
	for i := 1; i <= 8; i++ {
		g.Heard(2, int64(i))      // gaps of 1: raw threshold 1 < min
		g.Heard(3, int64(i)*1000) // gaps of 1000: raw threshold > max
	}
	if got := g.SuspectTimeoutFor(2); got != 50 {
		t.Errorf("below-min timeout = %d, want clamped 50", got)
	}
	if got := g.SuspectTimeoutFor(3); got != 70 {
		t.Errorf("above-max timeout = %d, want clamped 70", got)
	}
	// Bootstrap clamps too: SuspectTimeout 100 > max 70.
	if got := g.SuspectTimeoutFor(1); got != 70 {
		t.Errorf("bootstrap clamp = %d, want 70", got)
	}
}

func TestFixedPolicyUnchanged(t *testing.T) {
	g := newGroup(1, 2)
	for i := 1; i <= 20; i++ {
		g.Heard(2, int64(i))
	}
	if got := g.SuspectTimeoutFor(2); got != 100 {
		t.Errorf("fixed policy timeout = %d, want SuspectTimeout 100", got)
	}
}

func TestArrivalTrackerWindowEviction(t *testing.T) {
	tr := newArrivalTracker(4)
	for _, gap := range []int64{100, 200, 300, 400, 500, 600} {
		tr.observe(gap)
	}
	// Window holds {300,400,500,600}: mean 450, stddev sqrt(12500).
	mean := 450.0
	std := math.Sqrt(12500)
	want := int64(mean + 2*std)
	if got := tr.threshold(2); got != want {
		t.Errorf("threshold = %d, want %d", got, want)
	}
	if tr.count != 4 {
		t.Errorf("count = %d, want 4", tr.count)
	}
}

func TestBackoffDelayFixedWhenNoMax(t *testing.T) {
	for attempt := 1; attempt <= 5; attempt++ {
		if d := backoffDelay(20, 0, 0, attempt, 7); d != 20 {
			t.Fatalf("attempt %d: delay %d, want fixed 20", attempt, d)
		}
	}
}

func TestBackoffDelayExponentialCapped(t *testing.T) {
	want := []int64{20, 40, 80, 160, 200, 200}
	for i, w := range want {
		if d := backoffDelay(20, 200, 0, i+1, 7); d != w {
			t.Errorf("attempt %d: delay %d, want %d", i+1, d, w)
		}
	}
}

func TestBackoffDelayJitterDeterministicAndBounded(t *testing.T) {
	const base, max = 1000, 100_000
	for attempt := 1; attempt <= 6; attempt++ {
		a := backoffDelay(base, max, 0.25, attempt, 42)
		b := backoffDelay(base, max, 0.25, attempt, 42)
		if a != b {
			t.Fatalf("jitter nondeterministic: %d vs %d", a, b)
		}
		raw := backoffDelay(base, max, 0, attempt, 42)
		lo, hi := raw*3/4, raw*5/4
		if a < lo || a > hi {
			t.Errorf("attempt %d: jittered %d outside [%d,%d]", attempt, a, lo, hi)
		}
	}
	// Different seeds decorrelate (at least one attempt differs).
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if backoffDelay(base, max, 0.25, attempt, 1) != backoffDelay(base, max, 0.25, attempt, 2) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical jitter on every attempt")
	}
}

func TestConnectRequestBackoffAndAttempts(t *testing.T) {
	c := NewConnections(ConnConfig{
		RequestRetry:    20,
		RequestRetryMax: 100,
		ConnectResend:   20,
	})
	conn := ids.ConnectionID{ClientDomain: 1, ClientGroup: 2, ServerDomain: 1, ServerGroup: 3}
	c.RequestOpen(conn, ids.NewMembership(1), 0)
	if got := c.Attempts(conn); got != 1 {
		t.Fatalf("attempts after open = %d, want 1", got)
	}
	// First retry at 20, then the gap doubles: 40, 80, 100 (cap).
	times := []int64{20, 60, 140, 240, 340}
	for i, at := range times {
		if got := c.RequestRetriesDue(at - 1); got != nil {
			t.Fatalf("retry %d fired early at %d", i, at-1)
		}
		got := c.RequestRetriesDue(at)
		if len(got) != 1 {
			t.Fatalf("retry %d missing at %d", i, at)
		}
	}
	if got := c.Attempts(conn); got != 1+len(times) {
		t.Errorf("attempts = %d, want %d", got, 1+len(times))
	}
}

func TestAddResendBackoff(t *testing.T) {
	cfg := cfg()
	cfg.AddResendMax = 200
	g := NewGroup(self, gid, cfg)
	g.Install(ids.NewMembership(1, 2), ids.NilTimestamp, 0)
	g.NoteAddProposed(3, []byte("add"), 0)
	if !g.HasPendingAdd(3) {
		t.Fatal("HasPendingAdd = false after NoteAddProposed")
	}
	// AddResend 50, cap 200: resends at 50, then +100, +200, +200.
	times := []int64{50, 150, 350, 550}
	for i, at := range times {
		if got := g.AddResendsDue(at - 1); got != nil {
			t.Fatalf("resend %d fired early", i)
		}
		if got := g.AddResendsDue(at); len(got) != 1 {
			t.Fatalf("resend %d missing at %d", i, at)
		}
	}
	g.Heard(3, 600)
	if g.HasPendingAdd(3) {
		t.Error("pending add survived Heard")
	}
}
