package pgmp

import (
	"sort"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// ConnConfig holds connection-establishment policy, in nanoseconds.
type ConnConfig struct {
	// RequestRetry is the period at which a client re-multicasts its
	// ConnectRequest until the server answers with a Connect (paper
	// section 7: "the client fault tolerance infrastructure retransmits
	// the ConnectRequest message periodically").
	RequestRetry int64
	// RequestRetryMax, when larger than RequestRetry, enables
	// exponential backoff of the retries from RequestRetry up to this
	// cap — a rejoining processor probing for a group that may take a
	// while to readmit it should not flood the domain address. Zero
	// keeps the fixed period.
	RequestRetryMax int64
	// RequestRetryJitter, in (0,1), spreads backed-off retries by a
	// deterministic ± fraction so simultaneous rejoiners decorrelate.
	RequestRetryJitter float64
	// ConnectResend is the period at which the server group re-multicasts
	// a Connect until it receives traffic on the new connection (paper:
	// "the server processor group retransmits the Connect message
	// periodically ... until it receives messages over the new
	// connection").
	ConnectResend int64
}

// DefaultConnConfig matches the experiment defaults.
func DefaultConnConfig() ConnConfig {
	return ConnConfig{RequestRetry: 20_000_000, ConnectResend: 20_000_000}
}

// ConnState describes one logical connection as known locally.
type ConnState struct {
	ID ids.ConnectionID
	// Group and Addr are the processor group and multicast address
	// carrying the connection.
	Group ids.GroupID
	Addr  wire.MulticastAddr
	// ConnectTS is the timestamp of the Connect message that configured
	// the connection; messages on a superseded address with larger
	// timestamps are ignored (paper section 7, Connect).
	ConnectTS ids.Timestamp
	// Established reports whether traffic may flow.
	Established bool
}

type clientPending struct {
	conn      ids.ConnectionID
	procs     ids.Membership
	nextRetry int64
	attempt   int
}

type serverPending struct {
	raw        []byte // encoded Connect, re-multicast until traffic flows
	nextResend int64
}

// Connections tracks the logical connections of one processor, on both
// the client and the server side.
type Connections struct {
	cfg   ConnConfig
	conns map[ids.ConnectionID]*ConnState
	// clientWaiting holds connections this processor requested and has
	// not yet seen a Connect for.
	clientWaiting map[ids.ConnectionID]*clientPending
	// serverAnnouncing holds Connects this processor (as a server group
	// member) keeps re-multicasting until client traffic arrives.
	serverAnnouncing map[ids.ConnectionID]*serverPending
	// attempts counts ConnectRequest transmissions per connection,
	// surviving establishment so callers can assert on how many retries
	// an open took.
	attempts map[ids.ConnectionID]int
}

// NewConnections creates an empty connection table.
func NewConnections(cfg ConnConfig) *Connections {
	return &Connections{
		cfg:              cfg,
		conns:            make(map[ids.ConnectionID]*ConnState),
		clientWaiting:    make(map[ids.ConnectionID]*clientPending),
		serverAnnouncing: make(map[ids.ConnectionID]*serverPending),
		attempts:         make(map[ids.ConnectionID]int),
	}
}

// Lookup returns the state for conn, or nil if unknown. Both directions
// of the connection map to the same state.
func (c *Connections) Lookup(conn ids.ConnectionID) *ConnState {
	if st, ok := c.conns[conn]; ok {
		return st
	}
	return c.conns[conn.Reverse()]
}

// RequestOpen registers a client-side connection attempt and returns the
// ConnectRequest body to multicast to the server domain's address. The
// request is re-issued by RequestRetriesDue until OnConnect succeeds.
func (c *Connections) RequestOpen(conn ids.ConnectionID, procs ids.Membership, now int64) *wire.ConnectRequest {
	c.clientWaiting[conn] = &clientPending{
		conn:      conn,
		procs:     procs.Clone(),
		nextRetry: now + c.cfg.RequestRetry,
		attempt:   1,
	}
	c.attempts[conn]++
	return &wire.ConnectRequest{Conn: conn, Procs: procs.Clone()}
}

// RequestRetriesDue returns the ConnectRequest bodies due for re-multicast.
func (c *Connections) RequestRetriesDue(now int64) []*wire.ConnectRequest {
	keys := make([]ids.ConnectionID, 0, len(c.clientWaiting))
	for k := range c.clientWaiting {
		keys = append(keys, k)
	}
	sortConnIDs(keys)
	var out []*wire.ConnectRequest
	for _, k := range keys {
		p := c.clientWaiting[k]
		if now >= p.nextRetry {
			p.attempt++
			c.attempts[k]++
			p.nextRetry = now + backoffDelay(c.cfg.RequestRetry, c.cfg.RequestRetryMax,
				c.cfg.RequestRetryJitter, p.attempt, connSeed(k))
			out = append(out, &wire.ConnectRequest{Conn: p.conn, Procs: p.procs.Clone()})
			trace.Inc("pgmp.connect_retries")
		}
	}
	return out
}

// Attempts returns how many ConnectRequest transmissions (initial plus
// retries) this processor has made for conn, including after it
// established.
func (c *Connections) Attempts(conn ids.ConnectionID) int {
	return c.attempts[conn] + c.attempts[conn.Reverse()]
}

// OnConnect applies a Connect message (on either side). It returns the
// resulting state and whether the message changed anything; a duplicate
// Connect for an already-configured connection is ignored (paper: "the
// server should ignore such requests" and duplicate Connects are
// suppressed by timestamp).
func (c *Connections) OnConnect(m *wire.Connect, ts ids.Timestamp) (*ConnState, bool) {
	key := m.Conn
	st := c.Lookup(key)
	if st == nil {
		st = &ConnState{ID: key}
		c.conns[key] = st
	}
	if st.Established && ts <= st.ConnectTS {
		return st, false
	}
	st.Group = m.Group
	st.Addr = m.Addr
	st.ConnectTS = ts
	st.Established = true
	delete(c.clientWaiting, key)
	delete(c.clientWaiting, key.Reverse())
	return st, true
}

// Adopt registers an established connection this processor learned
// out-of-band: the fault tolerance infrastructure tells a replica that
// joined the processor group after the Connect was ordered which
// connection the group carries (the Connect itself predates the
// member's admission cut and is never redelivered).
func (c *Connections) Adopt(conn ids.ConnectionID, group ids.GroupID, addr wire.MulticastAddr) *ConnState {
	if st := c.Lookup(conn); st != nil && st.Established {
		return st
	}
	st := &ConnState{ID: conn, Group: group, Addr: addr, Established: true}
	c.conns[conn] = st
	delete(c.clientWaiting, conn)
	delete(c.clientWaiting, conn.Reverse())
	return st
}

// Reopen reverts conn to the client-waiting state: the processor was
// expelled from the group carrying the connection (typically a rejoin
// admitted on a stale cut and undone by an intervening recovery round)
// and must probe for re-admission again. The cumulative attempt counter
// is preserved so retry budgets span the whole rejoin; the backoff
// schedule restarts from the base period for the new probing phase.
func (c *Connections) Reopen(conn ids.ConnectionID, procs ids.Membership, now int64) *wire.ConnectRequest {
	delete(c.conns, conn)
	delete(c.conns, conn.Reverse())
	delete(c.serverAnnouncing, conn)
	delete(c.serverAnnouncing, conn.Reverse())
	return c.RequestOpen(conn, procs, now)
}

// NoteAnnounce records that this server-group member must re-multicast
// the encoded Connect until traffic arrives on the connection.
func (c *Connections) NoteAnnounce(conn ids.ConnectionID, raw []byte, now int64) {
	c.serverAnnouncing[conn] = &serverPending{raw: raw, nextResend: now + c.cfg.ConnectResend}
}

// AnnounceResendsDue returns encoded Connect messages due for re-multicast.
func (c *Connections) AnnounceResendsDue(now int64) [][]byte {
	keys := make([]ids.ConnectionID, 0, len(c.serverAnnouncing))
	for k := range c.serverAnnouncing {
		keys = append(keys, k)
	}
	sortConnIDs(keys)
	var out [][]byte
	for _, k := range keys {
		p := c.serverAnnouncing[k]
		if now >= p.nextResend {
			p.nextResend = now + c.cfg.ConnectResend
			out = append(out, p.raw)
		}
	}
	return out
}

// TrafficSeen stops the server-side Connect re-multicast for conn.
func (c *Connections) TrafficSeen(conn ids.ConnectionID) {
	delete(c.serverAnnouncing, conn)
	delete(c.serverAnnouncing, conn.Reverse())
}

// Waiting reports whether a client-side open is still unanswered.
func (c *Connections) Waiting(conn ids.ConnectionID) bool {
	_, ok := c.clientWaiting[conn]
	return ok
}

// All returns every known connection state, ordered deterministically.
func (c *Connections) All() []*ConnState {
	keys := make([]ids.ConnectionID, 0, len(c.conns))
	for k := range c.conns {
		keys = append(keys, k)
	}
	sortConnIDs(keys)
	out := make([]*ConnState, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.conns[k])
	}
	return out
}

func sortConnIDs(ks []ids.ConnectionID) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		switch {
		case a.ClientDomain != b.ClientDomain:
			return a.ClientDomain < b.ClientDomain
		case a.ClientGroup != b.ClientGroup:
			return a.ClientGroup < b.ClientGroup
		case a.ServerDomain != b.ServerDomain:
			return a.ServerDomain < b.ServerDomain
		default:
			return a.ServerGroup < b.ServerGroup
		}
	})
}
