package pgmp

import (
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

const (
	self  = ids.ProcessorID(1)
	gid   = ids.GroupID(10)
	msSec = int64(1_000_000_000)
)

func cfg() Config {
	return Config{SuspectTimeout: 100, ProposalResend: 50, AddResend: 50}
}

func newGroup(members ...ids.ProcessorID) *Group {
	g := NewGroup(self, gid, cfg())
	g.Install(ids.NewMembership(members...), ids.NilTimestamp, 0)
	return g
}

func seqsOf(pairs ...any) wire.SeqVector {
	var v wire.SeqVector
	for i := 0; i < len(pairs); i += 2 {
		v = append(v, wire.SeqEntry{
			Proc: ids.ProcessorID(pairs[i].(int)),
			Seq:  ids.SeqNum(pairs[i+1].(int)),
		})
	}
	return v
}

func TestDueSuspicionsAfterTimeout(t *testing.T) {
	g := newGroup(1, 2, 3)
	g.Heard(2, 50)
	// At t=120: member 3 silent since 0 (>100), member 2 heard at 50.
	due := g.DueSuspicions(120)
	if !due.Equal(ids.NewMembership(3)) {
		t.Fatalf("DueSuspicions = %v, want {3}", due)
	}
	// Marked self-suspected only after RecordSuspicion of own Suspect.
	g.RecordSuspicion(self, due)
	if got := g.DueSuspicions(121); got != nil {
		t.Errorf("re-suspected: %v", got)
	}
	// Member 2 eventually times out too.
	due = g.DueSuspicions(200)
	if !due.Equal(ids.NewMembership(2)) {
		t.Errorf("DueSuspicions(200) = %v", due)
	}
}

func TestSelfNeverSuspected(t *testing.T) {
	g := newGroup(1, 2)
	due := g.DueSuspicions(1 << 40)
	if due.Contains(self) {
		t.Error("suspected self")
	}
}

func TestConvictionByMajority(t *testing.T) {
	g := newGroup(1, 2, 3, 4, 5)
	// Nobody convicted by a single suspicion: voters = 5 minus the
	// suspected member... suspicion from 2 of member 5.
	if got := g.RecordSuspicion(2, ids.NewMembership(5)); got != nil {
		t.Fatalf("convicted on one vote: %v", got)
	}
	if got := g.RecordSuspicion(3, ids.NewMembership(5)); got != nil {
		t.Fatalf("convicted on two votes: %v", got)
	}
	// Third vote: self suspects 5 too, so voters = {1,2,3,4}, threshold 3.
	got := g.RecordSuspicion(self, ids.NewMembership(5))
	if !got.Equal(ids.NewMembership(5)) {
		t.Fatalf("conviction missing: %v (convicted=%v)", got, g.Convicted())
	}
	if !g.Convicted().Equal(ids.NewMembership(5)) {
		t.Errorf("Convicted = %v", g.Convicted())
	}
	// Conviction is monotone: repeated votes don't re-convict.
	if got := g.RecordSuspicion(4, ids.NewMembership(5)); got != nil {
		t.Errorf("re-convicted: %v", got)
	}
}

func TestTwoNodeConviction(t *testing.T) {
	// n=2: once self suspects the peer, voters = {self}, threshold 1.
	g := newGroup(1, 2)
	got := g.RecordSuspicion(self, ids.NewMembership(2))
	if !got.Equal(ids.NewMembership(2)) {
		t.Fatalf("two-node conviction failed: %v", got)
	}
}

func TestSuspicionFromNonMemberIgnored(t *testing.T) {
	g := newGroup(1, 2)
	if got := g.RecordSuspicion(ids.ProcessorID(9), ids.NewMembership(2)); got != nil {
		t.Errorf("non-member suspicion convicted: %v", got)
	}
	if got := g.RecordSuspicion(2, ids.NewMembership(9)); got != nil {
		t.Errorf("suspicion of non-member convicted: %v", got)
	}
}

func TestRecoveryRoundLifecycle(t *testing.T) {
	g := newGroup(1, 2, 3)
	// Convict 3 (self + 2 suspect it; voters {1,2}, threshold 2).
	g.RecordSuspicion(self, ids.NewMembership(3))
	newly := g.RecordSuspicion(2, ids.NewMembership(3))
	if !newly.Equal(ids.NewMembership(3)) {
		t.Fatalf("conviction failed: %v", newly)
	}
	if !g.NeedRound() {
		t.Fatal("NeedRound = false after conviction")
	}
	prop := g.StartRound(seqsOf(1, 5, 2, 7, 3, 2), 1000)
	if !prop.NewMembership.Equal(ids.NewMembership(1, 2)) {
		t.Fatalf("proposal membership = %v", prop.NewMembership)
	}
	if g.NeedRound() {
		t.Error("NeedRound = true right after StartRound")
	}
	if !g.InRecovery() {
		t.Error("InRecovery = false")
	}

	// Not ready: no proposal from 2 yet.
	have := map[ids.ProcessorID]ids.SeqNum{1: 5, 2: 7, 3: 2}
	contig := func(p ids.ProcessorID) ids.SeqNum { return have[p] }
	if g.ReadyToInstall(contig) {
		t.Fatal("ready without peer proposal")
	}

	// Peer 2 proposes the same membership but cites a higher seq for 3.
	g.OnProposal(2, &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3),
		CurrentSeqs:       seqsOf(1, 5, 2, 7, 3, 4),
		NewMembership:     ids.NewMembership(1, 2),
	})
	if g.ReadyToInstall(contig) {
		t.Fatal("ready while missing messages 3,4 from processor 3")
	}
	needs := g.RecoveryNeeds(contig)
	if len(needs) != 1 || needs[0].Proc != 3 || needs[0].StartSeq != 3 || needs[0].StopSeq != 4 {
		t.Fatalf("RecoveryNeeds = %+v", needs)
	}
	// Recover them.
	have[3] = 4
	if !g.ReadyToInstall(contig) {
		t.Fatal("not ready after recovery")
	}
	newM, maxSeqs := g.RoundResult()
	if !newM.Equal(ids.NewMembership(1, 2)) || maxSeqs[3] != 4 {
		t.Fatalf("RoundResult = %v, %v", newM, maxSeqs)
	}
	g.Install(newM, ids.MakeTimestamp(99, 1), 2000)
	if g.InRecovery() || g.Convicted() != nil {
		t.Error("round state not cleared by Install")
	}
	if !g.Members().Equal(ids.NewMembership(1, 2)) {
		t.Errorf("Members = %v", g.Members())
	}
}

func TestProposalImpliesSuspicion(t *testing.T) {
	g := newGroup(1, 2, 3)
	// Self already suspects 3; a proposal from 2 excluding 3 is 2's vote.
	g.RecordSuspicion(self, ids.NewMembership(3))
	newly := g.OnProposal(2, &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3),
		CurrentSeqs:       seqsOf(1, 0, 2, 0, 3, 0),
		NewMembership:     ids.NewMembership(1, 2),
	})
	if !newly.Equal(ids.NewMembership(3)) {
		t.Fatalf("implied suspicion did not convict: %v", newly)
	}
}

func TestRoundRestartOnFurtherConviction(t *testing.T) {
	g := newGroup(1, 2, 3, 4)
	// Convict 4: self+2 suspect (voters {1,2,3}, threshold 2).
	g.RecordSuspicion(self, ids.NewMembership(4))
	g.RecordSuspicion(2, ids.NewMembership(4))
	g.StartRound(seqsOf(1, 0, 2, 0, 3, 0, 4, 0), 0)
	// Now 3 crashes as well during recovery.
	g.RecordSuspicion(self, ids.NewMembership(3))
	g.RecordSuspicion(2, ids.NewMembership(3))
	if !g.NeedRound() {
		t.Fatal("NeedRound = false after second conviction")
	}
	prop := g.StartRound(seqsOf(1, 0, 2, 0, 3, 0, 4, 0), 10)
	if !prop.NewMembership.Equal(ids.NewMembership(1, 2)) {
		t.Errorf("restarted proposal = %v", prop.NewMembership)
	}
}

func TestStaleProposalDifferentMembershipIgnoredForRound(t *testing.T) {
	g := newGroup(1, 2, 3)
	g.RecordSuspicion(self, ids.NewMembership(3))
	g.RecordSuspicion(2, ids.NewMembership(3))
	g.StartRound(seqsOf(1, 1, 2, 1, 3, 1), 0)
	// A proposal with a different target doesn't count toward this round.
	g.OnProposal(2, &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3),
		CurrentSeqs:       seqsOf(1, 9, 2, 9, 3, 9),
		NewMembership:     ids.NewMembership(1),
	})
	contig := func(ids.ProcessorID) ids.SeqNum { return 9 }
	if g.ReadyToInstall(contig) {
		t.Error("mismatched proposal satisfied the round")
	}
}

func TestResendDue(t *testing.T) {
	g := newGroup(1, 2)
	g.RecordSuspicion(self, ids.NewMembership(2))
	g.StartRound(seqsOf(1, 0, 2, 0), 0)
	if g.ResendDue(49) {
		t.Error("resend before period")
	}
	if !g.ResendDue(50) {
		t.Error("resend not due at period")
	}
	if g.ResendDue(60) {
		t.Error("resend immediately again")
	}
	if !g.ResendDue(100) {
		t.Error("second resend not due")
	}
	g2 := newGroup(1, 2)
	if g2.ResendDue(1000) {
		t.Error("resend due with no round")
	}
}

func TestHeardClearsPendingAdd(t *testing.T) {
	g := newGroup(1, 2)
	g.NoteAddProposed(3, []byte("addmsg"), 0)
	if got := g.AddResendsDue(50); len(got) != 1 || string(got[0]) != "addmsg" {
		t.Fatalf("AddResendsDue = %v", got)
	}
	if got := g.AddResendsDue(60); got != nil {
		t.Error("resent before period elapsed")
	}
	// New member speaks: resend stops. (Heard also works for
	// not-yet-members.)
	g.Heard(3, 70)
	if got := g.AddResendsDue(1000); got != nil {
		t.Error("resend after member heard")
	}
}

func TestInstallPrunesState(t *testing.T) {
	g := newGroup(1, 2, 3)
	g.RecordSuspicion(2, ids.NewMembership(3))
	g.Install(ids.NewMembership(1, 2), ids.MakeTimestamp(5, 1), 100)
	if g.SuspectedOrConvicted(3) {
		t.Error("suspicion of departed member survived install")
	}
	if g.ViewTS() != ids.MakeTimestamp(5, 1) {
		t.Errorf("ViewTS = %v", g.ViewTS())
	}
	// viewTS never regresses.
	g.Install(ids.NewMembership(1, 2), ids.MakeTimestamp(3, 1), 200)
	if g.ViewTS() != ids.MakeTimestamp(5, 1) {
		t.Errorf("ViewTS regressed: %v", g.ViewTS())
	}
}

func TestSuspectedOrConvicted(t *testing.T) {
	g := newGroup(1, 2, 3)
	if g.SuspectedOrConvicted(2) {
		t.Error("fresh member flagged")
	}
	g.RecordSuspicion(3, ids.NewMembership(2))
	if !g.SuspectedOrConvicted(2) {
		t.Error("suspected member not flagged")
	}
}

func TestStatsCounts(t *testing.T) {
	g := newGroup(1, 2)
	g.DueSuspicions(1 << 40)
	g.RecordSuspicion(self, ids.NewMembership(2))
	g.StartRound(seqsOf(1, 0, 2, 0), 0)
	g.ResendDue(1 << 40)
	st := g.Stats()
	if st.SuspectsRaised != 1 || st.Convictions != 1 || st.RoundsStarted != 1 || st.ProposalResends != 1 || st.ViewsInstalled != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestStringer(t *testing.T) {
	if newGroup(1, 2).String() == "" {
		t.Error("empty String()")
	}
}

func TestProposalBeforeConvictionIsNotLost(t *testing.T) {
	// Regression: peers can convict, propose, install the new view and
	// go quiet before this processor has gathered enough suspicions to
	// start its own round. Their proposals must be stashed and replayed
	// when the round finally starts, or this processor waits forever.
	g := newGroup(1, 2, 3, 4)
	proposal := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3, 4),
		CurrentSeqs:       seqsOf(1, 5, 2, 5, 3, 5, 4, 9),
		NewMembership:     ids.NewMembership(1, 2, 3),
	}
	// Proposals from 2 and 3 arrive first; each is one implied
	// suspicion vote against 4, but conviction needs majority of the
	// unsuspected membership ({1,2,3,4}, threshold 3).
	if got := g.OnProposal(2, proposal); got != nil {
		t.Fatalf("convicted too early: %v", got)
	}
	g.OnProposal(3, proposal)
	// Now this processor's own timeout fires: conviction and round.
	newly := g.RecordSuspicion(1, ids.NewMembership(4))
	if !newly.Equal(ids.NewMembership(4)) {
		t.Fatalf("conviction = %v", newly)
	}
	if !g.NeedRound() {
		t.Fatal("no round needed")
	}
	g.StartRound(seqsOf(1, 5, 2, 5, 3, 5, 4, 7), 0)
	// The stashed proposals must already count, including their higher
	// cited sequence number for processor 4.
	contig := func(p ids.ProcessorID) ids.SeqNum {
		if p == 4 {
			return 9
		}
		return 5
	}
	if !g.ReadyToInstall(contig) {
		t.Fatal("stashed proposals were lost (round cannot complete)")
	}
	_, maxSeqs := g.RoundResult()
	if maxSeqs[4] != 9 {
		t.Errorf("stashed sequence vector not merged: maxSeqs[4] = %d", maxSeqs[4])
	}
}

func TestStashClearedOnInstall(t *testing.T) {
	g := newGroup(1, 2, 3)
	stale := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3),
		CurrentSeqs:       seqsOf(1, 0, 2, 0, 3, 0),
		NewMembership:     ids.NewMembership(1, 2),
	}
	g.OnProposal(2, stale)
	g.Install(ids.NewMembership(1, 2, 3), ids.MakeTimestamp(9, 1), 0)
	// A new round for a different target must not absorb the stale
	// agreement.
	g.RecordSuspicion(1, ids.NewMembership(2))
	g.RecordSuspicion(3, ids.NewMembership(2))
	g.StartRound(seqsOf(1, 0, 2, 0, 3, 0), 0)
	contig := func(ids.ProcessorID) ids.SeqNum { return 0 }
	// Round target is {1,3}; member 3 has not proposed yet.
	if g.ReadyToInstall(contig) {
		t.Fatal("stale stash satisfied a new round")
	}
}

func TestConvictionFractionTunable(t *testing.T) {
	// A lower fraction convicts on fewer accusations (paper section 7.2:
	// "heuristic algorithms to increase the accuracy of the processor
	// fault detectors" — the quorum is the tunable here).
	g := NewGroup(self, gid, Config{
		SuspectTimeout: 100, ProposalResend: 50, AddResend: 50,
		ConvictionFraction: 0.25,
	})
	g.Install(ids.NewMembership(1, 2, 3, 4, 5, 6, 7, 8), ids.NilTimestamp, 0)
	// voters = 8, threshold = 8/4+1 = 3.
	g.RecordSuspicion(2, ids.NewMembership(8))
	if got := g.RecordSuspicion(3, ids.NewMembership(8)); got != nil {
		t.Fatalf("convicted below quorum: %v", got)
	}
	if got := g.RecordSuspicion(4, ids.NewMembership(8)); !got.Equal(ids.NewMembership(8)) {
		t.Fatalf("quarter-quorum conviction failed: %v", got)
	}
}
