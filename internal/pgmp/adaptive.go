package pgmp

import (
	"math"

	"ftmp/internal/ids"
)

// SuspectPolicy selects how the silence threshold that triggers a
// suspicion is chosen.
type SuspectPolicy int

const (
	// SuspectFixed uses Config.SuspectTimeout for every member — the
	// paper's constant-timeout detector and the historical default.
	SuspectFixed SuspectPolicy = iota
	// SuspectAdaptive derives a per-member timeout from the observed
	// inter-arrival history of that member's traffic: mean + k·stddev,
	// clamped to [AdaptiveMin, AdaptiveMax]. Members whose heartbeats
	// arrive steadily are convicted quickly; members on jittery paths
	// earn proportionally more slack, eliminating the false convictions
	// a fixed timeout produces under jitter.
	SuspectAdaptive
)

// Adaptive-detector defaults, applied when the corresponding Config
// field is zero.
const (
	defaultAdaptiveK      = 4.0
	defaultAdaptiveMin    = 25_000_000    // 25ms
	defaultAdaptiveMax    = 1_000_000_000 // 1s
	defaultAdaptiveWindow = 64
	// adaptiveMinSamples is how many inter-arrival gaps must be observed
	// before the estimate is trusted; below it the detector stays at the
	// conservative bootstrap timeout so a freshly-admitted member is not
	// convicted off two data points.
	adaptiveMinSamples = 4
)

// arrivalTracker keeps a sliding window of inter-arrival gaps for one
// member with O(1) mean/stddev via running sums.
type arrivalTracker struct {
	gaps  []int64
	next  int
	count int
	sum   float64
	sumsq float64
}

func newArrivalTracker(window int) *arrivalTracker {
	if window <= 0 {
		window = defaultAdaptiveWindow
	}
	return &arrivalTracker{gaps: make([]int64, window)}
}

// observe records one inter-arrival gap, evicting the oldest once the
// window is full.
func (a *arrivalTracker) observe(gap int64) {
	if a.count == len(a.gaps) {
		old := float64(a.gaps[a.next])
		a.sum -= old
		a.sumsq -= old * old
	} else {
		a.count++
	}
	a.gaps[a.next] = gap
	g := float64(gap)
	a.sum += g
	a.sumsq += g * g
	a.next = (a.next + 1) % len(a.gaps)
}

// threshold returns mean + k·stddev over the window. Valid only when
// count > 0; the variance is floored at zero against float cancellation.
func (a *arrivalTracker) threshold(k float64) int64 {
	n := float64(a.count)
	mean := a.sum / n
	variance := a.sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return int64(mean + k*math.Sqrt(variance))
}

// observeArrival feeds the adaptive tracker for member p; gap is the
// silence since the previous traffic from p. Zero gaps (several packets
// in one tick) carry no timing information and are skipped.
func (g *Group) observeArrival(p ids.ProcessorID, gap int64) {
	if gap <= 0 {
		return
	}
	tr := g.arrivals[p]
	if tr == nil {
		tr = newArrivalTracker(g.cfg.AdaptiveWindow)
		g.arrivals[p] = tr
	}
	tr.observe(gap)
}

// SuspectTimeoutFor returns the silence threshold currently applied to
// member p: Config.SuspectTimeout under the fixed policy, the clamped
// adaptive estimate otherwise. Exposed for experiments and operator
// status output.
func (g *Group) SuspectTimeoutFor(p ids.ProcessorID) int64 {
	if g.cfg.SuspectPolicy != SuspectAdaptive {
		return g.cfg.SuspectTimeout
	}
	min, max := g.cfg.AdaptiveMin, g.cfg.AdaptiveMax
	if min <= 0 {
		min = defaultAdaptiveMin
	}
	if max < min {
		max = defaultAdaptiveMax
		if max < min {
			max = min
		}
	}
	tr := g.arrivals[p]
	if tr == nil || tr.count < adaptiveMinSamples {
		// Bootstrap: too little history to estimate. Use the fixed
		// timeout, clamped into the adaptive band so a misconfigured
		// SuspectTimeout cannot undercut AdaptiveMin.
		return clamp(g.cfg.SuspectTimeout, min, max)
	}
	k := g.cfg.AdaptiveK
	if k <= 0 {
		k = defaultAdaptiveK
	}
	return clamp(tr.threshold(k), min, max)
}

func clamp(v, min, max int64) int64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}
