// Package pgmp implements the Processor Group Membership Protocol layer
// of FTMP (paper section 7): logical connection establishment between
// object groups, planned addition and removal of non-faulty processors,
// and fault-driven membership change via Suspect and Membership messages
// while preserving virtual synchrony.
//
// Like the other layers, pgmp is a pure state machine: the FTMP node
// (package core) feeds it events and transmits the messages it asks for.
//
// Fault-driven changes follow the paper's outline with these concrete
// rules (see DESIGN.md section 3):
//
//   - A member silent for Config.SuspectTimeout is suspected; the
//     suspicion is multicast in a Suspect message (reliable, source
//     ordered), so every member eventually sees the same suspicion
//     matrix.
//   - A processor is convicted when more than half of the unsuspected
//     membership suspects it.
//   - Conviction starts a recovery round: every survivor multicasts a
//     Membership message carrying its contiguously-received sequence
//     numbers and the proposed membership. Survivors repair their
//     message sets up to the elementwise maximum of all cited vectors
//     (requesting retransmissions from any holder), and install the new
//     membership once agreeing proposals from every proposed member have
//     arrived and the repair is complete — at which point every survivor
//     has received exactly the same messages from the old membership,
//     the paper's virtual synchrony condition.
package pgmp

import (
	"fmt"
	"sort"

	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Config holds the PGMP policy knobs, in nanoseconds.
type Config struct {
	// SuspectTimeout is how long a member may be silent (no Regular or
	// Heartbeat traffic) before this processor suspects it. Under
	// SuspectAdaptive it is only the bootstrap value used until enough
	// inter-arrival history accumulates.
	SuspectTimeout int64
	// SuspectPolicy selects the fixed or adaptive detector; the zero
	// value is SuspectFixed (the historical behavior).
	SuspectPolicy SuspectPolicy
	// AdaptiveK scales the stddev term of the adaptive threshold
	// (mean + k·stddev). Zero selects the default of 4.
	AdaptiveK float64
	// AdaptiveMin and AdaptiveMax clamp the adaptive threshold; zero
	// selects 25ms and 1s respectively.
	AdaptiveMin int64
	AdaptiveMax int64
	// AdaptiveWindow is the number of inter-arrival samples retained per
	// member; zero selects 64.
	AdaptiveWindow int
	// ProposalResend is the period at which an unfinished recovery
	// round re-multicasts its Membership proposal, covering proposals
	// lost before a new member of the round could NACK them.
	ProposalResend int64
	// AddResend is the period at which the proposer of an AddProcessor
	// re-multicasts it until the new member is heard from, covering the
	// unreliable delivery to the new member (paper Figure 3).
	AddResend int64
	// AddResendMax, when larger than AddResend, enables exponential
	// backoff of AddProcessor resends from AddResend up to this cap, so
	// a proposer does not hammer the network while a slow joiner boots.
	// Zero keeps the fixed period.
	AddResendMax int64
	// AddResendJitter, in (0,1), spreads backed-off resends by a
	// deterministic ± fraction.
	AddResendJitter float64
	// ConvictionFraction tunes the paper's "enough processors suspect"
	// heuristic: a processor is convicted once strictly more than this
	// fraction of the unsuspected membership suspects it. Zero selects
	// the default of 0.5 (majority). Lower values detect faster but
	// convict more aggressively under transient silence.
	ConvictionFraction float64
	// PrimaryPartition gates fault-view installation on a quorum of the
	// previous installed view (LLFT-style primary-partition membership):
	// a recovery round whose proposed membership does not contain more
	// than half of the current view — with the lowest member id breaking
	// exact even splits — wedges this processor instead of installing,
	// and proposals whose predecessor view disagrees with the local one
	// are ignored. Off by default: a plain crash-tolerant deployment
	// (e.g. 2 nodes losing one) must keep degrading below quorum.
	PrimaryPartition bool
}

// DefaultConfig matches the experiment defaults: suspicion after 50ms of
// silence, proposal and AddProcessor resends every 20ms.
func DefaultConfig() Config {
	return Config{
		SuspectTimeout: 50_000_000,
		ProposalResend: 20_000_000,
		AddResend:      20_000_000,
	}
}

// Stats counts membership-layer events for the experiment harness.
type Stats struct {
	SuspectsRaised  uint64 // suspicions this processor originated
	Convictions     uint64 // processors this processor convicted
	RoundsStarted   uint64 // recovery rounds begun (including restarts)
	ViewsInstalled  uint64 // memberships installed (all causes)
	ProposalResends uint64
}

// Round is an in-progress fault-recovery round.
type Round struct {
	// Proposed is the membership this round tries to install.
	Proposed ids.Membership
	// maxSeqs is the elementwise maximum of the sequence vectors cited
	// by all received proposals: the set of old-view messages every
	// survivor must hold before installing.
	maxSeqs map[ids.ProcessorID]ids.SeqNum
	// proposals records which proposed members have sent an agreeing
	// proposal.
	proposals map[ids.ProcessorID]bool
	// nextResend is when the local proposal is re-multicast.
	nextResend int64
}

// Group is the PGMP membership state for one processor group at one
// processor.
type Group struct {
	self    ids.ProcessorID
	id      ids.GroupID
	cfg     Config
	members ids.Membership
	viewTS  ids.Timestamp
	// epoch counts installed views: the view lineage stamped on outgoing
	// proposals. Merged by max with peers' proposals (a joiner starts
	// behind the veterans), incremented on every install.
	epoch uint64
	// wedged marks a minority-partition survivor under PrimaryPartition:
	// fault detection and recovery rounds are suspended until the node
	// rejoins the primary component.
	wedged bool
	// lastHeard maps members to the last wall-clock time any traffic
	// arrived from them; the basis of fault detection.
	lastHeard map[ids.ProcessorID]int64
	// suspicions[q][p] records that p suspects q.
	suspicions map[ids.ProcessorID]map[ids.ProcessorID]bool
	// convicted accumulates convicted processors until a view installs.
	convicted ids.Membership
	round     *Round
	// lastProposal stashes the most recent Membership proposal received
	// from each member. A proposal can arrive before this processor has
	// accumulated enough suspicions to convict and start its own round
	// (the sender may have already installed the new view and will never
	// resend); StartRound replays the stash so the agreement is not lost.
	lastProposal map[ids.ProcessorID]*wire.MembershipMsg
	// pendingAdds maps a new member this processor proposed to the raw
	// AddProcessor message re-multicast until the member is heard.
	pendingAdds map[ids.ProcessorID]*pendingAdd
	// arrivals holds per-member inter-arrival history for the adaptive
	// detector (populated only under SuspectAdaptive).
	arrivals map[ids.ProcessorID]*arrivalTracker
	stats    Stats
}

type pendingAdd struct {
	raw        []byte
	nextResend int64
	attempt    int
}

// NewGroup creates membership state for group id at processor self.
func NewGroup(self ids.ProcessorID, id ids.GroupID, cfg Config) *Group {
	return &Group{
		self:         self,
		id:           id,
		cfg:          cfg,
		lastHeard:    make(map[ids.ProcessorID]int64),
		suspicions:   make(map[ids.ProcessorID]map[ids.ProcessorID]bool),
		lastProposal: make(map[ids.ProcessorID]*wire.MembershipMsg),
		pendingAdds:  make(map[ids.ProcessorID]*pendingAdd),
		arrivals:     make(map[ids.ProcessorID]*arrivalTracker),
	}
}

// Stats returns a snapshot of the layer's counters.
func (g *Group) Stats() Stats { return g.stats }

// Members returns the current membership (shared; do not modify).
func (g *Group) Members() ids.Membership { return g.members }

// ViewTS returns the timestamp at which the current view took effect.
func (g *Group) ViewTS() ids.Timestamp { return g.viewTS }

// InRecovery reports whether a fault-recovery round is in progress.
func (g *Group) InRecovery() bool { return g.round != nil }

// Epoch returns the number of views installed at this processor: the
// lineage counter stamped on outgoing Membership proposals.
func (g *Group) Epoch() uint64 { return g.epoch }

// Wedged reports whether this processor has wedged as a minority
// survivor (PrimaryPartition only).
func (g *Group) Wedged() bool { return g.wedged }

// QuorumOf reports whether the proposed membership contains a quorum of
// prev: strictly more than half of prev's members, or — for an exact
// even split — exactly half including prev's lowest member id, the
// deterministic tiebreak that keeps at most one component primary.
func QuorumOf(proposed, prev ids.Membership) bool {
	if len(prev) == 0 {
		return true
	}
	n := 0
	for _, p := range prev {
		if proposed.Contains(p) {
			n++
		}
	}
	if 2*n > len(prev) {
		return true
	}
	// Membership is sorted, so prev[0] is the lowest id.
	return 2*n == len(prev) && proposed.Contains(prev[0])
}

// HasQuorum reports whether proposed carries a quorum of the current
// installed view.
func (g *Group) HasQuorum(proposed ids.Membership) bool {
	return QuorumOf(proposed, g.members)
}

// Wedge puts the group into the wedged state: the in-progress round is
// abandoned and no further suspicions or rounds are raised until a view
// installs (i.e. until the node rejoins the primary component). The
// convicted set is retained — while wedged it names the unreachable
// primary side, which heal detection watches for.
func (g *Group) Wedge() {
	if g.wedged {
		return
	}
	g.wedged = true
	g.round = nil
	g.lastProposal = make(map[ids.ProcessorID]*wire.MembershipMsg)
	trace.Inc("pgmp.wedges")
}

// Install installs a membership (bootstrap, planned change, or the
// outcome of a recovery round) effective at viewTS. All suspicion and
// round state involving departed processors is discarded.
func (g *Group) Install(m ids.Membership, viewTS ids.Timestamp, now int64) {
	g.members = m.Clone()
	if viewTS > g.viewTS {
		g.viewTS = viewTS
	}
	for _, p := range m {
		if _, ok := g.lastHeard[p]; !ok {
			g.lastHeard[p] = now
		}
	}
	for p := range g.lastHeard {
		if !m.Contains(p) {
			delete(g.lastHeard, p)
		}
	}
	for p := range g.arrivals {
		if !m.Contains(p) {
			delete(g.arrivals, p)
		}
	}
	for q := range g.suspicions {
		if !m.Contains(q) {
			delete(g.suspicions, q)
			continue
		}
		for p := range g.suspicions[q] {
			if !m.Contains(p) {
				delete(g.suspicions[q], p)
			}
		}
	}
	g.convicted = nil
	g.round = nil
	g.lastProposal = make(map[ids.ProcessorID]*wire.MembershipMsg)
	g.epoch++
	g.wedged = false
	g.stats.ViewsInstalled++
}

// Heard records traffic from member p at time now, refuting any local
// silence-based suspicion-in-the-making (but not a multicast suspicion:
// those stand until a view installs, as retracting them is not in the
// paper's protocol).
func (g *Group) Heard(p ids.ProcessorID, now int64) {
	if g.members.Contains(p) {
		if g.cfg.SuspectPolicy == SuspectAdaptive && p != g.self {
			if last, ok := g.lastHeard[p]; ok {
				g.observeArrival(p, now-last)
			}
		}
		g.lastHeard[p] = now
	}
	if pa, ok := g.pendingAdds[p]; ok && pa != nil {
		delete(g.pendingAdds, p)
	}
}

// DueSuspicions returns the members that have been silent past the
// suspect timeout and are not yet suspected by this processor, marking
// them self-suspected. The caller multicasts a Suspect message naming
// them (and feeds it back through RecordSuspicion upon delivery, like
// any other member's Suspect).
func (g *Group) DueSuspicions(now int64) ids.Membership {
	if g.wedged {
		// A wedged minority must not convict the unreachable primary
		// side: its next view comes from rejoining, not from a round.
		return nil
	}
	var due ids.Membership
	for _, p := range g.members {
		if p == g.self {
			continue
		}
		if now-g.lastHeard[p] < g.SuspectTimeoutFor(p) {
			continue
		}
		if g.suspicions[p][g.self] {
			continue
		}
		due = due.Add(p)
	}
	g.stats.SuspectsRaised += uint64(len(due))
	trace.Count("pgmp.suspicions_raised", uint64(len(due)))
	return due
}

// RecordSuspicion records that `from` suspects each processor in
// suspects, and returns any processors newly convicted as a result.
// Convictions are monotone until the next view installs.
func (g *Group) RecordSuspicion(from ids.ProcessorID, suspects ids.Membership) ids.Membership {
	if !g.members.Contains(from) {
		return nil
	}
	for _, q := range suspects {
		if !g.members.Contains(q) {
			continue
		}
		if g.suspicions[q] == nil {
			g.suspicions[q] = make(map[ids.ProcessorID]bool)
		}
		g.suspicions[q][from] = true
	}
	return g.reconvict()
}

// suspectedBySelf returns the set of members this processor suspects.
func (g *Group) suspectedBySelf() ids.Membership {
	var out ids.Membership
	for q, by := range g.suspicions {
		if by[g.self] {
			out = out.Add(q)
		}
	}
	return out
}

// reconvict recomputes the convicted set: q is convicted when more than
// half of the unsuspected membership suspects it. Returns newly
// convicted processors.
func (g *Group) reconvict() ids.Membership {
	voters := g.members.RemoveAll(g.suspectedBySelf())
	if len(voters) == 0 {
		return nil
	}
	frac := g.cfg.ConvictionFraction
	if frac <= 0 {
		frac = 0.5
	}
	threshold := int(frac*float64(len(voters))) + 1
	var newly ids.Membership
	for q, by := range g.suspicions {
		if g.convicted.Contains(q) {
			continue
		}
		if len(by) >= threshold {
			g.convicted = g.convicted.Add(q)
			newly = newly.Add(q)
			g.stats.Convictions++
			trace.Inc("pgmp.convictions")
		}
	}
	return newly
}

// Convicted returns the processors convicted since the last view.
func (g *Group) Convicted() ids.Membership { return g.convicted }

// NeedRound reports whether a (re)start of the recovery round is
// required: there are convictions not reflected in the current round.
func (g *Group) NeedRound() bool {
	if g.wedged || len(g.convicted) == 0 {
		return false
	}
	target := g.members.RemoveAll(g.convicted)
	return g.round == nil || !g.round.Proposed.Equal(target)
}

// StartRound begins (or restarts) the recovery round. mySeqs is this
// processor's contiguously-received sequence vector over the current
// membership. It returns the Membership message body to multicast.
func (g *Group) StartRound(mySeqs wire.SeqVector, now int64) *wire.MembershipMsg {
	proposed := g.members.RemoveAll(g.convicted)
	r := &Round{
		Proposed:   proposed,
		maxSeqs:    make(map[ids.ProcessorID]ids.SeqNum),
		proposals:  make(map[ids.ProcessorID]bool),
		nextResend: now + g.cfg.ProposalResend,
	}
	for _, e := range mySeqs {
		r.maxSeqs[e.Proc] = e.Seq
	}
	r.proposals[g.self] = true
	g.round = r
	g.stats.RoundsStarted++
	// Replay stashed proposals that match this round's target: their
	// senders may have installed the view already and gone quiet.
	for from, msg := range g.lastProposal {
		g.applyToRound(from, msg)
	}
	return g.proposalBody(mySeqs)
}

// applyToRound records a matching proposal's agreement and sequence
// vector in the current round.
func (g *Group) applyToRound(from ids.ProcessorID, msg *wire.MembershipMsg) {
	if g.round == nil || !msg.NewMembership.Equal(g.round.Proposed) {
		return
	}
	if g.cfg.PrimaryPartition && !msg.CurrentMembership.Equal(g.members) {
		// Lineage disagreement: the proposal claims to succeed a view
		// this processor never installed (the sender diverged across a
		// partition). Its agreement cannot be counted toward ours.
		// (The predecessor view *timestamp* is observational only: fault
		// views are stamped with each member's local clock, so equality
		// across members cannot be required.)
		trace.Inc("pgmp.lineage_rejects")
		return
	}
	g.round.proposals[from] = true
	for _, e := range msg.CurrentSeqs {
		if e.Seq > g.round.maxSeqs[e.Proc] {
			g.round.maxSeqs[e.Proc] = e.Seq
		}
	}
}

func (g *Group) proposalBody(mySeqs wire.SeqVector) *wire.MembershipMsg {
	return &wire.MembershipMsg{
		MembershipTS:      g.viewTS,
		CurrentMembership: g.members.Clone(),
		CurrentSeqs:       mySeqs.Clone(),
		NewMembership:     g.round.Proposed.Clone(),
		Epoch:             g.epoch,
		PredecessorTS:     g.viewTS,
	}
}

// OnProposal processes a Membership message from another member. A
// proposal excluding processors this processor has not yet convicted is
// treated as a suspicion vote by its sender for each excluded processor
// (convictions are driven by the shared, reliably-delivered suspicion
// traffic, so honest members converge). It returns newly convicted
// processors, if any; the caller should then check NeedRound.
func (g *Group) OnProposal(from ids.ProcessorID, msg *wire.MembershipMsg) ids.Membership {
	if !g.members.Contains(from) {
		return nil
	}
	if msg.Epoch > g.epoch {
		// Lineage merge: the sender has installed more views than we
		// have (we are behind or a joiner); adopt its count so our own
		// proposals do not look ancestral.
		g.epoch = msg.Epoch
	}
	g.lastProposal[from] = msg
	implied := g.members.RemoveAll(msg.NewMembership)
	newly := g.RecordSuspicion(from, implied)
	g.applyToRound(from, msg)
	return newly
}

// ResendDue reports whether the round's proposal should be re-multicast
// at now, and advances the resend clock if so.
func (g *Group) ResendDue(now int64) bool {
	if g.round == nil || now < g.round.nextResend {
		return false
	}
	g.round.nextResend = now + g.cfg.ProposalResend
	g.stats.ProposalResends++
	return true
}

// RecoveryNeeds returns RetransmitRequest bodies for the old-view
// messages this processor is still missing relative to the round's
// maximum cited sequence vector. contiguous reports the highest
// contiguously received sequence number per processor (rmp.Contiguous).
func (g *Group) RecoveryNeeds(contiguous func(ids.ProcessorID) ids.SeqNum) []wire.RetransmitRequest {
	if g.round == nil {
		return nil
	}
	procs := make([]ids.ProcessorID, 0, len(g.round.maxSeqs))
	for p := range g.round.maxSeqs {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var out []wire.RetransmitRequest
	for _, p := range procs {
		have := contiguous(p)
		want := g.round.maxSeqs[p]
		if want > have {
			out = append(out, wire.RetransmitRequest{Proc: p, StartSeq: have + 1, StopSeq: want})
		}
	}
	return out
}

// ReadyToInstall reports whether the recovery round can complete: an
// agreeing proposal has arrived from every proposed member and the local
// message set covers the round's maximum sequence vector.
func (g *Group) ReadyToInstall(contiguous func(ids.ProcessorID) ids.SeqNum) bool {
	if g.round == nil {
		return false
	}
	for _, p := range g.round.Proposed {
		if !g.round.proposals[p] {
			return false
		}
	}
	for p, want := range g.round.maxSeqs {
		if contiguous(p) < want {
			return false
		}
	}
	return true
}

// RoundResult returns the proposed membership and the sequence vector
// through which old-view messages must be delivered before the new view
// begins. Valid only when a round is in progress.
func (g *Group) RoundResult() (ids.Membership, map[ids.ProcessorID]ids.SeqNum) {
	if g.round == nil {
		return nil, nil
	}
	return g.round.Proposed.Clone(), g.round.maxSeqs
}

// NoteAddProposed records that this processor originated an AddProcessor
// for p and must re-multicast raw until p is heard from.
func (g *Group) NoteAddProposed(p ids.ProcessorID, raw []byte, now int64) {
	g.pendingAdds[p] = &pendingAdd{raw: raw, nextResend: now + g.cfg.AddResend, attempt: 1}
}

// AddResendsDue returns the raw AddProcessor messages due for
// re-multicast at now.
func (g *Group) AddResendsDue(now int64) [][]byte {
	var out [][]byte
	procs := make([]ids.ProcessorID, 0, len(g.pendingAdds))
	for p := range g.pendingAdds {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		pa := g.pendingAdds[p]
		if now >= pa.nextResend {
			pa.attempt++
			pa.nextResend = now + backoffDelay(g.cfg.AddResend, g.cfg.AddResendMax,
				g.cfg.AddResendJitter, pa.attempt, uint64(p)^uint64(g.id)<<32)
			out = append(out, pa.raw)
			trace.Inc("pgmp.add_resends")
		}
	}
	return out
}

// HasPendingAdd reports whether this processor has an unacknowledged
// AddProcessor proposal outstanding for p.
func (g *Group) HasPendingAdd(p ids.ProcessorID) bool {
	_, ok := g.pendingAdds[p]
	return ok
}

// SuspectedOrConvicted reports whether p is suspected by anyone or
// convicted; RMP's retransmission policy uses it to decide when peers
// may answer for a source (paper: "any processor that has received ...
// may retransmit").
func (g *Group) SuspectedOrConvicted(p ids.ProcessorID) bool {
	if g.convicted.Contains(p) {
		return true
	}
	return len(g.suspicions[p]) > 0
}

// String summarizes the group state for debugging.
func (g *Group) String() string {
	return fmt.Sprintf("pgmp(%v@%v, members %v, epoch %d, convicted %v, recovering %v, wedged %v)",
		g.self, g.id, g.members, g.epoch, g.convicted, g.round != nil, g.wedged)
}

// ProposalForResend returns a fresh copy of the round's proposal body
// with this processor's current sequence vector, or nil when no round is
// in progress. Unlike StartRound it does not reset the round's collected
// proposals.
func (g *Group) ProposalForResend(mySeqs wire.SeqVector) *wire.MembershipMsg {
	if g.round == nil {
		return nil
	}
	return g.proposalBody(mySeqs)
}
