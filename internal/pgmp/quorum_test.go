package pgmp

import (
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/wire"
)

func m(members ...int) ids.Membership {
	var out ids.Membership
	for _, p := range members {
		out = out.Add(ids.ProcessorID(p))
	}
	return out
}

func TestQuorumOfMajority(t *testing.T) {
	prev := m(1, 2, 3, 4, 5)
	cases := []struct {
		proposed ids.Membership
		want     bool
	}{
		{m(1, 2, 3), true},        // 3/5 survivors
		{m(3, 4, 5), true},        // majority without the lowest id
		{m(4, 5), false},          // 2/5 minority
		{m(1), false},             // singleton of 5
		{m(1, 2, 3, 4, 5), true},  // unchanged
		{m(2, 3, 6, 7, 8), false}, // 2 of prev + 3 strangers: still a minority of prev
		{m(1, 2, 3, 9), true},     // majority of prev plus a joiner
	}
	for _, c := range cases {
		if got := QuorumOf(c.proposed, prev); got != c.want {
			t.Errorf("QuorumOf(%v, %v) = %v, want %v", c.proposed, prev, got, c.want)
		}
	}
}

func TestQuorumOfEvenSplitTiebreak(t *testing.T) {
	// Exactly half of the previous view survives on each side: the side
	// holding the lowest member id of the previous view wins, the other
	// loses — deterministically, so exactly one side stays primary.
	prev := m(1, 2, 3, 4)
	if !QuorumOf(m(1, 2), prev) {
		t.Error("side {1,2} holds the lowest member of {1,2,3,4}: should have quorum")
	}
	if QuorumOf(m(3, 4), prev) {
		t.Error("side {3,4} lacks the lowest member of {1,2,3,4}: should NOT have quorum")
	}
	// 2-node group splitting 1/1: same rule.
	prev2 := m(1, 2)
	if !QuorumOf(m(1), prev2) {
		t.Error("survivor {1} of {1,2} should win the tiebreak")
	}
	if QuorumOf(m(2), prev2) {
		t.Error("survivor {2} of {1,2} should lose the tiebreak")
	}
}

func TestQuorumOfEmptyPrev(t *testing.T) {
	// No previous view (bootstrap): anything goes.
	if !QuorumOf(m(7), nil) {
		t.Error("bootstrap view should always have quorum")
	}
}

func TestWedgeStopsDetectionAndRounds(t *testing.T) {
	g := newGroup(1, 2, 3, 4)
	// Convict 3 and 4 (self + 2 suspect both; voters {1,2}, threshold 2).
	g.RecordSuspicion(self, ids.NewMembership(3, 4))
	g.RecordSuspicion(2, ids.NewMembership(3, 4))
	if !g.NeedRound() {
		t.Fatal("NeedRound = false after conviction")
	}
	g.Wedge()
	if !g.Wedged() {
		t.Fatal("Wedged = false after Wedge")
	}
	if g.NeedRound() {
		t.Error("wedged group wants a recovery round")
	}
	if due := g.DueSuspicions(1 << 40); due != nil {
		t.Errorf("wedged group suspects: %v", due)
	}
	// Wedge is idempotent and sticky until an Install.
	g.Wedge()
	if !g.Wedged() {
		t.Error("second Wedge cleared the state")
	}
	g.Install(ids.NewMembership(1, 2, 3, 4), ids.MakeTimestamp(100, 1), 0)
	if g.Wedged() {
		t.Error("Install did not clear the wedge")
	}
}

func TestEpochAdvancesPerInstallAndMerges(t *testing.T) {
	g := newGroup(1, 2, 3) // Install #1
	if g.Epoch() != 1 {
		t.Fatalf("epoch after first install = %d, want 1", g.Epoch())
	}
	g.Install(ids.NewMembership(1, 2), ids.MakeTimestamp(50, 1), 0)
	if g.Epoch() != 2 {
		t.Fatalf("epoch after second install = %d, want 2", g.Epoch())
	}
	// A proposal from a member further along merges its epoch (joiner
	// catching up); a stale one does not regress ours.
	msg := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2),
		NewMembership:     ids.NewMembership(1, 2),
		Epoch:             7,
	}
	g.OnProposal(2, msg)
	if g.Epoch() != 7 {
		t.Errorf("epoch after merge = %d, want 7", g.Epoch())
	}
	msg2 := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2),
		NewMembership:     ids.NewMembership(1, 2),
		Epoch:             3,
	}
	g.OnProposal(2, msg2)
	if g.Epoch() != 7 {
		t.Errorf("stale epoch regressed ours: %d", g.Epoch())
	}
}

func TestLineageRejectUnderPrimaryPartition(t *testing.T) {
	c := cfg()
	c.PrimaryPartition = true
	g := NewGroup(self, gid, c)
	g.Install(ids.NewMembership(1, 2, 3, 4), ids.NilTimestamp, 0)
	// Convict 3, 4 and start the round for {1,2}.
	g.RecordSuspicion(self, ids.NewMembership(3, 4))
	g.RecordSuspicion(2, ids.NewMembership(3, 4))
	g.StartRound(nil, 0)
	// A proposal for the same target but claiming a different current
	// view (the sender installed views we never saw across a partition)
	// must not count toward our round's agreement.
	diverged := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 5),
		NewMembership:     ids.NewMembership(1, 2),
	}
	g.OnProposal(2, diverged)
	if g.round.proposals[ids.ProcessorID(2)] {
		t.Error("diverged-lineage proposal counted toward the round")
	}
	// The same proposal with a matching current view does count.
	ok := &wire.MembershipMsg{
		CurrentMembership: ids.NewMembership(1, 2, 3, 4),
		NewMembership:     ids.NewMembership(1, 2),
	}
	g.OnProposal(2, ok)
	if !g.round.proposals[ids.ProcessorID(2)] {
		t.Error("matching-lineage proposal not counted")
	}
}
