package runtime_test

// Tests for the pipelined runner: parallel receive/decode, async
// ordered delivery, sharded sends and executor-owned WAL group commit.
// Everything here runs over real UDP sockets on loopback and is meant
// to be raced (go test -race).

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// pnode is one pipelined processor plus its recorded deliveries.
type pnode struct {
	p    ids.ProcessorID
	r    *runtime.Runner
	mu   sync.Mutex
	got  []string
	hook func(n *pnode, d core.Delivery) // optional, runs on the executor
}

func (n *pnode) delivered() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.got...)
}

// newPipeNodes starts n pipelined processors in a full UDP mesh (self
// included) and creates the group on each. opts is cloned per node; a
// non-nil wlog is attached to node 1 only.
func newPipeNodes(t *testing.T, n int, opts runtime.Options, wlog *wal.Log) []*pnode {
	t.Helper()
	nodes := make([]*pnode, n)
	meshes := make([]*transport.UDPMesh, n)
	var members ids.Membership
	for i := 1; i <= n; i++ {
		members = members.Add(ids.ProcessorID(i))
	}
	for i := 0; i < n; i++ {
		p := ids.ProcessorID(i + 1)
		node := &pnode{p: p}
		cfg := core.DefaultConfig(p)
		cfg.PGMP.SuspectTimeout = 2_000_000_000 // CI scheduler jitter headroom
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
			Deliver: func(d core.Delivery) {
				node.mu.Lock()
				node.got = append(node.got, string(d.Payload))
				node.mu.Unlock()
				if node.hook != nil {
					node.hook(node, d)
				}
			},
		}
		o := opts
		if i == 0 {
			o.WAL = wlog
		}
		var mesh *transport.UDPMesh
		r, err := runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			mesh = m
			return m, err
		}, o)
		if err != nil {
			t.Fatalf("runner %d: %v", i+1, err)
		}
		node.r = r
		nodes[i] = node
		meshes[i] = mesh
		t.Cleanup(r.Close)
	}
	for _, m := range meshes {
		for _, peer := range meshes {
			if err := m.AddPeer(peer.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, node := range nodes {
		node.r.Do(func(nd *core.Node, now int64) {
			nd.CreateGroup(now, grp, members)
		})
	}
	return nodes
}

// pipeOpts is the full pipeline: parallel decode, async delivery,
// sharded sends.
func pipeOpts() runtime.Options {
	return runtime.Options{
		RecvWorkers:   4,
		BatchMax:      64,
		DeliveryDepth: 64,
		SendShards:    2,
	}
}

// TestPipelineTotalOrder is the baseline protocol property run through
// every pipeline stage at once: concurrent senders, identical delivery
// order everywhere.
func TestPipelineTotalOrder(t *testing.T) {
	const n, each = 3, 10
	nodes := newPipeNodes(t, n, pipeOpts(), nil)
	var wg sync.WaitGroup
	for _, node := range nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				node.r.Do(func(nd *core.Node, now int64) {
					payload := fmt.Sprintf("%v:%d", node.p, i)
					if err := nd.Multicast(now, grp, ids.ConnectionID{}, 0, []byte(payload)); err != nil {
						t.Errorf("multicast: %v", err)
					}
				})
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	total := n * each
	ok := waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.delivered()) < total {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, node := range nodes {
			t.Logf("P%d delivered %d/%d", node.p, len(node.delivered()), total)
		}
		t.Fatal("pipelined delivery incomplete")
	}
	base := nodes[0].delivered()
	for _, node := range nodes[1:] {
		got := node.delivered()
		for j := range base {
			if got[j] != base[j] {
				t.Fatalf("total order differs at %d: %q vs %q", j, got[j], base[j])
			}
		}
	}
}

// TestPipelineOrderedDeliveryInvariant pins the executor's contract: no
// upcall reordering, no duplication, per-source FIFO — while the
// application callback itself is slow and re-enters the runner through
// Do (the exact shape that would deadlock a naively bounded executor).
func TestPipelineOrderedDeliveryInvariant(t *testing.T) {
	const msgs = 150
	opts := pipeOpts()
	opts.DeliveryDepth = 8 // tiny watermark: force backpressure pauses
	nodes := newPipeNodes(t, 2, opts, nil)
	var pongs atomic.Int64
	nodes[1].hook = func(n *pnode, d core.Delivery) {
		if !strings.HasPrefix(string(d.Payload), "ping-") {
			return
		}
		time.Sleep(50 * time.Microsecond) // lag the app: backlog builds
		if pongs.Add(1)%10 == 0 {
			// Re-enter the runner from the executor goroutine.
			n.r.Do(func(nd *core.Node, now int64) {
				_ = nd.Multicast(now, grp, ids.ConnectionID{}, 0,
					[]byte("pong-"+string(d.Payload[5:])))
			})
		}
	}
	for i := 0; i < msgs; i++ {
		i := i
		nodes[0].r.Do(func(nd *core.Node, now int64) {
			if err := nd.Multicast(now, grp, ids.ConnectionID{}, 0, []byte(fmt.Sprintf("ping-%04d", i))); err != nil {
				t.Errorf("multicast: %v", err)
			}
		})
	}
	want := msgs + msgs/10 // pings + pongs
	ok := waitFor(t, 15*time.Second, func() bool {
		return len(nodes[0].delivered()) >= want && len(nodes[1].delivered()) >= want
	})
	if !ok {
		t.Fatalf("delivered %d and %d, want %d", len(nodes[0].delivered()), len(nodes[1].delivered()), want)
	}
	for _, node := range nodes {
		got := node.delivered()
		if len(got) != want {
			t.Fatalf("P%v delivered %d, want exactly %d (duplication?)", node.p, len(got), want)
		}
		// Per-source FIFO with no gaps and no duplicates: the ping
		// subsequence must be exactly 0..msgs-1 in order, the pong
		// subsequence exactly the multiples of 10 minus one, in order.
		var pings, pongsSeen []int
		for _, s := range got {
			seq, err := strconv.Atoi(s[5:])
			if err != nil {
				t.Fatalf("bad payload %q", s)
			}
			if strings.HasPrefix(s, "ping-") {
				pings = append(pings, seq)
			} else {
				pongsSeen = append(pongsSeen, seq)
			}
		}
		if len(pings) != msgs {
			t.Fatalf("P%v saw %d pings, want %d", node.p, len(pings), msgs)
		}
		for i, seq := range pings {
			if seq != i {
				t.Fatalf("P%v ping reordered at %d: got seq %d", node.p, i, seq)
			}
		}
		for i := 1; i < len(pongsSeen); i++ {
			if pongsSeen[i] <= pongsSeen[i-1] {
				t.Fatalf("P%v pong reordered: %v", node.p, pongsSeen)
			}
		}
	}
	// Agreement: identical order across nodes.
	a, b := nodes[0].delivered(), nodes[1].delivered()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestPipelineStressOverflowAndShutdown blasts a tiny ring through a
// lagging application — overflow drops, backpressure pauses and NACK
// repair all fire — then tears the cluster down mid-burst. The test
// passes if nothing deadlocks, panics or races, and whatever was
// delivered is identical on both nodes up to the shorter prefix.
func TestPipelineStressOverflowAndShutdown(t *testing.T) {
	opts := pipeOpts()
	opts.QueueDepth = 64
	opts.DeliveryDepth = 4
	opts.SendDepth = 16
	nodes := newPipeNodes(t, 2, opts, nil)
	nodes[1].hook = func(*pnode, core.Delivery) {
		time.Sleep(100 * time.Microsecond)
	}
	stopSend := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopSend:
					return
				default:
				}
				nodes[0].r.Do(func(nd *core.Node, now int64) {
					_ = nd.Multicast(now, grp, ids.ConnectionID{}, 0,
						[]byte(fmt.Sprintf("burst-%d-%06d", w, i)))
				})
			}
		}()
	}
	// Let the burst overrun the pipeline for a while.
	time.Sleep(300 * time.Millisecond)
	// Shutdown mid-burst, senders still running: Do must not block and
	// Close must drain cleanly.
	nodes[1].r.Close()
	nodes[0].r.Close()
	close(stopSend)
	wg.Wait()

	a, b := nodes[0].delivered(), nodes[1].delivered()
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	for i := 0; i < min; i++ {
		if a[i] != b[i] {
			t.Fatalf("delivered prefixes diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	t.Logf("burst: delivered %d/%d, rx drops %d, tx drops %d, ingest pauses %d",
		len(a), len(b),
		trace.Counter("runtime.rx_overflow_drops"),
		trace.Counter("runtime.tx_overflow_drops"),
		trace.Counter("runtime.ingest_pauses"))
}

// TestPipelineDurableGroupCommit runs a durable pipelined node
// (executor-owned WAL) and checks the write-ahead promise end to end:
// after WALSync and shutdown the log contains every delivery, exactly
// once, in delivery order.
func TestPipelineDurableGroupCommit(t *testing.T) {
	fs := wal.NewMemFS()
	wlog, _, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeOpts()
	opts.WALBatch = 8
	nodes := newPipeNodes(t, 1, opts, wlog)
	const msgs = 40
	for i := 0; i < msgs; i++ {
		i := i
		nodes[0].r.Do(func(nd *core.Node, now int64) {
			if err := nd.Multicast(now, grp, ids.ConnectionID{}, 0, []byte(fmt.Sprintf("durable-%03d", i))); err != nil {
				t.Errorf("multicast: %v", err)
			}
		})
	}
	if !waitFor(t, 10*time.Second, func() bool { return len(nodes[0].delivered()) >= msgs }) {
		t.Fatalf("delivered %d/%d", len(nodes[0].delivered()), msgs)
	}
	// The durability barrier: everything upcalled so far is on disk.
	if err := nodes[0].r.WALSync(); err != nil {
		t.Fatalf("WALSync: %v", err)
	}
	nodes[0].r.Close()
	if err := wlog.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}
	_, rec, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	replay := runtime.RecoverReplay(rec.Records)
	if len(replay.Deliveries) != msgs {
		t.Fatalf("recovered %d deliveries, want %d", len(replay.Deliveries), msgs)
	}
	for i, op := range replay.Deliveries {
		want := fmt.Sprintf("durable-%03d", i)
		if string(op.Payload) != want {
			t.Fatalf("recovered delivery %d = %q, want %q (order or duplication broken)", i, op.Payload, want)
		}
	}
	if trace.Counter("wal.group_commits") == 0 {
		t.Error("no group commits recorded")
	}
}
