package runtime

import (
	stdruntime "runtime"
	"sync/atomic"

	"ftmp/internal/core"
	"ftmp/internal/wire"
)

// rxRing is the hand-off between transport reader goroutines, the
// decode workers and the event loop: a fixed-size MPSC ring in which
// each slot walks empty → filled (raw datagram claimed and written by a
// reader) → decoded (a worker decoded it with its own wire.Decoder and
// cloned the scratch body) → empty again (the loop drained it).
//
// Readers claim slots in arrival order and workers claim them in the
// same order, but decode completes out of order; the loop consumes only
// the contiguous decoded prefix, so batches reach core.HandleBatch in
// exact arrival order. Resequencing here matters: handing packets to
// the core out of order would read as loss and trigger spurious NACKs.
//
// Overflow (ring full) drops the datagram, exactly as a congested NIC
// would; the caller counts it.
type rxRing struct {
	slots []rxSlot
	mask  uint64

	head  atomic.Uint64 // next slot a reader claims
	claim atomic.Uint64 // next slot a worker claims
	tail  atomic.Uint64 // next slot the loop drains

	// work carries one token per filled slot so idle workers block
	// instead of spinning; capacity len(slots) guarantees the producer
	// send never blocks.
	work chan struct{}
	// notify is the coalesced loop wakeup (capacity 1).
	notify chan struct{}
}

const (
	slotEmpty uint32 = iota
	slotFilled
	slotDecoded
)

type rxSlot struct {
	state atomic.Uint32
	data  []byte
	addr  wire.MulticastAddr
	msg   wire.Message
	bad   bool // decode failed
}

// newRxRing creates a ring with capacity rounded up to a power of two.
func newRxRing(capacity int) *rxRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &rxRing{
		slots:  make([]rxSlot, n),
		mask:   uint64(n - 1),
		work:   make(chan struct{}, n),
		notify: make(chan struct{}, 1),
	}
}

// offer claims a slot for one received datagram. Multiple transport
// readers may call it concurrently. Returns false (drop) when the ring
// is full.
func (r *rxRing) offer(data []byte, addr wire.MulticastAddr) bool {
	for {
		h := r.head.Load()
		if h-r.tail.Load() >= uint64(len(r.slots)) {
			return false
		}
		if r.head.CompareAndSwap(h, h+1) {
			// The room check above proves the loop finished with this
			// slot (it resets state before advancing tail past it).
			s := &r.slots[h&r.mask]
			s.data, s.addr = data, addr
			s.state.Store(slotFilled)
			r.work <- struct{}{}
			return true
		}
	}
}

// decodeOne blocks for one work token, claims the next slot in arrival
// order and decodes it with dec. Returns false when stop closes.
func (r *rxRing) decodeOne(dec *wire.Decoder, stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	case <-r.work:
	}
	c := r.claim.Add(1) - 1
	s := &r.slots[c&r.mask]
	// A token may arrive from reader B while reader A is still writing
	// the earlier slot this worker claimed; the window is a few stores.
	for s.state.Load() != slotFilled {
		select {
		case <-stop:
			return false
		default:
			stdruntime.Gosched()
		}
	}
	msg, err := dec.Decode(s.data)
	if err != nil {
		s.bad = true
	} else {
		// The hot-path body is decoder scratch, overwritten by this
		// worker's next decode; clone it before publishing.
		msg.Body = wire.CloneBody(msg.Body)
		s.msg, s.bad = msg, false
	}
	s.state.Store(slotDecoded)
	r.wake()
	return true
}

// wake nudges the loop; calls coalesce on the 1-slot channel.
func (r *rxRing) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// drain appends up to max messages from the contiguous decoded prefix
// to batch (in arrival order) and returns it plus the number of
// undecodable datagrams skipped. Loop-only.
func (r *rxRing) drain(max int, batch []core.Incoming) ([]core.Incoming, uint64) {
	var errs uint64
	for i := 0; i < max; i++ {
		t := r.tail.Load()
		s := &r.slots[t&r.mask]
		if s.state.Load() != slotDecoded {
			break
		}
		if s.bad {
			errs++
		} else {
			batch = append(batch, core.Incoming{Msg: s.msg, Raw: s.data, Addr: s.addr})
		}
		s.data, s.msg = nil, wire.Message{}
		s.state.Store(slotEmpty)
		r.tail.Store(t + 1)
	}
	return batch, errs
}

// hasReady reports whether the next slot in order is already decoded
// (the loop self-rearms its wakeup when a drain hit its batch cap).
func (r *rxRing) hasReady() bool {
	return r.slots[r.tail.Load()&r.mask].state.Load() == slotDecoded
}
