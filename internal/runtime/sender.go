package runtime

import (
	"sync"

	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

// sender moves transmission off the event loop: Transmit hashes the
// destination onto one of a fixed set of shards, each a bounded FIFO
// drained by its own worker goroutine. Per-destination ordering is
// preserved (an address always maps to the same shard); a full shard
// drops the packet, which the protocol repairs as network loss, and the
// loop never blocks on a slow socket.
type sender struct {
	tr     transport.Transport
	shards []chan txItem
	wg     sync.WaitGroup
	once   sync.Once
}

type txItem struct {
	addr wire.MulticastAddr
	data []byte
}

func newSender(tr transport.Transport, shards, depth int) *sender {
	s := &sender{tr: tr, shards: make([]chan txItem, shards)}
	for i := range s.shards {
		ch := make(chan txItem, depth)
		s.shards[i] = ch
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for it := range ch {
				// Best-effort, as on the loop path: send errors look like
				// loss to the peer and are repaired by the protocol.
				_ = s.tr.Send(it.addr, it.data)
			}
		}()
	}
	return s
}

// send enqueues one encoded packet. Loop-only (Transmit callback).
func (s *sender) send(addr wire.MulticastAddr, data []byte) {
	ch := s.shards[addrHash(addr)%uint32(len(s.shards))]
	select {
	case ch <- txItem{addr: addr, data: data}:
	default:
		trace.Inc("runtime.tx_overflow_drops")
	}
}

// close flushes every shard and waits for the workers. Must be called
// after the loop has stopped (no more send calls) and before the
// transport closes (the flush still needs it).
func (s *sender) close() {
	s.once.Do(func() {
		for _, ch := range s.shards {
			close(ch)
		}
		s.wg.Wait()
	})
}

// addrHash is FNV-1a over the destination address.
func addrHash(addr wire.MulticastAddr) uint32 {
	h := uint32(2166136261)
	for _, b := range addr.IP {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(addr.Port&0xff)) * 16777619
	h = (h ^ uint32(addr.Port>>8)) * 16777619
	return h
}
