package runtime

import (
	"sync"
	"time"

	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

// sender moves transmission off the event loop: Transmit hashes the
// destination onto one of a fixed set of shards, each a bounded FIFO
// drained by its own worker goroutine. Per-destination ordering is
// preserved (an address always maps to the same shard); a full shard
// drops the packet, which the protocol repairs as network loss, and the
// loop never blocks on a slow socket.
//
// With batch > 1 and a transport implementing transport.BatchSender,
// each wakeup coalesces the shard's backlog — up to batch frames — into
// one SendBatch call, which the batched transports turn into sendmmsg
// vectors: the kernel crossing is amortized across the burst instead of
// paid per frame. An idle shard still sends each frame immediately; an
// optional flushDelay trades that first-frame latency for a chance to
// fill the vector when traffic is sparse.
type sender struct {
	tr     transport.Transport
	btr    transport.BatchSender // non-nil: batch-drain the shards
	batch  int
	delay  time.Duration
	shards []chan txItem
	wg     sync.WaitGroup
	once   sync.Once
}

type txItem struct {
	addr wire.MulticastAddr
	data []byte
}

func newSender(tr transport.Transport, shards, depth, batch int, delay time.Duration) *sender {
	s := &sender{tr: tr, batch: batch, delay: delay, shards: make([]chan txItem, shards)}
	if batch > 1 {
		s.btr, _ = tr.(transport.BatchSender)
	}
	for i := range s.shards {
		ch := make(chan txItem, depth)
		s.shards[i] = ch
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.btr != nil {
				s.drainBatched(ch)
				return
			}
			for it := range ch {
				// Best-effort, as on the loop path: send errors look like
				// loss to the peer and are repaired by the protocol.
				_ = s.tr.Send(it.addr, it.data)
			}
		}()
	}
	return s
}

// drainBatched is the shard worker's batch mode: block for the first
// frame, then sweep whatever else is already queued (bounded by batch)
// into one SendBatch call. Channel FIFO plus the transport's SendBatch
// ordering contract keeps per-destination FIFO intact.
func (s *sender) drainBatched(ch chan txItem) {
	items := make([]transport.Datagram, 0, s.batch)
	var timer *time.Timer
	for it := range ch {
		items = append(items[:0], transport.Datagram{Addr: it.addr, Data: it.data})
		open := s.sweep(ch, &items)
		if open && len(items) == 1 && s.delay > 0 {
			// Sparse traffic: linger briefly for a batch-mate, then sweep
			// once more. Under load the first sweep already filled the
			// vector and this path never runs.
			if timer == nil {
				timer = time.NewTimer(s.delay)
			} else {
				timer.Reset(s.delay)
			}
			select {
			case more, ok := <-ch:
				if !timer.Stop() {
					<-timer.C
				}
				if ok {
					items = append(items, transport.Datagram{Addr: more.addr, Data: more.data})
					open = s.sweep(ch, &items)
				} else {
					open = false
				}
			case <-timer.C:
			}
		}
		// Best-effort like the unbatched path.
		_ = s.btr.SendBatch(items)
		trace.Inc("runtime.tx_batches")
		trace.Count("runtime.tx_batched_msgs", uint64(len(items)))
		if !open {
			return
		}
	}
}

// sweep moves frames already queued on ch into items, bounded by the
// batch size. It never blocks; it returns false once ch is closed.
func (s *sender) sweep(ch chan txItem, items *[]transport.Datagram) bool {
	for len(*items) < s.batch {
		select {
		case more, ok := <-ch:
			if !ok {
				return false
			}
			*items = append(*items, transport.Datagram{Addr: more.addr, Data: more.data})
		default:
			return true
		}
	}
	return true
}

// send enqueues one encoded packet. Loop-only (Transmit callback).
func (s *sender) send(addr wire.MulticastAddr, data []byte) {
	ch := s.shards[addrHash(addr)%uint32(len(s.shards))]
	select {
	case ch <- txItem{addr: addr, data: data}:
	default:
		trace.Inc("runtime.tx_overflow_drops")
	}
}

// close flushes every shard and waits for the workers. Must be called
// after the loop has stopped (no more send calls) and before the
// transport closes (the flush still needs it).
func (s *sender) close() {
	s.once.Do(func() {
		for _, ch := range s.shards {
			close(ch)
		}
		s.wg.Wait()
	})
}

// addrHash is FNV-1a over the destination address.
func addrHash(addr wire.MulticastAddr) uint32 {
	h := uint32(2166136261)
	for _, b := range addr.IP {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(addr.Port&0xff)) * 16777619
	h = (h ^ uint32(addr.Port>>8)) * 16777619
	return h
}
