package runtime

import (
	"sync"
	"testing"
	"time"

	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

// batchRecorder is a Transport+BatchSender that records every flush so
// tests can assert both ordering and that coalescing actually happened.
type batchRecorder struct {
	mu      sync.Mutex
	batches [][]transport.Datagram
	singles []transport.Datagram
}

func (b *batchRecorder) Join(wire.MulticastAddr) error  { return nil }
func (b *batchRecorder) Leave(wire.MulticastAddr) error { return nil }
func (b *batchRecorder) Close() error                   { return nil }
func (b *batchRecorder) Send(addr wire.MulticastAddr, data []byte) error {
	b.mu.Lock()
	b.singles = append(b.singles, transport.Datagram{Addr: addr, Data: data})
	b.mu.Unlock()
	return nil
}
func (b *batchRecorder) SendBatch(items []transport.Datagram) error {
	cp := make([]transport.Datagram, len(items))
	copy(cp, items)
	b.mu.Lock()
	b.batches = append(b.batches, cp)
	b.mu.Unlock()
	return nil
}

// TestSenderBatchDrain: a backlogged shard must coalesce its queue into
// SendBatch vectors, preserving enqueue order, and never fall back to
// single sends.
func TestSenderBatchDrain(t *testing.T) {
	rec := &batchRecorder{}
	s := newSender(rec, 1, 1024, 8, 0)
	addr := wire.MulticastAddr{IP: [4]byte{239, 1, 1, 1}, Port: 1}
	const n = 100
	for i := 0; i < n; i++ {
		s.send(addr, []byte{byte(i)})
	}
	s.close()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.singles) != 0 {
		t.Fatalf("%d frames bypassed the batch path", len(rec.singles))
	}
	var flat []byte
	coalesced := false
	for _, b := range rec.batches {
		if len(b) > 8 {
			t.Fatalf("batch of %d exceeds the configured vector size 8", len(b))
		}
		if len(b) > 1 {
			coalesced = true
		}
		for _, d := range b {
			if d.Addr != addr {
				t.Fatalf("wrong address %v", d.Addr)
			}
			flat = append(flat, d.Data[0])
		}
	}
	if len(flat) != n {
		t.Fatalf("flushed %d frames, want %d", len(flat), n)
	}
	for i, v := range flat {
		if v != byte(i) {
			t.Fatalf("position %d carries frame %d (FIFO violated)", i, v)
		}
	}
	if !coalesced {
		t.Error("a 100-frame backlog never produced a multi-frame vector")
	}
}

// TestSenderBatchFlushDelay: with a flush delay, a lone frame waits for
// a batch-mate; the pair must still flush (in order) well within the
// test budget, and a frame with no follower must flush after the delay.
func TestSenderBatchFlushDelay(t *testing.T) {
	rec := &batchRecorder{}
	s := newSender(rec, 1, 1024, 8, 2*time.Millisecond)
	addr := wire.MulticastAddr{IP: [4]byte{239, 1, 1, 1}, Port: 1}
	s.send(addr, []byte{0})
	s.send(addr, []byte{1})
	time.Sleep(20 * time.Millisecond)
	s.send(addr, []byte{2}) // no follower: flushes on the timer
	time.Sleep(20 * time.Millisecond)
	s.close()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	var flat []byte
	for _, b := range rec.batches {
		for _, d := range b {
			flat = append(flat, d.Data[0])
		}
	}
	if len(flat) != 3 || flat[0] != 0 || flat[1] != 1 || flat[2] != 2 {
		t.Fatalf("flushed %v, want [0 1 2]", flat)
	}
}

// TestSenderUnbatchedUnchanged: without SendBatch the sender must use
// plain Send exactly as before.
func TestSenderUnbatchedUnchanged(t *testing.T) {
	rec := &batchRecorder{}
	s := newSender(rec, 2, 16, 0, 0)
	addr := wire.MulticastAddr{IP: [4]byte{239, 1, 1, 1}, Port: 1}
	for i := 0; i < 10; i++ {
		s.send(addr, []byte{byte(i)})
	}
	s.close()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.batches) != 0 {
		t.Fatalf("unbatched sender produced %d SendBatch calls", len(rec.batches))
	}
	if len(rec.singles) != 10 {
		t.Fatalf("sent %d singles, want 10", len(rec.singles))
	}
}
