package runtime_test

import (
	"reflect"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// TestWrapDurableSurvivesCrash drives deliveries and view changes
// through durable callbacks, crashes the filesystem, and verifies the
// replay reconstructs the full history and the last installed epoch.
func TestWrapDurableSurvivesCrash(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	var gotPayloads []string
	var gotViews int
	var walErrs []error
	cb := runtime.WrapDurable(w, core.Callbacks{
		Transmit: func(wire.MulticastAddr, []byte) {},
		Deliver: func(d core.Delivery) {
			gotPayloads = append(gotPayloads, string(d.Payload))
		},
		ViewChange: func(core.ViewChange) { gotViews++ },
	}, func(err error) { walErrs = append(walErrs, err) })

	members := ids.NewMembership(1, 2, 3)
	viewTS := ids.MakeTimestamp(7, 1)
	cb.ViewChange(core.ViewChange{Group: 100, ViewTS: viewTS, Members: members, Reason: core.ViewBootstrap})
	for i := 1; i <= 5; i++ {
		cb.Deliver(core.Delivery{
			Group:      100,
			Source:     ids.ProcessorID(1 + i%3),
			TS:         ids.MakeTimestamp(uint64(10+i), ids.ProcessorID(1+i%3)),
			RequestNum: ids.RequestNum(i),
			Payload:    []byte{byte('a' + i)},
		})
	}
	grown := members.Add(4)
	viewTS2 := ids.MakeTimestamp(30, 2)
	cb.ViewChange(core.ViewChange{Group: 100, ViewTS: viewTS2, Members: grown, Reason: core.ViewAdd})

	if len(gotPayloads) != 5 || gotViews != 2 {
		t.Fatalf("application saw %d deliveries, %d views", len(gotPayloads), gotViews)
	}
	if len(walErrs) != 0 {
		t.Fatalf("wal errors: %v", walErrs)
	}

	fs.Crash()
	_, rec, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rp := runtime.RecoverReplay(rec.Records)
	if len(rp.Deliveries) != 5 {
		t.Fatalf("recovered %d deliveries, want 5", len(rp.Deliveries))
	}
	for i, d := range rp.Deliveries {
		if got := string(d.Payload); got != string(byte('a'+i+1)) {
			t.Errorf("delivery %d payload = %q", i, got)
		}
	}
	ep, ok := rp.Epochs[100]
	if !ok {
		t.Fatal("no recovered epoch for group 100")
	}
	if ep.ViewTS != viewTS2 || !reflect.DeepEqual(ep.Members, grown) {
		t.Errorf("recovered epoch = %+v, want viewTS %v members %v", ep, viewTS2, grown)
	}
	if rp.MaxTS != viewTS2 {
		t.Errorf("MaxTS = %v, want %v", rp.MaxTS, viewTS2)
	}
}

// TestRecoverReplayDedupes collapses duplicated records (a copied
// segment) to one delivery each.
func TestRecoverReplayDedupes(t *testing.T) {
	op := wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
		ReqNum: 1, Request: true, TS: ids.MakeTimestamp(5, 2), Payload: []byte("x"),
	}}
	rp := runtime.RecoverReplay([]wal.Record{op, op, op})
	if len(rp.Deliveries) != 1 {
		t.Fatalf("recovered %d deliveries, want 1", len(rp.Deliveries))
	}
}

// TestBootstrapReinstallsEpoch: with a recovered epoch the node's group
// comes back at the logged membership and view timestamp; without one
// it is a plain bootstrap at the configured membership.
func TestBootstrapReinstallsEpoch(t *testing.T) {
	mk := func() *core.Node {
		return core.NewNode(core.DefaultConfig(2), core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {},
			Deliver:  func(core.Delivery) {},
		})
	}

	recovered := ids.NewMembership(2, 3) // processor 1 had already left
	viewTS := ids.MakeTimestamp(42, 3)
	rp := runtime.Replay{
		Epochs: map[ids.GroupID]wal.EpochRecord{100: {Group: 100, ViewTS: viewTS, Members: recovered}},
		MaxTS:  ids.MakeTimestamp(90, 3),
	}
	n := mk()
	runtime.Bootstrap(n, 0, 100, ids.NewMembership(1, 2, 3), rp)
	st, ok := n.Status(100)
	if !ok {
		t.Fatal("group not installed")
	}
	if !reflect.DeepEqual(st.Members, recovered) {
		t.Errorf("members = %v, want recovered %v", st.Members, recovered)
	}

	n2 := mk()
	runtime.Bootstrap(n2, 0, 100, ids.NewMembership(1, 2, 3), runtime.Replay{})
	st2, ok := n2.Status(100)
	if !ok {
		t.Fatal("group not installed on cold bootstrap")
	}
	if !reflect.DeepEqual(st2.Members, ids.NewMembership(1, 2, 3)) {
		t.Errorf("cold members = %v", st2.Members)
	}
}
