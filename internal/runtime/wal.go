package runtime

import (
	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/wal"
)

// Durable hosting: a Runner whose application callbacks are wrapped by
// WrapDurable persists every totally-ordered delivery and every
// installed membership view to a write-ahead log before handing it to
// the application. After a crash the process reopens the log, replays
// the recovered deliveries into the application (RecoverReplay), and
// reinstalls the last logged view at its original logical timestamp
// (core.Node.CreateGroupAt + RecoverClock), so the restarted processor
// rejoins with its pre-crash history instead of a blank slate.

// Replay summarises a recovered WAL for a runtime host.
type Replay struct {
	// Deliveries are the logged ordered messages, in log order.
	Deliveries []wal.OpRecord
	// Epochs holds the last installed membership per group.
	Epochs map[ids.GroupID]wal.EpochRecord
	// Wedged holds, per group, the wedge record of a replica that was
	// still wedged when it crashed (no later RecEpoch cleared it): its
	// log tail precedes a state transfer that never completed, so the
	// operator (and ftmpd's recovery report) knows the replica must
	// rejoin the primary component rather than resume as authoritative.
	Wedged map[ids.GroupID]wal.WedgeRecord
	// MaxTS is the highest logical timestamp seen anywhere in the log;
	// feed it to core.Node.RecoverClock so post-restart timestamps
	// dominate the logged history.
	MaxTS ids.Timestamp
	// Checkpoint is the newest complete checkpoint found in the log, if
	// any: the application state at Checkpoint.Cut. Deliveries logged
	// before the checkpoint chain are omitted from Deliveries — the
	// checkpoint embodies them — so replay cost tracks the suffix of the
	// log, not the whole history.
	Checkpoint *wal.Checkpoint
	// Seqs holds, per group, the last leader-mode ordering assignment
	// committed here (FTMP 1.3): the highest delivery sequence this
	// replica logged, and the epoch it was logged under.
	Seqs map[ids.GroupID]wal.SeqRecord
}

// RecoverReplay folds a recovered record stream into a Replay.
// Duplicate records (for example from a segment copied during manual
// disk repair) collapse: a delivery is kept once per (connection,
// request number, direction, timestamp).
func RecoverReplay(records []wal.Record) Replay {
	rp := Replay{
		Epochs: make(map[ids.GroupID]wal.EpochRecord),
		Wedged: make(map[ids.GroupID]wal.WedgeRecord),
		Seqs:   make(map[ids.GroupID]wal.SeqRecord),
	}
	type key struct {
		conn    ids.ConnectionID
		req     ids.RequestNum
		request bool
		ts      ids.Timestamp
	}
	if ck, ok := wal.LatestCheckpoint(records); ok {
		rp.Checkpoint = &ck
		if ck.Cut > rp.MaxTS {
			rp.MaxTS = ck.Cut
		}
	}
	seen := make(map[key]bool)
	for i, r := range records {
		switch r.Type {
		case wal.RecOp:
			op := *r.Op
			if rp.Checkpoint != nil && i < rp.Checkpoint.End {
				// Logged before the checkpoint chain, so embodied by it:
				// the compaction that wrote the checkpoint may not have
				// finished removing this segment. Positional (not
				// timestamp) comparison — it holds however the cut relates
				// to individual record timestamps.
				continue
			}
			k := key{op.Conn, op.ReqNum, op.Request, op.TS}
			if seen[k] {
				continue
			}
			seen[k] = true
			rp.Deliveries = append(rp.Deliveries, op)
			if op.TS > rp.MaxTS {
				rp.MaxTS = op.TS
			}
		case wal.RecEpoch:
			rp.Epochs[r.Epoch.Group] = *r.Epoch
			// A later installed view means the wedge resolved (the
			// replica rejoined the primary component before crashing).
			delete(rp.Wedged, r.Epoch.Group)
			if r.Epoch.ViewTS > rp.MaxTS {
				rp.MaxTS = r.Epoch.ViewTS
			}
		case wal.RecWedge:
			rp.Wedged[r.Wedge.Group] = *r.Wedge
			if r.Wedge.ViewTS > rp.MaxTS {
				rp.MaxTS = r.Wedge.ViewTS
			}
		case wal.RecSeq:
			if last, ok := rp.Seqs[r.Seq.Group]; !ok || r.Seq.Epoch > last.Epoch ||
				(r.Seq.Epoch == last.Epoch && r.Seq.Seq > last.Seq) {
				rp.Seqs[r.Seq.Group] = *r.Seq
			}
		}
	}
	return rp
}

// WrapDurable returns a copy of cb whose Deliver and ViewChange append
// to w before invoking the wrapped callback (write-ahead: the record is
// durable by the time the application observes the event, under the
// log's fsync policy). Log failures are reported through onErr (may be
// nil) and the event still reaches the application: availability is not
// sacrificed to a full disk, but the operator hears about it loudly.
func WrapDurable(w *wal.Log, cb core.Callbacks, onErr func(error)) core.Callbacks {
	report := func(err error) {
		if err != nil && onErr != nil {
			onErr(err)
		}
	}
	out := cb
	inner := cb.Deliver
	out.Deliver = func(d core.Delivery) {
		if d.OrderSeq > 0 {
			report(w.Append(seqRecord(d)))
		}
		report(w.Append(deliverRecord(d)))
		if inner != nil {
			inner(d)
		}
	}
	innerView := cb.ViewChange
	out.ViewChange = func(v core.ViewChange) {
		// ViewWedge records the wedge point (nothing was installed);
		// ViewHeal is a teardown notice whose wedge marker must survive
		// until the rejoin installs a fresh epoch, so it logs nothing.
		if rec, ok := viewRecord(v); ok {
			report(w.Append(rec))
		}
		if innerView != nil {
			innerView(v)
		}
	}
	return out
}

// Bootstrap installs group membership on the node, resuming from a
// recovered epoch when the replay has one: the view is reinstalled at
// its original logical timestamp and the Lamport clock is advanced past
// everything in the log. With no logged epoch it is a plain CreateGroup.
func Bootstrap(node *core.Node, now int64, group ids.GroupID, members ids.Membership, rp Replay) {
	if ep, ok := rp.Epochs[group]; ok && len(ep.Members) > 0 {
		node.CreateGroupAt(now, group, ep.Members, ep.ViewTS)
	} else {
		node.CreateGroup(now, group, members)
	}
	node.RecoverClock(rp.MaxTS)
}
