package runtime

import (
	"sync"
	"sync/atomic"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// executor runs application upcalls (deliveries, view changes, fault
// reports) off the event loop, in exactly the order the core emitted
// them. The loop enqueues; one executor goroutine dequeues in chunks,
// group-commits the chunk's WAL records with a single fsync
// (wal.SyncBatch), and only then invokes the application callbacks —
// the same write-ahead contract as WrapDurable, amortized.
//
// The queue is unbounded on purpose: an enqueue that blocked the loop
// could deadlock with an application callback that calls Runner.Do.
// Backpressure is instead a soft watermark (backlogged): when the
// backlog passes the configured depth, the loop pauses draining the
// receive ring — ingestion stalls, the loop itself stays live for
// ticks, retransmissions and operations.
type executor struct {
	cb    core.Callbacks // application-facing callbacks only
	sb    *wal.SyncBatch // nil when not durable
	onErr func(error)
	chunk int // max upcalls (and WAL records) per group commit
	depth int // backlog watermark that pauses ingestion

	mu     sync.Mutex
	cond   *sync.Cond
	q      []upcall
	closed bool
	qlen   atomic.Int64
	done   chan struct{}
}

type upKind uint8

const (
	upDeliver upKind = iota
	upView
	upFault
	upBarrier
	upExec
)

type upcall struct {
	kind upKind
	d    core.Delivery
	v    core.ViewChange
	// fault report
	group     ids.GroupID
	convicted ids.Membership
	// barrier reply channel (buffered, cap 1); upExec answers on it too
	barrier chan error
	// exec runs on the executor goroutine with exclusive WAL access
	// (compaction), after the chunk's group commit
	exec func() error
}

func newExecutor(cb core.Callbacks, w *wal.Log, chunk, depth int, onErr func(error)) *executor {
	e := &executor{
		cb:    cb,
		onErr: onErr,
		chunk: chunk,
		depth: depth,
		done:  make(chan struct{}),
	}
	if w != nil {
		e.sb = wal.NewSyncBatch(w)
	}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// enqueue hands one upcall to the executor. Never blocks. After close
// (only the Runner closes, after the loop has stopped) a barrier is
// answered inline and anything else is dropped — by then the queue has
// fully drained, so nothing is lost.
func (e *executor) enqueue(u upcall) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		if u.barrier != nil {
			<-e.done // the drain owns the WAL until it finishes
			err := e.syncNow()
			if err == nil && u.exec != nil {
				err = u.exec()
			}
			u.barrier <- err
		}
		return
	}
	e.q = append(e.q, u)
	e.qlen.Add(1)
	e.cond.Signal()
	e.mu.Unlock()
}

// backlogged reports whether the loop should pause ingestion.
func (e *executor) backlogged() bool {
	return e.depth > 0 && int(e.qlen.Load()) >= e.depth
}

// syncNow forces everything committed so far to stable storage.
func (e *executor) syncNow() error {
	if e.sb == nil {
		return nil
	}
	return e.sb.Sync()
}

func (e *executor) run() {
	defer close(e.done)
	var chunk []upcall
	var recs []wal.Record
	for {
		e.mu.Lock()
		for len(e.q) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.q) == 0 {
			e.mu.Unlock()
			// Closed and drained: leave nothing volatile behind.
			if err := e.syncNow(); err != nil && e.onErr != nil {
				e.onErr(err)
			}
			return
		}
		n := len(e.q)
		if n > e.chunk {
			n = e.chunk
		}
		chunk = append(chunk[:0], e.q[:n]...)
		if n == len(e.q) {
			e.q = e.q[:0]
		} else {
			rest := copy(e.q, e.q[n:])
			for i := rest; i < len(e.q); i++ {
				e.q[i] = upcall{}
			}
			e.q = e.q[:rest]
		}
		e.qlen.Add(-int64(n))
		e.mu.Unlock()

		// Write-ahead, amortized: every record this chunk implies becomes
		// durable in one group commit before any of its callbacks run.
		if e.sb != nil {
			recs = recs[:0]
			for _, u := range chunk {
				switch u.kind {
				case upDeliver:
					if u.d.OrderSeq > 0 {
						recs = append(recs, seqRecord(u.d))
					}
					recs = append(recs, deliverRecord(u.d))
				case upView:
					if rec, ok := viewRecord(u.v); ok {
						recs = append(recs, rec)
					}
				}
			}
			if len(recs) > 0 {
				if err := e.sb.Commit(recs...); err != nil && e.onErr != nil {
					// As in WrapDurable: report loudly, still deliver —
					// availability is not sacrificed to a full disk.
					e.onErr(err)
				}
			}
		}

		for i := range chunk {
			u := &chunk[i]
			switch u.kind {
			case upDeliver:
				trace.Inc("runtime.exec_deliveries")
				if e.cb.Deliver != nil {
					e.cb.Deliver(u.d)
				}
			case upView:
				if e.cb.ViewChange != nil {
					e.cb.ViewChange(u.v)
				}
			case upFault:
				if e.cb.FaultReport != nil {
					e.cb.FaultReport(u.group, u.convicted)
				}
			case upBarrier:
				u.barrier <- e.syncNow()
			case upExec:
				// Drain pending group commits first: exec (WAL compaction)
				// needs the log quiescent and every prior record durable.
				if err := e.syncNow(); err != nil {
					u.barrier <- err
				} else {
					u.barrier <- u.exec()
				}
			}
			*u = upcall{}
		}
	}
}

// close marks the queue closed and waits for the executor to drain
// everything already enqueued (including a final WAL sync).
func (e *executor) close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.cond.Signal()
	}
	e.mu.Unlock()
	<-e.done
}

// deliverRecord maps an ordered delivery to its WAL record.
func deliverRecord(d core.Delivery) wal.Record {
	return wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
		Conn:    d.Conn,
		ReqNum:  d.RequestNum,
		Request: true,
		TS:      d.TS,
		Payload: d.Payload,
	}}
}

// seqRecord maps a leader-mode delivery's ordering assignment to its
// WAL record, committed in the same group commit as (and ahead of) the
// delivery's RecOp so the sequence prefix is never behind the op log.
func seqRecord(d core.Delivery) wal.Record {
	return wal.Record{Type: wal.RecSeq, Seq: &wal.SeqRecord{
		Group:  d.Group,
		Epoch:  d.OrderEpoch,
		Seq:    d.OrderSeq,
		Source: d.Source,
		SrcSeq: d.SourceSeq,
	}}
}

// viewRecord maps an installed view to its WAL record. ViewWedge
// records the wedge point (nothing was installed); ViewHeal is a
// teardown notice that must not clear the wedge marker, so it logs
// nothing; everything else is a new epoch.
func viewRecord(v core.ViewChange) (wal.Record, bool) {
	switch v.Reason {
	case core.ViewWedge:
		return wal.Record{Type: wal.RecWedge, Wedge: &wal.WedgeRecord{
			Group:   v.Group,
			Epoch:   v.Epoch,
			ViewTS:  v.ViewTS,
			Members: v.Members.Clone(),
		}}, true
	case core.ViewHeal:
		return wal.Record{}, false
	default:
		return wal.Record{Type: wal.RecEpoch, Epoch: &wal.EpochRecord{
			Group:   v.Group,
			ViewTS:  v.ViewTS,
			Members: v.Members.Clone(),
		}}, true
	}
}
