package runtime_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

const grp = ids.GroupID(77)

// realCluster runs n FTMP nodes over real UDP sockets (unicast mesh) on
// the loopback interface.
type realCluster struct {
	runners map[ids.ProcessorID]*runtime.Runner
	mu      sync.Mutex
	deliv   map[ids.ProcessorID][]string
	views   map[ids.ProcessorID][]core.ViewChange
}

func newRealCluster(t *testing.T, n int) *realCluster {
	t.Helper()
	rc := &realCluster{
		runners: make(map[ids.ProcessorID]*runtime.Runner),
		deliv:   make(map[ids.ProcessorID][]string),
		views:   make(map[ids.ProcessorID][]core.ViewChange),
	}
	meshes := make([]*transport.UDPMesh, 0, n)
	for i := 1; i <= n; i++ {
		p := ids.ProcessorID(i)
		cfg := core.DefaultConfig(p)
		// Provision failure detection for scheduler jitter on loaded CI
		// machines (wrongful convictions of starved-but-alive members).
		cfg.PGMP.SuspectTimeout = 2_000_000_000
		cb := core.Callbacks{
			// Transmit/Subscribe/Unsubscribe are installed by the runner.
			Transmit: func(wire.MulticastAddr, []byte) {},
			Deliver: func(d core.Delivery) {
				rc.mu.Lock()
				rc.deliv[p] = append(rc.deliv[p], string(d.Payload))
				rc.mu.Unlock()
			},
			ViewChange: func(v core.ViewChange) {
				rc.mu.Lock()
				rc.views[p] = append(rc.views[p], v)
				rc.mu.Unlock()
			},
		}
		var mesh *transport.UDPMesh
		r, err := runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			mesh = m
			return m, err
		}, runtime.Options{})
		if err != nil {
			t.Fatalf("runner %d: %v", i, err)
		}
		rc.runners[p] = r
		meshes = append(meshes, mesh)
		t.Cleanup(r.Close)
	}
	// Full mesh, including self for multicast loopback semantics.
	for _, m := range meshes {
		for _, peer := range meshes {
			if err := m.AddPeer(peer.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return rc
}

func (rc *realCluster) delivered(p ids.ProcessorID) []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]string, len(rc.deliv[p]))
	copy(out, rc.deliv[p])
	return out
}

func waitFor(t *testing.T, d time.Duration, pred func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return pred()
}

func TestRealUDPTotalOrder(t *testing.T) {
	const n = 3
	rc := newRealCluster(t, n)
	members := ids.NewMembership(1, 2, 3)
	for p, r := range rc.runners {
		p := p
		r.Do(func(node *core.Node, now int64) {
			node.CreateGroup(now, grp, members)
		})
		_ = p
	}
	// Everyone sends a few messages concurrently.
	const each = 5
	var wg sync.WaitGroup
	for p, r := range rc.runners {
		p, r := p, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Do(func(node *core.Node, now int64) {
					if err := node.Multicast(now, grp, ids.ConnectionID{}, 0, []byte(fmt.Sprintf("%v:%d", p, i))); err != nil {
						t.Errorf("multicast: %v", err)
					}
				})
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	total := n * each
	ok := waitFor(t, 10*time.Second, func() bool {
		for i := 1; i <= n; i++ {
			if len(rc.delivered(ids.ProcessorID(i))) < total {
				return false
			}
		}
		return true
	})
	if !ok {
		for i := 1; i <= n; i++ {
			t.Logf("P%d delivered %d/%d", i, len(rc.delivered(ids.ProcessorID(i))), total)
		}
		t.Fatal("real-network delivery incomplete")
	}
	base := rc.delivered(1)
	for i := 2; i <= n; i++ {
		got := rc.delivered(ids.ProcessorID(i))
		for j := range base {
			if got[j] != base[j] {
				t.Fatalf("real-network total order differs at %d: %q vs %q", j, got[j], base[j])
			}
		}
	}
}

func TestRunnerCloseIdempotent(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cb := core.Callbacks{
		Transmit: func(wire.MulticastAddr, []byte) {},
		Deliver:  func(core.Delivery) {},
	}
	r, err := runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
		return transport.NewUDPMesh("127.0.0.1:0", h)
	}, runtime.Options{Tick: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // must not panic or deadlock
	// Do after Close returns without blocking.
	done := make(chan struct{})
	go func() {
		r.Do(func(*core.Node, int64) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Do blocked after Close")
	}
}

func TestMeshTransportBasics(t *testing.T) {
	got := make(chan string, 10)
	a, err := transport.NewUDPMesh("127.0.0.1:0", func(data []byte, addr wire.MulticastAddr) {
		got <- fmt.Sprintf("%s@%v", data, addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.NewUDPMesh("127.0.0.1:0", func([]byte, wire.MulticastAddr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.AddPeer(a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	logical := wire.MulticastAddr{IP: [4]byte{239, 9, 9, 9}, Port: 1234}
	// Not subscribed yet: dropped. (Wait for the datagram to reach the
	// read loop before subscribing, since filtering happens at receipt.)
	if err := b.Send(logical, []byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := a.Join(logical); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(logical, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		want := "hello@239.9.9.9:1234"
		if s != want {
			t.Errorf("got %q, want %q", s, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
	// Leave stops delivery.
	if err := a.Leave(logical); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := b.Send(logical, []byte("after-leave")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		t.Errorf("received after leave: %q", s)
	case <-time.After(100 * time.Millisecond):
	}
	// Closed transport rejects sends.
	a.Close()
	if err := a.Send(logical, []byte("x")); err == nil {
		t.Error("send on closed transport succeeded")
	}
	if err := a.Join(logical); err == nil {
		t.Error("join on closed transport succeeded")
	}
}
