package runtime

import (
	"testing"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
)

func TestBackoffDelayShape(t *testing.T) {
	b := BackoffConfig{Initial: 20, Max: 200}
	want := []time.Duration{20, 40, 80, 160, 200, 200}
	for i, w := range want {
		if d := b.delay(i+1, 7); d != w {
			t.Errorf("attempt %d: delay %v, want %v", i+1, d, w)
		}
	}
	fixed := BackoffConfig{Initial: 20}
	for attempt := 1; attempt <= 4; attempt++ {
		if d := fixed.delay(attempt, 7); d != 20 {
			t.Errorf("fixed attempt %d: delay %v, want 20", attempt, d)
		}
	}
	jit := BackoffConfig{Initial: 1000, Max: 100_000, Jitter: 0.25}
	for attempt := 1; attempt <= 4; attempt++ {
		a, b2 := jit.delay(attempt, 42), jit.delay(attempt, 42)
		if a != b2 {
			t.Fatalf("jitter nondeterministic: %v vs %v", a, b2)
		}
		raw := BackoffConfig{Initial: 1000, Max: 100_000}.delay(attempt, 42)
		if a < raw*3/4 || a > raw*5/4 {
			t.Errorf("attempt %d: jittered %v outside [%v,%v]", attempt, a, raw*3/4, raw*5/4)
		}
	}
}

func TestRejoinerRetriesUntilCaughtUp(t *testing.T) {
	var built []ids.ProcessorID
	closed := 0
	var slept []time.Duration
	r := &Rejoiner{
		NextID: func(attempt int) ids.ProcessorID { return ids.ProcessorID(100 + attempt) },
		Build: func(id ids.ProcessorID) (*Attempt, error) {
			built = append(built, id)
			nth := len(built)
			return &Attempt{
				ID: id,
				// The first attempt never catches up; the second does.
				CaughtUp: func() bool { return nth == 2 },
				Close:    func() { closed++ },
			}, nil
		},
		Backoff:        BackoffConfig{Initial: 50 * time.Millisecond, Max: 400 * time.Millisecond},
		AttemptTimeout: 4 * time.Millisecond,
		Poll:           time.Millisecond,
		MaxAttempts:    5,
		Sleep:          func(d time.Duration) { slept = append(slept, d) },
	}
	a, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.ID != 102 {
		t.Errorf("caught up under id %d, want 102", a.ID)
	}
	if len(built) != 2 || built[0] != 101 || built[1] != 102 {
		t.Errorf("built ids %v, want [101 102]", built)
	}
	if closed != 1 {
		t.Errorf("closed %d attempts, want 1 (only the failed one)", closed)
	}
	// Attempt 1 polls 4 times (timeout/poll) then the inter-attempt
	// backoff of 50ms fires; attempt 2 catches up before any poll.
	if len(slept) != 5 {
		t.Fatalf("slept %d times (%v), want 5", len(slept), slept)
	}
	if slept[4] != 50*time.Millisecond {
		t.Errorf("backoff sleep %v, want 50ms", slept[4])
	}
}

func TestRejoinerBuildErrorRetried(t *testing.T) {
	calls := 0
	r := &Rejoiner{
		NextID: func(attempt int) ids.ProcessorID { return ids.ProcessorID(attempt) },
		Build: func(id ids.ProcessorID) (*Attempt, error) {
			calls++
			if calls == 1 {
				return nil, ErrRejoinGaveUp // any error
			}
			return &Attempt{ID: id, CaughtUp: func() bool { return true }, Close: func() {}}, nil
		},
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	}
	a, err := r.Run()
	if err != nil || a == nil || a.ID != 2 {
		t.Fatalf("Run = (%v, %v), want attempt id 2", a, err)
	}
}

func TestRejoinerGivesUp(t *testing.T) {
	closed := 0
	r := &Rejoiner{
		NextID: func(attempt int) ids.ProcessorID { return ids.ProcessorID(attempt) },
		Build: func(id ids.ProcessorID) (*Attempt, error) {
			return &Attempt{ID: id, CaughtUp: func() bool { return false }, Close: func() { closed++ }}, nil
		},
		AttemptTimeout: time.Millisecond,
		Poll:           time.Millisecond,
		MaxAttempts:    3,
		Sleep:          func(time.Duration) {},
	}
	if _, err := r.Run(); err != ErrRejoinGaveUp {
		t.Fatalf("err = %v, want ErrRejoinGaveUp", err)
	}
	if closed != 3 {
		t.Errorf("closed %d attempts, want 3", closed)
	}
}

func TestExpelledAndWatch(t *testing.T) {
	self := ids.ProcessorID(4)
	fault := core.ViewChange{Reason: core.ViewFault, Left: ids.NewMembership(4)}
	remove := core.ViewChange{Reason: core.ViewRemove, Left: ids.NewMembership(4)}
	otherFault := core.ViewChange{Reason: core.ViewFault, Left: ids.NewMembership(3)}
	add := core.ViewChange{Reason: core.ViewAdd, Joined: ids.NewMembership(4)}
	if !Expelled(self, fault) || !Expelled(self, remove) {
		t.Error("fault/remove naming self should count as expulsion")
	}
	if Expelled(self, otherFault) || Expelled(self, add) {
		t.Error("other-member fault or our own add is not an expulsion")
	}

	views, expelled := 0, 0
	cb := WatchExpulsion(self,
		func(core.ViewChange) { views++ },
		func(core.ViewChange) { expelled++ })
	cb(add)
	cb(otherFault)
	cb(fault)
	cb(fault) // only the first expulsion fires
	if views != 4 {
		t.Errorf("inner callback ran %d times, want 4", views)
	}
	if expelled != 1 {
		t.Errorf("onExpelled ran %d times, want 1", expelled)
	}
}
