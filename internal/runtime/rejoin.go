package runtime

import (
	"errors"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
)

// ErrRejoinGaveUp is returned by Rejoiner.Run when MaxAttempts attempts
// all failed to catch up.
var ErrRejoinGaveUp = errors.New("runtime: rejoin gave up after max attempts")

// BackoffConfig shapes the delay between rejoin attempts. Initial is
// the gap before the second attempt; the gap doubles per attempt up to
// Max (Max <= Initial means a fixed gap, matching the protocol-level
// resend semantics). Jitter in [0,0.9] spreads each delay uniformly in
// [d*(1-Jitter), d*(1+Jitter)], deterministically from the seed, so
// simultaneously crashed replicas do not probe in lockstep.
type BackoffConfig struct {
	Initial time.Duration
	Max     time.Duration
	Jitter  float64
}

func (b BackoffConfig) delay(attempt int, seed uint64) time.Duration {
	base, max := int64(b.Initial), int64(b.Max)
	if base <= 0 {
		return 0
	}
	d := base
	if max > base {
		for i := 1; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
	}
	if j := b.Jitter; j > 0 {
		if j > 0.9 {
			j = 0.9
		}
		h := splitmix(seed ^ (uint64(attempt) * 0x9e3779b97f4a7c15))
		frac := float64(h>>11) / float64(uint64(1)<<53)
		d = int64(float64(d) * (1 - j + 2*j*frac))
		if d < 1 {
			d = 1
		}
	}
	return time.Duration(d)
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Attempt is one live rejoin attempt: a freshly built node stack
// probing for readmission under a new ProcessorID.
type Attempt struct {
	// ID is the ProcessorID this attempt runs under.
	ID ids.ProcessorID
	// CaughtUp reports whether the replica has rejoined and finished
	// state transfer (typically !infra.Joining(og) && node joined).
	CaughtUp func() bool
	// Close tears the attempt down (runner + transport) so the next
	// attempt can start clean.
	Close func()
}

// Rejoiner automates recovery of an expelled replica. FTMP's fail-stop
// model forbids a convicted processor from returning under its old
// identity, so each attempt builds a whole new stack — fresh
// ProcessorID, node, transport — and probes for readmission
// (ftcorba.Rejoin / core.RequestRejoin). Run retries with exponential
// backoff until an attempt reports caught-up or MaxAttempts is spent.
type Rejoiner struct {
	// NextID mints the ProcessorID for the given attempt (1-based). It
	// must never repeat an identity the group may have convicted.
	NextID func(attempt int) ids.ProcessorID
	// Build constructs and starts an attempt under id. An error counts
	// as a failed attempt and is retried after backoff.
	Build func(id ids.ProcessorID) (*Attempt, error)
	// Backoff paces attempts. Zero Initial disables the delay.
	Backoff BackoffConfig
	// AttemptTimeout bounds how long one attempt may take to catch up
	// before it is closed and retried (default 5s).
	AttemptTimeout time.Duration
	// Poll is the CaughtUp sampling interval (default 10ms).
	Poll time.Duration
	// MaxAttempts bounds the number of attempts; 0 means unbounded.
	MaxAttempts int
	// Seed decorrelates backoff jitter across processes.
	Seed uint64
	// Sleep is an injection point for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Run drives attempts until one catches up, returning it still live
// (the caller owns its Close). Failed attempts are closed before the
// next begins.
func (r *Rejoiner) Run() (*Attempt, error) {
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	poll := r.Poll
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	timeout := r.AttemptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for attempt := 1; r.MaxAttempts == 0 || attempt <= r.MaxAttempts; attempt++ {
		if attempt > 1 {
			sleep(r.Backoff.delay(attempt-1, r.Seed))
		}
		trace.Inc("runtime.rejoin_attempts")
		a, err := r.Build(r.NextID(attempt))
		if err != nil {
			continue
		}
		for waited := time.Duration(0); ; waited += poll {
			if a.CaughtUp() {
				trace.Inc("runtime.rejoins_succeeded")
				return a, nil
			}
			if waited >= timeout {
				break
			}
			sleep(poll)
		}
		a.Close()
	}
	return nil, ErrRejoinGaveUp
}

// Expelled reports whether v records self's involuntary removal from
// the group: a fault conviction or a remove that names self among the
// departed. This is the trigger for automated rejoin.
func Expelled(self ids.ProcessorID, v core.ViewChange) bool {
	if v.Reason != core.ViewFault && v.Reason != core.ViewRemove {
		return false
	}
	return v.Left.Contains(self)
}

// WatchExpulsion wraps a ViewChange callback so that the first view
// recording self's expulsion also invokes onExpelled (exactly once).
// Typical use: fire the Rejoiner from a goroutine — onExpelled runs on
// the event-loop goroutine and must not block.
func WatchExpulsion(self ids.ProcessorID, cb func(core.ViewChange), onExpelled func(core.ViewChange)) func(core.ViewChange) {
	fired := false
	return func(v core.ViewChange) {
		if cb != nil {
			cb(v)
		}
		if !fired && Expelled(self, v) {
			fired = true
			trace.Inc("runtime.expulsions_seen")
			if onExpelled != nil {
				onExpelled(v)
			}
		}
	}
}
