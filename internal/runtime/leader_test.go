package runtime_test

// Durability tests for leader-mode ordering (FTMP 1.3): every sequenced
// delivery must hit the WAL as a RecSeq + RecOp pair — write-ahead of
// the application upcall — and the promise must hold across a leader
// crash and re-sequencing failover. Runs over real UDP loopback; meant
// to be raced.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// newLeaderNodes is newPipeNodes with cfg.Order = OrderLeader and an
// optional per-node WAL (wlogs[i] attaches to node i+1; nil entries and
// a nil slice mean no log).
func newLeaderNodes(t *testing.T, n int, opts runtime.Options, wlogs []*wal.Log) []*pnode {
	t.Helper()
	nodes := make([]*pnode, n)
	meshes := make([]*transport.UDPMesh, n)
	var members ids.Membership
	for i := 1; i <= n; i++ {
		members = members.Add(ids.ProcessorID(i))
	}
	for i := 0; i < n; i++ {
		p := ids.ProcessorID(i + 1)
		node := &pnode{p: p}
		cfg := core.DefaultConfig(p)
		cfg.Order = core.OrderLeader
		cfg.PGMP.SuspectTimeout = 2_000_000_000 // CI scheduler jitter headroom
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
			Deliver: func(d core.Delivery) {
				node.mu.Lock()
				node.got = append(node.got, string(d.Payload))
				node.mu.Unlock()
				if node.hook != nil {
					node.hook(node, d)
				}
			},
		}
		o := opts
		if i < len(wlogs) {
			o.WAL = wlogs[i]
		}
		var mesh *transport.UDPMesh
		r, err := runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			mesh = m
			return m, err
		}, o)
		if err != nil {
			t.Fatalf("runner %d: %v", i+1, err)
		}
		node.r = r
		nodes[i] = node
		meshes[i] = mesh
		t.Cleanup(r.Close)
	}
	for _, m := range meshes {
		for _, peer := range meshes {
			if err := m.AddPeer(peer.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, node := range nodes {
		node.r.Do(func(nd *core.Node, now int64) {
			nd.CreateGroup(now, grp, members)
		})
	}
	return nodes
}

// orderedRec is one sequenced delivery as the application saw it.
type orderedRec struct {
	epoch, seq uint64
	payload    string
}

// checkSeqLog verifies the write-ahead contract for one replica's
// recovered record stream against what its application observed:
// every RecOp delivery is immediately preceded by its RecSeq (same
// group-commit chunk, sequencing record first), the logged sequence
// numbers reproduce the delivered ones exactly, and the log holds at
// least everything the application was shown (nothing delivered that
// is not logged). Returns the logged deliveries in log order.
func checkSeqLog(t *testing.T, who ids.ProcessorID, records []wal.Record, seen []orderedRec) []wal.OpRecord {
	t.Helper()
	var ops []wal.OpRecord
	var lastSeq *wal.SeqRecord
	idx := 0
	for _, r := range records {
		switch r.Type {
		case wal.RecSeq:
			if r.Seq.Group != grp {
				t.Fatalf("P%v: RecSeq for unexpected group %v", who, r.Seq.Group)
			}
			lastSeq = r.Seq
		case wal.RecOp:
			if lastSeq == nil {
				t.Fatalf("P%v: delivery %d logged without a preceding RecSeq", who, len(ops))
			}
			if idx < len(seen) {
				want := seen[idx]
				if lastSeq.Epoch != want.epoch || lastSeq.Seq != want.seq {
					t.Fatalf("P%v: logged assignment %d = (epoch %d, seq %d), app saw (epoch %d, seq %d)",
						who, idx, lastSeq.Epoch, lastSeq.Seq, want.epoch, want.seq)
				}
				if string(r.Op.Payload) != want.payload {
					t.Fatalf("P%v: logged payload %d = %q, app saw %q", who, idx, r.Op.Payload, want.payload)
				}
			}
			ops = append(ops, *r.Op)
			lastSeq = nil
			idx++
		default:
			// RecEpoch/RecWedge etc. may interleave between deliveries
			// but never split a RecSeq from its RecOp.
			if lastSeq != nil {
				t.Fatalf("P%v: record type %d splits a RecSeq from its RecOp", who, r.Type)
			}
		}
	}
	if len(ops) < len(seen) {
		t.Fatalf("P%v: application saw %d deliveries but only %d are logged (delivered without logging)",
			who, len(seen), len(ops))
	}
	return ops
}

// TestLeaderPipelineDurableFailover runs a three-node leader-mode
// cluster where every replica is durable, kills the leader mid-run,
// and checks the full acceptance property after failover: no ordering
// gap, no duplicate, and nothing delivered that is not logged — on the
// survivors and on the crashed leader's own log.
func TestLeaderPipelineDurableFailover(t *testing.T) {
	const n = 3
	fss := make([]*wal.MemFS, n)
	wlogs := make([]*wal.Log, n)
	for i := range fss {
		fss[i] = wal.NewMemFS()
		w, _, err := wal.Open(wal.Config{FS: fss[i], Policy: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		wlogs[i] = w
	}
	opts := pipeOpts()
	opts.WALBatch = 8
	nodes := newLeaderNodes(t, n, opts, wlogs)

	var mu sync.Mutex
	seen := make(map[ids.ProcessorID][]orderedRec)
	for _, node := range nodes {
		node.hook = func(nd *pnode, d core.Delivery) {
			if d.OrderSeq == 0 {
				t.Errorf("P%v: leader-mode delivery %q with OrderSeq=0", nd.p, d.Payload)
			}
			mu.Lock()
			seen[nd.p] = append(seen[nd.p], orderedRec{d.OrderEpoch, d.OrderSeq, string(d.Payload)})
			mu.Unlock()
		}
	}
	seenAt := func(p ids.ProcessorID) []orderedRec {
		mu.Lock()
		defer mu.Unlock()
		return append([]orderedRec(nil), seen[p]...)
	}

	// Phase 1: everyone (the leader included) multicasts.
	const each = 8
	send := func(node *pnode, tag string) {
		for i := 0; i < each; i++ {
			payload := fmt.Sprintf("%s-P%v-%03d", tag, node.p, i)
			node.r.Do(func(nd *core.Node, now int64) {
				if err := nd.Multicast(now, grp, ids.ConnectionID{}, 0, []byte(payload)); err != nil {
					t.Errorf("multicast %s: %v", payload, err)
				}
			})
			time.Sleep(time.Millisecond)
		}
	}
	var wg sync.WaitGroup
	for _, node := range nodes {
		node := node
		wg.Add(1)
		go func() { defer wg.Done(); send(node, "pre") }()
	}
	wg.Wait()
	pre := n * each
	if !waitFor(t, 15*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.delivered()) < pre {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("pre-crash deliveries incomplete: %d/%d/%d of %d",
			len(nodes[0].delivered()), len(nodes[1].delivered()), len(nodes[2].delivered()), pre)
	}

	// Crash the leader (P1): hard stop, no leave. Its executor drains on
	// Close, so its own log must still cover everything it delivered.
	nodes[0].r.Close()

	// Survivors convict the leader and install {P2, P3}; P2 takes over
	// sequencing and re-sequences any unassigned backlog.
	survivors := nodes[1:]
	if !waitFor(t, 15*time.Second, func() bool {
		for _, node := range survivors {
			var m int
			node.r.Do(func(nd *core.Node, _ int64) {
				if st, ok := nd.Status(grp); ok {
					m = len(st.Members)
				}
			})
			if m != n-1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("survivors did not install the post-crash view")
	}

	// Phase 2: traffic under the new leader.
	for _, node := range survivors {
		node := node
		wg.Add(1)
		go func() { defer wg.Done(); send(node, "post") }()
	}
	wg.Wait()
	total := pre + (n-1)*each
	if !waitFor(t, 15*time.Second, func() bool {
		for _, node := range survivors {
			if len(node.delivered()) < total {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("post-failover deliveries incomplete: %d/%d of %d",
			len(survivors[0].delivered()), len(survivors[1].delivered()), total)
	}

	// Survivors agree byte for byte, with no duplicates and a dense
	// delivery sequence 1..total spanning the epoch bump.
	a, b := seenAt(2), seenAt(3)
	if len(a) != total || len(b) != total {
		t.Fatalf("delivered %d and %d sequenced messages, want exactly %d", len(a), len(b), total)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("survivors diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].seq != uint64(i+1) {
			t.Fatalf("delivery sequence not dense at %d: got seq %d (epoch %d)", i, a[i].seq, a[i].epoch)
		}
	}
	if a[0].epoch != 0 || a[total-1].epoch != 1 {
		t.Fatalf("expected the failover to bump the sequencing term 0 -> 1, got first epoch %d last epoch %d",
			a[0].epoch, a[total-1].epoch)
	}

	// Durability: sync and close the survivors, then recover each log.
	for i, node := range survivors {
		if err := node.r.WALSync(); err != nil {
			t.Fatalf("WALSync P%v: %v", node.p, err)
		}
		node.r.Close()
		if err := wlogs[i+1].Close(); err != nil {
			t.Fatalf("wal close P%v: %v", node.p, err)
		}
	}
	if err := wlogs[0].Close(); err != nil {
		t.Fatalf("wal close P1: %v", err)
	}
	for i, node := range append([]*pnode{nodes[0]}, survivors...) {
		fs := fss[0]
		if i > 0 {
			fs = fss[i]
		}
		_, rec, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncNever})
		if err != nil {
			t.Fatalf("reopen P%v: %v", node.p, err)
		}
		ops := checkSeqLog(t, node.p, rec.Records, seenAt(node.p))
		replay := runtime.RecoverReplay(rec.Records)
		if len(replay.Deliveries) != len(ops) {
			t.Fatalf("P%v: replay folded %d deliveries from %d logged (duplicates in the log?)",
				node.p, len(replay.Deliveries), len(ops))
		}
		if node.p != 1 {
			sr, ok := replay.Seqs[grp]
			if !ok {
				t.Fatalf("P%v: no recovered sequencing watermark", node.p)
			}
			if sr.Epoch != 1 || sr.Seq != uint64(total) {
				t.Fatalf("P%v: recovered watermark (epoch %d, seq %d), want (1, %d)", node.p, sr.Epoch, sr.Seq, total)
			}
		}
	}
}
