// Package runtime drives an FTMP node over a real network in real time.
// The node itself is a single-threaded state machine (package core); the
// Runner serializes everything onto one event-loop goroutine: received
// datagrams, timer ticks, and application operations submitted through
// Do. Upcalls (deliveries, view changes, fault reports) run on the loop
// goroutine, so application callbacks see the same single-threaded world
// the simulator provides.
package runtime

import (
	"sync"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/transport"
	"ftmp/internal/wire"
)

// packet is one received datagram queued for the loop.
type packet struct {
	data []byte
	addr wire.MulticastAddr
}

// Runner hosts one FTMP node on a transport.
type Runner struct {
	Node *core.Node

	tr       transport.Transport
	packets  chan packet
	ops      chan func(now int64)
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	tick     time.Duration
	start    time.Time
}

// Options configures a Runner.
type Options struct {
	// Tick is the timer cadence (default 1ms).
	Tick time.Duration
	// QueueDepth bounds the receive queue (default 4096). Overflow
	// drops datagrams, which the protocol treats as network loss.
	QueueDepth int
}

// New creates a runner. The caller supplies the node configuration and
// callbacks; the runner overrides the transport-facing callbacks
// (Transmit, Subscribe, Unsubscribe) to use mkTransport's transport and
// leaves the application-facing ones (Deliver, ViewChange, FaultReport)
// untouched. mkTransport receives the handler the transport must invoke.
func New(cfg core.Config, cb core.Callbacks, mkTransport func(transport.Handler) (transport.Transport, error), opt Options) (*Runner, error) {
	if opt.Tick == 0 {
		opt.Tick = time.Millisecond
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 4096
	}
	r := &Runner{
		packets: make(chan packet, opt.QueueDepth),
		ops:     make(chan func(now int64), 256),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tick:    opt.Tick,
		start:   time.Now(),
	}
	tr, err := mkTransport(func(data []byte, addr wire.MulticastAddr) {
		select {
		case r.packets <- packet{data: data, addr: addr}:
		default:
			// Queue overflow: drop, as a congested NIC would.
		}
	})
	if err != nil {
		return nil, err
	}
	r.tr = tr
	cb.Transmit = func(addr wire.MulticastAddr, data []byte) {
		// Best-effort: transmission errors look like loss to the peer
		// and are repaired by the protocol.
		_ = tr.Send(addr, data)
	}
	cb.Subscribe = func(addr wire.MulticastAddr) { _ = tr.Join(addr) }
	cb.Unsubscribe = func(addr wire.MulticastAddr) { _ = tr.Leave(addr) }
	r.Node = core.NewNode(cfg, cb)
	go r.loop()
	return r, nil
}

// now returns monotonic nanoseconds since the runner started.
func (r *Runner) now() int64 { return int64(time.Since(r.start)) }

// Now returns the runner's monotonic clock. Callbacks that run on the
// loop goroutine (Deliver, ViewChange, FaultReport) may use it to
// timestamp follow-up operations.
func (r *Runner) Now() int64 { return r.now() }

func (r *Runner) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case p := <-r.packets:
			r.Node.HandlePacket(p.data, p.addr, r.now())
		case op := <-r.ops:
			op(r.now())
		case <-ticker.C:
			r.Node.Tick(r.now())
		}
	}
}

// Do runs fn on the loop goroutine with the current time and waits for
// it to finish. All Node method calls must go through Do.
func (r *Runner) Do(fn func(node *core.Node, now int64)) {
	ack := make(chan struct{})
	select {
	case r.ops <- func(now int64) {
		fn(r.Node, now)
		close(ack)
	}:
	case <-r.stop:
		return
	}
	select {
	case <-ack:
	case <-r.done:
	}
}

// Close stops the loop and the transport.
func (r *Runner) Close() {
	r.stopOnce.Do(func() {
		close(r.stop)
		<-r.done
		_ = r.tr.Close()
	})
}
