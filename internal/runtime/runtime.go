// Package runtime drives an FTMP node over a real network in real time.
// The node itself is a single-threaded state machine (package core) and
// stays that way; the Runner serializes everything onto one event-loop
// goroutine: received datagrams, timer ticks, and application
// operations submitted through Do.
//
// By default the runner is fully synchronous — upcalls (deliveries,
// view changes, fault reports) run on the loop goroutine, so
// application callbacks see the same single-threaded world the
// simulator provides. Options can independently move each side of the
// datapath off the loop, turning the runner into a pipeline around the
// still-single-threaded core:
//
//	readers ──▶ rxRing ──▶ decode workers ─┐
//	                                       ▼ (in arrival order)
//	                        event loop: core.HandleBatch / Tick / Do
//	                           │                      │
//	                 Transmit  ▼                      ▼  Deliver/ViewChange/FaultReport
//	              sharded send queues        ordered delivery executor
//	                           │                      │ (WAL group commit, then app)
//	                           ▼                      ▼
//	                       transport              application
//
// RecvWorkers moves datagram decode off the loop (the ring resequences,
// so the core still sees arrival order). DeliveryDepth moves upcalls
// onto an ordered executor, optionally group-committing a write-ahead
// log (WAL) before the application observes each event — the pipelined
// equivalent of WrapDurable. SendShards moves socket writes off the
// loop. Each is opt-in precisely because some hosts (the CORBA infra)
// require loop-affine callbacks; zero Options reproduce the legacy
// synchronous runner exactly.
package runtime

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// packet is one received datagram queued for the loop (legacy path).
type packet struct {
	data []byte
	addr wire.MulticastAddr
}

// Runner hosts one FTMP node on a transport.
type Runner struct {
	Node *core.Node

	tr       transport.Transport
	packets  chan packet // legacy receive queue (nil when ring is set)
	ring     *rxRing     // pipelined receive ring (nil when packets is set)
	workers  int
	workStop chan struct{}
	workWG   sync.WaitGroup
	batchMax int
	batch    []core.Incoming
	paused   bool // loop-only: ingestion paused by executor backlog

	exec *executor
	snd  *sender

	ops      chan func(now int64)
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	tick     time.Duration
	start    time.Time

	dropWarn warnLimiter
}

// Options configures a Runner. The zero value is the legacy fully
// synchronous runner; each pipeline stage is enabled independently.
type Options struct {
	// Tick is the timer cadence (default 1ms).
	Tick time.Duration
	// QueueDepth bounds the receive queue — the channel depth on the
	// legacy path, the ring capacity (rounded up to a power of two) when
	// RecvWorkers > 0 (default 4096). Overflow drops datagrams, which
	// the protocol treats as network loss; drops are counted in the
	// runtime.rx_overflow_drops trace counter.
	QueueDepth int

	// RecvWorkers > 0 enables the parallel receive stage: that many
	// decode workers pre-parse datagrams off the loop and the loop
	// ingests them in arrival-order batches via core.HandleBatch.
	RecvWorkers int
	// BatchMax caps the messages per HandleBatch call (default 256).
	BatchMax int

	// DeliveryDepth > 0 enables the async ordered delivery executor:
	// Deliver/ViewChange/FaultReport upcalls run on a dedicated
	// goroutine in emission order, and when the executor's backlog
	// reaches DeliveryDepth the loop pauses receive-ring ingestion (the
	// loop itself stays live) until the application catches up.
	// Application callbacks then run OFF the loop goroutine; they may
	// still call Runner.Do.
	DeliveryDepth int
	// WAL, when set together with DeliveryDepth, is group-committed by
	// the executor: all records implied by one executor chunk become
	// durable in a single fsync (wal.SyncBatch) before any of the
	// chunk's callbacks run. This replaces WrapDurable — do not use
	// both. Ignored when DeliveryDepth == 0.
	WAL *wal.Log
	// WALBatch caps upcalls per group commit (default 64).
	WALBatch int
	// OnWALError hears executor WAL failures (may be nil); as with
	// WrapDurable the event still reaches the application.
	OnWALError func(error)

	// SendShards > 0 enables the async send stage: transmissions are
	// hashed by destination onto that many bounded FIFO queues, each
	// drained by its own goroutine. Full-queue overflow drops the packet
	// (counted in runtime.tx_overflow_drops).
	SendShards int
	// SendDepth bounds each send shard's queue (default 1024).
	SendDepth int

	// SendBatch > 1 (with SendShards > 0, on a transport implementing
	// transport.BatchSender) lets each send shard coalesce its queued
	// backlog — up to this many frames — into one SendBatch call per
	// wakeup, which the batched transports turn into sendmmsg(2)
	// vectors. 0 or 1 keeps one transport Send per frame. Purely a
	// syscall amortization: per-destination FIFO and every protocol
	// effect are unchanged.
	SendBatch int
	// SendFlushDelay, with SendBatch > 1, lets an idle shard linger this
	// long for a second frame before flushing a single-frame vector.
	// Zero (the default) flushes immediately — batching then only
	// engages when a backlog exists, which is the load case it is for.
	SendFlushDelay time.Duration
}

// New creates a runner. The caller supplies the node configuration and
// callbacks; the runner overrides the transport-facing callbacks
// (Transmit, Subscribe, Unsubscribe) to use mkTransport's transport and
// leaves the application-facing ones (Deliver, ViewChange, FaultReport)
// untouched — though with DeliveryDepth > 0 they are invoked from the
// executor goroutine instead of the loop. mkTransport receives the
// handler the transport must invoke.
func New(cfg core.Config, cb core.Callbacks, mkTransport func(transport.Handler) (transport.Transport, error), opt Options) (*Runner, error) {
	if opt.Tick == 0 {
		opt.Tick = time.Millisecond
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 4096
	}
	if opt.BatchMax == 0 {
		opt.BatchMax = 256
	}
	if opt.WALBatch == 0 {
		opt.WALBatch = 64
	}
	if opt.SendDepth == 0 {
		opt.SendDepth = 1024
	}
	r := &Runner{
		ops:      make(chan func(now int64), 256),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		tick:     opt.Tick,
		start:    time.Now(),
		workers:  opt.RecvWorkers,
		batchMax: opt.BatchMax,
	}

	var handler transport.Handler
	if opt.RecvWorkers > 0 {
		r.ring = newRxRing(opt.QueueDepth)
		r.workStop = make(chan struct{})
		r.batch = make([]core.Incoming, 0, opt.BatchMax)
		handler = func(data []byte, addr wire.MulticastAddr) {
			if !r.ring.offer(data, addr) {
				r.noteRxDrop()
			}
		}
	} else {
		r.packets = make(chan packet, opt.QueueDepth)
		handler = func(data []byte, addr wire.MulticastAddr) {
			select {
			case r.packets <- packet{data: data, addr: addr}:
			default:
				// Queue overflow: drop, as a congested NIC would — but
				// never silently.
				r.noteRxDrop()
			}
		}
	}

	tr, err := mkTransport(handler)
	if err != nil {
		return nil, err
	}
	r.tr = tr

	if opt.SendShards > 0 {
		r.snd = newSender(tr, opt.SendShards, opt.SendDepth, opt.SendBatch, opt.SendFlushDelay)
		cb.Transmit = r.snd.send
	} else {
		cb.Transmit = func(addr wire.MulticastAddr, data []byte) {
			// Best-effort: transmission errors look like loss to the peer
			// and are repaired by the protocol.
			_ = tr.Send(addr, data)
		}
	}
	cb.Subscribe = func(addr wire.MulticastAddr) { _ = tr.Join(addr) }
	cb.Unsubscribe = func(addr wire.MulticastAddr) { _ = tr.Leave(addr) }

	if opt.DeliveryDepth > 0 {
		app := core.Callbacks{
			Deliver:     cb.Deliver,
			ViewChange:  cb.ViewChange,
			FaultReport: cb.FaultReport,
		}
		r.exec = newExecutor(app, opt.WAL, opt.WALBatch, opt.DeliveryDepth, opt.OnWALError)
		cb.Deliver = func(d core.Delivery) {
			r.exec.enqueue(upcall{kind: upDeliver, d: d})
		}
		cb.ViewChange = func(v core.ViewChange) {
			r.exec.enqueue(upcall{kind: upView, v: v})
		}
		cb.FaultReport = func(g ids.GroupID, convicted ids.Membership) {
			r.exec.enqueue(upcall{kind: upFault, group: g, convicted: convicted})
		}
	}

	r.Node = core.NewNode(cfg, cb)
	for i := 0; i < r.workers; i++ {
		r.workWG.Add(1)
		go r.decodeWorker()
	}
	go r.loop()
	return r, nil
}

// noteRxDrop counts a receive overflow and warns, rate-limited, so a
// persistently overrun replica is visible in logs without flooding them.
func (r *Runner) noteRxDrop() {
	trace.Inc("runtime.rx_overflow_drops")
	if r.dropWarn.allow(time.Now().UnixNano(), int64(time.Second)) {
		fmt.Fprintf(os.Stderr,
			"ftmp/runtime: receive queue overflow, dropping datagrams (%d so far)\n",
			trace.Counter("runtime.rx_overflow_drops"))
	}
}

// decodeWorker pre-parses datagrams off the loop with its own decoder.
func (r *Runner) decodeWorker() {
	defer r.workWG.Done()
	var dec wire.Decoder
	for r.ring.decodeOne(&dec, r.workStop) {
	}
}

// now returns monotonic nanoseconds since the runner started.
func (r *Runner) now() int64 { return int64(time.Since(r.start)) }

// Now returns the runner's monotonic clock. Callbacks may use it to
// timestamp follow-up operations.
func (r *Runner) Now() int64 { return r.now() }

func (r *Runner) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	if r.ring != nil {
		for {
			select {
			case <-r.stop:
				return
			case <-r.ring.notify:
				r.drainRing()
			case op := <-r.ops:
				op(r.now())
			case <-ticker.C:
				// The tick also resumes ingestion after a backpressure
				// pause (the ring's wakeup may have been consumed while
				// paused), at worst one tick late.
				r.drainRing()
				r.Node.Tick(r.now())
			}
		}
	}
	for {
		select {
		case <-r.stop:
			return
		case p := <-r.packets:
			r.Node.HandlePacket(p.data, p.addr, r.now())
		case op := <-r.ops:
			op(r.now())
		case <-ticker.C:
			r.Node.Tick(r.now())
		}
	}
}

// drainRing feeds one batch from the receive ring into the core,
// unless the delivery executor is backlogged — then ingestion pauses
// (the ring and, transitively, the kernel socket buffer absorb the
// burst) while ticks and operations stay live.
func (r *Runner) drainRing() {
	if r.exec != nil && r.exec.backlogged() {
		if !r.paused {
			r.paused = true
			trace.Inc("runtime.ingest_pauses")
		}
		return
	}
	r.paused = false
	batch, errs := r.ring.drain(r.batchMax, r.batch[:0])
	if errs > 0 {
		r.Node.NoteDecodeErrors(errs)
	}
	if len(batch) > 0 {
		r.Node.HandleBatch(batch, r.now())
		trace.Inc("runtime.rx_batches")
		trace.Count("runtime.rx_batched_msgs", uint64(len(batch)))
	}
	r.batch = batch[:0]
	if r.ring.hasReady() {
		// Hit the batch cap with more already decoded: re-arm.
		r.ring.wake()
	}
}

// Do runs fn on the loop goroutine with the current time and waits for
// it to finish. All Node method calls must go through Do.
func (r *Runner) Do(fn func(node *core.Node, now int64)) {
	ack := make(chan struct{})
	select {
	case r.ops <- func(now int64) {
		fn(r.Node, now)
		close(ack)
	}:
	case <-r.stop:
		return
	}
	select {
	case <-ack:
	case <-r.done:
	}
}

// WALSync is the durability barrier for executor-owned WALs: it blocks
// until every upcall enqueued before it has run and the log is forced
// to stable storage. With no executor (or no WAL) it returns nil — the
// legacy path syncs its log directly.
func (r *Runner) WALSync() error {
	if r.exec == nil {
		return nil
	}
	ch := make(chan error, 1)
	r.exec.enqueue(upcall{kind: upBarrier, barrier: ch})
	return <-ch
}

// WALExec runs fn on the goroutine that owns the WAL, after every
// upcall enqueued before it has committed — the hook for WAL
// compaction, which needs exclusive, quiescent log access. With an
// executor the fn runs there; without one it runs on the event loop
// (the legacy single-threaded owner). Must not be called from an
// application callback (it would deadlock waiting on its own queue).
func (r *Runner) WALExec(fn func() error) error {
	if r.exec == nil {
		var err error
		r.Do(func(*core.Node, int64) { err = fn() })
		return err
	}
	ch := make(chan error, 1)
	r.exec.enqueue(upcall{kind: upExec, exec: fn, barrier: ch})
	return <-ch
}

// Backlogged reports whether the delivery executor is over its
// watermark (ingestion paused). Always false without an executor.
func (r *Runner) Backlogged() bool {
	return r.exec != nil && r.exec.backlogged()
}

// Close stops the pipeline in dependency order: the loop first (no new
// sends or upcalls), then the send shards flush while the transport is
// still up, then the transport (stops the readers), the decode workers,
// and finally the executor drains every remaining upcall — including
// the final WAL group commit and sync.
func (r *Runner) Close() {
	r.stopOnce.Do(func() {
		close(r.stop)
		<-r.done
		if r.snd != nil {
			r.snd.close()
		}
		_ = r.tr.Close()
		if r.workStop != nil {
			close(r.workStop)
			r.workWG.Wait()
		}
		if r.exec != nil {
			r.exec.close()
		}
	})
}

// warnLimiter allows one event per interval, concurrency-safe.
type warnLimiter struct {
	last atomic.Int64
}

func (w *warnLimiter) allow(now, interval int64) bool {
	l := w.last.Load()
	if l != 0 && now-l < interval {
		return false
	}
	return w.last.CompareAndSwap(l, now)
}
