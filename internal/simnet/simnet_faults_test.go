package simnet

import "testing"

// Fault-interaction schedules: the compositions of Crash, Restart,
// Partition and Heal that the crash-recovery pipeline tests lean on.
// Each one pins down a semantic the protocol layers assume.

// A node restarted while the network is partitioned stays isolated from
// the other component and resumes ticking, and healing reconnects it.
func TestRestartDuringPartition(t *testing.T) {
	n := New(1, Config{LatencyBase: Millisecond})
	a, b := &recorder{}, &recorder{}
	n.AddNode(1, a, 10*Millisecond)
	n.AddNode(2, b, 10*Millisecond)
	n.Subscribe(1, 100)
	n.Subscribe(2, 100)
	n.Partition([]NodeID{1}, []NodeID{2})
	n.Crash(2)
	n.Run(30 * Millisecond)
	n.Restart(2)
	base := len(b.ticks)
	n.Send(1, 100, []byte("x"))
	n.Run(60 * Millisecond)
	if len(b.pkts) != 0 {
		t.Fatalf("partitioned restarted node received %d packets", len(b.pkts))
	}
	if len(b.ticks) <= base {
		t.Fatal("ticks did not resume after restart under partition")
	}
	n.Heal()
	n.Send(1, 100, []byte("y"))
	n.Run(100 * Millisecond)
	if len(b.pkts) != 1 || string(b.pkts[0]) != "y" {
		t.Fatalf("after heal got %d packets %q, want just %q", len(b.pkts), b.pkts, "y")
	}
}

// A crash inside a partition outlives the heal: the node stays dead and
// unreachable until explicitly restarted, and packets sent while it was
// down are lost, not queued.
func TestCrashWhilePartitionedThenHeal(t *testing.T) {
	n := New(1, Config{LatencyBase: Millisecond})
	a, b := &recorder{}, &recorder{}
	n.AddNode(1, a, 0)
	n.AddNode(2, b, 0)
	n.Subscribe(1, 100)
	n.Subscribe(2, 100)
	n.Partition([]NodeID{1}, []NodeID{2})
	n.Crash(2)
	n.Heal()
	n.Send(1, 100, []byte("lost"))
	n.Run(10 * Millisecond)
	if len(b.pkts) != 0 {
		t.Fatalf("crashed node received %d packets after heal", len(b.pkts))
	}
	n.Restart(2)
	n.Run(20 * Millisecond)
	if len(b.pkts) != 0 {
		t.Fatal("packet sent during the crash was queued instead of lost")
	}
	n.Send(1, 100, []byte("alive"))
	n.Run(30 * Millisecond)
	if len(b.pkts) != 1 || string(b.pkts[0]) != "alive" {
		t.Fatalf("restarted healed node got %q, want [alive]", b.pkts)
	}
}

// Back-to-back Crash/Restart cycles — faster than one tick period — must
// leave exactly one tick chain running at the configured rate. A
// datagram in flight across a quick restart is delivered (the node is up
// when it arrives, as with a real UDP socket), while one arriving inside
// a crash window is dropped, not queued for the restart.
func TestBackToBackCrashRestart(t *testing.T) {
	n := New(1, Config{LatencyBase: 5 * Millisecond})
	a, b := &recorder{}, &recorder{}
	n.AddNode(1, a, 0)
	n.AddNode(2, b, 10*Millisecond)
	n.Subscribe(2, 100)
	n.Run(15 * Millisecond)                 // one tick at 10ms
	n.Send(1, 100, []byte("across-cycles")) // delivers at 20ms, node up again
	for i := 0; i < 3; i++ {                // three cycles within one tick period
		n.Crash(2)
		n.Run(n.Now() + Millisecond)
		n.Restart(2)
	}
	n.Run(100 * Millisecond)
	if len(b.pkts) != 1 || string(b.pkts[0]) != "across-cycles" {
		t.Fatalf("in-flight packet across quick restarts = %q, want [across-cycles]", b.pkts)
	}
	// Ticks: one at 10ms before the cycles, then a single fresh chain
	// from the last restart at 18ms -> 28, 38, ..., 98.
	if got, want := len(b.ticks), 1+8; got != want {
		t.Fatalf("tick count = %d, want %d (duplicated or lost tick chain): %v", got, want, b.ticks)
	}
	for i := 2; i < len(b.ticks); i++ {
		if d := b.ticks[i] - b.ticks[i-1]; d != int64(10*Millisecond) {
			t.Fatalf("tick interval %d ns at index %d, want one period; chain duplicated: %v", d, i, b.ticks)
		}
	}
	// A delivery that lands inside a crash window is lost for good.
	n.Crash(2)
	n.Send(1, 100, []byte("dropped"))
	n.Run(n.Now() + 10*Millisecond)
	n.Restart(2)
	n.Run(n.Now() + 20*Millisecond)
	if len(b.pkts) != 1 {
		t.Fatalf("crash-window delivery survived the restart: %q", b.pkts)
	}
	// The node is fully functional after all of it.
	n.Send(1, 100, []byte("ok"))
	n.Run(n.Now() + 20*Millisecond)
	if got := b.pkts[len(b.pkts)-1]; len(b.pkts) != 2 || string(got) != "ok" {
		t.Fatalf("post-cycle delivery = %q, want trailing %q", b.pkts, "ok")
	}
}
