// Package simnet is a deterministic discrete-event simulation of an IP
// multicast network. It substitutes for the multicast LAN the paper's
// protocol runs on: datagrams sent to a multicast address are delivered,
// after a sampled latency, to every subscribed node, with configurable
// independent loss, duplication and partitions.
//
// Determinism: all randomness flows from a single seeded generator and
// events with equal firing times are ordered by insertion sequence, so a
// run is a pure function of (seed, program). This makes loss and failure
// experiments reproducible byte for byte.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time int64

// Common durations in virtual nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// NodeID identifies a simulated host.
type NodeID uint32

// Addr is a multicast address in the simulated network. The transport
// adapter packs IPv4 address and port into it.
type Addr uint64

// Endpoint is the behaviour simnet drives: a protocol node. Both methods
// are invoked on the simulation goroutine only.
type Endpoint interface {
	// HandlePacket delivers one datagram that arrived at now on the
	// multicast address addr (the socket/group it was received on).
	HandlePacket(data []byte, addr Addr, now int64)
	// Tick fires periodically (the node's timer service).
	Tick(now int64)
}

// EndpointFunc adapts plain functions to the Endpoint interface.
type EndpointFunc struct {
	OnPacket func(data []byte, addr Addr, now int64)
	OnTick   func(now int64)
}

// HandlePacket implements Endpoint.
func (e EndpointFunc) HandlePacket(data []byte, addr Addr, now int64) {
	if e.OnPacket != nil {
		e.OnPacket(data, addr, now)
	}
}

// Tick implements Endpoint.
func (e EndpointFunc) Tick(now int64) {
	if e.OnTick != nil {
		e.OnTick(now)
	}
}

// Config sets the network's behaviour. The zero value is a perfect
// zero-latency network; NewConfig supplies realistic LAN defaults.
type Config struct {
	// LatencyBase is the fixed one-way latency applied to every packet.
	LatencyBase Time
	// LatencyJitter is the upper bound of the uniform random extra
	// latency per (packet, receiver). Jitter causes reordering.
	LatencyJitter Time
	// LossRate is the independent probability that a given (packet,
	// receiver) delivery is dropped, in [0,1).
	LossRate float64
	// DupRate is the independent probability that a delivery is
	// duplicated (delivered twice, second copy with fresh jitter).
	DupRate float64
	// Bandwidth, in bytes per second, models the sender's link
	// serialization: a node's packets depart one after another, each
	// occupying the link for size/Bandwidth. Zero disables the model
	// (infinite bandwidth).
	Bandwidth float64
	// PerPacketOverhead is a fixed link occupancy charged per datagram on
	// top of its size/Bandwidth serialization time — the interrupt,
	// syscall and framing cost that makes many small datagrams slower
	// than one large one, and thus what message packing amortizes. Zero
	// (the default, and what every pre-existing experiment uses) leaves
	// the bandwidth model exactly as before.
	PerPacketOverhead Time
}

// NewConfig returns LAN-like defaults: 200 microseconds one-way latency
// with 50 microseconds of jitter, a 100 Mbit/s sender link, and no loss.
func NewConfig() Config {
	return Config{
		LatencyBase:   200 * Microsecond,
		LatencyJitter: 50 * Microsecond,
		Bandwidth:     12_500_000, // 100 Mbit/s
	}
}

// Stats aggregates network-level counters for experiments.
type Stats struct {
	PacketsSent      uint64 // datagrams handed to the network
	PacketsDelivered uint64 // per-receiver deliveries completed
	PacketsDropped   uint64 // per-receiver deliveries lost
	PacketsDuplicate uint64 // extra deliveries due to duplication
	BytesSent        uint64 // payload bytes handed to the network
	BytesDelivered   uint64 // payload bytes delivered (per receiver)
}

type eventKind uint8

const (
	evDeliver eventKind = iota
	evTick
	evFunc
)

type event struct {
	at   Time
	seq  uint64 // insertion order tie-break
	kind eventKind
	node NodeID // evDeliver, evTick
	gen  uint64 // evTick: tick chain generation (see node.tickGen)
	data []byte // evDeliver
	addr Addr   // evDeliver
	fn   func() // evFunc
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type node struct {
	ep      Endpoint
	tick    Time // tick period, 0 = no ticks
	crashed bool
	subs    map[Addr]bool
	// tickGen invalidates queued tick events across crash/restart
	// cycles: Crash bumps it, so a pre-crash tick still in the queue
	// cannot fire (or re-arm itself) after a quick Restart has already
	// started a fresh chain — back-to-back Crash/Restart must never
	// leave a node ticking at a multiple of its configured rate.
	tickGen uint64
	// txFree is when the node's link finishes serializing its previous
	// packet (the bandwidth model).
	txFree Time
}

// Net is the simulated network and event loop. Not safe for concurrent
// use: the whole simulation runs on one goroutine.
type Net struct {
	cfg   Config
	rng   *rand.Rand
	now   Time
	seq   uint64
	queue eventQueue
	nodes map[NodeID]*node
	order []NodeID // deterministic iteration order
	stats Stats
	// partition maps a node to its partition component; nodes in
	// different components cannot exchange packets. Empty = connected.
	partition map[NodeID]int
	// oneWay holds directed link cuts: oneWay[{from,to}] drops every
	// packet from→to while the reverse direction still works (an
	// asymmetric failure — a dead transmitter, a misprogrammed switch
	// filter). Independent of the component-based partition.
	oneWay map[linkKey]bool
	// dropFilter, when set, is consulted for every (from, to, payload)
	// triple before delivery; returning true drops that copy. It is the
	// deterministic fault-injection hook — unlike LossRate it can target
	// specific flows (e.g. state-transfer chunks) by inspecting the
	// payload.
	dropFilter func(from, to NodeID, data []byte) bool
}

// linkKey identifies one direction of a point-to-point link.
type linkKey struct {
	from, to NodeID
}

// New creates a network with the given seed and configuration.
func New(seed int64, cfg Config) *Net {
	return &Net{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[NodeID]*node),
		partition: make(map[NodeID]int),
		oneWay:    make(map[linkKey]bool),
	}
}

// Now returns the current virtual time in nanoseconds.
func (n *Net) Now() Time { return n.now }

// Stats returns a snapshot of the network counters.
func (n *Net) Stats() Stats { return n.stats }

// AddNode registers an endpoint. If tickEvery > 0 the endpoint's Tick is
// invoked with that period starting at the first period boundary.
func (n *Net) AddNode(id NodeID, ep Endpoint, tickEvery Time) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	n.nodes[id] = &node{ep: ep, tick: tickEvery, subs: make(map[Addr]bool)}
	n.order = append(n.order, id)
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	if tickEvery > 0 {
		n.post(&event{at: n.now + tickEvery, kind: evTick, node: id})
	}
}

// Subscribe joins id to the multicast address addr.
func (n *Net) Subscribe(id NodeID, addr Addr) {
	if nd, ok := n.nodes[id]; ok {
		nd.subs[addr] = true
	}
}

// Unsubscribe removes id from addr.
func (n *Net) Unsubscribe(id NodeID, addr Addr) {
	if nd, ok := n.nodes[id]; ok {
		delete(nd.subs, addr)
	}
}

// Crash stops delivering packets and ticks to and from id, modeling a
// crash fault (the paper's fault model).
func (n *Net) Crash(id NodeID) {
	if nd, ok := n.nodes[id]; ok && !nd.crashed {
		nd.crashed = true
		nd.tickGen++ // orphan any queued tick so Restart can't double the chain
	}
}

// Restart clears a crash. The endpoint keeps its state; protocols that
// need amnesia semantics must reset their own endpoint.
func (n *Net) Restart(id NodeID) {
	if nd, ok := n.nodes[id]; ok && nd.crashed {
		nd.crashed = false
		if nd.tick > 0 {
			n.post(&event{at: n.now + nd.tick, kind: evTick, node: id, gen: nd.tickGen})
		}
	}
}

// Partition splits the network into components; ids in different
// components cannot communicate. Nodes not mentioned stay in component 0.
func (n *Net) Partition(components ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for i, comp := range components {
		for _, id := range comp {
			n.partition[id] = i + 1
		}
	}
}

// PartitionOneWay cuts the directed link from→to: packets in that
// direction are dropped, the reverse direction still delivers. Models
// asymmetric failures (dead transmitter, one-sided switch filter).
func (n *Net) PartitionOneWay(from, to NodeID) {
	n.oneWay[linkKey{from, to}] = true
}

// HealOneWay restores the directed link from→to.
func (n *Net) HealOneWay(from, to NodeID) {
	delete(n.oneWay, linkKey{from, to})
}

// Heal removes all partitions, including one-way cuts.
func (n *Net) Heal() {
	n.partition = make(map[NodeID]int)
	n.oneWay = make(map[linkKey]bool)
}

// FlapLink schedules the bidirectional link between a and b to flap:
// starting at `start` it is cut for `down`, restored for `up`, and so
// on, for `cycles` cycles. Flapping exercises failure-detector
// robustness: suspicion, conviction, and rejoin race the link state.
func (n *Net) FlapLink(a, b NodeID, start, down, up Time, cycles int) {
	t := start
	for i := 0; i < cycles; i++ {
		n.At(t, func() {
			n.PartitionOneWay(a, b)
			n.PartitionOneWay(b, a)
		})
		n.At(t+down, func() {
			n.HealOneWay(a, b)
			n.HealOneWay(b, a)
		})
		t += down + up
	}
}

// SetLoss changes the loss rate mid-run.
func (n *Net) SetLoss(rate float64) { n.cfg.LossRate = rate }

// SetJitter changes the per-delivery latency jitter bound mid-run.
func (n *Net) SetJitter(j Time) { n.cfg.LatencyJitter = j }

// SetDropFilter installs (or, with nil, removes) a targeted drop
// predicate: every candidate delivery is offered to f and dropped when
// it returns true. Deterministic by construction — it sees exactly the
// (from, to, payload) triple, no RNG involved.
func (n *Net) SetDropFilter(f func(from, to NodeID, data []byte) bool) { n.dropFilter = f }

// At schedules fn to run at virtual time t (or immediately if t is in
// the past). Used by experiments to inject faults and workload.
func (n *Net) At(t Time, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.post(&event{at: t, kind: evFunc, fn: fn})
}

// Send multicasts data from node `from` to every subscriber of addr
// (including the sender if subscribed, as IP multicast loopback does).
func (n *Net) Send(from NodeID, addr Addr, data []byte) {
	sender, ok := n.nodes[from]
	if !ok || sender.crashed {
		return
	}
	n.stats.PacketsSent++
	n.stats.BytesSent += uint64(len(data))
	// Link serialization: this packet departs when the sender's link is
	// free and occupies it for size/bandwidth.
	depart := n.now
	if n.cfg.Bandwidth > 0 || n.cfg.PerPacketOverhead > 0 {
		if sender.txFree > depart {
			depart = sender.txFree
		}
		depart += n.cfg.PerPacketOverhead
		if n.cfg.Bandwidth > 0 {
			depart += Time(float64(len(data)) / n.cfg.Bandwidth * float64(Second))
		}
		sender.txFree = depart
	}
	// Copy once; deliveries share the immutable buffer.
	buf := make([]byte, len(data))
	copy(buf, data)
	for _, id := range n.order {
		nd := n.nodes[id]
		if !nd.subs[addr] || nd.crashed {
			continue
		}
		if n.partition[from] != n.partition[id] {
			continue
		}
		if len(n.oneWay) > 0 && n.oneWay[linkKey{from, id}] {
			n.stats.PacketsDropped++
			continue
		}
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			n.stats.PacketsDropped++
			continue
		}
		if n.dropFilter != nil && n.dropFilter(from, id, buf) {
			n.stats.PacketsDropped++
			continue
		}
		n.deliverAt(id, addr, buf, depart)
		if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
			n.stats.PacketsDuplicate++
			n.deliverAt(id, addr, buf, depart)
		}
	}
}

func (n *Net) deliverAt(id NodeID, addr Addr, buf []byte, depart Time) {
	d := n.cfg.LatencyBase
	if n.cfg.LatencyJitter > 0 {
		d += Time(n.rng.Int63n(int64(n.cfg.LatencyJitter)))
	}
	n.post(&event{at: depart + d, kind: evDeliver, node: id, data: buf, addr: addr})
}

func (n *Net) post(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// Step processes the next event; it reports false when the queue is empty.
func (n *Net) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	switch e.kind {
	case evDeliver:
		nd := n.nodes[e.node]
		if nd != nil && !nd.crashed {
			n.stats.PacketsDelivered++
			n.stats.BytesDelivered += uint64(len(e.data))
			nd.ep.HandlePacket(e.data, e.addr, int64(n.now))
		}
	case evTick:
		nd := n.nodes[e.node]
		if nd != nil && !nd.crashed && e.gen == nd.tickGen {
			nd.ep.Tick(int64(n.now))
			if nd.tick > 0 {
				n.post(&event{at: n.now + nd.tick, kind: evTick, node: e.node, gen: e.gen})
			}
		}
	case evFunc:
		e.fn()
	}
	return true
}

// Run executes events until virtual time reaches `until` or the queue
// drains. It returns the time at which it stopped.
func (n *Net) Run(until Time) Time {
	for n.queue.Len() > 0 && n.queue[0].at <= until {
		n.Step()
	}
	if n.now < until {
		n.now = until
	}
	return n.now
}

// RunUntil executes events until pred returns true (checked after each
// event), the deadline passes, or the queue drains. It reports whether
// pred became true.
func (n *Net) RunUntil(deadline Time, pred func() bool) bool {
	if pred() {
		return true
	}
	for n.queue.Len() > 0 && n.queue[0].at <= deadline {
		n.Step()
		if pred() {
			return true
		}
	}
	return false
}
