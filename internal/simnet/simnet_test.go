package simnet

import (
	"testing"
)

type recorder struct {
	pkts  [][]byte
	addrs []Addr
	times []int64
	ticks []int64
}

func (r *recorder) HandlePacket(data []byte, addr Addr, now int64) {
	r.pkts = append(r.pkts, data)
	r.addrs = append(r.addrs, addr)
	r.times = append(r.times, now)
}

func (r *recorder) Tick(now int64) { r.ticks = append(r.ticks, now) }

func TestBasicMulticastDelivery(t *testing.T) {
	n := New(1, Config{LatencyBase: Millisecond})
	a, b, c := &recorder{}, &recorder{}, &recorder{}
	n.AddNode(1, a, 0)
	n.AddNode(2, b, 0)
	n.AddNode(3, c, 0)
	n.Subscribe(1, 100)
	n.Subscribe(2, 100)
	// node 3 not subscribed
	n.Send(1, 100, []byte("hello"))
	n.Run(10 * Millisecond)
	if len(a.pkts) != 1 || len(b.pkts) != 1 {
		t.Fatalf("subscribers got %d,%d packets, want 1,1 (loopback included)", len(a.pkts), len(b.pkts))
	}
	if a.addrs[0] != 100 {
		t.Errorf("arrival addr = %d, want 100", a.addrs[0])
	}
	if len(c.pkts) != 0 {
		t.Error("non-subscriber received a packet")
	}
	if a.times[0] != int64(Millisecond) {
		t.Errorf("delivery at %d, want %d", a.times[0], Millisecond)
	}
	if string(b.pkts[0]) != "hello" {
		t.Errorf("payload = %q", b.pkts[0])
	}
}

func TestPerPacketOverheadSerializes(t *testing.T) {
	// Each datagram occupies the sender's link for the fixed overhead, so
	// back-to-back sends depart (and arrive) overhead apart.
	n := New(1, Config{PerPacketOverhead: Millisecond})
	r := &recorder{}
	n.AddNode(1, r, 0)
	n.Subscribe(1, 7)
	n.Send(1, 7, []byte("a"))
	n.Send(1, 7, []byte("b"))
	n.Run(Second)
	if len(r.times) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(r.times))
	}
	if got := r.times[1] - r.times[0]; got != int64(Millisecond) {
		t.Errorf("inter-arrival = %d, want %d (per-packet overhead)", got, Millisecond)
	}
}

func TestSenderBufferIsolation(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, r, 0)
	n.Subscribe(1, 5)
	buf := []byte("abc")
	n.Send(1, 5, buf)
	buf[0] = 'X' // mutate after send; delivery must see the original
	n.Run(Second)
	if string(r.pkts[0]) != "abc" {
		t.Errorf("delivery saw mutated buffer: %q", r.pkts[0])
	}
}

func TestLossRate(t *testing.T) {
	n := New(42, Config{LossRate: 0.5})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	const sends = 2000
	for i := 0; i < sends; i++ {
		n.Send(1, 1, []byte{byte(i)})
	}
	n.Run(Second)
	got := len(r.pkts)
	if got < sends*4/10 || got > sends*6/10 {
		t.Errorf("with 50%% loss, delivered %d of %d", got, sends)
	}
	st := n.Stats()
	if st.PacketsDropped+st.PacketsDelivered != sends {
		t.Errorf("dropped %d + delivered %d != %d", st.PacketsDropped, st.PacketsDelivered, sends)
	}
}

func TestDuplication(t *testing.T) {
	n := New(7, Config{DupRate: 1.0})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.Send(1, 1, []byte("x"))
	n.Run(Second)
	if len(r.pkts) != 2 {
		t.Errorf("DupRate=1 delivered %d copies, want 2", len(r.pkts))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		n := New(99, Config{LatencyBase: 100 * Microsecond, LatencyJitter: 400 * Microsecond, LossRate: 0.2})
		r := &recorder{}
		n.AddNode(1, &recorder{}, 0)
		n.AddNode(2, r, 0)
		n.Subscribe(2, 9)
		for i := 0; i < 100; i++ {
			i := i
			n.At(Time(i)*Millisecond, func() { n.Send(1, 9, []byte{byte(i)}) })
		}
		n.Run(Second)
		return r.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTicks(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, r, 10*Millisecond)
	n.Run(55 * Millisecond)
	if len(r.ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(r.ticks), r.ticks)
	}
	for i, at := range r.ticks {
		want := int64(10*Millisecond) * int64(i+1)
		if at != want {
			t.Errorf("tick %d at %d, want %d", i, at, want)
		}
	}
}

func TestCrashStopsDeliveryAndTicks(t *testing.T) {
	n := New(1, Config{LatencyBase: Millisecond})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 10*Millisecond)
	n.Subscribe(2, 1)
	n.At(15*Millisecond, func() { n.Crash(2) })
	n.At(20*Millisecond, func() { n.Send(1, 1, []byte("late")) })
	n.Send(1, 1, []byte("early"))
	n.Run(100 * Millisecond)
	if len(r.pkts) != 1 || string(r.pkts[0]) != "early" {
		t.Errorf("crashed node packets: %v", r.pkts)
	}
	if len(r.ticks) != 1 {
		t.Errorf("crashed node ticked %d times, want 1", len(r.ticks))
	}
}

func TestCrashedNodeCannotSend(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.Crash(1)
	n.Send(1, 1, []byte("ghost"))
	n.Run(Second)
	if len(r.pkts) != 0 {
		t.Error("crashed sender's packet was delivered")
	}
}

func TestRestartResumesTicks(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, r, 10*Millisecond)
	n.At(5*Millisecond, func() { n.Crash(1) })
	n.At(50*Millisecond, func() { n.Restart(1) })
	n.Run(85 * Millisecond)
	// Ticks resume at 60,70,80.
	if len(r.ticks) != 3 {
		t.Errorf("ticks after restart: %v", r.ticks)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := New(1, Config{})
	r1, r2 := &recorder{}, &recorder{}
	n.AddNode(1, r1, 0)
	n.AddNode(2, r2, 0)
	n.Subscribe(1, 1)
	n.Subscribe(2, 1)
	n.Partition([]NodeID{1}, []NodeID{2})
	n.Send(1, 1, []byte("blocked"))
	n.Run(10 * Millisecond)
	if len(r2.pkts) != 0 {
		t.Error("packet crossed partition")
	}
	// Sender still reaches its own side (loopback).
	if len(r1.pkts) != 1 {
		t.Error("loopback within partition failed")
	}
	n.Heal()
	n.Send(1, 1, []byte("open"))
	n.Run(20 * Millisecond)
	if len(r2.pkts) != 1 {
		t.Error("packet not delivered after heal")
	}
}

func TestJitterReorders(t *testing.T) {
	n := New(3, Config{LatencyJitter: 10 * Millisecond})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	for i := 0; i < 50; i++ {
		n.Send(1, 1, []byte{byte(i)})
	}
	n.Run(Second)
	if len(r.pkts) != 50 {
		t.Fatalf("delivered %d", len(r.pkts))
	}
	reordered := false
	for i := 1; i < len(r.pkts); i++ {
		if r.pkts[i][0] < r.pkts[i-1][0] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("high jitter produced no reordering (suspicious)")
	}
}

func TestRunUntil(t *testing.T) {
	n := New(1, Config{LatencyBase: Millisecond})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.At(5*Millisecond, func() { n.Send(1, 1, []byte("x")) })
	ok := n.RunUntil(Second, func() bool { return len(r.pkts) > 0 })
	if !ok {
		t.Fatal("RunUntil never satisfied")
	}
	if n.Now() != 6*Millisecond {
		t.Errorf("stopped at %v, want 6ms", n.Now())
	}
	if n.RunUntil(7*Millisecond, func() bool { return false }) {
		t.Error("RunUntil(false) returned true")
	}
}

func TestAtInPastRunsImmediately(t *testing.T) {
	n := New(1, Config{})
	n.Run(10 * Millisecond)
	ran := false
	n.At(Millisecond, func() { ran = true }) // in the past
	n.Step()
	if !ran {
		t.Error("past callback never ran")
	}
	if n.Now() != 10*Millisecond {
		t.Errorf("time went backwards: %v", n.Now())
	}
}

func TestEndpointFunc(t *testing.T) {
	var pkt, tick bool
	ep := EndpointFunc{
		OnPacket: func([]byte, Addr, int64) { pkt = true },
		OnTick:   func(int64) { tick = true },
	}
	ep.HandlePacket(nil, 0, 0)
	ep.Tick(0)
	if !pkt || !tick {
		t.Error("EndpointFunc dispatch failed")
	}
	// Nil handlers must not panic.
	EndpointFunc{}.HandlePacket(nil, 0, 0)
	EndpointFunc{}.Tick(0)
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	n := New(1, Config{})
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(1, &recorder{}, 0)
}

func TestUnsubscribe(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.Unsubscribe(2, 1)
	n.Send(1, 1, []byte("x"))
	n.Run(Second)
	if len(r.pkts) != 0 {
		t.Error("unsubscribed node received packet")
	}
}

func TestStatsBytes(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.Send(1, 1, make([]byte, 100))
	n.Run(Second)
	st := n.Stats()
	if st.BytesSent != 100 || st.BytesDelivered != 100 {
		t.Errorf("bytes sent/delivered = %d/%d", st.BytesSent, st.BytesDelivered)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1 MB/s link: a 1000-byte packet occupies the sender's link for
	// 1ms; two back-to-back packets arrive 1ms apart.
	n := New(1, Config{Bandwidth: 1_000_000})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, r, 0)
	n.Subscribe(2, 1)
	n.Send(1, 1, make([]byte, 1000))
	n.Send(1, 1, make([]byte, 1000))
	n.Run(Second)
	if len(r.times) != 2 {
		t.Fatalf("delivered %d", len(r.times))
	}
	if r.times[0] != int64(Millisecond) {
		t.Errorf("first at %d, want 1ms", r.times[0])
	}
	if r.times[1] != int64(2*Millisecond) {
		t.Errorf("second at %d, want 2ms (queued behind first)", r.times[1])
	}
}

func TestBandwidthIndependentSenders(t *testing.T) {
	// Two different senders do not queue behind each other.
	n := New(1, Config{Bandwidth: 1_000_000})
	r := &recorder{}
	n.AddNode(1, &recorder{}, 0)
	n.AddNode(2, &recorder{}, 0)
	n.AddNode(3, r, 0)
	n.Subscribe(3, 1)
	n.Send(1, 1, make([]byte, 1000))
	n.Send(2, 1, make([]byte, 1000))
	n.Run(Second)
	if len(r.times) != 2 || r.times[0] != int64(Millisecond) || r.times[1] != int64(Millisecond) {
		t.Errorf("independent senders interfered: %v", r.times)
	}
}

func TestZeroBandwidthDisablesModel(t *testing.T) {
	n := New(1, Config{})
	r := &recorder{}
	n.AddNode(1, r, 0)
	n.Subscribe(1, 1)
	n.Send(1, 1, make([]byte, 1<<16))
	n.Run(Second)
	if len(r.times) != 1 || r.times[0] != 0 {
		t.Errorf("zero-bandwidth delivery at %v", r.times)
	}
}
