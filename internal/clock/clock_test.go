package clock

import (
	"testing"
	"testing/quick"

	"ftmp/internal/ids"
)

func TestLamportMonotonic(t *testing.T) {
	c := NewLamport(ids.ProcessorID(1))
	prev := c.Current()
	for i := 0; i < 100; i++ {
		next := c.Next(0)
		if !prev.Before(next) {
			t.Fatalf("Next not monotonic: %v then %v", prev, next)
		}
		prev = next
	}
}

func TestLamportObserveAdvances(t *testing.T) {
	c := NewLamport(ids.ProcessorID(1))
	remote := ids.MakeTimestamp(500, ids.ProcessorID(2))
	c.Observe(remote)
	local := c.Next(0)
	if !remote.Before(local) {
		t.Fatalf("local %v should follow observed %v", local, remote)
	}
}

func TestLamportObserveIgnoresPast(t *testing.T) {
	c := NewLamport(ids.ProcessorID(1))
	for i := 0; i < 10; i++ {
		c.Next(0)
	}
	before := c.Counter()
	c.Observe(ids.MakeTimestamp(3, ids.ProcessorID(2)))
	if c.Counter() != before {
		t.Error("Observe of stale timestamp moved the clock")
	}
}

func TestLamportCurrentDoesNotAdvance(t *testing.T) {
	c := NewLamport(ids.ProcessorID(4))
	c.Next(0)
	a := c.Current()
	b := c.Current()
	if a != b {
		t.Error("Current advanced the clock")
	}
	if a.Tiebreak() != 4 {
		t.Errorf("Tiebreak = %d, want 4", a.Tiebreak())
	}
}

func TestSynchronizedTracksPhysical(t *testing.T) {
	c := NewSynchronized(ids.ProcessorID(1), 0)
	// 5ms of physical time = 5000 microsecond ticks.
	ts := c.Next(5 * 1e6)
	if ts.Counter() != 5000 {
		t.Errorf("Counter = %d, want 5000", ts.Counter())
	}
	// Logical progress still guaranteed when physical time stalls.
	ts2 := c.Next(5 * 1e6)
	if !ts.Before(ts2) {
		t.Error("stalled physical clock broke monotonicity")
	}
}

func TestSynchronizedSkew(t *testing.T) {
	a := NewSynchronized(ids.ProcessorID(1), 0)
	b := NewSynchronized(ids.ProcessorID(2), 2000) // 2us ahead
	ta := a.Next(1e6)
	tb := b.Next(1e6)
	if !ta.Before(tb) {
		t.Errorf("skewed clock should be ahead: %v vs %v", ta, tb)
	}
}

func TestSynchronizedNegativeTimeClamps(t *testing.T) {
	c := NewSynchronized(ids.ProcessorID(1), -100)
	ts := c.Next(50) // now+skew < 0
	if ts.Counter() != 1 {
		t.Errorf("Counter = %d, want 1 (pure logical step)", ts.Counter())
	}
}

func TestModeAccessors(t *testing.T) {
	if NewLamport(1).Mode() != Logical {
		t.Error("NewLamport mode")
	}
	if NewSynchronized(1, 0).Mode() != Synchronized {
		t.Error("NewSynchronized mode")
	}
	if NewLamport(7).Self() != ids.ProcessorID(7) {
		t.Error("Self")
	}
}

func TestLamportRulesProperty(t *testing.T) {
	// Property: after any interleaving of Next and Observe, the next
	// local timestamp exceeds everything seen so far.
	f := func(events []uint32) bool {
		c := NewLamport(ids.ProcessorID(1))
		var max ids.Timestamp
		for _, e := range events {
			if e%2 == 0 {
				ts := c.Next(0)
				if !max.Before(ts) && max != ids.NilTimestamp {
					return false
				}
				if ts > max {
					max = ts
				}
			} else {
				remote := ids.MakeTimestamp(uint64(e%10000), ids.ProcessorID(2))
				c.Observe(remote)
				if remote > max {
					max = remote
				}
			}
		}
		final := c.Next(0)
		return max.Before(final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
