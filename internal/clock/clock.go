// Package clock implements the logical Lamport clock that ROMP uses to
// timestamp messages, plus an optional synchronized-physical-clock mode.
//
// Paper section 6: "ROMP employs message timestamps, derived from logical
// Lamport clocks, to maintain causal and total order. A processor advances
// its Lamport clock so that it is always greater than the timestamp of any
// message that it has received or sent. Better performance can be achieved
// through the use of clock synchronization software, or synchronized
// physical clocks."
package clock

import (
	"ftmp/internal/ids"
)

// Mode selects how a Lamport clock advances between events.
type Mode int

const (
	// Logical mode: the counter advances only on send/receive events.
	// This is the default mode described in the paper.
	Logical Mode = iota
	// Synchronized mode: the counter additionally tracks a (possibly
	// skewed) physical clock supplied by the driver, modeling the
	// paper's "synchronized clocks can be used to achieve better
	// performance" option. Timestamps still obey the Lamport rules, so
	// correctness never depends on the quality of synchronization.
	Synchronized
)

// Lamport is a Lamport clock owned by a single processor. It is not safe
// for concurrent use; the FTMP node is single-threaded by design and its
// driver serializes access.
type Lamport struct {
	self    ids.ProcessorID
	counter uint64
	mode    Mode
	// skew is added to the physical time supplied in Synchronized mode,
	// modeling imperfect clock synchronization in experiments.
	skew int64
}

// NewLamport returns a logical Lamport clock for processor self.
func NewLamport(self ids.ProcessorID) *Lamport {
	return &Lamport{self: self, mode: Logical}
}

// NewSynchronized returns a Lamport clock that also tracks physical time
// (in the driver's time unit, typically nanoseconds) with the given skew.
func NewSynchronized(self ids.ProcessorID, skew int64) *Lamport {
	return &Lamport{self: self, mode: Synchronized, skew: skew}
}

// Self returns the owning processor.
func (c *Lamport) Self() ids.ProcessorID { return c.self }

// Mode returns the clock's mode.
func (c *Lamport) Mode() Mode { return c.mode }

// Counter returns the current counter without advancing the clock.
func (c *Lamport) Counter() uint64 { return c.counter }

// Next advances the clock for a send event at physical time now (ignored
// in Logical mode) and returns the timestamp to place on the message.
func (c *Lamport) Next(now int64) ids.Timestamp {
	c.counter++
	if c.mode == Synchronized {
		if phys := physCounter(now, c.skew); phys > c.counter {
			c.counter = phys
		}
	}
	return ids.MakeTimestamp(c.counter, c.self)
}

// Current returns the timestamp of the most recent event without
// advancing the clock. It is the value a Heartbeat reports for "the
// sender's current message timestamp".
func (c *Lamport) Current() ids.Timestamp {
	return ids.MakeTimestamp(c.counter, c.self)
}

// Observe advances the clock past a received message's timestamp, so that
// every later local timestamp exceeds it (the Lamport receive rule).
func (c *Lamport) Observe(t ids.Timestamp) {
	if tc := t.Counter(); tc > c.counter {
		c.counter = tc
	}
}

// physCounter maps physical nanoseconds to a clock counter. One counter
// tick per microsecond keeps 48 bits sufficient for ~8.9 years while
// remaining finer than any realistic message interarrival.
func physCounter(now, skew int64) uint64 {
	t := now + skew
	if t < 0 {
		return 0
	}
	return uint64(t) / 1000
}
