package wire

import (
	"testing"

	"ftmp/internal/ids"
)

// benchRegular builds an encoded Regular message with an n-byte payload.
func benchRegular(tb testing.TB, n int) []byte {
	tb.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf, err := Encode(hdr(TypeRegular), &Regular{
		Conn:       ids.ConnectionID{ClientDomain: 1, ClientGroup: 2, ServerDomain: 3, ServerGroup: 4},
		RequestNum: 7,
		Payload:    payload,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// benchPacked builds an encoded Packed container with count entries of
// n-byte payloads each.
func benchPacked(tb testing.TB, count, n int) []byte {
	tb.Helper()
	p := &Packed{}
	for i := 0; i < count; i++ {
		payload := make([]byte, n)
		p.Entries = append(p.Entries, PackedEntry{
			Seq:     ids.SeqNum(i + 1),
			TS:      ids.MakeTimestamp(uint64(i+1), 7),
			Payload: payload,
		})
	}
	buf, err := Encode(hdr(TypePacked), p)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// TestDecoderZeroAllocs pins the zero-copy contract: decoding a
// payload-bearing Regular (or a warm Packed) through a Decoder performs
// no heap allocation at all.
func TestDecoderZeroAllocs(t *testing.T) {
	var d Decoder

	reg := benchRegular(t, 256)
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := d.Decode(reg); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Regular decode allocates %.1f allocs/op, want 0", avg)
	}

	pk := benchPacked(t, 16, 64)
	if _, err := d.Decode(pk); err != nil { // warm the entry scratch slice
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := d.Decode(pk); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Packed decode allocates %.1f allocs/op, want 0", avg)
	}
}

// TestAppendEncodeZeroAllocs pins the send-side contract: encoding into a
// caller-owned buffer with sufficient capacity performs no allocation.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	h := hdr(TypeRegular)
	body := &Regular{RequestNum: 3, Payload: make([]byte, 256)}
	scratch := make([]byte, 0, HeaderSize+body.encodedSize())
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := AppendEncode(scratch[:0], h, body); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("AppendEncode allocates %.1f allocs/op, want 0", avg)
	}
}

func BenchmarkDecoderRegular256(b *testing.B) {
	buf := benchRegular(b, 256)
	var d Decoder
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecoderPacked16x64(b *testing.B) {
	buf := benchPacked(b, 16, 64)
	var d Decoder
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendEncodeRegular256(b *testing.B) {
	h := hdr(TypeRegular)
	body := &Regular{RequestNum: 3, Payload: make([]byte, 256)}
	scratch := make([]byte, 0, HeaderSize+body.encodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AppendEncode(scratch[:0], h, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePacked16x64(b *testing.B) {
	p := &Packed{}
	for i := 0; i < 16; i++ {
		p.Entries = append(p.Entries, PackedEntry{Seq: ids.SeqNum(i + 1), Payload: make([]byte, 64)})
	}
	h := hdr(TypePacked)
	scratch := make([]byte, 0, HeaderSize+p.encodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AppendEncode(scratch[:0], h, p); err != nil {
			b.Fatal(err)
		}
	}
}
