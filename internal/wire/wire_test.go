package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ftmp/internal/ids"
)

func hdr(t MsgType) Header {
	return Header{
		Type:      t,
		Source:    ids.ProcessorID(7),
		DestGroup: ids.GroupID(3),
		Seq:       ids.SeqNum(42),
		MsgTS:     ids.MakeTimestamp(100, 7),
		AckTS:     ids.MakeTimestamp(90, 7),
	}
}

// allBodies returns one representative body per message type.
func allBodies() []Body {
	conn := ids.ConnectionID{ClientDomain: 1, ClientGroup: 2, ServerDomain: 3, ServerGroup: 4}
	return []Body{
		&Regular{Conn: conn, RequestNum: 9, Payload: []byte("GIOP-payload")},
		&RetransmitRequest{Proc: 5, StartSeq: 10, StopSeq: 12},
		&Heartbeat{},
		&ConnectRequest{Conn: conn, Procs: ids.NewMembership(1, 2, 3)},
		&Connect{
			Conn: conn, Group: 8,
			Addr:         MulticastAddr{IP: [4]byte{239, 1, 2, 3}, Port: 5000},
			MembershipTS: ids.MakeTimestamp(55, 1), CurrentMembership: ids.NewMembership(1, 2),
		},
		&AddProcessor{
			MembershipTS:      ids.MakeTimestamp(60, 2),
			CurrentMembership: ids.NewMembership(1, 2, 3),
			CurrentSeqs:       SeqVector{{1, 10}, {2, 20}, {3, 30}},
			NewMember:         4,
		},
		&RemoveProcessor{Member: 2},
		&Suspect{MembershipTS: ids.MakeTimestamp(70, 3), Suspects: ids.NewMembership(2)},
		&MembershipMsg{
			MembershipTS:      ids.MakeTimestamp(80, 1),
			CurrentMembership: ids.NewMembership(1, 2, 3, 4),
			CurrentSeqs:       SeqVector{{1, 1}, {2, 2}, {3, 3}, {4, 4}},
			NewMembership:     ids.NewMembership(1, 3, 4),
			Epoch:             6,
			PredecessorTS:     ids.MakeTimestamp(75, 2),
		},
		&Packed{Entries: []PackedEntry{
			{Seq: 42, TS: ids.MakeTimestamp(99, 7), Conn: conn, RequestNum: 9, Payload: []byte("first")},
			{Seq: 43, TS: ids.MakeTimestamp(100, 7), Conn: conn, RequestNum: 10, Payload: []byte("second")},
		}},
		&SeqData{
			Conn: conn, RequestNum: 11, Payload: []byte("sequenced"),
			Epoch: 3, First: 17, Refs: []SeqRef{{Source: 2, Seq: 40}, {Source: 1, Seq: 6}},
		},
		&SeqAssign{Epoch: 3, First: 19, Refs: []SeqRef{{Source: 4, Seq: 12}}},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, little := range []bool{false, true} {
		for _, body := range allBodies() {
			h := hdr(body.Type())
			h.LittleEndian = little
			buf, err := Encode(h, body)
			if err != nil {
				t.Fatalf("Encode(%v): %v", body.Type(), err)
			}
			m, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode(%v, little=%v): %v", body.Type(), little, err)
			}
			if m.Header.Type != body.Type() {
				t.Errorf("type = %v, want %v", m.Header.Type, body.Type())
			}
			if m.Header.Source != h.Source || m.Header.DestGroup != h.DestGroup ||
				m.Header.Seq != h.Seq || m.Header.MsgTS != h.MsgTS || m.Header.AckTS != h.AckTS {
				t.Errorf("header fields mangled: %+v", m.Header)
			}
			if m.Header.Size != uint32(len(buf)) {
				t.Errorf("Size = %d, want %d", m.Header.Size, len(buf))
			}
			if !reflect.DeepEqual(normalize(m.Body), normalize(body)) {
				t.Errorf("%v body round-trip:\n got %#v\nwant %#v", body.Type(), m.Body, body)
			}
		}
	}
}

// normalize maps empty slices to nil so DeepEqual treats an encoded-empty
// and a nil slice identically.
func normalize(b Body) Body {
	switch v := b.(type) {
	case *Regular:
		if len(v.Payload) == 0 {
			c := *v
			c.Payload = nil
			return &c
		}
	}
	return b
}

func TestRetransmissionFlag(t *testing.T) {
	h := hdr(TypeRegular)
	h.Retransmission = true
	buf, err := Encode(h, &Regular{Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Retransmission {
		t.Error("retransmission flag lost")
	}
}

func TestEncapsulationLayout(t *testing.T) {
	// Paper Figure 2: the GIOP message sits after the FTMP header. The
	// payload bytes must appear verbatim inside the encoding.
	giop := []byte("GIOP\x01\x00\x00\x00hello")
	buf, err := Encode(hdr(TypeRegular), &Regular{Payload: giop})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf[HeaderSize:], giop) {
		t.Error("GIOP payload not encapsulated verbatim after FTMP header")
	}
	if !bytes.Equal(buf[0:4], Magic[:]) {
		t.Error("FTMP magic missing at offset 0")
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(hdr(TypeRegular), &Regular{Payload: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short buffer", func(t *testing.T) {
		if _, err := Decode(good[:10]); !errors.Is(err, ErrShort) {
			t.Errorf("err = %v, want ErrShort", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 9
		if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[7] = 200
		if _, err := Decode(b); !errors.Is(err, ErrBadType) {
			t.Errorf("err = %v, want ErrBadType", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b = b[:len(b)-2]
		if _, err := Decode(b); err == nil {
			t.Error("truncated body decoded without error")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		// Extend the datagram without updating Size: header check fires.
		b := append(append([]byte(nil), good...), 0, 0)
		if _, err := Decode(b); !errors.Is(err, ErrBadSize) {
			t.Errorf("err = %v, want ErrBadSize", err)
		}
	})
	t.Run("size larger than max", func(t *testing.T) {
		b := append([]byte(nil), good...)
		// Size is big-endian at offset 8 for this header.
		b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
		if _, err := Decode(b); err == nil {
			t.Error("oversize accepted")
		}
	})
	t.Run("body length field past end", func(t *testing.T) {
		// Corrupt the Regular payload length to exceed the buffer.
		b := append([]byte(nil), good...)
		off := HeaderSize + 16 + 8 // connID + requestNum
		b[off], b[off+1], b[off+2], b[off+3] = 0x7f, 0xff, 0xff, 0xff
		if _, err := Decode(b); err == nil {
			t.Error("huge length field accepted")
		}
	})
}

func TestEncodeNilBody(t *testing.T) {
	if _, err := Encode(hdr(TypeRegular), nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
}

func TestEncodeOversize(t *testing.T) {
	big := make([]byte, MaxMessageSize)
	if _, err := Encode(hdr(TypeRegular), &Regular{Payload: big}); !errors.Is(err, ErrOversize) {
		t.Errorf("err = %v, want ErrOversize", err)
	}
}

func TestHeaderSizeConstant(t *testing.T) {
	buf, err := Encode(hdr(TypeHeartbeat), &Heartbeat{})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize {
		t.Errorf("Heartbeat encoding = %d bytes, want exactly HeaderSize %d", len(buf), HeaderSize)
	}
}

func TestMsgTypeTable(t *testing.T) {
	// Paper Figure 3, type-level columns.
	cases := []struct {
		t        MsgType
		reliable bool
		total    bool
	}{
		{TypeRegular, true, true},
		{TypeRetransmitRequest, false, false},
		{TypeHeartbeat, false, false},
		{TypeConnectRequest, false, false},
		{TypeConnect, true, true},
		{TypeAddProcessor, true, true},
		{TypeRemoveProcessor, true, true},
		{TypeSuspect, true, false},
		{TypeMembership, true, false},
		{TypePacked, true, true},
		{TypeSeqData, true, true},
		{TypeSeqAssign, true, false},
	}
	for _, c := range cases {
		if c.t.Reliable() != c.reliable {
			t.Errorf("%v.Reliable() = %v, want %v", c.t, c.t.Reliable(), c.reliable)
		}
		if c.t.TotallyOrdered() != c.total {
			t.Errorf("%v.TotallyOrdered() = %v, want %v", c.t, c.t.TotallyOrdered(), c.total)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if TypeRegular.String() != "Regular" || TypeMembership.String() != "Membership" {
		t.Error("MsgType.String basic cases")
	}
	if MsgType(99).String() != "MsgType(99)" {
		t.Errorf("unknown type String = %q", MsgType(99).String())
	}
	if MsgType(99).Valid() || TypeInvalid.Valid() {
		t.Error("invalid types reported valid")
	}
}

func TestSeqVector(t *testing.T) {
	v := SeqVector{{1, 10}, {2, 20}}
	if s, ok := v.Get(2); !ok || s != 20 {
		t.Errorf("Get(2) = %v,%v", s, ok)
	}
	if _, ok := v.Get(3); ok {
		t.Error("Get(3) found phantom entry")
	}
	c := v.Clone()
	c[0].Seq = 99
	if v[0].Seq == 99 {
		t.Error("Clone shares storage")
	}
}

func TestMulticastAddr(t *testing.T) {
	a := MulticastAddr{IP: [4]byte{239, 0, 0, 1}, Port: 7000}
	if a.String() != "239.0.0.1:7000" {
		t.Errorf("String = %q", a.String())
	}
	if a.IsZero() {
		t.Error("non-zero addr reported zero")
	}
	if !(MulticastAddr{}).IsZero() {
		t.Error("zero addr not reported zero")
	}
}

func TestRoundTripRegularProperty(t *testing.T) {
	f := func(payload []byte, src, grp uint32, seq uint32, ts, ack uint64, reqNum uint64, little bool) bool {
		if len(payload) > 32*1024 {
			payload = payload[:32*1024]
		}
		h := Header{
			LittleEndian: little,
			Source:       ids.ProcessorID(src),
			DestGroup:    ids.GroupID(grp),
			Seq:          ids.SeqNum(seq),
			MsgTS:        ids.Timestamp(ts),
			AckTS:        ids.Timestamp(ack),
		}
		body := &Regular{RequestNum: ids.RequestNum(reqNum), Payload: payload}
		buf, err := Encode(h, body)
		if err != nil {
			return false
		}
		m, err := Decode(buf)
		if err != nil {
			return false
		}
		got := m.Body.(*Regular)
		return bytes.Equal(got.Payload, payload) &&
			got.RequestNum == body.RequestNum &&
			m.Header.Source == h.Source && m.Header.Seq == h.Seq &&
			m.Header.MsgTS == h.MsgTS && m.Header.AckTS == h.AckTS
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanicsOnFuzzProperty(t *testing.T) {
	// Property: Decode returns an error or a message, never panics, for
	// arbitrary byte soup — including soup that starts with valid magic.
	f := func(raw []byte, useMagic bool) bool {
		b := raw
		if useMagic && len(b) >= 8 {
			copy(b[0:4], Magic[:])
			b[4], b[5] = VersionMajor, VersionMinor
		}
		_, _ = Decode(b)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMutatedRoundTripProperty(t *testing.T) {
	// Property: flipping any single byte of a valid encoding either still
	// decodes (flag/payload bytes) or produces an error — never a panic.
	body := &MembershipMsg{
		MembershipTS:      ids.MakeTimestamp(80, 1),
		CurrentMembership: ids.NewMembership(1, 2, 3),
		CurrentSeqs:       SeqVector{{1, 1}, {2, 2}, {3, 3}},
		NewMembership:     ids.NewMembership(1, 3),
	}
	buf, err := Encode(hdr(TypeMembership), body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		for _, x := range []byte{0x01, 0xff} {
			mut := append([]byte(nil), buf...)
			mut[i] ^= x
			_, _ = Decode(mut)
		}
	}
}

func TestVersionByte(t *testing.T) {
	// Packed frames carry minor version 1 and Membership frames minor
	// version 2; every other type must still be emitted as 1.0 so that
	// plain traffic is byte-identical to a 1.0 sender.
	for _, body := range allBodies() {
		buf, err := Encode(hdr(body.Type()), body)
		if err != nil {
			t.Fatal(err)
		}
		want := byte(VersionMinor)
		switch body.Type() {
		case TypePacked:
			want = VersionMinorPacked
		case TypeMembership:
			want = VersionMinorLineage
		case TypeSeqData, TypeSeqAssign:
			want = VersionMinorSeq
		}
		if buf[5] != want {
			t.Errorf("%v: minor version byte = %d, want %d", body.Type(), buf[5], want)
		}
	}
}

func TestPackedRejectedAsVersion10(t *testing.T) {
	packed := &Packed{Entries: []PackedEntry{{Seq: 1, TS: 5, Payload: []byte("x")}}}
	buf, err := Encode(hdr(TypePacked), packed)
	if err != nil {
		t.Fatal(err)
	}
	buf[5] = VersionMinor // forge a 1.0 frame claiming the Packed type
	if _, err := Decode(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestMembershipRejectedBelowLineageVersion(t *testing.T) {
	body := &MembershipMsg{
		MembershipTS:      ids.MakeTimestamp(80, 1),
		CurrentMembership: ids.NewMembership(1, 2),
		NewMembership:     ids.NewMembership(1),
	}
	buf, err := Encode(hdr(TypeMembership), body)
	if err != nil {
		t.Fatal(err)
	}
	for _, minor := range []byte{VersionMinor, VersionMinorPacked} {
		mut := append([]byte(nil), buf...)
		mut[5] = minor // forge a pre-1.2 frame claiming the Membership type
		if _, err := Decode(mut); !errors.Is(err, ErrBadVersion) {
			t.Errorf("minor %d: err = %v, want ErrBadVersion", minor, err)
		}
	}
}

func TestDecoderReuseAndClone(t *testing.T) {
	// A Decoder's scratch bodies are reused across calls: the message from
	// one Decode is invalidated by the next unless the caller clones.
	var d Decoder
	h := hdr(TypeRegular)
	buf1, err := Encode(h, &Regular{RequestNum: 1, Payload: []byte("one")})
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := Encode(h, &Regular{RequestNum: 2, Payload: []byte("two!")})
	if err != nil {
		t.Fatal(err)
	}

	m1, err := d.Decode(buf1)
	if err != nil {
		t.Fatal(err)
	}
	kept := m1
	kept.Body = CloneBody(m1.Body)

	m2, err := d.Decode(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Body != m2.Body {
		t.Error("Decoder did not reuse the Regular scratch body")
	}
	r1, r2 := kept.Body.(*Regular), m2.Body.(*Regular)
	if r1.RequestNum != 1 || string(r1.Payload) != "one" {
		t.Errorf("cloned body clobbered by later decode: %+v", r1)
	}
	if r2.RequestNum != 2 || string(r2.Payload) != "two!" {
		t.Errorf("second decode wrong: %+v", r2)
	}

	// Payloads alias the input buffer — the documented zero-copy contract.
	if &r2.Payload[0] != &buf2[len(buf2)-4] {
		t.Error("decoded payload does not alias the input buffer")
	}
}

func TestDecoderPackedReuse(t *testing.T) {
	var d Decoder
	mk := func(payloads ...string) []byte {
		p := &Packed{}
		for i, s := range payloads {
			p.Entries = append(p.Entries, PackedEntry{Seq: ids.SeqNum(i + 1), TS: ids.Timestamp(i + 1), Payload: []byte(s)})
		}
		buf, err := Encode(hdr(TypePacked), p)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	buf1 := mk("aa", "bb", "cc")
	buf2 := mk("dd")

	m1, err := d.Decode(buf1)
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.Body.(*Packed)
	if len(p1.Entries) != 3 || string(p1.Entries[2].Payload) != "cc" {
		t.Fatalf("first packed decode: %+v", p1)
	}
	first := &p1.Entries[0]

	m2, err := d.Decode(buf2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := m2.Body.(*Packed)
	if len(p2.Entries) != 1 || string(p2.Entries[0].Payload) != "dd" {
		t.Fatalf("second packed decode: %+v", p2)
	}
	if &p2.Entries[0] != first {
		t.Error("Decoder did not reuse the packed entry scratch slice")
	}
}

func TestCloneBodyIndependence(t *testing.T) {
	p := &Packed{Entries: []PackedEntry{{Seq: 1, Payload: []byte("x")}}}
	c := CloneBody(p).(*Packed)
	p.Entries[0].Seq = 99
	if c.Entries[0].Seq != 1 {
		t.Error("CloneBody(Packed) shares the entries slice")
	}
	r := &Regular{RequestNum: 5, Payload: []byte("y")}
	cr := CloneBody(r).(*Regular)
	r.RequestNum = 6
	if cr.RequestNum != 5 {
		t.Error("CloneBody(Regular) not a copy")
	}
}

func BenchmarkEncodeRegular1K(b *testing.B) {
	payload := make([]byte, 1024)
	h := hdr(TypeRegular)
	body := &Regular{Payload: payload}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(h, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRegular1K(b *testing.B) {
	payload := make([]byte, 1024)
	buf, err := Encode(hdr(TypeRegular), &Regular{Payload: payload})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
