package wire

import (
	"fmt"

	"ftmp/internal/ids"
)

// SeqEntry pairs a processor with a sequence number; a SeqVector appears
// in AddProcessor and Membership message bodies ("current sequence
// numbers", paper sections 7.1 and 7.2).
type SeqEntry struct {
	Proc ids.ProcessorID
	Seq  ids.SeqNum
}

// SeqVector maps each member of a membership to a sequence number: for
// Membership messages, the highest sequence number s such that the sender
// has received message s and all smaller-numbered messages from that
// member; for AddProcessor messages, the most recent message from each
// member that the sender has ordered.
type SeqVector []SeqEntry

// Get returns the sequence number recorded for p, or 0 if absent.
func (v SeqVector) Get(p ids.ProcessorID) (ids.SeqNum, bool) {
	for _, e := range v {
		if e.Proc == p {
			return e.Seq, true
		}
	}
	return 0, false
}

// Clone returns an independent copy of v.
func (v SeqVector) Clone() SeqVector {
	out := make(SeqVector, len(v))
	copy(out, v)
	return out
}

// MulticastAddr is the IP multicast endpoint carried in a Connect message
// body. FTMP treats it opaquely; the transport layer interprets it.
type MulticastAddr struct {
	IP   [4]byte
	Port uint16
}

// String implements fmt.Stringer.
func (a MulticastAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// IsZero reports whether a is the zero address.
func (a MulticastAddr) IsZero() bool { return a == MulticastAddr{} }

// Body is the decoded body of an FTMP message. Each implementation
// corresponds to one MsgType.
type Body interface {
	// Type returns the message type the body belongs to.
	Type() MsgType
	// encodeBody appends the body encoding to w.
	encodeBody(w *writer)
}

// Message is a complete decoded FTMP message.
type Message struct {
	Header Header
	Body   Body
}

// Regular carries an encapsulated GIOP message together with the logical
// connection identifier and request number used for duplicate detection
// among object replicas (paper section 5).
type Regular struct {
	Conn       ids.ConnectionID
	RequestNum ids.RequestNum
	// Payload is the encapsulated GIOP message (header + body), or any
	// application payload when FTMP is used without the ORB layers.
	Payload []byte
}

// Type implements Body.
func (*Regular) Type() MsgType { return TypeRegular }

func (m *Regular) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.u64(uint64(m.RequestNum))
	w.bytes(m.Payload)
}

// RetransmitRequest negatively acknowledges a block of missing messages
// with consecutive sequence numbers from one processor (paper section 5).
type RetransmitRequest struct {
	// Proc is the processor whose messages are missing.
	Proc ids.ProcessorID
	// StartSeq and StopSeq delimit the missing block, inclusive. If only
	// one message is missing they are equal.
	StartSeq ids.SeqNum
	StopSeq  ids.SeqNum
}

// Type implements Body.
func (*RetransmitRequest) Type() MsgType { return TypeRetransmitRequest }

func (m *RetransmitRequest) encodeBody(w *writer) {
	w.proc(m.Proc)
	w.seq(m.StartSeq)
	w.seq(m.StopSeq)
}

// Heartbeat is the null message a processor multicasts when it has been
// idle; its value is entirely in the header (sequence number, message
// timestamp, ack timestamp), so the body is empty (paper section 5).
type Heartbeat struct{}

// Type implements Body.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m *Heartbeat) encodeBody(*writer) {}

// ConnectRequest asks the fault tolerance infrastructure of a server
// object group to establish a connection (paper section 7). Addressed to
// the server domain's multicast address with DestGroup = NilGroup.
type ConnectRequest struct {
	Conn ids.ConnectionID
	// Procs is the sequence of identifiers of the processors that
	// support the client object group.
	Procs ids.Membership
}

// Type implements Body.
func (*ConnectRequest) Type() MsgType { return TypeConnectRequest }

func (m *ConnectRequest) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.membership(m.Procs)
}

// Connect establishes a new logical connection, or changes the multicast
// address or processor group of an existing one (paper section 7).
type Connect struct {
	Conn ids.ConnectionID
	// Group is the processor group that will carry the connection.
	Group ids.GroupID
	// Addr is the IP multicast address the connection will use.
	Addr MulticastAddr
	// MembershipTS is the timestamp of the most recent message delivered
	// by the sender; CurrentMembership is the processor group membership
	// at that timestamp.
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
}

// Type implements Body.
func (*Connect) Type() MsgType { return TypeConnect }

func (m *Connect) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.group(m.Group)
	w.buf = append(w.buf, m.Addr.IP[:]...)
	w.u16(m.Addr.Port)
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
}

// AddProcessor adds a non-faulty processor to a processor group
// (paper section 7.1).
type AddProcessor struct {
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
	// CurrentSeqs records, for each member of the current membership,
	// the most recent message the sender has ordered, letting the new
	// member construct the order for later messages.
	CurrentSeqs SeqVector
	NewMember   ids.ProcessorID
}

// Type implements Body.
func (*AddProcessor) Type() MsgType { return TypeAddProcessor }

func (m *AddProcessor) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
	w.seqVector(m.CurrentSeqs)
	w.proc(m.NewMember)
}

// RemoveProcessor removes a non-faulty processor from a processor group;
// the removal takes effect when the message is ordered (paper section 7.1).
type RemoveProcessor struct {
	Member ids.ProcessorID
}

// Type implements Body.
func (*RemoveProcessor) Type() MsgType { return TypeRemoveProcessor }

func (m *RemoveProcessor) encodeBody(w *writer) {
	w.proc(m.Member)
}

// Suspect reports the processors its sender suspects of being faulty
// (paper section 7.2).
type Suspect struct {
	MembershipTS ids.Timestamp
	Suspects     ids.Membership
}

// Type implements Body.
func (*Suspect) Type() MsgType { return TypeSuspect }

func (m *Suspect) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.Suspects)
}

// MembershipMsg proposes a new membership that excludes convicted
// processors (paper section 7.2). Named MembershipMsg to avoid colliding
// with ids.Membership.
type MembershipMsg struct {
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
	// CurrentSeqs holds, for each member of the current membership, the
	// highest sequence number such that the sender has received that
	// message and all messages with smaller sequence numbers.
	CurrentSeqs   SeqVector
	NewMembership ids.Membership
}

// Type implements Body.
func (*MembershipMsg) Type() MsgType { return TypeMembership }

func (m *MembershipMsg) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
	w.seqVector(m.CurrentSeqs)
	w.membership(m.NewMembership)
}

// Encode serializes the message. The header's Type and Size fields are
// set from the body; all other header fields are taken as given.
func Encode(h Header, body Body) ([]byte, error) {
	if body == nil {
		return nil, fmt.Errorf("wire: nil body")
	}
	h.Type = body.Type()
	w := newWriter(h.LittleEndian, HeaderSize+64)
	w.buf = append(w.buf, make([]byte, HeaderSize)...)
	body.encodeBody(w)
	if len(w.buf) > MaxMessageSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(w.buf))
	}
	h.Size = uint32(len(w.buf))
	h.encode(w.buf[:HeaderSize])
	return w.buf, nil
}

// Decode parses a complete FTMP message from buf. buf must contain
// exactly one message (datagram framing).
func Decode(buf []byte) (Message, error) {
	var m Message
	h, err := DecodeHeader(buf)
	if err != nil {
		return m, err
	}
	if int(h.Size) != len(buf) {
		return m, fmt.Errorf("%w: size %d, datagram %d", ErrBadSize, h.Size, len(buf))
	}
	r := newReader(h.LittleEndian, buf[HeaderSize:])
	var body Body
	switch h.Type {
	case TypeRegular:
		body = &Regular{Conn: r.connID(), RequestNum: ids.RequestNum(r.u64()), Payload: r.bytes()}
	case TypeRetransmitRequest:
		body = &RetransmitRequest{Proc: r.proc(), StartSeq: r.seqnum(), StopSeq: r.seqnum()}
	case TypeHeartbeat:
		body = &Heartbeat{}
	case TypeConnectRequest:
		body = &ConnectRequest{Conn: r.connID(), Procs: r.membershipList()}
	case TypeConnect:
		c := &Connect{Conn: r.connID(), Group: r.group()}
		copy(c.Addr.IP[:], r.take(4))
		c.Addr.Port = r.u16()
		c.MembershipTS = r.ts()
		c.CurrentMembership = r.membershipList()
		body = c
	case TypeAddProcessor:
		body = &AddProcessor{
			MembershipTS:      r.ts(),
			CurrentMembership: r.membershipList(),
			CurrentSeqs:       r.seqVector(),
			NewMember:         r.proc(),
		}
	case TypeRemoveProcessor:
		body = &RemoveProcessor{Member: r.proc()}
	case TypeSuspect:
		body = &Suspect{MembershipTS: r.ts(), Suspects: r.membershipList()}
	case TypeMembership:
		body = &MembershipMsg{
			MembershipTS:      r.ts(),
			CurrentMembership: r.membershipList(),
			CurrentSeqs:       r.seqVector(),
			NewMembership:     r.membershipList(),
		}
	default:
		return m, fmt.Errorf("%w: %v", ErrBadType, h.Type)
	}
	r.done()
	if err := r.err(); err != nil {
		return m, fmt.Errorf("wire: decoding %v body: %w", h.Type, err)
	}
	m.Header = h
	m.Body = body
	return m, nil
}
