package wire

import (
	"encoding/binary"
	"fmt"

	"ftmp/internal/ids"
)

// SeqEntry pairs a processor with a sequence number; a SeqVector appears
// in AddProcessor and Membership message bodies ("current sequence
// numbers", paper sections 7.1 and 7.2).
type SeqEntry struct {
	Proc ids.ProcessorID
	Seq  ids.SeqNum
}

// SeqVector maps each member of a membership to a sequence number: for
// Membership messages, the highest sequence number s such that the sender
// has received message s and all smaller-numbered messages from that
// member; for AddProcessor messages, the most recent message from each
// member that the sender has ordered.
type SeqVector []SeqEntry

// Get returns the sequence number recorded for p, or 0 if absent.
func (v SeqVector) Get(p ids.ProcessorID) (ids.SeqNum, bool) {
	for _, e := range v {
		if e.Proc == p {
			return e.Seq, true
		}
	}
	return 0, false
}

// Clone returns an independent copy of v.
func (v SeqVector) Clone() SeqVector {
	out := make(SeqVector, len(v))
	copy(out, v)
	return out
}

// MulticastAddr is the IP multicast endpoint carried in a Connect message
// body. FTMP treats it opaquely; the transport layer interprets it.
type MulticastAddr struct {
	IP   [4]byte
	Port uint16
}

// String implements fmt.Stringer.
func (a MulticastAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// IsZero reports whether a is the zero address.
func (a MulticastAddr) IsZero() bool { return a == MulticastAddr{} }

// Body is the decoded body of an FTMP message. Each implementation
// corresponds to one MsgType.
type Body interface {
	// Type returns the message type the body belongs to.
	Type() MsgType
	// encodeBody appends the body encoding to w.
	encodeBody(w *writer)
	// encodedSize returns the exact encoded body length in bytes, so
	// encoders can allocate once with no growth.
	encodedSize() int
}

// Message is a complete decoded FTMP message.
type Message struct {
	Header Header
	Body   Body
}

// Regular carries an encapsulated GIOP message together with the logical
// connection identifier and request number used for duplicate detection
// among object replicas (paper section 5).
type Regular struct {
	Conn       ids.ConnectionID
	RequestNum ids.RequestNum
	// Payload is the encapsulated GIOP message (header + body), or any
	// application payload when FTMP is used without the ORB layers.
	Payload []byte
}

// Type implements Body.
func (*Regular) Type() MsgType { return TypeRegular }

func (m *Regular) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.u64(uint64(m.RequestNum))
	w.bytes(m.Payload)
}

func (m *Regular) encodedSize() int { return 16 + 8 + 4 + len(m.Payload) }

// RetransmitRequest negatively acknowledges a block of missing messages
// with consecutive sequence numbers from one processor (paper section 5).
type RetransmitRequest struct {
	// Proc is the processor whose messages are missing.
	Proc ids.ProcessorID
	// StartSeq and StopSeq delimit the missing block, inclusive. If only
	// one message is missing they are equal.
	StartSeq ids.SeqNum
	StopSeq  ids.SeqNum
}

// Type implements Body.
func (*RetransmitRequest) Type() MsgType { return TypeRetransmitRequest }

func (m *RetransmitRequest) encodeBody(w *writer) {
	w.proc(m.Proc)
	w.seq(m.StartSeq)
	w.seq(m.StopSeq)
}

func (m *RetransmitRequest) encodedSize() int { return 12 }

// Heartbeat is the null message a processor multicasts when it has been
// idle; its value is entirely in the header (sequence number, message
// timestamp, ack timestamp), so the body is empty (paper section 5).
type Heartbeat struct{}

// Type implements Body.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

func (m *Heartbeat) encodeBody(*writer) {}

func (m *Heartbeat) encodedSize() int { return 0 }

// ConnectRequest asks the fault tolerance infrastructure of a server
// object group to establish a connection (paper section 7). Addressed to
// the server domain's multicast address with DestGroup = NilGroup.
type ConnectRequest struct {
	Conn ids.ConnectionID
	// Procs is the sequence of identifiers of the processors that
	// support the client object group.
	Procs ids.Membership
}

// Type implements Body.
func (*ConnectRequest) Type() MsgType { return TypeConnectRequest }

func (m *ConnectRequest) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.membership(m.Procs)
}

func (m *ConnectRequest) encodedSize() int { return 16 + 4 + 4*len(m.Procs) }

// Connect establishes a new logical connection, or changes the multicast
// address or processor group of an existing one (paper section 7).
type Connect struct {
	Conn ids.ConnectionID
	// Group is the processor group that will carry the connection.
	Group ids.GroupID
	// Addr is the IP multicast address the connection will use.
	Addr MulticastAddr
	// MembershipTS is the timestamp of the most recent message delivered
	// by the sender; CurrentMembership is the processor group membership
	// at that timestamp.
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
}

// Type implements Body.
func (*Connect) Type() MsgType { return TypeConnect }

func (m *Connect) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.group(m.Group)
	w.buf = append(w.buf, m.Addr.IP[:]...)
	w.u16(m.Addr.Port)
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
}

func (m *Connect) encodedSize() int {
	return 16 + 4 + 4 + 2 + 8 + 4 + 4*len(m.CurrentMembership)
}

// AddProcessor adds a non-faulty processor to a processor group
// (paper section 7.1).
type AddProcessor struct {
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
	// CurrentSeqs records, for each member of the current membership,
	// the most recent message the sender has ordered, letting the new
	// member construct the order for later messages.
	CurrentSeqs SeqVector
	NewMember   ids.ProcessorID
}

// Type implements Body.
func (*AddProcessor) Type() MsgType { return TypeAddProcessor }

func (m *AddProcessor) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
	w.seqVector(m.CurrentSeqs)
	w.proc(m.NewMember)
}

func (m *AddProcessor) encodedSize() int {
	return 8 + 4 + 4*len(m.CurrentMembership) + 4 + 8*len(m.CurrentSeqs) + 4
}

// RemoveProcessor removes a non-faulty processor from a processor group;
// the removal takes effect when the message is ordered (paper section 7.1).
type RemoveProcessor struct {
	Member ids.ProcessorID
}

// Type implements Body.
func (*RemoveProcessor) Type() MsgType { return TypeRemoveProcessor }

func (m *RemoveProcessor) encodeBody(w *writer) {
	w.proc(m.Member)
}

func (m *RemoveProcessor) encodedSize() int { return 4 }

// Suspect reports the processors its sender suspects of being faulty
// (paper section 7.2).
type Suspect struct {
	MembershipTS ids.Timestamp
	Suspects     ids.Membership
}

// Type implements Body.
func (*Suspect) Type() MsgType { return TypeSuspect }

func (m *Suspect) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.Suspects)
}

func (m *Suspect) encodedSize() int { return 8 + 4 + 4*len(m.Suspects) }

// MembershipMsg proposes a new membership that excludes convicted
// processors (paper section 7.2). Named MembershipMsg to avoid colliding
// with ids.Membership.
type MembershipMsg struct {
	MembershipTS      ids.Timestamp
	CurrentMembership ids.Membership
	// CurrentSeqs holds, for each member of the current membership, the
	// highest sequence number such that the sender has received that
	// message and all messages with smaller sequence numbers.
	CurrentSeqs   SeqVector
	NewMembership ids.Membership
	// Epoch counts installed views at the sender (FTMP 1.2): the view
	// lineage primary-partition membership audits. Observational —
	// receivers merge by max rather than demand equality, because a
	// joiner bootstraps at a lower epoch than the veterans it joins.
	Epoch uint64
	// PredecessorTS is the timestamp of the sender's last installed view,
	// the view this proposal claims to succeed (FTMP 1.2).
	PredecessorTS ids.Timestamp
}

// Type implements Body.
func (*MembershipMsg) Type() MsgType { return TypeMembership }

func (m *MembershipMsg) encodeBody(w *writer) {
	w.ts(m.MembershipTS)
	w.membership(m.CurrentMembership)
	w.seqVector(m.CurrentSeqs)
	w.membership(m.NewMembership)
	w.u64(m.Epoch)
	w.ts(m.PredecessorTS)
}

func (m *MembershipMsg) encodedSize() int {
	return 8 + 4 + 4*len(m.CurrentMembership) + 4 + 8*len(m.CurrentSeqs) +
		4 + 4*len(m.NewMembership) + 8 + 8
}

// PackedEntry is one Regular message riding inside a Packed container:
// the per-message header fields that differ between entries (sequence
// number and timestamp) plus the Regular body fields. Source, group,
// byte order and ack timestamp are shared and live in the container's
// header.
type PackedEntry struct {
	Seq        ids.SeqNum
	TS         ids.Timestamp
	Conn       ids.ConnectionID
	RequestNum ids.RequestNum
	Payload    []byte
}

// PackedEntryOverhead is the encoded size of a Packed entry with an
// empty payload. Senders use it to budget pack flushes; the decoder
// uses it to bound the entry count before allocating.
const PackedEntryOverhead = 4 + 8 + 16 + 8 + 4

const packedEntryMinSize = PackedEntryOverhead

// Packed carries several small Regular messages in one datagram
// (FTMP 1.1), amortizing the 40-byte header and the per-packet network
// cost across a burst. Each entry keeps the sequence number and
// timestamp RMP/ROMP assigned it, so loss, duplication and ordering are
// handled per entry exactly as for standalone Regular messages; a lost
// container is repaired by retransmitting its entries individually
// (possibly re-packed differently). The container's header carries the
// last entry's Seq and MsgTS plus the sender's current AckTS, making the
// frame a heartbeat-equivalent for gap detection and ack piggybacking.
type Packed struct {
	Entries []PackedEntry
}

// Type implements Body.
func (*Packed) Type() MsgType { return TypePacked }

func (m *Packed) encodeBody(w *writer) {
	w.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		w.seq(e.Seq)
		w.ts(e.TS)
		w.connID(e.Conn)
		w.u64(uint64(e.RequestNum))
		w.bytes(e.Payload)
	}
}

func (m *Packed) encodedSize() int {
	n := 4
	for i := range m.Entries {
		n += packedEntryMinSize + len(m.Entries[i].Payload)
	}
	return n
}

// SeqRef names one reliable message — (source, sequence number) — inside
// a leader sequencing run (FTMP 1.3).
type SeqRef struct {
	Source ids.ProcessorID
	Seq    ids.SeqNum
}

// seqRefSize is the encoded size of one SeqRef.
const seqRefSize = 8

// SeqAssign is the leader's sequencing run (FTMP 1.3): the messages
// named by Refs are assigned the dense delivery sequence numbers First,
// First+1, ... under the given epoch. Runs ride RMP in the leader's
// source order, so followers apply them gap-free; a run from a deposed
// leader carries a stale epoch and is discarded (fencing).
type SeqAssign struct {
	// Epoch is the leader's installed-view count when it assigned the
	// run; followers accept a run only for their current epoch.
	Epoch uint64
	// First is the delivery sequence assigned to Refs[0].
	First uint64
	Refs  []SeqRef
}

// Type implements Body.
func (*SeqAssign) Type() MsgType { return TypeSeqAssign }

func (m *SeqAssign) encodeBody(w *writer) {
	w.u64(m.Epoch)
	w.u64(m.First)
	w.seqRefs(m.Refs)
}

func (m *SeqAssign) encodedSize() int { return 8 + 8 + 4 + seqRefSize*len(m.Refs) }

// SeqData is a Regular message sent by the leader with its current
// sequencing run piggybacked on the data frame (FTMP 1.3), so the
// ordering decision travels on the data path with no extra round. The
// run always covers the frame's own message (its ref is the last entry).
type SeqData struct {
	Conn       ids.ConnectionID
	RequestNum ids.RequestNum
	Payload    []byte
	Epoch      uint64
	First      uint64
	Refs       []SeqRef
}

// Type implements Body.
func (*SeqData) Type() MsgType { return TypeSeqData }

func (m *SeqData) encodeBody(w *writer) {
	w.connID(m.Conn)
	w.u64(uint64(m.RequestNum))
	w.bytes(m.Payload)
	w.u64(m.Epoch)
	w.u64(m.First)
	w.seqRefs(m.Refs)
}

func (m *SeqData) encodedSize() int {
	return 16 + 8 + 4 + len(m.Payload) + 8 + 8 + 4 + seqRefSize*len(m.Refs)
}

// zeroHeader reserves header space in encode buffers.
var zeroHeader [HeaderSize]byte

// AppendEncode serializes the message, appending it to dst (which may be
// nil, or a pooled/reused buffer whose capacity is recycled). The
// header's Type and Size fields are set from the body; all other header
// fields are taken as given. On error dst is returned unchanged.
func AppendEncode(dst []byte, h Header, body Body) ([]byte, error) {
	if body == nil {
		return dst, fmt.Errorf("wire: nil body")
	}
	h.Type = body.Type()
	size := HeaderSize + body.encodedSize()
	if size > MaxMessageSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrOversize, size)
	}
	start := len(dst)
	w := writer{buf: dst, bo: appendOrder(h.LittleEndian)}
	w.buf = append(w.buf, zeroHeader[:]...)
	// Hot-path bodies are dispatched on their concrete type so the writer
	// stays on the stack; the interface call for the cold types lives in
	// a separate function so its escape does not leak into this one.
	switch b := body.(type) {
	case *Regular:
		b.encodeBody(&w)
	case *Packed:
		b.encodeBody(&w)
	case *Heartbeat:
		b.encodeBody(&w)
	case *RetransmitRequest:
		b.encodeBody(&w)
	case *SeqData:
		b.encodeBody(&w)
	case *SeqAssign:
		b.encodeBody(&w)
	default:
		w.buf = encodeColdBody(w.buf, w.bo, body)
	}
	h.Size = uint32(len(w.buf) - start)
	h.encode(w.buf[start : start+HeaderSize])
	return w.buf, nil
}

// encodeColdBody appends the encoding of a cold-path (membership or
// connection family) body through the Body interface. Kept out of
// AppendEncode so the writer escaping through the interface call does
// not force the hot path's writer onto the heap.
func encodeColdBody(buf []byte, bo binary.AppendByteOrder, body Body) []byte {
	w := writer{buf: buf, bo: bo}
	body.encodeBody(&w)
	return w.buf
}

// Encode serializes the message into a freshly allocated, exact-size
// buffer. The header's Type and Size fields are set from the body; all
// other header fields are taken as given.
func Encode(h Header, body Body) ([]byte, error) {
	if body == nil {
		return nil, fmt.Errorf("wire: nil body")
	}
	return AppendEncode(make([]byte, 0, HeaderSize+body.encodedSize()), h, body)
}

// EncodeMessage is Encode plus the finalized Message: the returned
// header matches what a receiver would decode (Type and Size filled in)
// and the body is the caller's, retained by reference. Senders that
// must remember their own transmissions (RMP retention, ROMP
// self-submission) use it to skip decoding their own bytes.
func EncodeMessage(h Header, body Body) ([]byte, Message, error) {
	raw, err := Encode(h, body)
	if err != nil {
		return nil, Message{}, err
	}
	h.Type = body.Type()
	h.Size = uint32(len(raw))
	return raw, Message{Header: h, Body: body}, nil
}

// CloneBody returns a copy of b that stays valid after the Decoder that
// produced b decodes its next message. Only the body value itself is
// copied: byte-slice fields still alias the datagram they were decoded
// from, so a caller retaining the clone must retain that buffer too
// (RMP retains the raw datagram alongside, so the invariant holds).
// Bodies of the cold types are freshly allocated per decode and are
// returned unchanged.
func CloneBody(b Body) Body {
	switch v := b.(type) {
	case *Regular:
		c := *v
		return &c
	case *Heartbeat:
		return &Heartbeat{}
	case *RetransmitRequest:
		c := *v
		return &c
	case *Packed:
		c := Packed{Entries: append([]PackedEntry(nil), v.Entries...)}
		return &c
	case *SeqData:
		c := *v
		c.Refs = append([]SeqRef(nil), v.Refs...)
		return &c
	case *SeqAssign:
		c := *v
		c.Refs = append([]SeqRef(nil), v.Refs...)
		return &c
	default:
		return b
	}
}

// decodeBody parses the body for h from r. When d is non-nil the
// hot-path types decode into d's scratch values (zero allocations);
// otherwise each body is freshly allocated.
func decodeBody(h Header, r *reader, d *Decoder) (Body, error) {
	var body Body
	switch h.Type {
	case TypeRegular:
		var reg *Regular
		if d != nil {
			reg = &d.regular
		} else {
			reg = new(Regular)
		}
		*reg = Regular{Conn: r.connID(), RequestNum: ids.RequestNum(r.u64()), Payload: r.bytes()}
		body = reg
	case TypeRetransmitRequest:
		var rr *RetransmitRequest
		if d != nil {
			rr = &d.retransmit
		} else {
			rr = new(RetransmitRequest)
		}
		*rr = RetransmitRequest{Proc: r.proc(), StartSeq: r.seqnum(), StopSeq: r.seqnum()}
		body = rr
	case TypeHeartbeat:
		if d != nil {
			body = &d.heartbeat
		} else {
			body = &Heartbeat{}
		}
	case TypePacked:
		var p *Packed
		if d != nil {
			p = &d.packed
		} else {
			p = new(Packed)
		}
		p.Entries = r.packedEntries(p.Entries[:0])
		body = p
	case TypeSeqData:
		var sd *SeqData
		if d != nil {
			sd = &d.seqData
		} else {
			sd = new(SeqData)
		}
		scratch := sd.Refs[:0]
		*sd = SeqData{Conn: r.connID(), RequestNum: ids.RequestNum(r.u64()), Payload: r.bytes()}
		sd.Epoch = r.u64()
		sd.First = r.u64()
		sd.Refs = r.seqRefs(scratch)
		body = sd
	case TypeSeqAssign:
		var sa *SeqAssign
		if d != nil {
			sa = &d.seqAssign
		} else {
			sa = new(SeqAssign)
		}
		scratch := sa.Refs[:0]
		*sa = SeqAssign{Epoch: r.u64(), First: r.u64()}
		sa.Refs = r.seqRefs(scratch)
		body = sa
	case TypeConnectRequest:
		body = &ConnectRequest{Conn: r.connID(), Procs: r.membershipList()}
	case TypeConnect:
		c := &Connect{Conn: r.connID(), Group: r.group()}
		copy(c.Addr.IP[:], r.take(4))
		c.Addr.Port = r.u16()
		c.MembershipTS = r.ts()
		c.CurrentMembership = r.membershipList()
		body = c
	case TypeAddProcessor:
		body = &AddProcessor{
			MembershipTS:      r.ts(),
			CurrentMembership: r.membershipList(),
			CurrentSeqs:       r.seqVector(),
			NewMember:         r.proc(),
		}
	case TypeRemoveProcessor:
		body = &RemoveProcessor{Member: r.proc()}
	case TypeSuspect:
		body = &Suspect{MembershipTS: r.ts(), Suspects: r.membershipList()}
	case TypeMembership:
		body = &MembershipMsg{
			MembershipTS:      r.ts(),
			CurrentMembership: r.membershipList(),
			CurrentSeqs:       r.seqVector(),
			NewMembership:     r.membershipList(),
			Epoch:             r.u64(),
			PredecessorTS:     r.ts(),
		}
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadType, h.Type)
	}
	r.done()
	if err := r.err(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v body: %w", h.Type, err)
	}
	return body, nil
}

// Decode parses a complete FTMP message from buf. buf must contain
// exactly one message (datagram framing). Byte-slice fields of the
// result (Regular payloads, Packed entry payloads) alias buf; callers
// that outlive buf must copy them. For an allocation-free hot path use
// a Decoder.
func Decode(buf []byte) (Message, error) {
	var m Message
	h, err := DecodeHeader(buf)
	if err != nil {
		return m, err
	}
	if int(h.Size) != len(buf) {
		return m, fmt.Errorf("%w: size %d, datagram %d", ErrBadSize, h.Size, len(buf))
	}
	r := newReader(h.LittleEndian, buf[HeaderSize:])
	body, err := decodeBody(h, r, nil)
	if err != nil {
		return m, err
	}
	m.Header = h
	m.Body = body
	return m, nil
}
