package wire

import "fmt"

// Decoder decodes FTMP messages without allocating on the hot path. The
// body values for the datapath types (Regular, Heartbeat,
// RetransmitRequest, Packed) are scratch fields reused across calls, and
// byte-slice fields alias the input buffer, so:
//
//   - the Message returned by Decode is valid only until the next Decode
//     call on the same Decoder;
//   - a caller that retains the message (RMP does, for retransmission)
//     must replace its body with CloneBody(m.Body) and keep the input
//     buffer alive alongside.
//
// Bodies of the remaining (membership/connection) types are freshly
// allocated per call, exactly like package-level Decode, since they are
// rare and carry slices that would otherwise need deep cloning.
//
// The zero value is ready to use. A Decoder is not safe for concurrent
// use; each protocol node owns one.
type Decoder struct {
	r          reader
	regular    Regular
	heartbeat  Heartbeat
	retransmit RetransmitRequest
	packed     Packed
	seqData    SeqData
	seqAssign  SeqAssign
}

// Decode parses a complete FTMP message from buf (datagram framing).
// See the Decoder type comment for the lifetime of the result.
func (d *Decoder) Decode(buf []byte) (Message, error) {
	var m Message
	h, err := DecodeHeader(buf)
	if err != nil {
		return m, err
	}
	if int(h.Size) != len(buf) {
		return m, fmt.Errorf("%w: size %d, datagram %d", ErrBadSize, h.Size, len(buf))
	}
	d.r.reset(h.LittleEndian, buf[HeaderSize:])
	body, err := decodeBody(h, &d.r, d)
	if err != nil {
		return m, err
	}
	m.Header = h
	m.Body = body
	return m, nil
}
