package wire

import (
	"encoding/binary"
	"fmt"

	"ftmp/internal/ids"
)

// writer appends primitive values to a buffer in a chosen byte order.
// The zero value is not usable; construct with newWriter.
type writer struct {
	buf []byte
	bo  binary.AppendByteOrder
}

// appendOrder returns the append-flavoured byte order for the flag.
func appendOrder(little bool) binary.AppendByteOrder {
	if little {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

func newWriter(little bool, sizeHint int) *writer {
	return &writer{buf: make([]byte, 0, sizeHint), bo: appendOrder(little)}
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = w.bo.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = w.bo.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = w.bo.AppendUint64(w.buf, v) }

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) proc(p ids.ProcessorID) { w.u32(uint32(p)) }
func (w *writer) group(g ids.GroupID)    { w.u32(uint32(g)) }
func (w *writer) ts(t ids.Timestamp)     { w.u64(uint64(t)) }
func (w *writer) seq(s ids.SeqNum)       { w.u32(uint32(s)) }

func (w *writer) connID(c ids.ConnectionID) {
	w.u32(uint32(c.ClientDomain))
	w.u32(uint32(c.ClientGroup))
	w.u32(uint32(c.ServerDomain))
	w.u32(uint32(c.ServerGroup))
}

func (w *writer) membership(m ids.Membership) {
	w.u32(uint32(len(m)))
	for _, p := range m {
		w.proc(p)
	}
}

func (w *writer) seqVector(v SeqVector) {
	w.u32(uint32(len(v)))
	for _, e := range v {
		w.proc(e.Proc)
		w.seq(e.Seq)
	}
}

func (w *writer) seqRefs(refs []SeqRef) {
	w.u32(uint32(len(refs)))
	for _, rf := range refs {
		w.proc(rf.Source)
		w.seq(rf.Seq)
	}
}

// reader consumes primitive values from a buffer in a chosen byte order.
// The first decode error sticks; callers check err() once at the end.
type reader struct {
	buf  []byte
	bo   binary.ByteOrder
	pos  int
	fail error
}

func newReader(little bool, buf []byte) *reader {
	var r reader
	r.reset(little, buf)
	return &r
}

// reset re-arms r over buf, letting a long-lived Decoder reuse one
// reader value across messages without allocating.
func (r *reader) reset(little bool, buf []byte) {
	r.bo = binary.ByteOrder(binary.BigEndian)
	if little {
		r.bo = binary.LittleEndian
	}
	r.buf = buf
	r.pos = 0
	r.fail = nil
}

func (r *reader) err() error { return r.fail }

func (r *reader) setErr(e error) {
	if r.fail == nil {
		r.fail = e
	}
}

func (r *reader) take(n int) []byte {
	if r.fail != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.setErr(ErrShort)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) done() {
	if r.fail == nil && r.pos != len(r.buf) {
		r.setErr(fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.pos))
	}
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return r.bo.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return r.bo.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return r.bo.Uint64(b)
}

// bytes reads a length-prefixed byte string. The returned slice ALIASES
// the input buffer (zero-copy): it is valid for as long as the buffer
// is, and callers that outlive it must copy (see Message.Retain).
func (r *reader) bytes() []byte {
	n := r.u32()
	if r.fail != nil {
		return nil
	}
	if int(n) > r.remaining() {
		r.setErr(ErrShort)
		return nil
	}
	return r.take(int(n))
}

func (r *reader) proc() ids.ProcessorID { return ids.ProcessorID(r.u32()) }
func (r *reader) group() ids.GroupID    { return ids.GroupID(r.u32()) }
func (r *reader) ts() ids.Timestamp     { return ids.Timestamp(r.u64()) }
func (r *reader) seqnum() ids.SeqNum    { return ids.SeqNum(r.u32()) }

func (r *reader) connID() ids.ConnectionID {
	return ids.ConnectionID{
		ClientDomain: ids.DomainID(r.u32()),
		ClientGroup:  ids.ObjectGroupID(r.u32()),
		ServerDomain: ids.DomainID(r.u32()),
		ServerGroup:  ids.ObjectGroupID(r.u32()),
	}
}

func (r *reader) membershipList() ids.Membership {
	n := r.u32()
	if r.fail != nil {
		return nil
	}
	if int(n)*4 > r.remaining() {
		r.setErr(ErrShort)
		return nil
	}
	m := make(ids.Membership, 0, n)
	for i := uint32(0); i < n; i++ {
		m = append(m, r.proc())
	}
	return m
}

// packedEntries decodes the entry list of a Packed body, appending into
// scratch (pass scratch[:0] to reuse a Decoder's entry slice). Entry
// payloads alias the input buffer.
func (r *reader) packedEntries(scratch []PackedEntry) []PackedEntry {
	n := r.u32()
	if r.fail != nil {
		return nil
	}
	if int(n)*packedEntryMinSize > r.remaining() {
		r.setErr(ErrShort)
		return nil
	}
	out := scratch
	for i := uint32(0); i < n; i++ {
		e := PackedEntry{
			Seq:        r.seqnum(),
			TS:         r.ts(),
			Conn:       r.connID(),
			RequestNum: ids.RequestNum(r.u64()),
			Payload:    r.bytes(),
		}
		if r.fail != nil {
			return nil
		}
		out = append(out, e)
	}
	return out
}

// seqRefs decodes a sequencing run's ref list, appending into scratch
// (pass scratch[:0] to reuse a Decoder's ref slice).
func (r *reader) seqRefs(scratch []SeqRef) []SeqRef {
	n := r.u32()
	if r.fail != nil {
		return nil
	}
	if int(n)*seqRefSize > r.remaining() {
		r.setErr(ErrShort)
		return nil
	}
	out := scratch
	for i := uint32(0); i < n; i++ {
		out = append(out, SeqRef{Source: r.proc(), Seq: r.seqnum()})
	}
	return out
}

func (r *reader) seqVector() SeqVector {
	n := r.u32()
	if r.fail != nil {
		return nil
	}
	if int(n)*8 > r.remaining() {
		r.setErr(ErrShort)
		return nil
	}
	v := make(SeqVector, 0, n)
	for i := uint32(0); i < n; i++ {
		e := SeqEntry{Proc: r.proc(), Seq: r.seqnum()}
		v = append(v, e)
	}
	return v
}
