// Package wire implements the FTMP wire format: the fixed message header
// of paper section 3.2 and the bodies of the nine FTMP message types of
// sections 5-7. Every field the paper lists is present; multi-byte fields
// are encoded in the byte order declared by the header's byte-order flag,
// exactly as GIOP/CDR does for the encapsulated payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ftmp/internal/ids"
)

// Magic is the four-byte magic at the start of every FTMP message
// ("magic is set to FTMP", paper section 3.2).
var Magic = [4]byte{'F', 'T', 'M', 'P'}

// Protocol version ("FTMP version is set to 1.0"). Minor version 1 adds
// the Packed container type; messages of the original nine types are
// still emitted as 1.0, so a non-packing peer sees wire-identical
// traffic. Decoders accept any minor version up to VersionMinorMax.
const (
	VersionMajor = 1
	VersionMinor = 0
	// VersionMinorPacked is the minor version stamped on Packed frames,
	// the first type introduced after 1.0.
	VersionMinorPacked = 1
	// VersionMinorLineage is the minor version stamped on Membership
	// frames, which carry a view lineage (epoch + predecessor view
	// timestamp) since 1.2. Other types are still emitted as before, so
	// traffic that never proposes a membership is byte-identical to a
	// 1.0/1.1 sender.
	VersionMinorLineage = 2
	// VersionMinorSeq is the minor version stamped on SeqData and
	// SeqAssign frames, the leader-follower ordering mode (FTMP 1.3).
	// Groups running in Lamport mode never emit them, so their traffic
	// stays byte-identical to a 1.2 sender.
	VersionMinorSeq = 3
	// VersionMinorMax is the highest minor version this decoder accepts.
	VersionMinorMax = VersionMinorSeq
)

// HeaderSize is the encoded size of the FTMP header in bytes.
const HeaderSize = 40

// MaxMessageSize bounds the total encoded size of one FTMP message. It
// matches a conservative UDP datagram budget; GIOP payloads larger than
// this must use GIOP Fragment messages.
const MaxMessageSize = 64 * 1024

// MsgType enumerates the FTMP message types (paper Figure 3).
type MsgType uint8

const (
	// TypeInvalid is the zero value; it never appears on the wire.
	TypeInvalid MsgType = iota
	// TypeRegular carries an encapsulated GIOP message. Reliable,
	// source-ordered and totally ordered.
	TypeRegular
	// TypeRetransmitRequest is a negative acknowledgment naming a block
	// of missing messages. Unreliable, unordered.
	TypeRetransmitRequest
	// TypeHeartbeat is the null message transmitted when a processor has
	// been idle, carrying its current sequence number and timestamps.
	// Unreliable, source-ordered delivery to ROMP.
	TypeHeartbeat
	// TypeConnectRequest asks a server object group for a connection.
	// Unreliable; retried by the client infrastructure.
	TypeConnectRequest
	// TypeConnect establishes (or re-addresses) a logical connection.
	// Reliable and totally ordered, except to the client group.
	TypeConnect
	// TypeAddProcessor adds a non-faulty processor to a processor group.
	// Reliable and totally ordered, except to the new member.
	TypeAddProcessor
	// TypeRemoveProcessor removes a non-faulty processor from a group.
	// Reliable and totally ordered.
	TypeRemoveProcessor
	// TypeSuspect reports processors suspected of being faulty.
	// Reliable, source-ordered, not totally ordered.
	TypeSuspect
	// TypeMembership proposes a new membership excluding convicted
	// processors. Reliable, source-ordered, not totally ordered.
	TypeMembership
	// TypePacked is a container carrying several small Regular messages
	// in one datagram (FTMP 1.1). Each entry keeps its own sequence
	// number and timestamp, so reliability and ordering are those of the
	// Regular messages inside; the container itself is never
	// retransmitted (lost entries are repaired individually).
	TypePacked
	// TypeSeqData is a Regular message sent by the current view's leader
	// in leader ordering mode (FTMP 1.3), with the leader's sequencing
	// run (epoch, dense delivery sequence) piggybacked on the data frame.
	// Reliable, source-ordered and totally ordered.
	TypeSeqData
	// TypeSeqAssign carries a sequencing run on its own, used when the
	// leader has assignments to publish but no data of its own to send
	// (FTMP 1.3). Reliable, source-ordered, not totally ordered.
	TypeSeqAssign

	numTypes
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeRegular:
		return "Regular"
	case TypeRetransmitRequest:
		return "RetransmitRequest"
	case TypeHeartbeat:
		return "Heartbeat"
	case TypeConnectRequest:
		return "ConnectRequest"
	case TypeConnect:
		return "Connect"
	case TypeAddProcessor:
		return "AddProcessor"
	case TypeRemoveProcessor:
		return "RemoveProcessor"
	case TypeSuspect:
		return "Suspect"
	case TypeMembership:
		return "Membership"
	case TypePacked:
		return "Packed"
	case TypeSeqData:
		return "SeqData"
	case TypeSeqAssign:
		return "SeqAssign"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t > TypeInvalid && t < numTypes }

// Reliable reports whether messages of type t are delivered reliably
// (paper Figure 3). The two per-destination exceptions (Connect to the
// client group, AddProcessor to the new member) are a property of the
// receiver's role, not of the type, and are handled in RMP.
func (t MsgType) Reliable() bool {
	switch t {
	case TypeRegular, TypeConnect, TypeAddProcessor, TypeRemoveProcessor, TypeSuspect, TypeMembership:
		return true
	case TypePacked:
		// The entries are Regular messages; each is delivered reliably.
		return true
	case TypeSeqData, TypeSeqAssign:
		// Sequencing runs must survive loss: followers cannot deliver
		// without them, and RMP's gap repair is what makes a lost run a
		// retransmission instead of a stall.
		return true
	default:
		return false
	}
}

// TotallyOrdered reports whether messages of type t are delivered in
// total order (paper Figure 3).
func (t MsgType) TotallyOrdered() bool {
	switch t {
	case TypeRegular, TypeConnect, TypeAddProcessor, TypeRemoveProcessor:
		return true
	case TypePacked:
		// As the entries are: Regular messages are totally ordered.
		return true
	case TypeSeqData:
		// The data half is a Regular message; the piggybacked run is
		// applied on RMP (source-ordered) delivery like SeqAssign.
		return true
	default:
		return false
	}
}

// Header is the decoded FTMP message header (paper section 3.2).
type Header struct {
	// LittleEndian is the byte-order flag: true for little endian.
	LittleEndian bool
	// Retransmission is false for the first transmission of a message
	// and true for all subsequent retransmissions.
	Retransmission bool
	// Type is the FTMP message type.
	Type MsgType
	// Size is the total number of bytes, including header and payload.
	Size uint32
	// Source identifies the processor that originated the message.
	Source ids.ProcessorID
	// DestGroup identifies the processor group the message is multicast
	// to (NilGroup for ConnectRequest).
	DestGroup ids.GroupID
	// Seq is incremented each time a message that must be reliably
	// delivered is transmitted. Unreliable types carry the sequence
	// number of the sender's preceding reliable message.
	Seq ids.SeqNum
	// MsgTS is the Lamport message timestamp used for ordering.
	MsgTS ids.Timestamp
	// AckTS acknowledges that the source has received every message,
	// from every member of the destination group, with timestamp <= AckTS.
	AckTS ids.Timestamp
}

// Codec errors.
var (
	ErrShort      = errors.New("wire: buffer too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrBadSize    = errors.New("wire: size field disagrees with buffer")
	ErrTrailing   = errors.New("wire: trailing bytes after message body")
	ErrOversize   = errors.New("wire: message exceeds maximum size")
)

// order returns the binary byte order declared by the header.
func (h *Header) order() binary.ByteOrder {
	if h.LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// versionMinor returns the minor protocol version a message of h's type
// is emitted under: 1.1 for Packed, 1.2 for Membership (which carries
// the view lineage since 1.2), 1.0 for everything else, keeping plain
// traffic byte-identical to a 1.0 sender.
func (h *Header) versionMinor() byte {
	switch h.Type {
	case TypePacked:
		return VersionMinorPacked
	case TypeMembership:
		return VersionMinorLineage
	case TypeSeqData, TypeSeqAssign:
		return VersionMinorSeq
	default:
		return VersionMinor
	}
}

// encode writes the header into buf, which must be at least HeaderSize
// bytes. The Size field must already be set.
func (h *Header) encode(buf []byte) {
	copy(buf[0:4], Magic[:])
	buf[4] = VersionMajor
	buf[5] = h.versionMinor()
	var flags byte
	if h.LittleEndian {
		flags |= 0x01
	}
	if h.Retransmission {
		flags |= 0x02
	}
	buf[6] = flags
	buf[7] = byte(h.Type)
	bo := h.order()
	bo.PutUint32(buf[8:12], h.Size)
	bo.PutUint32(buf[12:16], uint32(h.Source))
	bo.PutUint32(buf[16:20], uint32(h.DestGroup))
	bo.PutUint32(buf[20:24], uint32(h.Seq))
	bo.PutUint64(buf[24:32], uint64(h.MsgTS))
	bo.PutUint64(buf[32:40], uint64(h.AckTS))
}

// DecodeHeader parses the FTMP header at the start of buf.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, ErrShort
	}
	if [4]byte(buf[0:4]) != Magic {
		return h, ErrBadMagic
	}
	if buf[4] != VersionMajor || buf[5] > VersionMinorMax {
		return h, fmt.Errorf("%w: %d.%d", ErrBadVersion, buf[4], buf[5])
	}
	flags := buf[6]
	h.LittleEndian = flags&0x01 != 0
	h.Retransmission = flags&0x02 != 0
	h.Type = MsgType(buf[7])
	if !h.Type.Valid() {
		return h, fmt.Errorf("%w: %d", ErrBadType, buf[7])
	}
	if h.Type == TypePacked && buf[5] < VersionMinorPacked {
		// Packed did not exist before 1.1; a 1.0 frame claiming the type
		// is corrupt.
		return h, fmt.Errorf("%w: Packed requires 1.%d, got 1.%d",
			ErrBadVersion, VersionMinorPacked, buf[5])
	}
	if h.Type == TypeMembership && buf[5] < VersionMinorLineage {
		// Membership bodies carry the view lineage since 1.2; an older
		// frame claiming the type would decode with garbage lineage.
		return h, fmt.Errorf("%w: Membership requires 1.%d, got 1.%d",
			ErrBadVersion, VersionMinorLineage, buf[5])
	}
	if (h.Type == TypeSeqData || h.Type == TypeSeqAssign) && buf[5] < VersionMinorSeq {
		// Sequencing frames did not exist before 1.3.
		return h, fmt.Errorf("%w: %v requires 1.%d, got 1.%d",
			ErrBadVersion, h.Type, VersionMinorSeq, buf[5])
	}
	bo := h.order()
	h.Size = bo.Uint32(buf[8:12])
	h.Source = ids.ProcessorID(bo.Uint32(buf[12:16]))
	h.DestGroup = ids.GroupID(bo.Uint32(buf[16:20]))
	h.Seq = ids.SeqNum(bo.Uint32(buf[20:24]))
	h.MsgTS = ids.Timestamp(bo.Uint64(buf[24:32]))
	h.AckTS = ids.Timestamp(bo.Uint64(buf[32:40]))
	if h.Size < HeaderSize {
		return h, ErrBadSize
	}
	if h.Size > MaxMessageSize {
		return h, ErrOversize
	}
	if int(h.Size) > len(buf) {
		return h, fmt.Errorf("%w: size %d > buffer %d", ErrBadSize, h.Size, len(buf))
	}
	return h, nil
}
