package wire

import (
	"reflect"
	"testing"

	"ftmp/internal/ids"
)

// FuzzDecode drives the FTMP codec with arbitrary bytes; the property is
// absence of panics and of accepted-but-inconsistent messages. Run with
// `go test -fuzz=FuzzDecode ./internal/wire`; the seed corpus (valid
// encodings of every message type) runs under plain `go test`.
func FuzzDecode(f *testing.F) {
	h := Header{Source: 3, DestGroup: 9, Seq: 1, MsgTS: ids.MakeTimestamp(5, 3)}
	bodies := []Body{
		&Regular{Payload: []byte("seed")},
		&Heartbeat{},
		&RetransmitRequest{Proc: 2, StartSeq: 1, StopSeq: 4},
		&ConnectRequest{Procs: ids.NewMembership(1, 2)},
		&Connect{Group: 4, CurrentMembership: ids.NewMembership(1)},
		&AddProcessor{CurrentMembership: ids.NewMembership(1), NewMember: 2},
		&RemoveProcessor{Member: 1},
		&Suspect{Suspects: ids.NewMembership(2)},
		&MembershipMsg{CurrentMembership: ids.NewMembership(1, 2), NewMembership: ids.NewMembership(1)},
		&Packed{Entries: []PackedEntry{
			{Seq: 1, TS: ids.MakeTimestamp(5, 3), Payload: []byte("p1")},
			{Seq: 2, TS: ids.MakeTimestamp(6, 3), RequestNum: 4, Payload: []byte("p2")},
		}},
	}
	for _, b := range bodies {
		if enc, err := Encode(h, b); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte("FTMP garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted messages must re-encode successfully and carry a
		// valid type.
		if !m.Header.Type.Valid() {
			t.Fatalf("accepted invalid type %v", m.Header.Type)
		}
		enc, err := Encode(m.Header, m.Body)
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		// Re-encoding is canonical: decoding it again must reproduce the
		// same message exactly (decode∘encode is a fixpoint).
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("roundtrip mismatch:\n first %+v\nsecond %+v", m, m2)
		}
		// The zero-alloc Decoder must agree with package-level Decode.
		var d Decoder
		md, err := d.Decode(data)
		if err != nil {
			t.Fatalf("Decoder rejects input Decode accepted: %v", err)
		}
		if !reflect.DeepEqual(m, md) {
			t.Fatalf("Decoder disagrees with Decode:\n pkg %+v\n dec %+v", m, md)
		}
	})
}
