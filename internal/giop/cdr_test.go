package giop

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDRPrimitivesRoundTrip(t *testing.T) {
	for _, little := range []bool{false, true} {
		e := NewEncoder(little)
		e.Octet(0xAB)
		e.Boolean(true)
		e.Boolean(false)
		e.Short(-123)
		e.UShort(54321)
		e.Long(-70000)
		e.ULong(4000000000)
		e.LongLong(-1 << 40)
		e.ULongLong(1 << 60)
		e.Float(3.25)
		e.Double(-2.5e300)
		e.String("hello")
		e.OctetSeq([]byte{1, 2, 3})

		d := NewDecoder(e.Bytes(), little)
		if v := d.Octet(); v != 0xAB {
			t.Errorf("Octet = %x", v)
		}
		if !d.Boolean() || d.Boolean() {
			t.Error("Boolean round-trip")
		}
		if v := d.Short(); v != -123 {
			t.Errorf("Short = %d", v)
		}
		if v := d.UShort(); v != 54321 {
			t.Errorf("UShort = %d", v)
		}
		if v := d.Long(); v != -70000 {
			t.Errorf("Long = %d", v)
		}
		if v := d.ULong(); v != 4000000000 {
			t.Errorf("ULong = %d", v)
		}
		if v := d.LongLong(); v != -1<<40 {
			t.Errorf("LongLong = %d", v)
		}
		if v := d.ULongLong(); v != 1<<60 {
			t.Errorf("ULongLong = %d", v)
		}
		if v := d.Float(); v != 3.25 {
			t.Errorf("Float = %v", v)
		}
		if v := d.Double(); v != -2.5e300 {
			t.Errorf("Double = %v", v)
		}
		if v := d.String(); v != "hello" {
			t.Errorf("String = %q", v)
		}
		if v := d.OctetSeq(); !bytes.Equal(v, []byte{1, 2, 3}) {
			t.Errorf("OctetSeq = %v", v)
		}
		if err := d.Done(); err != nil {
			t.Errorf("Done: %v (little=%v)", err, little)
		}
	}
}

func TestCDRAlignment(t *testing.T) {
	e := NewEncoder(false)
	e.Octet(1) // pos 1
	e.ULong(7) // aligns to 4: padding at 1..3
	if e.Len() != 8 {
		t.Errorf("len after octet+ulong = %d, want 8", e.Len())
	}
	e.Octet(2)     // pos 9
	e.ULongLong(9) // aligns to 16
	if e.Len() != 24 {
		t.Errorf("len after octet+ulonglong = %d, want 24", e.Len())
	}
	d := NewDecoder(e.Bytes(), false)
	if d.Octet() != 1 || d.ULong() != 7 || d.Octet() != 2 || d.ULongLong() != 9 {
		t.Error("aligned decode mismatch")
	}
	if err := d.Done(); err != nil {
		t.Error(err)
	}
}

func TestCDRShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2}, false)
	d.ULong()
	if d.Err() == nil {
		t.Error("short ULong decoded")
	}
	d2 := NewDecoder(nil, false)
	d2.Octet()
	if d2.Err() == nil {
		t.Error("octet from empty buffer")
	}
}

func TestCDRStringErrors(t *testing.T) {
	// Zero length is invalid (must include NUL).
	e := NewEncoder(false)
	e.ULong(0)
	d := NewDecoder(e.Bytes(), false)
	_ = d.String()
	if d.Err() == nil {
		t.Error("zero-length string accepted")
	}
	// Missing NUL terminator.
	e2 := NewEncoder(false)
	e2.ULong(3)
	e2.Raw([]byte("abc"))
	d2 := NewDecoder(e2.Bytes(), false)
	_ = d2.String()
	if d2.Err() == nil {
		t.Error("unterminated string accepted")
	}
}

func TestCDRSequenceOverrun(t *testing.T) {
	e := NewEncoder(false)
	e.ULong(1 << 30)
	d := NewDecoder(e.Bytes(), false)
	d.OctetSeq()
	if d.Err() == nil {
		t.Error("huge sequence accepted")
	}
}

func TestCDRErrSticky(t *testing.T) {
	d := NewDecoder([]byte{0}, false)
	d.ULong() // fails
	first := d.Err()
	d.Double() // would fail differently
	if d.Err() != first {
		t.Error("error not sticky")
	}
}

func TestCDRRemaining(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3, 4}, false)
	d.Octet()
	rem := d.Remaining()
	if !bytes.Equal(rem, []byte{2, 3, 4}) {
		t.Errorf("Remaining = %v", rem)
	}
	if err := d.Done(); err != nil {
		t.Error(err)
	}
	// Remaining copies: mutating it must not touch the source.
	src := []byte{9, 8}
	d2 := NewDecoder(src, false)
	r2 := d2.Remaining()
	r2[0] = 0
	if src[0] != 9 {
		t.Error("Remaining aliases the input")
	}
}

func TestCDRDoneTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2}, false)
	d.Octet()
	if err := d.Done(); err == nil {
		t.Error("trailing byte unnoticed")
	}
}

func TestCDRMixedRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint16, c uint64, s []byte, str string, little bool) bool {
		if len(str) > 1024 {
			str = str[:1024]
		}
		// CDR strings cannot contain NUL.
		clean := make([]byte, 0, len(str))
		for _, ch := range []byte(str) {
			if ch != 0 {
				clean = append(clean, ch)
			}
		}
		e := NewEncoder(little)
		e.ULong(a)
		e.UShort(b)
		e.ULongLong(c)
		e.OctetSeq(s)
		e.String(string(clean))
		d := NewDecoder(e.Bytes(), little)
		if d.ULong() != a || d.UShort() != b || d.ULongLong() != c {
			return false
		}
		if !bytes.Equal(d.OctetSeq(), s) {
			return false
		}
		if d.String() != string(clean) {
			return false
		}
		return d.Done() == nil
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
