// Package giop implements the subset of CORBA's General Inter-ORB
// Protocol needed by this repository: CDR (Common Data Representation)
// marshalling and the eight GIOP message types the paper's section 3.1
// enumerates (Request, Reply, CancelRequest, LocateRequest, LocateReply,
// CloseConnection, MessageError and Fragment). It substitutes for the
// commercial ORB runtimes of the paper's era (see DESIGN.md section 5):
// the byte streams produced here are genuine GIOP 1.0.
package giop

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// CDR alignment rules: every primitive is aligned to its own size,
// relative to the start of the encapsulation.

// Errors returned by the CDR codec.
var (
	ErrCDRShort    = errors.New("giop: CDR buffer exhausted")
	ErrCDRString   = errors.New("giop: malformed CDR string")
	ErrCDRSequence = errors.New("giop: sequence length exceeds buffer")
)

// Encoder marshals values into CDR. The zero value encodes big-endian;
// use NewEncoder to choose the byte order.
type Encoder struct {
	buf    []byte
	little bool
}

// NewEncoder returns a CDR encoder with the given byte order.
func NewEncoder(littleEndian bool) *Encoder {
	return &Encoder{little: littleEndian}
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current length of the stream.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) order() binary.AppendByteOrder {
	if e.little {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// Align pads the stream to a multiple of n (1, 2, 4 or 8).
func (e *Encoder) Align(n int) {
	for len(e.buf)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// Octet appends one unaligned byte.
func (e *Encoder) Octet(v byte) { e.buf = append(e.buf, v) }

// Boolean appends a CDR boolean (one octet, 0 or 1).
func (e *Encoder) Boolean(v bool) {
	if v {
		e.Octet(1)
	} else {
		e.Octet(0)
	}
}

// UShort appends an aligned unsigned short.
func (e *Encoder) UShort(v uint16) {
	e.Align(2)
	e.buf = e.order().AppendUint16(e.buf, v)
}

// Short appends an aligned signed short.
func (e *Encoder) Short(v int16) { e.UShort(uint16(v)) }

// ULong appends an aligned unsigned long (32 bits).
func (e *Encoder) ULong(v uint32) {
	e.Align(4)
	e.buf = e.order().AppendUint32(e.buf, v)
}

// Long appends an aligned signed long.
func (e *Encoder) Long(v int32) { e.ULong(uint32(v)) }

// ULongLong appends an aligned unsigned long long (64 bits).
func (e *Encoder) ULongLong(v uint64) {
	e.Align(8)
	e.buf = e.order().AppendUint64(e.buf, v)
}

// LongLong appends an aligned signed long long.
func (e *Encoder) LongLong(v int64) { e.ULongLong(uint64(v)) }

// Float appends an aligned IEEE 754 single.
func (e *Encoder) Float(v float32) { e.ULong(math.Float32bits(v)) }

// Double appends an aligned IEEE 754 double.
func (e *Encoder) Double(v float64) { e.ULongLong(math.Float64bits(v)) }

// String appends a CDR string: ulong length including the terminating
// NUL, the bytes, then NUL.
func (e *Encoder) String(s string) {
	e.ULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// OctetSeq appends sequence<octet>: ulong length then raw bytes.
func (e *Encoder) OctetSeq(b []byte) {
	e.ULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes with no length prefix or alignment (pre-encoded
// material such as a request body).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder unmarshals CDR values.
type Decoder struct {
	buf    []byte
	pos    int
	little bool
	fail   error
}

// NewDecoder returns a CDR decoder over buf with the given byte order.
func NewDecoder(buf []byte, littleEndian bool) *Decoder {
	return &Decoder{buf: buf, little: littleEndian}
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.fail }

// Remaining returns the unread bytes (e.g. a request body following the
// fixed header fields).
func (d *Decoder) Remaining() []byte {
	out := make([]byte, len(d.buf)-d.pos)
	copy(out, d.buf[d.pos:])
	d.pos = len(d.buf)
	return out
}

// Pos returns the current read offset.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) setErr(err error) {
	if d.fail == nil {
		d.fail = err
	}
}

func (d *Decoder) order() binary.ByteOrder {
	if d.little {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// Align advances the read position to a multiple of n.
func (d *Decoder) Align(n int) {
	for d.pos%n != 0 {
		d.pos++
	}
	if d.pos > len(d.buf) {
		d.setErr(ErrCDRShort)
		d.pos = len(d.buf)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.fail != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.setErr(ErrCDRShort)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

// Octet reads one unaligned byte.
func (d *Decoder) Octet() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Boolean reads a CDR boolean.
func (d *Decoder) Boolean() bool { return d.Octet() != 0 }

// UShort reads an aligned unsigned short.
func (d *Decoder) UShort() uint16 {
	d.Align(2)
	b := d.take(2)
	if b == nil {
		return 0
	}
	return d.order().Uint16(b)
}

// Short reads an aligned signed short.
func (d *Decoder) Short() int16 { return int16(d.UShort()) }

// ULong reads an aligned unsigned long.
func (d *Decoder) ULong() uint32 {
	d.Align(4)
	b := d.take(4)
	if b == nil {
		return 0
	}
	return d.order().Uint32(b)
}

// Long reads an aligned signed long.
func (d *Decoder) Long() int32 { return int32(d.ULong()) }

// ULongLong reads an aligned unsigned long long.
func (d *Decoder) ULongLong() uint64 {
	d.Align(8)
	b := d.take(8)
	if b == nil {
		return 0
	}
	return d.order().Uint64(b)
}

// LongLong reads an aligned signed long long.
func (d *Decoder) LongLong() int64 { return int64(d.ULongLong()) }

// Float reads an aligned IEEE 754 single.
func (d *Decoder) Float() float32 { return math.Float32frombits(d.ULong()) }

// Double reads an aligned IEEE 754 double.
func (d *Decoder) Double() float64 { return math.Float64frombits(d.ULongLong()) }

// String reads a CDR string.
func (d *Decoder) String() string {
	n := d.ULong()
	if d.fail != nil {
		return ""
	}
	if n == 0 {
		d.setErr(ErrCDRString)
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	if b[n-1] != 0 {
		d.setErr(ErrCDRString)
		return ""
	}
	return string(b[:n-1])
}

// OctetSeq reads sequence<octet>.
func (d *Decoder) OctetSeq() []byte {
	n := d.ULong()
	if d.fail != nil {
		return nil
	}
	if int(n) > len(d.buf)-d.pos {
		d.setErr(ErrCDRSequence)
		return nil
	}
	b := d.take(int(n))
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Done reports an error if undecoded bytes remain.
func (d *Decoder) Done() error {
	if d.fail != nil {
		return d.fail
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("giop: %d trailing bytes", len(d.buf)-d.pos)
	}
	return nil
}
