package giop

import (
	"errors"
	"fmt"
	"io"
)

// GIOP message types (GIOP 1.0/1.1; paper section 3.1 lists all eight).
type MsgType uint8

const (
	// MsgRequest invokes an operation on an object.
	MsgRequest MsgType = iota
	// MsgReply answers a Request.
	MsgReply
	// MsgCancelRequest withdraws a pending Request.
	MsgCancelRequest
	// MsgLocateRequest asks where an object lives.
	MsgLocateRequest
	// MsgLocateReply answers a LocateRequest.
	MsgLocateReply
	// MsgCloseConnection announces orderly shutdown of a connection.
	MsgCloseConnection
	// MsgMessageError reports an unparseable message.
	MsgMessageError
	// MsgFragment continues a fragmented message (GIOP 1.1).
	MsgFragment

	numMsgTypes
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgMessageError:
		return "MessageError"
	case MsgFragment:
		return "Fragment"
	default:
		return fmt.Sprintf("GIOPType(%d)", uint8(t))
	}
}

// ReplyStatus is the status discriminator in a Reply.
type ReplyStatus uint32

const (
	// NoException: the operation completed; the body holds results.
	NoException ReplyStatus = iota
	// UserException: the body holds a user exception.
	UserException
	// SystemException: the body holds a system exception.
	SystemException
	// LocationForward: the body holds a new IOR to retry against.
	LocationForward
)

// String implements fmt.Stringer.
func (s ReplyStatus) String() string {
	switch s {
	case NoException:
		return "NO_EXCEPTION"
	case UserException:
		return "USER_EXCEPTION"
	case SystemException:
		return "SYSTEM_EXCEPTION"
	case LocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// LocateStatus is the status in a LocateReply.
type LocateStatus uint32

const (
	// UnknownObject: the object key is not known here.
	UnknownObject LocateStatus = iota
	// ObjectHere: the object is served at this endpoint.
	ObjectHere
	// ObjectForward: the body holds a new IOR.
	ObjectForward
)

// HeaderSize is the fixed GIOP message header size.
const HeaderSize = 12

// GIOP protocol constants.
var (
	magic = [4]byte{'G', 'I', 'O', 'P'}
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("giop: bad magic")
	ErrBadVersion = errors.New("giop: unsupported GIOP version")
	ErrBadType    = errors.New("giop: unknown message type")
	ErrTooLarge   = errors.New("giop: message exceeds size limit")
)

// MaxMessageSize bounds accepted GIOP messages.
const MaxMessageSize = 1 << 24

// ServiceContext is one entry of a GIOP service context list.
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// Request is a GIOP Request message.
type Request struct {
	ServiceContext []ServiceContext
	RequestID      uint32
	// ResponseExpected is false for oneway operations.
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        []byte
	// Body is the CDR-encoded in parameters.
	Body []byte
}

// Reply is a GIOP Reply message.
type Reply struct {
	ServiceContext []ServiceContext
	RequestID      uint32
	Status         ReplyStatus
	// Body is the CDR-encoded results or exception.
	Body []byte
}

// CancelRequest is a GIOP CancelRequest message.
type CancelRequest struct {
	RequestID uint32
}

// LocateRequest is a GIOP LocateRequest message.
type LocateRequest struct {
	RequestID uint32
	ObjectKey []byte
}

// LocateReply is a GIOP LocateReply message.
type LocateReply struct {
	RequestID uint32
	Status    LocateStatus
	Body      []byte
}

// CloseConnection is a GIOP CloseConnection message (empty body).
type CloseConnection struct{}

// MessageError is a GIOP MessageError message (empty body).
type MessageError struct{}

// Fragment continues a fragmented message.
type Fragment struct {
	Data []byte
}

// Message is a decoded GIOP message: exactly one field set according to
// Type.
type Message struct {
	Type         MsgType
	LittleEndian bool

	Request         *Request
	Reply           *Reply
	CancelRequest   *CancelRequest
	LocateRequest   *LocateRequest
	LocateReply     *LocateReply
	CloseConnection *CloseConnection
	MessageError    *MessageError
	Fragment        *Fragment
}

func encodeServiceContexts(e *Encoder, scs []ServiceContext) {
	e.ULong(uint32(len(scs)))
	for _, sc := range scs {
		e.ULong(sc.ID)
		e.OctetSeq(sc.Data)
	}
}

func decodeServiceContexts(d *Decoder) []ServiceContext {
	n := d.ULong()
	if d.Err() != nil || n > 1024 {
		if n > 1024 {
			d.setErr(ErrCDRSequence)
		}
		return nil
	}
	out := make([]ServiceContext, 0, n)
	for i := uint32(0); i < n; i++ {
		sc := ServiceContext{ID: d.ULong(), Data: d.OctetSeq()}
		if d.Err() != nil {
			return nil
		}
		out = append(out, sc)
	}
	return out
}

// Encode serializes a GIOP message (header + body) in the given byte
// order. GIOP version 1.0 is emitted.
func Encode(m Message, littleEndian bool) ([]byte, error) {
	body := NewEncoder(littleEndian)
	switch m.Type {
	case MsgRequest:
		r := m.Request
		if r == nil {
			return nil, fmt.Errorf("giop: Request body missing")
		}
		encodeServiceContexts(body, r.ServiceContext)
		body.ULong(r.RequestID)
		body.Boolean(r.ResponseExpected)
		body.OctetSeq(r.ObjectKey)
		body.String(r.Operation)
		body.OctetSeq(r.Principal)
		body.Raw(r.Body)
	case MsgReply:
		r := m.Reply
		if r == nil {
			return nil, fmt.Errorf("giop: Reply body missing")
		}
		encodeServiceContexts(body, r.ServiceContext)
		body.ULong(r.RequestID)
		body.ULong(uint32(r.Status))
		body.Raw(r.Body)
	case MsgCancelRequest:
		if m.CancelRequest == nil {
			return nil, fmt.Errorf("giop: CancelRequest body missing")
		}
		body.ULong(m.CancelRequest.RequestID)
	case MsgLocateRequest:
		r := m.LocateRequest
		if r == nil {
			return nil, fmt.Errorf("giop: LocateRequest body missing")
		}
		body.ULong(r.RequestID)
		body.OctetSeq(r.ObjectKey)
	case MsgLocateReply:
		r := m.LocateReply
		if r == nil {
			return nil, fmt.Errorf("giop: LocateReply body missing")
		}
		body.ULong(r.RequestID)
		body.ULong(uint32(r.Status))
		body.Raw(r.Body)
	case MsgCloseConnection, MsgMessageError:
		// Empty bodies.
	case MsgFragment:
		if m.Fragment == nil {
			return nil, fmt.Errorf("giop: Fragment body missing")
		}
		body.Raw(m.Fragment.Data)
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadType, m.Type)
	}

	b := body.Bytes()
	if len(b) > MaxMessageSize {
		return nil, ErrTooLarge
	}
	hdr := NewEncoder(littleEndian)
	hdr.Raw(magic[:])
	hdr.Octet(1) // GIOP 1.0
	hdr.Octet(0)
	hdr.Boolean(littleEndian)
	hdr.Octet(byte(m.Type))
	hdr.ULong(uint32(len(b)))
	return append(hdr.Bytes(), b...), nil
}

// Decode parses a complete GIOP message.
func Decode(buf []byte) (Message, error) {
	var m Message
	if len(buf) < HeaderSize {
		return m, ErrCDRShort
	}
	if [4]byte(buf[0:4]) != magic {
		return m, ErrBadMagic
	}
	if buf[4] != 1 || buf[5] > 2 {
		return m, fmt.Errorf("%w: %d.%d", ErrBadVersion, buf[4], buf[5])
	}
	m.LittleEndian = buf[6]&0x01 != 0
	m.Type = MsgType(buf[7])
	if m.Type >= numMsgTypes {
		return m, fmt.Errorf("%w: %d", ErrBadType, buf[7])
	}
	hd := NewDecoder(buf[8:12], m.LittleEndian)
	size := hd.ULong()
	if size > MaxMessageSize {
		return m, ErrTooLarge
	}
	if int(size) != len(buf)-HeaderSize {
		return m, fmt.Errorf("giop: size %d, body %d", size, len(buf)-HeaderSize)
	}
	d := NewDecoder(buf[HeaderSize:], m.LittleEndian)
	switch m.Type {
	case MsgRequest:
		r := &Request{}
		r.ServiceContext = decodeServiceContexts(d)
		r.RequestID = d.ULong()
		r.ResponseExpected = d.Boolean()
		r.ObjectKey = d.OctetSeq()
		r.Operation = d.String()
		r.Principal = d.OctetSeq()
		r.Body = d.Remaining()
		m.Request = r
	case MsgReply:
		r := &Reply{}
		r.ServiceContext = decodeServiceContexts(d)
		r.RequestID = d.ULong()
		r.Status = ReplyStatus(d.ULong())
		r.Body = d.Remaining()
		m.Reply = r
	case MsgCancelRequest:
		m.CancelRequest = &CancelRequest{RequestID: d.ULong()}
	case MsgLocateRequest:
		m.LocateRequest = &LocateRequest{RequestID: d.ULong(), ObjectKey: d.OctetSeq()}
	case MsgLocateReply:
		r := &LocateReply{}
		r.RequestID = d.ULong()
		r.Status = LocateStatus(d.ULong())
		r.Body = d.Remaining()
		m.LocateReply = r
	case MsgCloseConnection:
		m.CloseConnection = &CloseConnection{}
	case MsgMessageError:
		m.MessageError = &MessageError{}
	case MsgFragment:
		m.Fragment = &Fragment{Data: d.Remaining()}
	}
	if err := d.Err(); err != nil {
		return m, fmt.Errorf("giop: decoding %v: %w", m.Type, err)
	}
	return m, nil
}

// ReadMessage reads one complete GIOP message from a stream (IIOP
// framing: fixed header, then message_size bytes).
func ReadMessage(r io.Reader) ([]byte, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != magic {
		return nil, ErrBadMagic
	}
	little := hdr[6]&0x01 != 0
	size := NewDecoder(hdr[8:12], little).ULong()
	if size > MaxMessageSize {
		return nil, ErrTooLarge
	}
	buf := make([]byte, HeaderSize+int(size))
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderSize:]); err != nil {
		return nil, err
	}
	return buf, nil
}
