package giop

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessages() []Message {
	return []Message{
		{Type: MsgRequest, Request: &Request{
			ServiceContext:   []ServiceContext{{ID: 7, Data: []byte("ctx")}},
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte("account/1"),
			Operation:        "deposit",
			Principal:        []byte("alice"),
			Body:             []byte{0, 0, 0, 5},
		}},
		{Type: MsgReply, Reply: &Reply{
			RequestID: 42,
			Status:    NoException,
			Body:      []byte{0, 0, 0, 9},
		}},
		{Type: MsgCancelRequest, CancelRequest: &CancelRequest{RequestID: 42}},
		{Type: MsgLocateRequest, LocateRequest: &LocateRequest{RequestID: 9, ObjectKey: []byte("k")}},
		{Type: MsgLocateReply, LocateReply: &LocateReply{RequestID: 9, Status: ObjectHere}},
		{Type: MsgCloseConnection, CloseConnection: &CloseConnection{}},
		{Type: MsgMessageError, MessageError: &MessageError{}},
		{Type: MsgFragment, Fragment: &Fragment{Data: []byte("tail")}},
	}
}

func normalizeMsg(m *Message) {
	if m.Request != nil {
		if len(m.Request.Body) == 0 {
			m.Request.Body = nil
		}
		if len(m.Request.ServiceContext) == 0 {
			m.Request.ServiceContext = nil
		}
	}
	if m.Reply != nil {
		if len(m.Reply.Body) == 0 {
			m.Reply.Body = nil
		}
		if len(m.Reply.ServiceContext) == 0 {
			m.Reply.ServiceContext = nil
		}
	}
	if m.LocateReply != nil && len(m.LocateReply.Body) == 0 {
		m.LocateReply.Body = nil
	}
	if m.Fragment != nil && len(m.Fragment.Data) == 0 {
		m.Fragment.Data = nil
	}
}

func TestAllEightTypesRoundTrip(t *testing.T) {
	// Paper section 3.1: GIOP defines eight message types; all must
	// encode and decode.
	for _, little := range []bool{false, true} {
		for _, m := range sampleMessages() {
			buf, err := Encode(m, little)
			if err != nil {
				t.Fatalf("Encode(%v): %v", m.Type, err)
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode(%v, little=%v): %v", m.Type, little, err)
			}
			want := m
			want.LittleEndian = little
			normalizeMsg(&got)
			normalizeMsg(&want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v round-trip:\n got %+v\nwant %+v", m.Type, got, want)
			}
		}
	}
}

func TestGIOPHeaderLayout(t *testing.T) {
	buf, err := Encode(Message{Type: MsgCloseConnection, CloseConnection: &CloseConnection{}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[0:4], []byte("GIOP")) {
		t.Error("magic missing")
	}
	if buf[4] != 1 || buf[5] != 0 {
		t.Errorf("version = %d.%d, want 1.0", buf[4], buf[5])
	}
	if len(buf) != HeaderSize {
		t.Errorf("empty-body message length = %d", len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(sampleMessages()[0], false)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("short", func(t *testing.T) {
		if _, err := Decode(good[:4]); err == nil {
			t.Error("short buffer accepted")
		}
	})
	t.Run("magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 3
		if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("type", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[7] = 99
		if _, err := Decode(b); !errors.Is(err, ErrBadType) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("size mismatch", func(t *testing.T) {
		b := append(append([]byte(nil), good...), 0xEE)
		if _, err := Decode(b); err == nil {
			t.Error("trailing byte accepted")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		b := append([]byte(nil), good[:len(good)-3]...)
		if _, err := Decode(b); err == nil {
			t.Error("truncated body accepted")
		}
	})
}

func TestEncodeMissingBody(t *testing.T) {
	for _, typ := range []MsgType{MsgRequest, MsgReply, MsgCancelRequest, MsgLocateRequest, MsgLocateReply, MsgFragment} {
		if _, err := Encode(Message{Type: typ}, false); err == nil {
			t.Errorf("Encode(%v) with nil body succeeded", typ)
		}
	}
	if _, err := Encode(Message{Type: MsgType(77)}, false); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestReadMessageFraming(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		buf, err := Encode(m, true)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(buf)
	}
	for i := range msgs {
		raw, err := ReadMessage(&stream)
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		m, err := Decode(raw)
		if err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if m.Type != msgs[i].Type {
			t.Errorf("message %d type = %v, want %v", i, m.Type, msgs[i].Type)
		}
	}
	if _, err := ReadMessage(&stream); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestReadMessageBadMagic(t *testing.T) {
	r := bytes.NewReader([]byte("XXXXXXXXXXXXXXXX"))
	if _, err := ReadMessage(r); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if MsgRequest.String() != "Request" || MsgFragment.String() != "Fragment" {
		t.Error("MsgType strings")
	}
	if MsgType(99).String() == "" {
		t.Error("unknown MsgType string")
	}
	if NoException.String() != "NO_EXCEPTION" || SystemException.String() != "SYSTEM_EXCEPTION" {
		t.Error("ReplyStatus strings")
	}
	if ReplyStatus(9).String() == "" {
		t.Error("unknown ReplyStatus string")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint32, expectResp bool, key, principal, body []byte, op string, little bool) bool {
		if len(op) > 256 {
			op = op[:256]
		}
		clean := make([]byte, 0, len(op))
		for _, ch := range []byte(op) {
			if ch != 0 {
				clean = append(clean, ch)
			}
		}
		m := Message{Type: MsgRequest, Request: &Request{
			RequestID:        id,
			ResponseExpected: expectResp,
			ObjectKey:        key,
			Operation:        string(clean),
			Principal:        principal,
			Body:             body,
		}}
		buf, err := Encode(m, little)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		r := got.Request
		return r.RequestID == id && r.ResponseExpected == expectResp &&
			bytes.Equal(r.ObjectKey, key) && r.Operation == string(clean) &&
			bytes.Equal(r.Principal, principal) && bytes.Equal(r.Body, body)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeFuzzNeverPanics(t *testing.T) {
	f := func(raw []byte, fixHeader bool) bool {
		if fixHeader && len(raw) >= 12 {
			copy(raw[0:4], "GIOP")
			raw[4], raw[5] = 1, 0
		}
		_, _ = Decode(raw)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
