package giop

import "testing"

// FuzzDecode drives the GIOP codec with arbitrary bytes; accepted
// messages must re-encode. Seed corpus: every message type.
func FuzzDecode(f *testing.F) {
	msgs := []Message{
		{Type: MsgRequest, Request: &Request{RequestID: 1, Operation: "op", ObjectKey: []byte("k")}},
		{Type: MsgReply, Reply: &Reply{RequestID: 1, Status: NoException}},
		{Type: MsgCancelRequest, CancelRequest: &CancelRequest{RequestID: 1}},
		{Type: MsgLocateRequest, LocateRequest: &LocateRequest{RequestID: 1}},
		{Type: MsgLocateReply, LocateReply: &LocateReply{RequestID: 1, Status: ObjectHere}},
		{Type: MsgCloseConnection, CloseConnection: &CloseConnection{}},
		{Type: MsgMessageError, MessageError: &MessageError{}},
		{Type: MsgFragment, Fragment: &Fragment{Data: []byte("tail")}},
	}
	for _, m := range msgs {
		if enc, err := Encode(m, false); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte("GIOPxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Encode(m, m.LittleEndian); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
	})
}
