package ftcorba

import (
	"hash/crc32"

	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// Streamed, resumable state transfer to a new replica.
//
// Adding a replica must hand it a state snapshot positioned consistently
// in the total order, or concurrent requests would be double- or
// never-applied. The cut works as in the Eternal system's approach
// (which the paper's infrastructure references):
//
//  1. The infrastructure adds the new processor to the connection's
//     processor group (AddProcessor); from its admission cut onward the
//     new replica receives every ordered message, but only buffers
//     application requests.
//  2. An existing replica multicasts a _ft_get_state marker (AddReplica;
//     automated on the admission view, see recovery.go). When the marker
//     is DELIVERED (totally ordered), every old replica holds the same
//     state; EVERY old replica snapshots at exactly that point and
//     caches the snapshot, and the designated supporter (lowest-id
//     configured supporter present, regardless of who sent the marker)
//     starts streaming it.
//  3. The snapshot flows as a sequence of _ft_state_chunk messages on
//     the ordered channel — bounded-size, CRC-guarded, at most
//     transferWindow chunks beyond the last acknowledged one. The new
//     replica stages each chunk (and, when durable, persists it as a
//     RecStateChunk), then multicasts _ft_state_ack; the ack is the
//     sender's credit to advance the window.
//  4. When the last chunk lands, the new replica assembles the state,
//     restores it, replays its buffered requests with delivery
//     timestamps after the marker, discards the rest (their effects are
//     inside the snapshot), and goes live.
//
// Resumption. Acks are totally-ordered multicasts, so every old replica
// tracks the transfer's progress, and chunk deliveries let non-senders
// mirror the sender's position:
//
//   - Sender crash: the next designated replica (the original sender
//     while it is a member, else the lowest-id configured supporter
//     present) takes over from its mirrored position — chunks the
//     joiner already acknowledged are never re-sent.
//   - Dropped/duplicated chunk: the joiner accepts only the next
//     expected index; an ack that does not advance is an explicit
//     resume request and rewinds the sender to the acknowledged
//     position.
//   - Joiner restart: a durable joiner recovers its staged chunks from
//     the WAL and, on readmission, re-acks its position instead of
//     announcing — the stream resumes mid-transfer.
//
// Old replicas ignore the chunks (beyond mirroring progress). Requests
// ordered between marker and completion are in the new replica's buffer
// with timestamps above the marker, so nothing is lost or double-applied.

const (
	// stateChunk is the payload size of one _ft_state_chunk. Small enough
	// that a chunk plus framing stays a single unfragmented datagram;
	// large enough that window*chunk keeps the channel busy.
	stateChunk = 16 * 1024
	// transferWindow bounds unacknowledged in-flight chunks: the
	// receiver-driven credit that keeps a slow joiner from being buried.
	transferWindow = 4
)

// chunkCRCTable guards each chunk independently of the WAL framing (the
// staging area would otherwise trust whatever the codec accepted).
var chunkCRCTable = crc32.MakeTable(crc32.Castagnoli)

// xferState is the sender-side cache of one in-progress transfer. Every
// established stateful replica holds one from the marker's delivery
// until the final ack, so any of them can take over the stream.
type xferState struct {
	markerTS ids.Timestamp
	upTo     ids.RequestNum // sender's processed watermark at the cut
	state    []byte
	total    uint32
	acked    uint32          // chunks the joiner has acknowledged
	sent     uint32          // next chunk index to send (mirrored from deliveries at non-senders)
	sender   ids.ProcessorID // designated at the marker (failover falls back to the same rule)
}

// stageState is the joiner-side staging area of one in-progress
// transfer: chunks land here (and in the WAL, when durable) until the
// stream completes and the assembled state is restored atomically.
type stageState struct {
	markerTS ids.Timestamp
	upTo     ids.RequestNum
	total    uint32
	chunks   [][]byte
}

func chunkCount(n int) uint32 {
	total := uint32((n + stateChunk - 1) / stateChunk)
	if total == 0 {
		total = 1 // an empty state still streams as one chunk
	}
	return total
}

func chunkData(state []byte, i uint32) []byte {
	lo := int(i) * stateChunk
	hi := lo + stateChunk
	if lo > len(state) {
		lo = len(state)
	}
	if hi > len(state) {
		hi = len(state)
	}
	return state[lo:hi]
}

// AddReplica runs the existing-replica side of state transfer for the
// object group og on connection conn: it multicasts the get-state
// marker. Call it on the designated (e.g. lowest-id) existing replica
// after the new processor has been added to the processor group.
func (f *Infra) AddReplica(now int64, conn ids.ConnectionID, og ids.ObjectGroupID) error {
	sg, ok := f.servedGroups[og]
	if !ok {
		return ErrNotServed
	}
	if _, ok := sg.servant.(Stateful); !ok {
		return ErrNotStateful
	}
	return f.sendControl(now, conn, og, opGetState, nil)
}

// sendControl multicasts an infrastructure request (request number 0)
// on an established connection.
func (f *Infra) sendControl(now int64, conn ids.ConnectionID, og ids.ObjectGroupID, op string, body []byte) error {
	st := f.node.ConnectionState(conn)
	if st == nil || !st.Established {
		return ErrNotEstablished
	}
	return f.sendControlOn(now, st.Group, conn, og, op, body)
}

// sendControlOn multicasts an infrastructure request on an explicit
// processor group. A freshly admitted joiner is a group member before
// its connection table reflects it (the admission installs membership
// directly), so its acks address the group carried by the delivery they
// answer rather than going through ConnectionState.
func (f *Infra) sendControlOn(now int64, group ids.GroupID, conn ids.ConnectionID, og ids.ObjectGroupID, op string, body []byte) error {
	key, _ := f.servedObjectKeyFor(og)
	msg := giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        0,
		ResponseExpected: false,
		ObjectKey:        []byte(key),
		Operation:        op,
		Body:             body,
	}}
	// Control messages can exceed the datagram budget; fragment like any
	// other large GIOP message.
	payloads, err := maybeFragment(msg)
	if err != nil {
		return err
	}
	if len(payloads) > 1 {
		f.stats.Fragmented++
	}
	for _, p := range payloads {
		if err := f.node.Multicast(now, group, conn, 0, p); err != nil {
			return err
		}
	}
	return nil
}

// onGetStateMarker handles the ordered _ft_get_state marker.
func (f *Infra) onGetStateMarker(now int64, d core.Delivery) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok {
		return
	}
	if sg.joining {
		// The new replica notes the cut position. A fresh marker
		// supersedes a stale staging area from an earlier, abandoned
		// transfer (a durable joiner's recovered stage is not stale — it
		// accepts only its own marker and is resumed instead).
		sg.markerTS = d.TS
		if st := sg.stage[d.Conn]; st != nil && !sg.durable && st.markerTS != d.TS {
			delete(sg.stage, d.Conn)
		}
		return
	}
	st, ok := sg.servant.(Stateful)
	if !ok {
		return
	}
	snap, err := st.SnapshotState()
	if err != nil {
		return
	}
	// EVERY established replica snapshots at the marker and caches the
	// transfer: the marker is totally ordered, so the snapshots are
	// identical, and any survivor can take over the stream if the
	// sender dies mid-transfer. The designated supporter streams
	// regardless of which replica multicast the marker.
	if sg.xfer == nil {
		sg.xfer = make(map[ids.ConnectionID]*xferState)
	}
	x := &xferState{
		markerTS: d.TS,
		upTo:     f.watermark(d.Conn),
		state:    snap,
		total:    chunkCount(len(snap)),
		sender:   f.designatedSender(d.Group, d.Conn.ServerGroup),
	}
	sg.xfer[d.Conn] = x
	// Only the designated sender streams; everyone else mirrors progress.
	if x.sender != f.self {
		return
	}
	f.streamChunks(now, d.Group, d.Conn, sg, x)
}

// streamChunks sends chunks up to the credit window (acked +
// transferWindow). Called at the current sender on marker delivery,
// each ack, and failover takeover.
func (f *Infra) streamChunks(now int64, group ids.GroupID, conn ids.ConnectionID, sg *served, x *xferState) {
	limit := x.acked + transferWindow
	if limit > x.total {
		limit = x.total
	}
	for x.sent < limit {
		data := chunkData(x.state, x.sent)
		e := giop.NewEncoder(false)
		e.ULongLong(uint64(x.markerTS))
		e.ULongLong(uint64(x.upTo))
		e.ULong(x.sent)
		e.ULong(x.total)
		e.ULong(crc32.Checksum(data, chunkCRCTable))
		e.OctetSeq(data)
		if err := f.sendControlOn(now, group, conn, conn.ServerGroup, opStateChunk, e.Bytes()); err != nil {
			return // retried from the next ack (or takeover)
		}
		x.sent++
		f.stats.StateChunksSent++
		trace.Inc("ftcorba.state_chunks_sent")
	}
}

// onStateChunk handles one ordered _ft_state_chunk.
func (f *Infra) onStateChunk(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok {
		return
	}
	dec := giop.NewDecoder(req.Body, false)
	markerTS := ids.Timestamp(dec.ULongLong())
	upTo := ids.RequestNum(dec.ULongLong())
	index := dec.ULong()
	total := dec.ULong()
	sum := dec.ULong()
	data := dec.OctetSeq()
	if dec.Err() != nil || total == 0 || index >= total {
		return
	}
	if !sg.joining {
		// Survivor: mirror the stream position, so a failover takeover
		// resumes exactly where the dead sender stopped instead of
		// re-sending delivered chunks.
		if x := sg.xfer[d.Conn]; x != nil && x.markerTS == markerTS && index+1 > x.sent {
			x.sent = index + 1
		}
		return
	}
	if crc32.Checksum(data, chunkCRCTable) != sum {
		trace.Inc("ftcorba.chunk_crc_drops")
		return // corrupted in flight; the stalled window forces a rewind
	}
	st := sg.stage[d.Conn]
	if st == nil || st.markerTS != markerTS {
		if sg.durable {
			// A WAL-recovered joiner reconciles via delta; the only stream
			// it newly accepts is the delta fallback, cut at its own
			// get-delta marker. (A recovered mid-transfer stage matched
			// above and resumes regardless.) Anything else — a survivor's
			// automatic transfer racing the announce — would discard the
			// locally replayed history.
			rc := sg.reconFor(d.Conn)
			if rc.deltaMarkerTS == 0 || markerTS != rc.deltaMarkerTS {
				return
			}
		} else if sg.markerTS == 0 || markerTS != sg.markerTS {
			return // a stream we never saw the marker for
		}
		if index != 0 {
			return // mid-stream start: wait for the sender's rewind
		}
		if sg.stage == nil {
			sg.stage = make(map[ids.ConnectionID]*stageState)
		}
		st = &stageState{markerTS: markerTS, upTo: upTo, total: total}
		sg.stage[d.Conn] = st
	}
	got := uint32(len(st.chunks))
	if total != st.total || index != got {
		// Duplicate after a sender rewind (index < got) or a gap
		// (index > got, possible only across a failover): ignore.
		// Duplicates are deliberately NOT re-acked — an ack that does not
		// advance means "rewind", and answering duplicates with it would
		// loop the stream forever.
		return
	}
	st.chunks = append(st.chunks, data)
	st.upTo = upTo
	f.walStateChunk(d.Conn, st, index, data)
	f.stats.StateChunksApplied++
	trace.Inc("ftcorba.state_chunks_applied")
	got++
	// Receiver-driven credit: each ack opens the sender's window. Sent
	// before completion so the final ack also retires the senders' cache.
	f.sendStateAck(now, d.Group, d.Conn, markerTS, got)
	if got == st.total {
		f.completeTransfer(now, d.Conn, sg, st)
	}
}

// sendStateAck multicasts the joiner's cumulative chunk count.
func (f *Infra) sendStateAck(now int64, group ids.GroupID, conn ids.ConnectionID, markerTS ids.Timestamp, acked uint32) {
	e := giop.NewEncoder(false)
	e.ULongLong(uint64(markerTS))
	e.ULong(acked)
	_ = f.sendControlOn(now, group, conn, conn.ServerGroup, opStateAck, e.Bytes())
}

// onStateAck handles one ordered _ft_state_ack at the established
// replicas (the joiner's own acks loop back and are ignored).
func (f *Infra) onStateAck(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok || sg.joining {
		return
	}
	dec := giop.NewDecoder(req.Body, false)
	markerTS := ids.Timestamp(dec.ULongLong())
	acked := dec.ULong()
	if dec.Err() != nil {
		return
	}
	x := sg.xfer[d.Conn]
	if x == nil || x.markerTS != markerTS {
		return
	}
	stalled := acked <= x.acked && acked < x.total
	if acked > x.acked {
		x.acked = acked
	}
	if x.acked >= x.total {
		// The joiner has everything; retire the cached transfer.
		delete(sg.xfer, d.Conn)
		return
	}
	if f.xferSender(d.Group, d.Conn, x) != f.self {
		return
	}
	if stalled {
		// An ack that does not advance is an explicit resume request (a
		// restarted joiner re-stating its durable position, or a receiver
		// that saw a corrupted chunk): rewind to the joiner's stated
		// position — it may be BELOW our acked high-water if the joiner
		// lost unsynced staging — and stream again from there.
		x.acked = acked
		x.sent = acked
		f.stats.TransferResumes++
		trace.Inc("ftcorba.xfer_resumes")
	}
	f.streamChunks(now, d.Group, d.Conn, sg, x)
}

// xferSender returns the replica currently responsible for streaming:
// the sender fixed at the marker while it remains a member, else the
// lowest-id configured supporter still present. Membership and acks are
// totally ordered, so every replica computes the same answer.
func (f *Infra) xferSender(group ids.GroupID, conn ids.ConnectionID, x *xferState) ids.ProcessorID {
	if f.node.Members(group).Contains(x.sender) {
		return x.sender
	}
	return f.designatedSender(group, conn.ServerGroup)
}

// designatedSender is the lowest-id configured supporter of og present
// in group's current membership, or NilProcessor when none remains.
func (f *Infra) designatedSender(group ids.GroupID, og ids.ObjectGroupID) ids.ProcessorID {
	members := f.node.Members(group)
	for _, p := range f.node.ObjectGroupProcs(og) {
		if members.Contains(p) {
			return p
		}
	}
	return ids.NilProcessor
}

// completeTransfer assembles and restores the staged state at the
// joiner, then goes live (or, for a durable joiner, hands back to the
// reconciliation machinery).
func (f *Infra) completeTransfer(now int64, conn ids.ConnectionID, sg *served, st *stageState) {
	stf, ok := sg.servant.(Stateful)
	if !ok {
		return
	}
	var n int
	for _, c := range st.chunks {
		n += len(c)
	}
	state := make([]byte, 0, n)
	for _, c := range st.chunks {
		state = append(state, c...)
	}
	var rc *reconState
	if sg.durable {
		rc = sg.reconFor(conn)
	}
	if err := stf.RestoreState(state); err != nil {
		delete(sg.stage, conn)
		if rc != nil {
			// Reconciliation is NOT done; release the outstanding delta
			// (and its cut) so maybeReconcile can retry on the next
			// announce instead of wedging the group in joining forever.
			rc.deltaOutstanding = false
			rc.deltaMarkerTS = 0
		}
		return
	}
	delete(sg.stage, conn)
	f.stats.StateTransfers++
	// Persist the snapshot itself before the watermark jump it
	// justifies: a recovered watermark without the state below it would
	// silently drop the snapshot's history after a whole-group crash.
	snapDurable := f.walSnapshot(conn, st.markerTS, st.upTo, state)
	if st.upTo > f.watermark(conn) {
		f.advanceProcessed(conn, st.upTo)
		if snapDurable {
			f.walMark(wal.MarkProcessedUpTo, conn, st.upTo)
		}
	}
	if rc != nil {
		if rc.deltaMarkerTS != 0 && st.markerTS == rc.deltaMarkerTS {
			// The delta fallback: this connection is reconciled.
			rc.deltaOutstanding = false
			rc.done = true
			// Go-live must wait for every reconciling connection, not just
			// this one; maybeGoLive replays the whole buffer through the
			// duplicate filter, which now covers the snapshot's history.
			f.maybeGoLive(now, sg)
			return
		}
		// A resumed pre-crash transfer: the bulk state is restored, but
		// requests ordered while this replica was down are neither inside
		// the snapshot nor in its buffer — reconcile the tail through
		// announce/delta from the new watermark.
		rc.deltaOutstanding = false
		rc.deltaMarkerTS = 0
		rc.done = false
		_ = f.AnnounceRecovery(now, conn)
		return
	}
	sg.joining = false
	// Replay buffered requests ordered after the snapshot cut.
	buffered := sg.buffered
	sg.buffered = nil
	for _, b := range buffered {
		if b.d.TS <= st.markerTS {
			continue // effects are inside the snapshot
		}
		f.stats.Replayed++
		f.dispatch(now, b.d, sg, b.msg.Request)
	}
}

// TransferProgress describes one in-progress streamed state transfer at
// this replica (ftmpd /stats).
type TransferProgress struct {
	Conn     ids.ConnectionID
	MarkerTS ids.Timestamp
	Acked    uint32 // chunks acknowledged (staged, at a joiner)
	Total    uint32
	Sending  bool // sender-side cache; false: joiner-side staging
}

// TransferProgress returns the in-progress transfers, sender caches and
// joiner staging areas both. Empty when no transfer is running.
func (f *Infra) TransferProgress() []TransferProgress {
	var out []TransferProgress
	for _, sg := range f.servedGroups {
		for conn, x := range sg.xfer {
			out = append(out, TransferProgress{Conn: conn, MarkerTS: x.markerTS, Acked: x.acked, Total: x.total, Sending: true})
		}
		for conn, st := range sg.stage {
			out = append(out, TransferProgress{Conn: conn, MarkerTS: st.markerTS, Acked: uint32(len(st.chunks)), Total: st.total})
		}
	}
	return out
}

// OnFault handles a fault report from the FTMP node: replicas hosted on
// convicted processors are gone; the application's recovery policy (for
// example activating a backup via ServeJoining + AddReplica) runs on the
// hook, if set.
func (f *Infra) OnFault(group ids.GroupID, convicted ids.Membership) {
	if f.FaultHook != nil {
		f.FaultHook(group, convicted)
	}
}
