package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/wal"
)

// State transfer to a new replica.
//
// Adding a replica must hand it a state snapshot positioned consistently
// in the total order, or concurrent requests would be double- or
// never-applied. The protocol (the Eternal system's approach, which the
// paper's infrastructure references):
//
//  1. The infrastructure adds the new processor to the connection's
//     processor group (AddProcessor); from its admission cut onward the
//     new replica receives every ordered message, but only buffers
//     application requests.
//  2. A designated existing replica multicasts a _ft_get_state marker.
//     When the marker is DELIVERED (totally ordered), every old replica
//     holds the same state; the designated one snapshots at exactly that
//     point and multicasts _ft_set_state with the snapshot and the
//     marker's delivery timestamp.
//  3. The new replica restores the snapshot, replays its buffered
//     requests with delivery timestamps after the marker, discards the
//     rest (their effects are inside the snapshot), and goes live.
//
// Old replicas ignore the snapshot. Requests ordered between marker and
// snapshot delivery are in the new replica's buffer with timestamps
// above the marker, so nothing is lost or double-applied.

// AddReplica runs the existing-replica side of state transfer for the
// object group og on connection conn: it multicasts the get-state
// marker. Call it on the designated (e.g. lowest-id) existing replica
// after the new processor has been added to the processor group.
func (f *Infra) AddReplica(now int64, conn ids.ConnectionID, og ids.ObjectGroupID) error {
	sg, ok := f.servedGroups[og]
	if !ok {
		return ErrNotServed
	}
	if _, ok := sg.servant.(Stateful); !ok {
		return ErrNotStateful
	}
	return f.sendControl(now, conn, og, opGetState, nil)
}

// sendControl multicasts an infrastructure request (request number 0).
func (f *Infra) sendControl(now int64, conn ids.ConnectionID, og ids.ObjectGroupID, op string, body []byte) error {
	st := f.node.ConnectionState(conn)
	if st == nil || !st.Established {
		return ErrNotEstablished
	}
	key, _ := f.servedObjectKeyFor(og)
	msg := giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        0,
		ResponseExpected: false,
		ObjectKey:        []byte(key),
		Operation:        op,
		Body:             body,
	}}
	// State snapshots can exceed the datagram budget; fragment like any
	// other large GIOP message.
	payloads, err := maybeFragment(msg)
	if err != nil {
		return err
	}
	if len(payloads) > 1 {
		f.stats.Fragmented++
	}
	for _, p := range payloads {
		if err := f.node.Multicast(now, st.Group, conn, 0, p); err != nil {
			return err
		}
	}
	return nil
}

// onGetStateMarker handles the ordered _ft_get_state marker.
func (f *Infra) onGetStateMarker(now int64, d core.Delivery) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok {
		return
	}
	if sg.joining {
		// The new replica notes the cut position.
		sg.markerTS = d.TS
		return
	}
	// Only the replica that originated the marker answers with the
	// snapshot, to avoid k identical snapshot multicasts.
	if d.Source != f.self {
		return
	}
	st, ok := sg.servant.(Stateful)
	if !ok {
		return
	}
	snap, err := st.SnapshotState()
	if err != nil {
		return
	}
	// Encode snapshot with the marker's delivery timestamp (the cut the
	// new replica replays from) and this replica's processed watermark,
	// so the recipient's duplicate filter also covers the history the
	// snapshot embodies.
	e := giop.NewEncoder(false)
	e.ULongLong(uint64(d.TS))
	e.OctetSeq(snap)
	e.ULongLong(uint64(f.watermark(d.Conn)))
	_ = f.sendControl(now, d.Conn, d.Conn.ServerGroup, opSetState, e.Bytes())
}

// onSetState handles the ordered _ft_set_state snapshot.
func (f *Infra) onSetState(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok || !sg.joining {
		return // old replicas already have the state
	}
	dec := giop.NewDecoder(req.Body, false)
	markerTS := ids.Timestamp(dec.ULongLong())
	snap := dec.OctetSeq()
	if dec.Err() != nil {
		return
	}
	// The sender's processed watermark rides along (absent only in logs
	// written by older encodings, so a short read is not an error).
	var upTo ids.RequestNum
	if v := dec.ULongLong(); dec.Err() == nil {
		upTo = ids.RequestNum(v)
	}
	var rc *reconState
	if sg.durable {
		// A WAL-recovered joiner reconciles via delta; the only snapshot
		// it accepts is the delta fallback, cut at its own get-delta
		// marker. Anything else (a survivor's automatic transfer racing
		// the announce) would discard the locally replayed history.
		rc = sg.reconFor(d.Conn)
		if rc.deltaMarkerTS == 0 || markerTS != rc.deltaMarkerTS {
			return
		}
	}
	st, ok := sg.servant.(Stateful)
	if !ok {
		return
	}
	if err := st.RestoreState(snap); err != nil {
		if rc != nil {
			// Reconciliation is NOT done; release the outstanding delta
			// (and its cut) so maybeReconcile can retry on the next
			// announce instead of wedging the group in joining forever.
			rc.deltaOutstanding = false
			rc.deltaMarkerTS = 0
		}
		return
	}
	f.stats.StateTransfers++
	// Persist the snapshot itself before the watermark jump it
	// justifies: a recovered watermark without the state below it would
	// silently drop the snapshot's history after a whole-group crash.
	snapDurable := f.walSnapshot(d.Conn, markerTS, upTo, snap)
	if upTo > f.watermark(d.Conn) {
		f.advanceProcessed(d.Conn, upTo)
		if snapDurable {
			f.walMark(wal.MarkProcessedUpTo, d.Conn, upTo)
		}
	}
	if rc != nil {
		rc.deltaOutstanding = false
		rc.done = true
		// Go-live must wait for every reconciling connection, not just
		// this one; maybeGoLive replays the whole buffer through the
		// duplicate filter, which now covers the snapshot's history.
		f.maybeGoLive(now, sg)
		return
	}
	sg.joining = false
	// Replay buffered requests ordered after the snapshot cut.
	buffered := sg.buffered
	sg.buffered = nil
	for _, b := range buffered {
		if b.d.TS <= markerTS {
			continue // effects are inside the snapshot
		}
		f.stats.Replayed++
		f.dispatch(now, b.d, sg, b.msg.Request)
	}
}

// OnFault handles a fault report from the FTMP node: replicas hosted on
// convicted processors are gone; the application's recovery policy (for
// example activating a backup via ServeJoining + AddReplica) runs on the
// hook, if set.
func (f *Infra) OnFault(group ids.GroupID, convicted ids.Membership) {
	if f.FaultHook != nil {
		f.FaultHook(group, convicted)
	}
}
