package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Automated crash recovery.
//
// The manual recovery path (ListenGroup + RequestAddProcessor +
// AddReplica, exercised by the state-transfer tests) requires an
// operator on both sides. The automated pipeline composes the same
// primitives so a crashed replica returns without intervention:
//
//   rejoiner:  Rejoin() — register the joining replica and probe the
//              server domain with ConnectRequests under the fresh
//              ProcessorID (core.RequestRejoin, backoff-paced).
//   sponsor:   the designated member auto-readmits the prober
//              (core.maybeReadmit → AddProcessor).
//   survivors: OnViewChange sees the admission and the designated
//              replica multicasts the state-transfer marker
//              (AddReplica) — UNLESS a cached in-progress transfer
//              exists for the connection. A cached transfer means the
//              previous consumer died mid-stream and a restarted
//              joiner may resume it; a fresh marker here would trample
//              the resumable stream while the joiner's resume ack is
//              in flight.
//   joiner:    a WAL-recovered joiner sees its own admission and
//              announces its watermark (delta reconciliation), or —
//              holding a staged partial stream — re-acks its position
//              so the survivors rewind and resume the stream.
//
// The snapshot streaming itself proceeds exactly as in the manual
// AddReplica path (statetransfer.go), with the designated supporter as
// the sender.

// OnViewChange drives automated recovery: when a processor joins a
// group carrying connections whose server object group is replicated
// here, the designated replica (lowest configured supporter present)
// starts a state transfer so the joiner catches up — or, when a
// resumable stream is already cached, leaves the initiative to the
// joiner's resume ack. Wire it to core.Callbacks.ViewChange alongside
// OnDeliver; leaving it unwired keeps the manual AddReplica workflow.
func (f *Infra) OnViewChange(v core.ViewChange, now int64) {
	// Every installed view is a durable membership epoch: cold start
	// recreates the group at the last logged one (core.CreateGroupAt).
	// A wedge is NOT an installed view — runtime.WrapDurable logs the
	// wedge point instead, and logging an epoch here would clear it.
	if v.Reason == core.ViewWedge {
		return
	}
	if v.Reason == core.ViewHeal {
		// The wedged minority member is tearing down to rejoin the
		// primary component: put its served replicas back into joining so
		// the post-heal state transfer (or delta reconciliation, for
		// durable replicas) overwrites whatever the minority held, and
		// drop stale transfer/reconciliation progress. Duplicate filters
		// are kept — requests spanning the partition must still be
		// suppressed exactly once.
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			if sg, ok := f.servedGroups[conn.ServerGroup]; ok {
				sg.joining = true
				sg.markerTS = 0
				sg.buffered = nil
				delete(sg.recon, conn)
				// Transfer progress from the minority side is stale on
				// both ends: drop the sender cache and the staging area.
				delete(sg.xfer, conn)
				delete(sg.stage, conn)
				trace.Inc("ftcorba.wedge_rejoins")
			}
		}
		return
	}
	f.walEpoch(v.Group, v.ViewTS, v.Members)
	// Departures shrink the set of announcements reconciliation waits
	// for: re-evaluate, so a peer that never returns (disk gone, never
	// announces) only blocks durable joiners until the failure detector
	// convicts it, instead of forever. The detector's timeout is the
	// recovery deadline. A departure also evicts its half-reassembled
	// fragments and, when the departed processor was streaming a state
	// transfer, hands the stream to the next designated sender.
	if len(v.Left) > 0 {
		f.evictFragments(v.Left)
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			sg, ok := f.servedGroups[conn.ServerGroup]
			if !ok {
				continue
			}
			if sg.joining && sg.durable {
				f.maybeReconcile(now, conn, sg)
			}
			if sg.joining {
				continue
			}
			if x := sg.xfer[conn]; x != nil && !v.Members.Contains(x.sender) &&
				f.xferSender(v.Group, conn, x) == f.self {
				// Takeover: resume from the mirrored position — chunks the
				// dead sender already delivered are never re-sent.
				f.stats.TransferResumes++
				trace.Inc("ftcorba.xfer_failovers")
				f.streamChunks(now, v.Group, conn, sg, x)
			}
		}
	}
	if len(v.Joined) == 0 {
		return
	}
	// A durable joiner sees its own admission here. With a staging area
	// recovered from its WAL it re-acks the staged position — an ack that
	// does not advance is the resume request that rewinds the sender —
	// instead of announcing; otherwise it announces the recovered
	// watermark so reconciliation (announce/delta) starts. (The rejoin
	// path adopts the connection before the admission view is emitted, so
	// ConnectionsOn covers it here.)
	if v.Joined.Contains(f.self) {
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			if sg, ok := f.servedGroups[conn.ServerGroup]; ok && sg.joining && sg.durable {
				if st := sg.stage[conn]; st != nil {
					f.sendStateAck(now, v.Group, conn, st.markerTS, uint32(len(st.chunks)))
					trace.Inc("ftcorba.xfer_resume_requests")
					continue
				}
				_ = f.AnnounceRecovery(now, conn)
			}
		}
	}
	if v.Reason != core.ViewAdd {
		return
	}
	for _, conn := range f.node.ConnectionsOn(v.Group) {
		og := conn.ServerGroup
		sg, ok := f.servedGroups[og]
		if !ok || sg.joining {
			continue // not an established replica here (or we ARE the joiner)
		}
		if _, stateful := sg.servant.(Stateful); !stateful {
			continue
		}
		if sg.xfer[conn] != nil {
			// An in-progress transfer is cached: its consumer died
			// mid-stream and the joiner in this view may be its restarted
			// incarnation. Hold the marker — a fresh one would trample the
			// resumable stream while the joiner's resume ack is in flight.
			// A WAL-less restart announces instead and reconciles via
			// delta (the snapshot fallback replaces the cache); only an
			// operator restarting a transfer by hand needs AddReplica.
			continue
		}
		designated := ids.NilProcessor
		for _, p := range f.node.ObjectGroupProcs(og) {
			if v.Members.Contains(p) {
				designated = p
				break
			}
		}
		if designated != f.self {
			continue
		}
		if err := f.AddReplica(now, conn, og); err == nil {
			trace.Inc("ftcorba.auto_transfers")
		}
	}
}

// Rejoin runs the rejoiner side of automated recovery at a freshly
// (re)started processor: it registers the local replica of og as
// joining (requests buffer until the snapshot arrives) and probes for
// readmission to conn's processor group under this node's ProcessorID.
// Caught-up is observable as Joining(og) turning false.
func (f *Infra) Rejoin(now int64, conn ids.ConnectionID, og ids.ObjectGroupID, objectKey string, servant orb.Servant, serverDomainAddr wire.MulticastAddr) {
	if _, ok := f.servedGroups[og]; !ok {
		f.ServeJoining(og, objectKey, servant)
	}
	trace.Inc("ftcorba.rejoins_started")
	f.node.RequestRejoin(now, conn, serverDomainAddr)
}

// Joining reports whether the local replica of og is still waiting for
// its state snapshot.
func (f *Infra) Joining(og ids.ObjectGroupID) bool {
	sg, ok := f.servedGroups[og]
	return ok && sg.joining
}
