package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/trace"
	"ftmp/internal/wire"
)

// Automated crash recovery.
//
// The manual recovery path (ListenGroup + RequestAddProcessor +
// AddReplica, exercised by the state-transfer tests) requires an
// operator on both sides. The automated pipeline composes the same
// primitives so a crashed replica returns without intervention:
//
//   rejoiner:  Rejoin() — register the joining replica and probe the
//              server domain with ConnectRequests under the fresh
//              ProcessorID (core.RequestRejoin, backoff-paced).
//   sponsor:   the designated member auto-readmits the prober
//              (core.maybeReadmit → AddProcessor).
//   survivors: OnViewChange sees the admission and the designated
//              replica multicasts the state-transfer marker
//              (AddReplica); the snapshot and replay then proceed
//              exactly as in the manual path (statetransfer.go).

// OnViewChange drives the survivor side of automated recovery: when a
// processor joins a group carrying connections whose server object
// group is replicated here, the designated replica (lowest configured
// supporter present in the new view) starts a state transfer so the
// joiner catches up. Wire it to core.Callbacks.ViewChange alongside
// OnDeliver; leaving it unwired keeps the manual AddReplica workflow.
func (f *Infra) OnViewChange(v core.ViewChange, now int64) {
	// Every installed view is a durable membership epoch: cold start
	// recreates the group at the last logged one (core.CreateGroupAt).
	// A wedge is NOT an installed view — runtime.WrapDurable logs the
	// wedge point instead, and logging an epoch here would clear it.
	if v.Reason == core.ViewWedge {
		return
	}
	if v.Reason == core.ViewHeal {
		// The wedged minority member is tearing down to rejoin the
		// primary component: put its served replicas back into joining so
		// the post-heal state transfer (or delta reconciliation, for
		// durable replicas) overwrites whatever the minority held, and
		// drop stale transfer/reconciliation progress. Duplicate filters
		// are kept — requests spanning the partition must still be
		// suppressed exactly once.
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			if sg, ok := f.servedGroups[conn.ServerGroup]; ok {
				sg.joining = true
				sg.markerTS = 0
				sg.buffered = nil
				delete(sg.recon, conn)
				trace.Inc("ftcorba.wedge_rejoins")
			}
		}
		return
	}
	f.walEpoch(v.Group, v.ViewTS, v.Members)
	// Departures shrink the set of announcements reconciliation waits
	// for: re-evaluate, so a peer that never returns (disk gone, never
	// announces) only blocks durable joiners until the failure detector
	// convicts it, instead of forever. The detector's timeout is the
	// recovery deadline.
	if len(v.Left) > 0 {
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			if sg, ok := f.servedGroups[conn.ServerGroup]; ok && sg.joining && sg.durable {
				f.maybeReconcile(now, conn, sg)
			}
		}
	}
	if len(v.Joined) == 0 {
		return
	}
	// A durable joiner sees its own admission here: announce the
	// recovered watermark so reconciliation (announce/delta) starts.
	if v.Joined.Contains(f.self) {
		for _, conn := range f.node.ConnectionsOn(v.Group) {
			if sg, ok := f.servedGroups[conn.ServerGroup]; ok && sg.joining && sg.durable {
				_ = f.AnnounceRecovery(now, conn)
			}
		}
	}
	if v.Reason != core.ViewAdd {
		return
	}
	for _, conn := range f.node.ConnectionsOn(v.Group) {
		og := conn.ServerGroup
		sg, ok := f.servedGroups[og]
		if !ok || sg.joining {
			continue // not an established replica here (or we ARE the joiner)
		}
		if _, stateful := sg.servant.(Stateful); !stateful {
			continue
		}
		designated := ids.NilProcessor
		for _, p := range f.node.ObjectGroupProcs(og) {
			if v.Members.Contains(p) {
				designated = p
				break
			}
		}
		if designated != f.self {
			continue
		}
		if err := f.AddReplica(now, conn, og); err == nil {
			trace.Inc("ftcorba.auto_transfers")
		}
	}
}

// Rejoin runs the rejoiner side of automated recovery at a freshly
// (re)started processor: it registers the local replica of og as
// joining (requests buffer until the snapshot arrives) and probes for
// readmission to conn's processor group under this node's ProcessorID.
// Caught-up is observable as Joining(og) turning false.
func (f *Infra) Rejoin(now int64, conn ids.ConnectionID, og ids.ObjectGroupID, objectKey string, servant orb.Servant, serverDomainAddr wire.MulticastAddr) {
	if _, ok := f.servedGroups[og]; !ok {
		f.ServeJoining(og, objectKey, servant)
	}
	trace.Inc("ftcorba.rejoins_started")
	f.node.RequestRejoin(now, conn, serverDomainAddr)
}

// Joining reports whether the local replica of og is still waiting for
// its state snapshot.
func (f *Infra) Joining(og ids.ObjectGroupID) bool {
	sg, ok := f.servedGroups[og]
	return ok && sg.joining
}
