package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// Durability and whole-group crash recovery.
//
// The in-memory message log, duplicate-suppression filters and
// membership epoch survive single-replica crashes through their
// replicas — but a correlated failure of every replica (power loss,
// rolling deploy gone wrong) loses all of them. AttachWAL mirrors the
// three structures into a write-ahead log (package wal); after a
// restart, RecoverFromWAL rebuilds them and re-runs the logged,
// processed requests against the local servants, so the servant state
// is exactly the logged history.
//
// Recovery-point semantics: the RecOp record for a request is written
// (appendLog) before its RecMark processed record (dispatch), so a
// crash between the two leaves an op without a mark — recovery then
// does not replay it into the servant and does not claim it processed,
// which matches the fact that its reply was never sent. The servant
// state rebuilt from the log is therefore always consistent with the
// recovered duplicate-suppression filter.
//
// After the local replay, replicas reconcile with each other so the
// group converges on the longest valid logged prefix:
//
//	_ft_recovered  — a recovered (or surviving) replica announces its
//	                 processed watermark for a connection. Replicas
//	                 that hear an announce echo their own watermark
//	                 (once per value), so everyone learns everyone's.
//	_ft_get_delta  — a replica whose watermark is behind the maximum
//	                 asks for the missing suffix; the delivery of this
//	                 marker fixes the cut, like _ft_get_state.
//	_ft_set_delta  — the designated holder of the longest log answers
//	                 with the logged requests above the requester's
//	                 watermark. The requester applies them (without
//	                 re-multicasting replies), appends them to its own
//	                 log and WAL, and goes live once it has caught up.
//
// If the responder's log no longer covers the requested range (it was
// trimmed), it falls back to a full _ft_set_state snapshot taken at the
// same cut. A cold start is just this protocol with every replica
// recovering at once; a single restarted replica (RejoinWithWAL) runs
// the same announce/delta exchange against the survivors and transfers
// only the suffix it missed, not the whole state.
//
// Reconciliation needs core.Config.ObjectGroups so each replica knows
// the set of peers whose announcements to expect.

// Control operations of the recovery protocol (request number 0).
const (
	opRecovered = "_ft_recovered"
	opGetDelta  = "_ft_get_delta"
	opSetDelta  = "_ft_set_delta"
)

// reconState is the per-connection reconciliation progress of a served
// object group.
type reconState struct {
	// peerMarks holds the announced processed watermarks, self included.
	peerMarks map[ids.ProcessorID]ids.RequestNum
	// lastAnnounced is the watermark this replica last multicast;
	// announces are re-sent only when the value changed.
	lastAnnounced ids.RequestNum
	hasAnnounced  bool
	// deltaMarkerTS is the delivery timestamp of our own _ft_get_delta
	// (the reconciliation cut); zero until sent.
	deltaMarkerTS ids.Timestamp
	// deltaOutstanding guards against duplicate delta requests.
	deltaOutstanding bool
	// done: this connection has been reconciled (watermark reached the
	// group maximum).
	done bool
}

// AttachWAL mirrors the message log, duplicate-suppression filters and
// membership epochs into w. onErr (may be nil) observes append/sync
// failures; the wal.Log itself turns sticky after the first failure, so
// a durability hole is reported loudly rather than silently widened.
func (f *Infra) AttachWAL(w *wal.Log, onErr func(error)) {
	f.wal = w
	f.walErr = onErr
}

// WAL returns the attached log (nil if none).
func (f *Infra) WAL() *wal.Log { return f.wal }

func (f *Infra) walAppend(r wal.Record) {
	if f.wal == nil {
		return
	}
	if err := f.wal.Append(r); err != nil {
		if f.walErr != nil {
			f.walErr(err)
		}
	}
}

// walOp mirrors one appendLog entry.
func (f *Infra) walOp(d core.Delivery, isRequest bool) {
	f.walAppend(wal.Record{Type: wal.RecOp, Op: &wal.OpRecord{
		Conn:    d.Conn,
		ReqNum:  d.RequestNum,
		Request: isRequest,
		TS:      d.TS,
		Payload: d.Payload,
	}})
}

// walMark mirrors one duplicate-filter entry.
func (f *Infra) walMark(kind wal.MarkKind, conn ids.ConnectionID, req ids.RequestNum) {
	f.walAppend(wal.Record{Type: wal.RecMark, Mark: &wal.MarkRecord{Kind: kind, Conn: conn, ReqNum: req}})
}

// walEpoch mirrors one installed membership view.
func (f *Infra) walEpoch(group ids.GroupID, viewTS ids.Timestamp, members ids.Membership) {
	rec := wal.EpochRecord{
		Group:   group,
		ViewTS:  viewTS,
		Members: members.Clone(),
	}
	if f.epochs == nil {
		f.epochs = make(map[ids.GroupID]wal.EpochRecord)
	}
	f.epochs[group] = rec
	f.walAppend(wal.Record{Type: wal.RecEpoch, Epoch: &rec})
}

// walStateChunk mirrors one staged state-transfer chunk, so a joiner
// that crashes mid-transfer recovers its staging area and resumes the
// stream from its acknowledged position instead of starting over.
func (f *Infra) walStateChunk(conn ids.ConnectionID, st *stageState, index uint32, data []byte) {
	f.walAppend(wal.Record{Type: wal.RecStateChunk, Chunk: &wal.StateChunkRecord{
		Conn:     conn,
		MarkerTS: st.markerTS,
		UpTo:     st.upTo,
		Chunk:    index,
		Total:    st.total,
		Data:     data,
	}})
}

// walSnapshot mirrors an applied state snapshot, reporting whether it
// is durably logged (vacuously true without a WAL). Callers must not
// persist the MarkProcessedUpTo watermark jump the snapshot justifies
// unless this succeeded — a logged watermark whose underlying state is
// not logged would recover as silent data loss.
func (f *Infra) walSnapshot(conn ids.ConnectionID, markerTS ids.Timestamp, upTo ids.RequestNum, state []byte) bool {
	if f.wal == nil {
		return true
	}
	err := f.wal.Append(wal.Record{Type: wal.RecSnapshot, Snap: &wal.SnapshotRecord{
		Conn:     conn,
		MarkerTS: markerTS,
		UpTo:     upTo,
		State:    state,
	}})
	if err != nil {
		if f.walErr != nil {
			f.walErr(err)
		}
		return false
	}
	return true
}

// Recovered summarizes what RecoverFromWAL rebuilt.
type Recovered struct {
	// Ops is the number of log entries restored (after deduplication).
	Ops int
	// Marks is the number of duplicate-filter entries restored.
	Marks int
	// Replayed is the number of logged, processed requests re-run
	// against local servants.
	Replayed int
	// Snapshots is the number of logged state snapshots restored into
	// local servants.
	Snapshots int
	// Epochs holds the last installed membership per group; cold start
	// recreates each group at this epoch (core.CreateGroupAt).
	Epochs map[ids.GroupID]wal.EpochRecord
	// MaxTS is the highest timestamp seen anywhere in the log; the node
	// clock must observe it (core.RecoverClock) before sending.
	MaxTS ids.Timestamp
	// Checkpointed is true when a complete checkpoint chain was restored
	// (CompactWAL wrote one): only the log suffix behind it was replayed.
	Checkpointed bool
	// StagedChunks counts state-transfer chunks recovered into staging
	// areas — the replica crashed mid-transfer and will resume it.
	StagedChunks int
}

// opDedupeKey identifies a logged operation exactly; a segment
// duplicated by an interrupted copy/restore replays records verbatim,
// and verbatim records collapse here.
type opDedupeKey struct {
	conn    ids.ConnectionID
	req     ids.RequestNum
	request bool
	ts      ids.Timestamp
}

// RecoverFromWAL rebuilds the infrastructure state from the records a
// wal.Open recovered. Call it after registering the local replicas
// (Serve / ServeRecovered) and before processing any delivery: logged,
// processed requests are re-dispatched into the servants so their state
// equals the logged history. Records are applied in log order; exact
// duplicates (duplicate segment replay) are dropped.
func (f *Infra) RecoverFromWAL(records []wal.Record) Recovered {
	out := Recovered{Epochs: make(map[ids.GroupID]wal.EpochRecord)}
	seen := make(map[opDedupeKey]bool)
	type snapDedupeKey struct {
		conn ids.ConnectionID
		ts   ids.Timestamp
		upTo ids.RequestNum
	}
	seenSnaps := make(map[snapDedupeKey]bool)
	// replayItem interleaves ops and snapshots in log order: a snapshot
	// must be restored at its logged position, with earlier ops' effects
	// replaced by it and later ops applied on top.
	type replayItem struct {
		op   *wal.OpRecord
		snap *wal.SnapshotRecord
	}
	var seq []replayItem
	// snapCover is the latest snapshot cut per connection: a request
	// delivered at or before it has its effects inside a snapshot that
	// will be restored, so replaying it would be wasted (or, for
	// non-idempotent side effects, wrong) work.
	snapCover := make(map[ids.ConnectionID]ids.Timestamp)
	// A complete checkpoint chain (CompactWAL) replaces everything logged
	// before it: restore it up front and replay only the suffix. The skip
	// is positional — records before the chain are embodied by it however
	// their timestamps relate to the recorded cut. Epochs are exempt so a
	// checkpoint written without retained epochs still recovers views.
	ckptEnd := 0
	if ck, ok := wal.LatestCheckpoint(records); ok {
		if err := f.restoreCheckpoint(ck.State); err == nil {
			out.Checkpointed = true
			ckptEnd = ck.End
			if ck.Cut > out.MaxTS {
				out.MaxTS = ck.Cut
			}
			trace.Inc("ftcorba.wal_checkpoint_restores")
		} else {
			trace.Inc("ftcorba.wal_checkpoint_errors")
		}
	}
	// stages rebuilds in-progress state-transfer staging areas from
	// RecStateChunk records; a later snapshot for the same cut retires
	// the stage (the transfer completed before the crash).
	stages := make(map[ids.ConnectionID]*stageState)
	for i, r := range records {
		if i < ckptEnd && r.Type != wal.RecEpoch {
			continue
		}
		switch r.Type {
		case wal.RecOp:
			op := *r.Op
			key := opDedupeKey{op.Conn, op.ReqNum, op.Request, op.TS}
			if seen[key] {
				continue
			}
			seen[key] = true
			f.logs[op.Conn] = append(f.logs[op.Conn], LogEntry{
				ReqNum:  op.ReqNum,
				Request: op.Request,
				TS:      op.TS,
				Payload: op.Payload,
			})
			if op.Request && op.ReqNum > f.nextReq[op.Conn] {
				// Request numbers resume above everything logged, so a
				// restarted client cannot reuse a key the group has
				// already processed.
				f.nextReq[op.Conn] = op.ReqNum
			}
			if op.TS > out.MaxTS {
				out.MaxTS = op.TS
			}
			seq = append(seq, replayItem{op: &op})
			out.Ops++
		case wal.RecMark:
			key := callKey{r.Mark.Conn, r.Mark.ReqNum}
			switch r.Mark.Kind {
			case wal.MarkProcessedUpTo:
				f.advanceProcessed(r.Mark.Conn, r.Mark.ReqNum)
				out.Marks++
			case wal.MarkProcessed:
				if !f.processed[key] && !f.isProcessed(key.conn, key.req) {
					f.processed[key] = true
					out.Marks++
				}
				f.noteProcessed(key.conn, key.req)
			case wal.MarkReplied:
				if !f.replied[key] && !f.isReplied(key.conn, key.req) {
					f.replied[key] = true
					out.Marks++
				}
				f.noteReplied(key.conn, key.req)
			}
		case wal.RecEpoch:
			out.Epochs[r.Epoch.Group] = *r.Epoch
			if r.Epoch.ViewTS > out.MaxTS {
				out.MaxTS = r.Epoch.ViewTS
			}
		case wal.RecSnapshot:
			sn := r.Snap
			key := snapDedupeKey{sn.Conn, sn.MarkerTS, sn.UpTo}
			if seenSnaps[key] {
				continue
			}
			seenSnaps[key] = true
			// The snapshot embodies every request up to UpTo even when
			// the crash hit before the separate watermark record landed.
			f.advanceProcessed(sn.Conn, sn.UpTo)
			if sn.MarkerTS > out.MaxTS {
				out.MaxTS = sn.MarkerTS
			}
			if sn.MarkerTS > snapCover[sn.Conn] {
				snapCover[sn.Conn] = sn.MarkerTS
			}
			if st := stages[sn.Conn]; st != nil && sn.MarkerTS >= st.markerTS {
				delete(stages, sn.Conn) // that transfer completed pre-crash
			}
			seq = append(seq, replayItem{snap: sn})
		case wal.RecStateChunk:
			c := r.Chunk
			st := stages[c.Conn]
			if st == nil || st.markerTS != c.MarkerTS {
				if c.Chunk != 0 {
					continue // mid-stream chunk of a transfer we never started
				}
				st = &stageState{markerTS: c.MarkerTS, upTo: c.UpTo, total: c.Total}
				stages[c.Conn] = st
			}
			if c.Total != st.total || c.Chunk != uint32(len(st.chunks)) {
				if c.Chunk < uint32(len(st.chunks)) {
					continue // duplicate segment replay
				}
				delete(stages, c.Conn) // inconsistent chain: drop, re-transfer
				continue
			}
			st.chunks = append(st.chunks, c.Data)
			st.upTo = c.UpTo
			if c.MarkerTS > out.MaxTS {
				out.MaxTS = c.MarkerTS
			}
			out.StagedChunks++
		}
	}
	// Second pass, after every mark is known: restore logged snapshots
	// and re-run the processed requests against local servants, in log
	// order. Requests without a processed mark are skipped — their
	// replies were never sent, so the group will (re)order and dispatch
	// them normally; requests covered by a snapshot cut are skipped —
	// their effects are inside the restored state.
	for _, it := range seq {
		if it.snap != nil {
			sg, ok := f.servedGroups[it.snap.Conn.ServerGroup]
			if !ok {
				continue
			}
			st, ok := sg.servant.(Stateful)
			if !ok {
				continue
			}
			if st.RestoreState(it.snap.State) == nil {
				out.Snapshots++
			}
			continue
		}
		op := it.op
		if !op.Request || op.ReqNum == 0 {
			continue
		}
		sg, servesHere := f.servedGroups[op.Conn.ServerGroup]
		if !servesHere || !f.isProcessed(op.Conn, op.ReqNum) {
			continue
		}
		if op.TS <= snapCover[op.Conn] {
			continue
		}
		msg, err := giop.Decode(op.Payload)
		if err != nil || msg.Type != giop.MsgRequest || msg.Request == nil {
			continue
		}
		sg.adapter.Dispatch(msg.Request)
		out.Replayed++
	}
	// Recovered staging areas: a complete one (the crash hit between the
	// last chunk and the completion snapshot) restores now; an incomplete
	// one re-attaches so the stream resumes after readmission
	// (OnViewChange re-acks its position instead of announcing).
	for conn, st := range stages {
		sg, ok := f.servedGroups[conn.ServerGroup]
		if !ok || !sg.joining {
			continue
		}
		if uint32(len(st.chunks)) == st.total {
			stf, ok := sg.servant.(Stateful)
			if !ok {
				continue
			}
			var n int
			for _, c := range st.chunks {
				n += len(c)
			}
			state := make([]byte, 0, n)
			for _, c := range st.chunks {
				state = append(state, c...)
			}
			if stf.RestoreState(state) == nil {
				out.Snapshots++
				f.advanceProcessed(conn, st.upTo)
				if f.walSnapshot(conn, st.markerTS, st.upTo, state) {
					f.walMark(wal.MarkProcessedUpTo, conn, st.upTo)
				}
			}
			continue
		}
		if sg.stage == nil {
			sg.stage = make(map[ids.ConnectionID]*stageState)
		}
		sg.stage[conn] = st
		trace.Count("ftcorba.wal_staged_chunks", uint64(len(st.chunks)))
	}
	f.stats.WALRecoveredOps += uint64(out.Ops)
	trace.Count("ftcorba.wal_recovered_ops", uint64(out.Ops))
	if out.Replayed > 0 {
		trace.Count("ftcorba.wal_replayed", uint64(out.Replayed))
	}
	if out.Snapshots > 0 {
		trace.Count("ftcorba.wal_recovered_snapshots", uint64(out.Snapshots))
	}
	return out
}

// ServeRecovered registers a local replica rebuilt from its WAL: it
// buffers ordered requests (like ServeJoining) until the announce/delta
// reconciliation establishes that its log has reached the group's
// longest prefix. Use it on every replica of a cold start, and via
// RejoinWithWAL on a single restarted replica.
func (f *Infra) ServeRecovered(og ids.ObjectGroupID, objectKey string, servant orb.Servant) {
	f.ServeJoining(og, objectKey, servant)
	f.servedGroups[og].durable = true
}

// RejoinWithWAL is Rejoin for a replica that recovered local state from
// its WAL first: after readmission it announces its watermark and
// requests only the missing suffix (delta) instead of a full snapshot.
func (f *Infra) RejoinWithWAL(now int64, conn ids.ConnectionID, og ids.ObjectGroupID, objectKey string, servant orb.Servant, serverDomainAddr wire.MulticastAddr) {
	if _, ok := f.servedGroups[og]; !ok {
		f.ServeRecovered(og, objectKey, servant)
	}
	trace.Inc("ftcorba.rejoins_started")
	f.node.RequestRejoin(now, conn, serverDomainAddr)
}

// watermark returns the contiguous processed watermark for conn.
func (f *Infra) watermark(conn ids.ConnectionID) ids.RequestNum {
	if w, ok := f.water[conn]; ok {
		return w.processedUpTo
	}
	return 0
}

// recon returns (creating if needed) the reconciliation state of sg on
// conn.
func (sg *served) reconFor(conn ids.ConnectionID) *reconState {
	if sg.recon == nil {
		sg.recon = make(map[ids.ConnectionID]*reconState)
	}
	rc, ok := sg.recon[conn]
	if !ok {
		rc = &reconState{peerMarks: make(map[ids.ProcessorID]ids.RequestNum)}
		sg.recon[conn] = rc
	}
	return rc
}

// AnnounceRecovery multicasts this replica's processed watermark for
// conn (_ft_recovered). Recovered replicas call it once the connection
// is re-established; replicas that hear an announce echo automatically.
func (f *Infra) AnnounceRecovery(now int64, conn ids.ConnectionID) error {
	sg, ok := f.servedGroups[conn.ServerGroup]
	if !ok {
		return ErrNotServed
	}
	rc := sg.reconFor(conn)
	mark := f.watermark(conn)
	e := giop.NewEncoder(false)
	e.ULongLong(uint64(mark))
	if err := f.sendControl(now, conn, conn.ServerGroup, opRecovered, e.Bytes()); err != nil {
		return err
	}
	rc.hasAnnounced = true
	rc.lastAnnounced = mark
	trace.Inc("ftcorba.recovery_announces")
	return nil
}

// reconPeers returns the processors expected to announce on conn: the
// configured supporters of the server object group that are currently
// members of the connection's processor group.
func (f *Infra) reconPeers(conn ids.ConnectionID) ids.Membership {
	st := f.node.ConnectionState(conn)
	if st == nil {
		return nil
	}
	members := f.node.Members(st.Group)
	var out ids.Membership
	for _, p := range f.node.ObjectGroupProcs(conn.ServerGroup) {
		if members.Contains(p) {
			out = out.Add(p)
		}
	}
	return out
}

// onRecovered handles an ordered _ft_recovered announce.
func (f *Infra) onRecovered(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok {
		return
	}
	dec := giop.NewDecoder(req.Body, false)
	mark := ids.RequestNum(dec.ULongLong())
	if dec.Err() != nil {
		return
	}
	rc := sg.reconFor(d.Conn)
	rc.peerMarks[d.Source] = mark
	// Echo our own watermark so the announcer (and everyone else) learns
	// it — but only when the value is news.
	if cur := f.watermark(d.Conn); !rc.hasAnnounced || rc.lastAnnounced != cur {
		_ = f.AnnounceRecovery(now, d.Conn)
	}
	f.maybeReconcile(now, d.Conn, sg)
}

// maybeReconcile decides, for a durable joining replica, whether the
// connection has caught up (go live) or needs a delta.
func (f *Infra) maybeReconcile(now int64, conn ids.ConnectionID, sg *served) {
	if !sg.joining || !sg.durable {
		return
	}
	rc := sg.reconFor(conn)
	if rc.done || !rc.hasAnnounced {
		return
	}
	peers := f.reconPeers(conn)
	maxMark := ids.RequestNum(0)
	for _, p := range peers {
		if p == f.self {
			continue
		}
		m, ok := rc.peerMarks[p]
		if !ok {
			return // wait for every expected announce
		}
		if m > maxMark {
			maxMark = m
		}
	}
	if f.watermark(conn) >= maxMark {
		rc.done = true
		f.maybeGoLive(now, sg)
		return
	}
	if rc.deltaOutstanding {
		return
	}
	rc.deltaOutstanding = true
	e := giop.NewEncoder(false)
	e.ULongLong(uint64(f.watermark(conn)))
	_ = f.sendControl(now, conn, conn.ServerGroup, opGetDelta, e.Bytes())
	trace.Inc("ftcorba.delta_requests")
}

// maybeGoLive flips a durable joining replica live once every
// reconciling connection is done, replaying the buffered requests. The
// full buffer goes through dispatch — its duplicate filter skips
// everything the delta already covered.
func (f *Infra) maybeGoLive(now int64, sg *served) {
	if !sg.joining {
		return
	}
	for _, rc := range sg.recon {
		if !rc.done {
			return
		}
	}
	sg.joining = false
	buffered := sg.buffered
	sg.buffered = nil
	for _, b := range buffered {
		f.stats.Replayed++
		f.dispatch(now, b.d, sg, b.msg.Request)
	}
	trace.Inc("ftcorba.recoveries_completed")
}

// onGetDelta handles an ordered _ft_get_delta marker. The requester
// notes the cut; the designated responder (lowest-id member with the
// highest announced watermark) answers with its logged requests above
// the requester's watermark, or falls back to a snapshot if its log no
// longer covers the range.
func (f *Infra) onGetDelta(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok {
		return
	}
	dec := giop.NewDecoder(req.Body, false)
	from := ids.RequestNum(dec.ULongLong())
	if dec.Err() != nil {
		return
	}
	if d.Source == f.self {
		sg.reconFor(d.Conn).deltaMarkerTS = d.TS
		return
	}
	rc := sg.reconFor(d.Conn)
	// Designated responder: among the expected peers other than the
	// requester, the lowest id holding the highest announced watermark.
	// Announces are totally ordered before this marker, so every replica
	// computes the same responder.
	responder := ids.NilProcessor
	best := ids.RequestNum(0)
	for _, p := range f.reconPeers(d.Conn) {
		if p == d.Source {
			continue
		}
		if m, ok := rc.peerMarks[p]; ok && (responder == ids.NilProcessor || m > best) {
			responder, best = p, m
		}
	}
	if responder != f.self {
		return
	}
	upTo := f.watermark(d.Conn)
	// The delta is the logged requests in (from, upTo]; check coverage —
	// TrimLog may have dropped part of the range.
	entries := make(map[ids.RequestNum]*LogEntry)
	for i := range f.logs[d.Conn] {
		e := &f.logs[d.Conn][i]
		if e.Request && e.ReqNum > from && e.ReqNum <= upTo {
			if _, dup := entries[e.ReqNum]; !dup {
				entries[e.ReqNum] = e
			}
		}
	}
	for r := from + 1; r <= upTo; r++ {
		if entries[r] == nil {
			// Gap: fall back to a full snapshot at this same cut.
			f.sendSnapshot(now, d, sg)
			return
		}
	}
	e := giop.NewEncoder(false)
	e.ULong(uint32(d.Source))
	e.ULongLong(uint64(d.TS))
	e.ULongLong(uint64(upTo - from))
	for r := from + 1; r <= upTo; r++ {
		e.ULongLong(uint64(entries[r].ReqNum))
		e.ULongLong(uint64(entries[r].TS))
		e.OctetSeq(entries[r].Payload)
	}
	_ = f.sendControl(now, d.Conn, d.Conn.ServerGroup, opSetDelta, e.Bytes())
	trace.Inc("ftcorba.delta_responses")
}

// sendSnapshot streams a full state transfer at the cut d.TS (the delta
// fallback when the responder's log was trimmed below the range). The
// requester accepts it because the cut equals its own get-delta marker.
// Unlike marker-initiated transfers only the responder caches it — the
// fallback has no failover, the requester simply re-asks on the next
// announce round if the responder dies.
func (f *Infra) sendSnapshot(now int64, d core.Delivery, sg *served) {
	st, ok := sg.servant.(Stateful)
	if !ok {
		return
	}
	snap, err := st.SnapshotState()
	if err != nil {
		return
	}
	if sg.xfer == nil {
		sg.xfer = make(map[ids.ConnectionID]*xferState)
	}
	x := &xferState{
		markerTS: d.TS,
		upTo:     f.watermark(d.Conn),
		state:    snap,
		total:    chunkCount(len(snap)),
		sender:   f.self,
	}
	sg.xfer[d.Conn] = x
	f.streamChunks(now, d.Group, d.Conn, sg, x)
}

// onSetDelta applies an ordered _ft_set_delta at the requester: the
// missing requests are run against the servant (replies are NOT
// re-multicast — they were sent when the ops were first processed),
// marked processed, and appended to the local log and WAL.
func (f *Infra) onSetDelta(now int64, d core.Delivery, req *giop.Request) {
	sg, ok := f.servedGroups[d.Conn.ServerGroup]
	if !ok || !sg.joining || !sg.durable {
		return
	}
	dec := giop.NewDecoder(req.Body, false)
	requester := ids.ProcessorID(dec.ULong())
	markerTS := ids.Timestamp(dec.ULongLong())
	n := dec.ULongLong()
	if dec.Err() != nil || requester != f.self {
		return
	}
	rc := sg.reconFor(d.Conn)
	if markerTS != rc.deltaMarkerTS {
		return // answers someone else's (or a stale) request
	}
	rc.deltaOutstanding = false
	applied := 0
	for i := uint64(0); i < n; i++ {
		rnum := ids.RequestNum(dec.ULongLong())
		ts := ids.Timestamp(dec.ULongLong())
		payload := dec.OctetSeq()
		if dec.Err() != nil {
			return
		}
		if f.isProcessed(d.Conn, rnum) {
			continue
		}
		msg, err := giop.Decode(payload)
		if err != nil || msg.Type != giop.MsgRequest || msg.Request == nil {
			continue
		}
		od := core.Delivery{Group: d.Group, Source: d.Source, TS: ts, Conn: d.Conn, RequestNum: rnum, Payload: payload}
		f.appendLog(od, true)
		sg.adapter.Dispatch(msg.Request)
		f.processed[callKey{d.Conn, rnum}] = true
		f.noteProcessed(d.Conn, rnum)
		f.walMark(wal.MarkProcessed, d.Conn, rnum)
		applied++
	}
	if applied > 0 {
		f.stats.DeltaTransfers++
		f.stats.Replayed += uint64(applied)
		trace.Count("ftcorba.delta_ops", uint64(applied))
	}
	f.maybeReconcile(now, d.Conn, sg)
}
