package ftcorba

import (
	"ftmp/internal/ids"
)

// Memory management for the duplicate-detection state and message logs.
//
// Request numbers on a connection are monotonically increasing (paper
// section 4), so once every request up to a watermark has been processed
// and replied, the per-request filter entries below it can be collapsed
// into the watermark itself: anything at or below it is a duplicate by
// definition. Logs are the application's durability artifact, so they
// are trimmed only on explicit request.

// compactionBatch is how many completed entries accumulate before a
// compaction pass runs.
const compactionBatch = 256

// lowWater tracks per-connection contiguous completion.
type lowWater struct {
	// processedUpTo: every request number <= this has been dispatched
	// (or observed dispatched) here.
	processedUpTo ids.RequestNum
	// repliedUpTo: every reply number <= this was delivered here.
	repliedUpTo ids.RequestNum
	// compaction progress (entries at or below are already deleted).
	processedSwept ids.RequestNum
	repliedSwept   ids.RequestNum
}

// noteProcessed advances the processed watermark and compacts the
// filter maps once enough contiguous entries accumulate.
func (f *Infra) noteProcessed(conn ids.ConnectionID, req ids.RequestNum) {
	if f.water == nil {
		f.water = make(map[ids.ConnectionID]*lowWater)
	}
	w, ok := f.water[conn]
	if !ok {
		w = &lowWater{}
		f.water[conn] = w
	}
	for f.processed[callKey{conn, w.processedUpTo + 1}] {
		w.processedUpTo++
	}
	if w.processedUpTo >= w.processedSwept+compactionBatch {
		for r := w.processedSwept + 1; r <= w.processedUpTo; r++ {
			delete(f.processed, callKey{conn, r})
		}
		w.processedSwept = w.processedUpTo
	}
}

// noteReplied advances the replied watermark and compacts.
func (f *Infra) noteReplied(conn ids.ConnectionID, req ids.RequestNum) {
	if f.water == nil {
		f.water = make(map[ids.ConnectionID]*lowWater)
	}
	w, ok := f.water[conn]
	if !ok {
		w = &lowWater{}
		f.water[conn] = w
	}
	for f.replied[callKey{conn, w.repliedUpTo + 1}] {
		w.repliedUpTo++
	}
	if w.repliedUpTo >= w.repliedSwept+compactionBatch {
		for r := w.repliedSwept + 1; r <= w.repliedUpTo; r++ {
			delete(f.replied, callKey{conn, r})
		}
		w.repliedSwept = w.repliedUpTo
	}
}

// advanceProcessed jumps the processed watermark to upTo: everything at
// or below it counts as dispatched. Used when a state snapshot is
// applied — the snapshot embodies that history, so per-request filter
// entries for it never existed at this replica.
func (f *Infra) advanceProcessed(conn ids.ConnectionID, upTo ids.RequestNum) {
	if f.water == nil {
		f.water = make(map[ids.ConnectionID]*lowWater)
	}
	w, ok := f.water[conn]
	if !ok {
		w = &lowWater{}
		f.water[conn] = w
	}
	if upTo <= w.processedUpTo {
		return
	}
	for r := w.processedSwept + 1; r <= upTo; r++ {
		delete(f.processed, callKey{conn, r})
	}
	w.processedUpTo = upTo
	w.processedSwept = upTo
}

// advanceReplied jumps the replied watermark to upTo, the reply-side
// mirror of advanceProcessed. Used when a checkpoint is restored — the
// checkpointed watermark embodies the compacted per-reply entries.
func (f *Infra) advanceReplied(conn ids.ConnectionID, upTo ids.RequestNum) {
	if f.water == nil {
		f.water = make(map[ids.ConnectionID]*lowWater)
	}
	w, ok := f.water[conn]
	if !ok {
		w = &lowWater{}
		f.water[conn] = w
	}
	if upTo <= w.repliedUpTo {
		return
	}
	for r := w.repliedSwept + 1; r <= upTo; r++ {
		delete(f.replied, callKey{conn, r})
	}
	w.repliedUpTo = upTo
	w.repliedSwept = upTo
}

// isProcessed reports whether (conn, req) was already dispatched,
// consulting the watermark for compacted history.
func (f *Infra) isProcessed(conn ids.ConnectionID, req ids.RequestNum) bool {
	if w, ok := f.water[conn]; ok && req <= w.processedUpTo && req > 0 {
		return true
	}
	return f.processed[callKey{conn, req}]
}

// isReplied reports whether the reply for (conn, req) was already
// delivered to a local caller.
func (f *Infra) isReplied(conn ids.ConnectionID, req ids.RequestNum) bool {
	if w, ok := f.water[conn]; ok && req <= w.repliedUpTo && req > 0 {
		return true
	}
	return f.replied[callKey{conn, req}]
}

// FilterSize returns the number of live duplicate-filter entries, for
// tests and capacity monitoring.
func (f *Infra) FilterSize() int { return len(f.processed) + len(f.replied) }

// TrimLog discards log entries for conn with request numbers at or
// below upTo. The application owns log retention policy (the log is its
// replay/recovery artifact); the infrastructure never trims on its own.
// Entries with request number zero (infrastructure control traffic) are
// always trimmed.
func (f *Infra) TrimLog(conn ids.ConnectionID, upTo ids.RequestNum) {
	in := f.logs[conn]
	if len(in) == 0 {
		return
	}
	out := in[:0]
	for _, e := range in {
		if e.ReqNum != 0 && e.ReqNum > upTo {
			out = append(out, e)
		}
	}
	f.logs[conn] = out
}
