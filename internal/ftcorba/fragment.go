package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
)

// GIOP fragmentation (paper section 3.1 lists Fragment among the eight
// GIOP message types). FTMP messages are bounded by the datagram budget
// (wire.MaxMessageSize), so a GIOP message larger than fragmentChunk is
// carried as a sequence of GIOP Fragment messages on the same
// (connection, request number): each fragment's body is
// CDR(index, total, chunk). RMP's source ordering and ROMP's total order
// make reassembly trivial — fragments of one message arrive in order and
// uninterleaved per source — and the duplicate-detection key stays the
// request number, exactly as for unfragmented traffic.

// fragmentChunk is the chunk payload size. It leaves comfortable room
// for the FTMP header, Regular body framing and the fragment header
// inside the 64 KiB datagram budget.
const fragmentChunk = 32 * 1024

// fragKey identifies one in-progress reassembly.
type fragKey struct {
	conn ids.ConnectionID
	src  ids.ProcessorID
	req  ids.RequestNum
}

type fragState struct {
	chunks [][]byte
	total  uint32
}

// maybeFragment encodes a GIOP message and splits it if needed. It
// returns the payloads to multicast in order.
func maybeFragment(msg giop.Message) ([][]byte, error) {
	full, err := giop.Encode(msg, false)
	if err != nil {
		return nil, err
	}
	if len(full) <= fragmentChunk {
		return [][]byte{full}, nil
	}
	var chunks [][]byte
	for off := 0; off < len(full); off += fragmentChunk {
		end := off + fragmentChunk
		if end > len(full) {
			end = len(full)
		}
		chunks = append(chunks, full[off:end])
	}
	total := uint32(len(chunks))
	out := make([][]byte, 0, total)
	for i, chunk := range chunks {
		e := giop.NewEncoder(false)
		e.ULong(uint32(i))
		e.ULong(total)
		e.OctetSeq(chunk)
		frag, err := giop.Encode(giop.Message{
			Type:     giop.MsgFragment,
			Fragment: &giop.Fragment{Data: e.Bytes()},
		}, false)
		if err != nil {
			return nil, err
		}
		out = append(out, frag)
	}
	return out, nil
}

// evictFragments drops in-progress reassemblies whose source left the
// view: the remaining fragments of an interrupted large message will
// never arrive, and without eviction each abandoned transfer would leak
// its partially reassembled buffer forever.
func (f *Infra) evictFragments(left ids.Membership) {
	for key := range f.fragments {
		if left.Contains(key.src) {
			delete(f.fragments, key)
			trace.Inc("ftcorba.fragments_evicted")
		}
	}
}

// FragmentStates returns the number of in-progress reassemblies, for
// tests and capacity monitoring.
func (f *Infra) FragmentStates() int { return len(f.fragments) }

// onFragment accumulates one delivered fragment; when the message is
// complete it returns the reassembled GIOP message.
func (f *Infra) onFragment(d core.Delivery, frag *giop.Fragment) (giop.Message, bool) {
	dec := giop.NewDecoder(frag.Data, false)
	index := dec.ULong()
	total := dec.ULong()
	chunk := dec.OctetSeq()
	if dec.Err() != nil || total == 0 || index >= total {
		return giop.Message{}, false
	}
	key := fragKey{conn: d.Conn, src: d.Source, req: d.RequestNum}
	if f.fragments == nil {
		f.fragments = make(map[fragKey]*fragState)
	}
	st, ok := f.fragments[key]
	if !ok {
		st = &fragState{total: total}
		f.fragments[key] = st
	}
	if st.total != total || uint32(len(st.chunks)) != index {
		// Inconsistent or out-of-order fragment: total order makes this
		// impossible for honest traffic; drop the partial state.
		delete(f.fragments, key)
		return giop.Message{}, false
	}
	st.chunks = append(st.chunks, chunk)
	if uint32(len(st.chunks)) < total {
		return giop.Message{}, false
	}
	delete(f.fragments, key)
	var full []byte
	for _, c := range st.chunks {
		full = append(full, c...)
	}
	msg, err := giop.Decode(full)
	if err != nil {
		return giop.Message{}, false
	}
	f.stats.Reassembled++
	return msg, true
}
