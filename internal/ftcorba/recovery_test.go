package ftcorba_test

import (
	"bytes"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// newRecoveryWorld is newWorld with the full automated-recovery pipeline
// armed: the adaptive failure detector, exponential backoff on rejoin
// probes and add proposals, and every host's view changes feeding its
// infrastructure (the survivor side of automated state transfer).
func newRecoveryWorld(t *testing.T, seed int64, serverProcs, clientProcs ids.Membership) *world {
	t.Helper()
	w := newWorldConfigured(t, seed, 0, serverProcs, clientProcs, func(p ids.ProcessorID, nc *core.Config) {
		nc.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
		nc.Conn.RequestRetryMax = 320_000_000 // rejoin probes: 20ms doubling to 320ms
		nc.Conn.RequestRetryJitter = 0.2
		nc.PGMP.AddResendMax = 160_000_000 // add proposals: 20ms doubling to 160ms
		nc.PGMP.AddResendJitter = 0.2
	})
	for _, p := range w.c.Procs() {
		p := p
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	return w
}

// addRejoiner attaches processor p to the running cluster as a
// replacement replica and starts the automated rejoin: fresh node, fresh
// infrastructure, empty servant, probing for readmission.
func (w *world) addRejoiner(t *testing.T, p ids.ProcessorID) {
	t.Helper()
	h := w.c.AddHost(p)
	infra := ftcorba.New(p, 1, h.Node)
	w.infras[p] = infra
	h.OnDeliver = infra.OnDeliver
	h.OnView = infra.OnViewChange
	acct := &account{}
	w.accounts[p] = acct
	infra.Rejoin(int64(w.c.Net.Now()), conn, serverOG, "account", acct, core.DefaultConfig(p).DomainAddr)
}

// runCrashRecoveryScenario exercises the end-to-end pipeline once and
// returns the final replica state, so the caller can also assert the
// whole scenario is deterministic across identically-seeded runs:
//
//	servers {1,2,3} + client {4}; a deposit stream runs throughout;
//	replica 3 crashes mid-stream; processor 5 starts up and calls
//	Rejoin before the survivors have even convicted 3, so its probes
//	ride out the recovery round under backoff; the designated survivor
//	readmits it and transfers state; the stream continues over the
//	transfer; final state must be byte-identical on 1, 2 and 5.
func runCrashRecoveryScenario(t *testing.T, seed int64) []byte {
	t.Helper()
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)

	counterNames := []string{
		"core.rejoin_requests", "core.readmits", "core.groups_learned",
		"core.rejoins_completed", "ftcorba.rejoins_started",
		"ftcorba.auto_transfers", "pgmp.convictions",
	}
	before := make(map[string]uint64, len(counterNames))
	for _, name := range counterNames {
		before[name] = trace.Counter(name)
	}

	w := newRecoveryWorld(t, seed, servers, clients)
	w.connect(t, 4, clients)
	g := w.c.Host(4).Node.ConnectionState(conn).Group

	// A deposit every 2ms, running through the crash, the conviction,
	// the readmission and the state transfer.
	const calls = 60
	done, callErrs := 0, 0
	var issue func(i int)
	issue = func(i int) {
		if i >= calls {
			return
		}
		err := w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(int64(i+1)), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("deposit %d reply: %v", i+1, err)
				return
			}
			done++
		})
		if err != nil {
			callErrs++
		}
		w.c.Net.At(w.c.Net.Now()+2*simnet.Millisecond, func() { issue(i + 1) })
	}
	w.c.Net.At(w.c.Net.Now(), func() { issue(0) })

	// Crash replica 3 mid-stream; 30ms later — with the survivors still
	// convicting 3 — its replacement appears as processor 5 and begins
	// the automated rejoin.
	crashAt := w.c.Net.Now() + 20*simnet.Millisecond
	w.c.Net.At(crashAt, func() { w.c.Crash(3) })
	w.c.Net.At(crashAt+30*simnet.Millisecond, func() { w.addRejoiner(t, 5) })

	want := ids.NewMembership(1, 2, 4, 5)
	ok := w.c.RunUntil(60*simnet.Second, func() bool {
		return w.c.Host(1).Node.Members(g).Equal(want) &&
			w.c.Host(5).Node.Members(g).Equal(want) &&
			w.infras[5].Stats().StateTransfers == 1 &&
			!w.infras[5].Joining(serverOG) &&
			done == calls
	})
	if !ok {
		t.Fatalf("recovery stalled: members=%v transfers=%d joining=%v done=%d/%d callErrs=%d",
			w.c.Host(1).Node.Members(g), w.infras[5].Stats().StateTransfers,
			w.infras[5].Joining(serverOG), done, calls, callErrs)
	}
	if callErrs != 0 {
		t.Errorf("%d deposits failed to submit during recovery", callErrs)
	}
	w.c.RunFor(2 * simnet.Second)

	// The rejoined replica keeps up with post-recovery traffic.
	post := false
	err := w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(1000), func(_ []byte, err error) {
		if err != nil {
			t.Errorf("post-recovery deposit: %v", err)
			return
		}
		post = true
	})
	if err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return post }) {
		t.Fatal("post-recovery deposit never completed")
	}
	w.c.RunFor(simnet.Second)

	// Byte-identical state on the survivors and the rejoined replica:
	// sum(1..60) + 1000 deposited, 61 operations applied.
	snap1, err := w.accounts[1].SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []ids.ProcessorID{2, 5} {
		s, err := w.accounts[p].SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap1, s) {
			t.Errorf("replica %v state diverged: balance=%d applied=%d, want balance=%d applied=%d",
				p, w.accounts[p].balance, w.accounts[p].applied,
				w.accounts[1].balance, w.accounts[1].applied)
		}
	}
	if w.accounts[1].balance != 2830 || w.accounts[1].applied != 61 {
		t.Errorf("replica 1 balance=%d applied=%d, want 2830/61",
			w.accounts[1].balance, w.accounts[1].applied)
	}

	// The rejoin stayed inside its backoff budget rather than spamming
	// ConnectRequests at the recovering group.
	if att := w.c.Host(5).Node.ConnectAttempts(conn); att < 1 || att > 50 {
		t.Errorf("rejoiner made %d connect attempts, want 1..50", att)
	}

	// Every pipeline stage left its footprint in the counters.
	for _, name := range counterNames {
		if trace.Counter(name) <= before[name] {
			t.Errorf("counter %s did not advance (still %d)", name, before[name])
		}
	}
	return snap1
}

func TestCrashRecoveryPipeline(t *testing.T) {
	first := runCrashRecoveryScenario(t, 131)
	if t.Failed() {
		return
	}
	// The simulation is deterministic: the identical seed reproduces the
	// identical final state.
	second := runCrashRecoveryScenario(t, 131)
	if !bytes.Equal(first, second) {
		t.Errorf("same seed produced different final state: %x vs %x", first, second)
	}
}
