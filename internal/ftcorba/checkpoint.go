package ftcorba

import (
	"fmt"
	"sort"

	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// WAL compaction for the infrastructure (bounded recovery).
//
// Without compaction the WAL grows with the whole delivered history and
// recovery replays all of it. CompactWAL bounds both: it serializes the
// infrastructure's durable state — servant snapshots, per-connection
// watermarks and sparse duplicate-filter entries, request-number
// allocators — into a wal.RecCheckpoint chain and lets wal.Compact
// truncate every whole segment behind it. RecoverFromWAL restores the
// newest complete checkpoint and replays only the log suffix, so
// recovery time tracks the traffic since the last compaction, not the
// age of the group.
//
// What a checkpoint deliberately does NOT carry is the message log
// below the cut: a peer reconciling from a watermark the trimmed log no
// longer covers falls back to the streamed full-state transfer
// (sendSnapshot), which the checkpointed servant state can always
// serve. Compaction trades delta coverage for bounded disk and bounded
// recovery, never correctness.
//
// Call CompactWAL from a quiescent point with respect to deliveries —
// the same discipline as every other Infra method (single delivery
// goroutine, or runtime.Runner.WALExec).

const checkpointVersion = 1

// encodeCheckpoint serializes the durable infrastructure state.
func (f *Infra) encodeCheckpoint() ([]byte, error) {
	e := giop.NewEncoder(false)
	e.ULong(checkpointVersion)

	// Servant snapshots, in object-group order.
	type snapEntry struct {
		og   ids.ObjectGroupID
		snap []byte
	}
	var snaps []snapEntry
	for og, sg := range f.servedGroups {
		if sg.joining {
			continue // staging, not authoritative state
		}
		stf, ok := sg.servant.(Stateful)
		if !ok {
			continue
		}
		snap, err := stf.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("ftcorba: checkpoint snapshot of %v: %w", og, err)
		}
		snaps = append(snaps, snapEntry{og, snap})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].og < snaps[j].og })
	e.ULong(uint32(len(snaps)))
	for _, s := range snaps {
		e.ULong(uint32(s.og))
		e.OctetSeq(s.snap)
	}

	// Per-connection progress: request-number allocator and contiguous
	// completion watermarks.
	conns := make(map[ids.ConnectionID]bool)
	for c := range f.nextReq {
		conns[c] = true
	}
	for c := range f.water {
		conns[c] = true
	}
	order := make([]ids.ConnectionID, 0, len(conns))
	for c := range conns {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return connLess(order[i], order[j]) })
	e.ULong(uint32(len(order)))
	for _, c := range order {
		encodeConn(e, c)
		e.ULongLong(uint64(f.nextReq[c]))
		var processed, replied ids.RequestNum
		if w := f.water[c]; w != nil {
			processed, replied = w.processedUpTo, w.repliedUpTo
		}
		e.ULongLong(uint64(processed))
		e.ULongLong(uint64(replied))
	}

	// Sparse duplicate-filter entries above the watermarks (bounded by
	// the filter compaction batch).
	encodeKeys(e, f.processed)
	encodeKeys(e, f.replied)
	return e.Bytes(), nil
}

// restoreCheckpoint is the inverse; it applies the state to the local
// replicas. Call after the local replicas are registered (Serve /
// ServeRecovered), as RecoverFromWAL requires anyway.
func (f *Infra) restoreCheckpoint(state []byte) error {
	dec := giop.NewDecoder(state, false)
	if v := dec.ULong(); dec.Err() != nil || v != checkpointVersion {
		return fmt.Errorf("ftcorba: checkpoint version %d not supported", v)
	}
	nSnaps := dec.ULong()
	for i := uint32(0); i < nSnaps && dec.Err() == nil; i++ {
		og := ids.ObjectGroupID(dec.ULong())
		snap := dec.OctetSeq()
		if dec.Err() != nil {
			break
		}
		sg, ok := f.servedGroups[og]
		if !ok {
			continue
		}
		stf, ok := sg.servant.(Stateful)
		if !ok {
			continue
		}
		if err := stf.RestoreState(snap); err != nil {
			return fmt.Errorf("ftcorba: checkpoint restore of %v: %w", og, err)
		}
	}
	nConns := dec.ULong()
	for i := uint32(0); i < nConns && dec.Err() == nil; i++ {
		c := decodeConn(dec)
		next := ids.RequestNum(dec.ULongLong())
		processed := ids.RequestNum(dec.ULongLong())
		replied := ids.RequestNum(dec.ULongLong())
		if dec.Err() != nil {
			break
		}
		if next > f.nextReq[c] {
			f.nextReq[c] = next
		}
		f.advanceProcessed(c, processed)
		f.advanceReplied(c, replied)
	}
	for _, k := range decodeKeys(dec) {
		f.processed[k] = true
		f.noteProcessed(k.conn, k.req)
	}
	for _, k := range decodeKeys(dec) {
		f.replied[k] = true
		f.noteReplied(k.conn, k.req)
	}
	return dec.Err()
}

func encodeConn(e *giop.Encoder, c ids.ConnectionID) {
	e.ULong(uint32(c.ClientDomain))
	e.ULong(uint32(c.ClientGroup))
	e.ULong(uint32(c.ServerDomain))
	e.ULong(uint32(c.ServerGroup))
}

func decodeConn(dec *giop.Decoder) ids.ConnectionID {
	return ids.ConnectionID{
		ClientDomain: ids.DomainID(dec.ULong()),
		ClientGroup:  ids.ObjectGroupID(dec.ULong()),
		ServerDomain: ids.DomainID(dec.ULong()),
		ServerGroup:  ids.ObjectGroupID(dec.ULong()),
	}
}

func connLess(a, b ids.ConnectionID) bool {
	if a.ClientDomain != b.ClientDomain {
		return a.ClientDomain < b.ClientDomain
	}
	if a.ClientGroup != b.ClientGroup {
		return a.ClientGroup < b.ClientGroup
	}
	if a.ServerDomain != b.ServerDomain {
		return a.ServerDomain < b.ServerDomain
	}
	return a.ServerGroup < b.ServerGroup
}

func encodeKeys(e *giop.Encoder, m map[callKey]bool) {
	keys := make([]callKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].conn != keys[j].conn {
			return connLess(keys[i].conn, keys[j].conn)
		}
		return keys[i].req < keys[j].req
	})
	e.ULong(uint32(len(keys)))
	for _, k := range keys {
		encodeConn(e, k.conn)
		e.ULongLong(uint64(k.req))
	}
}

func decodeKeys(dec *giop.Decoder) []callKey {
	n := dec.ULong()
	var out []callKey
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		c := decodeConn(dec)
		req := ids.RequestNum(dec.ULongLong())
		if dec.Err() != nil {
			break
		}
		out = append(out, callKey{c, req})
	}
	return out
}

// retainRecords returns the records that must survive compaction: the
// last installed membership epoch of each group (the truncated segments
// may hold the only copy).
func (f *Infra) retainRecords() []wal.Record {
	groups := make([]ids.GroupID, 0, len(f.epochs))
	for g := range f.epochs {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	out := make([]wal.Record, 0, len(groups))
	for _, g := range groups {
		ep := f.epochs[g]
		out = append(out, wal.Record{Type: wal.RecEpoch, Epoch: &ep})
	}
	return out
}

// CompactWAL checkpoints the infrastructure state into the attached WAL
// and truncates whole segments strictly behind it. cut is the stability
// cut driving the compaction (the group has acknowledged everything at
// or below it); it is recorded on the checkpoint for observability and
// clock recovery — the restore itself is positional, so the checkpoint
// is correct whatever the cut's relation to individual records. Returns
// nil with no WAL attached. On failure the log stays appendable
// (wal.Compact's degrade contract) and the caller retries later.
func (f *Infra) CompactWAL(cut ids.Timestamp) error {
	if f.wal == nil {
		return nil
	}
	state, err := f.encodeCheckpoint()
	if err != nil {
		return err
	}
	if err := f.wal.Compact(cut, state, f.retainRecords()); err != nil {
		return err
	}
	trace.Inc("ftcorba.wal_compactions")
	return nil
}

// WALCompactor returns a wal.Compactor that checkpoints this
// infrastructure, gated on the stability cut supplied by stable (return
// 0 while no cut is known). Drive MaybeCompact from the delivery
// goroutine (or runtime.Runner.WALExec).
func (f *Infra) WALCompactor(stable func() ids.Timestamp, minSegments int) *wal.Compactor {
	return wal.NewCompactor(wal.CompactorConfig{
		Log:         f.wal,
		MinSegments: minSegments,
		Snapshot: func() (ids.Timestamp, []byte, []wal.Record, error) {
			cut := stable()
			if cut == 0 {
				return 0, nil, nil, nil
			}
			state, err := f.encodeCheckpoint()
			if err != nil {
				return 0, nil, nil, err
			}
			return cut, state, f.retainRecords(), nil
		},
	})
}
