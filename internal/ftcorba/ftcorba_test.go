package ftcorba_test

import (
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/harness"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/simnet"
)

const (
	clientOG = ids.ObjectGroupID(10)
	serverOG = ids.ObjectGroupID(20)
)

var conn = ids.ConnectionID{ClientDomain: 1, ClientGroup: clientOG, ServerDomain: 1, ServerGroup: serverOG}

// account is a deterministic, stateful servant: a bank account.
type account struct {
	balance int64
	applied int
}

func (a *account) Invoke(op string, args []byte) ([]byte, *orb.Exception) {
	switch op {
	case "deposit":
		d := giop.NewDecoder(args, false)
		v := d.LongLong()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
		a.balance += v
		a.applied++
		fallthrough
	case "balance":
		e := giop.NewEncoder(false)
		e.LongLong(a.balance)
		return e.Bytes(), nil
	case "withdraw":
		d := giop.NewDecoder(args, false)
		v := d.LongLong()
		if d.Err() != nil {
			return nil, orb.ExcUnknown
		}
		if v > a.balance {
			return nil, &orb.Exception{RepoID: "IDL:bank/Overdrawn:1.0"}
		}
		a.balance -= v
		a.applied++
		e := giop.NewEncoder(false)
		e.LongLong(a.balance)
		return e.Bytes(), nil
	default:
		return nil, orb.ExcBadOperation
	}
}

func (a *account) SnapshotState() ([]byte, error) {
	e := giop.NewEncoder(false)
	e.LongLong(a.balance)
	e.LongLong(int64(a.applied))
	return e.Bytes(), nil
}

func (a *account) RestoreState(b []byte) error {
	d := giop.NewDecoder(b, false)
	a.balance = d.LongLong()
	a.applied = int(d.LongLong())
	return d.Err()
}

func amount(v int64) []byte {
	e := giop.NewEncoder(false)
	e.LongLong(v)
	return e.Bytes()
}

func readAmount(t *testing.T, b []byte) int64 {
	t.Helper()
	d := giop.NewDecoder(b, false)
	v := d.LongLong()
	if d.Err() != nil {
		t.Fatalf("decode amount: %v", d.Err())
	}
	return v
}

// world bundles a cluster with per-host infrastructure and servants.
type world struct {
	c        *harness.Cluster
	infras   map[ids.ProcessorID]*ftcorba.Infra
	accounts map[ids.ProcessorID]*account
	// participants are the processors that take part in the connection
	// (servers plus clients; spares excluded).
	participants ids.Membership
}

// newWorld builds servers on serverProcs and clients on clientProcs;
// spares are processors in the cluster but not yet in any object group
// (future replicas).
func newWorld(t *testing.T, seed int64, loss float64, serverProcs, clientProcs ids.Membership, spares ...ids.ProcessorID) *world {
	t.Helper()
	return newWorldConfigured(t, seed, loss, serverProcs, clientProcs, nil, spares...)
}

// newWorldConfigured is newWorld with an extra per-node configuration
// hook (the recovery tests arm backoff and the adaptive detector).
func newWorldConfigured(t *testing.T, seed int64, loss float64, serverProcs, clientProcs ids.Membership, extra func(ids.ProcessorID, *core.Config), spares ...ids.ProcessorID) *world {
	t.Helper()
	var all []ids.ProcessorID
	all = append(all, serverProcs...)
	all = append(all, clientProcs...)
	all = append(all, spares...)
	cfg := simnet.NewConfig()
	cfg.LossRate = loss
	c := harness.NewCluster(harness.Options{
		Seed: seed,
		Net:  cfg,
		Configure: func(p ids.ProcessorID, nc *core.Config) {
			nc.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{serverOG: serverProcs}
			if extra != nil {
				extra(p, nc)
			}
		},
	}, all...)
	w := &world{
		c:            c,
		infras:       make(map[ids.ProcessorID]*ftcorba.Infra),
		accounts:     make(map[ids.ProcessorID]*account),
		participants: ids.NewMembership(append(serverProcs.Clone(), clientProcs...)...),
	}
	for _, p := range all {
		h := c.Host(p)
		if w.infras[p] != nil {
			continue
		}
		infra := ftcorba.New(p, 1, h.Node)
		w.infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		if !w.participants.Contains(p) {
			continue // spare: its infra is configured by the test later
		}
		if serverProcs.Contains(p) {
			acct := &account{}
			w.accounts[p] = acct
			infra.Serve(serverOG, "account", acct)
		} else {
			infra.RegisterObjectKey(serverOG, "account")
		}
	}
	return w
}

// connect establishes the logical connection from the client side.
func (w *world) connect(t *testing.T, from ids.ProcessorID, clientProcs ids.Membership) {
	t.Helper()
	addr := core.DefaultConfig(from).DomainAddr
	for _, p := range clientProcs {
		w.infras[p].Connect(int64(w.c.Net.Now()), conn, addr, clientProcs)
	}
	ok := w.c.RunUntil(10*simnet.Second, func() bool {
		for _, p := range w.participants {
			if !w.infras[p].Established(conn) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("connection never established")
	}
}

func TestReplicatedInvocation(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 51, 0, servers, clients)
	w.connect(t, 3, clients)

	var result int64
	var replies int
	err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(100), func(b []byte, err error) {
		if err != nil {
			t.Errorf("call error: %v", err)
			return
		}
		result = readAmount(t, b)
		replies++
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return replies > 0 }) {
		t.Fatal("no reply")
	}
	w.c.RunFor(simnet.Second) // let duplicate replies arrive
	if result != 100 {
		t.Errorf("deposit result = %d", result)
	}
	if replies != 1 {
		t.Errorf("callback fired %d times, want exactly 1", replies)
	}
	// Both replicas applied the deposit exactly once.
	for _, p := range servers {
		if got := w.accounts[p].balance; got != 100 {
			t.Errorf("replica %v balance = %d", p, got)
		}
		if got := w.accounts[p].applied; got != 1 {
			t.Errorf("replica %v applied = %d ops", p, got)
		}
	}
	// Two replicas replied with the same request number; the client saw
	// one and suppressed the other.
	st := w.infras[3].Stats()
	if st.RepliesDelivered != 1 || st.DuplicateReplies != 1 {
		t.Errorf("client stats = %+v", st)
	}
}

func TestReplicaConsistencyUnderStream(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	w := newWorld(t, 53, 0.05, servers, clients)
	w.connect(t, 4, clients)

	done := 0
	const calls = 30
	for i := 1; i <= calls; i++ {
		i := i
		w.c.Net.At(w.c.Net.Now()+simnet.Time(i)*simnet.Millisecond, func() {
			op := "deposit"
			amt := int64(i)
			if i%5 == 0 {
				op = "withdraw"
				amt = 1
			}
			err := w.infras[4].Call(int64(w.c.Net.Now()), conn, op, amount(amt), func([]byte, error) { done++ })
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		})
	}
	if !w.c.RunUntil(30*simnet.Second, func() bool { return done == calls }) {
		t.Fatalf("only %d/%d calls completed", done, calls)
	}
	w.c.RunFor(simnet.Second)
	b1 := w.accounts[1].balance
	for _, p := range servers {
		if w.accounts[p].balance != b1 {
			t.Errorf("replica %v balance %d != %d", p, w.accounts[p].balance, b1)
		}
		if w.accounts[p].applied != w.accounts[1].applied {
			t.Errorf("replica %v applied %d != %d", p, w.accounts[p].applied, w.accounts[1].applied)
		}
	}
}

func TestReplicatedClientsDuplicateRequestSuppression(t *testing.T) {
	// Two client replicas issue the same deterministic call sequence:
	// the server group must process each request once (paper section 4).
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3, 4)
	w := newWorld(t, 57, 0, servers, clients)
	w.connect(t, 3, clients)

	var got3, got4 int
	for _, pc := range []struct {
		p   ids.ProcessorID
		cnt *int
	}{{3, &got3}, {4, &got4}} {
		pc := pc
		err := w.infras[pc.p].Call(int64(w.c.Net.Now()), conn, "deposit", amount(25), func(b []byte, err error) {
			if err == nil {
				*pc.cnt++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return got3 == 1 && got4 == 1 }) {
		t.Fatalf("callbacks: %d, %d", got3, got4)
	}
	w.c.RunFor(simnet.Second)
	// Exactly one deposit applied despite two client replicas sending.
	for _, p := range servers {
		if w.accounts[p].balance != 25 {
			t.Errorf("replica %v balance = %d, want 25", p, w.accounts[p].balance)
		}
	}
	dups := w.infras[1].Stats().DuplicateRequests + w.infras[2].Stats().DuplicateRequests
	if dups == 0 {
		t.Error("no duplicate requests suppressed at the servers")
	}
}

func TestUserExceptionPropagates(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 59, 0, servers, clients)
	w.connect(t, 3, clients)

	var callErr error
	fired := false
	err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "withdraw", amount(999), func(_ []byte, err error) {
		callErr = err
		fired = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return fired }) {
		t.Fatal("no reply")
	}
	if callErr == nil {
		t.Fatal("overdraft succeeded")
	}
	exc, ok := callErr.(*orb.Exception)
	if !ok || exc.System || exc.RepoID != "IDL:bank/Overdrawn:1.0" {
		t.Errorf("error = %v", callErr)
	}
}

func TestMessageLogAndReplyMatching(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 61, 0, servers, clients)
	w.connect(t, 3, clients)

	done := 0
	for i := 0; i < 3; i++ {
		if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(10), func([]byte, error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 3 }) {
		t.Fatal("calls incomplete")
	}
	w.c.RunFor(simnet.Second)
	// Every member logged the connection's traffic; requests match
	// replies by request number (paper section 4: log replay).
	for _, p := range w.c.Procs() {
		log := w.infras[p].Log(conn)
		if len(log) < 6 { // 3 requests + >=3 replies
			t.Errorf("%v log has %d entries", p, len(log))
		}
		matched := w.infras[p].MatchReplies(conn)
		for r := ids.RequestNum(1); r <= 3; r++ {
			if matched[r] == nil {
				t.Errorf("%v: request %d has no matched reply", p, r)
			}
		}
	}
}

func TestStateTransferToNewReplica(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 63, 0, servers, clients, 4)
	w.connect(t, 3, clients)

	// Build up state.
	done := 0
	for i := 0; i < 5; i++ {
		if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(10), func([]byte, error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 5 }) {
		t.Fatal("setup calls incomplete")
	}

	// Processor 4 will host a new replica. It joins the processor group
	// first (paper section 7.1: processor group before object group).
	g := w.c.Host(3).Node.ConnectionState(conn).Group
	joiner := w.c.Host(4)
	acct := &account{}
	w.accounts[4] = acct
	infra := w.infras[4]
	infra.ServeJoining(serverOG, "account", acct)
	joiner.Node.ListenGroup(g)
	now := int64(w.c.Net.Now())
	if err := w.c.Host(1).Node.RequestAddProcessor(now, g, 4); err != nil {
		t.Fatal(err)
	}
	full := ids.NewMembership(1, 2, 3, 4)
	if !w.c.RunUntil(10*simnet.Second, func() bool {
		return joiner.Node.Members(g).Equal(full)
	}) {
		t.Fatal("processor 4 never joined the group")
	}
	// Keep traffic flowing DURING the transfer to exercise the replay
	// window.
	for i := 0; i < 4; i++ {
		i := i
		w.c.Net.At(w.c.Net.Now()+simnet.Time(i*3)*simnet.Millisecond, func() {
			_ = w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(1), func([]byte, error) { done++ })
		})
	}
	// Designated replica 1 initiates the transfer.
	w.c.Net.At(w.c.Net.Now()+5*simnet.Millisecond, func() {
		if err := w.infras[1].AddReplica(int64(w.c.Net.Now()), conn, serverOG); err != nil {
			t.Errorf("AddReplica: %v", err)
		}
	})
	if !w.c.RunUntil(20*simnet.Second, func() bool {
		return w.infras[4].Stats().StateTransfers == 1 && done == 9
	}) {
		t.Fatalf("transfer incomplete: stats=%+v done=%d", w.infras[4].Stats(), done)
	}
	w.c.RunFor(2 * simnet.Second)

	// The new replica converged on the same balance.
	want := w.accounts[1].balance
	if want != 54 {
		t.Errorf("old replica balance = %d, want 54", want)
	}
	if got := acct.balance; got != want {
		t.Errorf("new replica balance = %d, want %d", got, want)
	}
	// And it keeps up with future requests.
	if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(6), func([]byte, error) { done++ }); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 10 }) {
		t.Fatal("post-join call incomplete")
	}
	w.c.RunFor(simnet.Second)
	if acct.balance != want+6 || w.accounts[1].balance != want+6 {
		t.Errorf("post-join balances: new=%d old=%d", acct.balance, w.accounts[1].balance)
	}
}

func TestFailoverAfterCrash(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	w := newWorld(t, 67, 0, servers, clients)
	w.connect(t, 4, clients)

	done := 0
	call := func(v int64) {
		_ = w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(v), func([]byte, error) { done++ })
	}
	call(7)
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 1 }) {
		t.Fatal("pre-crash call incomplete")
	}

	var faults []harness.Fault
	w.infras[4].FaultHook = func(g ids.GroupID, convicted ids.Membership) {
		faults = append(faults, harness.Fault{Group: g, Convicted: convicted})
	}
	// Route the node's fault reports into the infrastructure, as the
	// runtime wiring does.
	w.c.Crash(2)
	g := w.c.Host(4).Node.ConnectionState(conn).Group
	survivors := ids.NewMembership(1, 3, 4)
	if !w.c.RunUntil(20*simnet.Second, func() bool {
		return w.c.Host(4).Node.Members(g).Equal(survivors)
	}) {
		t.Fatal("recovery did not complete")
	}
	// Invocations keep working with the surviving replicas.
	call(5)
	if !w.c.RunUntil(20*simnet.Second, func() bool { return done == 2 }) {
		t.Fatal("post-crash call incomplete")
	}
	w.c.RunFor(simnet.Second)
	if w.accounts[1].balance != 12 || w.accounts[3].balance != 12 {
		t.Errorf("survivor balances: %d, %d", w.accounts[1].balance, w.accounts[3].balance)
	}
}

func TestCallOnUnestablishedConnection(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 71, 0, servers, clients)
	err := w.infras[3].Call(0, conn, "deposit", amount(1), func([]byte, error) {})
	if err != ftcorba.ErrNotEstablished {
		t.Errorf("err = %v", err)
	}
}

func TestAddReplicaErrors(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 73, 0, servers, clients)
	w.connect(t, 3, clients)
	if err := w.infras[1].AddReplica(0, conn, ids.ObjectGroupID(99)); err != ftcorba.ErrNotServed {
		t.Errorf("unknown group err = %v", err)
	}
	// A non-stateful servant cannot transfer state.
	w.infras[1].Serve(ids.ObjectGroupID(30), "plain", orb.ServantFunc(
		func(string, []byte) ([]byte, *orb.Exception) { return nil, nil }))
	if err := w.infras[1].AddReplica(0, conn, ids.ObjectGroupID(30)); err != ftcorba.ErrNotStateful {
		t.Errorf("non-stateful err = %v", err)
	}
}

func TestOnewayCall(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 79, 0, servers, clients)
	w.connect(t, 3, clients)
	if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(11), nil); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool {
		return w.accounts[1].balance == 11 && w.accounts[2].balance == 11
	}) {
		t.Fatal("oneway deposit not applied")
	}
	// No replies were generated for the oneway call.
	w.c.RunFor(simnet.Second)
	if w.infras[1].Stats().RepliesSent != 0 {
		t.Errorf("oneway produced replies: %+v", w.infras[1].Stats())
	}
}

func TestLargePayloadFragmentation(t *testing.T) {
	// A payload far beyond the FTMP datagram budget travels as GIOP
	// Fragment messages and is reassembled transparently (paper section
	// 3.1 lists Fragment among the GIOP types FTMP carries).
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 83, 0, servers, clients)
	w.connect(t, 3, clients)

	// An echo-style servant for bulk data.
	bulk := make([]byte, 200*1024)
	for i := range bulk {
		bulk[i] = byte(i * 31)
	}
	for _, p := range servers {
		w.infras[p].Serve(serverOG, "account", orb.ServantFunc(
			func(op string, args []byte) ([]byte, *orb.Exception) {
				if op != "echo" {
					return nil, orb.ExcBadOperation
				}
				return args, nil
			}))
	}

	var got []byte
	fired := false
	err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "echo", bulk, func(b []byte, err error) {
		if err != nil {
			t.Errorf("call error: %v", err)
		}
		got = b
		fired = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(30*simnet.Second, func() bool { return fired }) {
		t.Fatal("large call never completed")
	}
	if len(got) != len(bulk) {
		t.Fatalf("echoed %d bytes, want %d", len(got), len(bulk))
	}
	for i := range bulk {
		if got[i] != bulk[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
	if w.infras[3].Stats().Fragmented == 0 {
		t.Error("request was not fragmented")
	}
	if w.infras[3].Stats().Reassembled == 0 {
		t.Error("reply was not reassembled")
	}
	// The logs hold the reassembled messages, not fragments: every
	// entry decodes as a complete GIOP Request or Reply.
	for _, entry := range w.infras[3].Log(conn) {
		m, err := giop.Decode(entry.Payload)
		if err != nil {
			t.Fatalf("log entry does not decode: %v", err)
		}
		if m.Type == giop.MsgFragment {
			t.Fatal("log recorded a raw fragment")
		}
	}
	if matched := w.infras[3].MatchReplies(conn); matched[1] == nil {
		t.Error("fragmented request/reply not matched in the log")
	}
}

func TestLargePayloadFragmentationUnderLoss(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 89, 0.08, servers, clients)
	w.connect(t, 3, clients)
	bulk := make([]byte, 100*1024)
	for i := range bulk {
		bulk[i] = byte(i)
	}
	fired := false
	err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(1), func([]byte, error) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	// Mix: a fragmented oneway alongside the small call.
	if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "balance", bulk, nil); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(60*simnet.Second, func() bool { return fired }) {
		t.Fatal("calls stalled under loss with fragments in flight")
	}
}

func TestLogReplayToLateClientReplica(t *testing.T) {
	// A client replica that joins the connection's processor group after
	// traffic has flowed recovers the earlier replies from the servers'
	// logs (paper section 4: log replay keyed by connection id and
	// request number).
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 97, 0, servers, clients, 4)
	w.connect(t, 3, clients)

	done := 0
	for i := 1; i <= 3; i++ {
		if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(int64(i*10)), func([]byte, error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 3 }) {
		t.Fatal("setup calls incomplete")
	}

	// Processor 4 joins the processor group as a second client replica.
	g := w.c.Host(3).Node.ConnectionState(conn).Group
	w.infras[4].RegisterObjectKey(serverOG, "account")
	w.c.Host(4).Node.ListenGroup(g)
	if err := w.c.Host(1).Node.RequestAddProcessor(int64(w.c.Net.Now()), g, 4); err != nil {
		t.Fatal(err)
	}
	full := ids.NewMembership(1, 2, 3, 4)
	if !w.c.RunUntil(10*simnet.Second, func() bool {
		return w.c.Host(4).Node.Members(g).Equal(full)
	}) {
		t.Fatal("late replica never joined")
	}

	// The infrastructure tells the new replica which connection the
	// group carries (the Connect predates its admission cut).
	if err := w.c.Host(4).Node.AdoptConnection(conn, g); err != nil {
		t.Fatal(err)
	}

	// It awaits the three historical replies and asks for a replay.
	recovered := make(map[ids.RequestNum]int64)
	for r := ids.RequestNum(1); r <= 3; r++ {
		r := r
		if !w.infras[4].AwaitReply(conn, r, func(b []byte, err error) {
			if err != nil {
				t.Errorf("replayed reply %d: %v", r, err)
				return
			}
			d := giop.NewDecoder(b, false)
			recovered[r] = d.LongLong()
		}) {
			t.Fatalf("AwaitReply(%d) reported already-replied at a fresh replica", r)
		}
	}
	if err := w.infras[4].RequestReplay(int64(w.c.Net.Now()), conn, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(20*simnet.Second, func() bool { return len(recovered) == 3 }) {
		t.Fatalf("replay incomplete: %v", recovered)
	}
	// Replies carry the balances after each deposit: 10, 30, 60.
	want := map[ids.RequestNum]int64{1: 10, 2: 30, 3: 60}
	for r, v := range want {
		if recovered[r] != v {
			t.Errorf("replayed reply %d = %d, want %d", r, recovered[r], v)
		}
	}
	// The replica's log now pairs every request with a reply.
	matched := w.infras[4].MatchReplies(conn)
	for r := ids.RequestNum(1); r <= 3; r++ {
		if matched[r] == nil {
			t.Errorf("log still missing reply for request %d", r)
		}
	}
	// No double-invocation anywhere: servers dispatched 3 requests once
	// each despite the replay traffic.
	w.c.RunFor(simnet.Second)
	for _, p := range servers {
		if w.accounts[p].applied != 3 {
			t.Errorf("replica %v applied %d ops after replay, want 3", p, w.accounts[p].applied)
		}
	}
}

func TestAwaitReplyAfterDelivery(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 101, 0, servers, clients)
	w.connect(t, 3, clients)
	done := false
	if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(5), func([]byte, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done }) {
		t.Fatal("call incomplete")
	}
	// The reply already arrived here: AwaitReply must refuse, pointing
	// the caller at the log.
	if w.infras[3].AwaitReply(conn, 1, func([]byte, error) {}) {
		t.Error("AwaitReply accepted for an already-delivered reply")
	}
}

func TestFilterCompactionBoundsMemory(t *testing.T) {
	// 600 sequential calls: the duplicate filters must compact behind
	// the contiguous watermark instead of retaining one entry per call.
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 103, 0, servers, clients)
	w.connect(t, 3, clients)
	const calls = 600
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= calls {
			return
		}
		err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(1), func([]byte, error) {
			done++
			w.c.Net.At(w.c.Net.Now(), func() { issue(i + 1) })
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	w.c.Net.At(w.c.Net.Now(), func() { issue(0) })
	if !w.c.RunUntil(simnet.Time(calls)*simnet.Second, func() bool { return done == calls }) {
		t.Fatalf("only %d/%d calls", done, calls)
	}
	w.c.RunFor(simnet.Second)
	for _, p := range []ids.ProcessorID{1, 2, 3} {
		if n := w.infras[p].FilterSize(); n > 1200 {
			t.Errorf("%v filter holds %d entries after %d calls (no compaction?)", p, n, calls)
		}
	}
	// Duplicates arriving below the watermark are still suppressed:
	// servers processed exactly `calls` deposits.
	if w.accounts[1].applied != calls || w.accounts[2].applied != calls {
		t.Errorf("applied %d/%d, want %d", w.accounts[1].applied, w.accounts[2].applied, calls)
	}
	// The application can trim the log it no longer needs.
	before := len(w.infras[3].Log(conn))
	w.infras[3].TrimLog(conn, 500)
	after := len(w.infras[3].Log(conn))
	if after >= before || after == 0 {
		t.Errorf("TrimLog: %d -> %d", before, after)
	}
	for _, e := range w.infras[3].Log(conn) {
		if e.ReqNum <= 500 {
			t.Fatalf("trimmed range still present: %d", e.ReqNum)
		}
	}
}
