package ftcorba

import (
	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
)

// Log replay (paper section 4: the connection identifier and request
// number "are also used to match a request with its corresponding reply
// which is necessary, for example, when replaying messages from a log").
//
// A client replica that joined a connection's processor group after
// traffic had already flowed (or that lost its volatile state) holds no
// replies for earlier requests. It multicasts a _ft_replay control
// request naming a request-number range; server replicas re-multicast
// their logged replies for that range. Replies travel as ordinary
// ordered messages with their original request numbers, so the usual
// (connection id, request number) machinery matches and deduplicates
// them, and AwaitReply callbacks registered by the recovering replica
// fire exactly once.

const opReplay = "_ft_replay"

// RequestReplay asks the server object group to re-multicast its logged
// replies for request numbers in [from, to] on conn.
func (f *Infra) RequestReplay(now int64, conn ids.ConnectionID, from, to ids.RequestNum) error {
	e := giop.NewEncoder(false)
	e.ULongLong(uint64(from))
	e.ULongLong(uint64(to))
	return f.sendControl(now, conn, conn.ServerGroup, opReplay, e.Bytes())
}

// AwaitReply registers a callback for a reply this replica did not
// request itself (it is recovering the reply from the log via
// RequestReplay, or shadowing a sibling replica's outstanding call).
// The callback fires exactly once when the reply is delivered; if the
// reply was already delivered here, AwaitReply reports false and the
// caller should consult the log instead.
func (f *Infra) AwaitReply(conn ids.ConnectionID, req ids.RequestNum, cb func([]byte, error)) bool {
	key := callKey{conn, req}
	if f.isReplied(conn, req) {
		return false
	}
	f.pending[key] = &pendingCall{cb: cb}
	return true
}

// onReplay handles an ordered _ft_replay control request at a server
// replica: re-multicast the logged replies in range. Every serving
// replica answers (the recovering member cannot know which are alive);
// receivers collapse the duplicates exactly as they do for the original
// k-replica replies.
func (f *Infra) onReplay(now int64, d core.Delivery, req *giop.Request) {
	if _, serves := f.servedGroups[d.Conn.ServerGroup]; !serves {
		return
	}
	if d.Source == f.self {
		return // our own replay request (we are not a server for it)
	}
	dec := giop.NewDecoder(req.Body, false)
	from := ids.RequestNum(dec.ULongLong())
	to := ids.RequestNum(dec.ULongLong())
	if dec.Err() != nil || to < from || to-from > 4096 {
		return
	}
	st := f.node.ConnectionState(d.Conn)
	if st == nil {
		return
	}
	matched := f.MatchReplies(d.Conn)
	for r := from; r <= to; r++ {
		entry := matched[r]
		if entry == nil {
			continue
		}
		f.stats.RepliesSent++
		// The logged payload is the original encoded reply (or its
		// fragments' reassembled source); re-fragment if needed.
		if len(entry.Payload) <= fragmentChunk {
			_ = f.node.Multicast(now, st.Group, d.Conn, r, entry.Payload)
			continue
		}
		msg, err := giop.Decode(entry.Payload)
		if err != nil {
			continue
		}
		payloads, err := maybeFragment(msg)
		if err != nil {
			continue
		}
		for _, p := range payloads {
			_ = f.node.Multicast(now, st.Group, d.Conn, r, p)
		}
	}
}
