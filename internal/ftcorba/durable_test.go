package ftcorba_test

import (
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wal"
)

// openWAL opens a write-ahead log on fs at fsync=always, failing the
// test on any error.
func openWAL(t *testing.T, fs *wal.MemFS) (*wal.Log, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(wal.Config{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// attachFreshWAL gives every participant of w a WAL on its own MemFS
// and wires view changes into the infrastructure (epoch logging).
func attachFreshWAL(t *testing.T, w *world) map[ids.ProcessorID]*wal.MemFS {
	t.Helper()
	fss := make(map[ids.ProcessorID]*wal.MemFS)
	for _, p := range w.participants {
		fss[p] = wal.NewMemFS()
		l, _ := openWAL(t, fss[p])
		w.infras[p].AttachWAL(l, func(err error) { t.Errorf("proc %v wal: %v", p, err) })
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	return fss
}

// runDeposits issues n sequential deposits of 1..n from the client and
// waits for every reply.
func runDeposits(t *testing.T, w *world, client ids.ProcessorID, n int) {
	t.Helper()
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i > n {
			return
		}
		err := w.infras[client].Call(int64(w.c.Net.Now()), conn, "deposit", amount(int64(i)), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("deposit %d: %v", i, err)
				return
			}
			done++
		})
		if err != nil {
			t.Errorf("deposit %d submit: %v", i, err)
		}
		w.c.Net.At(w.c.Net.Now()+2*simnet.Millisecond, func() { issue(i + 1) })
	}
	w.c.Net.At(w.c.Net.Now(), func() { issue(1) })
	if !w.c.RunUntil(w.c.Net.Now()+30*simnet.Second, func() bool { return done == n }) {
		t.Fatalf("only %d/%d deposits completed", done, n)
	}
	w.c.RunFor(simnet.Second)
}

// keepUpTo filters a recovered record set to operations and marks at or
// below req (epochs always kept) — the durable state of a replica whose
// last few records were lost (e.g. written under fsync=interval).
func keepUpTo(records []wal.Record, req ids.RequestNum) []wal.Record {
	var out []wal.Record
	for _, r := range records {
		switch r.Type {
		case wal.RecOp:
			if r.Op.ReqNum <= req {
				out = append(out, r)
			}
		case wal.RecMark:
			if r.Mark.ReqNum <= req {
				out = append(out, r)
			}
		default:
			out = append(out, r)
		}
	}
	return out
}

// TestWholeGroupCrashRecovery is the acceptance scenario: three server
// replicas and a client apply K operations under fsync=always, every
// process dies, all restart from their WALs, and the group converges to
// identical state containing every acknowledged operation — with one
// replica recovering a shorter logged prefix, so it must fetch the
// missing suffix as a delta. Duplicate suppression must still reject a
// replayed client request afterwards.
func TestWholeGroupCrashRecovery(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	const k = 10
	wantBalance := int64(k * (k + 1) / 2)

	// Phase A: a healthy run with WALs attached.
	w1 := newWorld(t, 211, 0, servers, clients)
	fss := attachFreshWAL(t, w1)
	w1.connect(t, 4, clients)
	runDeposits(t, w1, 4, k)
	for _, p := range servers {
		if w1.accounts[p].balance != wantBalance {
			t.Fatalf("pre-crash replica %v balance = %d", p, w1.accounts[p].balance)
		}
	}

	// Power loss: every process dies at once. fsync=always means the
	// synced prefix holds every acknowledged operation.
	for _, fs := range fss {
		fs.Crash()
	}

	// Phase B: a fresh cluster (same processors) restarts from the WALs.
	w2 := newWorld(t, 223, 0, servers, clients)
	recovered := make(map[ids.ProcessorID]ftcorba.Recovered)
	for _, p := range w2.participants {
		l, rec := openWAL(t, fss[p])
		if rec.TornTail != nil {
			t.Fatalf("proc %v: unexpected torn tail: %v", p, rec.TornTail)
		}
		records := rec.Records
		if p == 3 {
			// Replica 3 lost its last two operations (a shorter durable
			// prefix): it must reconcile via delta, not just local replay.
			records = keepUpTo(records, k-2)
		}
		infra := w2.infras[p]
		if servers.Contains(p) {
			infra.ServeRecovered(serverOG, "account", w2.accounts[p])
		}
		infra.AttachWAL(l, func(err error) { t.Errorf("proc %v wal: %v", p, err) })
		rcv := infra.RecoverFromWAL(records)
		w2.c.Host(p).Node.RecoverClock(rcv.MaxTS)
		w2.c.Host(p).OnView = infra.OnViewChange
		recovered[p] = rcv
	}
	// Local replay alone already rebuilt each server's servant to its
	// own logged prefix.
	if got := w2.accounts[1].balance; got != wantBalance {
		t.Fatalf("replica 1 local replay balance = %d, want %d", got, wantBalance)
	}
	if got := w2.accounts[3].balance; got >= wantBalance {
		t.Fatalf("replica 3 should be behind after losing its tail, balance = %d", got)
	}
	if recovered[1].Replayed != k {
		t.Fatalf("replica 1 replayed %d ops, want %d", recovered[1].Replayed, k)
	}

	// Reconnect and reconcile: every replica announces its watermark.
	w2.connect(t, 4, clients)
	now := int64(w2.c.Net.Now())
	for _, p := range servers {
		if err := w2.infras[p].AnnounceRecovery(now, conn); err != nil {
			t.Fatalf("announce %v: %v", p, err)
		}
	}
	ok := w2.c.RunUntil(w2.c.Net.Now()+30*simnet.Second, func() bool {
		for _, p := range servers {
			if w2.infras[p].Joining(serverOG) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("reconciliation stalled: joining = %v %v %v",
			w2.infras[1].Joining(serverOG), w2.infras[2].Joining(serverOG), w2.infras[3].Joining(serverOG))
	}
	w2.c.RunFor(simnet.Second)

	// Convergence to the longest valid logged prefix, snapshot-free.
	for _, p := range servers {
		if got := w2.accounts[p].balance; got != wantBalance {
			t.Errorf("replica %v balance = %d, want %d", p, got, wantBalance)
		}
		if got := w2.accounts[p].applied; got != k {
			t.Errorf("replica %v applied = %d, want %d", p, got, k)
		}
		if st := w2.infras[p].Stats(); st.StateTransfers != 0 {
			t.Errorf("replica %v used %d snapshots; recovery must be log-based", p, st.StateTransfers)
		}
	}
	if st := w2.infras[3].Stats(); st.DeltaTransfers != 1 {
		t.Errorf("replica 3 delta transfers = %d, want 1", st.DeltaTransfers)
	}

	// The group is live: a new invocation lands on all replicas, with
	// the request number sequence resuming above the recovered history.
	post := false
	err := w2.infras[4].Call(int64(w2.c.Net.Now()), conn, "deposit", amount(1000), func(_ []byte, err error) {
		if err != nil {
			t.Errorf("post-recovery deposit: %v", err)
			return
		}
		post = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w2.c.RunUntil(w2.c.Net.Now()+10*simnet.Second, func() bool { return post }) {
		t.Fatal("post-recovery deposit never completed")
	}
	w2.c.RunFor(simnet.Second)
	for _, p := range servers {
		if got := w2.accounts[p].balance; got != wantBalance+1000 {
			t.Errorf("replica %v post-recovery balance = %d", p, got)
		}
	}

	// Duplicate suppression survives the restart: replay an old client
	// request verbatim (its logged payload under its original request
	// number) and verify no replica re-applies it.
	var replayEntry *ftcorba.LogEntry
	for _, e := range w2.infras[4].Log(conn) {
		if e.Request && e.ReqNum == 2 {
			e := e
			replayEntry = &e
			break
		}
	}
	if replayEntry == nil {
		t.Fatal("request 2 not in the recovered client log")
	}
	dupBefore := w2.infras[1].Stats().DuplicateRequests
	g := w2.c.Host(4).Node.ConnectionState(conn).Group
	if err := w2.c.Host(4).Node.Multicast(int64(w2.c.Net.Now()), g, conn, replayEntry.ReqNum, replayEntry.Payload); err != nil {
		t.Fatal(err)
	}
	w2.c.RunFor(2 * simnet.Second)
	for _, p := range servers {
		if got := w2.accounts[p].balance; got != wantBalance+1000 {
			t.Errorf("replica %v applied a replayed request: balance = %d", p, got)
		}
	}
	if got := w2.infras[1].Stats().DuplicateRequests; got != dupBefore+1 {
		t.Errorf("replica 1 duplicate requests = %d, want %d", got, dupBefore+1)
	}
}

// TestSnapshotJoinSurvivesWholeGroupCrash is the regression for the
// snapshot-durability hole: a replica that joins via _ft_set_state gets
// its watermark jumped to the snapshot's history. That watermark is
// persisted — so the snapshot itself must be too, or a whole-group
// crash recovers "processed up to N" with nothing below N and silently
// loses the snapshot prefix.
func TestSnapshotJoinSurvivesWholeGroupCrash(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 131, 0, servers, clients, 4)
	fss := attachFreshWAL(t, w)
	// The future replica keeps its own WAL from birth.
	fss[4] = wal.NewMemFS()
	l4, _ := openWAL(t, fss[4])
	w.infras[4].AttachWAL(l4, func(err error) { t.Errorf("joiner wal: %v", err) })
	w.c.Host(4).OnView = w.infras[4].OnViewChange
	w.connect(t, 3, clients)

	const before = 5
	runDeposits(t, w, 3, before)
	preJoin := w.accounts[1].balance

	// Processor 4 joins via the normal snapshot path: processor group
	// admission triggers the survivors' automatic state transfer.
	g := w.c.Host(3).Node.ConnectionState(conn).Group
	acct := &account{}
	w.accounts[4] = acct
	w.infras[4].ServeJoining(serverOG, "account", acct)
	w.c.Host(4).Node.ListenGroup(g)
	if err := w.c.Host(1).Node.RequestAddProcessor(int64(w.c.Net.Now()), g, 4); err != nil {
		t.Fatal(err)
	}
	ok := w.c.RunUntil(w.c.Net.Now()+20*simnet.Second, func() bool {
		return w.infras[4].Stats().StateTransfers == 1 && !w.infras[4].Joining(serverOG)
	})
	if !ok {
		t.Fatalf("state transfer never completed: %+v", w.infras[4].Stats())
	}
	if acct.balance != preJoin {
		t.Fatalf("joined replica balance = %d, want %d", acct.balance, preJoin)
	}

	// Traffic continues after the join, then every process dies.
	runDeposits(t, w, 3, 2)
	want := w.accounts[1].balance
	if acct.balance != want {
		t.Fatalf("post-join balance = %d, want %d", acct.balance, want)
	}
	fss[4].Crash()

	// The joiner's WAL must hold the snapshot itself, not just the
	// watermark jump it justified.
	l, rec := openWAL(t, fss[4])
	defer l.Close()
	if rec.TornTail != nil {
		t.Fatalf("unexpected torn tail: %v", rec.TornTail)
	}
	snaps := 0
	for _, r := range rec.Records {
		if r.Type == wal.RecSnapshot {
			snaps++
			if r.Snap.UpTo != before {
				t.Errorf("snapshot record upTo = %d, want %d", r.Snap.UpTo, before)
			}
		}
	}
	if snaps != 1 {
		t.Fatalf("joiner WAL holds %d snapshot records, want 1", snaps)
	}

	// Restart from the WAL alone: the recovered servant must contain the
	// snapshot prefix plus the replayed suffix — the full history.
	infra2 := ftcorba.New(4, 1, w.c.Host(4).Node)
	acct2 := &account{}
	infra2.ServeRecovered(serverOG, "account", acct2)
	rcv := infra2.RecoverFromWAL(rec.Records)
	if rcv.Snapshots != 1 {
		t.Errorf("recovery restored %d snapshots, want 1", rcv.Snapshots)
	}
	if rcv.Replayed != 2 {
		t.Errorf("recovery replayed %d ops, want 2 (the post-join suffix)", rcv.Replayed)
	}
	if acct2.balance != want || acct2.applied != w.accounts[1].applied {
		t.Errorf("recovered state balance=%d applied=%d, want %d/%d",
			acct2.balance, acct2.applied, want, w.accounts[1].applied)
	}
}

// TestReconciliationSurvivesPeerLoss: cold-start reconciliation must
// not block forever on a replica that never returns. Replica 3 dies
// again right after the group re-forms, before announcing; the failure
// detector's conviction is the deadline that lets the survivors
// reconcile among themselves and go live.
func TestReconciliationSurvivesPeerLoss(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	const k = 6
	wantBalance := int64(k * (k + 1) / 2)

	w1 := newRecoveryWorld(t, 241, servers, clients)
	fss := attachFreshWAL(t, w1)
	w1.connect(t, 4, clients)
	runDeposits(t, w1, 4, k)
	for _, fs := range fss {
		fs.Crash()
	}

	w2 := newRecoveryWorld(t, 251, servers, clients)
	for _, p := range w2.participants {
		l, rec := openWAL(t, fss[p])
		if rec.TornTail != nil {
			t.Fatalf("proc %v: unexpected torn tail: %v", p, rec.TornTail)
		}
		infra := w2.infras[p]
		if servers.Contains(p) {
			infra.ServeRecovered(serverOG, "account", w2.accounts[p])
		}
		infra.AttachWAL(l, func(error) {})
		rcv := infra.RecoverFromWAL(rec.Records)
		w2.c.Host(p).Node.RecoverClock(rcv.MaxTS)
	}
	w2.connect(t, 4, clients)

	// Replica 3's second life is short: it dies before announcing its
	// watermark (a permanently lost disk looks the same to the others —
	// an expected peer that never speaks).
	w2.c.Crash(3)
	now := int64(w2.c.Net.Now())
	for _, p := range []ids.ProcessorID{1, 2} {
		if err := w2.infras[p].AnnounceRecovery(now, conn); err != nil {
			t.Fatalf("announce %v: %v", p, err)
		}
	}
	ok := w2.c.RunUntil(w2.c.Net.Now()+60*simnet.Second, func() bool {
		return !w2.infras[1].Joining(serverOG) && !w2.infras[2].Joining(serverOG)
	})
	if !ok {
		t.Fatal("survivors never went live after losing a reconciliation peer")
	}
	w2.c.RunFor(simnet.Second)
	for _, p := range []ids.ProcessorID{1, 2} {
		if got := w2.accounts[p].balance; got != wantBalance {
			t.Errorf("replica %v balance = %d, want %d", p, got, wantBalance)
		}
	}

	// The degraded group is live for new work.
	post := false
	err := w2.infras[4].Call(int64(w2.c.Net.Now()), conn, "deposit", amount(500), func(_ []byte, err error) {
		if err == nil {
			post = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w2.c.RunUntil(w2.c.Net.Now()+10*simnet.Second, func() bool { return post }) {
		t.Fatal("post-degradation deposit never completed")
	}
	w2.c.RunFor(simnet.Second)
	for _, p := range []ids.ProcessorID{1, 2} {
		if got := w2.accounts[p].balance; got != wantBalance+500 {
			t.Errorf("replica %v post-degradation balance = %d", p, got)
		}
	}
}

// TestRejoinWithWALDelta: a single replica crashes mid-stream and its
// replacement restarts from the crashed replica's WAL. It replays the
// log locally, rejoins under a fresh processor id, and fetches only the
// operations it missed (the delta) — never a full snapshot.
func TestRejoinWithWALDelta(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	w := newRecoveryWorld(t, 307, servers, clients)
	fss := attachFreshWAL(t, w)
	w.connect(t, 4, clients)

	const before = 8 // acknowledged before the crash
	runDeposits(t, w, 4, before)

	// Replica 3 dies; its WAL survives on disk.
	w.c.Crash(3)
	fss[3].Crash()

	// Traffic continues while 3 is down: the survivors convict it and
	// move on.
	post := 0
	for i := 1; i <= 6; i++ {
		i := i
		w.c.Net.At(w.c.Net.Now()+simnet.Time(i)*5*simnet.Millisecond, func() {
			err := w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(100), func(_ []byte, err error) {
				if err == nil {
					post++
				}
			})
			if err != nil {
				t.Errorf("mid-outage deposit %d: %v", i, err)
			}
		})
	}
	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool { return post == 6 }) {
		t.Fatalf("only %d/6 mid-outage deposits completed", post)
	}

	// The replacement restarts from 3's WAL under fresh id 5.
	h := w.c.AddHost(5)
	infra := ftcorba.New(5, 1, h.Node)
	w.infras[5] = infra
	h.OnDeliver = infra.OnDeliver
	h.OnView = infra.OnViewChange
	acct := &account{}
	w.accounts[5] = acct
	l, rec := openWAL(t, fss[3])
	infra.ServeRecovered(serverOG, "account", acct)
	infra.AttachWAL(l, func(err error) { t.Errorf("rejoiner wal: %v", err) })
	rcv := infra.RecoverFromWAL(rec.Records)
	h.Node.RecoverClock(rcv.MaxTS)
	if acct.applied != before {
		t.Fatalf("local replay applied %d ops, want %d", acct.applied, before)
	}
	infra.RejoinWithWAL(int64(w.c.Net.Now()), conn, serverOG, "account", acct, core.DefaultConfig(5).DomainAddr)

	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool { return !infra.Joining(serverOG) }) {
		t.Fatal("WAL rejoin never completed")
	}
	w.c.RunFor(2 * simnet.Second)

	want := w.accounts[1].balance
	if acct.balance != want || acct.applied != w.accounts[1].applied {
		t.Errorf("rejoined replica balance=%d applied=%d, want %d/%d",
			acct.balance, acct.applied, want, w.accounts[1].applied)
	}
	st := infra.Stats()
	if st.StateTransfers != 0 {
		t.Errorf("rejoiner applied %d snapshots; WAL rejoin must transfer only the delta", st.StateTransfers)
	}
	if st.DeltaTransfers != 1 {
		t.Errorf("rejoiner delta transfers = %d, want 1", st.DeltaTransfers)
	}
	// The delta carried exactly the missed operations.
	if st.WALRecoveredOps == 0 {
		t.Error("rejoiner recovered no ops from the WAL")
	}

	// And it keeps up with new traffic.
	done := false
	err := w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(7), func(_ []byte, err error) {
		if err == nil {
			done = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(w.c.Net.Now()+10*simnet.Second, func() bool { return done }) {
		t.Fatal("post-rejoin deposit never completed")
	}
	w.c.RunFor(simnet.Second)
	if acct.balance != want+7 {
		t.Errorf("rejoined replica missed post-rejoin traffic: balance = %d, want %d", acct.balance, want+7)
	}
}
