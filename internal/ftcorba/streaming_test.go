package ftcorba_test

import (
	"bytes"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
	"ftmp/internal/wal"
)

// Streamed state transfer: multi-chunk flow control, sender failover,
// joiner-restart resume, fragment eviction, and WAL checkpointing.

// padAccount is an account whose state includes a large constant pad,
// so a snapshot spans many 16 KiB transfer chunks.
type padAccount struct {
	account
	pad []byte
}

func newPad(n int) []byte {
	pad := make([]byte, n)
	for i := range pad {
		pad[i] = byte(i*7 + i>>8)
	}
	return pad
}

func (p *padAccount) SnapshotState() ([]byte, error) {
	e := giop.NewEncoder(false)
	e.OctetSeq(p.pad)
	e.LongLong(p.balance)
	e.LongLong(int64(p.applied))
	return e.Bytes(), nil
}

func (p *padAccount) RestoreState(b []byte) error {
	d := giop.NewDecoder(b, false)
	p.pad = d.OctetSeq()
	p.balance = d.LongLong()
	p.applied = int(d.LongLong())
	return d.Err()
}

// servePads replaces the server-side account servants with padAccounts
// sharing one deterministic pad, and returns them.
func servePads(w *world, servers ids.Membership, padLen int) map[ids.ProcessorID]*padAccount {
	pads := make(map[ids.ProcessorID]*padAccount)
	for _, p := range servers {
		acct := &padAccount{pad: newPad(padLen)}
		pads[p] = acct
		w.infras[p].Serve(serverOG, "account", acct)
	}
	return pads
}

// joinManually runs the manual join path: joiner p subscribes to the
// processor group and an existing member proposes its addition.
func joinManually(t *testing.T, w *world, p ids.ProcessorID, proposer ids.ProcessorID) ids.GroupID {
	t.Helper()
	g := w.c.Host(proposer).Node.ConnectionState(conn).Group
	w.c.Host(p).Node.ListenGroup(g)
	if err := w.c.Host(proposer).Node.RequestAddProcessor(int64(w.c.Net.Now()), g, p); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(w.c.Net.Now()+20*simnet.Second, func() bool {
		return w.c.Host(p).Node.Members(g).Contains(p)
	}) {
		t.Fatalf("processor %v never joined the group", p)
	}
	return g
}

// TestStreamedMultiChunkTransfer: a snapshot larger than one chunk
// flows as a credit-windowed stream; only the marker's originator
// sends; the joiner assembles the exact state.
func TestStreamedMultiChunkTransfer(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 411, 0, servers, clients, 4)
	pads := servePads(w, servers, 200*1024) // ~13 chunks
	w.connect(t, 3, clients)

	done := 0
	for i := 0; i < 5; i++ {
		if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(10), func([]byte, error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 5 }) {
		t.Fatal("setup calls incomplete")
	}

	acct := &padAccount{}
	w.infras[4].ServeJoining(serverOG, "account", acct)
	joinManually(t, w, 4, 1)
	if err := w.infras[1].AddReplica(int64(w.c.Net.Now()), conn, serverOG); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(w.c.Net.Now()+30*simnet.Second, func() bool {
		return w.infras[4].Stats().StateTransfers == 1 && !w.infras[4].Joining(serverOG)
	}) {
		t.Fatalf("transfer incomplete: joiner stats=%+v sender stats=%+v",
			w.infras[4].Stats(), w.infras[1].Stats())
	}
	w.c.RunFor(simnet.Second)

	if !bytes.Equal(acct.pad, pads[1].pad) || acct.balance != pads[1].balance {
		t.Errorf("joiner state diverged: balance=%d want %d, pad match=%v",
			acct.balance, pads[1].balance, bytes.Equal(acct.pad, pads[1].pad))
	}
	sent := w.infras[1].Stats().StateChunksSent
	applied := w.infras[4].Stats().StateChunksApplied
	if sent < 2 {
		t.Errorf("sender streamed %d chunks; the snapshot must span several", sent)
	}
	if applied != sent {
		t.Errorf("joiner applied %d chunks, sender sent %d; exactly-once delivery broken", applied, sent)
	}
	if other := w.infras[2].Stats().StateChunksSent; other != 0 {
		t.Errorf("non-originator streamed %d chunks; only the marker's originator sends", other)
	}
	if got := len(w.infras[1].TransferProgress()); got != 0 {
		t.Errorf("%d transfers still cached at the sender after the final ack", got)
	}
}

// TestStreamedTransferSenderFailover: the streaming replica dies
// mid-transfer; the next designated survivor resumes from the mirrored
// position without re-sending acknowledged chunks.
func TestStreamedTransferSenderFailover(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	w := newWorldConfigured(t, 421, 0, servers, clients, func(p ids.ProcessorID, nc *core.Config) {
		nc.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
	}, 5)
	pads := servePads(w, servers, 1024*1024) // ~64 chunks
	for _, p := range w.c.Procs() {
		p := p
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	w.connect(t, 4, clients)

	done := 0
	for i := 0; i < 3; i++ {
		if err := w.infras[4].Call(int64(w.c.Net.Now()), conn, "deposit", amount(5), func([]byte, error) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool { return done == 3 }) {
		t.Fatal("setup calls incomplete")
	}

	failoversBefore := trace.Counter("ftcorba.xfer_failovers")
	acct := &padAccount{}
	w.infras[5].ServeJoining(serverOG, "account", acct)
	w.c.Host(5).OnView = w.infras[5].OnViewChange
	// Admission triggers the designated survivor's automatic AddReplica.
	joinManually(t, w, 5, 1)
	// Kill the streaming sender once a good part of the stream is staged
	// and acknowledged.
	if !w.c.RunUntil(w.c.Net.Now()+30*simnet.Second, func() bool {
		return w.infras[5].Stats().StateChunksApplied >= 8
	}) {
		t.Fatalf("stream never got going: %+v", w.infras[5].Stats())
	}
	ackedAtCrash := w.infras[5].Stats().StateChunksApplied
	w.c.Crash(1)

	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool {
		return w.infras[5].Stats().StateTransfers == 1 && !w.infras[5].Joining(serverOG)
	}) {
		t.Fatalf("transfer never completed after sender crash: joiner=%+v successor=%+v",
			w.infras[5].Stats(), w.infras[2].Stats())
	}
	w.c.RunFor(simnet.Second)

	if !bytes.Equal(acct.pad, pads[2].pad) || acct.balance != pads[2].balance {
		t.Errorf("joiner state diverged after failover: balance=%d want %d, pad match=%v",
			acct.balance, pads[2].balance, bytes.Equal(acct.pad, pads[2].pad))
	}
	if trace.Counter("ftcorba.xfer_failovers") <= failoversBefore {
		t.Error("no failover takeover recorded")
	}
	total := w.infras[5].Stats().StateChunksApplied
	successor := w.infras[2].Stats().StateChunksSent
	if successor == 0 {
		t.Error("successor sent nothing; takeover did not happen")
	}
	if successor > total-ackedAtCrash {
		t.Errorf("successor re-sent acknowledged chunks: sent %d, but only %d of %d were outstanding at the crash",
			successor, total-ackedAtCrash, total)
	}
	if bystander := w.infras[3].Stats().StateChunksSent; bystander != 0 {
		t.Errorf("non-designated survivor streamed %d chunks", bystander)
	}
}

// TestJoinerRestartResumesStream: a joiner with a WAL crashes
// mid-transfer; its replacement recovers the staged chunks, re-acks its
// position on readmission, and receives only the remaining chunks —
// then reconciles the tail via delta and converges.
func TestJoinerRestartResumesStream(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorldConfigured(t, 431, 0, servers, clients, func(p ids.ProcessorID, nc *core.Config) {
		nc.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
		nc.Conn.RequestRetryMax = 320_000_000
		nc.PGMP.AddResendMax = 160_000_000
	}, 4)
	pads := servePads(w, servers, 1024*1024) // ~64 chunks
	for _, p := range w.c.Procs() {
		p := p
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	w.connect(t, 3, clients)

	const before = 5
	runDeposits(t, w, 3, before)

	// The joiner keeps a WAL from birth, so its staging area survives.
	resumesBefore := trace.Counter("ftcorba.xfer_resume_requests")
	fs4 := wal.NewMemFS()
	l4, _ := openWAL(t, fs4)
	acct := &padAccount{}
	w.infras[4].ServeJoining(serverOG, "account", acct)
	w.infras[4].AttachWAL(l4, func(err error) { t.Errorf("joiner wal: %v", err) })
	// Admission triggers the designated survivor's automatic AddReplica.
	joinManually(t, w, 4, 1)
	if !w.c.RunUntil(w.c.Net.Now()+30*simnet.Second, func() bool {
		return w.infras[4].Stats().StateChunksApplied >= 8
	}) {
		t.Fatalf("stream never got going: %+v", w.infras[4].Stats())
	}
	staged := w.infras[4].Stats().StateChunksApplied
	w.c.Crash(4)
	fs4.Crash()

	// Traffic continues while the joiner is down: the resumed transfer
	// alone is not enough, the tail must come as a delta.
	mid := 0
	for i := 1; i <= 2; i++ {
		i := i
		w.c.Net.At(w.c.Net.Now()+simnet.Time(i)*5*simnet.Millisecond, func() {
			_ = w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(100), func(_ []byte, err error) {
				if err == nil {
					mid++
				}
			})
		})
	}
	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool { return mid == 2 }) {
		t.Fatalf("only %d/2 mid-outage deposits completed", mid)
	}

	// The replacement restarts from the crashed joiner's WAL.
	h := w.c.AddHost(5)
	infra := ftcorba.New(5, 1, h.Node)
	w.infras[5] = infra
	h.OnDeliver = infra.OnDeliver
	h.OnView = infra.OnViewChange
	acct2 := &padAccount{}
	l, rec := openWAL(t, fs4)
	infra.ServeRecovered(serverOG, "account", acct2)
	infra.AttachWAL(l, func(err error) { t.Errorf("replacement wal: %v", err) })
	rcv := infra.RecoverFromWAL(rec.Records)
	if uint64(rcv.StagedChunks) != staged {
		t.Fatalf("recovered %d staged chunks, want %d", rcv.StagedChunks, staged)
	}
	h.Node.RecoverClock(rcv.MaxTS)
	infra.RejoinWithWAL(int64(w.c.Net.Now()), conn, serverOG, "account", acct2, core.DefaultConfig(5).DomainAddr)

	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool { return !infra.Joining(serverOG) }) {
		t.Fatalf("resumed rejoin never completed: stats=%+v progress=%+v",
			infra.Stats(), infra.TransferProgress())
	}
	w.c.RunFor(2 * simnet.Second)

	if !bytes.Equal(acct2.pad, pads[1].pad) || acct2.balance != pads[1].balance {
		t.Errorf("replacement state diverged: balance=%d want %d, pad match=%v",
			acct2.balance, pads[1].balance, bytes.Equal(acct2.pad, pads[1].pad))
	}
	st := infra.Stats()
	total := staged + st.StateChunksApplied
	if st.StateChunksApplied == 0 || st.StateChunksApplied >= total {
		t.Errorf("replacement received %d chunks with %d already staged; the stream must resume, not restart",
			st.StateChunksApplied, staged)
	}
	if st.StateTransfers != 1 {
		t.Errorf("replacement applied %d transfers, want 1", st.StateTransfers)
	}
	if st.DeltaTransfers != 1 {
		t.Errorf("replacement delta transfers = %d, want 1 (the mid-outage tail)", st.DeltaTransfers)
	}
	if trace.Counter("ftcorba.xfer_resume_requests") <= resumesBefore {
		t.Error("no resume request recorded on readmission")
	}

	// And the resumed replica keeps up with new traffic.
	post := false
	if err := w.infras[3].Call(int64(w.c.Net.Now()), conn, "deposit", amount(7), func(_ []byte, err error) {
		if err == nil {
			post = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(w.c.Net.Now()+10*simnet.Second, func() bool { return post }) {
		t.Fatal("post-resume deposit never completed")
	}
	w.c.RunFor(simnet.Second)
	if acct2.balance != pads[1].balance {
		t.Errorf("post-resume balance=%d want %d", acct2.balance, pads[1].balance)
	}
}

// TestChunkDropsStreamStillConverges: targeted packet loss on the
// chunk stream (simnet.SetDropFilter) delays but never corrupts the
// transfer — the reliable multicast layer repairs the gaps and the
// joiner still applies every chunk exactly once.
func TestChunkDropsStreamStillConverges(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 461, 0, servers, clients, 4)
	pads := servePads(w, servers, 400*1024) // ~25 chunks
	for _, p := range w.c.Procs() {
		p := p
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	w.connect(t, 3, clients)
	runDeposits(t, w, 3, 3)

	// Drop the first few chunk-sized packets on the sender→joiner link.
	// Only that copy is lost — the multicast still reaches the mirrors —
	// so the joiner must recover the gap through retransmission.
	dropped := 0
	w.c.Net.SetDropFilter(func(from, to simnet.NodeID, data []byte) bool {
		if from == 1 && to == 4 && len(data) > 8*1024 && dropped < 5 {
			dropped++
			return true
		}
		return false
	})

	acct := &padAccount{}
	w.infras[4].ServeJoining(serverOG, "account", acct)
	w.c.Host(4).OnView = w.infras[4].OnViewChange
	joinManually(t, w, 4, 1)
	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool {
		return w.infras[4].Stats().StateTransfers == 1 && !w.infras[4].Joining(serverOG)
	}) {
		t.Fatalf("transfer never completed under chunk drops: joiner=%+v sender=%+v",
			w.infras[4].Stats(), w.infras[1].Stats())
	}
	w.c.Net.SetDropFilter(nil)
	w.c.RunFor(simnet.Second)

	if dropped == 0 {
		t.Fatal("the fault was never injected; the test exercised nothing")
	}
	if !bytes.Equal(acct.pad, pads[1].pad) || acct.balance != pads[1].balance {
		t.Errorf("joiner state diverged under drops: balance=%d want %d, pad match=%v",
			acct.balance, pads[1].balance, bytes.Equal(acct.pad, pads[1].pad))
	}
	sent := w.infras[1].Stats().StateChunksSent
	applied := w.infras[4].Stats().StateChunksApplied
	if applied != sent {
		t.Errorf("joiner applied %d chunks, sender sent %d; exactly-once delivery broken under loss", applied, sent)
	}
	if got := len(w.infras[1].TransferProgress()); got != 0 {
		t.Errorf("%d transfers still cached at the sender after the final ack", got)
	}
}

// TestFragmentEvictionOnDeparture: a half-reassembled fragmented
// message is dropped when its source leaves the view, instead of
// leaking forever.
func TestFragmentEvictionOnDeparture(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	w := newWorld(t, 441, 0, servers, clients)
	for _, p := range w.c.Procs() {
		p := p
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	w.connect(t, 3, clients)

	// Multicast only the first fragment of a two-fragment message from
	// the client, then kill it: the reassembly can never complete.
	e := giop.NewEncoder(false)
	e.ULong(0)
	e.ULong(2)
	e.OctetSeq([]byte("first half"))
	frag, err := giop.Encode(giop.Message{
		Type:     giop.MsgFragment,
		Fragment: &giop.Fragment{Data: e.Bytes()},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	g := w.c.Host(3).Node.ConnectionState(conn).Group
	if err := w.c.Host(3).Node.Multicast(int64(w.c.Net.Now()), g, conn, 7, frag); err != nil {
		t.Fatal(err)
	}
	if !w.c.RunUntil(10*simnet.Second, func() bool {
		return w.infras[1].FragmentStates() == 1 && w.infras[2].FragmentStates() == 1
	}) {
		t.Fatal("fragment never delivered")
	}

	evictedBefore := trace.Counter("ftcorba.fragments_evicted")
	w.c.Crash(3)
	if !w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool {
		return w.infras[1].FragmentStates() == 0 && w.infras[2].FragmentStates() == 0
	}) {
		t.Fatalf("reassembly state leaked after departure: %d/%d",
			w.infras[1].FragmentStates(), w.infras[2].FragmentStates())
	}
	if trace.Counter("ftcorba.fragments_evicted") <= evictedBefore {
		t.Error("eviction counter did not advance")
	}
}

// TestCompactWALBoundsRecovery: CompactWAL checkpoints the
// infrastructure and truncates the log; a whole-group crash then
// recovers from the checkpoint plus the suffix — fewer replayed ops,
// same state, duplicate suppression intact.
func TestCompactWALBoundsRecovery(t *testing.T) {
	servers := ids.NewMembership(1, 2)
	clients := ids.NewMembership(3)
	const kBefore, kAfter = 12, 4

	w1 := newWorld(t, 451, 0, servers, clients)
	fss := make(map[ids.ProcessorID]*wal.MemFS)
	for _, p := range w1.participants {
		fss[p] = wal.NewMemFS()
		l, _, err := wal.Open(wal.Config{FS: fss[p], Policy: wal.SyncAlways, SegmentSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		w1.infras[p].AttachWAL(l, func(err error) { t.Errorf("proc %v wal: %v", p, err) })
		w1.c.Host(p).OnView = w1.infras[p].OnViewChange
	}
	w1.connect(t, 3, clients)
	runDeposits(t, w1, 3, kBefore)

	// Compact replica 1's WAL at the group's stability cut.
	g := w1.c.Host(1).Node.ConnectionState(conn).Group
	gst, ok := w1.c.Host(1).Node.Status(g)
	if !ok || gst.Stable == 0 {
		t.Fatal("no stability cut after acknowledged traffic")
	}
	cut := gst.Stable
	segsBefore := w1.infras[1].WAL().Segments()
	if err := w1.infras[1].CompactWAL(cut); err != nil {
		t.Fatalf("CompactWAL: %v", err)
	}
	if segs := w1.infras[1].WAL().Segments(); segs >= segsBefore {
		t.Errorf("compaction did not shrink the log: %d -> %d segments", segsBefore, segs)
	}

	// More traffic lands after the checkpoint, then every process dies.
	runDeposits(t, w1, 3, kAfter)
	want := w1.accounts[1].balance
	for _, fs := range fss {
		fs.Crash()
	}

	// Restart: replica 1 recovers from checkpoint + suffix, replica 2
	// replays its whole log; both must converge on identical state.
	w2 := newWorld(t, 457, 0, servers, clients)
	rcvs := make(map[ids.ProcessorID]ftcorba.Recovered)
	for _, p := range w2.participants {
		l, rec, err := wal.Open(wal.Config{FS: fss[p], Policy: wal.SyncAlways, SegmentSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		if rec.TornTail != nil {
			t.Fatalf("proc %v: unexpected torn tail: %v", p, rec.TornTail)
		}
		infra := w2.infras[p]
		if servers.Contains(p) {
			infra.ServeRecovered(serverOG, "account", w2.accounts[p])
		}
		infra.AttachWAL(l, func(err error) { t.Errorf("proc %v wal: %v", p, err) })
		rcvs[p] = infra.RecoverFromWAL(rec.Records)
		w2.c.Host(p).Node.RecoverClock(rcvs[p].MaxTS)
		w2.c.Host(p).OnView = infra.OnViewChange
	}
	if !rcvs[1].Checkpointed {
		t.Fatal("replica 1 did not restore its checkpoint")
	}
	if rcvs[2].Checkpointed {
		t.Fatal("replica 2 restored a checkpoint it never wrote")
	}
	if rcvs[1].Ops >= rcvs[2].Ops {
		t.Errorf("checkpointed recovery replayed %d ops, uncompacted %d; compaction must bound replay",
			rcvs[1].Ops, rcvs[2].Ops)
	}
	if w2.accounts[1].balance != want || w2.accounts[2].balance != want {
		t.Fatalf("recovered balances %d/%d, want %d",
			w2.accounts[1].balance, w2.accounts[2].balance, want)
	}

	// Reconcile and keep working.
	w2.connect(t, 3, clients)
	now := int64(w2.c.Net.Now())
	for _, p := range servers {
		if err := w2.infras[p].AnnounceRecovery(now, conn); err != nil {
			t.Fatalf("announce %v: %v", p, err)
		}
	}
	if !w2.c.RunUntil(w2.c.Net.Now()+30*simnet.Second, func() bool {
		return !w2.infras[1].Joining(serverOG) && !w2.infras[2].Joining(serverOG)
	}) {
		t.Fatal("post-checkpoint reconciliation stalled")
	}
	w2.c.RunFor(simnet.Second)

	// Duplicate suppression survives checkpointed recovery: replay an old
	// request verbatim; the restored watermark must reject it.
	var replayEntry *ftcorba.LogEntry
	for _, entry := range w2.infras[3].Log(conn) {
		if entry.Request && entry.ReqNum == kBefore+1 {
			entry := entry
			replayEntry = &entry
			break
		}
	}
	if replayEntry == nil {
		t.Fatal("suffix request not in the recovered client log")
	}
	g2 := w2.c.Host(3).Node.ConnectionState(conn).Group
	if err := w2.c.Host(3).Node.Multicast(int64(w2.c.Net.Now()), g2, conn, replayEntry.ReqNum, replayEntry.Payload); err != nil {
		t.Fatal(err)
	}
	w2.c.RunFor(2 * simnet.Second)
	if w2.accounts[1].balance != want || w2.accounts[2].balance != want {
		t.Errorf("replayed request re-applied after checkpointed recovery: %d/%d, want %d",
			w2.accounts[1].balance, w2.accounts[2].balance, want)
	}
}
