package ftcorba_test

import (
	"bytes"
	"errors"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// The split-brain regression: with primary-partition membership enabled,
// a network partition must leave exactly one component committing. The
// minority wedges (zero new operations), and after the partition heals
// it discards its speculative standing, rejoins through the automated
// pipeline, receives a state transfer, and converges byte-identically
// with the primary — with every client request applied exactly once.
func newPartitionWorld(t *testing.T, seed int64, serverProcs, clientProcs ids.Membership) *world {
	t.Helper()
	w := newWorldConfigured(t, seed, 0, serverProcs, clientProcs, func(p ids.ProcessorID, nc *core.Config) {
		nc.PGMP.PrimaryPartition = true
		nc.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
		nc.Conn.RequestRetryMax = 320_000_000
		nc.Conn.RequestRetryJitter = 0.2
		nc.PGMP.AddResendMax = 160_000_000
		nc.PGMP.AddResendJitter = 0.2
	})
	for _, p := range w.c.Procs() {
		w.c.Host(p).OnView = w.infras[p].OnViewChange
	}
	return w
}

// deposit issues n deposits of 1 from the client and runs the cluster
// until every reply arrived.
func (w *world) deposits(t *testing.T, client ids.ProcessorID, n int) {
	t.Helper()
	done := 0
	for i := 0; i < n; i++ {
		err := w.infras[client].Call(int64(w.c.Net.Now()), conn, "deposit", amount(1), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("deposit reply: %v", err)
				return
			}
			done++
		})
		if err != nil {
			t.Fatalf("deposit submit: %v", err)
		}
		if !w.c.RunUntil(w.c.Net.Now()+10*simnet.Second, func() bool { return done == i+1 }) {
			t.Fatalf("deposit %d never completed (done=%d)", i+1, done)
		}
	}
}

func TestPartitionWedgeHealConvergence(t *testing.T) {
	servers := ids.NewMembership(1, 2, 3)
	clients := ids.NewMembership(4)
	counterNames := []string{
		"core.wedges", "core.wedge_heals", "pgmp.wedges",
		"ftcorba.wedge_rejoins", "core.wedged_sends_refused",
	}
	before := make(map[string]uint64, len(counterNames))
	for _, name := range counterNames {
		before[name] = trace.Counter(name)
	}

	w := newPartitionWorld(t, 211, servers, clients)
	w.connect(t, 4, clients)
	g := w.c.Host(4).Node.ConnectionState(conn).Group

	// Phase 1: a healthy group applies a first batch everywhere.
	w.deposits(t, 4, 10)
	w.c.RunFor(simnet.Second)
	if w.accounts[3].applied != 10 {
		t.Fatalf("replica 3 applied %d before the partition, want 10", w.accounts[3].applied)
	}

	// Phase 2: partition replica 3 away from the majority (servers 1,2
	// and the client). The majority installs {1,2,4}; 3 wedges.
	w.c.Net.Partition([]simnet.NodeID{1, 2, 4}, []simnet.NodeID{3})
	majority := ids.NewMembership(1, 2, 4)
	ok := w.c.RunUntil(w.c.Net.Now()+20*simnet.Second, func() bool {
		st, have := w.c.Host(3).Node.Status(g)
		return w.c.Host(1).Node.Members(g).Equal(majority) &&
			w.c.Host(2).Node.Members(g).Equal(majority) &&
			have && st.Wedged
	})
	if !ok {
		st, _ := w.c.Host(3).Node.Status(g)
		t.Fatalf("partition did not resolve: majority=%v minority=%+v",
			w.c.Host(1).Node.Members(g), st)
	}

	// The wedged minority commits NOTHING: direct sends are refused and
	// its applied count stays frozen while the primary keeps going.
	if err := w.c.Host(3).Node.Multicast(int64(w.c.Net.Now()), g, conn, 999, []byte("x")); !errors.Is(err, core.ErrWedged) {
		t.Fatalf("Multicast from wedged minority = %v, want ErrWedged", err)
	}
	minorityApplied := w.accounts[3].applied
	w.deposits(t, 4, 10) // the primary component commits through the partition
	if w.accounts[3].applied != minorityApplied {
		t.Fatalf("minority applied %d operations while wedged", w.accounts[3].applied-minorityApplied)
	}
	if w.accounts[1].applied != 20 {
		t.Fatalf("primary applied %d, want 20", w.accounts[1].applied)
	}

	// Phase 3: heal. Replica 3 hears the primary again, discards its
	// wedged standing, rejoins through the automated pipeline and
	// catches up via state transfer.
	w.c.Net.Heal()
	full := ids.NewMembership(1, 2, 3, 4)
	ok = w.c.RunUntil(w.c.Net.Now()+60*simnet.Second, func() bool {
		return w.c.Host(1).Node.Members(g).Equal(full) &&
			w.c.Host(3).Node.Members(g).Equal(full) &&
			!w.infras[3].Joining(serverOG)
	})
	if !ok {
		t.Fatalf("heal did not converge: majority=%v minority=%v joining=%v",
			w.c.Host(1).Node.Members(g), w.c.Host(3).Node.Members(g),
			w.infras[3].Joining(serverOG))
	}

	// Phase 4: post-heal traffic reaches all three replicas.
	w.deposits(t, 4, 5)
	w.c.RunFor(2 * simnet.Second)

	// Convergence: byte-identical state on every replica, and exactly
	// once — 25 deposits of 1, nothing dropped, nothing double-applied
	// across the partition and the replayed rejoin.
	snap1, err := w.accounts[1].SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []ids.ProcessorID{2, 3} {
		s, err := w.accounts[p].SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap1, s) {
			t.Errorf("replica %v diverged: balance=%d applied=%d, want balance=%d applied=%d",
				p, w.accounts[p].balance, w.accounts[p].applied,
				w.accounts[1].balance, w.accounts[1].applied)
		}
	}
	if w.accounts[1].balance != 25 || w.accounts[1].applied != 25 {
		t.Errorf("replica 1 balance=%d applied=%d, want 25/25 (exactly-once across the partition)",
			w.accounts[1].balance, w.accounts[1].applied)
	}

	// Every stage of the wedge/heal machinery left its footprint.
	for _, name := range counterNames {
		if trace.Counter(name) <= before[name] {
			t.Errorf("counter %s did not advance (still %d)", name, before[name])
		}
	}
}
