// Package ftcorba implements the fault tolerance infrastructure the
// paper's protocol serves (sections 1, 4 and 7): object groups of
// actively replicated CORBA objects, logical connections between client
// and server object groups, duplicate detection and suppression of
// requests and replies via (connection id, request number), message
// logging with replay, and state transfer to new replicas.
//
// The package bridges two substrates built in this repository: the FTMP
// node (package core), which delivers GIOP messages reliably and in
// total order to every replica, and the object adapter (package orb),
// which dispatches requests to servants. Because every replica sees the
// same totally-ordered sequence of requests, deterministic servants stay
// strongly consistent — the paper's replica consistency goal.
package ftcorba

import (
	"errors"
	"fmt"

	"ftmp/internal/core"
	"ftmp/internal/giop"
	"ftmp/internal/ids"
	"ftmp/internal/orb"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// Control operations used by the infrastructure itself. They flow as
// GIOP Requests with the reserved request number 0 and are never
// dispatched to application servants.
const (
	opGetState   = "_ft_get_state"
	opStateChunk = "_ft_state_chunk"
	opStateAck   = "_ft_state_ack"
)

// Stateful is implemented by servants that support state transfer to
// new replicas. Servants without it can only be replicated from birth.
type Stateful interface {
	orb.Servant
	// SnapshotState captures the full object state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the object state with a snapshot.
	RestoreState([]byte) error
}

// Stats counts infrastructure events (experiment E8).
type Stats struct {
	RequestsSent       uint64 // client requests multicast from here
	RequestsDispatched uint64 // requests dispatched to local servants
	DuplicateRequests  uint64 // suppressed duplicate requests
	RepliesSent        uint64 // replies multicast from here
	RepliesDelivered   uint64 // first replies handed to local callers
	DuplicateReplies   uint64 // suppressed duplicate replies
	StateTransfers     uint64 // snapshots applied at this replica
	Replayed           uint64 // buffered requests replayed after a join
	Fragmented         uint64 // outgoing messages split into fragments
	Reassembled        uint64 // incoming fragmented messages rebuilt
	WALRecoveredOps    uint64 // log entries rebuilt from the WAL
	DeltaTransfers     uint64 // delta state transfers applied here
	StateChunksSent    uint64 // state-transfer chunks streamed from here
	StateChunksApplied uint64 // state-transfer chunks staged here
	TransferResumes    uint64 // stream rewinds/takeovers performed here
}

// LogEntry is one record of the per-connection message log.
type LogEntry struct {
	ReqNum  ids.RequestNum
	Request bool // request or reply
	TS      ids.Timestamp
	Payload []byte
}

// served describes a server object group hosted (in part) here.
type served struct {
	objectKey string
	servant   orb.Servant
	adapter   *orb.Adapter
	// joining is true while this replica waits for a state snapshot;
	// requests are buffered, not applied.
	joining bool
	// markerTS is the delivery timestamp of the _ft_get_state marker
	// (the snapshot cut); zero until seen.
	markerTS ids.Timestamp
	// buffered holds ordered requests awaiting the snapshot.
	buffered []bufferedReq
	// durable is true for a replica rebuilt from its WAL
	// (ServeRecovered): it reconciles via announce/delta instead of a
	// full snapshot, and accepts snapshots only as the delta fallback.
	durable bool
	// recon holds per-connection reconciliation progress (durable.go).
	recon map[ids.ConnectionID]*reconState
	// xfer caches in-progress outbound transfers at established
	// replicas; stage holds inbound staging at a joiner
	// (statetransfer.go).
	xfer  map[ids.ConnectionID]*xferState
	stage map[ids.ConnectionID]*stageState
}

type bufferedReq struct {
	d   core.Delivery
	msg giop.Message
}

// pendingCall is an outstanding client invocation.
type pendingCall struct {
	cb func([]byte, error)
}

// callKey identifies an invocation across the group.
type callKey struct {
	conn ids.ConnectionID
	req  ids.RequestNum
}

// Infra is the fault tolerance infrastructure at one processor.
type Infra struct {
	self   ids.ProcessorID
	domain ids.DomainID
	node   *core.Node

	// servedGroups maps a server object group id to its local replica.
	servedGroups map[ids.ObjectGroupID]*served
	// nextReq allocates request numbers per connection; all replicas of
	// a deterministic client issue the same sequence, so the numbers
	// agree group-wide (paper section 4).
	nextReq map[ids.ConnectionID]ids.RequestNum
	// processed marks (connection, request) pairs already dispatched,
	// the duplicate-request filter.
	processed map[callKey]bool
	// replied marks (connection, request) pairs whose reply has been
	// delivered to a local caller, the duplicate-reply filter.
	replied map[callKey]bool
	pending map[callKey]*pendingCall
	// logs holds the per-connection message log for replay.
	logs map[ids.ConnectionID][]LogEntry
	// objectKeys maps object groups to object keys on the client side
	// (the information an IOR would carry).
	objectKeys map[ids.ObjectGroupID]string
	// FaultHook, when set, observes fault reports routed through OnFault
	// (the application's recovery policy).
	FaultHook func(group ids.GroupID, convicted ids.Membership)
	// fragments holds in-progress reassemblies (see fragment.go).
	fragments map[fragKey]*fragState
	// water holds per-connection completion watermarks for filter
	// compaction (see compact.go).
	water map[ids.ConnectionID]*lowWater
	// wal, when attached, mirrors the log, the duplicate filters and the
	// membership epochs to stable storage (see durable.go).
	wal    *wal.Log
	walErr func(error)
	// epochs caches the last installed membership per group so WAL
	// compaction can retain it (see checkpoint.go).
	epochs map[ids.GroupID]wal.EpochRecord
	stats  Stats
}

// Errors returned by Infra operations.
var (
	ErrNotEstablished = errors.New("ftcorba: connection not established")
	ErrNotServed      = errors.New("ftcorba: object group not served here")
	ErrNotStateful    = errors.New("ftcorba: servant does not support state transfer")
)

// New creates the infrastructure for one processor. The caller must
// route the node's Deliver callback to OnDeliver and its FaultReport to
// OnFault.
func New(self ids.ProcessorID, domain ids.DomainID, node *core.Node) *Infra {
	return &Infra{
		self:         self,
		domain:       domain,
		node:         node,
		servedGroups: make(map[ids.ObjectGroupID]*served),
		nextReq:      make(map[ids.ConnectionID]ids.RequestNum),
		processed:    make(map[callKey]bool),
		replied:      make(map[callKey]bool),
		pending:      make(map[callKey]*pendingCall),
		logs:         make(map[ids.ConnectionID][]LogEntry),
	}
}

// Stats returns a snapshot of the infrastructure counters.
func (f *Infra) Stats() Stats { return f.stats }

// Serve registers the local replica of server object group og: requests
// addressed to it dispatch to servant under objectKey.
func (f *Infra) Serve(og ids.ObjectGroupID, objectKey string, servant orb.Servant) {
	a := orb.NewAdapter()
	a.Register(objectKey, servant)
	f.servedGroups[og] = &served{objectKey: objectKey, servant: servant, adapter: a}
}

// ServeJoining registers a local replica that is joining an existing
// object group: ordered requests are buffered until a state snapshot
// arrives, then replayed (see AddReplica).
func (f *Infra) ServeJoining(og ids.ObjectGroupID, objectKey string, servant orb.Servant) {
	f.Serve(og, objectKey, servant)
	f.servedGroups[og].joining = true
}

// Connect opens the logical connection between a client object group and
// a server object group (the paper's ConnectRequest/Connect exchange).
func (f *Infra) Connect(now int64, conn ids.ConnectionID, serverDomainAddr wire.MulticastAddr, clientProcs ids.Membership) {
	f.node.OpenConnection(now, conn, serverDomainAddr, clientProcs)
}

// Established reports whether conn is ready for invocations.
func (f *Infra) Established(conn ids.ConnectionID) bool {
	st := f.node.ConnectionState(conn)
	return st != nil && st.Established
}

// Call invokes operation op on the server object group of conn with
// CDR-encoded args. The callback fires exactly once, with the first
// reply delivered in total order; replies from other server replicas
// are suppressed as duplicates. Deterministic client replicas issue
// identical request numbers, so the server group also suppresses their
// duplicate requests.
func (f *Infra) Call(now int64, conn ids.ConnectionID, op string, args []byte, cb func([]byte, error)) error {
	st := f.node.ConnectionState(conn)
	if st == nil || !st.Established {
		return ErrNotEstablished
	}
	sg, ok := f.servedObjectKeyFor(conn.ServerGroup)
	if !ok {
		return fmt.Errorf("ftcorba: no object key known for %v", conn.ServerGroup)
	}
	f.nextReq[conn]++
	reqNum := f.nextReq[conn]
	msg := giop.Message{Type: giop.MsgRequest, Request: &giop.Request{
		RequestID:        uint32(reqNum),
		ResponseExpected: cb != nil,
		ObjectKey:        []byte(sg),
		Operation:        op,
		Body:             args,
	}}
	payloads, err := maybeFragment(msg)
	if err != nil {
		return err
	}
	if cb != nil {
		f.pending[callKey{conn, reqNum}] = &pendingCall{cb: cb}
	}
	f.stats.RequestsSent++
	if len(payloads) > 1 {
		f.stats.Fragmented++
	}
	for _, p := range payloads {
		if err := f.node.Multicast(now, st.Group, conn, reqNum, p); err != nil {
			return err
		}
	}
	return nil
}

// servedObjectKeyFor returns the object key for a server object group.
// Clients learn it from the Registry (see RegisterObjectKey) or, when
// they are also replicas, from their own served table.
func (f *Infra) servedObjectKeyFor(og ids.ObjectGroupID) (string, bool) {
	if s, ok := f.servedGroups[og]; ok {
		return s.objectKey, true
	}
	k, ok := f.objectKeys[og]
	return k, ok
}

// RegisterObjectKey tells a pure client the object key of a server
// object group (the information an IOR would carry).
func (f *Infra) RegisterObjectKey(og ids.ObjectGroupID, objectKey string) {
	if f.objectKeys == nil {
		f.objectKeys = make(map[ids.ObjectGroupID]string)
	}
	f.objectKeys[og] = objectKey
}

// OnDeliver processes one totally-ordered delivery from the FTMP node.
// The caller wires it to core.Callbacks.Deliver.
func (f *Infra) OnDeliver(d core.Delivery, now int64) {
	if d.Conn.IsZero() || len(d.Payload) == 0 {
		return // not an infrastructure-managed message
	}
	msg, err := giop.Decode(d.Payload)
	if err != nil {
		return
	}
	if msg.Type == giop.MsgFragment {
		full, complete := f.onFragment(d, msg.Fragment)
		if !complete {
			return
		}
		msg = full
		// The log must hold the whole message, not the final fragment,
		// or replaying it would re-multicast garbage.
		if enc, err := giop.Encode(full, full.LittleEndian); err == nil {
			d.Payload = enc
		}
	}
	switch msg.Type {
	case giop.MsgRequest:
		f.onRequest(now, d, msg)
	case giop.MsgReply:
		f.onReply(d, msg)
	}
}

func (f *Infra) onRequest(now int64, d core.Delivery, msg giop.Message) {
	req := msg.Request
	sg, servesHere := f.servedGroups[d.Conn.ServerGroup]
	switch req.Operation {
	case opGetState:
		f.onGetStateMarker(now, d)
		return
	case opStateChunk:
		f.onStateChunk(now, d, req)
		return
	case opStateAck:
		f.onStateAck(now, d, req)
		return
	case opReplay:
		f.onReplay(now, d, req)
		return
	case opRecovered:
		f.onRecovered(now, d, req)
		return
	case opGetDelta:
		f.onGetDelta(now, d, req)
		return
	case opSetDelta:
		f.onSetDelta(now, d, req)
		return
	}
	f.appendLog(d, true)
	if !servesHere {
		return // client side observes requests only for logging
	}
	if sg.joining {
		sg.buffered = append(sg.buffered, bufferedReq{d: d, msg: msg})
		return
	}
	f.dispatch(now, d, sg, req)
}

// dispatch runs one request against the local replica, with duplicate
// suppression, and multicasts the reply.
func (f *Infra) dispatch(now int64, d core.Delivery, sg *served, req *giop.Request) {
	if f.isProcessed(d.Conn, d.RequestNum) {
		f.stats.DuplicateRequests++
		return
	}
	f.processed[callKey{d.Conn, d.RequestNum}] = true
	f.noteProcessed(d.Conn, d.RequestNum)
	f.walMark(wal.MarkProcessed, d.Conn, d.RequestNum)
	reply := sg.adapter.Dispatch(req)
	f.stats.RequestsDispatched++
	if reply == nil {
		return // oneway
	}
	payloads, err := maybeFragment(giop.Message{Type: giop.MsgReply, Reply: reply})
	if err != nil {
		return
	}
	st := f.node.ConnectionState(d.Conn)
	if st == nil {
		return
	}
	// All server replicas use the same request number for the reply
	// (paper section 4).
	f.stats.RepliesSent++
	if len(payloads) > 1 {
		f.stats.Fragmented++
	}
	for _, p := range payloads {
		_ = f.node.Multicast(now, st.Group, d.Conn, d.RequestNum, p)
	}
}

func (f *Infra) onReply(d core.Delivery, msg giop.Message) {
	f.appendLog(d, false)
	key := callKey{d.Conn, d.RequestNum}
	pc, waiting := f.pending[key]
	if !waiting {
		if f.isReplied(d.Conn, d.RequestNum) {
			f.stats.DuplicateReplies++
		}
		return
	}
	if f.isReplied(d.Conn, d.RequestNum) {
		f.stats.DuplicateReplies++
		return
	}
	f.replied[key] = true
	f.noteReplied(d.Conn, d.RequestNum)
	f.walMark(wal.MarkReplied, d.Conn, d.RequestNum)
	delete(f.pending, key)
	f.stats.RepliesDelivered++
	reply := msg.Reply
	switch reply.Status {
	case giop.NoException:
		pc.cb(reply.Body, nil)
	case giop.UserException:
		pc.cb(nil, orb.DecodeException(reply.Body, false))
	default:
		pc.cb(nil, orb.DecodeException(reply.Body, true))
	}
}

// appendLog records a message on its connection's log (paper section 4:
// matching requests with replies "is necessary, for example, when
// replaying messages from a log").
func (f *Infra) appendLog(d core.Delivery, isRequest bool) {
	f.logs[d.Conn] = append(f.logs[d.Conn], LogEntry{
		ReqNum:  d.RequestNum,
		Request: isRequest,
		TS:      d.TS,
		Payload: d.Payload,
	})
	f.walOp(d, isRequest)
}

// Log returns the ordered message log for conn.
func (f *Infra) Log(conn ids.ConnectionID) []LogEntry { return f.logs[conn] }

// MatchReplies pairs each logged request with its logged reply by
// (connection, request number), the paper's replay primitive. Requests
// without replies map to a nil entry.
func (f *Infra) MatchReplies(conn ids.ConnectionID) map[ids.RequestNum]*LogEntry {
	out := make(map[ids.RequestNum]*LogEntry)
	for i := range f.logs[conn] {
		e := &f.logs[conn][i]
		if e.Request {
			if _, ok := out[e.ReqNum]; !ok {
				out[e.ReqNum] = nil
			}
		} else {
			out[e.ReqNum] = e
		}
	}
	return out
}
