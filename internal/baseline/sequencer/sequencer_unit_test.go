package sequencer

import (
	"bytes"
	"testing"

	"ftmp/internal/ids"
)

// loopPair wires two nodes through direct function calls (no network),
// for codec- and state-level unit tests; the protocol-level behaviour is
// covered by internal/baseline's simulated-network tests.
func loopPair(t *testing.T) (*Node, *Node, *[][]byte) {
	t.Helper()
	members := ids.NewMembership(1, 2)
	var wire [][]byte
	mkDeliver := func() func(ids.ProcessorID, []byte, int64) {
		return func(ids.ProcessorID, []byte, int64) {}
	}
	a := New(1, members, DefaultConfig(), func(b []byte) { wire = append(wire, b) }, mkDeliver())
	b := New(2, members, DefaultConfig(), func(b []byte) { wire = append(wire, b) }, mkDeliver())
	return a, b, &wire
}

func TestCodecRoundTrips(t *testing.T) {
	payload := []byte("data-payload")
	d := encodeData(ids.ProcessorID(7), 42, payload)
	src, seq, got, ok := decodeData(d)
	if !ok || src != 7 || seq != 42 || !bytes.Equal(got, payload) {
		t.Errorf("data round trip: %v %v %v %v", src, seq, got, ok)
	}
	o := encodeOrder(9, dataKey{src: 7, srcSeq: 42})
	g, key, ok := decodeOrder(o)
	if !ok || g != 9 || key.src != 7 || key.srcSeq != 42 {
		t.Errorf("order round trip: %v %v %v", g, key, ok)
	}
	nk := encodeNack(33)
	gn, ok := decodeNack(nk)
	if !ok || gn != 33 {
		t.Errorf("nack round trip: %v %v", gn, ok)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	if _, _, _, ok := decodeData([]byte{kindData, 0}); ok {
		t.Error("short data accepted")
	}
	// Length field disagreeing with the buffer.
	d := encodeData(1, 1, []byte("xy"))
	if _, _, _, ok := decodeData(d[:len(d)-1]); ok {
		t.Error("truncated data accepted")
	}
	if _, _, ok := decodeOrder([]byte{kindOrder}); ok {
		t.Error("short order accepted")
	}
	if _, ok := decodeNack([]byte{kindNack, 1}); ok {
		t.Error("short nack accepted")
	}
}

func TestEmptyMembershipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty membership accepted")
		}
	}()
	New(1, nil, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
}

func TestGarbagePacketsIgnored(t *testing.T) {
	a, _, _ := loopPair(t)
	a.HandlePacket(nil, 0)
	a.HandlePacket([]byte{99, 1, 2, 3}, 0)
	if a.Stats().Delivered != 0 {
		t.Error("garbage delivered")
	}
}

func TestSequencerOrdersOwnAndRemote(t *testing.T) {
	a, b, wire := loopPair(t)
	_ = a.Multicast(0, []byte("from-seq")) // a is the sequencer
	_ = b.Multicast(0, []byte("from-b"))
	// Deliver the wire traffic crosswise until quiescent.
	for pass := 0; pass < 5; pass++ {
		msgs := *wire
		*wire = nil
		for _, m := range msgs {
			a.HandlePacket(m, 0)
			b.HandlePacket(m, 0)
		}
		if len(*wire) == 0 {
			break
		}
	}
	if a.Stats().Ordered != 2 {
		t.Errorf("sequencer ordered %d, want 2", a.Stats().Ordered)
	}
	if a.Stats().Delivered != 2 || b.Stats().Delivered != 2 {
		t.Errorf("delivered a=%d b=%d", a.Stats().Delivered, b.Stats().Delivered)
	}
}

func TestStringerAndStats(t *testing.T) {
	a, _, _ := loopPair(t)
	if a.String() == "" {
		t.Error("empty String")
	}
	if !a.IsSequencer() {
		t.Error("lowest id not sequencer")
	}
}
