// Package sequencer implements a fixed-sequencer totally-ordered
// multicast, the Amoeba-style design the paper's related work contrasts
// with FTMP's symmetric ordering (paper section 8, [10]): originators
// multicast their messages, and a distinguished member — the sequencer —
// multicasts ordering decisions that assign each message its place in
// the single global sequence.
//
// The implementation provides reliable totally-ordered delivery under
// message loss (NACK-based repair, as in RMP) over a static membership.
// Fault-driven membership change is out of scope: the package exists as
// a performance comparator for experiments E1/E2/E6, not as a
// fault-tolerance competitor.
package sequencer

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ftmp/internal/ids"
)

// Config holds the protocol's policy knobs, in nanoseconds.
type Config struct {
	// NackDelay and NackInterval control gap repair, as in rmp.Config.
	NackDelay    int64
	NackInterval int64
	// AnnounceInterval is how often an idle sequencer re-multicasts its
	// latest order record, the analogue of FTMP's heartbeat: it exposes
	// tail losses that gap detection alone cannot see.
	AnnounceInterval int64
}

// DefaultConfig mirrors the RMP repair policy for fair comparison; the
// announce interval matches FTMP's default heartbeat interval.
func DefaultConfig() Config {
	return Config{NackDelay: 2_000_000, NackInterval: 5_000_000, AnnounceInterval: 5_000_000}
}

// Stats counts protocol events.
type Stats struct {
	Sent      uint64 // data messages originated here
	Ordered   uint64 // order records issued (sequencer only)
	Delivered uint64 // messages delivered in global order
	NacksSent uint64
	Retrans   uint64
}

// message kinds on the wire.
const (
	kindData  = 1
	kindOrder = 2
	kindNack  = 3
)

// dataKey identifies an originated message.
type dataKey struct {
	src    ids.ProcessorID
	srcSeq uint32
}

// Node is one member of a sequencer-ordered group.
type Node struct {
	self      ids.ProcessorID
	members   ids.Membership
	sequencer ids.ProcessorID
	cfg       Config

	// transmit multicasts an encoded protocol message to the group.
	transmit func(data []byte)
	// deliver hands up one globally-ordered payload.
	deliver func(src ids.ProcessorID, payload []byte, now int64)

	nextSrcSeq uint32
	// data holds received (and own) message payloads by origin.
	data map[dataKey][]byte
	// orders maps global sequence numbers to the message they order.
	orders map[uint64]dataKey
	// nextGlobal is the next global sequence to assign (sequencer) or
	// deliver (member).
	nextGlobal   uint64
	maxSeenOrder uint64
	// seen tracks ordered keys at the sequencer to avoid double-ordering
	// retransmitted data; assigned remembers each key's global sequence
	// so duplicates can be answered with the (possibly lost) order.
	seen     map[dataKey]bool
	assigned map[dataKey]uint64
	// lastAnnounce is when the sequencer last (re)announced an order.
	lastAnnounce int64

	nackAt int64
	// ownPending holds own messages not yet seen ordered; they are
	// re-multicast until the sequencer's order record arrives, covering
	// data messages lost on the way to the sequencer.
	ownPending map[uint32][]byte
	ownResend  int64
	stats      Stats
}

// New creates a member. The sequencer is the lowest member identifier.
func New(self ids.ProcessorID, members ids.Membership, cfg Config,
	transmit func([]byte),
	deliver func(src ids.ProcessorID, payload []byte, now int64)) *Node {
	if len(members) == 0 {
		panic("sequencer: empty membership")
	}
	return &Node{
		self:       self,
		members:    members.Clone(),
		sequencer:  members[0],
		cfg:        cfg,
		transmit:   transmit,
		deliver:    deliver,
		data:       make(map[dataKey][]byte),
		orders:     make(map[uint64]dataKey),
		nextGlobal: 1,
		seen:       make(map[dataKey]bool),
		assigned:   make(map[dataKey]uint64),
		ownPending: make(map[uint32][]byte),
	}
}

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats { return n.stats }

// IsSequencer reports whether this member assigns the order.
func (n *Node) IsSequencer() bool { return n.self == n.sequencer }

// Multicast originates a payload.
func (n *Node) Multicast(now int64, payload []byte) error {
	n.nextSrcSeq++
	key := dataKey{n.self, n.nextSrcSeq}
	buf := encodeData(n.self, n.nextSrcSeq, payload)
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.data[key] = cp
	n.stats.Sent++
	n.transmit(buf)
	if n.IsSequencer() {
		n.assignOrder(key, now)
	} else {
		n.ownPending[n.nextSrcSeq] = cp
		if n.ownResend == 0 {
			n.ownResend = now + n.cfg.NackInterval
		}
	}
	return nil
}

// assignOrder is the sequencer's ordering step. Duplicate data (an
// originator retrying because it missed the order) is answered by
// re-multicasting the existing order record.
func (n *Node) assignOrder(key dataKey, now int64) {
	if n.seen[key] {
		if g, ok := n.assigned[key]; ok {
			n.stats.Retrans++
			n.transmit(encodeOrder(g, key))
		}
		return
	}
	n.seen[key] = true
	g := n.nextGlobalToAssign()
	n.orders[g] = key
	n.assigned[key] = g
	if g > n.maxSeenOrder {
		n.maxSeenOrder = g
	}
	n.stats.Ordered++
	n.lastAnnounce = now
	n.transmit(encodeOrder(g, key))
	n.tryDeliver(now)
}

func (n *Node) nextGlobalToAssign() uint64 {
	g := n.maxSeenOrder + 1
	if g < n.nextGlobal {
		g = n.nextGlobal
	}
	return g
}

// HandlePacket processes one received protocol message.
func (n *Node) HandlePacket(data []byte, now int64) {
	if len(data) < 1 {
		return
	}
	switch data[0] {
	case kindData:
		src, srcSeq, payload, ok := decodeData(data)
		if !ok || src == n.self {
			return
		}
		key := dataKey{src, srcSeq}
		if _, dup := n.data[key]; !dup {
			n.data[key] = payload
		}
		if n.IsSequencer() {
			n.assignOrder(key, now)
		}
		n.tryDeliver(now)
	case kindOrder:
		g, key, ok := decodeOrder(data)
		if !ok {
			return
		}
		if _, dup := n.orders[g]; !dup {
			n.orders[g] = key
		}
		if g > n.maxSeenOrder {
			n.maxSeenOrder = g
			n.scheduleNack(now)
		}
		if key.src == n.self {
			delete(n.ownPending, key.srcSeq)
			if len(n.ownPending) == 0 {
				n.ownResend = 0
			}
		}
		if n.IsSequencer() {
			// A re-ordered message from a previous sequencer epoch; keep
			// maxSeenOrder in sync so fresh assignments do not collide.
			n.seen[key] = true
		}
		n.tryDeliver(now)
	case kindNack:
		g, ok := decodeNack(data)
		if !ok {
			return
		}
		// Anyone holding the order record (and the data) answers; the
		// sequencer always holds both.
		if key, have := n.orders[g]; have {
			n.stats.Retrans++
			n.transmit(encodeOrder(g, key))
			if payload, haveData := n.data[key]; haveData {
				n.transmit(encodeData(key.src, key.srcSeq, payload))
			}
		}
	}
}

// retainWindow bounds how many delivered messages stay available for
// retransmission. Static membership means every member progresses; a
// window this deep covers any realistic repair lag in the experiments.
const retainWindow = 8192

// tryDeliver delivers contiguous globally-ordered messages. Delivered
// entries are retained (bounded by retainWindow) so NACKs from slower
// members can still be answered.
func (n *Node) tryDeliver(now int64) {
	for {
		key, ok := n.orders[n.nextGlobal]
		if !ok {
			break
		}
		payload, have := n.data[key]
		if !have {
			break
		}
		n.deliver(key.src, payload, now)
		n.stats.Delivered++
		n.nextGlobal++
		if n.nextGlobal > retainWindow {
			prune := n.nextGlobal - retainWindow
			if old, ok := n.orders[prune]; ok {
				delete(n.data, old)
				delete(n.seen, old)
				delete(n.assigned, old)
				delete(n.orders, prune)
			}
		}
	}
	if n.nextGlobal > n.maxSeenOrder {
		n.nackAt = 0
	}
}

func (n *Node) scheduleNack(now int64) {
	if n.nextGlobal <= n.maxSeenOrder && n.nackAt == 0 {
		at := now + n.cfg.NackDelay
		if at == 0 {
			at = 1
		}
		n.nackAt = at
	}
}

// Tick drives gap repair, own-message resend, and the idle sequencer's
// order re-announcement (the heartbeat analogue).
func (n *Node) Tick(now int64) {
	if n.IsSequencer() && n.maxSeenOrder > 0 && n.cfg.AnnounceInterval > 0 &&
		now-n.lastAnnounce >= n.cfg.AnnounceInterval {
		if key, ok := n.orders[n.maxSeenOrder]; ok {
			n.transmit(encodeOrder(n.maxSeenOrder, key))
		}
		n.lastAnnounce = now
	}
	if n.ownResend != 0 && now >= n.ownResend && len(n.ownPending) > 0 {
		seqs := make([]uint32, 0, len(n.ownPending))
		for q := range n.ownPending {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			n.stats.Retrans++
			n.transmit(encodeData(n.self, q, n.ownPending[q]))
		}
		n.ownResend = now + n.cfg.NackInterval
	}
	if n.nextGlobal <= n.maxSeenOrder && n.nackAt == 0 {
		n.scheduleNack(now)
	}
	if n.nackAt == 0 || now < n.nackAt {
		return
	}
	// Request every missing global sequence (bounded batch).
	var missing []uint64
	for g := n.nextGlobal; g <= n.maxSeenOrder && len(missing) < 64; g++ {
		key, haveOrder := n.orders[g]
		if !haveOrder {
			missing = append(missing, g)
			continue
		}
		if _, haveData := n.data[key]; !haveData {
			missing = append(missing, g)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	for _, g := range missing {
		n.stats.NacksSent++
		n.transmit(encodeNack(g))
	}
	n.nackAt = now + n.cfg.NackInterval
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("sequencer-node(%v, seq=%v, next=%d)", n.self, n.sequencer, n.nextGlobal)
}

// Wire encoding: one-byte kind, then fixed big-endian fields.

func encodeData(src ids.ProcessorID, srcSeq uint32, payload []byte) []byte {
	buf := make([]byte, 1+4+4+4+len(payload))
	buf[0] = kindData
	binary.BigEndian.PutUint32(buf[1:5], uint32(src))
	binary.BigEndian.PutUint32(buf[5:9], srcSeq)
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(payload)))
	copy(buf[13:], payload)
	return buf
}

func decodeData(buf []byte) (ids.ProcessorID, uint32, []byte, bool) {
	if len(buf) < 13 {
		return 0, 0, nil, false
	}
	src := ids.ProcessorID(binary.BigEndian.Uint32(buf[1:5]))
	srcSeq := binary.BigEndian.Uint32(buf[5:9])
	n := binary.BigEndian.Uint32(buf[9:13])
	if int(n) != len(buf)-13 {
		return 0, 0, nil, false
	}
	payload := make([]byte, n)
	copy(payload, buf[13:])
	return src, srcSeq, payload, true
}

func encodeOrder(g uint64, key dataKey) []byte {
	buf := make([]byte, 1+8+4+4)
	buf[0] = kindOrder
	binary.BigEndian.PutUint64(buf[1:9], g)
	binary.BigEndian.PutUint32(buf[9:13], uint32(key.src))
	binary.BigEndian.PutUint32(buf[13:17], key.srcSeq)
	return buf
}

func decodeOrder(buf []byte) (uint64, dataKey, bool) {
	if len(buf) != 17 {
		return 0, dataKey{}, false
	}
	g := binary.BigEndian.Uint64(buf[1:9])
	key := dataKey{
		src:    ids.ProcessorID(binary.BigEndian.Uint32(buf[9:13])),
		srcSeq: binary.BigEndian.Uint32(buf[13:17]),
	}
	return g, key, true
}

func encodeNack(g uint64) []byte {
	buf := make([]byte, 1+8)
	buf[0] = kindNack
	binary.BigEndian.PutUint64(buf[1:9], g)
	return buf
}

func decodeNack(buf []byte) (uint64, bool) {
	if len(buf) != 9 {
		return 0, false
	}
	return binary.BigEndian.Uint64(buf[1:9]), true
}
