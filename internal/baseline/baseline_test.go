// Package baseline_test exercises both comparison protocols through the
// simulated network, asserting the same reliable-totally-ordered
// contract FTMP provides (for the fault-free, static-membership scope
// the baselines cover).
package baseline_test

import (
	"fmt"
	"testing"

	"ftmp/internal/baseline/sequencer"
	"ftmp/internal/baseline/tokenring"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// proto abstracts the two baselines for shared tests.
type proto interface {
	Multicast(now int64, payload []byte) error
	HandlePacket(data []byte, now int64)
	Tick(now int64)
}

type fleet struct {
	net       *simnet.Net
	nodes     map[ids.ProcessorID]proto
	delivered map[ids.ProcessorID][]string
}

const groupAddr = simnet.Addr(500)

func newFleet(t *testing.T, seed int64, loss float64, build func(p ids.ProcessorID, m ids.Membership, transmit func([]byte), deliver func(ids.ProcessorID, []byte, int64)) proto, n int) *fleet {
	t.Helper()
	cfg := simnet.NewConfig()
	cfg.LossRate = loss
	f := &fleet{
		net:       simnet.New(seed, cfg),
		nodes:     make(map[ids.ProcessorID]proto),
		delivered: make(map[ids.ProcessorID][]string),
	}
	var members ids.Membership
	for i := 1; i <= n; i++ {
		members = members.Add(ids.ProcessorID(i))
	}
	for _, p := range members {
		p := p
		transmit := func(data []byte) { f.net.Send(simnet.NodeID(p), groupAddr, data) }
		deliver := func(src ids.ProcessorID, payload []byte, now int64) {
			f.delivered[p] = append(f.delivered[p], string(payload))
		}
		node := build(p, members, transmit, deliver)
		f.nodes[p] = node
		f.net.AddNode(simnet.NodeID(p), simnet.EndpointFunc{
			OnPacket: func(data []byte, _ simnet.Addr, now int64) { node.HandlePacket(data, now) },
			OnTick:   func(now int64) { node.Tick(now) },
		}, simnet.Millisecond)
		f.net.Subscribe(simnet.NodeID(p), groupAddr)
	}
	return f
}

func buildSequencer(p ids.ProcessorID, m ids.Membership, transmit func([]byte), deliver func(ids.ProcessorID, []byte, int64)) proto {
	return sequencer.New(p, m, sequencer.DefaultConfig(), transmit, deliver)
}

func buildRing(p ids.ProcessorID, m ids.Membership, transmit func([]byte), deliver func(ids.ProcessorID, []byte, int64)) proto {
	return tokenring.New(p, m, tokenring.DefaultConfig(), transmit, deliver)
}

func builders() map[string]func(ids.ProcessorID, ids.Membership, func([]byte), func(ids.ProcessorID, []byte, int64)) proto {
	return map[string]func(ids.ProcessorID, ids.Membership, func([]byte), func(ids.ProcessorID, []byte, int64)) proto{
		"sequencer": buildSequencer,
		"tokenring": buildRing,
	}
}

func (f *fleet) allDelivered(n int, count int) func() bool {
	return func() bool {
		for i := 1; i <= n; i++ {
			if len(f.delivered[ids.ProcessorID(i)]) < count {
				return false
			}
		}
		return true
	}
}

func (f *fleet) assertAgreement(t *testing.T, n int) {
	t.Helper()
	base := f.delivered[ids.ProcessorID(1)]
	for i := 2; i <= n; i++ {
		got := f.delivered[ids.ProcessorID(i)]
		if len(got) != len(base) {
			t.Fatalf("P%d delivered %d, P1 delivered %d", i, len(got), len(base))
		}
		for j := range base {
			if got[j] != base[j] {
				t.Fatalf("P%d order differs at %d: %q vs %q", i, j, got[j], base[j])
			}
		}
	}
}

func TestTotalOrderCleanNetwork(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			const n, burst = 4, 10
			f := newFleet(t, 1, 0, build, n)
			for i := 0; i < burst; i++ {
				for p := 1; p <= n; p++ {
					p, i := p, i
					f.net.At(simnet.Time(i)*simnet.Millisecond, func() {
						_ = f.nodes[ids.ProcessorID(p)].Multicast(int64(f.net.Now()), []byte(fmt.Sprintf("%d:%d", p, i)))
					})
				}
			}
			if !f.net.RunUntil(5*simnet.Second, f.allDelivered(n, n*burst)) {
				for p := 1; p <= n; p++ {
					t.Logf("P%d: %d delivered", p, len(f.delivered[ids.ProcessorID(p)]))
				}
				t.Fatal("not all delivered")
			}
			f.assertAgreement(t, n)
		})
	}
}

func TestTotalOrderUnderLoss(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			const n, burst = 3, 15
			f := newFleet(t, 7, 0.10, build, n)
			for i := 0; i < burst; i++ {
				for p := 1; p <= n; p++ {
					p, i := p, i
					f.net.At(simnet.Time(i)*2*simnet.Millisecond, func() {
						_ = f.nodes[ids.ProcessorID(p)].Multicast(int64(f.net.Now()), []byte(fmt.Sprintf("%d:%d", p, i)))
					})
				}
			}
			if !f.net.RunUntil(30*simnet.Second, f.allDelivered(n, n*burst)) {
				for p := 1; p <= n; p++ {
					t.Logf("P%d: %d delivered", p, len(f.delivered[ids.ProcessorID(p)]))
				}
				t.Fatalf("%s: reliable delivery failed under loss", name)
			}
			f.assertAgreement(t, n)
		})
	}
}

func TestSingleSenderLatencyPath(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			const n = 3
			f := newFleet(t, 11, 0, build, n)
			f.net.Run(20 * simnet.Millisecond) // let the ring/token settle
			_ = f.nodes[2].Multicast(int64(f.net.Now()), []byte("one"))
			if !f.net.RunUntil(simnet.Second, f.allDelivered(n, 1)) {
				t.Fatal("single message not delivered")
			}
			f.assertAgreement(t, n)
		})
	}
}

func TestSequencerStats(t *testing.T) {
	f := newFleet(t, 13, 0, buildSequencer, 3)
	_ = f.nodes[2].Multicast(0, []byte("x"))
	f.net.RunUntil(simnet.Second, f.allDelivered(3, 1))
	seqNode := f.nodes[1].(*sequencer.Node)
	if !seqNode.IsSequencer() {
		t.Error("lowest id is not sequencer")
	}
	if seqNode.Stats().Ordered != 1 {
		t.Errorf("sequencer ordered %d", seqNode.Stats().Ordered)
	}
	member := f.nodes[2].(*sequencer.Node)
	if member.IsSequencer() {
		t.Error("member 2 believes it is the sequencer")
	}
	if member.Stats().Sent != 1 || member.Stats().Delivered != 1 {
		t.Errorf("member stats = %+v", member.Stats())
	}
}

func TestTokenRingRotatesWhenIdle(t *testing.T) {
	f := newFleet(t, 17, 0, buildRing, 3)
	f.net.Run(100 * simnet.Millisecond)
	passes := uint64(0)
	for p := 1; p <= 3; p++ {
		passes += f.nodes[ids.ProcessorID(p)].(*tokenring.Node).Stats().TokenPasses
	}
	if passes < 10 {
		t.Errorf("token passed only %d times while idle", passes)
	}
}

func TestTokenRingSurvivesTokenLoss(t *testing.T) {
	// 20% loss will drop tokens; regeneration must keep the ring alive.
	f := newFleet(t, 19, 0.2, buildRing, 3)
	const burst = 10
	for i := 0; i < burst; i++ {
		i := i
		f.net.At(simnet.Time(i*5)*simnet.Millisecond, func() {
			_ = f.nodes[2].Multicast(int64(f.net.Now()), []byte(fmt.Sprintf("t%d", i)))
		})
	}
	if !f.net.RunUntil(60*simnet.Second, f.allDelivered(3, burst)) {
		t.Fatal("ring stalled after token loss")
	}
	f.assertAgreement(t, 3)
}

func TestBaselineDeterminism(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			run := func() []string {
				f := newFleet(t, 23, 0.05, build, 3)
				for i := 0; i < 10; i++ {
					i := i
					f.net.At(simnet.Time(i)*simnet.Millisecond, func() {
						_ = f.nodes[ids.ProcessorID(i%3+1)].Multicast(int64(f.net.Now()), []byte(fmt.Sprintf("d%d", i)))
					})
				}
				f.net.RunUntil(30*simnet.Second, f.allDelivered(3, 10))
				return f.delivered[1]
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("non-deterministic lengths %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("non-deterministic at %d", i)
				}
			}
		})
	}
}
