// Package tokenring implements a rotating-token totally-ordered
// multicast, the Totem-style design of the paper's related work (paper
// section 8, [15]): a token circulates around a logical ring of the
// members; only the token holder multicasts, stamping each message with
// a global sequence number taken from the token. Total order is the
// sequence number order; reliability comes from NACK-based repair (any
// member that has a message may retransmit it, as in RMP) and token
// retransmission.
//
// Like package sequencer, this is a performance comparator over a static
// membership for experiments E1/E2/E6; Totem's membership and recovery
// machinery is out of scope.
package tokenring

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ftmp/internal/ids"
)

// Config holds the protocol's policy knobs, in nanoseconds.
type Config struct {
	// NackDelay and NackInterval control gap repair.
	NackDelay    int64
	NackInterval int64
	// TokenTimeout regenerates the token when the ring has been silent
	// (token lost); the last known holder retransmits.
	TokenTimeout int64
	// MaxBurst bounds how many queued messages one token visit may send,
	// bounding token rotation time (Totem's flow control).
	MaxBurst int
}

// DefaultConfig mirrors the RMP repair policy.
func DefaultConfig() Config {
	return Config{
		NackDelay:    2_000_000,
		NackInterval: 5_000_000,
		TokenTimeout: 10_000_000,
		MaxBurst:     64,
	}
}

// Stats counts protocol events.
type Stats struct {
	Sent        uint64 // data messages multicast here
	Delivered   uint64
	TokenPasses uint64
	TokenRegens uint64
	NacksSent   uint64
	Retrans     uint64
}

const (
	kindData  = 1
	kindToken = 2
	kindNack  = 3
)

// Node is one member of the ring.
type Node struct {
	self    ids.ProcessorID
	members ids.Membership
	cfg     Config

	transmit func(data []byte)
	deliver  func(src ids.ProcessorID, payload []byte, now int64)

	// queue holds payloads awaiting the token.
	queue [][]byte
	// msgs maps global sequence numbers to (src, payload).
	msgs map[uint64]stamped
	// nextDeliver is the next global sequence to deliver.
	nextDeliver uint64
	// maxSeen is the highest sequence known to exist (from data or the
	// token's seq field).
	maxSeen uint64

	// haveToken reports whether this member holds the token.
	haveToken bool
	// tokenSeq is the token's sequence counter while held.
	tokenSeq uint64
	// tokenPass is the token's pass counter: incremented on every
	// forward, it lets members reject stale (already-acted-on) token
	// retransmissions, preventing double holders.
	tokenPass uint64
	// lastPassAccepted is the highest pass counter this member has
	// accepted the token at.
	lastPassAccepted uint64
	// lastTokenSeen is when ring activity was last observed.
	lastTokenSeen int64
	// lastToken holds the most recent token encoding this member
	// forwarded, for timeout retransmission.
	lastToken []byte

	nackAt int64
	stats  Stats
}

type stamped struct {
	src     ids.ProcessorID
	payload []byte
}

// New creates a ring member. The member with the lowest identifier
// starts with the token.
func New(self ids.ProcessorID, members ids.Membership, cfg Config,
	transmit func([]byte),
	deliver func(src ids.ProcessorID, payload []byte, now int64)) *Node {
	if len(members) == 0 {
		panic("tokenring: empty membership")
	}
	n := &Node{
		self:        self,
		members:     members.Clone(),
		cfg:         cfg,
		transmit:    transmit,
		deliver:     deliver,
		msgs:        make(map[uint64]stamped),
		nextDeliver: 1,
	}
	if self == members[0] {
		n.haveToken = true
	}
	return n
}

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats { return n.stats }

// successor returns the next member on the ring.
func (n *Node) successor() ids.ProcessorID {
	for i, p := range n.members {
		if p == n.self {
			return n.members[(i+1)%len(n.members)]
		}
	}
	return n.members[0]
}

// Multicast queues a payload; it is sent on the next token visit.
func (n *Node) Multicast(now int64, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.queue = append(n.queue, cp)
	if n.haveToken {
		n.drainAndPass(now)
	}
	return nil
}

// drainAndPass sends queued messages under the token and passes it on.
func (n *Node) drainAndPass(now int64) {
	burst := len(n.queue)
	if burst > n.cfg.MaxBurst {
		burst = n.cfg.MaxBurst
	}
	for i := 0; i < burst; i++ {
		n.tokenSeq++
		payload := n.queue[i]
		n.msgs[n.tokenSeq] = stamped{src: n.self, payload: payload}
		if n.tokenSeq > n.maxSeen {
			n.maxSeen = n.tokenSeq
		}
		n.stats.Sent++
		n.transmit(encodeData(n.tokenSeq, n.self, payload))
	}
	n.queue = n.queue[burst:]
	n.tryDeliver(now)
	// Pass the token to the successor (multicast; non-successors ignore
	// it, but see the token's seq for gap detection).
	n.haveToken = false
	n.tokenPass++
	tok := encodeToken(n.tokenSeq, n.tokenPass, n.successor())
	n.lastToken = tok
	n.lastTokenSeen = now
	n.stats.TokenPasses++
	n.transmit(tok)
}

// HandlePacket processes one received protocol message.
func (n *Node) HandlePacket(data []byte, now int64) {
	if len(data) < 1 {
		return
	}
	switch data[0] {
	case kindData:
		seq, src, payload, ok := decodeData(data)
		if !ok {
			return
		}
		if _, dup := n.msgs[seq]; !dup {
			n.msgs[seq] = stamped{src: src, payload: payload}
		}
		if seq > n.maxSeen {
			n.maxSeen = seq
			n.scheduleNack(now)
		}
		n.lastTokenSeen = now
		n.tryDeliver(now)
	case kindToken:
		seq, pass, holder, ok := decodeToken(data)
		if !ok {
			return
		}
		n.lastTokenSeen = now
		if seq > n.maxSeen {
			n.maxSeen = seq
			n.scheduleNack(now)
		}
		if pass > n.tokenPass {
			n.tokenPass = pass
		}
		if holder != n.self {
			return
		}
		if n.haveToken {
			return // duplicate token (retransmission)
		}
		if pass <= n.lastPassAccepted {
			// A retransmission of a token this member already accepted
			// and forwarded: acting on it again would put two tokens in
			// circulation.
			return
		}
		n.lastPassAccepted = pass
		n.haveToken = true
		n.tokenSeq = seq
		if n.maxSeen > n.tokenSeq {
			n.tokenSeq = n.maxSeen
		}
		n.drainAndPass(now)
	case kindNack:
		seq, ok := decodeNack(data)
		if !ok {
			return
		}
		if m, have := n.msgs[seq]; have {
			n.stats.Retrans++
			n.transmit(encodeData(seq, m.src, m.payload))
		}
	}
}

// retainWindow bounds retained delivered messages, as in sequencer.
const retainWindow = 8192

func (n *Node) tryDeliver(now int64) {
	for {
		m, ok := n.msgs[n.nextDeliver]
		if !ok {
			break
		}
		n.deliver(m.src, m.payload, now)
		n.stats.Delivered++
		n.nextDeliver++
		if n.nextDeliver > retainWindow {
			delete(n.msgs, n.nextDeliver-retainWindow)
		}
	}
	if n.nextDeliver > n.maxSeen {
		n.nackAt = 0
	}
}

func (n *Node) scheduleNack(now int64) {
	if n.nextDeliver <= n.maxSeen && n.nackAt == 0 {
		at := now + n.cfg.NackDelay
		if at == 0 {
			at = 1
		}
		n.nackAt = at
	}
}

// Tick drives token rotation when idle, token-loss recovery and gap
// repair.
func (n *Node) Tick(now int64) {
	// A held token with nothing to send still rotates, so other members
	// can transmit (Totem rotates continuously).
	if n.haveToken {
		n.drainAndPass(now)
	}
	// Token-loss recovery: if the ring is silent too long, the last
	// member to forward the token re-multicasts it.
	if !n.haveToken && n.lastToken != nil &&
		n.cfg.TokenTimeout > 0 && now-n.lastTokenSeen >= n.cfg.TokenTimeout {
		n.stats.TokenRegens++
		n.transmit(n.lastToken)
		n.lastTokenSeen = now
	}
	// Gap repair.
	if n.nextDeliver <= n.maxSeen && n.nackAt == 0 {
		n.scheduleNack(now)
	}
	if n.nackAt == 0 || now < n.nackAt {
		return
	}
	var missing []uint64
	for g := n.nextDeliver; g <= n.maxSeen && len(missing) < 64; g++ {
		if _, have := n.msgs[g]; !have {
			missing = append(missing, g)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	for _, g := range missing {
		n.stats.NacksSent++
		n.transmit(encodeNack(g))
	}
	n.nackAt = now + n.cfg.NackInterval
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("ring-node(%v, token=%v, next=%d)", n.self, n.haveToken, n.nextDeliver)
}

func encodeData(seq uint64, src ids.ProcessorID, payload []byte) []byte {
	buf := make([]byte, 1+8+4+4+len(payload))
	buf[0] = kindData
	binary.BigEndian.PutUint64(buf[1:9], seq)
	binary.BigEndian.PutUint32(buf[9:13], uint32(src))
	binary.BigEndian.PutUint32(buf[13:17], uint32(len(payload)))
	copy(buf[17:], payload)
	return buf
}

func decodeData(buf []byte) (uint64, ids.ProcessorID, []byte, bool) {
	if len(buf) < 17 {
		return 0, 0, nil, false
	}
	seq := binary.BigEndian.Uint64(buf[1:9])
	src := ids.ProcessorID(binary.BigEndian.Uint32(buf[9:13]))
	ln := binary.BigEndian.Uint32(buf[13:17])
	if int(ln) != len(buf)-17 {
		return 0, 0, nil, false
	}
	payload := make([]byte, ln)
	copy(payload, buf[17:])
	return seq, src, payload, true
}

func encodeToken(seq, pass uint64, holder ids.ProcessorID) []byte {
	buf := make([]byte, 1+8+8+4)
	buf[0] = kindToken
	binary.BigEndian.PutUint64(buf[1:9], seq)
	binary.BigEndian.PutUint64(buf[9:17], pass)
	binary.BigEndian.PutUint32(buf[17:21], uint32(holder))
	return buf
}

func decodeToken(buf []byte) (uint64, uint64, ids.ProcessorID, bool) {
	if len(buf) != 21 {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(buf[1:9]), binary.BigEndian.Uint64(buf[9:17]),
		ids.ProcessorID(binary.BigEndian.Uint32(buf[17:21])), true
}

func encodeNack(seq uint64) []byte {
	buf := make([]byte, 1+8)
	buf[0] = kindNack
	binary.BigEndian.PutUint64(buf[1:9], seq)
	return buf
}

func decodeNack(buf []byte) (uint64, bool) {
	if len(buf) != 9 {
		return 0, false
	}
	return binary.BigEndian.Uint64(buf[1:9]), true
}
