package tokenring

import (
	"bytes"
	"testing"

	"ftmp/internal/ids"
)

func TestCodecRoundTrips(t *testing.T) {
	d := encodeData(11, ids.ProcessorID(3), []byte("ring-data"))
	seq, src, payload, ok := decodeData(d)
	if !ok || seq != 11 || src != 3 || !bytes.Equal(payload, []byte("ring-data")) {
		t.Errorf("data round trip: %v %v %q %v", seq, src, payload, ok)
	}
	tok := encodeToken(11, 5, ids.ProcessorID(2))
	seq2, pass, holder, ok := decodeToken(tok)
	if !ok || seq2 != 11 || pass != 5 || holder != 2 {
		t.Errorf("token round trip: %v %v %v %v", seq2, pass, holder, ok)
	}
	nk := encodeNack(8)
	g, ok := decodeNack(nk)
	if !ok || g != 8 {
		t.Errorf("nack round trip: %v %v", g, ok)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	if _, _, _, ok := decodeData([]byte{kindData}); ok {
		t.Error("short data accepted")
	}
	d := encodeData(1, 1, []byte("zz"))
	if _, _, _, ok := decodeData(append(d, 0)); ok {
		t.Error("padded data accepted")
	}
	if _, _, _, ok := decodeToken([]byte{kindToken, 0}); ok {
		t.Error("short token accepted")
	}
	if _, ok := decodeNack([]byte{kindNack}); ok {
		t.Error("short nack accepted")
	}
}

func TestSuccessorWraps(t *testing.T) {
	members := ids.NewMembership(1, 5, 9)
	n1 := New(1, members, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
	n9 := New(9, members, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
	if got := n1.successor(); got != 5 {
		t.Errorf("successor(1) = %v", got)
	}
	if got := n9.successor(); got != 1 {
		t.Errorf("successor(9) = %v (wrap)", got)
	}
}

func TestStaleTokenRejected(t *testing.T) {
	members := ids.NewMembership(1, 2)
	var sent [][]byte
	n := New(2, members, DefaultConfig(), func(b []byte) { sent = append(sent, b) },
		func(ids.ProcessorID, []byte, int64) {})
	// First token visit at pass 1.
	n.HandlePacket(encodeToken(0, 1, 2), 0)
	passes := n.Stats().TokenPasses
	if passes != 1 {
		t.Fatalf("first token not accepted: %d passes", passes)
	}
	// A retransmission of the same token (same pass counter) must not
	// create a second holder.
	n.HandlePacket(encodeToken(0, 1, 2), 1)
	if n.Stats().TokenPasses != passes {
		t.Error("stale token re-accepted")
	}
	// The next legitimate visit (higher pass) is accepted.
	n.HandlePacket(encodeToken(0, 3, 2), 2)
	if n.Stats().TokenPasses != passes+1 {
		t.Error("fresh token rejected")
	}
}

func TestTokenForOtherHolderIgnored(t *testing.T) {
	members := ids.NewMembership(1, 2, 3)
	n := New(2, members, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
	n.HandlePacket(encodeToken(7, 1, 3), 0) // addressed to 3
	if n.Stats().TokenPasses != 0 {
		t.Error("accepted a token addressed elsewhere")
	}
	// But its sequence number still drives gap detection.
	if n.maxSeen != 7 {
		t.Errorf("maxSeen = %d, want 7", n.maxSeen)
	}
}

func TestEmptyMembershipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty membership accepted")
		}
	}()
	New(1, nil, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
}

func TestGarbageIgnored(t *testing.T) {
	members := ids.NewMembership(1, 2)
	n := New(2, members, DefaultConfig(), func([]byte) {}, func(ids.ProcessorID, []byte, int64) {})
	n.HandlePacket(nil, 0)
	n.HandlePacket([]byte{77}, 0)
	if n.Stats().Delivered != 0 {
		t.Error("garbage delivered")
	}
	if n.String() == "" {
		t.Error("empty String")
	}
}
