package harness

// Experiment E17: leader-assigned sequencing vs symmetric Lamport
// ordering at equal offered throughput.
//
// The symmetric (Lamport) total order delivers a message once the
// delivery horizon passes its timestamp, which requires hearing a
// larger timestamp from every group member — so a quiet member's
// heartbeat cadence sits directly on the delivery path. Leader mode
// (FTMP 1.3) removes that wait: the view's leader assigns each ordered
// message a dense sequence number and piggybacks the assignment on its
// data frames, so a follower delivers as soon as the message and its
// assignment arrive, independent of what the slowest member has said
// lately.
//
// E17 measures that difference end to end on the pipelined runtime:
// real UDP loopback, a write-ahead log with fsync=always on every
// replica, an open-loop generator offering the same rate to both modes,
// at 3 and 5 members. Latency is send-to-deliver, sampled at every
// replica (the table aggregates all replicas' samples: the order
// property is group-wide, not sender-local). A separate run kills the
// leader mid-stream and reports how long until a survivor delivers the
// first message sequenced by the new leader — the failover cost that
// leader mode introduces and the Lamport mode does not have.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// E17Result is one (mode, group size) measurement.
type E17Result struct {
	Mode           string
	Members        int
	Msgs           int
	OfferedRate    float64 // msg/s the generator scheduled
	AchievedRate   float64 // msg/s actually delivered at the sender
	Seconds        float64
	P50, P99, P999 float64 // send->deliver latency over all replicas, ms
	LeaderAssigned uint64  // sequences assigned (leader mode)
	FollowerNacks  uint64  // targeted gap NACKs (leader mode)
	Err            error
}

// E17FailoverResult is the leader-kill measurement.
type E17FailoverResult struct {
	Members    int
	SuspectMs  int
	FailoverMs float64 // leader kill -> first new-term delivery at a survivor
	Err        error
}

const (
	e17Group   = ids.GroupID(1700)
	e17Warmup  = 50 // unmeasured closed-loop messages to settle the group
	e17Payload = 64 // bytes per message (seq in the first 8)
)

// RunE17 measures one mode at one group size: an open-loop generator on
// replica 1 offering rate msg/s until msgs measured messages have been
// sent, with every replica durable (fsync=always) and every replica's
// send-to-deliver latency aggregated into one distribution.
func RunE17(order core.OrderMode, n, msgs int, rate float64) E17Result {
	res := E17Result{Mode: order.String(), Members: n, Msgs: msgs, OfferedRate: rate}
	fail := func(err error) E17Result { res.Err = err; return res }
	if n < 2 || rate <= 0 {
		return fail(fmt.Errorf("e17 needs n >= 2 and rate > 0"))
	}

	trace.ResetCounters()
	var members ids.Membership
	for i := 1; i <= n; i++ {
		members = members.Add(ids.ProcessorID(i))
	}

	type e17node struct {
		r    *runtime.Runner
		mesh *transport.UDPMesh
		log  *wal.Log
		dir  string
		got  atomic.Int64
	}
	nodes := make([]*e17node, n)

	sendTimes := make([]int64, e17Warmup+msgs)
	var latencies trace.Histogram
	var latMu sync.Mutex
	senderDone := make(chan struct{})
	var senderDoneOnce sync.Once

	defer func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.r != nil {
				nd.r.Close()
			}
			if nd.log != nil {
				_ = nd.log.Close()
			}
			if nd.dir != "" {
				_ = os.RemoveAll(nd.dir)
			}
		}
	}()

	total := e17Warmup + msgs
	for i := 0; i < n; i++ {
		nd := &e17node{}
		nodes[i] = nd
		p := ids.ProcessorID(i + 1)

		dir, err := os.MkdirTemp("", fmt.Sprintf("ftmp-e17-%s-p%d-", res.Mode, p))
		if err != nil {
			return fail(err)
		}
		nd.dir = dir
		dfs, err := wal.NewDirFS(dir)
		if err != nil {
			return fail(err)
		}
		nd.log, _, err = wal.Open(wal.Config{
			FS:     dfs,
			Policy: wal.SyncAlways,
			Now:    func() int64 { return time.Now().UnixNano() },
		})
		if err != nil {
			return fail(err)
		}

		cfg := core.DefaultConfig(p)
		cfg.Order = order
		cfg.PGMP.SuspectTimeout = 5_000_000_000 // no convictions under load
		i := i
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
			Deliver: func(d core.Delivery) {
				if len(d.Payload) != e17Payload {
					return
				}
				seq := int64(binary.BigEndian.Uint64(d.Payload))
				if seq >= e17Warmup {
					lat := float64(time.Now().UnixNano()-atomic.LoadInt64(&sendTimes[seq])) / 1e6
					latMu.Lock()
					latencies.Add(lat)
					latMu.Unlock()
				}
				if nd.got.Add(1) == int64(total) && i == 0 {
					senderDoneOnce.Do(func() { close(senderDone) })
				}
			},
		}
		opts := runtime.Options{
			RecvWorkers:   4,
			DeliveryDepth: 1024,
			SendShards:    2,
			WAL:           nd.log,
			WALBatch:      64,
		}
		nd.r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			nd.mesh = m
			return m, err
		}, opts)
		if err != nil {
			return fail(err)
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.mesh.AddPeer(b.mesh.LocalAddr()); err != nil {
				return fail(err)
			}
		}
	}
	for _, nd := range nodes {
		nd.r.Do(func(node *core.Node, now int64) {
			node.CreateGroup(now, e17Group, members)
		})
	}

	sender := nodes[0]
	send := func(seq int) error {
		payload := make([]byte, e17Payload)
		binary.BigEndian.PutUint64(payload, uint64(seq))
		var err error
		atomic.StoreInt64(&sendTimes[seq], time.Now().UnixNano())
		sender.r.Do(func(node *core.Node, now int64) {
			err = node.Multicast(now, e17Group, ids.ConnectionID{}, 0, payload)
		})
		return err
	}

	// Warmup is closed-loop: settle membership and warm the path.
	for seq := 0; seq < e17Warmup; seq++ {
		if err := send(seq); err != nil {
			return fail(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for sender.got.Load() < e17Warmup {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("warmup never delivered (%d/%d)", sender.got.Load(), e17Warmup))
		}
		time.Sleep(time.Millisecond)
	}

	// Open loop: message k goes out at start + k/rate whether or not
	// earlier ones have been delivered; rejected sends are retried on a
	// tight schedule but the clock never stops.
	start := time.Now()
	interval := time.Duration(float64(time.Second) / rate)
	for k := 0; k < msgs; k++ {
		due := start.Add(time.Duration(k) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		for send(e17Warmup+k) != nil {
			time.Sleep(100 * time.Microsecond)
		}
	}
	select {
	case <-senderDone:
	case <-time.After(120 * time.Second):
		return fail(fmt.Errorf("measured stream never completed (%d/%d)", sender.got.Load(), int64(total)))
	}
	elapsed := time.Since(start)

	// Let the other replicas finish before reading the distribution.
	deadline = time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, nd := range nodes[1:] {
			if nd.got.Load() < int64(total) {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, nd := range nodes {
		if err := nd.r.WALSync(); err != nil {
			return fail(err)
		}
		nd.r.Close()
	}

	res.Seconds = elapsed.Seconds()
	res.AchievedRate = float64(msgs) / res.Seconds
	latMu.Lock()
	res.P50 = latencies.P50()
	res.P99 = latencies.P99()
	res.P999 = latencies.P999()
	latMu.Unlock()
	res.LeaderAssigned = trace.Counter("core.leader_seq_assigned")
	res.FollowerNacks = trace.Counter("core.follower_gap_nacks")
	return res
}

// RunE17Failover streams from a follower, kills the leader mid-stream
// and measures kill -> first delivery of a message sequenced by the new
// leader, observed at the surviving non-sender replica. suspectMs is
// the conviction timeout, the dominant term of the gap.
func RunE17Failover(msgs int, rate float64, suspectMs int) E17FailoverResult {
	const n = 3
	res := E17FailoverResult{Members: n, SuspectMs: suspectMs}
	fail := func(err error) E17FailoverResult { res.Err = err; return res }

	trace.ResetCounters()
	members := ids.NewMembership(1, 2, 3)

	type e17node struct {
		r    *runtime.Runner
		mesh *transport.UDPMesh
		log  *wal.Log
		dir  string
		got  atomic.Int64
	}
	nodes := make([]*e17node, n)
	closed := make([]bool, n)

	// The witness (replica 3) notes the wall time of the first delivery
	// carrying a post-failover sequencing term.
	var newTermAt atomic.Int64

	defer func() {
		for i, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.r != nil && !closed[i] {
				nd.r.Close()
			}
			if nd.log != nil {
				_ = nd.log.Close()
			}
			if nd.dir != "" {
				_ = os.RemoveAll(nd.dir)
			}
		}
	}()

	total := e17Warmup + msgs
	for i := 0; i < n; i++ {
		nd := &e17node{}
		nodes[i] = nd
		p := ids.ProcessorID(i + 1)

		dir, err := os.MkdirTemp("", fmt.Sprintf("ftmp-e17-failover-p%d-", p))
		if err != nil {
			return fail(err)
		}
		nd.dir = dir
		dfs, err := wal.NewDirFS(dir)
		if err != nil {
			return fail(err)
		}
		nd.log, _, err = wal.Open(wal.Config{
			FS:     dfs,
			Policy: wal.SyncAlways,
			Now:    func() int64 { return time.Now().UnixNano() },
		})
		if err != nil {
			return fail(err)
		}

		cfg := core.DefaultConfig(p)
		cfg.Order = core.OrderLeader
		cfg.PGMP.SuspectTimeout = int64(suspectMs) * 1_000_000
		i := i
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {},
			Deliver: func(d core.Delivery) {
				if i == 2 && d.OrderEpoch > 0 && newTermAt.Load() == 0 {
					newTermAt.CompareAndSwap(0, time.Now().UnixNano())
				}
				if len(d.Payload) != e17Payload {
					return
				}
				nd.got.Add(1)
			},
		}
		opts := runtime.Options{
			RecvWorkers:   4,
			DeliveryDepth: 1024,
			SendShards:    2,
			WAL:           nd.log,
			WALBatch:      64,
		}
		nd.r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			nd.mesh = m
			return m, err
		}, opts)
		if err != nil {
			return fail(err)
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.mesh.AddPeer(b.mesh.LocalAddr()); err != nil {
				return fail(err)
			}
		}
	}
	for _, nd := range nodes {
		nd.r.Do(func(node *core.Node, now int64) {
			node.CreateGroup(now, e17Group, members)
		})
	}

	// Replica 2 sends: it survives the kill (and, as the lowest
	// surviving identifier, takes over sequencing).
	sender := nodes[1]
	send := func(seq int) error {
		payload := make([]byte, e17Payload)
		binary.BigEndian.PutUint64(payload, uint64(seq))
		var err error
		sender.r.Do(func(node *core.Node, now int64) {
			err = node.Multicast(now, e17Group, ids.ConnectionID{}, 0, payload)
		})
		return err
	}

	for seq := 0; seq < e17Warmup; seq++ {
		if err := send(seq); err != nil {
			return fail(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for sender.got.Load() < e17Warmup {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("warmup never delivered (%d/%d)", sender.got.Load(), e17Warmup))
		}
		time.Sleep(time.Millisecond)
	}

	// Open loop through the kill: a third of the way in, the leader
	// (replica 1) fail-stops. The generator keeps offering; sends the
	// wedged group rejects are retried until recovery admits them.
	start := time.Now()
	interval := time.Duration(float64(time.Second) / rate)
	killAt := msgs / 3
	var tKill int64
	for k := 0; k < msgs; k++ {
		if k == killAt {
			tKill = time.Now().UnixNano()
			nodes[0].r.Close()
			closed[0] = true
		}
		due := start.Add(time.Duration(k) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		for send(e17Warmup+k) != nil {
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Survivors must finish the stream (the witness too).
	deadline = time.Now().Add(60 * time.Second)
	for sender.got.Load() < int64(total) || nodes[2].got.Load() < int64(total) {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("post-failover stream incomplete (%d and %d of %d)",
				sender.got.Load(), nodes[2].got.Load(), total))
		}
		time.Sleep(time.Millisecond)
	}
	for i, nd := range nodes {
		if closed[i] {
			continue
		}
		if err := nd.r.WALSync(); err != nil {
			return fail(err)
		}
		nd.r.Close()
		closed[i] = true
	}

	at := newTermAt.Load()
	if at == 0 || tKill == 0 {
		return fail(fmt.Errorf("no new-term delivery observed after the kill"))
	}
	res.FailoverMs = float64(at-tKill) / 1e6
	return res
}

// E17LeaderLatency regenerates experiment E17's latency table at 3 and
// 5 members under the same offered load. modes selects what runs:
// "both" (the comparison EXPERIMENTS.md records, with the p99 ratio),
// "lamport" or "leader" alone.
func E17LeaderLatency(msgs int, rate float64, modes string) *trace.Table {
	tb := trace.NewTable(
		fmt.Sprintf("E17: leader-assigned sequencing vs Lamport order, open-loop %.0f msg/s offered (durable replicas, UDP loopback, fsync=always, all-replica latency)", rate),
		"mode", "msgs", "offered/s", "achieved/s", "p50 ms", "p99 ms", "p999 ms", "assigned", "gap nacks", "p99 ratio")
	row := func(r E17Result, ratio string) {
		if r.Err != nil {
			tb.AddRow(fmt.Sprintf("%s (%d)", r.Mode, r.Members), r.Msgs,
				"FAILED: "+r.Err.Error(), "-", "-", "-", "-", "-", "-", "-")
			return
		}
		tb.AddRow(fmt.Sprintf("%s (%d)", r.Mode, r.Members), r.Msgs,
			fmt.Sprintf("%.0f", r.OfferedRate),
			fmt.Sprintf("%.0f", r.AchievedRate),
			fmt.Sprintf("%.3f", r.P50),
			fmt.Sprintf("%.3f", r.P99),
			fmt.Sprintf("%.3f", r.P999),
			r.LeaderAssigned, r.FollowerNacks, ratio)
	}
	for _, n := range []int{3, 5} {
		var lam, led E17Result
		if modes != "leader" {
			lam = RunE17(core.OrderLamport, n, msgs, rate)
			row(lam, "1.00")
		}
		if modes != "lamport" {
			led = RunE17(core.OrderLeader, n, msgs, rate)
			ratio := "-"
			if modes == "both" && lam.Err == nil && led.Err == nil && lam.P99 > 0 {
				ratio = fmt.Sprintf("%.2f", led.P99/lam.P99)
			}
			row(led, ratio)
		}
	}
	return tb
}

// E17Failover regenerates experiment E17's failover table.
func E17Failover(msgs int, rate float64, suspectMs int) *trace.Table {
	tb := trace.NewTable(
		"E17: leader-kill failover (3 durable replicas, follower keeps sending through the kill)",
		"members", "suspect ms", "kill -> first new-term delivery ms")
	r := RunE17Failover(msgs, rate, suspectMs)
	if r.Err != nil {
		tb.AddRow(r.Members, r.SuspectMs, "FAILED: "+r.Err.Error())
		return tb
	}
	tb.AddRow(r.Members, r.SuspectMs, fmt.Sprintf("%.1f", r.FailoverMs))
	return tb
}
