package harness

import (
	"encoding/binary"

	"ftmp/internal/baseline/sequencer"
	"ftmp/internal/baseline/tokenring"
	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// The experiment group identifier used by all core experiments.
const expGroup = ids.GroupID(1000)

// SeedOffset is added to every experiment's base seed; zero (the
// default) reproduces the runs recorded in EXPERIMENTS.md, any other
// value re-runs the suite on fresh randomness (ftmpbench -seed).
var SeedOffset int64

// Protocol names the total-order protocols the comparisons cover.
type Protocol string

// Comparison protocols.
const (
	ProtoFTMP      Protocol = "ftmp"
	ProtoSequencer Protocol = "sequencer"
	ProtoTokenRing Protocol = "tokenring"
)

// payload builds an experiment payload of the given size whose first
// eight bytes carry the message index.
func payload(index int, size int) []byte {
	if size < 8 {
		size = 8
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint64(b, uint64(index))
	return b
}

func payloadIndex(b []byte) int {
	if len(b) < 8 {
		return -1
	}
	return int(binary.BigEndian.Uint64(b))
}

// latencyCollector tracks until-delivered-everywhere latency per message.
type latencyCollector struct {
	n         int
	expect    int
	sendTimes map[int]int64
	seen      map[int]int
	hist      *trace.Histogram
	total     int
	complete  int
}

func newLatencyCollector(groupSize, expect int) *latencyCollector {
	return &latencyCollector{
		n:         groupSize,
		expect:    expect,
		sendTimes: make(map[int]int64),
		seen:      make(map[int]int),
		hist:      &trace.Histogram{},
	}
}

func (lc *latencyCollector) sent(i int, now int64) {
	lc.sendTimes[i] = now
	lc.total++
}

func (lc *latencyCollector) delivered(i int, now int64) {
	lc.seen[i]++
	if lc.seen[i] == lc.n {
		lc.hist.AddNs(now - lc.sendTimes[i])
		lc.complete++
	}
}

func (lc *latencyCollector) done() bool { return lc.complete >= lc.expect }

// RunLatency measures totally-ordered delivery latency (send until
// delivered at every member) for one protocol: msgs messages of size
// bytes from a single sender, paced interval apart (one in flight for
// the E1 configuration).
func RunLatency(proto Protocol, seed int64, n, msgs, size int, interval simnet.Time, net simnet.Config) *trace.Histogram {
	switch proto {
	case ProtoFTMP:
		return runFTMPLatency(seed, n, msgs, size, interval, net, nil)
	case ProtoSequencer:
		return runBaselineLatency(true, seed, n, msgs, size, interval, net)
	case ProtoTokenRing:
		return runBaselineLatency(false, seed, n, msgs, size, interval, net)
	default:
		panic("unknown protocol " + string(proto))
	}
}

func runFTMPLatency(seed int64, n, msgs, size int, interval simnet.Time, netCfg simnet.Config, configure func(ids.ProcessorID, *core.Config)) *trace.Histogram {
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := NewCluster(Options{Seed: seed, Net: netCfg, Configure: configure}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	lc := newLatencyCollector(n, msgs)
	for _, p := range procs {
		h := c.Host(p)
		h.OnDeliver = func(d core.Delivery, now int64) {
			if i := payloadIndex(d.Payload); i >= 0 {
				lc.delivered(i, now)
			}
		}
	}
	c.RunFor(100 * simnet.Millisecond) // settle
	sender := c.Host(procs[0])
	var sendNext func(i int)
	sendNext = func(i int) {
		if i >= msgs {
			return
		}
		now := int64(c.Net.Now())
		lc.sent(i, now)
		_ = sender.Node.Multicast(now, expGroup, ids.ConnectionID{}, 0, payload(i, size))
		c.Net.At(c.Net.Now()+interval, func() { sendNext(i + 1) })
	}
	c.Net.At(c.Net.Now(), func() { sendNext(0) })
	c.RunUntil(c.Net.Now()+simnet.Time(msgs+200)*interval+60*simnet.Second, lc.done)
	return lc.hist
}

func runBaselineLatency(useSequencer bool, seed int64, n, msgs, size int, interval simnet.Time, netCfg simnet.Config) *trace.Histogram {
	net := simnet.New(seed, netCfg)
	lc := newLatencyCollector(n, msgs)
	type protoNode interface {
		Multicast(now int64, payload []byte) error
		HandlePacket(data []byte, now int64)
		Tick(now int64)
	}
	var members ids.Membership
	for i := 1; i <= n; i++ {
		members = members.Add(ids.ProcessorID(i))
	}
	const addr = simnet.Addr(900)
	nodes := make(map[ids.ProcessorID]protoNode)
	for _, p := range members {
		p := p
		transmit := func(data []byte) { net.Send(simnet.NodeID(p), addr, data) }
		deliver := func(src ids.ProcessorID, b []byte, now int64) {
			if i := payloadIndex(b); i >= 0 {
				lc.delivered(i, now)
			}
		}
		var node protoNode
		if useSequencer {
			node = sequencer.New(p, members, sequencer.DefaultConfig(), transmit, deliver)
		} else {
			node = tokenring.New(p, members, tokenring.DefaultConfig(), transmit, deliver)
		}
		nodes[p] = node
		net.AddNode(simnet.NodeID(p), simnet.EndpointFunc{
			OnPacket: func(data []byte, _ simnet.Addr, now int64) { node.HandlePacket(data, now) },
			OnTick:   func(now int64) { node.Tick(now) },
		}, simnet.Millisecond)
		net.Subscribe(simnet.NodeID(p), addr)
	}
	net.Run(100 * simnet.Millisecond)
	sender := nodes[members[0]]
	if !useSequencer {
		// Fairness: in a ring, the lowest id starts with the token; let
		// a non-privileged member send instead.
		sender = nodes[members[len(members)-1]]
	}
	var sendNext func(i int)
	sendNext = func(i int) {
		if i >= msgs {
			return
		}
		now := int64(net.Now())
		lc.sent(i, now)
		_ = sender.Multicast(now, payload(i, size))
		net.At(net.Now()+interval, func() { sendNext(i + 1) })
	}
	net.At(net.Now(), func() { sendNext(0) })
	net.RunUntil(net.Now()+simnet.Time(msgs+200)*interval+60*simnet.Second, lc.done)
	return lc.hist
}

// E1Latency regenerates experiment E1: delivery latency versus group
// size for FTMP, the fixed sequencer and the token ring.
func E1Latency(sizes []int, msgs int) *trace.Table {
	tb := trace.NewTable(
		"E1: totally-ordered delivery latency vs group size (ms; send -> delivered at all members)",
		"n", "ftmp mean", "ftmp p99", "seq mean", "seq p99", "ring mean", "ring p99")
	for _, n := range sizes {
		net := simnet.NewConfig()
		f := RunLatency(ProtoFTMP, SeedOffset+100+int64(n), n, msgs, 64, 5*simnet.Millisecond, net)
		s := RunLatency(ProtoSequencer, SeedOffset+100+int64(n), n, msgs, 64, 5*simnet.Millisecond, net)
		r := RunLatency(ProtoTokenRing, SeedOffset+100+int64(n), n, msgs, 64, 5*simnet.Millisecond, net)
		tb.AddRow(n,
			trace.Ms(f.Mean()), trace.Ms(f.Percentile(99)),
			trace.Ms(s.Mean()), trace.Ms(s.Percentile(99)),
			trace.Ms(r.Mean()), trace.Ms(r.Percentile(99)))
	}
	return tb
}

// ThroughputResult is one protocol's measured throughput.
type ThroughputResult struct {
	Msgs     int
	Duration simnet.Time
	MsgsPerS float64
	MBPerS   float64
}

// RunThroughput measures aggregate ordered throughput: every member
// streams msgs/n messages of the given size, paced tightly; the run
// ends when every member has delivered all of them.
func RunThroughput(proto Protocol, seed int64, n, msgs, size int, net simnet.Config) ThroughputResult {
	interval := 200 * simnet.Microsecond
	var start, end simnet.Time
	switch proto {
	case ProtoFTMP:
		procs := make([]ids.ProcessorID, n)
		for i := range procs {
			procs[i] = ids.ProcessorID(i + 1)
		}
		c := NewCluster(Options{Seed: seed, Net: net}, procs...)
		m := ids.NewMembership(procs...)
		c.CreateGroup(expGroup, m)
		delivered := make(map[ids.ProcessorID]int)
		for _, p := range procs {
			p := p
			c.Host(p).OnDeliver = func(d core.Delivery, now int64) { delivered[p]++ }
		}
		c.RunFor(100 * simnet.Millisecond)
		start = c.Net.Now()
		per := msgs / n
		for pi, p := range procs {
			p, pi := p, pi
			var send func(i int)
			send = func(i int) {
				if i >= per {
					return
				}
				_ = c.Host(p).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(pi*per+i, size))
				c.Net.At(c.Net.Now()+interval, func() { send(i + 1) })
			}
			c.Net.At(start, func() { send(0) })
		}
		total := per * n
		c.RunUntil(start+10*simnet.Second*simnet.Time(1+msgs/1000), func() bool {
			for _, p := range procs {
				if delivered[p] < total {
					return false
				}
			}
			return true
		})
		end = c.Net.Now()
	default:
		useSeq := proto == ProtoSequencer
		netw := simnet.New(seed, net)
		var members ids.Membership
		for i := 1; i <= n; i++ {
			members = members.Add(ids.ProcessorID(i))
		}
		type protoNode interface {
			Multicast(now int64, payload []byte) error
			HandlePacket(data []byte, now int64)
			Tick(now int64)
		}
		const addr = simnet.Addr(901)
		nodes := make(map[ids.ProcessorID]protoNode)
		delivered := make(map[ids.ProcessorID]int)
		for _, p := range members {
			p := p
			transmit := func(data []byte) { netw.Send(simnet.NodeID(p), addr, data) }
			deliver := func(src ids.ProcessorID, b []byte, now int64) { delivered[p]++ }
			var node protoNode
			if useSeq {
				node = sequencer.New(p, members, sequencer.DefaultConfig(), transmit, deliver)
			} else {
				node = tokenring.New(p, members, tokenring.DefaultConfig(), transmit, deliver)
			}
			nodes[p] = node
			netw.AddNode(simnet.NodeID(p), simnet.EndpointFunc{
				OnPacket: func(data []byte, _ simnet.Addr, now int64) { node.HandlePacket(data, now) },
				OnTick:   func(now int64) { node.Tick(now) },
			}, simnet.Millisecond)
			netw.Subscribe(simnet.NodeID(p), addr)
		}
		netw.Run(100 * simnet.Millisecond)
		start = netw.Now()
		per := msgs / n
		for pi, p := range members {
			p, pi := p, pi
			var send func(i int)
			send = func(i int) {
				if i >= per {
					return
				}
				_ = nodes[p].Multicast(int64(netw.Now()), payload(pi*per+i, size))
				netw.At(netw.Now()+interval, func() { send(i + 1) })
			}
			netw.At(start, func() { send(0) })
		}
		total := per * n
		netw.RunUntil(start+10*simnet.Second*simnet.Time(1+msgs/1000), func() bool {
			for _, p := range members {
				if delivered[p] < total {
					return false
				}
			}
			return true
		})
		end = netw.Now()
	}
	dur := end - start
	if dur <= 0 {
		dur = 1
	}
	secs := float64(dur) / float64(simnet.Second)
	return ThroughputResult{
		Msgs:     msgs,
		Duration: dur,
		MsgsPerS: float64(msgs) / secs,
		MBPerS:   float64(msgs) * float64(size) / secs / 1e6,
	}
}

// E2Throughput regenerates experiment E2: ordered throughput versus
// payload size (n = 4 members, all sending).
func E2Throughput(sizes []int, msgs int) *trace.Table {
	tb := trace.NewTable(
		"E2: ordered throughput vs payload size (n=4, all members sending)",
		"payload B", "ftmp msg/s", "ftmp MB/s", "seq msg/s", "ring msg/s")
	for _, size := range sizes {
		f := RunThroughput(ProtoFTMP, SeedOffset+200, 4, msgs, size, simnet.NewConfig())
		s := RunThroughput(ProtoSequencer, SeedOffset+200, 4, msgs, size, simnet.NewConfig())
		r := RunThroughput(ProtoTokenRing, SeedOffset+200, 4, msgs, size, simnet.NewConfig())
		tb.AddRow(size, f.MsgsPerS, f.MBPerS, s.MsgsPerS, r.MsgsPerS)
	}
	return tb
}

// E3Result is one heartbeat-interval sample: the paper's latency versus
// network-traffic compromise (section 5).
type E3Result struct {
	HeartbeatMs float64
	MeanMs      float64
	P99Ms       float64
	PacketsPerS float64
}

// RunE3Heartbeat measures delivery latency and network packet rate for
// one heartbeat interval, under a sparse workload where ordering must
// wait on heartbeats from idle members.
func RunE3Heartbeat(hb simnet.Time, seed int64) E3Result {
	n, msgs := 4, 30
	netCfg := simnet.NewConfig()
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{
		Seed: seed, Net: netCfg,
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.HeartbeatInterval = int64(hb)
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	lc := newLatencyCollector(n, msgs)
	for _, p := range procs {
		c.Host(p).OnDeliver = func(d core.Delivery, now int64) {
			if i := payloadIndex(d.Payload); i >= 0 {
				lc.delivered(i, now)
			}
		}
	}
	c.RunFor(200 * simnet.Millisecond)
	startPkts := c.Net.Stats().PacketsSent
	start := c.Net.Now()
	// Sparse single sender: one message every 53ms (co-prime with every
	// heartbeat interval in the sweep, so the send phase drifts across
	// the heartbeat cycle), making delivery latency depend on waiting
	// for the idle members' heartbeats.
	const gap = 53 * simnet.Millisecond
	var send func(i int)
	send = func(i int) {
		if i >= msgs {
			return
		}
		now := int64(c.Net.Now())
		lc.sent(i, now)
		_ = c.Host(1).Node.Multicast(now, expGroup, ids.ConnectionID{}, 0, payload(i, 64))
		c.Net.At(c.Net.Now()+gap, func() { send(i + 1) })
	}
	c.Net.At(start, func() { send(0) })
	c.RunUntil(start+simnet.Time(msgs)*gap+30*simnet.Second, lc.done)
	dur := float64(c.Net.Now()-start) / float64(simnet.Second)
	pkts := float64(c.Net.Stats().PacketsSent - startPkts)
	return E3Result{
		HeartbeatMs: float64(hb) / 1e6,
		MeanMs:      trace.Ms(lc.hist.Mean()),
		P99Ms:       trace.Ms(lc.hist.Percentile(99)),
		PacketsPerS: pkts / dur,
	}
}

// E3Heartbeat regenerates experiment E3: the heartbeat interval
// compromise between message latency and network traffic.
func E3Heartbeat(intervals []simnet.Time) *trace.Table {
	tb := trace.NewTable(
		"E3: heartbeat interval vs latency and network traffic (paper section 5)",
		"hb ms", "mean ms", "p99 ms", "pkts/s")
	for i, hb := range intervals {
		r := RunE3Heartbeat(hb, SeedOffset+300+int64(i))
		tb.AddRow(r.HeartbeatMs, r.MeanMs, r.P99Ms, r.PacketsPerS)
	}
	return tb
}

// E4Result is one failover measurement.
type E4Result struct {
	SuspectTimeoutMs float64
	GroupSize        int
	DetectMs         float64 // crash -> first conviction at a survivor
	NewViewMs        float64 // crash -> new membership at all survivors
}

// RunE4Failover crashes one member and measures detection and recovery.
func RunE4Failover(n int, suspectTimeout simnet.Time, seed int64) E4Result {
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.PGMP.SuspectTimeout = int64(suspectTimeout)
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	c.RunFor(200 * simnet.Millisecond)

	victim := procs[n-1]
	survivors := m.Remove(victim)
	crashAt := c.Net.Now()
	c.Crash(victim)

	detectAt := simnet.Time(-1)
	c.RunUntil(crashAt+60*simnet.Second, func() bool {
		if detectAt < 0 {
			for _, p := range survivors {
				for _, f := range c.Host(p).Faults {
					if f.Convicted.Contains(victim) {
						detectAt = c.Net.Now()
					}
				}
			}
		}
		for _, p := range survivors {
			v, ok := c.Host(p).LastView(expGroup)
			if !ok || !v.Members.Equal(survivors) {
				return false
			}
		}
		return true
	})
	viewAt := c.Net.Now()
	return E4Result{
		SuspectTimeoutMs: float64(suspectTimeout) / 1e6,
		GroupSize:        n,
		DetectMs:         float64(detectAt-crashAt) / 1e6,
		NewViewMs:        float64(viewAt-crashAt) / 1e6,
	}
}

// E4Failover regenerates experiment E4: fault detection and membership
// change latency versus the suspect timeout and group size.
func E4Failover(sizes []int, timeouts []simnet.Time) *trace.Table {
	tb := trace.NewTable(
		"E4: crash -> conviction and new membership (paper section 7.2)",
		"n", "timeout ms", "detect ms", "new view ms")
	for _, n := range sizes {
		for i, to := range timeouts {
			r := RunE4Failover(n, to, SeedOffset+400+int64(i)+int64(n)*10)
			tb.AddRow(r.GroupSize, r.SuspectTimeoutMs, r.DetectMs, r.NewViewMs)
		}
	}
	return tb
}
