package harness

import (
	"reflect"
	"testing"

	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// Protocol-level fault-interaction schedules built on the simnet
// primitives: the group must degrade gracefully — survivors keep a
// consistent membership and delivery order — under crash/partition/heal
// compositions, not just under the single-crash schedule of E4.

const faultGroup = ids.GroupID(700)

// survivorsConsistent asserts every listed processor settled on exactly
// the members membership and that all of them delivered the same
// payload sequence for the group.
func survivorsConsistent(t *testing.T, c *Cluster, procs []ids.ProcessorID, members ids.Membership) {
	t.Helper()
	for _, p := range procs {
		if got := c.Host(p).Node.Members(faultGroup); !got.Equal(members) {
			t.Fatalf("processor %v members = %v, want %v", p, got, members)
		}
	}
	ref := c.Host(procs[0]).DeliveredPayloads(faultGroup)
	for _, p := range procs[1:] {
		if got := c.Host(p).DeliveredPayloads(faultGroup); !reflect.DeepEqual(got, ref) {
			t.Fatalf("delivery divergence: %v has %v, %v has %v", procs[0], ref, p, got)
		}
	}
}

// A member that crashes while unreachable behind a partition is
// convicted by the majority component; healing the partition afterwards
// must not disturb the settled view or the delivery order.
func TestCrashWhilePartitionedThenHeal(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{Seed: 41, Net: simnet.NewConfig()}, procs...)
	c.CreateGroup(faultGroup, ids.NewMembership(procs...))
	c.Multicast(1, faultGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(faultGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
	c.Crash(4)
	survivors := []ids.ProcessorID{1, 2, 3}
	want := ids.NewMembership(1, 2, 3)
	if !c.RunUntil(c.Net.Now()+2*simnet.Second, func() bool {
		for _, p := range survivors {
			if !c.Host(p).Node.Members(faultGroup).Equal(want) {
				return false
			}
		}
		return true
	}) {
		t.Fatal("majority never convicted the partitioned crashed member")
	}

	settled := viewCounts(c, survivors)
	c.Net.Heal()
	c.Multicast(2, faultGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(faultGroup, want, 2)) {
		t.Fatal("post-heal multicast did not deliver to the survivors")
	}
	c.RunFor(200 * simnet.Millisecond)
	survivorsConsistent(t, c, survivors, want)
	assertNoReadmission(t, c, survivors, settled, 4)
}

// viewCounts snapshots how many views each processor has seen, so later
// assertions can scan only the views recorded after a settling point.
func viewCounts(c *Cluster, procs []ids.ProcessorID) map[ids.ProcessorID]int {
	out := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		out[p] = len(c.Host(p).Views)
	}
	return out
}

// assertNoReadmission fails if any view recorded after the snapshot
// re-admits the given processor.
func assertNoReadmission(t *testing.T, c *Cluster, procs []ids.ProcessorID, since map[ids.ProcessorID]int, dead ids.ProcessorID) {
	t.Helper()
	for _, p := range procs {
		for _, v := range c.Host(p).Views[since[p]:] {
			if v.Group == faultGroup && v.Joined.Contains(dead) {
				t.Fatalf("processor %v re-admitted %v: %+v", p, dead, v)
			}
		}
	}
}

// A convicted member that restarts with its pre-crash state (simnet
// Restart keeps the endpoint) is a stale zombie under the fail-stop
// model: the survivors must keep ignoring it — no re-admission, no
// stalled ordering, no delivery divergence.
func TestBackToBackCrashRestartZombie(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{Seed: 43, Net: simnet.NewConfig()}, procs...)
	c.CreateGroup(faultGroup, ids.NewMembership(procs...))
	c.Multicast(1, faultGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(faultGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	c.Crash(3)
	survivors := []ids.ProcessorID{1, 2, 4}
	want := ids.NewMembership(1, 2, 4)
	if !c.RunUntil(c.Net.Now()+2*simnet.Second, func() bool {
		for _, p := range survivors {
			if !c.Host(p).Node.Members(faultGroup).Equal(want) {
				return false
			}
		}
		return true
	}) {
		t.Fatal("survivors never convicted the crashed member")
	}

	// The zombie returns, believing it is still a member of the old view.
	settled := viewCounts(c, survivors)
	c.Net.Restart(3)
	c.RunFor(100 * simnet.Millisecond)
	c.Multicast(1, faultGroup, "b")
	c.Multicast(4, faultGroup, "c")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(faultGroup, want, 3)) {
		t.Fatal("ordering stalled after the zombie returned")
	}
	c.RunFor(200 * simnet.Millisecond)
	survivorsConsistent(t, c, survivors, want)
	assertNoReadmission(t, c, survivors, settled, 3)
}

// Restart during an active partition: the zombie comes back while still
// cut off, convicts the unreachable majority in its own split view, and
// after the heal the majority component must remain untouched by the
// minority's divergent history.
func TestRestartDuringPartitionThenHeal(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{Seed: 47, Net: simnet.NewConfig()}, procs...)
	c.CreateGroup(faultGroup, ids.NewMembership(procs...))
	c.Multicast(1, faultGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(faultGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
	c.Crash(4)
	c.RunFor(20 * simnet.Millisecond)
	c.Net.Restart(4) // back up, still partitioned
	survivors := []ids.ProcessorID{1, 2, 3}
	want := ids.NewMembership(1, 2, 3)
	if !c.RunUntil(c.Net.Now()+2*simnet.Second, func() bool {
		for _, p := range survivors {
			if !c.Host(p).Node.Members(faultGroup).Equal(want) {
				return false
			}
		}
		return true
	}) {
		t.Fatal("majority never converged to the 3-view")
	}

	settled := viewCounts(c, survivors)
	c.Net.Heal()
	c.RunFor(300 * simnet.Millisecond)
	c.Multicast(3, faultGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(faultGroup, want, 2)) {
		t.Fatal("majority ordering stalled after healing around the stale minority")
	}
	c.RunFor(200 * simnet.Millisecond)
	survivorsConsistent(t, c, survivors, want)
	assertNoReadmission(t, c, survivors, settled, 4)
}
