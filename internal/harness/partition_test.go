package harness

import (
	"errors"
	"testing"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
)

// Primary-partition membership under network splits: with
// PGMP.PrimaryPartition enabled, a view is installed only if it holds a
// quorum (majority, lowest-id tiebreak on an exact even split) of the
// previous installed view. The losing component wedges: no new view, no
// deliveries, application sends refused with core.ErrWedged.

const partGroup = ids.GroupID(800)

func quorumCluster(seed int64, procs ...ids.ProcessorID) *Cluster {
	c := NewCluster(Options{
		Seed: seed,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.PGMP.PrimaryPartition = true
		},
	}, procs...)
	c.CreateGroup(partGroup, ids.NewMembership(procs...))
	return c
}

func wedged(c *Cluster, p ids.ProcessorID) bool {
	st, ok := c.Host(p).Node.Status(partGroup)
	return ok && st.Wedged
}

func installedExactly(c *Cluster, p ids.ProcessorID, want ids.Membership) bool {
	st, ok := c.Host(p).Node.Status(partGroup)
	return ok && !st.Wedged && st.Members.Equal(want)
}

// assertWedgeRefusesSends checks the wedged side commits nothing: sends
// are refused with ErrWedged and the delivery log does not advance.
func assertWedgeRefusesSends(t *testing.T, c *Cluster, procs ...ids.ProcessorID) {
	t.Helper()
	marks := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		marks[p] = len(c.Host(p).Deliveries)
		err := c.Multicast(p, partGroup, "minority-write")
		if !errors.Is(err, core.ErrWedged) {
			t.Fatalf("Multicast from wedged %v = %v, want ErrWedged", p, err)
		}
	}
	c.RunFor(500 * simnet.Millisecond)
	for _, p := range procs {
		if got := len(c.Host(p).Deliveries); got != marks[p] {
			t.Fatalf("wedged %v delivered %d new messages", p, got-marks[p])
		}
	}
}

// An exact 2/2 split: the side holding the lowest member id of the
// previous view stays primary, the other wedges — deterministically.
func TestEvenSplitTiebreakTwoTwo(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := quorumCluster(53, procs...)
	c.Multicast(1, partGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(partGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	c.Net.Partition([]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4})
	winners := ids.NewMembership(1, 2)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		return installedExactly(c, 1, winners) && installedExactly(c, 2, winners) &&
			wedged(c, 3) && wedged(c, 4)
	}) {
		s3, _ := c.Host(3).Node.Status(partGroup)
		t.Fatalf("even split did not resolve: 1=%v 3=%+v", c.Host(1).Node.Members(partGroup), s3)
	}

	// Exactly one side is primary; the primary keeps committing, the
	// wedged side refuses and freezes.
	c.Multicast(2, partGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(partGroup, winners, 2)) {
		t.Fatal("primary side stopped committing")
	}
	assertWedgeRefusesSends(t, c, 3, 4)
	survivorsSame(t, c, []ids.ProcessorID{1, 2})
}

// An exact 3/3 split of a six-member group resolves the same way.
func TestEvenSplitTiebreakThreeThree(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4, 5, 6}
	c := quorumCluster(59, procs...)
	c.Multicast(1, partGroup, "a")
	if !c.RunUntil(2*simnet.Second, c.AllDelivered(partGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	// The side WITHOUT processor 1 proposes {4,5,6}: exactly half of
	// {1..6} and missing the lowest id — it must wedge.
	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5, 6})
	winners := ids.NewMembership(1, 2, 3)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			if !installedExactly(c, p, winners) {
				return false
			}
		}
		return wedged(c, 4) && wedged(c, 5) && wedged(c, 6)
	}) {
		t.Fatalf("3/3 split did not resolve: 1=%v wedged4=%v", c.Host(1).Node.Members(partGroup), wedged(c, 4))
	}
	c.Multicast(3, partGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(partGroup, winners, 2)) {
		t.Fatal("primary side stopped committing")
	}
	assertWedgeRefusesSends(t, c, 4, 5, 6)
	survivorsSame(t, c, []ids.ProcessorID{1, 2, 3})
}

// Cascading partitions: the primary component shrinks twice. Quorum is
// judged against the LAST INSTALLED view, so {1,2} of the installed
// {1,2,3} is a majority even though it is a minority of the original
// five — and there is still exactly one primary.
func TestCascadingPartitions(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4, 5}
	c := quorumCluster(61, procs...)
	c.Multicast(1, partGroup, "a")
	if !c.RunUntil(2*simnet.Second, c.AllDelivered(partGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	// First cut: {1,2,3} | {4,5}. 3/5 majority installs; {4,5} wedges.
	c.Net.Partition([]simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})
	first := ids.NewMembership(1, 2, 3)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			if !installedExactly(c, p, first) {
				return false
			}
		}
		return wedged(c, 4) && wedged(c, 5)
	}) {
		t.Fatal("first cut did not resolve")
	}

	// Second cut inside the primary: {1,2} | {3}. 2/3 of the installed
	// view is a majority; {3} wedges.
	c.Net.Partition([]simnet.NodeID{1, 2}, []simnet.NodeID{3}, []simnet.NodeID{4, 5})
	second := ids.NewMembership(1, 2)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		return installedExactly(c, 1, second) && installedExactly(c, 2, second) && wedged(c, 3)
	}) {
		s1, _ := c.Host(1).Node.Status(partGroup)
		t.Fatalf("second cut did not resolve: 1=%+v wedged3=%v", s1, wedged(c, 3))
	}

	// Exactly one primary: {1,2} commits, every other component refuses.
	c.Multicast(1, partGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(partGroup, second, 2)) {
		t.Fatal("twice-shrunk primary stopped committing")
	}
	assertWedgeRefusesSends(t, c, 3, 4, 5)
	survivorsSame(t, c, []ids.ProcessorID{1, 2})
}

// survivorsSame asserts identical delivery sequences across procs.
func survivorsSame(t *testing.T, c *Cluster, procs []ids.ProcessorID) {
	t.Helper()
	ref := c.Host(procs[0]).DeliveredPayloads(partGroup)
	for _, p := range procs[1:] {
		got := c.Host(p).DeliveredPayloads(partGroup)
		if len(got) != len(ref) {
			t.Fatalf("delivery divergence: %v has %v, %v has %v", procs[0], ref, p, got)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("delivery divergence at %d: %v has %v, %v has %v", i, procs[0], ref, p, got)
			}
		}
	}
}

// An asymmetric failure: processor 1 can hear the others, but nothing it
// sends gets through. The majority convicts the mute member and moves
// on; the mute member — seeing itself excluded from the majority's
// proposals — steps aside rather than forming a second primary.
func TestOneWayPartitionNoSplitBrain(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3}
	c := quorumCluster(67, procs...)
	c.Multicast(1, partGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(partGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	c.Net.PartitionOneWay(1, 2)
	c.Net.PartitionOneWay(1, 3)
	want := ids.NewMembership(2, 3)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		return installedExactly(c, 2, want) && installedExactly(c, 3, want)
	}) {
		t.Fatal("majority never excluded the mute member")
	}

	// The majority keeps committing; the mute member must not deliver
	// anything the majority ordered after the exclusion (it either
	// wedged or tore down awaiting rejoin — both commit nothing).
	before := len(c.Host(1).Deliveries)
	c.Multicast(2, partGroup, "b")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(partGroup, want, 2)) {
		t.Fatal("majority ordering stalled")
	}
	c.RunFor(500 * simnet.Millisecond)
	if got := len(c.Host(1).Deliveries); got != before {
		t.Fatalf("mute member committed %d operations after exclusion", got-before)
	}
	survivorsSame(t, c, []ids.ProcessorID{2, 3})
}

// A flapping link: processor 4's connectivity to the rest comes and
// goes. Whatever the interleaving of suspicion, conviction and link
// recovery, the outcome must be one primary and no divergence.
func TestLinkFlappingOnePrimary(t *testing.T) {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := quorumCluster(71, procs...)
	c.Multicast(1, partGroup, "a")
	if !c.RunUntil(simnet.Second, c.AllDelivered(partGroup, ids.NewMembership(procs...), 1)) {
		t.Fatal("initial multicast did not deliver")
	}

	// Three down/up cycles of node 4's links: 2s down (long enough to
	// convict), 500ms up (long enough to tempt a half-finished round).
	start := c.Net.Now() + 100*simnet.Millisecond
	for _, peer := range []simnet.NodeID{1, 2, 3} {
		c.Net.FlapLink(peer, 4, start, 2*simnet.Second, 500*simnet.Millisecond, 3)
	}
	c.RunFor(9 * simnet.Second)

	// The majority component is the one primary left standing.
	want := ids.NewMembership(1, 2, 3)
	if !c.RunUntil(c.Net.Now()+5*simnet.Second, func() bool {
		for _, p := range []ids.ProcessorID{1, 2, 3} {
			if !installedExactly(c, p, want) {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("majority did not settle: 1=%v", c.Host(1).Node.Members(partGroup))
	}
	if st, ok := c.Host(4).Node.Status(partGroup); ok && !st.Wedged && st.Members.Contains(4) && len(st.Members) > 1 {
		t.Fatalf("flapped member still believes it is primary: %+v", st)
	}
	c.Multicast(1, partGroup, "b")
	c.Multicast(3, partGroup, "c")
	if !c.RunUntil(c.Net.Now()+simnet.Second, c.AllDelivered(partGroup, want, 3)) {
		t.Fatal("primary stopped committing after the flap storm")
	}
	c.RunFor(500 * simnet.Millisecond)
	survivorsSame(t, c, []ids.ProcessorID{1, 2, 3})
}
