package harness

// Experiment E13: primary-partition membership end to end.
//
// The paper's membership protocol (section 3) removes processors that a
// majority convicts, but says nothing about what the removed side does;
// left alone, both components of a network partition would install views
// and keep ordering operations — a split brain. With
// PGMP.PrimaryPartition enabled, a view installs only if it holds a
// quorum of the previous installed view, the losing component wedges,
// and on reconnection the wedged side discards its standing and rejoins
// through the automated state-transfer pipeline.
//
// E13 drives that full arc under client load and measures it: how long
// from the cut until the minority wedges and the majority installs the
// shrunk view, how many operations each side commits during the
// partition (the minority must commit zero), how long from the heal
// until the rejoined replica serves again, and whether every replica
// converges byte-identically with each deposit applied exactly once.

import (
	"bytes"
	"errors"

	"ftmp/internal/core"
	"ftmp/internal/ftcorba"
	"ftmp/internal/ids"
	"ftmp/internal/pgmp"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// E13Result is one partition/heal measurement. Times are relative to the
// cut (WedgeMs, PrimaryMs) or to the heal (RecoverMs); -1 marks a stage
// that was never observed.
type E13Result struct {
	WedgeMs     float64 // cut -> minority wedged
	PrimaryMs   float64 // cut -> majority installed the shrunk view
	MinorityOps int64   // operations the minority applied during the partition
	PrimaryOps  int64   // operations the majority applied during the partition
	Refused     bool    // direct send from the wedged side returned ErrWedged
	RecoverMs   float64 // heal -> full view reinstalled and replica serving
	Converged   bool    // byte-identical snapshots, exactly-once totals
}

// e13Deposits issues n sequential deposits of 1 from the client and runs
// the cluster until each reply arrives. Returns false on any failure.
func e13Deposits(c *Cluster, infra *ftcorba.Infra, econn ids.ConnectionID, n int) bool {
	for i := 0; i < n; i++ {
		done := false
		err := infra.Call(int64(c.Net.Now()), econn, "add", e10Amount(1), func(_ []byte, e error) {
			done = e == nil
		})
		if err != nil {
			return false
		}
		if !c.RunUntil(c.Net.Now()+10*simnet.Second, func() bool { return done }) {
			return false
		}
	}
	return true
}

// RunE13Partition runs three server replicas and one client with
// primary-partition membership on: a first batch of deposits lands
// everywhere, then replica 3 is cut off. The majority {1,2,client}
// installs the shrunk view and keeps committing `ops` deposits; replica 3
// wedges and commits nothing. After the heal, replica 3 discards its
// wedged standing, rejoins via state transfer, and a final batch checks
// byte-identical convergence.
func RunE13Partition(ops int, seed int64) E13Result {
	servers := ids.NewMembership(1, 2, 3)
	all := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{
		Seed: seed, Net: simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.ObjectGroups = map[ids.ObjectGroupID]ids.Membership{expServerOG: servers}
			cfg.PGMP.PrimaryPartition = true
			cfg.PGMP.SuspectPolicy = pgmp.SuspectAdaptive
			cfg.Conn.RequestRetryMax = 320_000_000
			cfg.Conn.RequestRetryJitter = 0.2
			cfg.PGMP.AddResendMax = 160_000_000
			cfg.PGMP.AddResendJitter = 0.2
		},
	}, all...)
	econn := ids.ConnectionID{
		ClientDomain: 1, ClientGroup: expClientOG,
		ServerDomain: 1, ServerGroup: expServerOG,
	}
	infras := make(map[ids.ProcessorID]*ftcorba.Infra)
	ledgers := make(map[ids.ProcessorID]*ledger)
	for _, p := range all {
		h := c.Host(p)
		infra := ftcorba.New(p, 1, h.Node)
		infras[p] = infra
		h.OnDeliver = infra.OnDeliver
		h.OnView = infra.OnViewChange
		if servers.Contains(p) {
			ledgers[p] = &ledger{}
			infra.Serve(expServerOG, "ledger", ledgers[p])
		} else {
			infra.RegisterObjectKey(expServerOG, "ledger")
		}
	}
	res := E13Result{WedgeMs: -1, PrimaryMs: -1, RecoverMs: -1}
	infras[4].Connect(int64(c.Net.Now()), econn, core.DefaultConfig(4).DomainAddr, ids.NewMembership(4))
	if !c.RunUntil(30*simnet.Second, func() bool {
		for _, p := range all {
			if !infras[p].Established(econn) {
				return false
			}
		}
		return true
	}) {
		return res
	}
	g := c.Host(4).Node.ConnectionState(econn).Group

	// Phase 1: a healthy group applies a first batch everywhere.
	if !e13Deposits(c, infras[4], econn, ops) {
		return res
	}
	c.RunFor(simnet.Second)

	// Phase 2: cut replica 3 off. Record when the minority wedges and
	// when the majority has the shrunk view installed.
	cutAt := c.Net.Now()
	c.Net.Partition([]simnet.NodeID{1, 2, 4}, []simnet.NodeID{3})
	majority := ids.NewMembership(1, 2, 4)
	var wedgeAt, primaryAt simnet.Time
	if !c.RunUntil(cutAt+30*simnet.Second, func() bool {
		if st, ok := c.Host(3).Node.Status(g); wedgeAt == 0 && ok && st.Wedged {
			wedgeAt = c.Net.Now()
		}
		if primaryAt == 0 &&
			c.Host(1).Node.Members(g).Equal(majority) &&
			c.Host(2).Node.Members(g).Equal(majority) {
			primaryAt = c.Net.Now()
		}
		return wedgeAt != 0 && primaryAt != 0
	}) {
		return res
	}
	res.WedgeMs = float64(wedgeAt-cutAt) / 1e6
	res.PrimaryMs = float64(primaryAt-cutAt) / 1e6

	// The wedged side refuses sends outright and commits nothing while
	// the primary component keeps going.
	err := c.Host(3).Node.Multicast(int64(c.Net.Now()), g, econn, 999, []byte("x"))
	res.Refused = errors.Is(err, core.ErrWedged)
	minorityBefore, primaryBefore := ledgers[3].applied, ledgers[1].applied
	if !e13Deposits(c, infras[4], econn, ops) {
		return res
	}
	res.MinorityOps = ledgers[3].applied - minorityBefore
	res.PrimaryOps = ledgers[1].applied - primaryBefore

	// Phase 3: heal. Replica 3 hears the primary, tears down its wedged
	// standing and rejoins through the automated state-transfer path.
	healAt := c.Net.Now()
	c.Net.Heal()
	full := ids.NewMembership(1, 2, 3, 4)
	if !c.RunUntil(healAt+120*simnet.Second, func() bool {
		return c.Host(1).Node.Members(g).Equal(full) &&
			c.Host(3).Node.Members(g).Equal(full) &&
			!infras[3].Joining(expServerOG)
	}) {
		return res
	}
	res.RecoverMs = float64(c.Net.Now()-healAt) / 1e6

	// Phase 4: post-heal traffic, then the convergence check: identical
	// snapshots and exactly-once totals across the whole scenario.
	if !e13Deposits(c, infras[4], econn, ops) {
		return res
	}
	c.RunFor(2 * simnet.Second)
	want := int64(3 * ops)
	snap1, err1 := ledgers[1].SnapshotState()
	snap2, err2 := ledgers[2].SnapshotState()
	snap3, err3 := ledgers[3].SnapshotState()
	res.Converged = err1 == nil && err2 == nil && err3 == nil &&
		bytes.Equal(snap1, snap2) && bytes.Equal(snap1, snap3) &&
		ledgers[1].total == want && ledgers[1].applied == want
	return res
}

// E13Partition regenerates experiment E13: the split-brain regression as
// a measurement, across several seeds.
func E13Partition(runs, ops int) *trace.Table {
	tb := trace.NewTable(
		"E13: partition -> wedge (zero minority commits) -> heal -> convergence",
		"seed", "wedge ms", "primary ms", "minority ops", "primary ops", "refused", "recover ms", "converged")
	for i := 0; i < runs; i++ {
		seed := SeedOffset + 1300 + int64(i)
		r := RunE13Partition(ops, seed)
		tb.AddRow(seed, r.WedgeMs, r.PrimaryMs, r.MinorityOps, r.PrimaryOps, r.Refused, r.RecoverMs, r.Converged)
	}
	return tb
}
