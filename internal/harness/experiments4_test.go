package harness

import (
	"strings"
	"testing"

	"ftmp/internal/wal"
)

func TestE11AppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	r, err := RunE11Append(wal.SyncAlways, 50, 64, dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.RecsPerS <= 0 || r.MeanUs <= 0 {
		t.Errorf("nonpositive throughput: %+v", r)
	}
	// fsync=always syncs once per append (plus the final flush).
	if r.Fsyncs < 50 {
		t.Errorf("fsyncs = %d, want >= 50", r.Fsyncs)
	}
	ms, got, err := RunE11Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("recovered %d records, want 50", got)
	}
	if ms < 0 {
		t.Errorf("negative recovery time %v", ms)
	}
}

func TestE11DurabilityShape(t *testing.T) {
	tb := E11Durability([]int{20, 40}, 64)
	s := tb.String()
	if strings.Contains(s, "error") {
		t.Fatalf("experiment errored:\n%s", s)
	}
	// Three append rows (one per policy) and two recover rows.
	for _, want := range []string{"always", "interval", "never", "recover"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if rows := strings.Count(s, "\n"); rows < 8 {
		t.Errorf("table too short:\n%s", s)
	}
}
