package harness

import "testing"

func TestLatencyCollector(t *testing.T) {
	lc := newLatencyCollector(3, 2)
	lc.sent(0, 100)
	lc.sent(1, 200)
	if lc.done() {
		t.Fatal("done before any delivery")
	}
	// Message 0 delivered at all 3 members.
	lc.delivered(0, 150)
	lc.delivered(0, 160)
	if lc.done() {
		t.Fatal("done after partial deliveries")
	}
	lc.delivered(0, 170)
	if lc.hist.Count() != 1 {
		t.Fatalf("samples = %d", lc.hist.Count())
	}
	if got := lc.hist.Max(); got != 70 {
		t.Errorf("latency sample = %v, want 70 (last member)", got)
	}
	lc.delivered(1, 210)
	lc.delivered(1, 220)
	lc.delivered(1, 230)
	if !lc.done() {
		t.Fatal("not done after all expected completions")
	}
}

func TestPayloadIndexRoundTrip(t *testing.T) {
	b := payload(12345, 64)
	if len(b) != 64 {
		t.Errorf("len = %d", len(b))
	}
	if got := payloadIndex(b); got != 12345 {
		t.Errorf("index = %d", got)
	}
	if payloadIndex([]byte{1, 2}) != -1 {
		t.Error("short payload index")
	}
	// Sizes below the index width are padded up.
	if len(payload(1, 2)) != 8 {
		t.Error("minimum size not enforced")
	}
}
