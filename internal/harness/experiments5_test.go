package harness

import (
	"testing"

	"ftmp/internal/simnet"
)

func TestE12PackingSpeedup(t *testing.T) {
	// The acceptance bar for the packing datapath: at least 2x ordered
	// msgs/s for small payloads under the E12 per-datagram cost model,
	// and a large reduction in datagrams actually sent.
	for _, size := range []int{64, 256} {
		plain := RunE12Packing(1200, 4, 2000, size, false)
		packed := RunE12Packing(1200, 4, 2000, size, true)
		if speedup := packed.MsgsPerS / plain.MsgsPerS; speedup < 2.0 {
			t.Errorf("size %d: packing speedup = %.2fx (plain %.0f, packed %.0f msg/s), want >= 2x",
				size, speedup, plain.MsgsPerS, packed.MsgsPerS)
		}
		if packed.PacketsSent*2 >= plain.PacketsSent {
			t.Errorf("size %d: packed sent %d datagrams vs plain %d, want < half",
				size, packed.PacketsSent, plain.PacketsSent)
		}
	}
}

func TestE12SuppressionReducesIdleTraffic(t *testing.T) {
	base := RunE12Suppression(0, 1250)
	suppressed := RunE12Suppression(25*simnet.Millisecond, 1250)
	if suppressed*2 >= base {
		t.Errorf("idle pkts/s: suppressed=%.0f base=%.0f, want < half", suppressed, base)
	}
}
