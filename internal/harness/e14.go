package harness

// Experiment E14: the pipelined runtime datapath, end to end.
//
// Unlike E1-E13, which run on the deterministic simulated network, E14
// measures the real runtime over real UDP sockets on the loopback
// interface with a real write-ahead log (fsync=always on a temporary
// directory). Three durable replicas form a group; one of them
// multicasts a windowed stream of small messages and we measure the
// sustained totally-ordered, durable delivery rate plus the
// send-to-deliver latency distribution at the sender.
//
// Two modes run back to back on identical hardware:
//
//	baseline  — the classic single-threaded loop: decode, protocol,
//	            WAL append + fsync (WrapDurable) and the application
//	            callback all on one goroutine, one fsync per delivery.
//	pipelined — parallel receive/decode workers, async ordered delivery
//	            executor with WAL group commit (one fsync per batch),
//	            sharded sends.
//
// The interesting columns are msg/s (the pipeline's reason to exist),
// the fsync count (group commit's amortization made visible) and the
// latency percentiles (batching must not wreck tail latency).

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/runtime"
	"ftmp/internal/trace"
	"ftmp/internal/transport"
	"ftmp/internal/wal"
	"ftmp/internal/wire"
)

// E14Result is one mode's measurement.
type E14Result struct {
	Mode          string
	Msgs          int
	Seconds       float64
	Throughput    float64 // sustained delivered msg/s at the sender
	P50, P95, P99 float64 // send->deliver latency, milliseconds
	Fsyncs        uint64
	GroupCommits  uint64
	RxDrops       uint64
	Err           error
}

const (
	e14Group   = ids.GroupID(1400)
	e14Window  = 128 // sender keeps this many messages in flight
	e14Warmup  = 50  // unmeasured messages to settle the group first
	e14Payload = 64  // bytes per message (seq in the first 8)
)

// RunE14 measures one mode. pipelined selects the runtime datapath;
// everything else (group, transport, WAL policy, load) is identical.
func RunE14(pipelined bool, msgs int) E14Result {
	mode := "baseline"
	if pipelined {
		mode = "pipelined"
	}
	res := E14Result{Mode: mode, Msgs: msgs}
	fail := func(err error) E14Result { res.Err = err; return res }

	trace.ResetCounters()
	const n = 3
	members := ids.NewMembership(1, 2, 3)

	type e14node struct {
		r    *runtime.Runner
		mesh *transport.UDPMesh
		log  *wal.Log
		dir  string
		got  atomic.Int64 // payload messages delivered
	}
	nodes := make([]*e14node, n)

	// Latency bookkeeping: the sender stamps each sequence number before
	// handing it to the loop; its own Deliver callback reads the stamp.
	sendTimes := make([]int64, e14Warmup+msgs)
	var latencies trace.Histogram
	var latMu sync.Mutex
	senderDone := make(chan struct{})
	var senderDoneOnce sync.Once

	defer func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.r != nil {
				nd.r.Close()
			}
			if nd.log != nil {
				_ = nd.log.Close()
			}
			if nd.dir != "" {
				_ = os.RemoveAll(nd.dir)
			}
		}
	}()

	total := e14Warmup + msgs
	for i := 0; i < n; i++ {
		nd := &e14node{}
		nodes[i] = nd
		p := ids.ProcessorID(i + 1)

		dir, err := os.MkdirTemp("", fmt.Sprintf("ftmp-e14-%s-p%d-", mode, p))
		if err != nil {
			return fail(err)
		}
		nd.dir = dir
		dfs, err := wal.NewDirFS(dir)
		if err != nil {
			return fail(err)
		}
		nd.log, _, err = wal.Open(wal.Config{
			FS:     dfs,
			Policy: wal.SyncAlways,
			Now:    func() int64 { return time.Now().UnixNano() },
		})
		if err != nil {
			return fail(err)
		}

		cfg := core.DefaultConfig(p)
		cfg.PGMP.SuspectTimeout = 5_000_000_000 // no convictions under load
		cb := core.Callbacks{
			Transmit: func(wire.MulticastAddr, []byte) {}, // installed by the runner
			Deliver: func(d core.Delivery) {
				if len(d.Payload) != e14Payload {
					return
				}
				seq := int64(binary.BigEndian.Uint64(d.Payload))
				if i == 0 && seq >= e14Warmup {
					lat := float64(time.Now().UnixNano()-atomic.LoadInt64(&sendTimes[seq])) / 1e6
					latMu.Lock()
					latencies.Add(lat)
					latMu.Unlock()
				}
				if nd.got.Add(1) == int64(total) && i == 0 {
					senderDoneOnce.Do(func() { close(senderDone) })
				}
			},
		}
		opts := runtime.Options{}
		if pipelined {
			opts = runtime.Options{
				RecvWorkers:   4,
				DeliveryDepth: 1024,
				SendShards:    2,
				WAL:           nd.log,
				WALBatch:      64,
			}
		} else {
			cb = runtime.WrapDurable(nd.log, cb, nil)
		}
		nd.r, err = runtime.New(cfg, cb, func(h transport.Handler) (transport.Transport, error) {
			m, err := transport.NewUDPMesh("127.0.0.1:0", h)
			nd.mesh = m
			return m, err
		}, opts)
		if err != nil {
			return fail(err)
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if err := a.mesh.AddPeer(b.mesh.LocalAddr()); err != nil {
				return fail(err)
			}
		}
	}
	for _, nd := range nodes {
		nd.r.Do(func(node *core.Node, now int64) {
			node.CreateGroup(now, e14Group, members)
		})
	}

	// Windowed sender: at most e14Window messages beyond the slowest
	// count this node has delivered itself; retries when the core's send
	// queue pushes back. Warmup messages settle membership and JIT-warm
	// the path before the clock starts.
	sender := nodes[0]
	send := func(seq int) error {
		payload := make([]byte, e14Payload)
		binary.BigEndian.PutUint64(payload, uint64(seq))
		for {
			for int64(seq)-sender.got.Load() >= e14Window {
				time.Sleep(50 * time.Microsecond)
			}
			var err error
			atomic.StoreInt64(&sendTimes[seq], time.Now().UnixNano())
			sender.r.Do(func(node *core.Node, now int64) {
				err = node.Multicast(now, e14Group, ids.ConnectionID{}, 0, payload)
			})
			if err == nil {
				return nil
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	for seq := 0; seq < e14Warmup; seq++ {
		if err := send(seq); err != nil {
			return fail(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for sender.got.Load() < e14Warmup {
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("warmup never delivered (%d/%d)", sender.got.Load(), e14Warmup))
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	for seq := e14Warmup; seq < total; seq++ {
		if err := send(seq); err != nil {
			return fail(err)
		}
	}
	select {
	case <-senderDone:
	case <-time.After(120 * time.Second):
		return fail(fmt.Errorf("measured stream never completed (%d/%d)", sender.got.Load(), int64(total)))
	}
	elapsed := time.Since(start)

	// Let the other replicas finish before counting their fsyncs.
	deadline = time.Now().Add(30 * time.Second)
	for nodes[1].got.Load() < int64(total) || nodes[2].got.Load() < int64(total) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, nd := range nodes {
		if pipelined {
			if err := nd.r.WALSync(); err != nil {
				return fail(err)
			}
		}
		nd.r.Close()
	}

	res.Seconds = elapsed.Seconds()
	res.Throughput = float64(msgs) / res.Seconds
	res.P50 = latencies.P50()
	res.P95 = latencies.P95()
	res.P99 = latencies.P99()
	res.Fsyncs = trace.Counter("wal.fsyncs")
	res.GroupCommits = trace.Counter("wal.group_commits")
	res.RxDrops = trace.Counter("runtime.rx_overflow_drops")
	return res
}

// E14Pipeline regenerates experiment E14: both modes back to back, with
// the pipelined row reporting its speedup over the baseline.
func E14Pipeline(msgs int) *trace.Table {
	tb := trace.NewTable(
		"E14: pipelined runtime vs single-loop baseline (3 durable replicas, UDP loopback, fsync=always)",
		"mode", "msgs", "elapsed s", "msg/s", "p50 ms", "p95 ms", "p99 ms", "fsyncs", "group commits", "rx drops", "vs baseline")
	base := RunE14(false, msgs)
	pipe := RunE14(true, msgs)
	row := func(r E14Result, speedup float64) {
		if r.Err != nil {
			tb.AddRow(r.Mode, r.Msgs, "FAILED: "+r.Err.Error(), "-", "-", "-", "-", "-", "-", "-", "-")
			return
		}
		tb.AddRow(r.Mode, r.Msgs,
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", r.P50),
			fmt.Sprintf("%.2f", r.P95),
			fmt.Sprintf("%.2f", r.P99),
			r.Fsyncs, r.GroupCommits, r.RxDrops,
			fmt.Sprintf("%.2fx", speedup))
	}
	row(base, 1.0)
	speedup := 0.0
	if base.Err == nil && pipe.Err == nil && base.Throughput > 0 {
		speedup = pipe.Throughput / base.Throughput
	}
	row(pipe, speedup)
	return tb
}
