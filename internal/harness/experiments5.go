package harness

// Experiment E12: the datapath cost of small messages, and what message
// packing (wire.Packed, FTMP 1.1) buys back. A fixed per-datagram
// overhead — interrupt, syscall and framing cost on a real NIC — makes
// many small datagrams far more expensive than their payload bytes;
// packing amortizes that overhead (and the 40-byte FTMP header) across a
// burst. The companion measurement shows heartbeat suppression
// (HeartbeatIdleMax) cutting the idle-group packet rate the same way the
// E3 sweep trades heartbeat cadence against traffic.

import (
	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/trace"
)

// E12Result is one packing-throughput measurement.
type E12Result struct {
	Size     int
	Packing  bool
	MsgsPerS float64
	MBPerS   float64
	// PacketsSent is the network-level datagram count for the whole run,
	// the quantity packing actually reduces.
	PacketsSent uint64
}

// e12Net is the E12 network model: LAN defaults plus a 100 microsecond
// per-datagram overhead — the per-packet interrupt and UDP processing
// cost of the paper's era of workstation hardware, and the reason its
// protocol family cared about packing small messages. E1-E11 keep the
// zero-overhead model they were recorded with.
func e12Net() simnet.Config {
	cfg := simnet.NewConfig()
	cfg.PerPacketOverhead = 100 * simnet.Microsecond
	return cfg
}

// RunE12Packing measures aggregate ordered throughput for a bursty
// small-message workload with packing on or off: every member sends
// msgs/n messages of the given size in bursts of fifty per half
// millisecond — an offered rate well past what one datagram per message
// can carry through the per-packet overhead, so the unpacked datapath is
// link-bound — and the run ends when every member has delivered all of
// them.
func RunE12Packing(seed int64, n, msgs, size int, packing bool) E12Result {
	procs := make([]ids.ProcessorID, n)
	for i := range procs {
		procs[i] = ids.ProcessorID(i + 1)
	}
	c := NewCluster(Options{
		Seed: seed,
		Net:  e12Net(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			if packing {
				cfg.Pack = core.DefaultPackConfig()
			}
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	delivered := make(map[ids.ProcessorID]int)
	for _, p := range procs {
		p := p
		c.Host(p).OnDeliver = func(d core.Delivery, now int64) { delivered[p]++ }
	}
	c.RunFor(100 * simnet.Millisecond)
	start := c.Net.Now()
	startPkts := c.Net.Stats().PacketsSent
	per := msgs / n
	const burst = 50
	const burstGap = 500 * simnet.Microsecond
	for pi, p := range procs {
		p, pi := p, pi
		var send func(i int)
		send = func(i int) {
			for k := 0; k < burst && i < per; k++ {
				_ = c.Host(p).Node.Multicast(int64(c.Net.Now()), expGroup, ids.ConnectionID{}, 0, payload(pi*per+i, size))
				i++
			}
			if i < per {
				c.Net.At(c.Net.Now()+burstGap, func() { send(i) })
			}
		}
		c.Net.At(start, func() { send(0) })
	}
	total := per * n
	c.RunUntil(start+10*simnet.Second*simnet.Time(1+msgs/1000), func() bool {
		for _, p := range procs {
			if delivered[p] < total {
				return false
			}
		}
		return true
	})
	dur := c.Net.Now() - start
	if dur <= 0 {
		dur = 1
	}
	secs := float64(dur) / float64(simnet.Second)
	return E12Result{
		Size:        size,
		Packing:     packing,
		MsgsPerS:    float64(total) / secs,
		MBPerS:      float64(total) * float64(size) / secs / 1e6,
		PacketsSent: c.Net.Stats().PacketsSent - startPkts,
	}
}

// E12Packing regenerates the packing half of experiment E12: small-
// message throughput with packing off (the FTMP 1.0 datapath) and on,
// per payload size.
func E12Packing(sizes []int, msgs int) *trace.Table {
	tb := trace.NewTable(
		"E12: message packing vs small-message throughput (n=4, all sending, 100us per-datagram overhead)",
		"payload B", "plain msg/s", "packed msg/s", "speedup", "plain pkts", "packed pkts")
	for i, size := range sizes {
		seed := SeedOffset + 1200 + int64(i)
		plain := RunE12Packing(seed, 4, msgs, size, false)
		packed := RunE12Packing(seed, 4, msgs, size, true)
		tb.AddRow(size, plain.MsgsPerS, packed.MsgsPerS,
			packed.MsgsPerS/plain.MsgsPerS,
			plain.PacketsSent, packed.PacketsSent)
	}
	return tb
}

// RunE12Suppression measures the idle-group packet rate with and without
// heartbeat suppression: idleMax == 0 is the fixed 5ms cadence every
// earlier experiment uses; a positive idleMax stretches the cadence once
// the group has been quiet for two base intervals.
func RunE12Suppression(idleMax simnet.Time, seed int64) float64 {
	procs := []ids.ProcessorID{1, 2, 3, 4}
	c := NewCluster(Options{
		Seed: seed,
		Net:  simnet.NewConfig(),
		Configure: func(p ids.ProcessorID, cfg *core.Config) {
			cfg.HeartbeatIdleMax = int64(idleMax)
		},
	}, procs...)
	m := ids.NewMembership(procs...)
	c.CreateGroup(expGroup, m)
	c.RunFor(200 * simnet.Millisecond) // settle, then measure pure idle
	startPkts := c.Net.Stats().PacketsSent
	start := c.Net.Now()
	c.RunFor(2 * simnet.Second)
	dur := float64(c.Net.Now()-start) / float64(simnet.Second)
	return float64(c.Net.Stats().PacketsSent-startPkts) / dur
}

// E12Suppression regenerates the heartbeat-suppression half of E12.
func E12Suppression(idleMaxes []simnet.Time) *trace.Table {
	tb := trace.NewTable(
		"E12b: idle-group packet rate vs HeartbeatIdleMax (n=4, 5ms base heartbeat)",
		"idle max ms", "pkts/s")
	for i, im := range idleMaxes {
		tb.AddRow(float64(im)/1e6, RunE12Suppression(im, SeedOffset+1250+int64(i)))
	}
	return tb
}
