package harness

import (
	"strings"
	"testing"

	"ftmp/internal/clock"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

func TestRunLatencyAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{ProtoFTMP, ProtoSequencer, ProtoTokenRing} {
		h := RunLatency(proto, 1, 3, 5, 64, 5*simnet.Millisecond, simnet.NewConfig())
		if h.Count() != 5 {
			t.Errorf("%s: %d samples, want 5", proto, h.Count())
		}
		if h.Mean() <= 0 {
			t.Errorf("%s: nonpositive mean latency %v", proto, h.Mean())
		}
		// Sanity ceiling: nothing should take over a second on a clean
		// 200us LAN.
		if h.Max() > 1e9 {
			t.Errorf("%s: max latency %vms", proto, h.Max()/1e6)
		}
	}
}

func TestRunThroughputAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{ProtoFTMP, ProtoSequencer, ProtoTokenRing} {
		r := RunThroughput(proto, 2, 4, 80, 128, simnet.NewConfig())
		if r.MsgsPerS <= 0 {
			t.Errorf("%s: throughput %v", proto, r.MsgsPerS)
		}
		if r.Duration <= 0 {
			t.Errorf("%s: duration %v", proto, r.Duration)
		}
	}
}

func TestE3HeartbeatShape(t *testing.T) {
	// Paper section 5: "A shorter heartbeat interval results in lower
	// message latency but higher network traffic."
	fast := RunE3Heartbeat(2*simnet.Millisecond, 10)
	slow := RunE3Heartbeat(20*simnet.Millisecond, 10)
	if !(fast.MeanMs < slow.MeanMs) {
		t.Errorf("latency shape violated: hb=2ms mean %.3f, hb=20ms mean %.3f", fast.MeanMs, slow.MeanMs)
	}
	if !(fast.PacketsPerS > slow.PacketsPerS) {
		t.Errorf("traffic shape violated: hb=2ms %.0f pkt/s, hb=20ms %.0f pkt/s", fast.PacketsPerS, slow.PacketsPerS)
	}
}

func TestE4FailoverShape(t *testing.T) {
	// Detection time tracks the suspect timeout.
	quickTO := RunE4Failover(4, 20*simnet.Millisecond, 11)
	slowTO := RunE4Failover(4, 100*simnet.Millisecond, 11)
	if quickTO.DetectMs <= 0 || slowTO.DetectMs <= 0 {
		t.Fatalf("no detection: %+v %+v", quickTO, slowTO)
	}
	if !(quickTO.DetectMs < slowTO.DetectMs) {
		t.Errorf("detection shape violated: to=20ms %.1fms, to=100ms %.1fms", quickTO.DetectMs, slowTO.DetectMs)
	}
	if quickTO.NewViewMs < quickTO.DetectMs {
		t.Errorf("view installed before detection: %+v", quickTO)
	}
}

func TestE5BufferShape(t *testing.T) {
	// With prompt heartbeats, buffers drain after the stream; with
	// heartbeats effectively off (10s interval), acknowledgments stop
	// with the traffic and buffers stay occupied.
	fast := RunE5Buffer(5*simnet.Millisecond, 12)
	off := RunE5Buffer(10*simnet.Second, 12)
	if fast.FinalBuffered >= off.FinalBuffered {
		t.Errorf("buffer shape violated: hb=5ms final %d, hb=off final %d", fast.FinalBuffered, off.FinalBuffered)
	}
	if off.PeakBuffered == 0 {
		t.Error("no buffering observed at all")
	}
}

func TestE6LossShape(t *testing.T) {
	clean := RunE6Loss(0, 13)
	lossy := RunE6Loss(0.10, 13)
	if clean.Nacks != 0 {
		t.Errorf("clean network produced %d NACKs", clean.Nacks)
	}
	if lossy.Nacks == 0 || lossy.Retrans == 0 {
		t.Errorf("lossy network produced no repairs: %+v", lossy)
	}
	if lossy.CompleteMs < clean.CompleteMs {
		t.Errorf("loss sped up completion: %+v vs %+v", clean, lossy)
	}
}

func TestE7GIOPShape(t *testing.T) {
	direct := RunE7Direct(20, 14)
	k1 := RunE7GIOP(1, 20, 14)
	k3 := RunE7GIOP(3, 20, 15)
	if direct.Count() != 20 || k1.Count() != 20 || k3.Count() != 20 {
		t.Fatalf("incomplete runs: %d %d %d", direct.Count(), k1.Count(), k3.Count())
	}
	// Replication over a group protocol cannot beat the raw network
	// round trip.
	if k1.Mean() <= direct.Mean() {
		t.Errorf("replicated faster than direct: %.3f vs %.3f ms", k1.Mean()/1e6, direct.Mean()/1e6)
	}
}

func TestE8DuplicatesInvariants(t *testing.T) {
	r := RunE8Duplicates(3, 3, 5, 16)
	// The 3 deterministic client replicas issue the same 5 logical
	// calls, so the network carries 3 copies of each: 15 sends.
	if r.RequestsSent != 15 {
		t.Errorf("RequestsSent = %d, want 15", r.RequestsSent)
	}
	// Exactly-once processing per server replica: 5 logical requests x
	// 3 server replicas.
	if r.RequestsDispatched != 15 {
		t.Errorf("RequestsDispatched = %d, want 15", r.RequestsDispatched)
	}
	// Per server replica, 2 of the 3 copies of each request are
	// duplicates: 5*2*3 = 30 suppressions.
	if r.DuplicateRequests != 30 {
		t.Errorf("DuplicateRequests = %d, want 30", r.DuplicateRequests)
	}
	// Every caller saw exactly one reply per call: 5 x 3 clients.
	if r.RepliesDelivered != 15 {
		t.Errorf("RepliesDelivered = %d, want 15", r.RepliesDelivered)
	}
	if r.DuplicateReplies == 0 {
		t.Error("no duplicate replies suppressed")
	}
}

func TestE9PlannedChangeCompletes(t *testing.T) {
	r := RunE9PlannedChange(17)
	if r.BeforeMeanMs <= 0 || r.DuringMeanMs <= 0 || r.AfterMeanMs <= 0 {
		t.Errorf("missing phases: %+v", r)
	}
	// Planned changes may add a brief blip but not a failover-scale
	// outage (suspect timeout is 50ms; E4 shows fault recovery >50ms).
	if r.DuringMaxMs > 50 {
		t.Errorf("planned change stalled ordering for %.1fms", r.DuringMaxMs)
	}
}

func TestTablesRender(t *testing.T) {
	// Smoke: the compact variants of every table render non-empty.
	tables := []interface{ String() string }{
		Fig2Encapsulation(),
		Fig3Matrix(),
		E1Latency([]int{2, 3}, 5),
		E3Heartbeat([]simnet.Time{5 * simnet.Millisecond}),
		E5Buffer([]simnet.Time{5 * simnet.Millisecond}),
		E9PlannedChange(),
	}
	for i, tb := range tables {
		out := tb.String()
		if !strings.Contains(out, "\n") || len(out) < 40 {
			t.Errorf("table %d too small:\n%s", i, out)
		}
	}
}

func TestPackUnpackAddr(t *testing.T) {
	orig := wire.MulticastAddr{IP: [4]byte{239, 1, 2, 3}, Port: 5004}
	if got := UnpackAddr(PackAddr(orig)); got != orig {
		t.Errorf("round trip = %v, want %v", got, orig)
	}
}

func TestA1RepairPolicyShape(t *testing.T) {
	// Promiscuous repair answers from every holder: at least as many
	// retransmissions (usually ~3x in a 4-member group) as the default
	// source-answers policy, for the same recovery outcome.
	def := RunA1RepairPolicy(false, 0.10, 21)
	prom := RunA1RepairPolicy(true, 0.10, 21)
	if def.Retrans == 0 || prom.Retrans == 0 {
		t.Fatalf("no repairs observed: %+v %+v", def, prom)
	}
	if prom.Retrans < def.Retrans {
		t.Errorf("promiscuous produced fewer retransmissions: %d vs %d", prom.Retrans, def.Retrans)
	}
}

func TestA2ClockModesBothComplete(t *testing.T) {
	a := RunA2ClockMode(clock.Logical, 22)
	b := RunA2ClockMode(clock.Synchronized, 22)
	if a.MeanMs <= 0 || b.MeanMs <= 0 {
		t.Errorf("clock mode runs incomplete: %+v %+v", a, b)
	}
}
