// Package harness wires FTMP nodes into the simulated network and runs
// the repository's experiments. It is the substrate of the integration
// tests, the benchmark suite (bench_test.go) and cmd/ftmpbench.
package harness

import (
	"fmt"
	"sort"

	"ftmp/internal/core"
	"ftmp/internal/ids"
	"ftmp/internal/simnet"
	"ftmp/internal/wire"
)

// PackAddr maps a multicast address to a simnet address.
func PackAddr(a wire.MulticastAddr) simnet.Addr {
	return simnet.Addr(uint64(a.IP[0])<<40 | uint64(a.IP[1])<<32 |
		uint64(a.IP[2])<<24 | uint64(a.IP[3])<<16 | uint64(a.Port))
}

// UnpackAddr inverts PackAddr.
func UnpackAddr(s simnet.Addr) wire.MulticastAddr {
	return wire.MulticastAddr{
		IP:   [4]byte{byte(s >> 40), byte(s >> 32), byte(s >> 24), byte(s >> 16)},
		Port: uint16(s),
	}
}

// Fault records one fault report upcall.
type Fault struct {
	Group     ids.GroupID
	Convicted ids.Membership
	At        int64
}

// Host is one simulated processor: an FTMP node plus recorders for every
// upcall, so tests and experiments can assert on exactly what the
// application layer saw.
type Host struct {
	ID   ids.ProcessorID
	Node *core.Node

	Deliveries []core.Delivery
	Views      []core.ViewChange
	Faults     []Fault

	// OnDeliver, if set, observes each delivery after recording.
	OnDeliver func(d core.Delivery, now int64)

	// OnView, if set, observes each view change after recording (the
	// hook the ftcorba automated-recovery glue attaches to).
	OnView func(v core.ViewChange, now int64)

	cluster *Cluster
	now     int64
}

// HandlePacket implements simnet.Endpoint.
func (h *Host) HandlePacket(data []byte, addr simnet.Addr, now int64) {
	h.now = now
	h.Node.HandlePacket(data, UnpackAddr(addr), now)
}

// Tick implements simnet.Endpoint.
func (h *Host) Tick(now int64) {
	h.now = now
	h.Node.Tick(now)
}

// DeliveredPayloads returns the delivered payloads for group g in order.
func (h *Host) DeliveredPayloads(g ids.GroupID) []string {
	var out []string
	for _, d := range h.Deliveries {
		if d.Group == g {
			out = append(out, string(d.Payload))
		}
	}
	return out
}

// LastView returns the most recent view change for g, if any.
func (h *Host) LastView(g ids.GroupID) (core.ViewChange, bool) {
	for i := len(h.Views) - 1; i >= 0; i-- {
		if h.Views[i].Group == g {
			return h.Views[i], true
		}
	}
	return core.ViewChange{}, false
}

// Options configures a Cluster.
type Options struct {
	Seed int64
	Net  simnet.Config
	// TickEvery is the node timer cadence (default 1ms).
	TickEvery simnet.Time
	// Configure, if set, adjusts each node's config before construction.
	Configure func(p ids.ProcessorID, cfg *core.Config)
}

// Cluster is a set of FTMP processors on one simulated network.
type Cluster struct {
	Net   *simnet.Net
	Hosts map[ids.ProcessorID]*Host
	order []ids.ProcessorID
	opt   Options
}

// NewCluster builds a cluster of the given processors (no groups yet).
func NewCluster(opt Options, procs ...ids.ProcessorID) *Cluster {
	if opt.TickEvery == 0 {
		opt.TickEvery = simnet.Millisecond
	}
	c := &Cluster{
		Net:   simnet.New(opt.Seed, opt.Net),
		Hosts: make(map[ids.ProcessorID]*Host),
		opt:   opt,
	}
	for _, p := range procs {
		c.attach(p)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	return c
}

// AddHost attaches a new processor to a running cluster — a replacement
// replica rejoining under a fresh id after a crash — built with the
// cluster's original options. The new node starts ticking at the
// current virtual time.
func (c *Cluster) AddHost(p ids.ProcessorID) *Host {
	if _, ok := c.Hosts[p]; ok {
		panic(fmt.Sprintf("harness: processor %v already exists", p))
	}
	h := c.attach(p)
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	return h
}

func (c *Cluster) attach(p ids.ProcessorID) *Host {
	cfg := core.DefaultConfig(p)
	if c.opt.Configure != nil {
		c.opt.Configure(p, &cfg)
	}
	h := &Host{ID: p, cluster: c}
	cb := core.Callbacks{
		Transmit: func(addr wire.MulticastAddr, data []byte) {
			c.Net.Send(simnet.NodeID(p), PackAddr(addr), data)
		},
		Deliver: func(d core.Delivery) {
			h.Deliveries = append(h.Deliveries, d)
			if h.OnDeliver != nil {
				h.OnDeliver(d, h.now)
			}
		},
		ViewChange: func(v core.ViewChange) {
			h.Views = append(h.Views, v)
			if h.OnView != nil {
				h.OnView(v, h.now)
			}
		},
		FaultReport: func(g ids.GroupID, convicted ids.Membership) {
			h.Faults = append(h.Faults, Fault{Group: g, Convicted: convicted, At: h.now})
		},
		Subscribe: func(addr wire.MulticastAddr) {
			c.Net.Subscribe(simnet.NodeID(p), PackAddr(addr))
		},
		Unsubscribe: func(addr wire.MulticastAddr) {
			c.Net.Unsubscribe(simnet.NodeID(p), PackAddr(addr))
		},
	}
	// Register with the network before constructing the node: the
	// constructor subscribes to the domain address immediately.
	c.Net.AddNode(simnet.NodeID(p), h, c.opt.TickEvery)
	h.Node = core.NewNode(cfg, cb)
	c.Hosts[p] = h
	c.order = append(c.order, p)
	return h
}

// Procs returns the processors in deterministic order.
func (c *Cluster) Procs() []ids.ProcessorID { return c.order }

// Host returns the host for p, panicking on unknown processors (tests
// fail loudly rather than nil-dereference later).
func (c *Cluster) Host(p ids.ProcessorID) *Host {
	h, ok := c.Hosts[p]
	if !ok {
		panic(fmt.Sprintf("harness: unknown processor %v", p))
	}
	return h
}

// CreateGroup bootstraps group g with the given members on every host
// (the fault tolerance infrastructure's static configuration).
func (c *Cluster) CreateGroup(g ids.GroupID, members ids.Membership) {
	now := int64(c.Net.Now())
	for _, p := range c.order {
		if members.Contains(p) {
			c.Hosts[p].Node.CreateGroup(now, g, members)
		}
	}
}

// Crash fails processor p (fail-stop, the paper's fault model).
func (c *Cluster) Crash(p ids.ProcessorID) { c.Net.Crash(simnet.NodeID(p)) }

// Multicast sends an application payload from p to group g.
func (c *Cluster) Multicast(p ids.ProcessorID, g ids.GroupID, payload string) error {
	return c.Hosts[p].Node.Multicast(int64(c.Net.Now()), g, ids.ConnectionID{}, 0, []byte(payload))
}

// Run advances the simulation to the given virtual time.
func (c *Cluster) Run(until simnet.Time) { c.Net.Run(until) }

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d simnet.Time) { c.Net.Run(c.Net.Now() + d) }

// RunUntil advances until pred holds or the deadline passes.
func (c *Cluster) RunUntil(deadline simnet.Time, pred func() bool) bool {
	return c.Net.RunUntil(deadline, pred)
}

// AllDelivered reports whether every live member of g has delivered at
// least n payloads for it.
func (c *Cluster) AllDelivered(g ids.GroupID, members ids.Membership, n int) func() bool {
	return func() bool {
		for _, p := range members {
			if len(c.Hosts[p].DeliveredPayloads(g)) < n {
				return false
			}
		}
		return true
	}
}
